// Geowheat reproduces the heart of the paper's Section 6.3 in miniature:
// it runs the ordering service over a simulated wide-area network (nodes in
// Oregon, Ireland, Sydney, and Sao Paulo) twice - once with classic
// BFT-SMaRt, once with WHEAT (a fifth replica in Virginia, binary vote
// weights, tentative execution) - and prints the median and 90th-percentile
// envelope latency observed by frontends in Canada, Oregon, Virginia, and
// Sao Paulo.
//
// Expected shape (the paper's Figures 8): WHEAT is markedly faster than
// BFT-SMaRt at every frontend, and the Sao Paulo frontend (near only a
// V_min replica) is slower than the V_max-collocated ones.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "geowheat:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("ordering nodes: Oregon, Ireland, Sydney, Sao Paulo (+Virginia for WHEAT)")
	fmt.Println("frontends:      Canada, Oregon, Virginia, Sao Paulo")
	fmt.Println("workload:       1 KB envelopes, blocks of 10, closed-loop load")
	fmt.Println()

	table := bench.NewTable("frontend", "protocol", "median_ms", "p90_ms", "tx/sec")
	results := make(map[string]map[bench.GeoProtocol]float64)
	for _, protocol := range []bench.GeoProtocol{bench.ProtocolBFTSmart, bench.ProtocolWheat} {
		fmt.Printf("running %s ...\n", protocol)
		rows, err := bench.RunGeoCell(bench.GeoCell{
			Protocol:          protocol,
			BlockSize:         10,
			EnvSize:           1024,
			WindowPerFrontend: 96,
			Warmup:            2 * time.Second,
			Measure:           5 * time.Second,
		})
		if err != nil {
			return err
		}
		for _, row := range rows {
			table.AddRow(string(row.Frontend), string(row.Protocol),
				row.MedianMs, row.P90Ms, row.TxPerSec)
			perProto, ok := results[string(row.Frontend)]
			if !ok {
				perProto = make(map[bench.GeoProtocol]float64)
				results[string(row.Frontend)] = perProto
			}
			perProto[protocol] = row.MedianMs
		}
	}
	fmt.Println()
	fmt.Print(table.String())
	fmt.Println()
	for frontend, perProto := range results {
		bft, wheat := perProto[bench.ProtocolBFTSmart], perProto[bench.ProtocolWheat]
		if bft > 0 && wheat > 0 {
			fmt.Printf("%-10s WHEAT is %.0f%% of BFT-SMaRt's median latency\n",
				frontend+":", 100*wheat/bft)
		}
	}
	return nil
}
