// Quickstart: start a 4-node BFT ordering service in-process, submit
// envelopes through a frontend, read back the signed, hash-chained
// blocks — then watch ledger retention prune old history, survive a
// full-cluster restart, and answer below-floor seeks with NOT_FOUND.
package main

import (
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	dataDir, err := os.MkdirTemp("", "quickstart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)
	// A 4-node cluster tolerates f=1 Byzantine ordering node. Blocks hold
	// 5 envelopes; partial blocks are cut after 250 ms. Every node keeps
	// a durable ledger under dataDir bounded by retention: once a channel
	// exceeds 8 durable blocks, nodes snapshot a manifest and drop whole
	// commit-log segments that hold no live decision or block.
	cluster, err := core.NewCluster(core.ClusterConfig{
		Nodes:        4,
		BlockSize:    5,
		BlockTimeout: 250 * time.Millisecond,
		DataDir:      dataDir,
		// Decisions and blocks share one unified commit log; a segment
		// is reclaimed only when it is behind the consensus checkpoint
		// AND below the retention floor, so the demo checkpoints often
		// (and uses tiny segments) to make pruning visible quickly.
		WALSegmentBytes:    2048,
		BatchSize:          10, // keep decision records well under the tiny segments
		CheckpointInterval: 4,
		RetainBlocks:       8,
	})
	if err != nil {
		return err
	}
	defer cluster.Stop()

	// The frontend relays envelopes to the cluster and releases each block
	// once 2f+1 = 3 matching copies arrived from distinct nodes.
	frontend, err := cluster.NewFrontend("frontend-0", false)
	if err != nil {
		return err
	}
	defer frontend.Close()
	// Deliver(Newest) is the live tail: every block released from here on.
	stream, err := frontend.Deliver("demo-channel", fabric.DeliverNewest())
	if err != nil {
		return err
	}

	const total = 12
	for i := 0; i < total; i++ {
		env := &fabric.Envelope{
			ChannelID:         "demo-channel",
			ClientID:          "quickstart",
			TimestampUnixNano: time.Now().UnixNano(),
			Payload:           []byte(fmt.Sprintf("transaction %02d", i)),
		}
		if status := frontend.Broadcast(env); status != fabric.StatusSuccess {
			return fmt.Errorf("broadcast ack %s", status)
		}
	}
	fmt.Printf("submitted %d envelopes\n", total)

	var chain []*fabric.Block
	received := 0
	for received < total {
		select {
		case b := <-stream.Blocks():
			chain = append(chain, b)
			received += len(b.Envelopes)
			fmt.Printf("block %d: %d envelopes, header %s, %d node signatures\n",
				b.Header.Number, len(b.Envelopes), b.Header.Hash(), len(b.Signatures))
		case <-time.After(10 * time.Second):
			return fmt.Errorf("timed out after %d envelopes", received)
		}
	}
	stream.Cancel()

	// The delivered blocks form a verifiable hash chain, and every block
	// signature checks out against the nodes' registered keys.
	if err := fabric.VerifyChain(chain); err != nil {
		return fmt.Errorf("chain verification: %w", err)
	}
	for _, b := range chain {
		if n := b.VerifySignatures(cluster.Registry); n < 3 {
			return fmt.Errorf("block %d: only %d valid signatures", b.Header.Number, n)
		}
	}
	fmt.Printf("verified: %d blocks, hash chain intact, all signatures valid\n", len(chain))

	// Seek semantics: a second Deliver replays the sealed chain from block
	// 0 and closes after the stop position — no resubmission, no gaps.
	replay, err := frontend.Deliver("demo-channel",
		fabric.DeliverOldest().Through(chain[len(chain)-1].Header.Number))
	if err != nil {
		return err
	}
	replayed := 0
	for b := range replay.Blocks() {
		if b.Header.Number != uint64(replayed) {
			return fmt.Errorf("replay out of order: block %d at position %d", b.Header.Number, replayed)
		}
		replayed++
	}
	if err := replay.Err(); err != nil {
		return fmt.Errorf("replay stream: %w", err)
	}
	fmt.Printf("replayed %d blocks via Deliver(Oldest..%d)\n", replayed, chain[len(chain)-1].Header.Number)

	// ---- part 2: retention ---------------------------------------------
	// Keep ordering until the nodes' retention policy compacts: the
	// durable ledgers keep only the newest blocks, old WAL segments are
	// deleted, and the retention floor rises above zero.
	fmt.Println("part 2: retention — ordering more traffic until old blocks prune")
	for i := 0; i < 200; i++ {
		env := &fabric.Envelope{
			ChannelID:         "demo-channel",
			ClientID:          "quickstart",
			TimestampUnixNano: time.Now().UnixNano(),
			Payload:           []byte(fmt.Sprintf("bulk transaction %03d", i)),
		}
		if status := frontend.Broadcast(env); status != fabric.StatusSuccess {
			return fmt.Errorf("bulk broadcast ack %s", status)
		}
	}
	// Compaction is per node and asynchronous: wait until EVERY node
	// pruned, so the below-floor seek is unservable cluster-wide.
	deadline := time.Now().Add(30 * time.Second)
	var floor uint64
	for pruned := 0; pruned < len(cluster.Nodes); {
		if time.Now().After(deadline) {
			return fmt.Errorf("retention never compacted on %d nodes", len(cluster.Nodes)-pruned)
		}
		pruned = 0
		for _, node := range cluster.Nodes {
			if led := node.Ledger("demo-channel"); led != nil && led.Floor() > 0 {
				floor = led.Floor()
				pruned++
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	height := cluster.Nodes[0].Ledger("demo-channel").Height()
	fmt.Printf("node 0 pruned below block %d (height %d): disk now holds the retained window only\n",
		floor, height)
	frontend.Close()

	// A full restart recovers every node from its snapshot manifest: the
	// chain resumes from the floor, not from block 0.
	fmt.Println("restarting the whole cluster from its data directories")
	for i := range cluster.Nodes {
		cluster.KillNode(i)
	}
	for i := range cluster.Nodes {
		if err := cluster.RestartNode(i); err != nil {
			return fmt.Errorf("restarting node %d: %w", i, err)
		}
	}
	recovered := cluster.Nodes[0].Ledger("demo-channel")
	if recovered == nil {
		return fmt.Errorf("restarted node has no durable ledger")
	}
	if err := recovered.VerifyChain(); err != nil {
		return fmt.Errorf("recovered chain does not verify from the floor: %w", err)
	}
	fmt.Printf("recovered: height %d, floor %d, chain verifies from the retention anchor\n",
		recovered.Height(), recovered.Floor())

	// A fresh frontend has no retained history, so its seeks hit the
	// nodes' durable ledgers. Seeking a pruned block answers the typed
	// pruned status — what a wire client sees as NOT_FOUND.
	fe2, err := cluster.NewFrontend("frontend-1", false)
	if err != nil {
		return err
	}
	defer fe2.Close()
	pruned, err := fe2.Deliver("demo-channel", fabric.DeliverFrom(0).Through(0))
	if err != nil {
		return err
	}
	for range pruned.Blocks() {
		return fmt.Errorf("seek below the floor delivered a pruned block")
	}
	perr := pruned.Err()
	if !errors.Is(perr, fabric.ErrPruned) {
		return fmt.Errorf("seek below the floor ended with %v, want the pruned status", perr)
	}
	fmt.Printf("seek at block 0 answered %s (%v)\n", fabric.StatusOf(perr), perr)

	// Deliver(Oldest) means oldest *available*: the stream starts at the
	// floor instead of failing.
	head := recovered.Height() - 1
	oldest, err := fe2.Deliver("demo-channel", fabric.DeliverOldest().Through(head))
	if err != nil {
		return err
	}
	first := uint64(0)
	count := 0
	for b := range oldest.Blocks() {
		if count == 0 {
			first = b.Header.Number
		}
		count++
	}
	if err := oldest.Err(); err != nil {
		return fmt.Errorf("oldest-available replay: %w", err)
	}
	if first == 0 || count == 0 {
		return fmt.Errorf("oldest-available replay started at %d with %d blocks", first, count)
	}
	fmt.Printf("Deliver(Oldest) resumed at the floor: %d blocks from block %d to %d\n",
		count, first, head)
	return nil
}
