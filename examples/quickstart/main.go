// Quickstart: start a 4-node BFT ordering service in-process, submit
// envelopes through a frontend, and read back the signed, hash-chained
// blocks.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A 4-node cluster tolerates f=1 Byzantine ordering node. Blocks hold
	// 5 envelopes; partial blocks are cut after 250 ms.
	cluster, err := core.NewCluster(core.ClusterConfig{
		Nodes:        4,
		BlockSize:    5,
		BlockTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer cluster.Stop()

	// The frontend relays envelopes to the cluster and releases each block
	// once 2f+1 = 3 matching copies arrived from distinct nodes.
	frontend, err := cluster.NewFrontend("frontend-0", false)
	if err != nil {
		return err
	}
	defer frontend.Close()
	// Deliver(Newest) is the live tail: every block released from here on.
	stream, err := frontend.Deliver("demo-channel", fabric.DeliverNewest())
	if err != nil {
		return err
	}

	const total = 12
	for i := 0; i < total; i++ {
		env := &fabric.Envelope{
			ChannelID:         "demo-channel",
			ClientID:          "quickstart",
			TimestampUnixNano: time.Now().UnixNano(),
			Payload:           []byte(fmt.Sprintf("transaction %02d", i)),
		}
		if status := frontend.Broadcast(env); status != fabric.StatusSuccess {
			return fmt.Errorf("broadcast ack %s", status)
		}
	}
	fmt.Printf("submitted %d envelopes\n", total)

	var chain []*fabric.Block
	received := 0
	for received < total {
		select {
		case b := <-stream.Blocks():
			chain = append(chain, b)
			received += len(b.Envelopes)
			fmt.Printf("block %d: %d envelopes, header %s, %d node signatures\n",
				b.Header.Number, len(b.Envelopes), b.Header.Hash(), len(b.Signatures))
		case <-time.After(10 * time.Second):
			return fmt.Errorf("timed out after %d envelopes", received)
		}
	}
	stream.Cancel()

	// The delivered blocks form a verifiable hash chain, and every block
	// signature checks out against the nodes' registered keys.
	if err := fabric.VerifyChain(chain); err != nil {
		return fmt.Errorf("chain verification: %w", err)
	}
	for _, b := range chain {
		if n := b.VerifySignatures(cluster.Registry); n < 3 {
			return fmt.Errorf("block %d: only %d valid signatures", b.Header.Number, n)
		}
	}
	fmt.Printf("verified: %d blocks, hash chain intact, all signatures valid\n", len(chain))

	// Seek semantics: a second Deliver replays the sealed chain from block
	// 0 and closes after the stop position — no resubmission, no gaps.
	replay, err := frontend.Deliver("demo-channel",
		fabric.DeliverOldest().Through(chain[len(chain)-1].Header.Number))
	if err != nil {
		return err
	}
	replayed := 0
	for b := range replay.Blocks() {
		if b.Header.Number != uint64(replayed) {
			return fmt.Errorf("replay out of order: block %d at position %d", b.Header.Number, replayed)
		}
		replayed++
	}
	if err := replay.Err(); err != nil {
		return fmt.Errorf("replay stream: %w", err)
	}
	fmt.Printf("replayed %d blocks via Deliver(Oldest..%d)\n", replayed, chain[len(chain)-1].Header.Number)
	return nil
}
