// Fabricapp runs the full six-step Hyperledger Fabric transaction flow of
// the paper's Figure 2 on top of the BFT ordering service: clients get
// chaincode invocations simulated and endorsed by endorsing peers, assemble
// the endorsements into envelopes, broadcast them through a frontend, and
// committing peers validate (endorsement policy + MVCC) and commit the
// ordered blocks.
//
// The workload is an asset-transfer ledger plus a small bank, including one
// deliberately conflicting pair of transactions that demonstrates MVCC
// invalidation: both are recorded in the chain, but only one mutates state.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/fabric"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fabricapp:", err)
		os.Exit(1)
	}
}

func run() error {
	// ---- Ordering service (the paper's contribution) -------------------
	cluster, err := core.NewCluster(core.ClusterConfig{
		Nodes:        4,
		BlockSize:    3,
		BlockTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer cluster.Stop()
	frontend, err := cluster.NewFrontend("frontend-0", false)
	if err != nil {
		return err
	}
	defer frontend.Close()

	// ---- Peers ---------------------------------------------------------
	registry := cryptoutil.NewRegistry()
	policy, err := fabric.NewTOutOfN(2, "peer0", "peer1", "peer2")
	if err != nil {
		return err
	}
	committer, err := fabric.NewPeer(fabric.PeerConfig{
		ID:       "committing-peer",
		Registry: registry,
		Policies: map[string]fabric.Policy{"asset": policy, "bank": policy},
	})
	if err != nil {
		return err
	}
	// Endorsing peers share the committing peer's state (in Fabric an
	// endorser is a peer role, not a separate state).
	endorsers := make([]*fabric.Endorser, 3)
	for i := range endorsers {
		key, err := cryptoutil.GenerateKeyPair()
		if err != nil {
			return err
		}
		name := fmt.Sprintf("peer%d", i)
		registry.Register(name, key.Public())
		endorsers[i], err = fabric.NewEndorser(name, key, committer.StateDB())
		if err != nil {
			return err
		}
		endorsers[i].Install(fabric.AssetChaincode{})
		endorsers[i].Install(fabric.BankChaincode{})
	}

	// Pump ordered blocks from the frontend into the committing peer
	// (protocol step 5-6: validation and commit).
	stream, err := frontend.Deliver("business-channel", fabric.DeliverNewest())
	if err != nil {
		return err
	}
	go func() {
		for b := range stream.Blocks() {
			result, err := committer.CommitBlock(b)
			if err != nil {
				fmt.Fprintln(os.Stderr, "commit:", err)
				return
			}
			fmt.Printf("  committed block %d: %d valid, %d invalid\n",
				result.BlockNum, result.Valid, result.Invalid)
		}
	}()

	// ---- Application client ---------------------------------------------
	clientKey, err := cryptoutil.GenerateKeyPair()
	if err != nil {
		return err
	}
	client, err := fabric.NewClient(fabric.ClientConfig{
		ID:        "acme-app",
		Key:       clientKey,
		ChannelID: "business-channel",
		Endorsers: endorsers,
		Policy:    policy,
		Orderer:   frontend,
		Committer: committer,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	submit := func(cc, fn string, args ...string) (*fabric.TxResult, error) {
		raw := make([][]byte, len(args))
		for i, a := range args {
			raw[i] = []byte(a)
		}
		res, err := client.Submit(ctx, cc, fn, raw)
		if err != nil {
			return nil, fmt.Errorf("%s.%s: %w", cc, fn, err)
		}
		fmt.Printf("%s.%s(%v) -> %s in block %d\n", cc, fn, args, res.Code, res.BlockNum)
		return res, nil
	}

	fmt.Println("-- asset lifecycle --")
	if _, err := submit("asset", "create", "car-1", "alice"); err != nil {
		return err
	}
	if _, err := submit("asset", "transfer", "car-1", "bob"); err != nil {
		return err
	}
	fmt.Println("-- payments --")
	if _, err := submit("bank", "open", "alice", "100"); err != nil {
		return err
	}
	if _, err := submit("bank", "open", "bob", "10"); err != nil {
		return err
	}
	if _, err := submit("bank", "transfer", "alice", "bob", "40"); err != nil {
		return err
	}

	fmt.Println("-- MVCC conflict demonstration --")
	// Endorse two transfers against the SAME state version, then submit
	// both: the second one to commit reads a stale version and is marked
	// invalid (step 5), yet still appears in the chain (step 6).
	mkStale := func(txID string) (*fabric.Envelope, error) {
		proposal := &fabric.Proposal{
			TxID: txID, ChannelID: "business-channel", ChaincodeID: "bank",
			Fn: "transfer", Args: [][]byte{[]byte("alice"), []byte("bob"), []byte("5")},
			ClientID: "acme-app", TimestampUnixNano: time.Now().UnixNano(),
		}
		tx := &fabric.Transaction{TxID: txID, ChaincodeID: "bank"}
		for _, e := range endorsers {
			resp, err := e.ProcessProposal(proposal)
			if err != nil {
				return nil, err
			}
			tx.RWSet = resp.RWSet
			tx.Response = resp.Response
			tx.Endorsements = append(tx.Endorsements, resp.Endorsement)
		}
		env := &fabric.Envelope{
			ChannelID: "business-channel", ClientID: "acme-app",
			TimestampUnixNano: time.Now().UnixNano(), Payload: tx.Marshal(),
		}
		return env, env.Sign(clientKey)
	}
	events := committer.Subscribe()
	envA, err := mkStale("race-a")
	if err != nil {
		return err
	}
	envB, err := mkStale("race-b") // endorsed against the same versions
	if err != nil {
		return err
	}
	if status := frontend.Broadcast(envA); status != fabric.StatusSuccess {
		return fmt.Errorf("broadcast race-a ack %s", status)
	}
	if status := frontend.Broadcast(envB); status != fabric.StatusSuccess {
		return fmt.Errorf("broadcast race-b ack %s", status)
	}
	outcomes := map[string]fabric.TxValidationCode{}
	for len(outcomes) < 2 {
		select {
		case ev := <-events:
			if ev.TxID == "race-a" || ev.TxID == "race-b" {
				outcomes[ev.TxID] = ev.Code
				fmt.Printf("tx %s -> %s\n", ev.TxID, ev.Code)
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	valid, invalid := 0, 0
	for _, code := range outcomes {
		if code == fabric.TxValid {
			valid++
		} else if code == fabric.TxMVCCConflict {
			invalid++
		}
	}
	if valid != 1 || invalid != 1 {
		return fmt.Errorf("expected exactly one MVCC conflict, got %v", outcomes)
	}

	// ---- Final state ----------------------------------------------------
	alice, _ := committer.StateDB().Get("acct:alice")
	bob, _ := committer.StateDB().Get("acct:bob")
	owner, _ := committer.StateDB().Get("asset:car-1")
	fmt.Printf("final state: car-1 owner=%s, alice=%s, bob=%s\n",
		owner.Value, alice.Value, bob.Value)
	fmt.Printf("ledger height: %d blocks, chain verified: %v\n",
		committer.Ledger().Height(), committer.Ledger().VerifyChain() == nil)
	return nil
}
