// Faults demonstrates the Byzantine fault tolerance the ordering service
// exists for: it runs a durable 4-node cluster (f=1) and keeps ordering
// envelopes while injecting, in turn, an equivocating leader (conflicting
// proposals), a crashed leader, and a crashed follower — and finally
// restarts the crashed node from its data directory, showing it recover
// its durable chain and catch back up to the cluster's full height. The
// frontend's 2f+1-matching rule, the synchronization phase (leader
// change), and the storage subsystem's WAL + checkpoint recovery keep the
// chain growing and consistent throughout. Retention is on as well: the
// nodes prune their block stores behind a snapshot manifest while the
// faults play out, and the final phase shows a seek below the pruned
// floor answering the typed NOT_FOUND status.
package main

import (
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/fabric"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "faults:", err)
		os.Exit(1)
	}
}

func run() error {
	dataDir, err := os.MkdirTemp("", "faults-demo-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)
	cluster, err := core.NewCluster(core.ClusterConfig{
		Nodes:              4,
		BlockSize:          2,
		RequestTimeout:     time.Second, // fast leader change for the demo
		DataDir:            dataDir,     // every node keeps a unified commit log
		WALSegmentBytes:    2048,        // tiny segments so pruning bites early
		CheckpointInterval: 4,           // frequent checkpoints free decision records
		RetainBlocks:       6,           // durable blocks retained per channel
	})
	if err != nil {
		return err
	}
	defer cluster.Stop()
	frontend, err := cluster.NewFrontend("frontend-0", false)
	if err != nil {
		return err
	}
	defer frontend.Close()
	stream, err := frontend.Deliver("ch", fabric.DeliverNewest())
	if err != nil {
		return err
	}
	blocks := stream.Blocks()

	var chain []*fabric.Block
	next := 0
	submitAndAwait := func(label string, count int) error {
		for i := 0; i < count; i++ {
			env := &fabric.Envelope{
				ChannelID:         "ch",
				ClientID:          "faults-demo",
				TimestampUnixNano: time.Now().UnixNano(),
				Payload:           []byte(fmt.Sprintf("%s-%d", label, next)),
			}
			next++
			if status := frontend.Broadcast(env); status != fabric.StatusSuccess {
				return fmt.Errorf("%s: broadcast ack %s", label, status)
			}
		}
		received := 0
		for received < count {
			select {
			case b := <-blocks:
				chain = append(chain, b)
				received += len(b.Envelopes)
			case <-time.After(30 * time.Second):
				return fmt.Errorf("%s: timed out after %d/%d envelopes", label, received, count)
			}
		}
		if err := fabric.VerifyChain(chain); err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		fmt.Printf("  ordered %d envelopes, chain now %d blocks, still verifies\n",
			count, len(chain))
		return nil
	}

	fmt.Println("phase 1: healthy cluster")
	if err := submitAndAwait("healthy", 6); err != nil {
		return err
	}

	fmt.Println("phase 2: leader equivocates (sends conflicting proposals)")
	cluster.Nodes[0].Replica().SetBehavior(consensus.Behavior{Equivocate: true})
	if err := submitAndAwait("equivocation", 6); err != nil {
		return err
	}
	r1 := cluster.Nodes[1].Replica().Stats().Regency
	if r1 < 1 {
		return fmt.Errorf("expected a leader change, still in regency %d", r1)
	}
	fmt.Printf("  synchronization phase ran: replicas now in regency %d\n", r1)

	fmt.Println("phase 3: the (deposed, Byzantine) node 0 crashes outright")
	cluster.KillNode(0)
	if err := submitAndAwait("crash-leader", 6); err != nil {
		return err
	}

	fmt.Println("phase 4: a follower crashes too -- n-f nodes is the minimum")
	// With node 0 gone, crash one more? No: 2 of 4 cannot reach quorum 3.
	// Instead show that the remaining three keep serving (n-f = 3).
	if err := submitAndAwait("steady", 6); err != nil {
		return err
	}

	fmt.Println("phase 5: node 0 restarts from its data directory")
	if err := cluster.RestartNode(0); err != nil {
		return err
	}
	recovered := cluster.Nodes[0].Ledger("ch")
	if recovered == nil {
		return fmt.Errorf("restarted node has no durable ledger")
	}
	if err := recovered.VerifyChain(); err != nil {
		return fmt.Errorf("recovered chain does not verify: %w", err)
	}
	fmt.Printf("  recovered %d blocks from disk, chain verifies\n", recovered.Height())

	// Fresh traffic makes the restarted node state-transfer the decisions
	// it missed while down; its durable ledger catches up to the full
	// chain the frontend saw.
	if err := submitAndAwait("rejoin", 6); err != nil {
		return err
	}
	target := uint64(len(chain))
	deadline := time.Now().Add(30 * time.Second)
	for recovered.Height() < target {
		if time.Now().After(deadline) {
			return fmt.Errorf("restarted node stuck at height %d, want %d",
				recovered.Height(), target)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := recovered.VerifyChain(); err != nil {
		return fmt.Errorf("caught-up chain does not verify: %w", err)
	}
	fmt.Printf("  node 0 rejoined at full height %d; its durable chain verifies\n",
		recovered.Height())

	fmt.Println("phase 6: retention prunes the block stores while the cluster runs")
	// Push traffic until the retention policy compacts: the durable
	// ledgers drop everything below the floor (whole WAL segments are
	// deleted behind a snapshot manifest).
	// Compaction is per node and asynchronous: keep ordering until EVERY
	// node pruned, so the below-floor seek is unservable cluster-wide.
	allPruned := func() bool {
		for _, node := range cluster.Nodes {
			led := node.Ledger("ch")
			if led == nil || led.Floor() == 0 {
				return false
			}
		}
		return true
	}
	pruneDeadline := time.Now().Add(60 * time.Second)
	for !allPruned() {
		if time.Now().After(pruneDeadline) {
			return fmt.Errorf("retention never compacted on every node")
		}
		if err := submitAndAwait("retention", 6); err != nil {
			return err
		}
	}
	fmt.Printf("  node 0 pruned below block %d (height %d); retained chain still verifies: %v\n",
		recovered.Floor(), recovered.Height(), recovered.VerifyChain() == nil)

	// Restart node 0 once more: recovery now loads the snapshot manifest
	// first and serves the chain from the floor upward.
	cluster.KillNode(0)
	if err := cluster.RestartNode(0); err != nil {
		return err
	}
	rec2 := cluster.Nodes[0].Ledger("ch")
	if rec2 == nil {
		return fmt.Errorf("restarted node lost its durable ledger")
	}
	if err := rec2.VerifyChain(); err != nil {
		return fmt.Errorf("post-prune recovery does not verify: %w", err)
	}
	fmt.Printf("  restarted from the manifest: height %d, floor %d, chain verifies from the anchor\n",
		rec2.Height(), rec2.Floor())

	// A fresh frontend (no retained history) seeking the pruned genesis
	// gets the typed pruned status — NOT_FOUND on the wire.
	fe2, err := cluster.NewFrontend("frontend-1", false)
	if err != nil {
		return err
	}
	defer fe2.Close()
	pruned, err := fe2.Deliver("ch", fabric.DeliverFrom(0).Through(0))
	if err != nil {
		return err
	}
	for range pruned.Blocks() {
		return fmt.Errorf("seek below the floor delivered a pruned block")
	}
	perr := pruned.Err()
	if !errors.Is(perr, fabric.ErrPruned) {
		return fmt.Errorf("seek below the floor ended with %v, want the pruned status", perr)
	}
	fmt.Printf("  seek at pruned block 0 answered %s (%v)\n", fabric.StatusOf(perr), perr)

	fmt.Println("phase 7: the kill-and-restart, replayed as a chaos harness scenario")
	// The hand-rolled kill/restart choreography above is what
	// internal/chaos packages up: declare the fault and the invariants,
	// and the harness runs its own loaded cluster against them.
	crash := chaos.Scenario{
		Name:               "faults-demo-crash",
		Description:        "leader crashes mid-run and recovers from its data directory",
		CheckpointInterval: 2,
		RequestTimeout:     time.Second,
		Duration:           4 * time.Second,
		Faults:             []chaos.Fault{chaos.CrashRestartFault(0, 0.3, 0.6)},
		Invariants: []chaos.Invariant{
			chaos.DeliverContinuity(),
			chaos.VerifiedFetch(),
			chaos.WatermarkMonotonic(),
			chaos.DurableFloor(1.0),
			chaos.LeaderChangeObserved(),
		},
	}
	res, err := chaos.Run(crash, chaos.Options{})
	if err != nil {
		return err
	}
	for _, inv := range res.Invariants {
		fmt.Printf("  invariant %-20s pass=%v\n", inv.Name, inv.Pass)
	}
	if !res.Pass {
		return fmt.Errorf("chaos scenario %s failed", res.Scenario)
	}
	fmt.Printf("  harness ordered %d envelopes through the crash (p50 %.1fms, p99 %.1fms)\n",
		res.Delivered, res.P50Ms, res.P99Ms)

	fmt.Printf("done: %d blocks ordered across all fault phases; final chain verifies\n",
		len(chain))
	return nil
}
