// Package repro's top-level benchmarks regenerate every figure of the
// paper's evaluation (Section 6) as testing.B benchmarks. Each benchmark
// prints the figure's rows/series and reports throughput or latency via
// b.ReportMetric, so `go test -bench=.` reproduces the full evaluation.
//
// The sweeps here use reduced per-cell durations so the whole suite
// finishes in minutes on a laptop; cmd/sigbench, cmd/lanbench, and
// cmd/geobench run the same code with the paper's full grids and longer
// windows. Set REPRO_FULL=1 to run the complete grids here too.
package repro

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/bench"
)

// fullSweep selects the paper's complete parameter grids.
func fullSweep() bool {
	return os.Getenv("REPRO_FULL") == "1"
}

// BenchmarkFigure6SignatureGeneration reproduces Figure 6: ECDSA signature
// generation throughput for Fabric block headers (blocks of 10 envelopes)
// against the number of signing worker threads.
func BenchmarkFigure6SignatureGeneration(b *testing.B) {
	workers := []int{1, 2, 4, 8, 16}
	if fullSweep() {
		workers = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	}
	duration := 500 * time.Millisecond
	if fullSweep() {
		duration = 2 * time.Second
	}
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFigure6(workers, 10, duration)
		if err != nil {
			b.Fatalf("figure 6: %v", err)
		}
		peak := 0.0
		for _, row := range rows {
			b.Logf("figure6 workers=%-2d %8.0f signatures/sec", row.Workers, row.SigsPerSec)
			if row.SigsPerSec > peak {
				peak = row.SigsPerSec
			}
		}
		b.ReportMetric(peak, "peak-sigs/sec")
	}
}

// figure7Panel runs one panel of Figure 7 (a cluster size + block size
// combination) and logs each measured cell.
func figure7Panel(b *testing.B, nodes, blockSize int) {
	b.Helper()
	envSizes := []int{40, 1024}
	receivers := []int{1, 4, 16}
	measure := 1200 * time.Millisecond
	warmup := 600 * time.Millisecond
	clients := 8
	if fullSweep() {
		envSizes = bench.PaperEnvelopeSizes
		receivers = []int{1, 2, 4, 8, 16, 32}
		measure = 3 * time.Second
		warmup = time.Second
		clients = 16
	}
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFigure7Panel(nodes, blockSize, envSizes, receivers, bench.Fig7Cell{
			Clients: clients,
			Warmup:  warmup,
			Measure: measure,
		})
		if err != nil {
			b.Fatalf("figure 7 panel %d/%d: %v", nodes, blockSize, err)
		}
		var peak float64
		for _, row := range rows {
			b.Logf("figure7 nodes=%-2d block=%-3d env=%-4dB recv=%-2d %9.0f tx/sec %7.0f blocks/sec",
				row.Nodes, row.BlockSize, row.EnvSize, row.Receivers, row.TxPerSec, row.BlockPerSec)
			if row.TxPerSec > peak {
				peak = row.TxPerSec
			}
		}
		b.ReportMetric(peak, "peak-tx/sec")
	}
}

// BenchmarkFigure7 reproduces the six panels of Figure 7: LAN throughput
// for 4/7/10 orderers with 10 or 100 envelopes per block, swept over
// envelope sizes and receiver counts.
func BenchmarkFigure7(b *testing.B) {
	for _, panel := range []struct{ nodes, block int }{
		{4, 10}, {4, 100}, {7, 10}, {7, 100}, {10, 10}, {10, 100},
	} {
		name := fmt.Sprintf("%dnodes_%denv", panel.nodes, panel.block)
		b.Run(name, func(b *testing.B) {
			figure7Panel(b, panel.nodes, panel.block)
		})
	}
}

// geoFigure runs one geo-latency figure (block size 10 = Figure 8,
// 100 = Figure 9) across both protocols.
func geoFigure(b *testing.B, blockSize int) {
	b.Helper()
	envSizes := []int{40, 4096}
	measure := 2 * time.Second
	warmup := 1500 * time.Millisecond
	if fullSweep() {
		envSizes = bench.PaperEnvelopeSizes
		measure = 6 * time.Second
		warmup = 2 * time.Second
	}
	for i := 0; i < b.N; i++ {
		var wheatMedianSum, bftMedianSum float64
		var count int
		for _, size := range envSizes {
			for _, protocol := range []bench.GeoProtocol{bench.ProtocolBFTSmart, bench.ProtocolWheat} {
				rows, err := bench.RunGeoCell(bench.GeoCell{
					Protocol:          protocol,
					BlockSize:         blockSize,
					EnvSize:           size,
					WindowPerFrontend: 96,
					Warmup:            warmup,
					Measure:           measure,
				})
				if err != nil {
					b.Fatalf("geo cell: %v", err)
				}
				for _, row := range rows {
					b.Logf("figure%d frontend=%-9s proto=%-9s env=%-4dB median=%6.0fms p90=%6.0fms %6.0f tx/sec",
						figureNumber(blockSize), row.Frontend, row.Protocol, row.EnvSize,
						row.MedianMs, row.P90Ms, row.TxPerSec)
					if protocol == bench.ProtocolWheat {
						wheatMedianSum += row.MedianMs
					} else {
						bftMedianSum += row.MedianMs
						count++
					}
				}
			}
		}
		if count > 0 {
			b.ReportMetric(bftMedianSum/float64(count), "bftsmart-median-ms")
			b.ReportMetric(wheatMedianSum/float64(count), "wheat-median-ms")
		}
	}
}

func figureNumber(blockSize int) int {
	if blockSize >= 100 {
		return 9
	}
	return 8
}

// BenchmarkFigure8GeoLatency reproduces Figure 8: geo-distributed latency
// with blocks of 10 envelopes, BFT-SMaRt vs WHEAT, at four frontends.
func BenchmarkFigure8GeoLatency(b *testing.B) {
	geoFigure(b, 10)
}

// BenchmarkFigure9GeoLatency reproduces Figure 9: the same comparison with
// blocks of 100 envelopes.
func BenchmarkFigure9GeoLatency(b *testing.B) {
	geoFigure(b, 100)
}

// BenchmarkEquation1Bound verifies the paper's Equation (1) on live
// measurements: ordering-service throughput never exceeds
// min(signature rate x block size, raw ordering rate).
func BenchmarkEquation1Bound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunEquation1(bench.Fig7Cell{
			Nodes:     4,
			BlockSize: 10,
			EnvSize:   40,
			Receivers: 1,
			Clients:   8,
			Warmup:    500 * time.Millisecond,
			Measure:   1500 * time.Millisecond,
		})
		if err != nil {
			b.Fatalf("equation 1: %v", err)
		}
		b.Logf("equation1 measured=%.0f sign-bound=%.0f order-bound=%.0f satisfied=%v",
			res.MeasuredTPS, res.SignBoundTPS, res.OrderBoundTPS, res.Satisfied)
		if !res.Satisfied {
			b.Fatalf("Equation (1) violated: TP=%.0f > min(%.0f, %.0f)",
				res.MeasuredTPS, res.SignBoundTPS, res.OrderBoundTPS)
		}
		b.ReportMetric(res.MeasuredTPS, "tx/sec")
	}
}

// BenchmarkSoloOrdererBaseline measures HLF's non-replicated solo orderer
// on the same workload shape as Figure 7's smallest cell, quantifying the
// cost of Byzantine fault tolerance (ablation; not a paper figure).
func BenchmarkSoloOrdererBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tps, err := runSoloBaseline(1500 * time.Millisecond)
		if err != nil {
			b.Fatalf("solo baseline: %v", err)
		}
		b.Logf("solo orderer: %.0f tx/sec (no replication)", tps)
		b.ReportMetric(tps, "tx/sec")
	}
}

// BenchmarkKafkaOrdererBaseline measures the crash-fault-tolerant
// Kafka-style orderer HLF v1.0 shipped with (ablation: CFT vs BFT; not a
// paper figure, but the baseline Section 3 describes).
func BenchmarkKafkaOrdererBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tps, err := runKafkaBaseline(1500 * time.Millisecond)
		if err != nil {
			b.Fatalf("kafka baseline: %v", err)
		}
		b.Logf("kafka orderer: %.0f tx/sec (crash tolerance only)", tps)
		b.ReportMetric(tps, "tx/sec")
	}
}
