package repro

import (
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/fabric"
	"repro/internal/kafka"
)

// runSoloBaseline saturates HLF's non-replicated solo orderer with the
// Figure 7 small-cell workload shape and returns envelopes/second. Used by
// BenchmarkSoloOrdererBaseline as the no-replication ablation point.
func runSoloBaseline(measure time.Duration) (float64, error) {
	key, err := cryptoutil.GenerateKeyPair()
	if err != nil {
		return 0, err
	}
	solo, err := core.NewSoloOrderer(core.SoloConfig{
		BlockSize:      10,
		SigningWorkers: 16,
		Key:            key,
	})
	if err != nil {
		return 0, err
	}
	defer solo.Close()

	stream, err := solo.Deliver("bench", fabric.DeliverNewest())
	if err != nil {
		return 0, err
	}
	defer stream.Cancel()
	var delivered atomic.Uint64
	go func() {
		for b := range stream.Blocks() {
			delivered.Add(uint64(len(b.Envelopes)))
		}
	}()

	gen := bench.NewEnvelopeGen("bench", "solo-load", 40, 1)
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			raw, _ := gen.Next()
			if solo.BroadcastRaw(raw) != fabric.StatusSuccess {
				return
			}
			// Closed loop against delivery so the signing pool, not an
			// unbounded queue, is the limiter.
			for delivered.Load()+2000 < gen.Sent() {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	time.Sleep(measure / 3) // warmup
	startCount := delivered.Load()
	start := time.Now()
	time.Sleep(measure)
	elapsed := time.Since(start)
	endCount := delivered.Load()
	close(stop)
	return float64(endCount-startCount) / elapsed.Seconds(), nil
}

// runKafkaBaseline saturates the crash-fault-tolerant Kafka-style orderer
// (the service HLF v1.0 shipped with) on the same workload shape,
// quantifying what Byzantine tolerance costs relative to crash tolerance.
func runKafkaBaseline(measure time.Duration) (float64, error) {
	cluster, err := kafka.NewCluster(kafka.ClusterConfig{Brokers: 3, MinISR: 2})
	if err != nil {
		return 0, err
	}
	key, err := cryptoutil.GenerateKeyPair()
	if err != nil {
		return 0, err
	}
	osn, err := kafka.NewOSN(kafka.OSNConfig{
		ID:             "osn0",
		Cluster:        cluster,
		BlockSize:      10,
		PollInterval:   time.Millisecond,
		SigningWorkers: 16,
		Key:            key,
	})
	if err != nil {
		return 0, err
	}
	defer osn.Close()

	stream := osn.Deliver("bench")
	var delivered atomic.Uint64
	go func() {
		for b := range stream {
			delivered.Add(uint64(len(b.Envelopes)))
		}
	}()

	gen := bench.NewEnvelopeGen("bench", "kafka-load", 40, 1)
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			raw, _ := gen.Next()
			if osn.BroadcastRaw(raw) != fabric.StatusSuccess {
				return
			}
			for delivered.Load()+2000 < gen.Sent() {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	time.Sleep(measure / 3) // warmup
	startCount := delivered.Load()
	start := time.Now()
	time.Sleep(measure)
	elapsed := time.Since(start)
	endCount := delivered.Load()
	close(stop)
	return float64(endCount-startCount) / elapsed.Seconds(), nil
}
