package core

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/fabric"
	"repro/internal/storage"
)

// waitLedgerHeight polls a durable node's ledger until it reaches height.
func waitLedgerHeight(t *testing.T, n *OrderingNode, channel string, height uint64, within time.Duration) *fabric.Ledger {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		if led := n.Ledger(channel); led != nil && led.Height() >= height {
			return led
		}
		if time.Now().After(deadline) {
			var got uint64
			if led := n.Ledger(channel); led != nil {
				got = led.Height()
			}
			t.Fatalf("node %d ledger stuck at height %d, want %d", n.ID(), got, height)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDurableClusterRecoversAcrossFullRestart is the acceptance scenario:
// order N blocks into data directories, stop the whole cluster, reopen the
// data directory directly and check the durable chain, then restart a full
// cluster from the same directories and keep ordering on top of the
// recovered chain.
func TestDurableClusterRecoversAcrossFullRestart(t *testing.T) {
	dataDir := t.TempDir()
	c := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 5, DataDir: dataDir})
	fe := testFrontend(t, c, "frontend-a", false)
	stream := deliverNewest(t, fe, "ch1")

	const envs = 20
	for i := 0; i < envs; i++ {
		if st := fe.Broadcast(mkEnvelope("ch1", i, 64)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %v", st)
		}
	}
	collectBlocks(t, stream, envs, 10*time.Second)
	for i := range c.Nodes {
		waitLedgerHeight(t, c.Nodes[i], "ch1", 4, 5*time.Second)
	}
	fe.Close()
	c.Stop() // hard stop: only the data directories survive

	// Cold read of node 0's directory: the chain must be fully there.
	store, err := storage.Open(c.NodeDataDir(0), storage.Options{})
	if err != nil {
		t.Fatalf("reopening node 0 storage: %v", err)
	}
	rec := store.Recovered()
	info := rec.Chains["ch1"]
	if info.Height != 4 {
		t.Fatalf("recovered height %d, want 4", info.Height)
	}
	led := fabric.RestoreLedger("ch1", store, fabric.ChainState{
		Floor:    info.Floor,
		Anchor:   info.Anchor,
		Height:   info.Height,
		LastHash: info.LastHash,
	})
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("recovered chain does not verify: %v", err)
	}
	if led.Height() != 4 {
		t.Fatalf("recovered height %d, want 4", led.Height())
	}
	store.Close()

	// Restart the whole cluster from the same directories and extend the
	// chain: recovery must hand every node the exact (height, prevHash)
	// frontier or the new blocks would break the hash chain.
	c2 := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 5, DataDir: dataDir})
	fe2 := testFrontend(t, c2, "frontend-b", false)
	stream2 := deliverNewest(t, fe2, "ch1")
	for i := envs; i < envs+5; i++ {
		if st := fe2.Broadcast(mkEnvelope("ch1", i, 64)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast after restart: %v", st)
		}
	}
	fresh := collectBlocks(t, stream2, 5, 10*time.Second)
	if fresh[0].Header.Number != 4 {
		t.Fatalf("first block after restart has number %d, want 4", fresh[0].Header.Number)
	}
	led2 := waitLedgerHeight(t, c2.Nodes[0], "ch1", 5, 5*time.Second)
	if err := led2.VerifyChain(); err != nil {
		t.Fatalf("extended chain does not verify: %v", err)
	}
}

// TestKilledNodeRestartsFromDataDirAndCatchesUp kills one replica, keeps
// the cluster ordering without it, restarts it from its data directory,
// and checks it recovers its durable height and then catches back up to
// the cluster's full chain.
func TestKilledNodeRestartsFromDataDirAndCatchesUp(t *testing.T) {
	c := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 2, DataDir: t.TempDir()})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch1")

	submit := func(from, count int) {
		t.Helper()
		for i := from; i < from+count; i++ {
			if st := fe.Broadcast(mkEnvelope("ch1", i, 32)); st != fabric.StatusSuccess {
				t.Fatalf("broadcast %d: %v", i, st)
			}
		}
		collectBlocks(t, stream, count, 10*time.Second)
	}

	submit(0, 6) // blocks 0..2
	waitLedgerHeight(t, c.Nodes[3], "ch1", 3, 5*time.Second)
	c.KillNode(3)

	submit(6, 6) // blocks 3..5, ordered by the surviving n-f nodes

	if err := c.RestartNode(3); err != nil {
		t.Fatalf("restart: %v", err)
	}
	// Recovery alone must bring back the pre-crash height...
	led := waitLedgerHeight(t, c.Nodes[3], "ch1", 3, 5*time.Second)
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("recovered chain: %v", err)
	}
	// ...and fresh traffic makes the node state-transfer the missed
	// decisions and extend its durable chain to the cluster's height.
	submit(12, 6) // blocks 6..8
	led = waitLedgerHeight(t, c.Nodes[3], "ch1", 9, 15*time.Second)
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("caught-up chain: %v", err)
	}
}

// TestRestartedNodeCatchesUpAcrossLeaderChange crashes a node, forces a
// leader change while it is down (the restarted replica comes back in a
// stale regency), and checks the f+1 regency catch-up rule brings it back
// into the current view and up to the full chain.
func TestRestartedNodeCatchesUpAcrossLeaderChange(t *testing.T) {
	c := testCluster(t, ClusterConfig{
		Nodes:          4,
		BlockSize:      2,
		DataDir:        t.TempDir(),
		RequestTimeout: time.Second, // fast leader change
	})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch1")

	submit := func(from, count int) {
		t.Helper()
		for i := from; i < from+count; i++ {
			if st := fe.Broadcast(mkEnvelope("ch1", i, 32)); st != fabric.StatusSuccess {
				t.Fatalf("broadcast %d: %v", i, st)
			}
		}
		collectBlocks(t, stream, count, 20*time.Second)
	}

	submit(0, 6) // blocks 0..2
	waitLedgerHeight(t, c.Nodes[3], "ch1", 3, 5*time.Second)
	c.KillNode(3)

	// Depose the leader while node 3 is down: the survivors move to a
	// newer regency that node 3 has never heard of.
	c.Nodes[0].Replica().SetBehavior(consensus.Behavior{Equivocate: true})
	submit(6, 6) // blocks 3..5, ordered after the leader change
	c.Nodes[0].Replica().SetBehavior(consensus.Behavior{})
	if reg := c.Nodes[1].Replica().Stats().Regency; reg < 1 {
		t.Fatalf("no leader change happened (regency %d)", reg)
	}

	if err := c.RestartNode(3); err != nil {
		t.Fatalf("restart: %v", err)
	}
	submit(12, 6) // blocks 6..8
	led := waitLedgerHeight(t, c.Nodes[3], "ch1", 9, 20*time.Second)
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("caught-up chain: %v", err)
	}
	if reg := c.Nodes[3].Replica().Stats().Regency; reg < 1 {
		t.Fatalf("restarted node never adopted the current regency (%d)", reg)
	}
}

// TestBlockNotDisseminatedBeforeDecisionDurable proves the write-ahead
// invariant under asynchronous decision logging: with every node's commit
// waves stalled (decisions enqueued but not fsynced), consensus keeps
// ordering and sealing blocks — the event loop is no longer serialized on
// the fsync — but no block is persisted or disseminated anywhere, because
// the send drain gates on the decision's durability token. Releasing the
// waves lets everything flow. A node killed in the stalled window would
// lose the blocks (see storage's crash-window test) — it can never have
// shipped them unsynced.
func TestBlockNotDisseminatedBeforeDecisionDurable(t *testing.T) {
	release := make(chan struct{})
	c := testCluster(t, ClusterConfig{
		Nodes:          4,
		BlockSize:      2,
		DataDir:        t.TempDir(),
		CommitSyncHook: func() { <-release },
	})
	// The hook must be released before cluster teardown, or Stop would
	// wait forever on the stalled flush barriers.
	released := false
	defer func() {
		if !released {
			close(release)
		}
	}()
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch1")

	const envs = 6 // 3 blocks
	for i := 0; i < envs; i++ {
		if st := fe.Broadcast(mkEnvelope("ch1", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast %d: %v", i, st)
		}
	}

	// Consensus must make progress while every fsync is stalled: the
	// decision log is enqueue-and-continue now.
	deadline := time.Now().Add(10 * time.Second)
	for c.Nodes[0].Stats().BlocksCut < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("consensus stalled with fsyncs held: %d blocks cut", c.Nodes[0].Stats().BlocksCut)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// ...but nothing may leave any node before the decisions are on disk:
	// no dissemination (the frontend sees nothing) and no block persist.
	select {
	case b := <-stream:
		t.Fatalf("block %d disseminated before its decision was fsynced", b.Header.Number)
	case <-time.After(300 * time.Millisecond):
	}
	for i := range c.Nodes {
		if led := c.Nodes[i].Ledger("ch1"); led != nil && led.Height() > 0 {
			t.Fatalf("node %d persisted %d blocks before the decisions were fsynced", i, led.Height())
		}
	}

	// Release the fsync waves: the gated blocks drain in order.
	released = true
	close(release)
	collectBlocks(t, stream, envs, 10*time.Second)
	for i := range c.Nodes {
		led := waitLedgerHeight(t, c.Nodes[i], "ch1", 3, 5*time.Second)
		if err := led.VerifyChain(); err != nil {
			t.Fatalf("node %d chain after release: %v", i, err)
		}
	}
}

// TestKillBetweenDecisionEnqueueAndBlockPersistRecovers extends the
// kill/restart harness to the new crash window: a node is killed while
// its commit waves are stalled — decisions enqueued on the shared queue,
// blocks sealed but held at the durability gate, nothing persisted. The
// kill's storage close flushes the enqueued decisions (they were accepted
// into the queue), so restart recovery must replay them and re-persist
// every block exactly once, leaving a verifiable chain at full height.
func TestKillBetweenDecisionEnqueueAndBlockPersistRecovers(t *testing.T) {
	release := make(chan struct{})
	stall := make(chan struct{})
	close(stall) // start released; armed per-test below
	var hookMu sync.Mutex
	hook := func() {
		hookMu.Lock()
		ch := stall
		hookMu.Unlock()
		<-ch
	}
	c := testCluster(t, ClusterConfig{
		Nodes:          4,
		BlockSize:      2,
		DataDir:        t.TempDir(),
		CommitSyncHook: hook,
	})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch1")

	submit := func(from, count int) {
		t.Helper()
		for i := from; i < from+count; i++ {
			if st := fe.Broadcast(mkEnvelope("ch1", i, 32)); st != fabric.StatusSuccess {
				t.Fatalf("broadcast %d: %v", i, st)
			}
		}
		collectBlocks(t, stream, count, 10*time.Second)
	}

	submit(0, 4) // blocks 0..1, fully durable everywhere
	for i := range c.Nodes {
		waitLedgerHeight(t, c.Nodes[i], "ch1", 2, 5*time.Second)
	}

	// Arm the stall and order more traffic: decisions for blocks 2..3 are
	// enqueued but no node persists or disseminates them.
	hookMu.Lock()
	stall = release
	hookMu.Unlock()
	for i := 4; i < 8; i++ {
		if st := fe.Broadcast(mkEnvelope("ch1", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast %d: %v", i, st)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.Nodes[3].Stats().BlocksCut < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("node 3 stalled: %d blocks cut", c.Nodes[3].Stats().BlocksCut)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if h := c.Nodes[3].Ledger("ch1").Height(); h != 2 {
		t.Fatalf("node 3 persisted height %d while stalled, want 2", h)
	}

	// Release and immediately kill node 3: the close-time flush makes the
	// enqueued decisions durable, but the block persists race the kill —
	// recovery must land on the same chain either way.
	close(release)
	c.KillNode(3)
	collectBlocks(t, stream, 4, 10*time.Second) // survivors deliver blocks 2..3

	if err := c.RestartNode(3); err != nil {
		t.Fatalf("restart: %v", err)
	}
	// Recovery alone (decision-log replay, no new traffic) must re-seal
	// and re-persist the blocks whose decisions were flushed at kill
	// time, exactly once: height 4, hash chain intact.
	led := waitLedgerHeight(t, c.Nodes[3], "ch1", 4, 10*time.Second)
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("recovered chain: %v", err)
	}
	for num := uint64(0); num < 4; num++ {
		b, err := led.Block(num)
		if err != nil || b.Header.Number != num {
			t.Fatalf("block %d after recovery: %v", num, err)
		}
	}

	// And the node keeps ordering on top of the recovered chain.
	submit(8, 4) // blocks 4..5
	led = waitLedgerHeight(t, c.Nodes[3], "ch1", 6, 15*time.Second)
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("extended chain: %v", err)
	}
}

// TestRestartAfterCheckpointJumpBackfillsBlocks: kill a node, advance the
// cluster far past a (small) checkpoint interval so the survivors prune
// the decision log, restart the node, and keep ordering. The restarted
// replica is jumped forward by a peer checkpoint, which skips blocks its
// local store never sealed; the FetchBlocks back-fill must close that gap
// so the durable chain is contiguous to full height.
func TestRestartAfterCheckpointJumpBackfillsBlocks(t *testing.T) {
	c := testCluster(t, ClusterConfig{
		Nodes:              4,
		BlockSize:          2,
		DataDir:            t.TempDir(),
		CheckpointInterval: 2, // checkpoint (and prune) aggressively
	})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch1")

	next := 0
	submit := func(count int) {
		t.Helper()
		for i := 0; i < count; i++ {
			if st := fe.Broadcast(mkEnvelope("ch1", next, 32)); st != fabric.StatusSuccess {
				t.Fatalf("broadcast %d: %s", next, st)
			}
			next++
		}
		collectBlocks(t, stream, count, 10*time.Second)
	}

	submit(6) // blocks 0..2
	waitLedgerHeight(t, c.Nodes[3], "ch1", 3, 5*time.Second)
	c.KillNode(3)

	// Many separate submit rounds while the node is down: each round is at
	// least one consensus decision, so the survivors take several
	// checkpoints and prune the log the restarted node would need to
	// replay — forcing a checkpoint jump instead of decision catch-up.
	for round := 0; round < 8; round++ {
		submit(2) // blocks 3..10
	}

	if err := c.RestartNode(3); err != nil {
		t.Fatalf("restart: %v", err)
	}
	submit(4) // fresh traffic drives the state transfer and the jump

	// The back-fill must leave node 3's durable chain contiguous at full
	// height: every block from genesis, hash-chain intact.
	target := uint64(next / 2)
	led := waitLedgerHeight(t, c.Nodes[3], "ch1", target, 30*time.Second)
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("back-filled chain does not verify: %v", err)
	}
	b0, err := led.Block(0)
	if err != nil || b0.Header.Number != 0 {
		t.Fatalf("genesis missing after back-fill: %v", err)
	}

	// And the on-disk copy agrees after another restart: the gap was
	// filled durably, not just in memory.
	c.KillNode(3)
	if err := c.RestartNode(3); err != nil {
		t.Fatalf("second restart: %v", err)
	}
	led = waitLedgerHeight(t, c.Nodes[3], "ch1", target, 15*time.Second)
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("chain after second restart: %v", err)
	}
}

// TestBlockDisseminatedBeforeBlockRecordDurable proves the decision-gated
// early-dissemination contract, both directions, against a single node
// whose commit waves the test controls (the other three run free, so the
// cluster keeps ordering):
//
//  1. while node 0's waves are stalled, its sealed block is NOT
//     disseminated — the decision record is not durable yet (the gate
//     the paper's write-ahead rule requires);
//  2. after exactly one wave (the one carrying the decision records)
//     commits, node 0 disseminates the block although its BLOCK record
//     is still stuck in a later, stalled wave — observed as the persist
//     watermark sitting below the disseminated height.
//
// A raw transport endpoint registered only with node 0 observes that
// node's dissemination directly, so the assertions are per node, not
// quorum-blurred.
func TestBlockDisseminatedBeforeBlockRecordDurable(t *testing.T) {
	permits := make(chan struct{})
	var open atomic.Bool
	open.Store(true)
	var closeOnce sync.Once
	releaseAll := func() {
		open.Store(true)
		closeOnce.Do(func() { close(permits) })
	}
	defer releaseAll()
	hook := func() {
		if open.Load() {
			return
		}
		<-permits
	}
	c := testCluster(t, ClusterConfig{
		Nodes:     4,
		BlockSize: 2,
		DataDir:   t.TempDir(),
		CommitSyncHookFor: func(node int) func() {
			if node == 0 {
				return hook
			}
			return nil
		},
	})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch1")

	// A raw listener subscribed to node 0 only: every MsgBlock it sees
	// left node 0.
	listener, err := c.Network.Join("listener-0")
	if err != nil {
		t.Fatalf("join listener: %v", err)
	}
	defer listener.Close()
	node0 := c.Replicas()[0].Addr()
	listener.Send(node0, MsgRegister, nil)
	fromNode0 := make(chan *fabric.Block, 16)
	go func() {
		for m := range listener.Inbox() {
			if m.Type != MsgBlock {
				continue
			}
			if _, b, _, err := unmarshalBlockMsg(m.Payload); err == nil {
				fromNode0 <- b
			}
		}
	}()
	waitNode0Block := func(number uint64, within time.Duration) bool {
		deadline := time.After(within)
		for {
			select {
			case b := <-fromNode0:
				if b.Header.Number == number {
					return true
				}
			case <-deadline:
				return false
			}
		}
	}

	// Phase 1: waves open. Block 0 flows everywhere; node 0's put token
	// completes, so its persist watermark reaches 1.
	for i := 0; i < 2; i++ {
		if st := fe.Broadcast(mkEnvelope("ch1", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast %d: %v", i, st)
		}
	}
	collectBlocks(t, stream, 2, 10*time.Second)
	if !waitNode0Block(0, 10*time.Second) {
		t.Fatal("node 0 never disseminated block 0")
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.Nodes[0].PersistWatermark("ch1") < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("node 0 persist watermark stuck at %d, want 1", c.Nodes[0].PersistWatermark("ch1"))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Phase 2: stall node 0's waves and order block 1. The other three
	// nodes release it to the frontend; node 0 seals it (async decision
	// logging keeps its event loop running) but must disseminate NOTHING
	// — its decision record is not durable.
	open.Store(false)
	for i := 2; i < 4; i++ {
		if st := fe.Broadcast(mkEnvelope("ch1", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast %d: %v", i, st)
		}
	}
	collectBlocks(t, stream, 2, 10*time.Second) // quorum of the unstalled nodes
	deadline = time.Now().Add(10 * time.Second)
	for c.Nodes[0].Stats().BlocksCut < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("node 0 stalled entirely: %d blocks cut", c.Nodes[0].Stats().BlocksCut)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if waitNode0Block(1, 300*time.Millisecond) {
		t.Fatal("node 0 disseminated block 1 before its decision record was durable")
	}

	// Phase 3: grant single wave permits. The first wave that commits
	// carries node 0's pending decision records (its block put is still
	// held at the gate, so it cannot be in that wave); dissemination must
	// follow while the block record sits in the next, still-stalled wave.
	disseminated := false
	for i := 0; i < 10 && !disseminated; i++ {
		select {
		case permits <- struct{}{}:
		case <-time.After(2 * time.Second):
			t.Fatal("no wave waiting for a permit")
		}
		disseminated = waitNode0Block(1, time.Second)
	}
	if !disseminated {
		t.Fatal("node 0 never disseminated block 1 after its decision waves committed")
	}
	if mark := c.Nodes[0].PersistWatermark("ch1"); mark != 1 {
		t.Fatalf("persist watermark = %d at dissemination time, want 1 (block record must not be durable yet)", mark)
	}

	// Phase 4: release everything; the block record drains, the watermark
	// catches up, and the durable chain verifies.
	releaseAll()
	deadline = time.Now().Add(10 * time.Second)
	for c.Nodes[0].PersistWatermark("ch1") < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("persist watermark stuck at %d after release", c.Nodes[0].PersistWatermark("ch1"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	led := waitLedgerHeight(t, c.Nodes[0], "ch1", 2, 5*time.Second)
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("node 0 chain after release: %v", err)
	}
}

// TestCheckpointSaveGatedOnPersistWatermark proves the crash-mid-wave
// hazard is closed. Recovery skips every decision at or below the on-disk
// checkpoint seq, so a checkpoint saved while the blocks it implies are
// still queued behind a stalled fsync wave would turn a crash into a
// permanent ledger gap. With node 3's commit waves stalled, its consensus
// layer keeps executing decisions past the checkpoint interval — but the
// async save must be deferred by the persist-watermark gate: a crash image
// taken mid-stall recovers with no checkpoint (full replay, no gap), and
// the deferred save lands only after the waves drain.
func TestCheckpointSaveGatedOnPersistWatermark(t *testing.T) {
	var open atomic.Bool
	open.Store(true)
	release := make(chan struct{})
	var released atomic.Bool
	releaseAll := func() {
		if released.CompareAndSwap(false, true) {
			close(release)
		}
	}
	defer releaseAll()

	c := testCluster(t, ClusterConfig{
		Nodes:              4,
		BlockSize:          1,
		DataDir:            t.TempDir(),
		CheckpointInterval: 2, // checkpoint aggressively while stalled
		CommitSyncHookFor: func(node int) func() {
			if node != 3 {
				return nil
			}
			return func() {
				if !open.Load() {
					<-release
				}
			}
		},
	})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch1")

	// Warm-up: one block lands durably on node 3.
	if st := fe.Broadcast(mkEnvelope("ch1", 0, 32)); st != fabric.StatusSuccess {
		t.Fatalf("broadcast: %v", st)
	}
	collectBlocks(t, stream, 1, 10*time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for c.Nodes[3].PersistWatermark("ch1") < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("node 3 watermark stuck at %d, want 1", c.Nodes[3].PersistWatermark("ch1"))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Stall node 3's commit waves, then drive decisions well past the
	// checkpoint interval — one block per decision, each one committed
	// before the next is submitted.
	open.Store(false)
	const extra = 6
	for i := 1; i <= extra; i++ {
		if st := fe.Broadcast(mkEnvelope("ch1", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast %d: %v", i, st)
		}
		collectBlocks(t, stream, 1, 10*time.Second)
	}

	// Node 3 executed every decision (blocks are cut — then parked behind
	// the stalled decision records)…
	deadline = time.Now().Add(10 * time.Second)
	for c.Nodes[3].Stats().BlocksCut < 1+extra {
		if time.Now().After(deadline) {
			t.Fatalf("node 3 cut %d blocks, want %d", c.Nodes[3].Stats().BlocksCut, 1+extra)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// …and the unstalled nodes durably saved checkpoints at these seqs,
	// so node 3's consensus attempted the same saves.
	deadline = time.Now().Add(10 * time.Second)
	for {
		seq, err := c.Nodes[0].SavedCheckpointSeq()
		if err != nil {
			t.Fatalf("node 0 checkpoint: %v", err)
		}
		if seq >= 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("node 0 never saved a checkpoint")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if mark := c.Nodes[3].PersistWatermark("ch1"); mark != 1 {
		t.Fatalf("node 3 watermark = %d while stalled, want 1", mark)
	}
	if seq, err := c.Nodes[3].SavedCheckpointSeq(); err != nil || seq != -1 {
		t.Fatalf("node 3 on-disk checkpoint seq = %d (err %v) while its blocks are not durable; the gate must defer the save", seq, err)
	}

	// A crash image taken right now must recover gap-free: no on-disk
	// checkpoint means recovery replays every logged decision over the
	// durable prefix.
	crashDir := filepath.Join(t.TempDir(), "crash-image")
	if err := os.CopyFS(crashDir, os.DirFS(c.NodeDataDir(3))); err != nil {
		t.Fatalf("copying crash image: %v", err)
	}
	img, err := storage.Open(crashDir, storage.Options{})
	if err != nil {
		t.Fatalf("recovering crash image: %v", err)
	}
	rec := img.Recovered()
	if rec.CheckpointSeq != -1 {
		t.Fatalf("crash image checkpoint seq = %d, want -1: a checkpoint ahead of durable blocks makes recovery skip their decisions permanently", rec.CheckpointSeq)
	}
	if h := rec.Chains["ch1"].Height; h > 1 {
		t.Fatalf("crash image has %d durable blocks, want at most the pre-stall 1", h)
	}
	img.Close()

	// Release: the waves drain, the watermark catches up, and the
	// deferred checkpoint save finally lands.
	releaseAll()
	deadline = time.Now().Add(10 * time.Second)
	for {
		seq, err := c.Nodes[3].SavedCheckpointSeq()
		if err != nil {
			t.Fatalf("node 3 checkpoint: %v", err)
		}
		if seq >= 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("node 3 never saved its deferred checkpoint after release")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And a real crash-restart now recovers the whole verified chain.
	c.KillNode(3)
	if err := c.RestartNode(3); err != nil {
		t.Fatalf("restart: %v", err)
	}
	led := waitLedgerHeight(t, c.Nodes[3], "ch1", 1+extra, 10*time.Second)
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("node 3 chain after crash-restart: %v", err)
	}
}

// TestPersistWatermarkTracksDurableHeight checks the watermark under
// normal operation: it converges to the ledger height once put tokens
// complete, on every node.
func TestPersistWatermarkTracksDurableHeight(t *testing.T) {
	c := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 2, DataDir: t.TempDir()})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch1")
	const envs = 8 // 4 blocks
	for i := 0; i < envs; i++ {
		if st := fe.Broadcast(mkEnvelope("ch1", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast %d: %v", i, st)
		}
	}
	collectBlocks(t, stream, envs, 10*time.Second)
	for i := range c.Nodes {
		waitLedgerHeight(t, c.Nodes[i], "ch1", 4, 5*time.Second)
		deadline := time.Now().Add(5 * time.Second)
		for c.Nodes[i].PersistWatermark("ch1") < 4 {
			if time.Now().After(deadline) {
				t.Fatalf("node %d watermark stuck at %d, want 4", i, c.Nodes[i].PersistWatermark("ch1"))
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}
