package core

import (
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/fabric"
	"repro/internal/storage"
)

// waitLedgerHeight polls a durable node's ledger until it reaches height.
func waitLedgerHeight(t *testing.T, n *OrderingNode, channel string, height uint64, within time.Duration) *fabric.Ledger {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		if led := n.Ledger(channel); led != nil && led.Height() >= height {
			return led
		}
		if time.Now().After(deadline) {
			var got uint64
			if led := n.Ledger(channel); led != nil {
				got = led.Height()
			}
			t.Fatalf("node %d ledger stuck at height %d, want %d", n.ID(), got, height)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDurableClusterRecoversAcrossFullRestart is the acceptance scenario:
// order N blocks into data directories, stop the whole cluster, reopen the
// data directory directly and check the durable chain, then restart a full
// cluster from the same directories and keep ordering on top of the
// recovered chain.
func TestDurableClusterRecoversAcrossFullRestart(t *testing.T) {
	dataDir := t.TempDir()
	c := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 5, DataDir: dataDir})
	fe := testFrontend(t, c, "frontend-a", false)
	stream := deliverNewest(t, fe, "ch1")

	const envs = 20
	for i := 0; i < envs; i++ {
		if st := fe.Broadcast(mkEnvelope("ch1", i, 64)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %v", st)
		}
	}
	collectBlocks(t, stream, envs, 10*time.Second)
	for i := range c.Nodes {
		waitLedgerHeight(t, c.Nodes[i], "ch1", 4, 5*time.Second)
	}
	fe.Close()
	c.Stop() // hard stop: only the data directories survive

	// Cold read of node 0's directory: the chain must be fully there.
	store, err := storage.Open(c.NodeDataDir(0), storage.Options{})
	if err != nil {
		t.Fatalf("reopening node 0 storage: %v", err)
	}
	rec := store.Recovered()
	info := rec.Chains["ch1"]
	if info.Height != 4 {
		t.Fatalf("recovered height %d, want 4", info.Height)
	}
	led := fabric.RestoreLedger("ch1", store, fabric.ChainState{
		Floor:    info.Floor,
		Anchor:   info.Anchor,
		Height:   info.Height,
		LastHash: info.LastHash,
	})
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("recovered chain does not verify: %v", err)
	}
	if led.Height() != 4 {
		t.Fatalf("recovered height %d, want 4", led.Height())
	}
	store.Close()

	// Restart the whole cluster from the same directories and extend the
	// chain: recovery must hand every node the exact (height, prevHash)
	// frontier or the new blocks would break the hash chain.
	c2 := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 5, DataDir: dataDir})
	fe2 := testFrontend(t, c2, "frontend-b", false)
	stream2 := deliverNewest(t, fe2, "ch1")
	for i := envs; i < envs+5; i++ {
		if st := fe2.Broadcast(mkEnvelope("ch1", i, 64)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast after restart: %v", st)
		}
	}
	fresh := collectBlocks(t, stream2, 5, 10*time.Second)
	if fresh[0].Header.Number != 4 {
		t.Fatalf("first block after restart has number %d, want 4", fresh[0].Header.Number)
	}
	led2 := waitLedgerHeight(t, c2.Nodes[0], "ch1", 5, 5*time.Second)
	if err := led2.VerifyChain(); err != nil {
		t.Fatalf("extended chain does not verify: %v", err)
	}
}

// TestKilledNodeRestartsFromDataDirAndCatchesUp kills one replica, keeps
// the cluster ordering without it, restarts it from its data directory,
// and checks it recovers its durable height and then catches back up to
// the cluster's full chain.
func TestKilledNodeRestartsFromDataDirAndCatchesUp(t *testing.T) {
	c := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 2, DataDir: t.TempDir()})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch1")

	submit := func(from, count int) {
		t.Helper()
		for i := from; i < from+count; i++ {
			if st := fe.Broadcast(mkEnvelope("ch1", i, 32)); st != fabric.StatusSuccess {
				t.Fatalf("broadcast %d: %v", i, st)
			}
		}
		collectBlocks(t, stream, count, 10*time.Second)
	}

	submit(0, 6) // blocks 0..2
	waitLedgerHeight(t, c.Nodes[3], "ch1", 3, 5*time.Second)
	c.KillNode(3)

	submit(6, 6) // blocks 3..5, ordered by the surviving n-f nodes

	if err := c.RestartNode(3); err != nil {
		t.Fatalf("restart: %v", err)
	}
	// Recovery alone must bring back the pre-crash height...
	led := waitLedgerHeight(t, c.Nodes[3], "ch1", 3, 5*time.Second)
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("recovered chain: %v", err)
	}
	// ...and fresh traffic makes the node state-transfer the missed
	// decisions and extend its durable chain to the cluster's height.
	submit(12, 6) // blocks 6..8
	led = waitLedgerHeight(t, c.Nodes[3], "ch1", 9, 15*time.Second)
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("caught-up chain: %v", err)
	}
}

// TestRestartedNodeCatchesUpAcrossLeaderChange crashes a node, forces a
// leader change while it is down (the restarted replica comes back in a
// stale regency), and checks the f+1 regency catch-up rule brings it back
// into the current view and up to the full chain.
func TestRestartedNodeCatchesUpAcrossLeaderChange(t *testing.T) {
	c := testCluster(t, ClusterConfig{
		Nodes:          4,
		BlockSize:      2,
		DataDir:        t.TempDir(),
		RequestTimeout: time.Second, // fast leader change
	})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch1")

	submit := func(from, count int) {
		t.Helper()
		for i := from; i < from+count; i++ {
			if st := fe.Broadcast(mkEnvelope("ch1", i, 32)); st != fabric.StatusSuccess {
				t.Fatalf("broadcast %d: %v", i, st)
			}
		}
		collectBlocks(t, stream, count, 20*time.Second)
	}

	submit(0, 6) // blocks 0..2
	waitLedgerHeight(t, c.Nodes[3], "ch1", 3, 5*time.Second)
	c.KillNode(3)

	// Depose the leader while node 3 is down: the survivors move to a
	// newer regency that node 3 has never heard of.
	c.Nodes[0].Replica().SetBehavior(consensus.Behavior{Equivocate: true})
	submit(6, 6) // blocks 3..5, ordered after the leader change
	c.Nodes[0].Replica().SetBehavior(consensus.Behavior{})
	if reg := c.Nodes[1].Replica().Stats().Regency; reg < 1 {
		t.Fatalf("no leader change happened (regency %d)", reg)
	}

	if err := c.RestartNode(3); err != nil {
		t.Fatalf("restart: %v", err)
	}
	submit(12, 6) // blocks 6..8
	led := waitLedgerHeight(t, c.Nodes[3], "ch1", 9, 20*time.Second)
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("caught-up chain: %v", err)
	}
	if reg := c.Nodes[3].Replica().Stats().Regency; reg < 1 {
		t.Fatalf("restarted node never adopted the current regency (%d)", reg)
	}
}

// TestRestartAfterCheckpointJumpBackfillsBlocks: kill a node, advance the
// cluster far past a (small) checkpoint interval so the survivors prune
// the decision log, restart the node, and keep ordering. The restarted
// replica is jumped forward by a peer checkpoint, which skips blocks its
// local store never sealed; the FetchBlocks back-fill must close that gap
// so the durable chain is contiguous to full height.
func TestRestartAfterCheckpointJumpBackfillsBlocks(t *testing.T) {
	c := testCluster(t, ClusterConfig{
		Nodes:              4,
		BlockSize:          2,
		DataDir:            t.TempDir(),
		CheckpointInterval: 2, // checkpoint (and prune) aggressively
	})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch1")

	next := 0
	submit := func(count int) {
		t.Helper()
		for i := 0; i < count; i++ {
			if st := fe.Broadcast(mkEnvelope("ch1", next, 32)); st != fabric.StatusSuccess {
				t.Fatalf("broadcast %d: %s", next, st)
			}
			next++
		}
		collectBlocks(t, stream, count, 10*time.Second)
	}

	submit(6) // blocks 0..2
	waitLedgerHeight(t, c.Nodes[3], "ch1", 3, 5*time.Second)
	c.KillNode(3)

	// Many separate submit rounds while the node is down: each round is at
	// least one consensus decision, so the survivors take several
	// checkpoints and prune the log the restarted node would need to
	// replay — forcing a checkpoint jump instead of decision catch-up.
	for round := 0; round < 8; round++ {
		submit(2) // blocks 3..10
	}

	if err := c.RestartNode(3); err != nil {
		t.Fatalf("restart: %v", err)
	}
	submit(4) // fresh traffic drives the state transfer and the jump

	// The back-fill must leave node 3's durable chain contiguous at full
	// height: every block from genesis, hash-chain intact.
	target := uint64(next / 2)
	led := waitLedgerHeight(t, c.Nodes[3], "ch1", target, 30*time.Second)
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("back-filled chain does not verify: %v", err)
	}
	b0, err := led.Block(0)
	if err != nil || b0.Header.Number != 0 {
		t.Fatalf("genesis missing after back-fill: %v", err)
	}

	// And the on-disk copy agrees after another restart: the gap was
	// filled durably, not just in memory.
	c.KillNode(3)
	if err := c.RestartNode(3); err != nil {
		t.Fatalf("second restart: %v", err)
	}
	led = waitLedgerHeight(t, c.Nodes[3], "ch1", target, 15*time.Second)
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("chain after second restart: %v", err)
	}
}
