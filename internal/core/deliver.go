package core

import (
	"errors"
	"fmt"

	"repro/internal/cryptoutil"
	"repro/internal/fabric"
)

// streamDeliverer drives one Deliver subscription for any orderer: it
// stitches replayed history (the orderer's retained window, plus ranges
// fetched through the optional fetch hook) and the live queue into one
// gapless, duplicate-free stream, honoring the seek's start and stop
// positions. Frontend and solo orderer share this loop; only the fetch
// hooks differ.
type streamDeliverer struct {
	seek   fabric.SeekInfo
	hist   []*fabric.Block // retained released blocks, contiguous
	q      *blockQueue     // live feed
	stream *fabric.BlockStream

	// fetch retrieves blocks [from, to) authenticated against anchorPrev
	// (the header hash of block to-1). Nil when the orderer has no fetch
	// path (solo): history below the retained window is then unavailable.
	fetch func(from, to uint64, anchorPrev cryptoutil.Digest) ([]*fabric.Block, error)
	// quorumFetch retrieves blocks [from, to) authenticated by quorum
	// agreement on the top block instead of a locally trusted anchor.
	// Used (when non-nil) for bounded historical seeks issued before any
	// live block has anchored the chain; a failure falls back to
	// quorumHead, then to waiting for a live anchor.
	quorumFetch func(from, to uint64) ([]*fabric.Block, error)
	// quorumHead returns a block f+1 peers agree sits at (or near) the
	// chain's head, anchoring unbounded historical seeks on an idle chain
	// — without it, replay would stall until fresh live traffic arrives.
	quorumHead func() (*fabric.Block, error)
	// closedErr is what the stream closes with when the live queue closes
	// under it (the orderer shut down).
	closedErr error

	next uint64 // next block number owed to the stream
}

// run executes the delivery plan. It must be called on its own goroutine;
// the caller owns queue registration and stream cleanup.
func (d *streamDeliverer) run() {
	d.next = d.seek.FirstNumber()

	var pendingLive *fabric.Block
	if d.seek.Kind != fabric.SeekNewest {
		// With no retained history, try to resolve the replay without
		// waiting for live traffic: a bounded seek fetches its exact range
		// under quorum agreement on the stop block; otherwise a
		// quorum-agreed head block anchors the replay up to the current
		// chain tip (the live stream's gap fill covers anything sealed
		// after the probe).
		anchored := false
		// A bounded seek that ends below the retained window resolves by
		// an exact quorum fetch of just [start, stop] — both when there is
		// no history at all and when the window starts far above the stop
		// (replaying the whole gap up to the window only to discard it
		// would cost a full-chain fetch).
		belowWindow := len(d.hist) == 0 || (d.seek.HasStop && d.seek.Stop < d.hist[0].Header.Number)
		if belowWindow {
			if d.seek.HasStop && d.quorumFetch != nil {
				blocks, err := d.quorumFetch(d.next, d.seek.Stop+1)
				if err == nil {
					for _, b := range blocks {
						if !d.emit(b) {
							return
						}
					}
					d.stream.Close(nil)
					return
				}
				if floor, ok := d.resumeFloor(err); ok {
					// The cluster compacted part of the range away; an
					// Oldest seek restarts at the retention floor (the
					// fall-through paths fetch from d.next).
					d.next = floor
				}
				// Otherwise unresolvable here (e.g. the stop block is not
				// sealed yet, or the seek addressed pruned blocks — the
				// fetch below rediscovers and reports that): try the head
				// anchor, then the live-anchor path.
			}
		}
		if len(d.hist) == 0 {
			if d.quorumHead != nil {
				if head, err := d.quorumHead(); err == nil {
					if d.next < head.Header.Number {
						if !d.fetchAndEmit(d.next, head.Header.Number, head.Header.PrevHash) {
							return
						}
					}
					if head.Header.Number >= d.next && !d.emit(head) {
						return
					}
					anchored = true
				}
			}
		}
		// Establish the trusted anchor for any range that must be fetched:
		// the oldest retained block, or — with no history for the channel —
		// the first released live block.
		var anchorNum uint64
		var anchorPrev cryptoutil.Digest
		switch {
		case anchored:
			// History already replayed up to the quorum head; the live
			// loop takes over from d.next.
		case len(d.hist) > 0:
			anchorNum = d.hist[0].Header.Number
			anchorPrev = d.hist[0].Header.PrevHash
		default:
			b, ok := d.nextLive()
			if !ok {
				return
			}
			pendingLive = b
			anchorNum = b.Header.Number
			anchorPrev = b.Header.PrevHash
		}
		if !anchored && d.next < anchorNum {
			if !d.fetchAndEmit(d.next, anchorNum, anchorPrev) {
				return
			}
		}
		for _, b := range d.hist {
			if b.Header.Number < d.next {
				continue
			}
			if b.Header.Number > d.next {
				// Defensive: the retained window is kept contiguous, but a
				// gap here must fetch rather than silently skip.
				if !d.fetchAndEmit(d.next, b.Header.Number, b.Header.PrevHash) {
					return
				}
			}
			if !d.emit(b) {
				return
			}
		}
	}

	first := d.seek.Kind == fabric.SeekNewest
	handleLive := func(b *fabric.Block) bool {
		if first {
			d.next = b.Header.Number
			first = false
		}
		if b.Header.Number < d.next {
			return true // duplicate of the replayed history
		}
		if b.Header.Number > d.next {
			// The release path skipped past blocks this subscription still
			// owes (it provably cannot release them itself, e.g. they
			// predate the frontend's registration): back-fill the gap,
			// anchored at the live block above it.
			if !d.fetchAndEmit(d.next, b.Header.Number, b.Header.PrevHash) {
				return false
			}
		}
		return d.emit(b)
	}
	if pendingLive != nil && !handleLive(pendingLive) {
		return
	}
	for {
		b, ok := d.nextLive()
		if !ok {
			return
		}
		if !handleLive(b) {
			return
		}
	}
}

// emit pushes the next block and handles the stop position; it returns
// false when the stream is finished (stop reached or canceled).
func (d *streamDeliverer) emit(b *fabric.Block) bool {
	if d.seek.HasStop && b.Header.Number > d.seek.Stop {
		d.stream.Close(nil)
		return false
	}
	if !d.stream.Push(b) {
		d.stream.Close(nil) // canceled
		return false
	}
	d.next = b.Header.Number + 1
	if d.seek.HasStop && b.Header.Number == d.seek.Stop {
		d.stream.Close(nil)
		return false
	}
	return true
}

// fetchAndEmit retrieves and emits blocks [from, to) through the fetch
// hook, closing the stream with an error when no verifiable copy exists.
// A range the cluster compacted away resumes at the retention floor for
// an Oldest seek (oldest means oldest available, as in Fabric) and fails
// the stream with the typed pruned error — surfaced to wire clients as
// NOT_FOUND — for seeks that addressed the pruned blocks explicitly.
func (d *streamDeliverer) fetchAndEmit(from, to uint64, anchorPrev cryptoutil.Digest) bool {
	for {
		if d.fetch == nil {
			d.stream.Close(fmt.Errorf("%w: blocks %d..%d fell out of the retained history",
				fabric.ErrBlockNotFound, from, to-1))
			return false
		}
		blocks, err := d.fetch(from, to, anchorPrev)
		if err != nil {
			if floor, ok := d.resumeFloor(err); ok {
				if floor >= to {
					// The whole range is gone everywhere; the caller's
					// anchor block itself is the next thing served.
					d.next = to
					return true
				}
				d.next = floor
				from = floor
				continue
			}
			// A fetch aborted by the consumer's own cancel is a clean
			// stop, not a failure.
			select {
			case <-d.stream.Canceled():
				d.stream.Close(nil)
			default:
				d.stream.Close(err)
			}
			return false
		}
		for _, b := range blocks {
			if !d.emit(b) {
				return false
			}
		}
		return true
	}
}

// resumeFloor reports whether a fetch failure is a retention pruning the
// stream may transparently skip: only an Oldest seek (which asks for the
// oldest available history) resumes, and only when its stop — if any —
// is still at or above the floor; the floor must make progress so a
// lying peer cannot loop the stream.
func (d *streamDeliverer) resumeFloor(err error) (uint64, bool) {
	var pe *fabric.PrunedError
	if !errors.As(err, &pe) {
		return 0, false
	}
	if d.seek.Kind != fabric.SeekOldest || pe.Floor <= d.next {
		return 0, false
	}
	if d.seek.HasStop && d.seek.Stop < pe.Floor {
		return 0, false
	}
	return pe.Floor, true
}

// nextLive waits for the next live block, honoring cancellation and
// orderer shutdown.
func (d *streamDeliverer) nextLive() (*fabric.Block, bool) {
	select {
	case b, ok := <-d.q.out:
		if !ok {
			d.stream.Close(d.closedErr)
			return nil, false
		}
		return b, true
	case <-d.stream.Canceled():
		d.stream.Close(nil)
		return nil, false
	}
}
