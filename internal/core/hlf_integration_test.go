package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/cryptoutil"
	"repro/internal/fabric"
)

// hlfStack wires the complete system of the paper: endorsing peers and a
// committing peer (internal/fabric) on top of the BFT ordering service
// (internal/core), with a pump feeding released blocks into commit.
type hlfStack struct {
	cluster   *Cluster
	frontend  *Frontend
	committer *fabric.Peer
	endorsers []*fabric.Endorser
	clientKey *cryptoutil.KeyPair
	policy    fabric.Policy
}

func newHLFStack(t *testing.T, nodes int) *hlfStack {
	t.Helper()
	cluster := testCluster(t, ClusterConfig{
		Nodes:        nodes,
		BlockSize:    2,
		BlockTimeout: 100 * time.Millisecond,
	})
	frontend := testFrontend(t, cluster, "hlf-frontend", false)

	registry := cryptoutil.NewRegistry()
	policy, err := fabric.NewTOutOfN(2, "peer0", "peer1", "peer2")
	if err != nil {
		t.Fatalf("policy: %v", err)
	}
	committer, err := fabric.NewPeer(fabric.PeerConfig{
		ID:       "committer",
		Registry: registry,
		Policies: map[string]fabric.Policy{
			"kv": policy, "asset": policy, "bank": policy,
		},
	})
	if err != nil {
		t.Fatalf("peer: %v", err)
	}
	endorsers := make([]*fabric.Endorser, 3)
	for i := range endorsers {
		key, err := cryptoutil.GenerateKeyPair()
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		name := fmt.Sprintf("peer%d", i)
		registry.Register(name, key.Public())
		endorsers[i], err = fabric.NewEndorser(name, key, committer.StateDB())
		if err != nil {
			t.Fatalf("endorser: %v", err)
		}
		endorsers[i].Install(fabric.KVChaincode{})
		endorsers[i].Install(fabric.BankChaincode{})
	}

	// Commit pump: ordered blocks flow into validation + commit.
	blocks := deliverNewest(t, frontend, "hlf-channel")
	go func() {
		for b := range blocks {
			if _, err := committer.CommitBlock(b); err != nil {
				return // chain error: surfaced by the test's assertions
			}
		}
	}()

	clientKey, err := cryptoutil.GenerateKeyPair()
	if err != nil {
		t.Fatalf("keygen: %v", err)
	}
	return &hlfStack{
		cluster:   cluster,
		frontend:  frontend,
		committer: committer,
		endorsers: endorsers,
		clientKey: clientKey,
		policy:    policy,
	}
}

func (s *hlfStack) client(t *testing.T, id string) *fabric.Client {
	t.Helper()
	client, err := fabric.NewClient(fabric.ClientConfig{
		ID:        id,
		Key:       s.clientKey,
		ChannelID: "hlf-channel",
		Endorsers: s.endorsers,
		Policy:    s.policy,
		Orderer:   s.frontend,
		Committer: s.committer,
	})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	return client
}

// TestHLFOverBFTOrdering runs the paper's Figure 2 protocol end to end on
// the BFT ordering service: endorse -> assemble -> order (BFT-SMaRt) ->
// validate -> commit.
func TestHLFOverBFTOrdering(t *testing.T) {
	stack := newHLFStack(t, 4)
	client := stack.client(t, "app")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	res, err := client.Submit(ctx, "bank", "open", [][]byte{[]byte("alice"), []byte("100")})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if res.Code != fabric.TxValid {
		t.Fatalf("open marked %v", res.Code)
	}
	if _, err := client.Submit(ctx, "bank", "open", [][]byte{[]byte("bob"), []byte("5")}); err != nil {
		t.Fatalf("open bob: %v", err)
	}
	res, err = client.Submit(ctx, "bank", "transfer",
		[][]byte{[]byte("alice"), []byte("bob"), []byte("30")})
	if err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if res.Code != fabric.TxValid {
		t.Fatalf("transfer marked %v", res.Code)
	}

	bob, ok := stack.committer.StateDB().Get("acct:bob")
	if !ok || string(bob.Value) != "35" {
		t.Fatalf("bob balance = %q, %v", bob.Value, ok)
	}
	if err := stack.committer.Ledger().VerifyChain(); err != nil {
		t.Fatalf("committed chain: %v", err)
	}
}

// TestHLFOverBFTOrderingSurvivesLeaderCrash repeats the flow with the
// ordering leader crashing mid-stream: the application sees only latency,
// never inconsistency.
func TestHLFOverBFTOrderingSurvivesLeaderCrash(t *testing.T) {
	stack := newHLFStack(t, 4)
	// Tighten the leader-change trigger for the test.
	client := stack.client(t, "app")
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	if _, err := client.Submit(ctx, "kv", "put", [][]byte{[]byte("k1"), []byte("v1")}); err != nil {
		t.Fatalf("put 1: %v", err)
	}
	// Crash the ordering leader.
	stack.cluster.Nodes[0].Stop()
	stack.cluster.Network.Disconnect(consensus.ReplicaID(0).Addr())

	res, err := client.Submit(ctx, "kv", "put", [][]byte{[]byte("k2"), []byte("v2")})
	if err != nil {
		t.Fatalf("put after crash: %v", err)
	}
	if res.Code != fabric.TxValid {
		t.Fatalf("put after crash marked %v", res.Code)
	}
	got, ok := stack.committer.StateDB().Get("k2")
	if !ok || string(got.Value) != "v2" {
		t.Fatalf("state after leader crash = %q, %v", got.Value, ok)
	}
	if err := stack.committer.Ledger().VerifyChain(); err != nil {
		t.Fatalf("chain after leader crash: %v", err)
	}
}

// TestHLFConcurrentClientsOverBFT drives several application clients
// concurrently through the full stack and checks ledger/state consistency.
func TestHLFConcurrentClientsOverBFT(t *testing.T) {
	stack := newHLFStack(t, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	const clients, each = 3, 4
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		client := stack.client(t, fmt.Sprintf("app-%d", c))
		go func(c int, cl *fabric.Client) {
			for i := 0; i < each; i++ {
				key := []byte(fmt.Sprintf("c%d-k%d", c, i))
				if _, err := cl.Submit(ctx, "kv", "put", [][]byte{key, key}); err != nil {
					errs <- fmt.Errorf("client %d put %d: %w", c, i, err)
					return
				}
			}
			errs <- nil
		}(c, client)
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Every written key committed exactly once.
	for c := 0; c < clients; c++ {
		for i := 0; i < each; i++ {
			key := fmt.Sprintf("c%d-k%d", c, i)
			got, ok := stack.committer.StateDB().Get(key)
			if !ok || string(got.Value) != key {
				t.Fatalf("key %s = %q, %v", key, got.Value, ok)
			}
		}
	}
	if err := stack.committer.Ledger().VerifyChain(); err != nil {
		t.Fatalf("final chain: %v", err)
	}
}
