package core

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/consensus"
	"repro/internal/cryptoutil"
	"repro/internal/obs"
	"repro/internal/storage/vfs"
	"repro/internal/transport"
)

// ShardStride spaces the replica-ID ranges of independent consensus
// groups sharing one network: shard k's node i is replica k*ShardStride+i,
// so every group gets distinct transport addresses and key registrations
// with zero consensus-layer changes. Shard 0 keeps the historical IDs
// 0..n-1, so single-group deployments are unaffected.
const ShardStride = 1 << 16

// ClusterConfig assembles a complete in-process ordering service: n nodes
// over a shared network, with identities registered for verification.
type ClusterConfig struct {
	// Nodes is the cluster size (4, 7, or 10 in the paper's LAN
	// evaluation; 4 or 5 in the geo evaluation).
	Nodes int
	// ShardID makes this cluster one consensus group of a sharded
	// deployment: its replicas take IDs ShardID*ShardStride+i (distinct
	// addresses on a shared Network) and its storage roots under
	// DataDir/shard-<ShardID>. Zero is the classic single-group layout.
	ShardID int
	// F is the fault threshold (zero derives the maximum).
	F int
	// BlockSize is the envelopes-per-block bound (10 or 100 in the paper).
	BlockSize int
	// MaxBlockBytes optionally bounds block bytes.
	MaxBlockBytes int
	// BlockTimeout enables deterministic timeout-based cutting.
	BlockTimeout time.Duration
	// SigningWorkers sizes each node's signing pool (default 16).
	SigningWorkers int
	// DisableSigning skips block signatures (Equation 1 ablation).
	DisableSigning bool
	// BatchSize is the consensus batch limit (default 400, as in the
	// paper).
	BatchSize int
	// BatchTimeout is the consensus batching timeout.
	BatchTimeout time.Duration
	// RequestTimeout is the leader-change trigger.
	RequestTimeout time.Duration
	// CheckpointInterval bounds the decision log (decisions between
	// application checkpoints; zero keeps the consensus default).
	CheckpointInterval int64
	// Tentative enables WHEAT's tentative execution.
	Tentative bool
	// Weights assigns WHEAT votes (nil = classic BFT-SMaRt).
	Weights map[consensus.ReplicaID]int
	// Network hosts the cluster; nil creates a zero-latency in-proc
	// network (an idealized LAN).
	Network *transport.InProcNetwork
	// DataDir, when non-empty, makes every node durable: node i keeps its
	// WAL, block store, and checkpoints under DataDir/node-<i>, and
	// RestartNode can crash-recover it from there.
	DataDir string
	// WALSegmentBytes overrides the nodes' unified commit-log segment
	// size (zero keeps the 4 MiB default); decisions and blocks share the
	// log, so this is both the checkpoint-pruning and the retention
	// compaction granularity.
	WALSegmentBytes int64
	// RetainBlocks bounds every node's durable blocks per channel:
	// exceeding it triggers block-store compaction (snapshot manifest +
	// segment deletion), and seeks below the floor answer the pruned
	// status. Zero retains everything.
	RetainBlocks uint64
	// RetainBytes bounds every node's block store size on disk. Zero
	// disables the bytes trigger.
	RetainBytes int64
	// RetainWeights biases the RetainBytes budget across channels
	// (channel c keeps RetainBytes * w(c)/Σw bytes; unlisted channels
	// weigh 1). Nil splits the budget evenly.
	RetainWeights map[string]float64
	// CommitMaxDelay tunes every node's commit queue: the fsync
	// coalescing window (zero commits greedily).
	CommitMaxDelay time.Duration
	// CommitMaxBatch caps the records one log contributes to a single
	// fsync wave (zero keeps the default).
	CommitMaxBatch int
	// CommitSyncHook, when set, runs at the start of every commit wave
	// on every node (test instrumentation; see storage.Options.SyncHook).
	CommitSyncHook func()
	// CommitSyncHookFor, when set, supplies a per-node sync hook (nil
	// results fall back to CommitSyncHook). Test instrumentation for
	// scenarios that stall a single node's fsync waves while the rest of
	// the cluster runs free.
	CommitSyncHookFor func(node int) func()
	// NodeFS, when set, supplies a per-node filesystem seam for durable
	// storage (nil results keep the real OS filesystem). The disk-fault
	// chaos scenarios thread per-node faultfs instances through here.
	NodeFS func(node int) vfs.FS
	// ScrubInterval is every node's background scrub period (zero keeps
	// the scrubber trigger-only).
	ScrubInterval time.Duration
	// Metrics, when set, instruments every node (consensus, storage, and
	// hot-path stage histograms) into one shared registry, with
	// shard/node labels. Restarted nodes re-attach to their existing
	// series. Nil disables instrumentation entirely (the near-free path).
	Metrics *obs.Registry
}

// Cluster is a running in-process ordering service.
type Cluster struct {
	// Network is the hub nodes and frontends share.
	Network *transport.InProcNetwork
	// Nodes are the ordering nodes, indexed by replica id.
	Nodes []*OrderingNode
	// Registry holds every node's verification key.
	Registry *cryptoutil.Registry

	cfg      ClusterConfig
	replicas []consensus.ReplicaID
	keys     []*cryptoutil.KeyPair
	removed  map[consensus.ReplicaID]bool
	ownsNet  bool
}

// NewCluster builds and starts an ordering cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.ShardID < 0 || cfg.Nodes > ShardStride {
		return nil, fmt.Errorf("cluster: shard %d with %d nodes does not fit the ID stride", cfg.ShardID, cfg.Nodes)
	}
	network := cfg.Network
	ownsNet := false
	if network == nil {
		network = transport.NewInProcNetwork(transport.InProcConfig{})
		ownsNet = true
	}
	replicas := make([]consensus.ReplicaID, cfg.Nodes)
	for i := range replicas {
		replicas[i] = consensus.ReplicaID(cfg.ShardID*ShardStride + i)
	}
	registry := cryptoutil.NewRegistry()

	c := &Cluster{
		Network:  network,
		Registry: registry,
		cfg:      cfg,
		replicas: replicas,
		removed:  make(map[consensus.ReplicaID]bool),
		ownsNet:  ownsNet,
	}
	c.keys = make([]*cryptoutil.KeyPair, cfg.Nodes)
	for i, id := range replicas {
		key, err := cryptoutil.GenerateKeyPair()
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("cluster: %w", err)
		}
		c.keys[i] = key
		registry.Register(string(id.Addr()), key.Public())
		node, err := c.startNode(i, c.replicas)
		if err != nil {
			c.Stop()
			return nil, err
		}
		c.Nodes = append(c.Nodes, node)
	}
	for _, node := range c.Nodes {
		node.Start()
	}
	return c, nil
}

// startNode joins node i to the network and constructs it with the given
// static membership; with a data directory the node opens (and owns) its
// durable storage under DataDir/node-<i>, and a durable membership record
// found there overrides the static membership. The caller starts it.
func (c *Cluster) startNode(i int, members []consensus.ReplicaID) (*OrderingNode, error) {
	id := c.replicas[i]
	dataDir := ""
	if c.cfg.DataDir != "" {
		dataDir = c.NodeDataDir(i)
	}
	conn, err := c.Network.Join(id.Addr())
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	node, err := NewNode(NodeConfig{
		Consensus: consensus.Config{
			SelfID:             id,
			Replicas:           members,
			F:                  c.cfg.F,
			Weights:            c.cfg.Weights,
			BatchSize:          c.cfg.BatchSize,
			BatchTimeout:       c.cfg.BatchTimeout,
			RequestTimeout:     c.cfg.RequestTimeout,
			CheckpointInterval: c.cfg.CheckpointInterval,
			Tentative:          c.cfg.Tentative,
			Key:                c.keys[i],
			Registry:           c.Registry,
		},
		BlockSize:       c.cfg.BlockSize,
		MaxBlockBytes:   c.cfg.MaxBlockBytes,
		BlockTimeout:    c.cfg.BlockTimeout,
		SigningWorkers:  c.cfg.SigningWorkers,
		DisableSigning:  c.cfg.DisableSigning,
		Key:             c.keys[i],
		DataDir:         dataDir,
		WALSegmentBytes: c.cfg.WALSegmentBytes,
		RetainBlocks:    c.cfg.RetainBlocks,
		RetainBytes:     c.cfg.RetainBytes,
		RetainWeights:   c.cfg.RetainWeights,
		CommitMaxDelay:  c.cfg.CommitMaxDelay,
		CommitMaxBatch:  c.cfg.CommitMaxBatch,
		CommitSyncHook:  c.nodeSyncHook(i),
		ShardID:         c.cfg.ShardID,
		Metrics:         c.nodeMetrics(i),
		StorageMetrics:  c.storageMetrics(i),
		FS:              c.nodeFS(i),
		ScrubInterval:   c.cfg.ScrubInterval,
	}, conn)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d: %w", id, err)
	}
	return node, nil
}

// nodeMetrics builds node i's instrument bundle out of the shared
// registry, labeled by shard and node. Re-registration is idempotent, so
// a restarted node re-attaches to the incarnation-spanning series.
func (c *Cluster) nodeMetrics(i int) *obs.NodeMetrics {
	return obs.NewNodeMetrics(c.cfg.Metrics,
		"shard", strconv.Itoa(c.cfg.ShardID), "node", strconv.Itoa(i))
}

func (c *Cluster) storageMetrics(i int) *obs.StorageMetrics {
	return obs.NewStorageMetrics(c.cfg.Metrics,
		"shard", strconv.Itoa(c.cfg.ShardID), "node", strconv.Itoa(i))
}

// nodeFS resolves node i's filesystem seam (nil = the OS filesystem).
func (c *Cluster) nodeFS(i int) vfs.FS {
	if c.cfg.NodeFS == nil {
		return nil
	}
	return c.cfg.NodeFS(i)
}

// nodeSyncHook resolves node i's commit sync hook: the per-node factory
// wins, falling back to the cluster-wide hook.
func (c *Cluster) nodeSyncHook(i int) func() {
	if c.cfg.CommitSyncHookFor != nil {
		if hook := c.cfg.CommitSyncHookFor(i); hook != nil {
			return hook
		}
	}
	return c.cfg.CommitSyncHook
}

// NodeDataDir returns node i's storage root (meaningful only with a
// DataDir-configured cluster). A sharded cluster nests its nodes under a
// per-group directory — each shard is an independent WAL, checkpoint,
// and retention domain on disk — while shard 0 keeps the historical flat
// layout.
func (c *Cluster) NodeDataDir(i int) string {
	if c.cfg.ShardID > 0 {
		return filepath.Join(c.cfg.DataDir,
			"shard-"+strconv.Itoa(c.cfg.ShardID), "node-"+strconv.Itoa(i))
	}
	return filepath.Join(c.cfg.DataDir, "node-"+strconv.Itoa(i))
}

// ShardID returns the consensus group this cluster forms (0 for the
// classic single-group deployment).
func (c *Cluster) ShardID() int { return c.cfg.ShardID }

// KillNode crashes node i: it is stopped (which closes its storage,
// leaving only the on-disk state) and detached from the network. A no-op
// for an already-killed node.
func (c *Cluster) KillNode(i int) {
	if c.Nodes[i] == nil {
		return
	}
	c.Nodes[i].Stop()
	c.Network.Disconnect(c.replicas[i].Addr())
	c.Nodes[i] = nil
}

// RestartNode recovers a killed node from its data directory and rejoins
// it to the cluster. Requires a DataDir-configured cluster. The node's
// static membership is the cluster's current view (its own durable
// membership record, when present, overrides it anyway); restarting a
// node the group removed fails with the recovery error.
func (c *Cluster) RestartNode(i int) error {
	if c.cfg.DataDir == "" {
		return fmt.Errorf("cluster: restart needs a data directory")
	}
	if c.Nodes[i] != nil {
		return fmt.Errorf("cluster: node %d is still running", c.replicas[i])
	}
	if c.removed[c.replicas[i]] {
		return fmt.Errorf("cluster: node %d was removed from the group", c.replicas[i])
	}
	members := c.currentMembers()
	if !containsReplica(members, c.replicas[i]) {
		members = append(members, c.replicas[i])
	}
	node, err := c.startNode(i, members)
	if err != nil {
		return err
	}
	c.Nodes[i] = node
	node.Start()
	return nil
}

// Replicas returns the cluster membership (removed nodes excluded).
func (c *Cluster) Replicas() []consensus.ReplicaID {
	out := make([]consensus.ReplicaID, 0, len(c.replicas))
	for _, id := range c.replicas {
		if !c.removed[id] {
			out = append(out, id)
		}
	}
	return out
}

// currentMembers returns the group as some live node currently sees it,
// falling back to the slot list when every node is down.
func (c *Cluster) currentMembers() []consensus.ReplicaID {
	for _, node := range c.Nodes {
		if node == nil {
			continue
		}
		if v := node.MembershipView(); len(v.Members) > 0 {
			return append([]consensus.ReplicaID(nil), v.Members...)
		}
	}
	return c.Replicas()
}

func containsReplica(ids []consensus.ReplicaID, id consensus.ReplicaID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// reconfigDeadline bounds how long a membership change may take to reach
// every live node's view before the cluster call gives up.
const reconfigDeadline = 15 * time.Second

// AddNode grows the cluster by one ordering node: a fresh identity is
// generated and registered, the node boots with the current group plus
// itself as its static membership (the paper's join procedure), and a
// ReconfigAdd is ordered through consensus until every live node's view
// includes the newcomer and the newcomer caught up to the group's
// membership epoch. Returns the new node's index.
func (c *Cluster) AddNode() (int, error) {
	i := len(c.replicas)
	if i >= ShardStride {
		return -1, fmt.Errorf("cluster: shard %d cannot grow past %d nodes", c.cfg.ShardID, ShardStride)
	}
	id := consensus.ReplicaID(c.cfg.ShardID*ShardStride + i)
	key, err := cryptoutil.GenerateKeyPair()
	if err != nil {
		return -1, fmt.Errorf("cluster: %w", err)
	}
	members := append(c.currentMembers(), id)
	c.replicas = append(c.replicas, id)
	c.keys = append(c.keys, key)
	c.Registry.Register(string(id.Addr()), key.Public())
	node, err := c.startNode(i, members)
	if err != nil {
		c.replicas = c.replicas[:i]
		c.keys = c.keys[:i]
		return -1, err
	}
	c.Nodes = append(c.Nodes, node)
	node.Start()
	if err := c.Reconfigure(consensus.ReconfigOp{Kind: consensus.ReconfigAdd, Replica: id}, reconfigDeadline); err != nil {
		return i, err
	}
	return i, nil
}

// RemoveNode retires node i gracefully: the removal is ordered through
// consensus first (so the group stops counting the node's votes and stops
// sending it work), then the node drains its dissemination queue, stops,
// and releases its transport identity. Restarting a removed node fails.
func (c *Cluster) RemoveNode(i int) error {
	if i < 0 || i >= len(c.replicas) {
		return fmt.Errorf("cluster: no node %d", i)
	}
	id := c.replicas[i]
	if c.removed[id] {
		return nil
	}
	if err := c.Reconfigure(consensus.ReconfigOp{Kind: consensus.ReconfigRemove, Replica: id}, reconfigDeadline); err != nil {
		return err
	}
	c.removed[id] = true
	if node := c.Nodes[i]; node != nil {
		// Best effort: blocks a wedged drain leaves behind are re-derivable
		// from the surviving group, so a drain timeout does not block the
		// removal.
		_ = node.Drain(5 * time.Second)
		node.Stop()
		c.Network.Disconnect(id.Addr())
		c.Nodes[i] = nil
	}
	return nil
}

// ReplaceNode swaps node i for a fresh identity: the replacement is added
// first (the group briefly runs one node larger, keeping quorum intact
// throughout), then node i is removed gracefully. Returns the new node's
// index.
func (c *Cluster) ReplaceNode(i int) (int, error) {
	ni, err := c.AddNode()
	if err != nil {
		return -1, err
	}
	if err := c.RemoveNode(i); err != nil {
		return ni, err
	}
	return ni, nil
}

// Reconfigure orders one membership change and waits until every live
// node applied it. The op is re-broadcast with jittered backoff (each
// resubmission is a fresh ordered no-op once the change took, so retries
// are safe) until the views converge or the deadline passes.
func (c *Cluster) Reconfigure(op consensus.ReconfigOp, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = reconfigDeadline
	}
	admin := transport.Addr(fmt.Sprintf("admin:%d:%d", c.cfg.ShardID, time.Now().UnixNano()))
	conn, err := c.Network.Join(admin)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	defer c.Network.Disconnect(admin)
	client, err := consensus.NewClient(conn, consensus.ClientConfig{
		Replicas:  c.currentMembers(),
		Tentative: c.cfg.Tentative,
	})
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	defer client.Close()
	payload := consensus.EncodeReconfigOp(op)
	deadline := time.Now().Add(timeout)
	policy := transport.RetryPolicy{Initial: 250 * time.Millisecond, Max: 2 * time.Second}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for attempt := 0; ; attempt++ {
		if err := client.Invoke(payload); err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
		// Poll for convergence until the next resubmission is due.
		next := time.Now().Add(policy.Delay(attempt, rng))
		for time.Now().Before(next) {
			if c.reconfigApplied(op) {
				return nil
			}
			time.Sleep(20 * time.Millisecond)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: reconfiguration of node %d (kind %d) did not converge within %v",
				int(op.Replica), op.Kind, timeout)
		}
	}
}

// reconfigApplied reports whether every live node's membership view
// reflects the change. For an add, the newcomer itself must additionally
// have caught up to the peers' membership epoch — a node that is listed
// but still at an older epoch has not yet learned it was admitted.
func (c *Cluster) reconfigApplied(op consensus.ReconfigOp) bool {
	peerEpoch := uint64(0)
	peersSeen := false
	for i, node := range c.Nodes {
		if node == nil || c.replicas[i] == op.Replica {
			continue
		}
		v := node.MembershipView()
		if len(v.Members) == 0 {
			return false
		}
		if (op.Kind == consensus.ReconfigAdd) != containsReplica(v.Members, op.Replica) {
			return false
		}
		if !peersSeen || v.Epoch < peerEpoch {
			peerEpoch = v.Epoch
		}
		peersSeen = true
	}
	if !peersSeen {
		return false
	}
	if op.Kind == consensus.ReconfigAdd {
		for i, node := range c.Nodes {
			if node != nil && c.replicas[i] == op.Replica &&
				node.MembershipView().Epoch < peerEpoch {
				return false
			}
		}
	}
	return true
}

// NewFrontend attaches a frontend to the cluster. verify selects f+1
// signature verification instead of 2f+1 matching copies.
func (c *Cluster) NewFrontend(id string, verify bool) (*Frontend, error) {
	return NewFrontend(FrontendConfig{
		ID:               id,
		Replicas:         c.Replicas(),
		F:                c.cfg.F,
		VerifySignatures: verify,
		Registry:         c.Registry,
		Metrics: obs.NewFrontendMetrics(c.cfg.Metrics,
			"shard", strconv.Itoa(c.cfg.ShardID), "frontend", id),
	}, c.Network)
}

// Leader returns the node currently expected to lead (regency of node 0's
// view). Benchmarks measure throughput at the leader, as the paper does.
func (c *Cluster) Leader() *OrderingNode {
	if len(c.Nodes) == 0 {
		return nil
	}
	reg := c.Nodes[0].Replica().Stats().Regency
	return c.Nodes[int(reg)%len(c.Nodes)]
}

// Stop shuts down all nodes (each closes its own storage) and closes the
// network if the cluster created it.
func (c *Cluster) Stop() {
	for _, node := range c.Nodes {
		if node != nil {
			node.Stop()
		}
	}
	if c.ownsNet && c.Network != nil {
		c.Network.Close()
	}
}
