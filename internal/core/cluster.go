package core

import (
	"fmt"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/consensus"
	"repro/internal/cryptoutil"
	"repro/internal/obs"
	"repro/internal/transport"
)

// ShardStride spaces the replica-ID ranges of independent consensus
// groups sharing one network: shard k's node i is replica k*ShardStride+i,
// so every group gets distinct transport addresses and key registrations
// with zero consensus-layer changes. Shard 0 keeps the historical IDs
// 0..n-1, so single-group deployments are unaffected.
const ShardStride = 1 << 16

// ClusterConfig assembles a complete in-process ordering service: n nodes
// over a shared network, with identities registered for verification.
type ClusterConfig struct {
	// Nodes is the cluster size (4, 7, or 10 in the paper's LAN
	// evaluation; 4 or 5 in the geo evaluation).
	Nodes int
	// ShardID makes this cluster one consensus group of a sharded
	// deployment: its replicas take IDs ShardID*ShardStride+i (distinct
	// addresses on a shared Network) and its storage roots under
	// DataDir/shard-<ShardID>. Zero is the classic single-group layout.
	ShardID int
	// F is the fault threshold (zero derives the maximum).
	F int
	// BlockSize is the envelopes-per-block bound (10 or 100 in the paper).
	BlockSize int
	// MaxBlockBytes optionally bounds block bytes.
	MaxBlockBytes int
	// BlockTimeout enables deterministic timeout-based cutting.
	BlockTimeout time.Duration
	// SigningWorkers sizes each node's signing pool (default 16).
	SigningWorkers int
	// DisableSigning skips block signatures (Equation 1 ablation).
	DisableSigning bool
	// BatchSize is the consensus batch limit (default 400, as in the
	// paper).
	BatchSize int
	// BatchTimeout is the consensus batching timeout.
	BatchTimeout time.Duration
	// RequestTimeout is the leader-change trigger.
	RequestTimeout time.Duration
	// CheckpointInterval bounds the decision log (decisions between
	// application checkpoints; zero keeps the consensus default).
	CheckpointInterval int64
	// Tentative enables WHEAT's tentative execution.
	Tentative bool
	// Weights assigns WHEAT votes (nil = classic BFT-SMaRt).
	Weights map[consensus.ReplicaID]int
	// Network hosts the cluster; nil creates a zero-latency in-proc
	// network (an idealized LAN).
	Network *transport.InProcNetwork
	// DataDir, when non-empty, makes every node durable: node i keeps its
	// WAL, block store, and checkpoints under DataDir/node-<i>, and
	// RestartNode can crash-recover it from there.
	DataDir string
	// WALSegmentBytes overrides the nodes' unified commit-log segment
	// size (zero keeps the 4 MiB default); decisions and blocks share the
	// log, so this is both the checkpoint-pruning and the retention
	// compaction granularity.
	WALSegmentBytes int64
	// RetainBlocks bounds every node's durable blocks per channel:
	// exceeding it triggers block-store compaction (snapshot manifest +
	// segment deletion), and seeks below the floor answer the pruned
	// status. Zero retains everything.
	RetainBlocks uint64
	// RetainBytes bounds every node's block store size on disk. Zero
	// disables the bytes trigger.
	RetainBytes int64
	// RetainWeights biases the RetainBytes budget across channels
	// (channel c keeps RetainBytes * w(c)/Σw bytes; unlisted channels
	// weigh 1). Nil splits the budget evenly.
	RetainWeights map[string]float64
	// CommitMaxDelay tunes every node's commit queue: the fsync
	// coalescing window (zero commits greedily).
	CommitMaxDelay time.Duration
	// CommitMaxBatch caps the records one log contributes to a single
	// fsync wave (zero keeps the default).
	CommitMaxBatch int
	// CommitSyncHook, when set, runs at the start of every commit wave
	// on every node (test instrumentation; see storage.Options.SyncHook).
	CommitSyncHook func()
	// CommitSyncHookFor, when set, supplies a per-node sync hook (nil
	// results fall back to CommitSyncHook). Test instrumentation for
	// scenarios that stall a single node's fsync waves while the rest of
	// the cluster runs free.
	CommitSyncHookFor func(node int) func()
	// Metrics, when set, instruments every node (consensus, storage, and
	// hot-path stage histograms) into one shared registry, with
	// shard/node labels. Restarted nodes re-attach to their existing
	// series. Nil disables instrumentation entirely (the near-free path).
	Metrics *obs.Registry
}

// Cluster is a running in-process ordering service.
type Cluster struct {
	// Network is the hub nodes and frontends share.
	Network *transport.InProcNetwork
	// Nodes are the ordering nodes, indexed by replica id.
	Nodes []*OrderingNode
	// Registry holds every node's verification key.
	Registry *cryptoutil.Registry

	cfg      ClusterConfig
	replicas []consensus.ReplicaID
	keys     []*cryptoutil.KeyPair
	ownsNet  bool
}

// NewCluster builds and starts an ordering cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.ShardID < 0 || cfg.Nodes > ShardStride {
		return nil, fmt.Errorf("cluster: shard %d with %d nodes does not fit the ID stride", cfg.ShardID, cfg.Nodes)
	}
	network := cfg.Network
	ownsNet := false
	if network == nil {
		network = transport.NewInProcNetwork(transport.InProcConfig{})
		ownsNet = true
	}
	replicas := make([]consensus.ReplicaID, cfg.Nodes)
	for i := range replicas {
		replicas[i] = consensus.ReplicaID(cfg.ShardID*ShardStride + i)
	}
	registry := cryptoutil.NewRegistry()

	c := &Cluster{
		Network:  network,
		Registry: registry,
		cfg:      cfg,
		replicas: replicas,
		ownsNet:  ownsNet,
	}
	c.keys = make([]*cryptoutil.KeyPair, cfg.Nodes)
	for i, id := range replicas {
		key, err := cryptoutil.GenerateKeyPair()
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("cluster: %w", err)
		}
		c.keys[i] = key
		registry.Register(string(id.Addr()), key.Public())
		node, err := c.startNode(i)
		if err != nil {
			c.Stop()
			return nil, err
		}
		c.Nodes = append(c.Nodes, node)
	}
	for _, node := range c.Nodes {
		node.Start()
	}
	return c, nil
}

// startNode joins node i to the network and constructs it; with a data
// directory the node opens (and owns) its durable storage under
// DataDir/node-<i>. The caller starts it.
func (c *Cluster) startNode(i int) (*OrderingNode, error) {
	id := c.replicas[i]
	dataDir := ""
	if c.cfg.DataDir != "" {
		dataDir = c.NodeDataDir(i)
	}
	conn, err := c.Network.Join(id.Addr())
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	node, err := NewNode(NodeConfig{
		Consensus: consensus.Config{
			SelfID:             id,
			Replicas:           c.replicas,
			F:                  c.cfg.F,
			Weights:            c.cfg.Weights,
			BatchSize:          c.cfg.BatchSize,
			BatchTimeout:       c.cfg.BatchTimeout,
			RequestTimeout:     c.cfg.RequestTimeout,
			CheckpointInterval: c.cfg.CheckpointInterval,
			Tentative:          c.cfg.Tentative,
			Key:                c.keys[i],
			Registry:           c.Registry,
		},
		BlockSize:       c.cfg.BlockSize,
		MaxBlockBytes:   c.cfg.MaxBlockBytes,
		BlockTimeout:    c.cfg.BlockTimeout,
		SigningWorkers:  c.cfg.SigningWorkers,
		DisableSigning:  c.cfg.DisableSigning,
		Key:             c.keys[i],
		DataDir:         dataDir,
		WALSegmentBytes: c.cfg.WALSegmentBytes,
		RetainBlocks:    c.cfg.RetainBlocks,
		RetainBytes:     c.cfg.RetainBytes,
		RetainWeights:   c.cfg.RetainWeights,
		CommitMaxDelay:  c.cfg.CommitMaxDelay,
		CommitMaxBatch:  c.cfg.CommitMaxBatch,
		CommitSyncHook:  c.nodeSyncHook(i),
		ShardID:         c.cfg.ShardID,
		Metrics:         c.nodeMetrics(i),
		StorageMetrics:  c.storageMetrics(i),
	}, conn)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d: %w", id, err)
	}
	return node, nil
}

// nodeMetrics builds node i's instrument bundle out of the shared
// registry, labeled by shard and node. Re-registration is idempotent, so
// a restarted node re-attaches to the incarnation-spanning series.
func (c *Cluster) nodeMetrics(i int) *obs.NodeMetrics {
	return obs.NewNodeMetrics(c.cfg.Metrics,
		"shard", strconv.Itoa(c.cfg.ShardID), "node", strconv.Itoa(i))
}

func (c *Cluster) storageMetrics(i int) *obs.StorageMetrics {
	return obs.NewStorageMetrics(c.cfg.Metrics,
		"shard", strconv.Itoa(c.cfg.ShardID), "node", strconv.Itoa(i))
}

// nodeSyncHook resolves node i's commit sync hook: the per-node factory
// wins, falling back to the cluster-wide hook.
func (c *Cluster) nodeSyncHook(i int) func() {
	if c.cfg.CommitSyncHookFor != nil {
		if hook := c.cfg.CommitSyncHookFor(i); hook != nil {
			return hook
		}
	}
	return c.cfg.CommitSyncHook
}

// NodeDataDir returns node i's storage root (meaningful only with a
// DataDir-configured cluster). A sharded cluster nests its nodes under a
// per-group directory — each shard is an independent WAL, checkpoint,
// and retention domain on disk — while shard 0 keeps the historical flat
// layout.
func (c *Cluster) NodeDataDir(i int) string {
	if c.cfg.ShardID > 0 {
		return filepath.Join(c.cfg.DataDir,
			"shard-"+strconv.Itoa(c.cfg.ShardID), "node-"+strconv.Itoa(i))
	}
	return filepath.Join(c.cfg.DataDir, "node-"+strconv.Itoa(i))
}

// ShardID returns the consensus group this cluster forms (0 for the
// classic single-group deployment).
func (c *Cluster) ShardID() int { return c.cfg.ShardID }

// KillNode crashes node i: it is stopped (which closes its storage,
// leaving only the on-disk state) and detached from the network. A no-op
// for an already-killed node.
func (c *Cluster) KillNode(i int) {
	if c.Nodes[i] == nil {
		return
	}
	c.Nodes[i].Stop()
	c.Network.Disconnect(c.replicas[i].Addr())
	c.Nodes[i] = nil
}

// RestartNode recovers a killed node from its data directory and rejoins
// it to the cluster. Requires a DataDir-configured cluster.
func (c *Cluster) RestartNode(i int) error {
	if c.cfg.DataDir == "" {
		return fmt.Errorf("cluster: restart needs a data directory")
	}
	if c.Nodes[i] != nil {
		return fmt.Errorf("cluster: node %d is still running", c.replicas[i])
	}
	node, err := c.startNode(i)
	if err != nil {
		return err
	}
	c.Nodes[i] = node
	node.Start()
	return nil
}

// Replicas returns the cluster membership.
func (c *Cluster) Replicas() []consensus.ReplicaID {
	out := make([]consensus.ReplicaID, len(c.replicas))
	copy(out, c.replicas)
	return out
}

// NewFrontend attaches a frontend to the cluster. verify selects f+1
// signature verification instead of 2f+1 matching copies.
func (c *Cluster) NewFrontend(id string, verify bool) (*Frontend, error) {
	return NewFrontend(FrontendConfig{
		ID:               id,
		Replicas:         c.Replicas(),
		F:                c.cfg.F,
		VerifySignatures: verify,
		Registry:         c.Registry,
		Metrics: obs.NewFrontendMetrics(c.cfg.Metrics,
			"shard", strconv.Itoa(c.cfg.ShardID), "frontend", id),
	}, c.Network)
}

// Leader returns the node currently expected to lead (regency of node 0's
// view). Benchmarks measure throughput at the leader, as the paper does.
func (c *Cluster) Leader() *OrderingNode {
	if len(c.Nodes) == 0 {
		return nil
	}
	reg := c.Nodes[0].Replica().Stats().Regency
	return c.Nodes[int(reg)%len(c.Nodes)]
}

// Stop shuts down all nodes (each closes its own storage) and closes the
// network if the cluster created it.
func (c *Cluster) Stop() {
	for _, node := range c.Nodes {
		if node != nil {
			node.Stop()
		}
	}
	if c.ownsNet && c.Network != nil {
		c.Network.Close()
	}
}
