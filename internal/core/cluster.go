package core

import (
	"fmt"
	"time"

	"repro/internal/consensus"
	"repro/internal/cryptoutil"
	"repro/internal/transport"
)

// ClusterConfig assembles a complete in-process ordering service: n nodes
// over a shared network, with identities registered for verification.
type ClusterConfig struct {
	// Nodes is the cluster size (4, 7, or 10 in the paper's LAN
	// evaluation; 4 or 5 in the geo evaluation).
	Nodes int
	// F is the fault threshold (zero derives the maximum).
	F int
	// BlockSize is the envelopes-per-block bound (10 or 100 in the paper).
	BlockSize int
	// MaxBlockBytes optionally bounds block bytes.
	MaxBlockBytes int
	// BlockTimeout enables deterministic timeout-based cutting.
	BlockTimeout time.Duration
	// SigningWorkers sizes each node's signing pool (default 16).
	SigningWorkers int
	// DisableSigning skips block signatures (Equation 1 ablation).
	DisableSigning bool
	// BatchSize is the consensus batch limit (default 400, as in the
	// paper).
	BatchSize int
	// BatchTimeout is the consensus batching timeout.
	BatchTimeout time.Duration
	// RequestTimeout is the leader-change trigger.
	RequestTimeout time.Duration
	// CheckpointInterval bounds the decision log.
	CheckpointInterval int64
	// Tentative enables WHEAT's tentative execution.
	Tentative bool
	// Weights assigns WHEAT votes (nil = classic BFT-SMaRt).
	Weights map[consensus.ReplicaID]int
	// Network hosts the cluster; nil creates a zero-latency in-proc
	// network (an idealized LAN).
	Network *transport.InProcNetwork
}

// Cluster is a running in-process ordering service.
type Cluster struct {
	// Network is the hub nodes and frontends share.
	Network *transport.InProcNetwork
	// Nodes are the ordering nodes, indexed by replica id.
	Nodes []*OrderingNode
	// Registry holds every node's verification key.
	Registry *cryptoutil.Registry

	cfg      ClusterConfig
	replicas []consensus.ReplicaID
	ownsNet  bool
}

// NewCluster builds and starts an ordering cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", cfg.Nodes)
	}
	network := cfg.Network
	ownsNet := false
	if network == nil {
		network = transport.NewInProcNetwork(transport.InProcConfig{})
		ownsNet = true
	}
	replicas := make([]consensus.ReplicaID, cfg.Nodes)
	for i := range replicas {
		replicas[i] = consensus.ReplicaID(i)
	}
	registry := cryptoutil.NewRegistry()

	c := &Cluster{
		Network:  network,
		Registry: registry,
		cfg:      cfg,
		replicas: replicas,
		ownsNet:  ownsNet,
	}
	for _, id := range replicas {
		key, err := cryptoutil.GenerateKeyPair()
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("cluster: %w", err)
		}
		registry.Register(string(id.Addr()), key.Public())
		conn, err := network.Join(id.Addr())
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("cluster: %w", err)
		}
		node, err := NewNode(NodeConfig{
			Consensus: consensus.Config{
				SelfID:             id,
				Replicas:           replicas,
				F:                  cfg.F,
				Weights:            cfg.Weights,
				BatchSize:          cfg.BatchSize,
				BatchTimeout:       cfg.BatchTimeout,
				RequestTimeout:     cfg.RequestTimeout,
				CheckpointInterval: cfg.CheckpointInterval,
				Tentative:          cfg.Tentative,
				Key:                key,
				Registry:           registry,
			},
			BlockSize:      cfg.BlockSize,
			MaxBlockBytes:  cfg.MaxBlockBytes,
			BlockTimeout:   cfg.BlockTimeout,
			SigningWorkers: cfg.SigningWorkers,
			DisableSigning: cfg.DisableSigning,
			Key:            key,
		}, conn)
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("cluster: node %d: %w", id, err)
		}
		c.Nodes = append(c.Nodes, node)
	}
	for _, node := range c.Nodes {
		node.Start()
	}
	return c, nil
}

// Replicas returns the cluster membership.
func (c *Cluster) Replicas() []consensus.ReplicaID {
	out := make([]consensus.ReplicaID, len(c.replicas))
	copy(out, c.replicas)
	return out
}

// NewFrontend attaches a frontend to the cluster. verify selects f+1
// signature verification instead of 2f+1 matching copies.
func (c *Cluster) NewFrontend(id string, verify bool) (*Frontend, error) {
	return NewFrontend(FrontendConfig{
		ID:               id,
		Replicas:         c.Replicas(),
		F:                c.cfg.F,
		VerifySignatures: verify,
		Registry:         c.Registry,
	}, c.Network)
}

// Leader returns the node currently expected to lead (regency of node 0's
// view). Benchmarks measure throughput at the leader, as the paper does.
func (c *Cluster) Leader() *OrderingNode {
	if len(c.Nodes) == 0 {
		return nil
	}
	reg := c.Nodes[0].Replica().Stats().Regency
	return c.Nodes[int(reg)%len(c.Nodes)]
}

// Stop shuts down all nodes (and the network if the cluster created it).
func (c *Cluster) Stop() {
	for _, node := range c.Nodes {
		if node != nil {
			node.Stop()
		}
	}
	if c.ownsNet && c.Network != nil {
		c.Network.Close()
	}
}
