package core

import (
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/cryptoutil"
	"repro/internal/fabric"
	"repro/internal/transport"
)

// fakeNodes joins the network under the ordering nodes' addresses so a test
// can hand-craft block dissemination to a frontend.
type fakeNodes struct {
	conns []transport.Conn
	keys  []*cryptoutil.KeyPair
}

func newFakeNodes(t *testing.T, net *transport.InProcNetwork, n int, registry *cryptoutil.Registry) *fakeNodes {
	t.Helper()
	fn := &fakeNodes{}
	for i := 0; i < n; i++ {
		id := consensus.ReplicaID(i)
		conn, err := net.Join(id.Addr())
		if err != nil {
			t.Fatalf("join fake node %d: %v", i, err)
		}
		key, err := cryptoutil.GenerateKeyPair()
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		if registry != nil {
			registry.Register(string(id.Addr()), key.Public())
		}
		fn.conns = append(fn.conns, conn)
		fn.keys = append(fn.keys, key)
	}
	return fn
}

// send disseminates a signed copy of the block from node idx.
func (fn *fakeNodes) send(t *testing.T, idx int, channel string, block *fabric.Block, frontend transport.Addr) {
	t.Helper()
	sig, err := fn.keys[idx].SignDigest(block.Header.Hash())
	if err != nil {
		t.Fatalf("sign: %v", err)
	}
	copyBlock := &fabric.Block{
		Header:    block.Header,
		Envelopes: block.Envelopes,
		Signatures: []fabric.BlockSignature{{
			SignerID:  string(consensus.ReplicaID(idx).Addr()),
			Signature: sig,
		}},
	}
	fn.conns[idx].Send(frontend, MsgBlock, marshalBlockMsg(channel, copyBlock))
}

func feEnv(i int) []byte {
	return (&fabric.Envelope{ChannelID: "ch", ClientID: "c", TimestampUnixNano: int64(i)}).Marshal()
}

func awaitBlock(t *testing.T, stream <-chan *fabric.Block, within time.Duration) *fabric.Block {
	t.Helper()
	select {
	case b := <-stream:
		return b
	case <-time.After(within):
		t.Fatal("timed out waiting for block release")
		return nil
	}
}

func expectNoBlock(t *testing.T, stream <-chan *fabric.Block, within time.Duration) {
	t.Helper()
	select {
	case b := <-stream:
		t.Fatalf("unexpected release of block %d", b.Header.Number)
	case <-time.After(within):
	}
}

func TestFrontendReleasesAtTwoFPlusOne(t *testing.T) {
	net := transport.NewInProcNetwork(transport.InProcConfig{})
	defer net.Close()
	nodes := newFakeNodes(t, net, 4, nil)
	fe, err := NewFrontend(FrontendConfig{
		ID:       "fe",
		Replicas: ids4(),
	}, net)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	defer fe.Close()
	stream := deliverNewest(t, fe, "ch")

	block := fabric.NewBlock(0, cryptoutil.Digest{}, [][]byte{feEnv(0)})
	nodes.send(t, 0, "ch", block, "fe")
	nodes.send(t, 1, "ch", block, "fe")
	expectNoBlock(t, stream, 100*time.Millisecond) // 2 < 2f+1 = 3

	nodes.send(t, 2, "ch", block, "fe")
	got := awaitBlock(t, stream, 5*time.Second)
	if got.Header.Number != 0 {
		t.Fatalf("released block %d", got.Header.Number)
	}
	// Signatures from all three copies are accumulated.
	if len(got.Signatures) != 3 {
		t.Fatalf("released block carries %d signatures, want 3", len(got.Signatures))
	}
	// A duplicate copy from the same node must not double-release.
	nodes.send(t, 0, "ch", block, "fe")
	expectNoBlock(t, stream, 100*time.Millisecond)
}

func TestFrontendReordersBlocks(t *testing.T) {
	net := transport.NewInProcNetwork(transport.InProcConfig{})
	defer net.Close()
	nodes := newFakeNodes(t, net, 4, nil)
	fe, err := NewFrontend(FrontendConfig{ID: "fe", Replicas: ids4()}, net)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	defer fe.Close()
	stream := deliverNewest(t, fe, "ch")

	b0 := fabric.NewBlock(0, cryptoutil.Digest{}, [][]byte{feEnv(0)})
	b1 := fabric.NewBlock(1, b0.Header.Hash(), [][]byte{feEnv(1)})

	// Honest nodes disseminate per channel in block order; at most f may
	// reorder. A Byzantine early copy of block 1 must neither release it
	// nor make the frontend skip block 0.
	nodes.send(t, 0, "ch", b1, "fe")
	expectNoBlock(t, stream, 100*time.Millisecond)

	for i := 1; i < 4; i++ {
		nodes.send(t, i, "ch", b0, "fe")
	}
	first := awaitBlock(t, stream, 5*time.Second)
	if first.Header.Number != 0 {
		t.Fatalf("released block %d first, want 0", first.Header.Number)
	}
	// The honest copies of block 1 complete it (the early Byzantine copy
	// counts once) and it releases in order.
	nodes.send(t, 1, "ch", b1, "fe")
	nodes.send(t, 2, "ch", b1, "fe")
	second := awaitBlock(t, stream, 5*time.Second)
	if second.Header.Number != 1 {
		t.Fatalf("released block %d second, want 1", second.Header.Number)
	}
}

// TestFrontendRegistrationRaceDoesNotStall: one node registered the
// frontend a block earlier than the others, so the frontend holds a
// single copy of a block the release quorum will never send. Once the
// next block releases, that straggler is provably dead (even every
// not-yet-voted node could not complete it) and delivery proceeds.
func TestFrontendRegistrationRaceDoesNotStall(t *testing.T) {
	net := transport.NewInProcNetwork(transport.InProcConfig{})
	defer net.Close()
	nodes := newFakeNodes(t, net, 4, nil)
	fe, err := NewFrontend(FrontendConfig{ID: "fe", Replicas: ids4()}, net)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	defer fe.Close()
	stream := deliverNewest(t, fe, "ch")

	b4 := fabric.NewBlock(4, cryptoutil.Hash([]byte("earlier chain")), [][]byte{feEnv(4)})
	b5 := fabric.NewBlock(5, b4.Header.Hash(), [][]byte{feEnv(5)})

	nodes.send(t, 3, "ch", b4, "fe") // only node 3 registered us in time for block 4
	for i := 0; i < 4; i++ {
		nodes.send(t, i, "ch", b5, "fe")
	}
	got := awaitBlock(t, stream, 5*time.Second)
	if got.Header.Number != 5 {
		t.Fatalf("delivered block %d, want 5 (block 4 is dead: max 1+0 copies)", got.Header.Number)
	}
}

// TestFrontendJoinsMidChain: a frontend subscribing after the chain has
// grown (a durable cluster restarted from disk keeps numbering where it
// left off) starts delivery at the first block a release quorum sends it,
// rather than waiting forever for a genesis that predates it.
func TestFrontendJoinsMidChain(t *testing.T) {
	net := transport.NewInProcNetwork(transport.InProcConfig{})
	defer net.Close()
	nodes := newFakeNodes(t, net, 4, nil)
	fe, err := NewFrontend(FrontendConfig{ID: "fe", Replicas: ids4()}, net)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	defer fe.Close()
	stream := deliverNewest(t, fe, "ch")

	b6 := fabric.NewBlock(6, cryptoutil.Hash([]byte("pre-subscription chain")), [][]byte{feEnv(6)})
	b7 := fabric.NewBlock(7, b6.Header.Hash(), [][]byte{feEnv(7)})
	for i := 0; i < 3; i++ {
		nodes.send(t, i, "ch", b6, "fe")
	}
	got := awaitBlock(t, stream, 5*time.Second)
	if got.Header.Number != 6 {
		t.Fatalf("mid-chain subscription delivered block %d, want 6", got.Header.Number)
	}
	for i := 0; i < 3; i++ {
		nodes.send(t, i, "ch", b7, "fe")
	}
	if got := awaitBlock(t, stream, 5*time.Second); got.Header.Number != 7 {
		t.Fatalf("follow-up block %d, want 7", got.Header.Number)
	}
}

func TestFrontendConflictingCopiesDoNotMix(t *testing.T) {
	net := transport.NewInProcNetwork(transport.InProcConfig{})
	defer net.Close()
	nodes := newFakeNodes(t, net, 4, nil)
	fe, err := NewFrontend(FrontendConfig{ID: "fe", Replicas: ids4()}, net)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	defer fe.Close()
	stream := deliverNewest(t, fe, "ch")

	honest := fabric.NewBlock(0, cryptoutil.Digest{}, [][]byte{feEnv(0)})
	forged := fabric.NewBlock(0, cryptoutil.Digest{}, [][]byte{feEnv(999)})

	// One Byzantine copy + two honest copies: the forged content must not
	// count toward the honest quorum, and 2 honest copies are not enough.
	nodes.send(t, 0, "ch", forged, "fe")
	nodes.send(t, 1, "ch", honest, "fe")
	nodes.send(t, 2, "ch", honest, "fe")
	expectNoBlock(t, stream, 100*time.Millisecond)

	nodes.send(t, 3, "ch", honest, "fe")
	got := awaitBlock(t, stream, 5*time.Second)
	env, err := fabric.UnmarshalEnvelope(got.Envelopes[0])
	if err != nil {
		t.Fatalf("envelope: %v", err)
	}
	if env.TimestampUnixNano == 999 {
		t.Fatal("forged content released")
	}
}

func TestFrontendVerifyModeNeedsValidSignatures(t *testing.T) {
	net := transport.NewInProcNetwork(transport.InProcConfig{})
	defer net.Close()
	registry := cryptoutil.NewRegistry()
	nodes := newFakeNodes(t, net, 4, registry)
	fe, err := NewFrontend(FrontendConfig{
		ID:               "fe",
		Replicas:         ids4(),
		VerifySignatures: true,
		Registry:         registry,
	}, net)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	defer fe.Close()
	stream := deliverNewest(t, fe, "ch")

	block := fabric.NewBlock(0, cryptoutil.Digest{}, [][]byte{feEnv(0)})
	// A copy with a junk signature must not count toward f+1 verified.
	junk := &fabric.Block{
		Header:    block.Header,
		Envelopes: block.Envelopes,
		Signatures: []fabric.BlockSignature{{
			SignerID:  string(consensus.ReplicaID(0).Addr()),
			Signature: []byte("junk"),
		}},
	}
	nodes.conns[0].Send("fe", MsgBlock, marshalBlockMsg("ch", junk))
	nodes.send(t, 1, "ch", block, "fe")
	expectNoBlock(t, stream, 100*time.Millisecond) // only 1 verified < f+1 = 2

	nodes.send(t, 2, "ch", block, "fe")
	got := awaitBlock(t, stream, 5*time.Second)
	if got.Header.Number != 0 {
		t.Fatalf("released block %d", got.Header.Number)
	}
}

func TestFrontendIgnoresTamperedCopies(t *testing.T) {
	net := transport.NewInProcNetwork(transport.InProcConfig{})
	defer net.Close()
	nodes := newFakeNodes(t, net, 4, nil)
	fe, err := NewFrontend(FrontendConfig{ID: "fe", Replicas: ids4()}, net)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	defer fe.Close()
	stream := deliverNewest(t, fe, "ch")

	block := fabric.NewBlock(0, cryptoutil.Digest{}, [][]byte{feEnv(0)})
	// A copy whose envelopes do not match its data hash is discarded even
	// though its header is "correct".
	tampered := &fabric.Block{
		Header:    block.Header,
		Envelopes: [][]byte{feEnv(666)},
	}
	nodes.conns[0].Send("fe", MsgBlock, marshalBlockMsg("ch", tampered))
	nodes.send(t, 1, "ch", block, "fe")
	nodes.send(t, 2, "ch", block, "fe")
	expectNoBlock(t, stream, 100*time.Millisecond) // tampered copy discarded

	nodes.send(t, 3, "ch", block, "fe")
	awaitBlock(t, stream, 5*time.Second)
}

func ids4() []consensus.ReplicaID {
	return []consensus.ReplicaID{0, 1, 2, 3}
}
