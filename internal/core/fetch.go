package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/fabric"
	"repro/internal/transport"
	"repro/internal/wire"
)

// This file implements the FetchBlocks RPC: a requester (a frontend
// serving a historical Deliver seek, or a restarted node back-filling the
// gap a peer-checkpoint jump left in its durable chain) asks a peer for a
// range of sealed blocks, and the peer serves them from its durable
// ledger. A single peer is never trusted: every fetched range must link,
// hash over hash, into an anchor the requester already trusts (a
// quorum-released block for frontends, the post-jump chain state for
// nodes), so a Byzantine server can stall a fetch but never feed a forged
// history.

// maxFetchBlocks caps the blocks served per response; requesters ask for
// the next window until the range is covered.
const maxFetchBlocks = 128

// Fetch tuning.
const (
	// fetchWindowTimeout bounds one request/response round trip (the
	// per-peer deadline of a fetch pass).
	fetchWindowTimeout = 2 * time.Second
	// fetchRounds is how many passes over the peer set a range fetch makes
	// before giving up. Peers are rotated within each pass; the pauses
	// between passes follow fetchRetryPolicy.
	fetchRounds = 3
	// fetchRetryDelay is the initial pause between passes (peers may still
	// be recovering); subsequent pauses grow per fetchRetryPolicy.
	fetchRetryDelay = 250 * time.Millisecond
)

// fetchRetryPolicy spaces consecutive passes over the peer set: jittered
// exponential backoff (shared transport.RetryPolicy semantics), so a
// cluster of recovering nodes does not hammer the same peers in lockstep.
var fetchRetryPolicy = transport.RetryPolicy{
	Initial: fetchRetryDelay,
	Max:     2 * time.Second,
}

// ErrFetchFailed reports that no peer could serve a verifiable block range.
var ErrFetchFailed = errors.New("core: block fetch failed")

// Fetch request flags.
const (
	// fetchFlagSigsOnly asks the server to strip envelopes from each served
	// block, leaving header + signatures. Used once a full copy of a range
	// is already in hand: further peers only contribute signatures, so
	// re-downloading every payload wastes the bandwidth the signature
	// threshold was meant to amortize.
	fetchFlagSigsOnly = 1 << 0
)

// fetchRequest asks for blocks [From, To) of Channel.
type fetchRequest struct {
	ReqID    uint64
	Channel  string
	From     uint64
	To       uint64
	SigsOnly bool
}

func (q fetchRequest) marshal() []byte {
	w := wire.NewWriter(33 + len(q.Channel))
	w.PutUint64(q.ReqID)
	w.PutString(q.Channel)
	w.PutUint64(q.From)
	w.PutUint64(q.To)
	var flags uint64
	if q.SigsOnly {
		flags |= fetchFlagSigsOnly
	}
	w.PutUvarint(flags)
	return w.Bytes()
}

func unmarshalFetchRequest(payload []byte) (fetchRequest, error) {
	r := wire.NewReader(payload)
	q := fetchRequest{
		ReqID:   r.Uint64(),
		Channel: r.String(),
		From:    r.Uint64(),
		To:      r.Uint64(),
	}
	flags := r.Uvarint()
	if err := r.Finish(); err != nil {
		return fetchRequest{}, fmt.Errorf("fetch request: %w", err)
	}
	q.SigsOnly = flags&fetchFlagSigsOnly != 0
	return q, nil
}

// fetchResponse carries a contiguous run of marshalled blocks starting at
// From (empty when the server cannot serve the range). Floor, when
// non-zero, is the server's retention floor: the requested range starts
// below it and was compacted away.
type fetchResponse struct {
	ReqID  uint64
	From   uint64
	Floor  uint64
	Blocks [][]byte
}

func (p fetchResponse) marshal() []byte {
	size := 32
	for _, b := range p.Blocks {
		size += len(b) + 4
	}
	w := wire.NewWriter(size)
	w.PutUint64(p.ReqID)
	w.PutUint64(p.From)
	w.PutUint64(p.Floor)
	w.PutBytesSlice(p.Blocks)
	return w.Bytes()
}

func unmarshalFetchResponse(payload []byte) (fetchResponse, error) {
	r := wire.NewReader(payload)
	p := fetchResponse{
		ReqID:  r.Uint64(),
		From:   r.Uint64(),
		Floor:  r.Uint64(),
		Blocks: r.BytesSlice(),
	}
	if err := r.Finish(); err != nil {
		return fetchResponse{}, fmt.Errorf("fetch response: %w", err)
	}
	return p, nil
}

// fetchHeadProbe is the sentinel From/To of a head probe: the server
// answers with its single newest block (From set to that block's number).
const fetchHeadProbe = ^uint64(0)

// blockFetcher issues FetchBlocks requests over a transport connection and
// routes responses back to the waiting call by request id. HandleResponse
// must be wired into the owner's receive path.
type blockFetcher struct {
	conn transport.Conn

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*pendingFetch
}

// pendingFetch is one in-flight request: only a response from the peer it
// was sent to may answer it. Without the sender check, any single
// Byzantine replica could spray responses at guessed sequential request
// ids, occupy the reply slot before the honest peer answers, and thereby
// cast the "vote" of every peer a quorum fetch queries.
type pendingFetch struct {
	peer transport.Addr
	ch   chan fetchResponse
}

func newBlockFetcher(conn transport.Conn) *blockFetcher {
	return &blockFetcher{conn: conn, pending: make(map[uint64]*pendingFetch)}
}

// HandleResponse routes one MsgFetchResponse payload to its waiting call.
// Responses from the wrong sender, and unknown or late responses, are
// dropped.
func (bf *blockFetcher) HandleResponse(from transport.Addr, payload []byte) {
	resp, err := unmarshalFetchResponse(payload)
	if err != nil {
		return
	}
	bf.mu.Lock()
	p := bf.pending[resp.ReqID]
	bf.mu.Unlock()
	if p == nil || p.peer != from {
		return
	}
	select {
	case p.ch <- resp:
	default: // already answered
	}
}

// request sends one fetch request to a peer and awaits its response.
func (bf *blockFetcher) request(peer transport.Addr, channel string, from, to uint64, sigsOnly bool, done <-chan struct{}) (fetchResponse, error) {
	bf.mu.Lock()
	bf.nextID++
	id := bf.nextID
	p := &pendingFetch{peer: peer, ch: make(chan fetchResponse, 1)}
	bf.pending[id] = p
	bf.mu.Unlock()
	defer func() {
		bf.mu.Lock()
		delete(bf.pending, id)
		bf.mu.Unlock()
	}()

	req := fetchRequest{ReqID: id, Channel: channel, From: from, To: to, SigsOnly: sigsOnly}
	bf.conn.Send(peer, MsgFetchRequest, req.marshal())

	timer := time.NewTimer(fetchWindowTimeout)
	defer timer.Stop()
	select {
	case resp := <-p.ch:
		return resp, nil
	case <-timer.C:
		return fetchResponse{}, fmt.Errorf("fetch: peer %s timed out", peer)
	case <-done:
		return fetchResponse{}, ErrFetchFailed
	}
}

// errPeerPruned reports one peer answering that the requested range fell
// below its retention floor.
type errPeerPruned struct {
	peer  transport.Addr
	floor uint64
}

func (e *errPeerPruned) Error() string {
	return fmt.Sprintf("fetch: peer %s pruned the range (floor %d)", e.peer, e.floor)
}

// fetchWindow asks one peer for blocks [from, to) and returns the decoded
// prefix it served (possibly shorter than the window). A peer that
// compacted the range away answers with its floor, surfaced as
// *errPeerPruned.
func (bf *blockFetcher) fetchWindow(peer transport.Addr, channel string, from, to uint64, done <-chan struct{}) ([]*fabric.Block, error) {
	return bf.fetchWindowFlags(peer, channel, from, to, false, done)
}

func (bf *blockFetcher) fetchWindowFlags(peer transport.Addr, channel string, from, to uint64, sigsOnly bool, done <-chan struct{}) ([]*fabric.Block, error) {
	resp, err := bf.request(peer, channel, from, to, sigsOnly, done)
	if err != nil {
		return nil, err
	}
	if len(resp.Blocks) == 0 && resp.Floor > from {
		return nil, &errPeerPruned{peer: peer, floor: resp.Floor}
	}
	if resp.From != from {
		return nil, fmt.Errorf("fetch: peer %s answered from block %d, want %d", peer, resp.From, from)
	}
	blocks := make([]*fabric.Block, 0, len(resp.Blocks))
	for i, raw := range resp.Blocks {
		b, err := fabric.UnmarshalBlock(raw)
		if err != nil {
			return nil, fmt.Errorf("fetch: peer %s block %d: %w", peer, from+uint64(i), err)
		}
		blocks = append(blocks, b)
	}
	return blocks, nil
}

// probeHead asks one peer for its newest block.
func (bf *blockFetcher) probeHead(peer transport.Addr, channel string, done <-chan struct{}) (*fabric.Block, error) {
	resp, err := bf.request(peer, channel, fetchHeadProbe, fetchHeadProbe, false, done)
	if err != nil {
		return nil, err
	}
	if len(resp.Blocks) != 1 {
		return nil, fmt.Errorf("fetch: peer %s has no head for the channel", peer)
	}
	b, err := fabric.UnmarshalBlock(resp.Blocks[0])
	if err != nil {
		return nil, fmt.Errorf("fetch: peer %s head: %w", peer, err)
	}
	if b.Header.Number != resp.From || b.CheckIntegrity() != nil {
		return nil, fmt.Errorf("fetch: peer %s served a malformed head", peer)
	}
	return b, nil
}

// QuorumHead returns a block f+1 peers agree is (part of) the chain's
// head region: each peer nominates its newest block, and the first header
// hash reaching f+1 votes is trusted (at least one voter is correct).
// The returned block may trail the true head — callers replay up to it
// and let the live stream's gap fill cover the rest.
func (bf *blockFetcher) QuorumHead(done <-chan struct{}, peers []transport.Addr, channel string, f int) (*fabric.Block, error) {
	votes := make(map[cryptoutil.Digest]int)
	blocks := make(map[cryptoutil.Digest]*fabric.Block)
	for _, peer := range peers {
		b, err := bf.probeHead(peer, channel, done)
		if err != nil {
			select {
			case <-done:
				return nil, ErrFetchFailed
			default:
			}
			continue
		}
		h := b.Header.Hash()
		votes[h]++
		blocks[h] = b
		if votes[h] >= f+1 {
			return blocks[h], nil
		}
	}
	return nil, fmt.Errorf("%w: no f+1 quorum on %s's head", ErrFetchFailed, channel)
}

// FetchRange retrieves blocks [from, to) of a channel, trying each peer in
// turn, and authenticates the whole range against the trusted anchor:
// anchorPrev must equal the header hash of block to-1 (i.e. the PrevHash
// of the first block the requester already trusts above the range). The
// range is fetched window by window from a single peer, so a forged
// response is discarded wholesale rather than partially applied.
//
// f is the fault threshold: when f+1 distinct peers answer that the range
// fell below their retention floor, the range is authoritatively pruned
// (at least one of them is honest) and the call fails with a typed
// *fabric.PrunedError carrying the smallest reported floor — callers
// either surface it (NOT_FOUND) or restart their read from the floor.
func (bf *blockFetcher) FetchRange(done <-chan struct{}, peers []transport.Addr, channel string, from, to uint64, anchorPrev cryptoutil.Digest, f int) ([]*fabric.Block, error) {
	if to <= from {
		return nil, nil
	}
	var lastErr error = ErrFetchFailed
	pruned := newPrunedTally(f)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for round := 0; round < fetchRounds; round++ {
		for _, peer := range peers {
			blocks, err := bf.fetchRangeFromPeer(peer, channel, from, to, done)
			if err != nil {
				lastErr = err
				if pe := pruned.note(channel, err); pe != nil {
					return nil, pe
				}
				select {
				case <-done:
					return nil, ErrFetchFailed
				default:
				}
				continue
			}
			if err := fabric.VerifyRange(blocks, from, to, anchorPrev); err != nil {
				lastErr = fmt.Errorf("fetch: peer %s served an unverifiable range: %w", peer, err)
				continue
			}
			return blocks, nil
		}
		if round == fetchRounds-1 {
			break
		}
		select {
		case <-done:
			return nil, ErrFetchFailed
		case <-time.After(fetchRetryPolicy.Delay(round, rng)):
		}
	}
	return nil, fmt.Errorf("%w: %s blocks %d..%d: %v", ErrFetchFailed, channel, from, to-1, lastErr)
}

// prunedTally accumulates per-peer pruned answers until f+1 distinct
// peers agree the range is gone.
type prunedTally struct {
	f        int
	peers    map[transport.Addr]struct{}
	minFloor uint64
}

func newPrunedTally(f int) *prunedTally {
	return &prunedTally{f: f, peers: make(map[transport.Addr]struct{})}
}

// note records err if it is a peer-pruned answer and returns the typed
// pruned error once f+1 distinct peers reported one.
func (t *prunedTally) note(channel string, err error) *fabric.PrunedError {
	var pp *errPeerPruned
	if !errors.As(err, &pp) {
		return nil
	}
	if _, seen := t.peers[pp.peer]; !seen {
		t.peers[pp.peer] = struct{}{}
		if len(t.peers) == 1 || pp.floor < t.minFloor {
			t.minFloor = pp.floor
		}
	}
	if len(t.peers) >= t.f+1 {
		return &fabric.PrunedError{Channel: channel, Floor: t.minFloor}
	}
	return nil
}

// FetchRangeQuorum retrieves blocks [from, to) authenticated by quorum
// agreement instead of a locally trusted anchor: f+1 peers must serve
// identical copies of the top block to-1 (at least one of them is
// correct), and the full range must then chain into that agreed hash.
// Used for bounded historical seeks issued before any live block has
// anchored the chain; fails when fewer than f+1 peers hold the top block
// (e.g. it is not sealed yet).
func (bf *blockFetcher) FetchRangeQuorum(done <-chan struct{}, peers []transport.Addr, channel string, from, to uint64, f int) ([]*fabric.Block, error) {
	if to <= from {
		return nil, nil
	}
	votes := make(map[cryptoutil.Digest]int)
	pruned := newPrunedTally(f)
	var anchorPrev cryptoutil.Digest
	agreed := false
	for _, peer := range peers {
		blocks, err := bf.fetchWindow(peer, channel, to-1, to, done)
		if err != nil || len(blocks) != 1 || blocks[0].Header.Number != to-1 {
			if err != nil {
				if pe := pruned.note(channel, err); pe != nil {
					return nil, pe
				}
			}
			select {
			case <-done:
				return nil, ErrFetchFailed
			default:
			}
			continue
		}
		h := blocks[0].Header.Hash()
		votes[h]++
		if votes[h] >= f+1 {
			anchorPrev = h
			agreed = true
			break
		}
	}
	if !agreed {
		return nil, fmt.Errorf("%w: no f+1 quorum on %s block %d", ErrFetchFailed, channel, to-1)
	}
	return bf.FetchRange(done, peers, channel, from, to, anchorPrev, f)
}

// disableFetchVerification artificially drops FetchRangeVerified's f+1
// signature threshold to zero. It exists solely so the chaos harness can
// prove its forged-history invariant has teeth: with verification disabled
// the invariant MUST trip against a forging peer. Never set outside tests.
var disableFetchVerification atomic.Bool

// SetFetchVerificationDisabled toggles the teeth-test switch (see
// disableFetchVerification). Test instrumentation only.
func SetFetchVerificationDisabled(v bool) { disableFetchVerification.Store(v) }

// rangeCandidate is one internally hash-linked version of a requested
// range, identified by its last block's header hash, accumulating verified
// signatures across the peers that served a matching copy.
type rangeCandidate struct {
	blocks   []*fabric.Block
	verified []map[string]bool
	short    int // blocks still below the signature threshold
}

// FetchRangeVerified retrieves blocks [from, to) authenticated by node
// signatures instead of a trusted anchor: every block must carry f+1
// valid signatures from distinct ordering nodes (at least one of which
// is honest), which makes a fetched range independently verifiable with
// no prior chain state at all. Nodes persist (at least) their own
// signature with every block they seal, so one peer's copy rarely
// carries f+1 on its own; the fetcher merges the signature sets of
// identical blocks served by further peers until the threshold is met.
//
// Every well-formed version of the range is tracked as its own candidate
// (identity: the last block's header hash — the hash chain makes it cover
// the whole range), so a byzantine peer that answers first with a forged
// but internally consistent chain cannot lock honest copies out: the
// honest version accumulates its quorum independently and wins. Chains
// persisted before signature retention (legacy) cannot reach the
// threshold and fail with ErrUnverifiedRange — callers fall back to
// hash-chain anchoring.
//
// Once a full copy is in hand, further peers are asked for signatures
// only (fetchFlagSigsOnly): envelope-stripped blocks whose signatures are
// merged per index by header-hash match. Matching by header hash is safe
// without re-verifying the chain — every signature is checked against the
// candidate's own header digest, so a stripped response can contribute
// valid signatures or nothing. A peer whose signature response matches no
// candidate index holds a different version of the range; it is re-asked
// for a full copy so an honest alternative can form its own candidate.
// The peer set is swept up to fetchRounds times with jittered backoff in
// between, so one pass of transient loss does not strand a joining node.
func (bf *blockFetcher) FetchRangeVerified(done <-chan struct{}, peers []transport.Addr, channel string, from, to uint64, registry *cryptoutil.Registry, f int) ([]*fabric.Block, error) {
	if to <= from {
		return nil, nil
	}
	need := f + 1
	if disableFetchVerification.Load() {
		need = 0
	}
	pruned := newPrunedTally(f)
	var candidates []*rangeCandidate
	var lastErr error = ErrFetchFailed
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))

	// absorbFull fetches a full copy from one peer and folds it into the
	// candidate set. It returns the candidate the copy completed, if any.
	absorbFull := func(peer transport.Addr) *rangeCandidate {
		blocks, err := bf.fetchRangeFromPeer(peer, channel, from, to, done)
		if err != nil {
			lastErr = err
			return nil
		}
		if uint64(len(blocks)) != to-from || blocks[0].Header.Number != from ||
			fabric.VerifyChain(blocks) != nil {
			lastErr = fmt.Errorf("fetch: peer %s served a malformed range", peer)
			return nil
		}
		key := blocks[len(blocks)-1].Header.Hash()
		var cand *rangeCandidate
		for _, c := range candidates {
			if c.blocks[len(c.blocks)-1].Header.Hash() == key {
				cand = c
				break
			}
		}
		if cand == nil {
			cand = &rangeCandidate{blocks: blocks, short: len(blocks)}
			for _, b := range blocks {
				signers := countVerified(registry, b, b)
				cand.verified = append(cand.verified, signers)
				if len(signers) >= need {
					cand.short--
				}
			}
			candidates = append(candidates, cand)
		} else {
			// Merge this peer's signatures into the matching candidate.
			for i, b := range cand.blocks {
				if len(cand.verified[i]) >= need {
					continue
				}
				if blocks[i].Header.Hash() != b.Header.Hash() {
					continue // diverging copy: its signatures prove nothing here
				}
				before := len(cand.verified[i])
				mergeVerified(registry, b, blocks[i], cand.verified[i])
				if before < need && len(cand.verified[i]) >= need {
					cand.short--
				}
			}
		}
		if cand.short <= 0 {
			return cand
		}
		return nil
	}

	for round := 0; round < fetchRounds; round++ {
		for _, peer := range peers {
			select {
			case <-done:
				return nil, ErrFetchFailed
			default:
			}
			if len(candidates) == 0 {
				if cand := absorbFull(peer); cand != nil {
					return cand.blocks, nil
				}
				if pe := pruned.note(channel, lastErr); pe != nil {
					return nil, pe
				}
				continue
			}
			sigBlocks, err := bf.fetchSigsFromPeer(peer, channel, from, to, done)
			if err != nil {
				lastErr = err
				if pe := pruned.note(channel, err); pe != nil {
					return nil, pe
				}
				continue
			}
			matched := 0
			for _, cand := range candidates {
				for i, b := range cand.blocks {
					if i >= len(sigBlocks) || sigBlocks[i] == nil {
						continue
					}
					if sigBlocks[i].Header.Hash() != b.Header.Hash() {
						continue
					}
					matched++
					if len(cand.verified[i]) >= need {
						continue
					}
					before := len(cand.verified[i])
					mergeVerified(registry, b, sigBlocks[i], cand.verified[i])
					if before < need && len(cand.verified[i]) >= need {
						cand.short--
					}
				}
				if cand.short <= 0 {
					return cand.blocks, nil
				}
			}
			if matched == 0 {
				// This peer holds a version of the range no candidate
				// matches: download it in full so an honest alternative to
				// a byzantine first responder can form its own candidate.
				if cand := absorbFull(peer); cand != nil {
					return cand.blocks, nil
				}
			}
		}
		if round == fetchRounds-1 {
			break
		}
		select {
		case <-done:
			return nil, ErrFetchFailed
		case <-time.After(fetchRetryPolicy.Delay(round, rng)):
		}
	}
	if len(candidates) > 0 {
		return nil, fmt.Errorf("%w: %s blocks %d..%d", ErrUnverifiedRange, channel, from, to-1)
	}
	return nil, fmt.Errorf("%w: %s blocks %d..%d: %v", ErrFetchFailed, channel, from, to-1, lastErr)
}

// fetchSigsFromPeer accumulates envelope-stripped copies of [from, to)
// from one peer, window by window. The result is positional: index i
// holds the peer's copy of block from+i (header + signatures only), and
// callers must match by header hash before trusting anything in it.
func (bf *blockFetcher) fetchSigsFromPeer(peer transport.Addr, channel string, from, to uint64, done <-chan struct{}) ([]*fabric.Block, error) {
	out := make([]*fabric.Block, 0, to-from)
	for next := from; next < to; {
		blocks, err := bf.fetchWindowFlags(peer, channel, next, to, true, done)
		if err != nil {
			return nil, err
		}
		if len(blocks) == 0 {
			return nil, fmt.Errorf("fetch: peer %s cannot serve block %d", peer, next)
		}
		for i, b := range blocks {
			if b.Header.Number != next+uint64(i) {
				return nil, fmt.Errorf("fetch: peer %s served out-of-order signatures", peer)
			}
		}
		out = append(out, blocks...)
		next += uint64(len(blocks))
	}
	return out, nil
}

// ErrUnverifiedRange reports a fetched range that could not accumulate
// f+1 valid signatures per block (typically history persisted before
// signature retention).
var ErrUnverifiedRange = errors.New("core: fetched range lacks f+1 signatures")

// countVerified returns the set of distinct signers of src whose
// signatures over dst's header verify, merging into a fresh set.
func countVerified(registry *cryptoutil.Registry, dst, src *fabric.Block) map[string]bool {
	signers := make(map[string]bool)
	mergeVerified(registry, dst, src, signers)
	return signers
}

// mergeVerified adds src's valid signatures over dst's header to the
// signer set, appending newly seen ones to dst so the caller hands on a
// block that carries its own proof.
func mergeVerified(registry *cryptoutil.Registry, dst, src *fabric.Block, signers map[string]bool) {
	digest := dst.Header.Hash()
	for _, sig := range src.Signatures {
		if signers[sig.SignerID] {
			continue
		}
		if !registry.Verify(sig.SignerID, digest.Bytes(), sig.Signature) {
			continue
		}
		signers[sig.SignerID] = true
		if dst != src {
			dst.Signatures = append(dst.Signatures, sig)
		}
	}
}

// fetchRangeFromPeer accumulates [from, to) from one peer, window by
// window.
func (bf *blockFetcher) fetchRangeFromPeer(peer transport.Addr, channel string, from, to uint64, done <-chan struct{}) ([]*fabric.Block, error) {
	out := make([]*fabric.Block, 0, to-from)
	for next := from; next < to; {
		blocks, err := bf.fetchWindow(peer, channel, next, to, done)
		if err != nil {
			return nil, err
		}
		if len(blocks) == 0 {
			return nil, fmt.Errorf("fetch: peer %s cannot serve block %d", peer, next)
		}
		out = append(out, blocks...)
		next += uint64(len(blocks))
	}
	return out, nil
}
