package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/cryptoutil"
	"repro/internal/fabric"
	"repro/internal/transport"
)

func testCluster(t *testing.T, cfg ClusterConfig) *Cluster {
	t.Helper()
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 2 * time.Second
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(c.Stop)
	return c
}

func testFrontend(t *testing.T, c *Cluster, id string, verify bool) *Frontend {
	t.Helper()
	fe, err := c.NewFrontend(id, verify)
	if err != nil {
		t.Fatalf("NewFrontend: %v", err)
	}
	t.Cleanup(fe.Close)
	return fe
}

func mkEnvelope(channel string, i, size int) *fabric.Envelope {
	payload := make([]byte, size)
	copy(payload, fmt.Sprintf("tx-%06d", i))
	return &fabric.Envelope{
		ChannelID:         channel,
		ClientID:          "test-client",
		TimestampUnixNano: int64(i),
		Payload:           payload,
	}
}

// deliverNewest subscribes to a channel's live tail (the pre-seek Deliver
// semantics) and returns the raw block channel.
func deliverNewest(t *testing.T, ord fabric.Orderer, channel string) <-chan *fabric.Block {
	t.Helper()
	stream, err := ord.Deliver(channel, fabric.DeliverNewest())
	if err != nil {
		t.Fatalf("deliver %q: %v", channel, err)
	}
	t.Cleanup(stream.Cancel)
	return stream.Blocks()
}

// collectBlocks reads blocks from a stream until want envelopes arrived.
func collectBlocks(t *testing.T, stream <-chan *fabric.Block, wantEnvs int, within time.Duration) []*fabric.Block {
	t.Helper()
	deadline := time.After(within)
	var blocks []*fabric.Block
	total := 0
	for total < wantEnvs {
		select {
		case b, ok := <-stream:
			if !ok {
				t.Fatalf("stream closed after %d/%d envelopes", total, wantEnvs)
			}
			blocks = append(blocks, b)
			total += len(b.Envelopes)
		case <-deadline:
			t.Fatalf("timed out with %d/%d envelopes", total, wantEnvs)
		}
	}
	return blocks
}

func TestOrderingServiceEndToEnd(t *testing.T) {
	c := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 5})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch1")

	const envs = 20
	for i := 0; i < envs; i++ {
		if st := fe.Broadcast(mkEnvelope("ch1", i, 64)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast %d: %v", i, st)
		}
	}
	blocks := collectBlocks(t, stream, envs, 10*time.Second)
	if len(blocks) != envs/5 {
		t.Fatalf("got %d blocks, want %d", len(blocks), envs/5)
	}
	// The chain must verify and carry at least 2f+1 signatures per block.
	if err := fabric.VerifyChain(blocks); err != nil {
		t.Fatalf("chain: %v", err)
	}
	for _, b := range blocks {
		if len(b.Signatures) < 3 {
			t.Fatalf("block %d has %d signatures, want >= 3", b.Header.Number, len(b.Signatures))
		}
		if got := b.VerifySignatures(c.Registry); got < 3 {
			t.Fatalf("block %d: only %d signatures verify", b.Header.Number, got)
		}
	}
	// Envelopes arrive in submission order (single client, FIFO).
	idx := 0
	for _, b := range blocks {
		for _, raw := range b.Envelopes {
			env, err := fabric.UnmarshalEnvelope(raw)
			if err != nil {
				t.Fatalf("envelope: %v", err)
			}
			if env.TimestampUnixNano != int64(idx) {
				t.Fatalf("envelope %d out of order (ts %d)", idx, env.TimestampUnixNano)
			}
			idx++
		}
	}
}

func TestOrderingServiceVerifyMode(t *testing.T) {
	c := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 2})
	fe := testFrontend(t, c, "frontend-v", true) // f+1 verified signatures
	stream := deliverNewest(t, fe, "ch1")
	for i := 0; i < 6; i++ {
		if st := fe.Broadcast(mkEnvelope("ch1", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %v", st)
		}
	}
	blocks := collectBlocks(t, stream, 6, 10*time.Second)
	if err := fabric.VerifyChain(blocks); err != nil {
		t.Fatalf("chain: %v", err)
	}
}

func TestOrderingServiceMultiChannel(t *testing.T) {
	c := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 3})
	fe := testFrontend(t, c, "frontend-0", false)
	streamA := deliverNewest(t, fe, "alpha")
	streamB := deliverNewest(t, fe, "beta")

	for i := 0; i < 9; i++ {
		if st := fe.Broadcast(mkEnvelope("alpha", i, 16)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast alpha: %v", st)
		}
		if st := fe.Broadcast(mkEnvelope("beta", 100+i, 16)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast beta: %v", st)
		}
	}
	blocksA := collectBlocks(t, streamA, 9, 10*time.Second)
	blocksB := collectBlocks(t, streamB, 9, 10*time.Second)
	if err := fabric.VerifyChain(blocksA); err != nil {
		t.Fatalf("alpha chain: %v", err)
	}
	if err := fabric.VerifyChain(blocksB); err != nil {
		t.Fatalf("beta chain: %v", err)
	}
	// Channels are independent chains, both starting at block 0.
	if blocksA[0].Header.Number != 0 || blocksB[0].Header.Number != 0 {
		t.Fatal("channel chains do not start at block 0")
	}
	// No envelope leaks across channels.
	for _, b := range blocksB {
		for _, raw := range b.Envelopes {
			chanID, err := fabric.ChannelOf(raw)
			if err != nil || chanID != "beta" {
				t.Fatalf("beta block contains envelope of channel %q", chanID)
			}
		}
	}
}

func TestMultipleFrontendsSeeSameChain(t *testing.T) {
	c := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 4})
	fe1 := testFrontend(t, c, "frontend-1", false)
	fe2 := testFrontend(t, c, "frontend-2", false)
	stream1 := deliverNewest(t, fe1, "ch")
	stream2 := deliverNewest(t, fe2, "ch")

	const envs = 16
	for i := 0; i < envs; i++ {
		src := fe1
		if i%2 == 1 {
			src = fe2
		}
		if st := src.Broadcast(mkEnvelope("ch", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %v", st)
		}
	}
	blocks1 := collectBlocks(t, stream1, envs, 10*time.Second)
	blocks2 := collectBlocks(t, stream2, envs, 10*time.Second)
	if len(blocks1) != len(blocks2) {
		t.Fatalf("frontends saw %d vs %d blocks", len(blocks1), len(blocks2))
	}
	for i := range blocks1 {
		if blocks1[i].Header.Hash() != blocks2[i].Header.Hash() {
			t.Fatalf("block %d differs between frontends", i)
		}
	}
}

func TestOrderingSurvivesCrashFollower(t *testing.T) {
	c := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 2})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch")

	// Crash one non-leader node: 3 of 4 remain, quorums still form, and
	// frontends still gather 2f+1 = 3 matching copies.
	c.Nodes[2].Stop()
	c.Network.Disconnect(consensus.ReplicaID(2).Addr())

	for i := 0; i < 8; i++ {
		if st := fe.Broadcast(mkEnvelope("ch", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %v", st)
		}
	}
	blocks := collectBlocks(t, stream, 8, 10*time.Second)
	if err := fabric.VerifyChain(blocks); err != nil {
		t.Fatalf("chain: %v", err)
	}
}

func TestOrderingSurvivesCrashLeader(t *testing.T) {
	c := testCluster(t, ClusterConfig{
		Nodes: 4, BlockSize: 2, RequestTimeout: 500 * time.Millisecond,
	})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch")

	for i := 0; i < 4; i++ {
		if st := fe.Broadcast(mkEnvelope("ch", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %v", st)
		}
	}
	collectBlocks(t, stream, 4, 10*time.Second)

	// Crash the leader (node 0, regency 0) and keep submitting: the
	// synchronization phase elects node 1 and ordering resumes.
	c.Nodes[0].Stop()
	c.Network.Disconnect(consensus.ReplicaID(0).Addr())

	for i := 4; i < 10; i++ {
		if st := fe.Broadcast(mkEnvelope("ch", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %v", st)
		}
	}
	blocks := collectBlocks(t, stream, 6, 15*time.Second)
	if err := fabric.VerifyChain(blocks); err != nil {
		t.Fatalf("chain after leader change: %v", err)
	}
}

func TestOrderingByzantineLeader(t *testing.T) {
	c := testCluster(t, ClusterConfig{
		Nodes: 4, BlockSize: 2, RequestTimeout: 500 * time.Millisecond,
	})
	c.Nodes[0].Replica().SetBehavior(consensus.Behavior{Equivocate: true})

	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch")
	for i := 0; i < 6; i++ {
		if st := fe.Broadcast(mkEnvelope("ch", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %v", st)
		}
	}
	blocks := collectBlocks(t, stream, 6, 15*time.Second)
	if err := fabric.VerifyChain(blocks); err != nil {
		t.Fatalf("chain under equivocation: %v", err)
	}
}

func TestWheatClusterOrdering(t *testing.T) {
	replicas := []consensus.ReplicaID{0, 1, 2, 3, 4}
	weights, err := consensus.BinaryWeights(replicas, 1, 1, []consensus.ReplicaID{0, 1})
	if err != nil {
		t.Fatalf("weights: %v", err)
	}
	c := testCluster(t, ClusterConfig{
		Nodes: 5, F: 1, BlockSize: 5, Tentative: true, Weights: weights,
	})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch")
	for i := 0; i < 20; i++ {
		if st := fe.Broadcast(mkEnvelope("ch", i, 64)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %v", st)
		}
	}
	blocks := collectBlocks(t, stream, 20, 10*time.Second)
	if err := fabric.VerifyChain(blocks); err != nil {
		t.Fatalf("wheat chain: %v", err)
	}
}

func TestBlockTimeoutCutsPartialBlocks(t *testing.T) {
	c := testCluster(t, ClusterConfig{
		Nodes: 4, BlockSize: 100, BlockTimeout: 100 * time.Millisecond,
	})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch")

	// Only 3 envelopes: far below the block size; the TTC path must cut.
	for i := 0; i < 3; i++ {
		if st := fe.Broadcast(mkEnvelope("ch", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %v", st)
		}
	}
	blocks := collectBlocks(t, stream, 3, 10*time.Second)
	if blocks[0].Header.Number != 0 {
		t.Fatalf("first block number = %d", blocks[0].Header.Number)
	}
	if err := fabric.VerifyChain(blocks); err != nil {
		t.Fatalf("chain: %v", err)
	}
}

func TestFrontendRejectsForgedBlocks(t *testing.T) {
	c := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 2})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch")

	// An attacker (not an ordering node) floods forged blocks; the
	// frontend must ignore them because they come from unknown senders.
	evil, err := c.Network.Join("attacker")
	if err != nil {
		t.Fatalf("join attacker: %v", err)
	}
	forged := fabric.NewBlock(0, cryptoutil.Digest{}, [][]byte{mkEnvelope("ch", 999, 8).Marshal()})
	payload := marshalBlockMsg("ch", forged)
	for i := 0; i < 10; i++ {
		evil.Send("frontend-0", MsgBlock, payload)
	}
	// A single Byzantine node (fewer than 2f+1 copies) cannot release a
	// block either: send one forged copy from node 3's address... not
	// possible via the hub (addresses are unique), so instead verify that
	// legitimate traffic still flows and the forged block never surfaced.
	for i := 0; i < 4; i++ {
		if st := fe.Broadcast(mkEnvelope("ch", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %v", st)
		}
	}
	blocks := collectBlocks(t, stream, 4, 10*time.Second)
	for _, b := range blocks {
		for _, raw := range b.Envelopes {
			env, err := fabric.UnmarshalEnvelope(raw)
			if err != nil {
				t.Fatalf("envelope: %v", err)
			}
			if env.TimestampUnixNano == 999 {
				t.Fatal("forged envelope delivered")
			}
		}
	}
}

func TestNodeStatsProgress(t *testing.T) {
	c := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 2})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch")
	for i := 0; i < 6; i++ {
		if st := fe.Broadcast(mkEnvelope("ch", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %v", st)
		}
	}
	collectBlocks(t, stream, 6, 10*time.Second)
	// Signing completes asynchronously on the pool; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	var s NodeStats
	for time.Now().Before(deadline) {
		s = c.Nodes[0].Stats()
		if s.BlocksSigned >= 3 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if s.EnvelopesOrdered < 6 || s.BlocksCut < 3 || s.BlocksSigned < 3 {
		t.Fatalf("node stats did not progress: %+v", s)
	}
	fs := fe.Stats()
	if fs.EnvelopesSent != 6 || fs.EnvelopesDelivered < 6 || fs.BlocksReleased < 3 {
		t.Fatalf("frontend stats did not progress: %+v", fs)
	}
	if c.Leader() == nil {
		t.Fatal("no leader reported")
	}
}

func TestSoloOrderer(t *testing.T) {
	key, err := cryptoutil.GenerateKeyPair()
	if err != nil {
		t.Fatalf("keygen: %v", err)
	}
	solo, err := NewSoloOrderer(SoloConfig{BlockSize: 3, Key: key, SigningWorkers: 2})
	if err != nil {
		t.Fatalf("NewSoloOrderer: %v", err)
	}
	defer solo.Close()

	stream := deliverNewest(t, solo, "ch")
	for i := 0; i < 9; i++ {
		if st := solo.Broadcast(mkEnvelope("ch", i, 16)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %v", st)
		}
	}
	blocks := collectBlocks(t, stream, 9, 5*time.Second)
	if len(blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(blocks))
	}
	if err := fabric.VerifyChain(blocks); err != nil {
		t.Fatalf("chain: %v", err)
	}
	envs, blks := solo.Stats()
	if envs != 9 || blks != 3 {
		t.Fatalf("stats = %d envs, %d blocks", envs, blks)
	}
}

func TestSoloOrdererTimeout(t *testing.T) {
	key, err := cryptoutil.GenerateKeyPair()
	if err != nil {
		t.Fatalf("keygen: %v", err)
	}
	solo, err := NewSoloOrderer(SoloConfig{
		BlockSize: 100, BlockTimeout: 50 * time.Millisecond, Key: key, SigningWorkers: 1,
	})
	if err != nil {
		t.Fatalf("NewSoloOrderer: %v", err)
	}
	defer solo.Close()
	stream := deliverNewest(t, solo, "ch")
	if st := solo.Broadcast(mkEnvelope("ch", 0, 16)); st != fabric.StatusSuccess {
		t.Fatalf("broadcast: %v", st)
	}
	collectBlocks(t, stream, 1, 5*time.Second)
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Nodes: 0}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	key, err := cryptoutil.GenerateKeyPair()
	if err != nil {
		t.Fatalf("keygen: %v", err)
	}
	if _, err := NewNode(NodeConfig{}, nil); err == nil {
		t.Fatal("nil key accepted")
	}
	net := transport.NewInProcNetwork(transport.InProcConfig{})
	defer net.Close()
	if _, err := NewFrontend(FrontendConfig{ID: "", Replicas: []consensus.ReplicaID{0}}, net); err == nil {
		t.Fatal("empty frontend id accepted")
	}
	if _, err := NewFrontend(FrontendConfig{ID: "x"}, net); err == nil {
		t.Fatal("empty replica set accepted")
	}
	if _, err := NewFrontend(FrontendConfig{
		ID: "x", Replicas: []consensus.ReplicaID{0, 1, 2, 3}, VerifySignatures: true,
	}, net); err == nil {
		t.Fatal("verification without registry accepted")
	}
	if _, err := NewSoloOrderer(SoloConfig{}); err == nil {
		t.Fatal("solo without key accepted")
	}
	_ = key
}
