package core

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"repro/internal/consensus"
	"repro/internal/transport"
)

// This file implements the join bootstrap of a new ordering node: a node
// started from an empty data directory, with the current group plus itself
// as its static membership, announces a ReconfigAdd for its own identity
// until the group orders it (Section 5.2: membership changes flow through
// the same total order as envelopes). Once admitted, the newcomer is
// included in the group's consensus traffic, catches up through the
// standard checkpoint state transfer, and back-fills its durable ledgers
// from the peers' retention floor via the signature-verified fetch path
// (floor discovery and floor-climbing live in fetchGap). The announcement
// itself is policy-driven — jittered exponential backoff with peer
// rotation — so transient loss delays the join instead of failing it; only
// the hard deadline turns it into a typed JoinError.

// JoinError is the typed failure of a cluster join: the hard deadline
// passed (or the node stopped) before it observed itself admitted.
type JoinError struct {
	// Node is the joining replica's identity.
	Node consensus.ReplicaID
	// Elapsed is how long the join ran before giving up.
	Elapsed time.Duration
	// Epoch is the membership epoch last observed locally (0 when the node
	// never saw an ordered reconfiguration).
	Epoch uint64
	// Stopped reports that the node was stopped mid-join rather than the
	// deadline passing.
	Stopped bool
}

func (e *JoinError) Error() string {
	if e.Stopped {
		return fmt.Sprintf("join: node %d stopped after %v before being admitted (local epoch %d)",
			int(e.Node), e.Elapsed.Round(time.Millisecond), e.Epoch)
	}
	return fmt.Sprintf("join: node %d not admitted within %v (local epoch %d)",
		int(e.Node), e.Elapsed.Round(time.Millisecond), e.Epoch)
}

// JoinOptions tunes the join bootstrap.
type JoinOptions struct {
	// Weight is the WHEAT vote weight to request (0 means 1).
	Weight int
	// Announce schedules the ReconfigAdd re-announcements (zero fields take
	// the shared retry defaults, starting at 500ms).
	Announce transport.RetryPolicy
	// Deadline is the hard join deadline. Zero means 60 seconds.
	Deadline time.Duration
}

// Join announces this node to the group it was configured against and
// blocks until the node observes its own admission: the membership epoch
// advanced past the locally known one with the node still a member — which
// can only happen once the peers ordered the add and started including the
// node in the decision stream (directly or via state transfer). Each
// announcement is a fresh ordered request; re-announcing after the add
// took is a no-op membership-wise (the epoch still advances everywhere, by
// design, so joiner and group stay in step). Call after Start. On failure
// the returned error is a *JoinError.
func (n *OrderingNode) Join(opts JoinOptions) error {
	if opts.Deadline <= 0 {
		opts.Deadline = 60 * time.Second
	}
	if opts.Announce.Initial <= 0 {
		opts.Announce.Initial = 500 * time.Millisecond
	}
	self := n.cfg.Consensus.SelfID
	start := time.Now()
	base := n.replica.MembershipView().Epoch
	clientID := "join:" + strconv.Itoa(int(self))
	op := consensus.EncodeReconfigOp(consensus.ReconfigOp{
		Kind: consensus.ReconfigAdd, Replica: self, Weight: opts.Weight,
	})
	// Session-based sequence numbers, like the TTC path: a re-join after a
	// failed attempt must not collide with sequences the group already
	// deduplicated.
	seq := uint64(time.Now().UnixNano())
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	deadline := start.Add(opts.Deadline)
	for attempt := 0; ; attempt++ {
		seq++
		rq := consensus.EncodeRequest(clientID, seq, op)
		for _, id := range n.membershipIDs() {
			if id != self {
				n.conn.Send(id.Addr(), consensus.RequestMessageType, rq)
			}
		}
		// Poll for admission until the next announcement is due.
		waitUntil := time.Now().Add(opts.Announce.Delay(attempt, rng))
		for time.Now().Before(waitUntil) {
			v := n.replica.MembershipView()
			if v.Epoch > base && containsReplica(v.Members, self) {
				return nil
			}
			select {
			case <-n.done:
				return &JoinError{Node: self, Elapsed: time.Since(start), Epoch: v.Epoch, Stopped: true}
			case <-time.After(20 * time.Millisecond):
			}
		}
		if opts.Announce.MaxAttempts > 0 && attempt+1 >= opts.Announce.MaxAttempts {
			break
		}
		if time.Now().After(deadline) {
			break
		}
	}
	return &JoinError{Node: self, Elapsed: time.Since(start), Epoch: n.replica.MembershipView().Epoch}
}
