package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/cryptoutil"
	"repro/internal/fabric"
	"repro/internal/transport"
)

// TestJoinAnnounceBootstrapFromEmptyDir drives the -join flow end to end:
// a node boots from an empty data directory with the current group plus
// itself as static membership, announces itself via Join (the ordered
// ReconfigAdd path, not the cluster's admin client), and must reach the
// live watermark through verified state transfer. Backfilled blocks must
// carry the full released signature set — at least f+1 verifying
// signatures — so the joiner can serve verified fetches itself.
func TestJoinAnnounceBootstrapFromEmptyDir(t *testing.T) {
	c := testCluster(t, ClusterConfig{
		Nodes:              4,
		BlockSize:          2,
		DataDir:            t.TempDir(),
		CheckpointInterval: 2, // checkpoint (and prune) aggressively
	})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch1")
	next := 0
	submit := func(count int) {
		t.Helper()
		for i := 0; i < count; i++ {
			if st := fe.Broadcast(mkEnvelope("ch1", next, 32)); st != fabric.StatusSuccess {
				t.Fatalf("broadcast %d: %v", next, st)
			}
			next++
		}
		collectBlocks(t, stream, count, 15*time.Second)
	}

	// Many separate rounds: each is at least one consensus decision, so the
	// group takes several checkpoints and prunes the decision log below
	// them. The joiner then CANNOT rebuild this history by replaying
	// decisions — it must take the checkpoint jump and back-fill the blocks
	// below it over the signature-verified fetch path.
	for round := 0; round < 8; round++ {
		submit(2) // blocks 0..7
	}

	// Boot the newcomer the way cmd/ordernode -join does: fresh identity,
	// static membership = current group + self, empty data directory.
	i := len(c.replicas)
	id := consensus.ReplicaID(c.cfg.ShardID*ShardStride + i)
	key, err := cryptoutil.GenerateKeyPair()
	if err != nil {
		t.Fatalf("keygen: %v", err)
	}
	c.replicas = append(c.replicas, id)
	c.keys = append(c.keys, key)
	c.Registry.Register(string(id.Addr()), key.Public())
	node, err := c.startNode(i, append(c.currentMembers(), id))
	if err != nil {
		t.Fatalf("boot joiner: %v", err)
	}
	c.Nodes = append(c.Nodes, node)
	node.Start()

	if err := node.Join(JoinOptions{Deadline: 30 * time.Second}); err != nil {
		t.Fatalf("join: %v", err)
	}
	v := node.MembershipView()
	if !containsReplica(v.Members, id) || v.Epoch == 0 {
		t.Fatalf("admitted joiner sees members %v at epoch %d", v.Members, v.Epoch)
	}

	// Live traffic pulls the joiner to the watermark; the back-fill behind
	// it runs over the signature-verified fetch path.
	submit(6) // blocks 8..10
	led := waitLedgerHeight(t, node, "ch1", uint64(next/2), 30*time.Second)
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("joiner's chain: %v", err)
	}

	// The early blocks fell below every peer's pruned decision log, so the
	// joiner can only have them through the verified back-fill — and that
	// path must persist the merged released signature set: f=1 here, so at
	// least 2 verifying signatures each.
	for num := uint64(0); num < 4; num++ {
		b, err := led.Block(num)
		if err != nil {
			t.Fatalf("backfilled block %d: %v", num, err)
		}
		if got := b.VerifySignatures(c.Registry); got < 2 {
			t.Errorf("backfilled block %d carries %d verifying signatures, want >= f+1 = 2",
				num, got)
		}
	}
}

// TestJoinDeadlineReturnsTypedError: a joiner whose peers never answer must
// give up at the hard deadline with a *JoinError, not hang or return a
// generic error.
func TestJoinDeadlineReturnsTypedError(t *testing.T) {
	network := transport.NewInProcNetwork(transport.InProcConfig{})
	registry := cryptoutil.NewRegistry()
	key, err := cryptoutil.GenerateKeyPair()
	if err != nil {
		t.Fatalf("keygen: %v", err)
	}
	self := consensus.ReplicaID(3)
	registry.Register(string(self.Addr()), key.Public())
	conn, err := network.Join(self.Addr())
	if err != nil {
		t.Fatalf("network join: %v", err)
	}
	// Peers 0..2 exist only in the static config; nothing answers.
	node, err := NewNode(NodeConfig{
		Consensus: consensus.Config{
			SelfID:   self,
			Replicas: []consensus.ReplicaID{0, 1, 2, self},
			Key:      key,
			Registry: registry,
		},
		BlockSize: 2,
		Key:       key,
	}, conn)
	if err != nil {
		t.Fatalf("new node: %v", err)
	}
	node.Start()
	defer node.Stop()

	start := time.Now()
	err = node.Join(JoinOptions{
		Deadline: 400 * time.Millisecond,
		Announce: transport.RetryPolicy{Initial: 50 * time.Millisecond, Jitter: -1},
	})
	var je *JoinError
	if !errors.As(err, &je) {
		t.Fatalf("Join = %v, want a *JoinError", err)
	}
	if je.Node != self || je.Stopped {
		t.Fatalf("JoinError = %+v, want node %d with Stopped=false", je, int(self))
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("join took %v to give up on a 400ms deadline", elapsed)
	}
}
