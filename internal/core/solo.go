package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/fabric"
)

// SoloConfig parameterizes the solo orderer.
type SoloConfig struct {
	// BlockSize bounds envelopes per block.
	BlockSize int
	// MaxBlockBytes optionally bounds block bytes.
	MaxBlockBytes int
	// BlockTimeout cuts partial blocks.
	BlockTimeout time.Duration
	// SigningWorkers sizes the signing pool.
	SigningWorkers int
	// Key signs block headers. Required.
	Key *cryptoutil.KeyPair
}

// SoloOrderer is HLF's centralized, non-replicated ordering service
// (Section 3: "used mostly for testing the platform... a single point of
// failure"). It implements the same Broadcast/Deliver surface as the
// frontend so applications can swap orderers, and serves as the
// no-replication baseline in the ablation benchmarks.
type SoloOrderer struct {
	cfg SoloConfig

	signer *cryptoutil.SigningPool

	mu      sync.Mutex
	chains  map[string]*chainState
	subs    map[string][]*blockQueue
	pending map[string]*fabric.Block // blocks awaiting signature, by channel+number
	closed  bool

	statEnvelopes atomic.Uint64
	statBlocks    atomic.Uint64

	done chan struct{}
	wg   sync.WaitGroup
}

// NewSoloOrderer starts a solo orderer.
func NewSoloOrderer(cfg SoloConfig) (*SoloOrderer, error) {
	if cfg.Key == nil {
		return nil, errors.New("solo orderer: nil signing key")
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 10
	}
	if cfg.SigningWorkers <= 0 {
		cfg.SigningWorkers = 16
	}
	signer, err := cryptoutil.NewSigningPool(cfg.Key, cfg.SigningWorkers)
	if err != nil {
		return nil, fmt.Errorf("solo orderer: %w", err)
	}
	s := &SoloOrderer{
		cfg:    cfg,
		signer: signer,
		chains: make(map[string]*chainState),
		subs:   make(map[string][]*blockQueue),
		done:   make(chan struct{}),
	}
	if cfg.BlockTimeout > 0 {
		s.wg.Add(1)
		go s.timeoutLoop()
	}
	return s, nil
}

var _ fabric.Broadcaster = (*SoloOrderer)(nil)

// Broadcast orders one envelope (no replication, no consensus: the solo
// orderer is the trivial total order).
func (s *SoloOrderer) Broadcast(env *fabric.Envelope) error {
	if env == nil {
		return errors.New("solo orderer: nil envelope")
	}
	return s.BroadcastRaw(env.Marshal())
}

// BroadcastRaw orders an already-marshalled envelope.
func (s *SoloOrderer) BroadcastRaw(raw []byte) error {
	channel, err := fabric.ChannelOf(raw)
	if err != nil {
		return fmt.Errorf("solo orderer: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("solo orderer closed")
	}
	chain := s.chainLocked(channel)
	s.statEnvelopes.Add(1)
	batch := chain.cutter.Append(raw)
	if batch == nil {
		s.mu.Unlock()
		return nil
	}
	s.sealLocked(channel, chain, batch)
	s.mu.Unlock()
	return nil
}

func (s *SoloOrderer) chainLocked(channel string) *chainState {
	chain, ok := s.chains[channel]
	if !ok {
		chain = &chainState{
			cutter: fabric.NewBlockCutter(fabric.CutterConfig{
				MaxEnvelopes: s.cfg.BlockSize,
				MaxBytes:     s.cfg.MaxBlockBytes,
				Timeout:      s.cfg.BlockTimeout,
			}),
		}
		s.chains[channel] = chain
	}
	return chain
}

// sealLocked builds, signs, and delivers the next block. Called with the
// mutex held; signing and delivery complete asynchronously.
func (s *SoloOrderer) sealLocked(channel string, chain *chainState, batch [][]byte) {
	block := fabric.NewBlock(chain.nextNumber, chain.prevHash, batch)
	chain.nextNumber++
	chain.prevHash = block.Header.Hash()
	s.statBlocks.Add(1)

	queues := make([]*blockQueue, len(s.subs[channel]))
	copy(queues, s.subs[channel])
	headerHash := block.Header.Hash()
	err := s.signer.Sign(headerHash, func(sig []byte, err error) {
		if err != nil {
			return
		}
		block.Signatures = []fabric.BlockSignature{{SignerID: "solo", Signature: sig}}
		for _, q := range queues {
			q.put(block)
		}
	})
	if err != nil {
		return // shutting down
	}
}

// Deliver returns the ordered block stream of a channel.
func (s *SoloOrderer) Deliver(channel string) <-chan *fabric.Block {
	q := newBlockQueue()
	s.mu.Lock()
	s.subs[channel] = append(s.subs[channel], q)
	s.mu.Unlock()
	return q.out
}

// Stats returns (envelopes ordered, blocks cut).
func (s *SoloOrderer) Stats() (envelopes, blocks uint64) {
	return s.statEnvelopes.Load(), s.statBlocks.Load()
}

func (s *SoloOrderer) timeoutLoop() {
	defer s.wg.Done()
	interval := s.cfg.BlockTimeout / 2
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case now := <-ticker.C:
			s.mu.Lock()
			for channel, chain := range s.chains {
				if batch := chain.cutter.CutIfExpired(now); batch != nil {
					s.sealLocked(channel, chain, batch)
				}
			}
			s.mu.Unlock()
		}
	}
}

// Close stops the orderer and its subscribers' streams.
func (s *SoloOrderer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var queues []*blockQueue
	for _, qs := range s.subs {
		queues = append(queues, qs...)
	}
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()
	s.signer.Close()
	for _, q := range queues {
		q.close()
	}
}
