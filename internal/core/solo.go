package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/fabric"
)

// SoloConfig parameterizes the solo orderer.
type SoloConfig struct {
	// BlockSize bounds envelopes per block.
	BlockSize int
	// MaxBlockBytes optionally bounds block bytes.
	MaxBlockBytes int
	// BlockTimeout cuts partial blocks.
	BlockTimeout time.Duration
	// SigningWorkers sizes the signing pool.
	SigningWorkers int
	// Key signs block headers. Required.
	Key *cryptoutil.KeyPair
	// HistoryLimit bounds the delivered blocks retained per channel for
	// Deliver seeks (default DefaultHistoryLimit). The solo orderer has no
	// durable ledger; seeks below the retained window fail.
	HistoryLimit int
}

// SoloOrderer is HLF's centralized, non-replicated ordering service
// (Section 3: "used mostly for testing the platform... a single point of
// failure"). It implements the same AtomicBroadcast surface as the
// frontend (typed Broadcast acks, seekable Deliver) so applications can
// swap orderers, and serves as the no-replication baseline in the ablation
// benchmarks.
type SoloOrderer struct {
	cfg SoloConfig

	signer *cryptoutil.SigningPool

	mu      sync.Mutex
	chains  map[string]*chainState
	subs    map[string][]*feSub
	seq     map[string]*soloSequencer
	history map[string][]*fabric.Block // retained delivered tail, contiguous
	closed  bool

	statEnvelopes atomic.Uint64
	statBlocks    atomic.Uint64

	done chan struct{}
	wg   sync.WaitGroup
}

// soloSequencer re-orders asynchronously signed blocks back into
// block-number order before delivery (the signing pool may complete out of
// order).
type soloSequencer struct {
	next    uint64
	pending map[uint64]*fabric.Block
}

// NewSoloOrderer starts a solo orderer.
func NewSoloOrderer(cfg SoloConfig) (*SoloOrderer, error) {
	if cfg.Key == nil {
		return nil, errors.New("solo orderer: nil signing key")
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 10
	}
	if cfg.SigningWorkers <= 0 {
		cfg.SigningWorkers = 16
	}
	if cfg.HistoryLimit <= 0 {
		cfg.HistoryLimit = DefaultHistoryLimit
	}
	signer, err := cryptoutil.NewSigningPool(cfg.Key, cfg.SigningWorkers)
	if err != nil {
		return nil, fmt.Errorf("solo orderer: %w", err)
	}
	s := &SoloOrderer{
		cfg:     cfg,
		signer:  signer,
		chains:  make(map[string]*chainState),
		subs:    make(map[string][]*feSub),
		seq:     make(map[string]*soloSequencer),
		history: make(map[string][]*fabric.Block),
		done:    make(chan struct{}),
	}
	if cfg.BlockTimeout > 0 {
		s.wg.Add(1)
		go s.timeoutLoop()
	}
	return s, nil
}

var _ fabric.Orderer = (*SoloOrderer)(nil)

// Broadcast orders one envelope (no replication, no consensus: the solo
// orderer is the trivial total order).
func (s *SoloOrderer) Broadcast(env *fabric.Envelope) fabric.BroadcastStatus {
	if env == nil || env.ChannelID == "" {
		return fabric.StatusBadRequest
	}
	return s.BroadcastRaw(env.Marshal())
}

// BroadcastRaw orders an already-marshalled envelope.
func (s *SoloOrderer) BroadcastRaw(raw []byte) fabric.BroadcastStatus {
	channel, err := fabric.ChannelOf(raw)
	if err != nil {
		return fabric.StatusBadRequest
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fabric.StatusServiceUnavailable
	}
	chain := s.chainLocked(channel)
	s.statEnvelopes.Add(1)
	batch := chain.cutter.Append(raw)
	if batch == nil {
		s.mu.Unlock()
		return fabric.StatusSuccess
	}
	s.sealLocked(channel, chain, batch)
	s.mu.Unlock()
	return fabric.StatusSuccess
}

func (s *SoloOrderer) chainLocked(channel string) *chainState {
	chain, ok := s.chains[channel]
	if !ok {
		chain = &chainState{
			cutter: fabric.NewBlockCutter(fabric.CutterConfig{
				MaxEnvelopes: s.cfg.BlockSize,
				MaxBytes:     s.cfg.MaxBlockBytes,
				Timeout:      s.cfg.BlockTimeout,
			}),
		}
		s.chains[channel] = chain
	}
	return chain
}

// sealLocked builds and signs the next block. Called with the mutex held;
// signing completes asynchronously, and completed blocks are re-sequenced
// into block-number order before delivery. The sequencer is created here,
// in seal order, so its cursor starts at the channel's first sealed
// number regardless of which signature completes first.
func (s *SoloOrderer) sealLocked(channel string, chain *chainState, batch [][]byte) {
	block := fabric.NewBlock(chain.nextNumber, chain.prevHash, batch)
	chain.nextNumber++
	chain.prevHash = block.Header.Hash()
	s.statBlocks.Add(1)
	if _, ok := s.seq[channel]; !ok {
		s.seq[channel] = &soloSequencer{
			next:    block.Header.Number,
			pending: make(map[uint64]*fabric.Block),
		}
	}

	err := s.signer.Sign(block.Header.Hash(), func(sig []byte, err error) {
		if err != nil {
			return
		}
		block.Signatures = []fabric.BlockSignature{{SignerID: "solo", Signature: sig}}
		s.deliverSigned(channel, block)
	})
	if err != nil {
		return // shutting down
	}
}

// deliverSigned hands one signed block to the channel's sequencer and
// delivers everything that became contiguous: append to the retained
// history and fan out to the live subscriptions. The queue puts happen
// under the mutex — puts never block (unbounded queues) and two signing
// workers completing back-to-back would otherwise race their put loops
// and enqueue out of order.
func (s *SoloOrderer) deliverSigned(channel string, block *fabric.Block) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sq := s.seq[channel] // created at seal time, in seal order
	sq.pending[block.Header.Number] = block
	hist := s.history[channel]
	for {
		b, ok := sq.pending[sq.next]
		if !ok {
			break
		}
		delete(sq.pending, sq.next)
		sq.next++
		hist = append(hist, b)
		for _, sub := range s.subs[channel] {
			sub.q.put(b)
		}
	}
	// Trim with slack so the copy amortizes across deliveries.
	if over := len(hist) - s.cfg.HistoryLimit; over > s.cfg.HistoryLimit/4 {
		hist = append(hist[:0:0], hist[over:]...)
	}
	s.history[channel] = hist
}

// Deliver opens a block stream for a channel positioned by seek. History
// is served from the retained in-memory window (the solo orderer keeps no
// durable ledger); a seek below the window fails the stream with
// fabric.ErrBlockNotFound.
func (s *SoloOrderer) Deliver(channel string, seek fabric.SeekInfo) (*fabric.BlockStream, error) {
	if err := seek.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fabric.ErrServiceUnavailable
	}
	hist := append([]*fabric.Block(nil), s.history[channel]...)
	q := newBlockQueue()
	stream := fabric.NewBlockStream()
	s.subs[channel] = append(s.subs[channel], &feSub{q: q, stream: stream})
	s.wg.Add(1)
	s.mu.Unlock()

	go s.deliverLoop(channel, seek, hist, q, stream)
	return stream, nil
}

// deliverLoop replays the retained history then tails live blocks through
// the shared streamDeliverer. The solo orderer has no fetch path: history
// below the retained window fails the stream with fabric.ErrBlockNotFound.
func (s *SoloOrderer) deliverLoop(channel string, seek fabric.SeekInfo, hist []*fabric.Block, q *blockQueue, stream *fabric.BlockStream) {
	defer s.wg.Done()
	defer s.dropSub(channel, q, stream)
	d := &streamDeliverer{
		seek:      seek,
		hist:      hist,
		q:         q,
		stream:    stream,
		closedErr: fabric.ErrServiceUnavailable,
	}
	d.run()
}

func (s *SoloOrderer) dropSub(channel string, q *blockQueue, stream *fabric.BlockStream) {
	s.mu.Lock()
	subs := s.subs[channel]
	for i, sub := range subs {
		if sub.q == q {
			s.subs[channel] = append(subs[:i], subs[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	q.close()
	stream.Close(nil)
}

// Stats returns (envelopes ordered, blocks cut).
func (s *SoloOrderer) Stats() (envelopes, blocks uint64) {
	return s.statEnvelopes.Load(), s.statBlocks.Load()
}

func (s *SoloOrderer) timeoutLoop() {
	defer s.wg.Done()
	interval := s.cfg.BlockTimeout / 2
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case now := <-ticker.C:
			s.mu.Lock()
			for channel, chain := range s.chains {
				if batch := chain.cutter.CutIfExpired(now); batch != nil {
					s.sealLocked(channel, chain, batch)
				}
			}
			s.mu.Unlock()
		}
	}
}

// Close stops the orderer and its subscribers' streams.
func (s *SoloOrderer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var subs []*feSub
	for _, ss := range s.subs {
		subs = append(subs, ss...)
	}
	s.mu.Unlock()
	close(s.done)
	s.signer.Close() // waits for in-flight signatures
	for _, sub := range subs {
		sub.stream.Cancel()
		sub.q.close()
	}
	s.wg.Wait()
}
