package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/cryptoutil"
	"repro/internal/fabric"
	"repro/internal/transport"
)

// TestOrderingServiceOverTCP deploys a full 4-node ordering service over
// real TCP sockets on the loopback interface - the cmd/ordernode +
// cmd/frontend deployment path - and orders envelopes end to end.
func TestOrderingServiceOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP integration test")
	}
	const n = 4
	replicas := make([]consensus.ReplicaID, n)
	for i := range replicas {
		replicas[i] = consensus.ReplicaID(i)
	}

	// Start listeners first to learn the ports, then hand every endpoint
	// the full address book.
	nodeTransports := make([]*transport.TCPTransport, n)
	for i := range nodeTransports {
		tt, err := transport.NewTCPTransport(transport.TCPConfig{
			Addr:   replicas[i].Addr(),
			Listen: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatalf("node transport %d: %v", i, err)
		}
		defer tt.Close()
		nodeTransports[i] = tt
	}
	feConn, err := transport.NewTCPTransport(transport.TCPConfig{
		Addr:   "fe0",
		Listen: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("frontend transport: %v", err)
	}
	defer feConn.Close()
	feClientConn, err := transport.NewTCPTransport(transport.TCPConfig{
		Addr:   "fe0-client",
		Listen: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("frontend client transport: %v", err)
	}
	defer feClientConn.Close()

	book := map[transport.Addr]string{
		"fe0":        feConn.ListenAddr(),
		"fe0-client": feClientConn.ListenAddr(),
	}
	for i, tt := range nodeTransports {
		book[replicas[i].Addr()] = tt.ListenAddr()
	}
	for _, tt := range nodeTransports {
		tt.SetPeers(book)
	}
	feConn.SetPeers(book)
	feClientConn.SetPeers(book)

	registry := cryptoutil.NewRegistry()
	nodes := make([]*OrderingNode, n)
	for i := range nodes {
		key, err := cryptoutil.GenerateKeyPair()
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		registry.Register(string(replicas[i].Addr()), key.Public())
		node, err := NewNode(NodeConfig{
			Consensus: consensus.Config{
				SelfID:         replicas[i],
				Replicas:       replicas,
				RequestTimeout: 10 * time.Second,
				Key:            key,
				Registry:       registry,
			},
			BlockSize:      4,
			SigningWorkers: 2,
			Key:            key,
		}, nodeTransports[i])
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		node.Start()
		defer node.Stop()
		nodes[i] = node
	}

	fe, err := NewFrontendWithConns(FrontendConfig{
		ID:       "fe0",
		Replicas: replicas,
	}, feConn, feClientConn)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	defer fe.Close()
	stream := deliverNewest(t, fe, "tcp-channel")

	const envs = 12
	for i := 0; i < envs; i++ {
		env := &fabric.Envelope{
			ChannelID:         "tcp-channel",
			ClientID:          "tcp-test",
			TimestampUnixNano: int64(i),
			Payload:           []byte(fmt.Sprintf("payload-%d", i)),
		}
		if st := fe.Broadcast(env); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %v", st)
		}
	}
	deadline := time.After(30 * time.Second)
	var blocks []*fabric.Block
	total := 0
	probe := time.NewTicker(2 * time.Second)
	defer probe.Stop()
	for total < envs {
		select {
		case b := <-stream:
			blocks = append(blocks, b)
			total += len(b.Envelopes)
		case <-probe.C:
			for i, node := range nodes {
				s := node.Stats()
				r := node.Replica().Stats()
				t.Logf("probe node%d: ordered=%d cut=%d signed=%d decided=%d delivered=%d regency=%d",
					i, s.EnvelopesOrdered, s.BlocksCut, s.BlocksSigned, r.Decided, r.LastDelivered, r.Regency)
			}
			fs := fe.Stats()
			t.Logf("probe fe: sent=%d released=%d delivered=%d", fs.EnvelopesSent, fs.BlocksReleased, fs.EnvelopesDelivered)
		case <-deadline:
			t.Fatalf("timed out with %d/%d envelopes over TCP", total, envs)
		}
	}
	if err := fabric.VerifyChain(blocks); err != nil {
		t.Fatalf("chain: %v", err)
	}
	for _, b := range blocks {
		if got := b.VerifySignatures(registry); got < 3 {
			t.Fatalf("block %d: %d valid signatures", b.Header.Number, got)
		}
	}
}
