package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/consensus"
	"repro/internal/cryptoutil"
	"repro/internal/fabric"
	"repro/internal/transport"
)

// ErrFrontendClosed is returned by Broadcast after Close.
var ErrFrontendClosed = errors.New("frontend closed")

// FrontendConfig parameterizes a frontend (the HLF consenter + BFT shim of
// Figure 5).
type FrontendConfig struct {
	// ID names the frontend; its block-reception endpoint uses this as the
	// transport address and its consensus client uses ID+"-client".
	ID string
	// Replicas is the ordering cluster membership.
	Replicas []consensus.ReplicaID
	// F is the fault threshold (zero derives the maximum).
	F int
	// VerifySignatures switches the release rule from 2f+1 matching copies
	// to f+1 copies with verified signatures (footnote 8 of the paper).
	VerifySignatures bool
	// Registry resolves ordering-node keys; required when verifying.
	Registry *cryptoutil.Registry
}

// FrontendStats exposes frontend progress counters.
type FrontendStats struct {
	EnvelopesSent      uint64
	BlocksReleased     uint64
	EnvelopesDelivered uint64
}

// Frontend relays envelopes from clients into the ordering cluster and
// collects the resulting blocks. It implements fabric.Broadcaster.
type Frontend struct {
	cfg      FrontendConfig
	conn     transport.Conn // receives MsgBlock from ordering nodes
	client   *consensus.Client
	released int // release threshold: 2f+1 matching or f+1 verified

	mu       sync.Mutex
	channels map[string]*feChannel
	subs     map[string][]*blockQueue
	closed   bool

	statSent      atomic.Uint64
	statBlocks    atomic.Uint64
	statEnvs      atomic.Uint64
	statLatencyCb atomic.Pointer[func(*fabric.Block)]

	done chan struct{}
	wg   sync.WaitGroup
}

// feChannel tracks block collection for one channel.
type feChannel struct {
	nextDeliver uint64
	collecting  map[uint64]map[cryptoutil.Digest]*blockAccum
	ready       map[uint64]*fabric.Block
}

// blockAccum accumulates matching copies of one block.
type blockAccum struct {
	block    *fabric.Block
	sigs     map[string][]byte
	verified int
	released bool
}

// NewFrontend joins the network with two endpoints (block reception and
// consensus client), registers with every ordering node, and starts the
// receive loop.
func NewFrontend(cfg FrontendConfig, network *transport.InProcNetwork) (*Frontend, error) {
	if cfg.ID == "" {
		return nil, errors.New("frontend: empty id")
	}
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("frontend: empty replica set")
	}
	if cfg.F <= 0 {
		cfg.F = consensus.MaxFaults(len(cfg.Replicas))
	}
	if cfg.VerifySignatures && cfg.Registry == nil {
		return nil, errors.New("frontend: signature verification requires a registry")
	}
	conn, err := network.Join(transport.Addr(cfg.ID))
	if err != nil {
		return nil, fmt.Errorf("frontend: %w", err)
	}
	clientConn, err := network.Join(transport.Addr(cfg.ID + "-client"))
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("frontend: %w", err)
	}
	return newFrontendWithConns(cfg, conn, clientConn)
}

// NewFrontendWithConns builds a frontend over explicit transport
// connections: conn receives blocks (its address must be what ordering
// nodes see as the frontend), clientConn carries consensus-client traffic.
// Used by the TCP multi-process deployment (cmd/frontend).
func NewFrontendWithConns(cfg FrontendConfig, conn, clientConn transport.Conn) (*Frontend, error) {
	if cfg.ID == "" {
		return nil, errors.New("frontend: empty id")
	}
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("frontend: empty replica set")
	}
	if cfg.F <= 0 {
		cfg.F = consensus.MaxFaults(len(cfg.Replicas))
	}
	if cfg.VerifySignatures && cfg.Registry == nil {
		return nil, errors.New("frontend: signature verification requires a registry")
	}
	return newFrontendWithConns(cfg, conn, clientConn)
}

// newFrontendWithConns finishes construction over explicit connections
// (shared with the TCP deployment path).
func newFrontendWithConns(cfg FrontendConfig, conn, clientConn transport.Conn) (*Frontend, error) {
	client, err := consensus.NewClient(clientConn, consensus.ClientConfig{
		Replicas: cfg.Replicas,
		F:        cfg.F,
	})
	if err != nil {
		conn.Close()
		clientConn.Close()
		return nil, fmt.Errorf("frontend: %w", err)
	}
	threshold := 2*cfg.F + 1
	if cfg.VerifySignatures {
		threshold = cfg.F + 1
	}
	f := &Frontend{
		cfg:      cfg,
		conn:     conn,
		client:   client,
		released: threshold,
		channels: make(map[string]*feChannel),
		subs:     make(map[string][]*blockQueue),
		done:     make(chan struct{}),
	}
	// Register with every ordering node so the custom replier includes
	// this frontend in block dissemination.
	for _, id := range cfg.Replicas {
		conn.Send(id.Addr(), MsgRegister, nil)
	}
	f.wg.Add(1)
	go f.receiveLoop()
	return f, nil
}

// ID returns the frontend identity.
func (f *Frontend) ID() string { return f.cfg.ID }

// Stats returns progress counters.
func (f *Frontend) Stats() FrontendStats {
	return FrontendStats{
		EnvelopesSent:      f.statSent.Load(),
		BlocksReleased:     f.statBlocks.Load(),
		EnvelopesDelivered: f.statEnvs.Load(),
	}
}

var _ fabric.Broadcaster = (*Frontend)(nil)

// Broadcast relays one envelope to the ordering cluster (protocol step 4).
// The invocation is asynchronous: the frontend never blocks waiting for
// replies; ordered results come back as blocks (Section 5.1).
func (f *Frontend) Broadcast(env *fabric.Envelope) error {
	if env == nil {
		return errors.New("frontend: nil envelope")
	}
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return ErrFrontendClosed
	}
	if err := f.client.Invoke(env.Marshal()); err != nil {
		return fmt.Errorf("frontend: %w", err)
	}
	f.statSent.Add(1)
	return nil
}

// BroadcastRaw relays an already-marshalled envelope (benchmark hot path).
func (f *Frontend) BroadcastRaw(raw []byte) error {
	if err := f.client.Invoke(raw); err != nil {
		return fmt.Errorf("frontend: %w", err)
	}
	f.statSent.Add(1)
	return nil
}

// Deliver returns an ordered stream of released blocks for a channel. Each
// subscriber receives every block from its subscription point on, in block
// number order, over an unbounded queue (a slow consumer cannot stall the
// frontend).
func (f *Frontend) Deliver(channel string) <-chan *fabric.Block {
	q := newBlockQueue()
	f.mu.Lock()
	f.subs[channel] = append(f.subs[channel], q)
	f.mu.Unlock()
	return q.out
}

// OnBlock installs a callback invoked synchronously on the receive loop for
// every released block (used by the latency harness to timestamp releases
// precisely). Pass nil to remove.
func (f *Frontend) OnBlock(cb func(*fabric.Block)) {
	if cb == nil {
		f.statLatencyCb.Store(nil)
		return
	}
	f.statLatencyCb.Store(&cb)
}

func (f *Frontend) receiveLoop() {
	defer f.wg.Done()
	for {
		select {
		case <-f.done:
			return
		case m, ok := <-f.conn.Inbox():
			if !ok {
				return
			}
			if m.Type != MsgBlock {
				continue
			}
			if !f.fromOrderingNode(m.From) {
				continue
			}
			channel, block, err := unmarshalBlockMsg(m.Payload)
			if err != nil {
				continue
			}
			f.onBlockCopy(string(m.From), channel, block)
		}
	}
}

func (f *Frontend) fromOrderingNode(addr transport.Addr) bool {
	for _, id := range f.cfg.Replicas {
		if id.Addr() == addr {
			return true
		}
	}
	return false
}

// onBlockCopy processes one node's copy of a block: copies vote by header
// hash, signatures accumulate, and the block is released once the
// threshold is met (2f+1 matching, or f+1 verified).
func (f *Frontend) onBlockCopy(sender, channel string, block *fabric.Block) {
	if block.CheckIntegrity() != nil {
		return // data hash does not match content: discard this copy
	}
	digest := block.Header.Hash()

	f.mu.Lock()
	ch := f.feChannel(channel)
	number := block.Header.Number
	if number < ch.nextDeliver {
		f.mu.Unlock()
		return // already delivered
	}
	byDigest, ok := ch.collecting[number]
	if !ok {
		byDigest = make(map[cryptoutil.Digest]*blockAccum)
		ch.collecting[number] = byDigest
	}
	acc, ok := byDigest[digest]
	if !ok {
		acc = &blockAccum{block: block, sigs: make(map[string][]byte)}
		byDigest[digest] = acc
	}
	if _, dup := acc.sigs[sender]; dup {
		f.mu.Unlock()
		return // one vote per node
	}
	var sig []byte
	if len(block.Signatures) > 0 && block.Signatures[0].SignerID == sender {
		sig = block.Signatures[0].Signature
	}
	acc.sigs[sender] = sig
	if f.cfg.VerifySignatures && sig != nil {
		if f.cfg.Registry.Verify(sender, digest.Bytes(), sig) {
			acc.verified++
		}
	}

	votes := len(acc.sigs)
	passed := votes >= f.released
	if f.cfg.VerifySignatures {
		passed = acc.verified >= f.released
	}
	if !passed || acc.released {
		f.mu.Unlock()
		return
	}
	acc.released = true
	// Attach the accumulated signatures (deterministic order not required:
	// peers verify any f+1).
	released := &fabric.Block{
		Header:    acc.block.Header,
		Envelopes: acc.block.Envelopes,
	}
	for signer, s := range acc.sigs {
		if s != nil {
			released.Signatures = append(released.Signatures, fabric.BlockSignature{
				SignerID: signer, Signature: s,
			})
		}
	}
	ch.ready[number] = released
	// A frontend subscribing mid-chain (a restarted durable cluster keeps
	// numbering where it left off) would wait forever for blocks sealed
	// before it registered: fast-forward the cursor past blocks that can
	// no longer release.
	if number > ch.nextDeliver {
		ch.maybeFastForward(number, len(f.cfg.Replicas), f.released)
	}
	// Release the contiguous prefix in block-number order.
	var deliveries []*fabric.Block
	for {
		next, ok := ch.ready[ch.nextDeliver]
		if !ok {
			break
		}
		delete(ch.ready, ch.nextDeliver)
		delete(ch.collecting, ch.nextDeliver)
		ch.nextDeliver++
		deliveries = append(deliveries, next)
	}
	queues := make([]*blockQueue, len(f.subs[channel]))
	copy(queues, f.subs[channel])
	f.mu.Unlock()

	for _, b := range deliveries {
		f.statBlocks.Add(1)
		f.statEnvs.Add(uint64(len(b.Envelopes)))
		if cb := f.statLatencyCb.Load(); cb != nil {
			(*cb)(b)
		}
		for _, q := range queues {
			q.put(b)
		}
	}
}

// maybeFastForward advances the delivery cursor after block `number`
// released. Nodes disseminate per channel in block order over FIFO links,
// so every node that voted on `number` has already sent every lower block
// it will ever send. A lower block still short of the release threshold
// can only gain copies from the remaining nodes; if even all of them
// cannot complete it, the block predates this frontend's subscription and
// is dead — the cursor moves past it. A registration race (one node
// sending a block the release quorum never will) therefore cannot stall
// the channel, while a reordering minority (<= f) can never force a skip:
// a block that f+1 honest nodes sealed before `number` has their copies
// already counted by the time `number` releases.
func (ch *feChannel) maybeFastForward(number uint64, replicas, threshold int) {
	past := make(map[string]bool)
	for _, acc := range ch.collecting[number] {
		for sender := range acc.sigs {
			past[sender] = true
		}
	}
	remaining := replicas - len(past)
	if remaining < 0 {
		remaining = 0
	}
	// Released-but-gapped blocks below deliver first; only the range under
	// the lowest of them must be dead to move the cursor.
	target := number
	for n := range ch.ready {
		if n < target {
			target = n
		}
	}
	if target <= ch.nextDeliver {
		return
	}
	for n, byDigest := range ch.collecting {
		if n >= target || n < ch.nextDeliver {
			continue
		}
		for _, acc := range byDigest {
			if len(acc.sigs)+remaining >= threshold {
				return // still live: hold for it
			}
		}
	}
	for n := range ch.collecting {
		if n < target {
			delete(ch.collecting, n)
		}
	}
	ch.nextDeliver = target
}

func (f *Frontend) feChannel(channel string) *feChannel {
	ch, ok := f.channels[channel]
	if !ok {
		ch = &feChannel{
			collecting: make(map[uint64]map[cryptoutil.Digest]*blockAccum),
			ready:      make(map[uint64]*fabric.Block),
		}
		f.channels[channel] = ch
	}
	return ch
}

// Close unregisters from the ordering nodes and stops the receive loop.
func (f *Frontend) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	var queues []*blockQueue
	for _, qs := range f.subs {
		queues = append(queues, qs...)
	}
	f.mu.Unlock()

	for _, id := range f.cfg.Replicas {
		f.conn.Send(id.Addr(), MsgUnregister, nil)
	}
	close(f.done)
	f.client.Close()
	f.conn.Close()
	f.wg.Wait()
	for _, q := range queues {
		q.close()
	}
}

// blockQueue is an unbounded FIFO of blocks with a channel reader side
// (same shape as the transport mailbox: producers never block).
type blockQueue struct {
	mu     sync.Mutex
	queue  []*fabric.Block
	notify chan struct{}
	done   chan struct{}
	out    chan *fabric.Block
	closed bool
	wg     sync.WaitGroup
}

func newBlockQueue() *blockQueue {
	q := &blockQueue{
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
		out:    make(chan *fabric.Block),
	}
	q.wg.Add(1)
	go q.pump()
	return q
}

func (q *blockQueue) put(b *fabric.Block) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.queue = append(q.queue, b)
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

func (q *blockQueue) pump() {
	defer q.wg.Done()
	defer close(q.out)
	for {
		q.mu.Lock()
		if len(q.queue) == 0 {
			q.mu.Unlock()
			select {
			case <-q.notify:
				continue
			case <-q.done:
				return
			}
		}
		b := q.queue[0]
		q.queue = q.queue[1:]
		q.mu.Unlock()
		select {
		case q.out <- b:
		case <-q.done:
			return
		}
	}
}

func (q *blockQueue) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	q.mu.Unlock()
	close(q.done)
	q.wg.Wait()
}
