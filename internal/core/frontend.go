package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/consensus"
	"repro/internal/cryptoutil"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/transport"
)

// ErrFrontendClosed terminates calls and streams after Close.
var ErrFrontendClosed = errors.New("frontend closed")

// Frontend defaults.
const (
	// DefaultMaxInflight is the per-client backpressure window: envelopes
	// broadcast but not yet observed in a released block.
	DefaultMaxInflight = 32768
	// DefaultHistoryLimit is how many released blocks per channel the
	// frontend retains in memory to serve Deliver seeks without refetching
	// from the ordering nodes.
	DefaultHistoryLimit = 1024
)

// FrontendConfig parameterizes a frontend (the HLF consenter + BFT shim of
// Figure 5).
type FrontendConfig struct {
	// ID names the frontend; its block-reception endpoint uses this as the
	// transport address and its consensus client uses ID+"-client".
	ID string
	// Replicas is the ordering cluster membership.
	Replicas []consensus.ReplicaID
	// F is the fault threshold (zero derives the maximum).
	F int
	// VerifySignatures switches the release rule from 2f+1 matching copies
	// to f+1 copies with verified signatures (footnote 8 of the paper).
	VerifySignatures bool
	// Registry resolves ordering-node keys; required when verifying.
	Registry *cryptoutil.Registry
	// Channels optionally restricts the channels this frontend serves.
	// Empty serves every channel; otherwise Broadcast and Deliver answer
	// StatusNotFound / ErrChannelNotFound for unlisted channels.
	Channels []string
	// MaxInflight bounds the envelopes this frontend has broadcast but not
	// yet seen come back in a released block. A full window makes
	// Broadcast block (backpressure) rather than buffer without bound.
	// Zero selects DefaultMaxInflight; negative disables the window.
	MaxInflight int
	// BroadcastTimeout bounds how long Broadcast blocks waiting for window
	// space before answering StatusServiceUnavailable. Zero waits until
	// space frees or the frontend closes.
	BroadcastTimeout time.Duration
	// HistoryLimit bounds the released blocks retained per channel for
	// Deliver seeks; older blocks are refetched from the ordering nodes'
	// durable ledgers on demand. Zero selects DefaultHistoryLimit.
	HistoryLimit int
	// Metrics, when set, receives frontend instrumentation: released
	// blocks/envelopes, the disseminate→deliver and end-to-end stage
	// latencies, and backpressure-window occupancy. Nil disables.
	Metrics *obs.FrontendMetrics
}

// FrontendStats exposes frontend progress counters.
type FrontendStats struct {
	EnvelopesSent      uint64
	BlocksReleased     uint64
	EnvelopesDelivered uint64
}

// Frontend relays envelopes from clients into the ordering cluster and
// collects the resulting blocks. It implements the fabric.Orderer surface:
// Broadcast with typed status acknowledgements and a seekable Deliver that
// replays history (from its retained window, or fetched and
// hash-chain-verified from the nodes' durable ledgers) before switching to
// the live stream with no gaps or duplicates.
type Frontend struct {
	cfg      FrontendConfig
	conn     transport.Conn // receives MsgBlock / MsgFetchResponse from ordering nodes
	client   *consensus.Client
	released int // release threshold: 2f+1 matching or f+1 verified
	fetcher  *blockFetcher
	peers    []transport.Addr
	channels map[string]struct{} // non-nil when cfg.Channels restricts
	metrics  *obs.FrontendMetrics // never nil: normalized at construction

	mu     sync.Mutex
	chans  map[string]*feChannel
	subs   map[string][]*feSub
	closed bool

	// inflight is the per-client backpressure window (nil when disabled):
	// a slot is held from Broadcast until the envelope surfaces in a
	// released block.
	inflight *inflightWindow

	statSent      atomic.Uint64
	statBlocks    atomic.Uint64
	statEnvs      atomic.Uint64
	statLatencyCb atomic.Pointer[func(*fabric.Block)]

	done chan struct{}
	wg   sync.WaitGroup
}

// feSub is one Deliver subscription: the live queue the release path feeds
// and the stream handed to the consumer.
type feSub struct {
	q      *blockQueue
	stream *fabric.BlockStream
}

// feChannel tracks block collection and retained history for one channel.
type feChannel struct {
	nextDeliver uint64
	collecting  map[uint64]map[cryptoutil.Digest]*blockAccum
	ready       map[uint64]*fabric.Block

	// hist retains the newest released blocks (bounded by HistoryLimit):
	// hist[i].Number == histStart+i.
	hist      []*fabric.Block
	histStart uint64
}

// blockAccum accumulates matching copies of one block.
type blockAccum struct {
	block    *fabric.Block
	sigs     map[string][]byte
	verified int
	released bool
}

// NewFrontend joins the network with two endpoints (block reception and
// consensus client), registers with every ordering node, and starts the
// receive loop.
func NewFrontend(cfg FrontendConfig, network *transport.InProcNetwork) (*Frontend, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	conn, err := network.Join(transport.Addr(cfg.ID))
	if err != nil {
		return nil, fmt.Errorf("frontend: %w", err)
	}
	clientConn, err := network.Join(transport.Addr(cfg.ID + "-client"))
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("frontend: %w", err)
	}
	return newFrontendWithConns(cfg, conn, clientConn)
}

// NewFrontendWithConns builds a frontend over explicit transport
// connections: conn receives blocks (its address must be what ordering
// nodes see as the frontend), clientConn carries consensus-client traffic.
// Used by the TCP multi-process deployment (cmd/frontend).
func NewFrontendWithConns(cfg FrontendConfig, conn, clientConn transport.Conn) (*Frontend, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return newFrontendWithConns(cfg, conn, clientConn)
}

func (cfg *FrontendConfig) validate() error {
	if cfg.ID == "" {
		return errors.New("frontend: empty id")
	}
	if len(cfg.Replicas) == 0 {
		return errors.New("frontend: empty replica set")
	}
	if cfg.F <= 0 {
		cfg.F = consensus.MaxFaults(len(cfg.Replicas))
	}
	if cfg.VerifySignatures && cfg.Registry == nil {
		return errors.New("frontend: signature verification requires a registry")
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.HistoryLimit <= 0 {
		cfg.HistoryLimit = DefaultHistoryLimit
	}
	return nil
}

// newFrontendWithConns finishes construction over explicit connections
// (shared with the TCP deployment path).
func newFrontendWithConns(cfg FrontendConfig, conn, clientConn transport.Conn) (*Frontend, error) {
	client, err := consensus.NewClient(clientConn, consensus.ClientConfig{
		Replicas: cfg.Replicas,
		F:        cfg.F,
	})
	if err != nil {
		conn.Close()
		clientConn.Close()
		return nil, fmt.Errorf("frontend: %w", err)
	}
	threshold := 2*cfg.F + 1
	if cfg.VerifySignatures {
		threshold = cfg.F + 1
	}
	f := &Frontend{
		cfg:      cfg,
		conn:     conn,
		client:   client,
		released: threshold,
		fetcher:  newBlockFetcher(conn),
		metrics:  cfg.Metrics.OrNop(),
		chans:    make(map[string]*feChannel),
		subs:     make(map[string][]*feSub),
		done:     make(chan struct{}),
	}
	if cfg.MaxInflight > 0 {
		f.inflight = newInflightWindow(cfg.MaxInflight)
		if cfg.Metrics != nil {
			w := f.inflight
			cfg.Metrics.GaugeFunc("repro_frontend_inflight_window",
				"Occupied slots of the per-client backpressure window.",
				func() float64 { return float64(len(w.sem)) })
		}
	}
	if len(cfg.Channels) > 0 {
		f.channels = make(map[string]struct{}, len(cfg.Channels))
		for _, ch := range cfg.Channels {
			f.channels[ch] = struct{}{}
		}
	}
	f.peers = make([]transport.Addr, len(cfg.Replicas))
	for i, id := range cfg.Replicas {
		f.peers[i] = id.Addr()
	}
	// Register with every ordering node so the custom replier includes
	// this frontend in block dissemination.
	for _, addr := range f.peers {
		conn.Send(addr, MsgRegister, nil)
	}
	f.wg.Add(1)
	go f.receiveLoop()
	return f, nil
}

// ID returns the frontend identity.
func (f *Frontend) ID() string { return f.cfg.ID }

// Stats returns progress counters.
func (f *Frontend) Stats() FrontendStats {
	return FrontendStats{
		EnvelopesSent:      f.statSent.Load(),
		BlocksReleased:     f.statBlocks.Load(),
		EnvelopesDelivered: f.statEnvs.Load(),
	}
}

var _ fabric.Orderer = (*Frontend)(nil)

// serves reports whether the frontend accepts traffic for a channel.
func (f *Frontend) serves(channel string) bool {
	if f.channels == nil {
		return true
	}
	_, ok := f.channels[channel]
	return ok
}

// Broadcast relays one envelope to the ordering cluster (protocol step 4)
// and acknowledges with a typed status. The invocation is asynchronous:
// the frontend never blocks waiting for replies; ordered results come back
// as blocks (Section 5.1). The per-client window bounds unacknowledged
// envelopes: a full window blocks the caller (up to BroadcastTimeout)
// instead of buffering without bound.
func (f *Frontend) Broadcast(env *fabric.Envelope) fabric.BroadcastStatus {
	if env == nil || env.ChannelID == "" {
		return fabric.StatusBadRequest
	}
	return f.BroadcastRaw(env.Marshal())
}

// BroadcastRaw relays an already-marshalled envelope (benchmark hot path).
func (f *Frontend) BroadcastRaw(raw []byte) fabric.BroadcastStatus {
	channel, err := fabric.ChannelOf(raw)
	if err != nil {
		return fabric.StatusBadRequest
	}
	if !f.serves(channel) {
		return fabric.StatusNotFound
	}
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return fabric.StatusServiceUnavailable
	}
	if f.inflight != nil {
		if !f.inflight.acquire(cryptoutil.Hash(raw), f.cfg.BroadcastTimeout, f.done) {
			return fabric.StatusServiceUnavailable
		}
	}
	if err := f.client.Invoke(raw); err != nil {
		if f.inflight != nil {
			f.inflight.release(cryptoutil.Hash(raw))
		}
		return fabric.StatusServiceUnavailable
	}
	f.statSent.Add(1)
	return fabric.StatusSuccess
}

// Deliver opens a block stream for a channel, positioned by seek: history
// below the live stream is replayed first — from the frontend's retained
// window when possible, otherwise fetched from the ordering nodes' durable
// ledgers and authenticated by hash-chain linkage into a quorum-released
// anchor block — then the stream switches to live blocks with no gaps or
// duplicates. A seek past the current head emits nothing until that block
// is sealed. With a stop position the stream closes after the stop block;
// otherwise it tails live blocks until canceled.
func (f *Frontend) Deliver(channel string, seek fabric.SeekInfo) (*fabric.BlockStream, error) {
	if err := seek.Validate(); err != nil {
		return nil, err
	}
	if !f.serves(channel) {
		return nil, fabric.ErrChannelNotFound
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrFrontendClosed
	}
	ch := f.feChannel(channel)
	hist := append([]*fabric.Block(nil), ch.hist...)
	q := newBlockQueue()
	stream := fabric.NewBlockStream()
	f.subs[channel] = append(f.subs[channel], &feSub{q: q, stream: stream})
	f.wg.Add(1)
	f.mu.Unlock()

	go f.deliverLoop(channel, seek, hist, q, stream)
	return stream, nil
}

// deliverLoop drives one Deliver subscription through the shared
// streamDeliverer: history below the live stream is fetched from the
// nodes' durable ledgers — chain-verified against a quorum-released
// anchor, or, for anchorless seeks, by f+1 node signatures per block
// (merged across peers; nodes persist their signatures with each block)
// with a fall-back to f+1 matching top-block copies for chains persisted
// before signature retention.
func (f *Frontend) deliverLoop(channel string, seek fabric.SeekInfo, hist []*fabric.Block, q *blockQueue, stream *fabric.BlockStream) {
	defer f.wg.Done()
	defer f.dropSub(channel, q, stream)
	d := &streamDeliverer{
		seek:      seek,
		hist:      hist,
		q:         q,
		stream:    stream,
		closedErr: ErrFrontendClosed,
		fetch: func(from, to uint64, anchorPrev cryptoutil.Digest) ([]*fabric.Block, error) {
			return f.fetcher.FetchRange(stream.Canceled(), f.peers, channel, from, to, anchorPrev, f.cfg.F)
		},
		quorumFetch: func(from, to uint64) ([]*fabric.Block, error) {
			if f.cfg.Registry != nil {
				blocks, err := f.fetcher.FetchRangeVerified(stream.Canceled(), f.peers, channel, from, to, f.cfg.Registry, f.cfg.F)
				if err == nil || errors.Is(err, fabric.ErrPruned) {
					return blocks, err
				}
				// Legacy (unsigned) history: fall back to quorum copies.
			}
			return f.fetcher.FetchRangeQuorum(stream.Canceled(), f.peers, channel, from, to, f.cfg.F)
		},
		quorumHead: func() (*fabric.Block, error) {
			return f.fetcher.QuorumHead(stream.Canceled(), f.peers, channel, f.cfg.F)
		},
	}
	d.run()
}

// dropSub unregisters a finished subscription and releases its queue.
func (f *Frontend) dropSub(channel string, q *blockQueue, stream *fabric.BlockStream) {
	f.mu.Lock()
	subs := f.subs[channel]
	for i, s := range subs {
		if s.q == q {
			f.subs[channel] = append(subs[:i], subs[i+1:]...)
			break
		}
	}
	f.mu.Unlock()
	q.close()
	stream.Close(nil)
}

// FetchVerified retrieves blocks [from, to) of a channel from the ordering
// nodes, authenticated purely by f+1 node signatures (FetchRangeVerified):
// no prior chain state is consulted, so the call probes — from any
// goroutine — whether the cluster can still prove its history against a
// live adversary. The chaos harness's verified-fetch invariant calls it
// continuously and cross-checks the result against the released stream.
func (f *Frontend) FetchVerified(channel string, from, to uint64) ([]*fabric.Block, error) {
	return f.fetcher.FetchRangeVerified(f.done, f.peers, channel, from, to, f.cfg.Registry, f.cfg.F)
}

// OnBlock installs a callback invoked synchronously on the receive loop for
// every released block (used by the latency harness to timestamp releases
// precisely). Pass nil to remove.
func (f *Frontend) OnBlock(cb func(*fabric.Block)) {
	if cb == nil {
		f.statLatencyCb.Store(nil)
		return
	}
	f.statLatencyCb.Store(&cb)
}

func (f *Frontend) receiveLoop() {
	defer f.wg.Done()
	for {
		select {
		case <-f.done:
			return
		case m, ok := <-f.conn.Inbox():
			if !ok {
				return
			}
			if !f.fromOrderingNode(m.From) {
				continue
			}
			switch m.Type {
			case MsgBlock:
				channel, block, sentNano, err := unmarshalBlockMsg(m.Payload)
				if err != nil {
					continue
				}
				f.onBlockCopy(string(m.From), channel, block, sentNano)
			case MsgFetchResponse:
				f.fetcher.HandleResponse(m.From, m.Payload)
			}
		}
	}
}

func (f *Frontend) fromOrderingNode(addr transport.Addr) bool {
	for _, peer := range f.peers {
		if peer == addr {
			return true
		}
	}
	return false
}

// onBlockCopy processes one node's copy of a block: copies vote by header
// hash, signatures accumulate, and the block is released once the
// threshold is met (2f+1 matching, or f+1 verified).
func (f *Frontend) onBlockCopy(sender, channel string, block *fabric.Block, sentNano int64) {
	if block.CheckIntegrity() != nil {
		return // data hash does not match content: discard this copy
	}
	digest := block.Header.Hash()

	f.mu.Lock()
	ch := f.feChannel(channel)
	number := block.Header.Number
	if number < ch.nextDeliver {
		f.mu.Unlock()
		return // already delivered
	}
	byDigest, ok := ch.collecting[number]
	if !ok {
		byDigest = make(map[cryptoutil.Digest]*blockAccum)
		ch.collecting[number] = byDigest
	}
	acc, ok := byDigest[digest]
	if !ok {
		acc = &blockAccum{block: block, sigs: make(map[string][]byte)}
		byDigest[digest] = acc
	}
	if _, dup := acc.sigs[sender]; dup {
		f.mu.Unlock()
		return // one vote per node
	}
	var sig []byte
	if len(block.Signatures) > 0 && block.Signatures[0].SignerID == sender {
		sig = block.Signatures[0].Signature
	}
	acc.sigs[sender] = sig
	if f.cfg.VerifySignatures && sig != nil {
		if f.cfg.Registry.Verify(sender, digest.Bytes(), sig) {
			acc.verified++
		}
	}

	votes := len(acc.sigs)
	passed := votes >= f.released
	if f.cfg.VerifySignatures {
		passed = acc.verified >= f.released
	}
	if !passed || acc.released {
		f.mu.Unlock()
		return
	}
	acc.released = true
	// Attach the accumulated signatures (deterministic order not required:
	// peers verify any f+1).
	released := &fabric.Block{
		Header:    acc.block.Header,
		Envelopes: acc.block.Envelopes,
	}
	for signer, s := range acc.sigs {
		if s != nil {
			released.Signatures = append(released.Signatures, fabric.BlockSignature{
				SignerID: signer, Signature: s,
			})
		}
	}
	ch.ready[number] = released
	// A frontend subscribing mid-chain (a restarted durable cluster keeps
	// numbering where it left off) would wait forever for blocks sealed
	// before it registered: fast-forward the cursor past blocks that can
	// no longer release. Envelope copies collected for the skipped blocks
	// are returned so their inflight-window slots free below.
	var skipped [][]byte
	if number > ch.nextDeliver {
		skipped = ch.maybeFastForward(number, len(f.cfg.Replicas), f.released)
	}
	// Release the contiguous prefix in block-number order.
	var deliveries []*fabric.Block
	for {
		next, ok := ch.ready[ch.nextDeliver]
		if !ok {
			break
		}
		delete(ch.ready, ch.nextDeliver)
		delete(ch.collecting, ch.nextDeliver)
		ch.nextDeliver++
		deliveries = append(deliveries, next)
	}
	// Retain the released blocks for Deliver seeks. The window must stay
	// contiguous (deliverers replay it without per-block checks): if the
	// cursor ever skipped dead blocks mid-stream, restart the window at
	// the first block after the skip.
	for _, b := range deliveries {
		if len(ch.hist) > 0 && b.Header.Number != ch.histStart+uint64(len(ch.hist)) {
			ch.hist = ch.hist[:0]
		}
		if len(ch.hist) == 0 {
			ch.histStart = b.Header.Number
		}
		ch.hist = append(ch.hist, b)
	}
	// Trim with slack: the copy amortizes to O(1) per release instead of
	// recurring on every block once the window is full.
	if over := len(ch.hist) - f.cfg.HistoryLimit; over > f.cfg.HistoryLimit/4 {
		ch.hist = append(ch.hist[:0:0], ch.hist[over:]...)
		ch.histStart += uint64(over)
	}
	queues := make([]*blockQueue, 0, len(f.subs[channel]))
	for _, s := range f.subs[channel] {
		queues = append(queues, s.q)
	}
	f.mu.Unlock()

	// Window accounting hashes every envelope, so skip it entirely on
	// deliver-only frontends (nothing pending): the release path is the
	// throughput-critical side of the benchmark receivers.
	accounting := f.inflight != nil && f.inflight.active()
	if accounting {
		// Free window slots for envelopes the frontend will never deliver:
		// they rode in blocks the cursor skipped as dead. release is a
		// no-op for digests this client never broadcast, so counting every
		// collected copy is safe.
		for _, raw := range skipped {
			f.inflight.release(cryptoutil.Hash(raw))
		}
	}
	// Stage trace: the copy that completed the release quorum carries the
	// sender's dissemination timestamp; the first envelope of each released
	// block carries the client submission timestamp (end-to-end anchor).
	if f.metrics.StageDeliver != nil && len(deliveries) > 0 {
		now := time.Now()
		observeStamp(f.metrics.StageDeliver, sentNano, now)
		for _, b := range deliveries {
			if len(b.Envelopes) == 0 {
				continue
			}
			if ts, err := fabric.PeekTimestamp(b.Envelopes[0]); err == nil {
				observeStamp(f.metrics.StageTotal, ts, now)
			}
		}
	}
	for _, b := range deliveries {
		f.statBlocks.Add(1)
		f.statEnvs.Add(uint64(len(b.Envelopes)))
		f.metrics.Blocks.Inc()
		f.metrics.Envelopes.Add(uint64(len(b.Envelopes)))
		if accounting {
			for _, raw := range b.Envelopes {
				f.inflight.release(cryptoutil.Hash(raw))
			}
		}
		if cb := f.statLatencyCb.Load(); cb != nil {
			(*cb)(b)
		}
		for _, q := range queues {
			q.put(b)
		}
	}
}

// maybeFastForward advances the delivery cursor after block `number`
// released. Nodes disseminate per channel in block order over FIFO links,
// so every node that voted on `number` has already sent every lower block
// it will ever send. A lower block still short of the release threshold
// can only gain copies from the remaining nodes; if even all of them
// cannot complete it, the block predates this frontend's subscription and
// is dead — the cursor moves past it. A registration race (one node
// sending a block the release quorum never will) therefore cannot stall
// the channel, while a reordering minority (<= f) can never force a skip:
// a block that f+1 honest nodes sealed before `number` has their copies
// already counted by the time `number` releases.
//
// The envelopes of every dropped copy are returned so the caller can free
// their backpressure-window slots: those envelopes will never pass
// through the delivery path.
func (ch *feChannel) maybeFastForward(number uint64, replicas, threshold int) (dropped [][]byte) {
	past := make(map[string]bool)
	for _, acc := range ch.collecting[number] {
		for sender := range acc.sigs {
			past[sender] = true
		}
	}
	remaining := replicas - len(past)
	if remaining < 0 {
		remaining = 0
	}
	// Released-but-gapped blocks below deliver first; only the range under
	// the lowest of them must be dead to move the cursor.
	target := number
	for n := range ch.ready {
		if n < target {
			target = n
		}
	}
	if target <= ch.nextDeliver {
		return nil
	}
	for n, byDigest := range ch.collecting {
		if n >= target || n < ch.nextDeliver {
			continue
		}
		for _, acc := range byDigest {
			if len(acc.sigs)+remaining >= threshold {
				return nil // still live: hold for it
			}
		}
	}
	for n, byDigest := range ch.collecting {
		if n < target {
			for _, acc := range byDigest {
				dropped = append(dropped, acc.block.Envelopes...)
			}
			delete(ch.collecting, n)
		}
	}
	ch.nextDeliver = target
	return dropped
}

func (f *Frontend) feChannel(channel string) *feChannel {
	ch, ok := f.chans[channel]
	if !ok {
		ch = &feChannel{
			collecting: make(map[uint64]map[cryptoutil.Digest]*blockAccum),
			ready:      make(map[uint64]*fabric.Block),
		}
		f.chans[channel] = ch
	}
	return ch
}

// Close unregisters from the ordering nodes, cancels every Deliver stream,
// and stops the receive loop.
func (f *Frontend) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	var subs []*feSub
	for _, ss := range f.subs {
		subs = append(subs, ss...)
	}
	f.mu.Unlock()

	for _, addr := range f.peers {
		f.conn.Send(addr, MsgUnregister, nil)
	}
	close(f.done)
	// Cancel first so deliverers blocked in a fetch or a Push return
	// promptly, then close their queues to wake live waits.
	for _, s := range subs {
		s.stream.Cancel()
		s.q.close()
	}
	f.client.Close()
	f.conn.Close()
	f.wg.Wait()
}

// ---- per-client backpressure window ------------------------------------

// inflightWindow is a counting semaphore keyed by envelope digest: a slot
// is held from Broadcast until the envelope surfaces in a released block,
// bounding how much a client can buffer inside the ordering pipeline.
type inflightWindow struct {
	sem chan struct{}

	mu      sync.Mutex
	pending map[cryptoutil.Digest]int
}

func newInflightWindow(size int) *inflightWindow {
	return &inflightWindow{
		sem:     make(chan struct{}, size),
		pending: make(map[cryptoutil.Digest]int),
	}
}

// acquire takes a window slot for the envelope, blocking while the window
// is full (bounded by timeout when > 0, and by closed). It reports whether
// the slot was obtained.
func (w *inflightWindow) acquire(d cryptoutil.Digest, timeout time.Duration, closed <-chan struct{}) bool {
	select {
	case w.sem <- struct{}{}:
	default:
		var expire <-chan time.Time
		if timeout > 0 {
			t := time.NewTimer(timeout)
			defer t.Stop()
			expire = t.C
		}
		select {
		case w.sem <- struct{}{}:
		case <-expire:
			return false
		case <-closed:
			return false
		}
	}
	w.mu.Lock()
	w.pending[d]++
	w.mu.Unlock()
	return true
}

// active reports whether any slot is currently held (false for
// deliver-only clients, letting the release path skip envelope hashing).
func (w *inflightWindow) active() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.pending) > 0
}

// release frees the slot held for an envelope digest; digests the window
// never saw (other clients' envelopes, TTC markers) are ignored.
func (w *inflightWindow) release(d cryptoutil.Digest) {
	w.mu.Lock()
	n, ok := w.pending[d]
	if !ok {
		w.mu.Unlock()
		return
	}
	if n == 1 {
		delete(w.pending, d)
	} else {
		w.pending[d] = n - 1
	}
	w.mu.Unlock()
	<-w.sem
}

// ---- block queue --------------------------------------------------------

// blockQueue is an unbounded FIFO of blocks with a channel reader side
// (same shape as the transport mailbox: producers never block).
type blockQueue struct {
	mu     sync.Mutex
	queue  []*fabric.Block
	notify chan struct{}
	done   chan struct{}
	out    chan *fabric.Block
	closed bool
	wg     sync.WaitGroup
}

func newBlockQueue() *blockQueue {
	q := &blockQueue{
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
		out:    make(chan *fabric.Block),
	}
	q.wg.Add(1)
	go q.pump()
	return q
}

func (q *blockQueue) put(b *fabric.Block) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.queue = append(q.queue, b)
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

func (q *blockQueue) pump() {
	defer q.wg.Done()
	defer close(q.out)
	for {
		q.mu.Lock()
		if len(q.queue) == 0 {
			q.mu.Unlock()
			select {
			case <-q.notify:
				continue
			case <-q.done:
				return
			}
		}
		b := q.queue[0]
		q.queue = q.queue[1:]
		q.mu.Unlock()
		select {
		case q.out <- b:
		case <-q.done:
			return
		}
	}
}

func (q *blockQueue) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	q.mu.Unlock()
	close(q.done)
	q.wg.Wait()
}
