// Package core implements the paper's contribution: the BFT-SMaRt ordering
// service for Hyperledger Fabric (Section 5, Figures 4-5).
//
// An OrderingNode is a BFT-SMaRt service replica that receives the totally
// ordered stream of envelopes, demultiplexes it into per-channel block
// cutters, seals block headers sequentially on the node thread, signs them
// on a parallel signing pool, and pushes the signed blocks to every
// registered frontend through a custom replier (instead of replying to the
// submitting client).
//
// A Frontend is the HLF consenter + BFT shim pair: it relays envelopes into
// the ordering cluster via an asynchronous BFT-SMaRt client invocation and
// collects blocks from the nodes, releasing each block once 2f+1 matching
// copies arrived (or f+1 with signature verification enabled - footnote 8
// of the paper).
package core

import (
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/consensus"
	"repro/internal/cryptoutil"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/storage/retention"
	"repro/internal/storage/vfs"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Transport message types of the ordering-service layer (>= 64 so they
// never collide with the consensus layer on a shared endpoint).
const (
	// MsgBlock carries a signed block from an ordering node to a frontend.
	MsgBlock uint16 = 64 + iota
	// MsgRegister subscribes a frontend to a node's block dissemination.
	MsgRegister
	// MsgUnregister removes the subscription.
	MsgUnregister
	// MsgFetchRequest asks a node for a range of sealed blocks from its
	// durable ledger (historical Deliver seeks, restart back-fill).
	MsgFetchRequest
	// MsgFetchResponse answers a fetch request with a contiguous run of
	// blocks.
	MsgFetchResponse
)

// ttcClientPrefix marks time-to-cut marker envelopes; their ClientID is
// "ttc:<node id>". TTC markers flow through consensus like ordinary
// envelopes, which keeps timeout-based block cutting deterministic across
// nodes.
const ttcClientPrefix = "ttc:"

// NodeConfig parameterizes an ordering node.
type NodeConfig struct {
	// Consensus configures the underlying replica (membership, batch
	// size, weights, tentative mode, ...). SelfID names this node.
	Consensus consensus.Config
	// BlockSize is the number of envelopes per block (10 or 100 in the
	// paper's evaluation).
	BlockSize int
	// MaxBlockBytes optionally bounds a block's envelope bytes.
	MaxBlockBytes int
	// BlockTimeout cuts partial blocks via ordered time-to-cut markers;
	// zero disables timeout cutting (the paper's benchmarks drive full
	// blocks).
	BlockTimeout time.Duration
	// SigningWorkers sizes the signing/sending pool (16 in the paper,
	// matching the testbed's hardware threads).
	SigningWorkers int
	// DisableSigning skips ECDSA block signatures entirely (blocks are
	// disseminated unsigned). Used by the Equation (1) ablation to measure
	// the raw ordering rate TP_bftsmart in isolation.
	DisableSigning bool
	// Key signs block headers. Required unless DisableSigning is set.
	Key *cryptoutil.KeyPair
	// Storage, when set, makes the node durable: decided batches are
	// write-ahead logged before block sealing, sealed blocks and consensus
	// checkpoints are persisted, and construction recovers ledger +
	// consensus state from disk. Nil keeps the node fully in-memory.
	Storage *storage.NodeStorage
	// DataDir, when non-empty and Storage is nil, makes NewNode open (and
	// own: Stop closes it) durable storage rooted at this directory.
	DataDir string
	// WALSegmentBytes overrides the unified commit log's segment size of
	// storage opened via DataDir; zero keeps the 4 MiB default. Decisions
	// and blocks share one physical log, so this is both the
	// checkpoint-pruning and the retention-compaction granularity: a
	// segment is reclaimed only once it is behind the consensus
	// checkpoint AND below every channel's retention floor.
	WALSegmentBytes int64
	// CommitMaxDelay tunes the commit queue of storage opened via
	// DataDir: how long an fsync wave waits after its first pending
	// append before flushing, trading commit latency for larger groups.
	// Zero commits greedily.
	CommitMaxDelay time.Duration
	// CommitMaxBatch caps the records one log contributes to a single
	// fsync wave (zero keeps the default, 1024).
	CommitMaxBatch int
	// CommitSyncHook, when set, runs at the start of every commit wave
	// of storage opened via DataDir. Test instrumentation: stalling it
	// keeps every enqueued record non-durable, which is how the
	// write-ahead gating tests hold blocks at the dissemination gate.
	CommitSyncHook func()
	// RetainBlocks bounds the durable blocks retained per channel: once a
	// channel's ledger grows past it, the node snapshots a retention
	// manifest and drops whole block-WAL segments below the floor. Seeks
	// below the floor answer the pruned status. Zero retains everything.
	RetainBlocks uint64
	// RetainBytes bounds the block store's total on-disk size: when
	// exceeded, each channel is trimmed back to its weighted share of
	// the budget (see RetainWeights). Zero disables the bytes trigger.
	RetainBytes int64
	// RetainWeights biases the RetainBytes budget across channels:
	// channel c keeps RetainBytes * w(c)/Σw bytes of history, unlisted
	// channels weigh 1. Nil splits the budget evenly.
	RetainWeights map[string]float64
	// ShardID names the consensus group this node belongs to when the
	// deployment partitions channels across independent groups (0 in a
	// single-group deployment). It is carried for observability and
	// per-shard storage layout decisions made by the owner; the node
	// itself orders whatever envelopes its group's consensus decides.
	ShardID int
	// Metrics, when set, instruments the node's hot path: the per-stage
	// latency trace (broadcast→decided→fsynced→disseminated), sealed
	// blocks, persist watermarks, and scrape-time consensus stats. Nil
	// disables all of it at the cost of a nil check per site.
	Metrics *obs.NodeMetrics
	// StorageMetrics instruments storage opened via DataDir (ignored when
	// Storage is supplied ready-made).
	StorageMetrics *obs.StorageMetrics
	// FS is the filesystem seam of storage opened via DataDir (nil = the
	// real OS filesystem). Fault-injection tests thread a faultfs through
	// here; ignored when Storage is supplied ready-made.
	FS vfs.FS
	// ScrubInterval is the background scrubber's period over the node's
	// durable storage: every pass re-reads the retained block records
	// through the CRC-checking path and repairs corrupt ones from peers
	// (f+1-verified fetch). Zero disables timed passes — the scrubber
	// still runs and serves on-demand TriggerScrub calls. Storage-less
	// nodes have nothing to scrub.
	ScrubInterval time.Duration
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.BlockSize <= 0 {
		c.BlockSize = 10
	}
	if c.SigningWorkers <= 0 {
		c.SigningWorkers = 16
	}
	return c
}

// chainState is the per-channel application state: exactly the "sequence
// number of the next block and the hash of the previous block" the paper
// calls out as the ordering service's tiny replicated state (Section 5.2),
// plus the channel's block cutter.
type chainState struct {
	nextNumber uint64
	prevHash   cryptoutil.Digest
	cutter     *fabric.BlockCutter
}

// chainSnapshot captures a chain's state for tentative rollback.
type chainSnapshot struct {
	nextNumber uint64
	prevHash   cryptoutil.Digest
	pending    [][]byte
}

// rollbackWindow bounds how many per-sequence snapshots are retained for
// WHEAT's tentative rollback. Tentative overlap never exceeds the pipeline
// depth, so a small window suffices.
const rollbackWindow = 32

// Byzantine configures ordering-layer misbehavior, the adversary of the
// chaos scenarios. It is independent of consensus.Behavior (which corrupts
// the agreement protocol); this struct corrupts the block distribution
// surface an ordering node presents to frontends and fetching peers.
type Byzantine struct {
	// EquivocateDissemination makes disseminate send a tampered, re-signed
	// variant of every block to half of the registered frontends: different
	// receivers observe conflicting blocks for the same number, which the
	// frontends' 2f+1-copy / f+1-signature release rule must absorb.
	EquivocateDissemination bool
	// ForgeHistory makes the node answer FetchBlocks requests (head probes
	// and ranges) from a self-consistent forged chain signed only by this
	// node. The forgery passes per-range hash-chain verification, so only
	// the f+1 cross-peer signature quorum of FetchRangeVerified can reject
	// it — exactly the property the forged-history scenario checks.
	ForgeHistory bool
}

// ckptMark records, for one consensus checkpoint, the per-channel block
// heights the checkpointed prefix of decisions implies. The checkpoint's
// durable save is gated on the persist watermark reaching these heights:
// recovery skips decisions at or below the checkpoint seq, so a checkpoint
// that landed before its blocks were durable would turn a crash into a
// permanent ledger gap when no peer holds a disseminated copy.
type ckptMark struct {
	seq     int64
	heights map[string]uint64
}

// NodeStats exposes ordering-node progress counters.
type NodeStats struct {
	EnvelopesOrdered uint64
	BlocksCut        uint64
	BlocksSigned     uint64
	Rollbacks        uint64
}

// OrderingNode is one member of the ordering cluster. Create with NewNode,
// then Start.
type OrderingNode struct {
	cfg    NodeConfig
	conn   transport.Conn
	signer *cryptoutil.SigningPool

	replica *consensus.Replica

	// chains and history are confined to the replica's event loop (all
	// Application methods run there).
	chains  map[string]*chainState
	history map[int64]map[string]chainSnapshot

	// Durable state (nil without storage). ledgers holds the node's
	// persistent copy of each channel's chain; ledgerMu guards the map and
	// the parked blocks (ledger values are internally synchronized).
	// recovering suppresses signing and dissemination while construction
	// replays the decision log. parked holds blocks sealed above the local
	// ledger height after a state-transfer jump, awaiting the FetchBlocks
	// back-fill that closes the gap beneath them.
	storage     *storage.NodeStorage
	ownsStorage bool
	ledgerMu    sync.Mutex
	ledgers     map[string]*fabric.Ledger
	parked      map[string]map[uint64]*fabric.Block
	recovering  bool

	// retention drives block-store compaction (nil when disabled): the
	// send drain and the back-fill nudge it after appends, it snapshots
	// + prunes off the hot path, and applied floors advance the
	// in-memory ledgers.
	retention *retention.Manager

	// scrubber is the background bit-rot scrub over the node's durable
	// storage (nil on storage-less nodes); its repair path re-fetches
	// corrupt blocks from peers via FetchRangeVerified.
	scrubber *storage.Scrubber

	// fetcher issues FetchBlocks requests during back-fill; backfilling
	// guards one back-fill task per channel.
	fetcher         *blockFetcher
	backfillMu      sync.Mutex
	backfilling     map[string]bool
	backfillStopped bool

	// frontends is written from the event loop (registration messages)
	// and read from signing-pool callbacks.
	mu        sync.Mutex
	frontends map[transport.Addr]struct{}

	// senders sequence block dissemination per channel: signing runs on a
	// parallel pool, but blocks leave the node in block-number order, so a
	// frontend can rely on FIFO links to detect its subscription point.
	// durableHeights is the per-channel persist watermark: the block height
	// proven durable by completed put tokens (async path) or synchronous
	// appends (recovery replay), seeded from the recovered chain frontiers.
	sendMu         sync.Mutex
	senders        map[string]*blockSender
	durableHeights map[string]uint64

	// ckptMarks holds the pending checkpoint gates, oldest first (appended
	// on the event loop, consumed by the storage checkpoint worker).
	ckptMarkMu sync.Mutex
	ckptMarks  []ckptMark

	// byz is the ordering-layer byzantine switch; forged caches the forged
	// chains a ForgeHistory node serves, grown lazily per channel.
	byz      atomic.Pointer[Byzantine]
	forgedMu sync.Mutex
	forged   map[string][]*fabric.Block

	ttcSeq atomic.Uint64

	statEnvelopes atomic.Uint64
	statBlocks    atomic.Uint64
	statSigned    atomic.Uint64
	statRollbacks atomic.Uint64

	// metrics is never nil (normalized to a nop bundle in NewNode); its
	// instruments are nil when metrics are disabled, so every hot-path
	// site costs one nil check.
	metrics *obs.NodeMetrics

	done    chan struct{}
	wg      sync.WaitGroup
	started atomic.Bool
	stopped atomic.Bool
}

// NewNode creates an ordering node attached to the given transport
// endpoint (which must be joined as the node's consensus address).
func NewNode(cfg NodeConfig, conn transport.Conn) (*OrderingNode, error) {
	cfg = cfg.withDefaults()
	var signer *cryptoutil.SigningPool
	if !cfg.DisableSigning {
		if cfg.Key == nil {
			return nil, errors.New("ordering node: nil signing key")
		}
		var err error
		signer, err = cryptoutil.NewSigningPool(cfg.Key, cfg.SigningWorkers)
		if err != nil {
			return nil, fmt.Errorf("ordering node: %w", err)
		}
	}
	store := cfg.Storage
	ownsStorage := false
	if store == nil && cfg.DataDir != "" {
		var err error
		store, err = storage.Open(cfg.DataDir, storage.Options{
			SegmentBytes:   cfg.WALSegmentBytes,
			CommitMaxDelay: cfg.CommitMaxDelay,
			CommitMaxBatch: cfg.CommitMaxBatch,
			SyncHook:       cfg.CommitSyncHook,
			Metrics:        cfg.StorageMetrics,
			FS:             cfg.FS,
		})
		if err != nil {
			if signer != nil {
				signer.Close()
			}
			return nil, fmt.Errorf("ordering node: opening data dir: %w", err)
		}
		ownsStorage = true
	}
	n := &OrderingNode{
		cfg:            cfg,
		conn:           conn,
		signer:         signer,
		storage:        store,
		ownsStorage:    ownsStorage,
		chains:         make(map[string]*chainState),
		history:        make(map[int64]map[string]chainSnapshot),
		frontends:      make(map[transport.Addr]struct{}),
		senders:        make(map[string]*blockSender),
		durableHeights: make(map[string]uint64),
		parked:         make(map[string]map[uint64]*fabric.Block),
		fetcher:        newBlockFetcher(conn),
		backfilling:    make(map[string]bool),
		forged:         make(map[string][]*fabric.Block),
		done:           make(chan struct{}),
		metrics:        cfg.Metrics.OrNop(),
	}
	n.byz.Store(&Byzantine{})
	// TTC markers are consensus requests under this node's "ttc:" client
	// identity; a session base keeps a restarted node's markers from
	// colliding with its pre-crash sequences in the recovered dedup state.
	n.ttcSeq.Store(uint64(time.Now().UnixNano()))
	ccfg := cfg.Consensus
	if ccfg.ValidateRequest == nil {
		ccfg.ValidateRequest = validateEnvelopeOp
	}
	opts := []consensus.Option{
		consensus.WithoutClientReplies(),
		consensus.WithExtraMessageHandler(n.onServiceMessage),
	}
	if n.storage != nil {
		// Restore the persistent ledgers first — from the recovered chain
		// frontiers (the retention manifest plus the replayed log tail),
		// without loading any blocks: replaying the decision log below
		// re-seals the tail blocks, and the ledgers' recovered heights
		// are what makes that replay idempotent.
		rec := n.storage.Recovered()
		// The durable membership record outranks the static configuration:
		// a node that crashed after applying a reconfiguration restarts
		// into the group consensus last agreed on, not the one its config
		// file remembers. (The teeth switch keeps the unsafe pre-record
		// behavior reproducible for the loss test.)
		if m := rec.Membership; m != nil && !consensus.UnsafeMembershipRecoveryEnabled() {
			if err := applyRecoveredMembership(&ccfg, m); err != nil {
				n.closeOwned()
				return nil, fmt.Errorf("ordering node: %w", err)
			}
		}
		n.ledgers = make(map[string]*fabric.Ledger, len(rec.Chains))
		for channel, info := range rec.Chains {
			n.ledgers[channel] = fabric.RestoreLedger(channel, n.storage, fabric.ChainState{
				Floor:    info.Floor,
				Anchor:   info.Anchor,
				Height:   info.Height,
				LastHash: info.LastHash,
			})
			// Everything recovered from disk is durable by definition; the
			// persist watermark starts there.
			n.durableHeights[channel] = info.Height
			n.metrics.Watermark(channel).Set(int64(info.Height))
		}
		opts = append(opts,
			consensus.WithDurability(asyncDurability{n.storage}, &consensus.DurableState{
				CheckpointSeq: rec.CheckpointSeq,
				Checkpoint:    rec.Checkpoint,
				Decisions:     durableEntries(rec.Decisions),
			}),
			consensus.WithCheckpointObserver(n.onCheckpoint),
			consensus.WithMembershipObserver(n.onMembershipChange))
		n.storage.SetCheckpointGate(n.checkpointCovered)
		n.recovering = true
	}
	replica, err := consensus.NewReplica(ccfg, n, conn, opts...)
	n.recovering = false
	if err == nil && n.storage != nil {
		err = n.checkRecoveredFrontier()
	}
	if err != nil {
		n.closeOwned()
		return nil, fmt.Errorf("ordering node: %w", err)
	}
	if n.storage != nil {
		policy := retention.Policy{
			RetainBlocks: cfg.RetainBlocks,
			RetainBytes:  cfg.RetainBytes,
			Weights:      cfg.RetainWeights,
		}
		if policy.Enabled() {
			n.retention = retention.NewManager(n.storage, policy, n.advanceLedgerFloors)
		}
	}
	n.replica = replica
	if n.storage != nil {
		// The scrubber always runs over durable storage (timer-less when
		// ScrubInterval is zero, serving TriggerScrub); repair re-fetches
		// the corrupt block from peers under the f+1 signature rule, so a
		// single rotten replica heals itself without operator action.
		n.scrubber = n.storage.StartScrubber(cfg.ScrubInterval, n.repairBlockFromPeers)
	}
	n.registerGaugeFuncs()
	return n, nil
}

// disableScrubRepair turns the scrubber's repair path off (detect-only).
// It exists solely so the chaos harness can prove its ScrubHeals
// invariant has teeth: with repair disabled a rotten block MUST stay
// rotten and the invariant MUST trip. Never set outside tests.
var disableScrubRepair atomic.Bool

// SetScrubRepairDisabled toggles the teeth-test switch (see
// disableScrubRepair). Test instrumentation only.
func SetScrubRepairDisabled(v bool) { disableScrubRepair.Store(v) }

// repairBlockFromPeers is the scrubber's repair callback: re-fetch one
// corrupt durable block from the other replicas under the f+1-signature
// verification rule (any copy carrying f+1 valid node signatures is
// authentic regardless of which peer served it) and overwrite the rotten
// record in place. Deployments without a verification-key registry fall
// back to hash-chain anchoring. Called off the consensus event loop.
func (n *OrderingNode) repairBlockFromPeers(channel string, num uint64) error {
	if disableScrubRepair.Load() {
		return errors.New("scrub repair disabled (teeth switch)")
	}
	reg := n.cfg.Consensus.Registry
	if reg == nil {
		return n.repairBlockAnchored(channel, num)
	}
	blocks, err := n.fetcher.FetchRangeVerified(n.done, n.peerAddrs(), channel, num, num+1, reg, n.faults())
	if err != nil {
		return fmt.Errorf("scrub repair: fetching %s/%d: %w", channel, num, err)
	}
	if len(blocks) != 1 || blocks[0].Header.Number != num {
		return fmt.Errorf("scrub repair: peers served %d blocks for %s/%d", len(blocks), channel, num)
	}
	return n.storage.RepairBlock(channel, blocks[0])
}

// repairBlockAnchored is the registry-less repair path (multi-process
// deployments distribute no verification keys): the replacement is
// authenticated by hash linkage into the locally trusted chain instead of
// f+1 signatures — the node's own in-memory ledger copy when the block is
// still inside the retained window, else a peer copy fetched under the
// hash-chain anchor taken from the intact successor's PrevHash. Adjacent
// corrupt records heal top-down across scrub passes: each repaired block
// becomes the next-lower one's anchor.
func (n *OrderingNode) repairBlockAnchored(channel string, num uint64) error {
	led := n.Ledger(channel)
	if led == nil {
		return fmt.Errorf("scrub repair: no ledger for channel %q", channel)
	}
	if b, err := led.Block(num); err == nil {
		// The durable record is corrupt, so a read-through to disk would
		// have failed — a successful read means this copy came from the
		// in-memory window, where it was hash-link-checked at append.
		return n.storage.RepairBlock(channel, b)
	}
	next, err := led.Block(num + 1)
	if err != nil {
		return fmt.Errorf("scrub repair: no registry and no trusted anchor above %s/%d: %w", channel, num, err)
	}
	blocks, err := n.fetcher.FetchRange(n.done, n.peerAddrs(), channel, num, num+1, next.Header.PrevHash, n.faults())
	if err != nil {
		return fmt.Errorf("scrub repair: anchored fetch of %s/%d: %w", channel, num, err)
	}
	if len(blocks) != 1 || blocks[0].Header.Number != num {
		return fmt.Errorf("scrub repair: peers served %d blocks for %s/%d", len(blocks), channel, num)
	}
	return n.storage.RepairBlock(channel, blocks[0])
}

// TriggerScrub requests an immediate scrub pass over the node's durable
// storage (no-op on a storage-less node). Non-blocking.
func (n *OrderingNode) TriggerScrub() {
	if n.scrubber != nil {
		n.scrubber.Trigger()
	}
}

// LastScrub returns the most recent completed scrub pass's result (zero
// on a storage-less node).
func (n *OrderingNode) LastScrub() storage.ScrubResult {
	if n.scrubber == nil {
		return storage.ScrubResult{}
	}
	return n.scrubber.Last()
}

// BlockSpan reports where a durable block record lives at rest (file
// path, byte offset, length). Fault-injection harnesses use it to flip
// bytes underneath the storage layer; it has no production callers.
func (n *OrderingNode) BlockSpan(channel string, num uint64) (path string, off, length int64, err error) {
	if n.storage == nil {
		return "", 0, 0, errors.New("node has no durable storage")
	}
	return n.storage.BlockSpan(channel, num)
}

// StoragePoisoned reports the commit log's permanent fsync-failure state
// (nil while healthy, ErrLogPoisoned after a failed wave fsync).
func (n *OrderingNode) StoragePoisoned() error {
	if n.storage == nil {
		return nil
	}
	return n.storage.Poisoned()
}

// DurableBlock reads one block straight from the node's durable store,
// bypassing the in-memory ledger tail — the read a scrub-healing checker
// uses to prove an at-rest repair actually landed on disk.
func (n *OrderingNode) DurableBlock(channel string, num uint64) (*fabric.Block, error) {
	if n.storage == nil {
		return nil, errors.New("node has no durable storage")
	}
	blocks, err := n.storage.ReadBlocks(channel, num, 1)
	if err != nil {
		return nil, err
	}
	if len(blocks) == 0 || blocks[0].Header.Number != num {
		return nil, fmt.Errorf("durable read of %s/%d returned %d blocks", channel, num, len(blocks))
	}
	return blocks[0], nil
}

// registerGaugeFuncs hangs scrape-time gauges off the node's metric
// labels: consensus progress (read from the replica's atomic Stats) and
// the minimum persist watermark across channels. Registered after the
// replica exists; a restarted node's registration replaces the dead
// incarnation's closures. No-op when metrics are disabled.
func (n *OrderingNode) registerGaugeFuncs() {
	m := n.metrics
	m.GaugeFunc("repro_consensus_regency", "Current consensus regency (leader era).",
		func() float64 { return float64(n.replica.Stats().Regency) })
	m.GaugeFunc("repro_consensus_leader_changes", "Leader changes (synchronization phases) observed.",
		func() float64 { return float64(n.replica.Stats().LeaderChanges) })
	m.GaugeFunc("repro_consensus_decided", "Consensus instances decided.",
		func() float64 { return float64(n.replica.Stats().Decided) })
	m.GaugeFunc("repro_consensus_delivered_ops", "Operations delivered by consensus.",
		func() float64 { return float64(n.replica.Stats().DeliveredOps) })
	m.GaugeFunc("repro_consensus_dropped_requests", "Client requests dropped by backpressure.",
		func() float64 { return float64(n.replica.Stats().DroppedReqs) })
	m.GaugeFunc("repro_node_envelopes_ordered", "Envelopes ordered into blocks.",
		func() float64 { return float64(n.statEnvelopes.Load()) })
	m.GaugeFunc("repro_node_persist_watermark_min",
		"Minimum persist watermark across channels (-1 before any channel exists).",
		func() float64 {
			n.sendMu.Lock()
			defer n.sendMu.Unlock()
			min := -1.0
			for _, h := range n.durableHeights {
				if min < 0 || float64(h) < min {
					min = float64(h)
				}
			}
			return min
		})
}

// advanceLedgerFloors raises the in-memory ledgers' retention floors
// after a compaction applied (so reads stop paging into pruned ranges).
func (n *OrderingNode) advanceLedgerFloors(floors map[string]uint64) {
	for channel, floor := range floors {
		led := n.Ledger(channel)
		if led == nil {
			continue
		}
		if err := led.AdvanceFloor(floor); err != nil {
			slog.Warn("advancing retention floor failed",
				"node", int(n.ID()), "shard", n.cfg.ShardID,
				"channel", channel, "floor", floor, "err", err)
		}
	}
}

// Compact forces a policy-driven block-store compaction now (the
// explicit admin trigger; cmd/ordernode wires it to SIGHUP). A no-op
// when retention is disabled or nothing is due.
func (n *OrderingNode) Compact() error {
	if n.retention == nil {
		return nil
	}
	return n.retention.Compact()
}

// closeOwned releases resources the half-constructed node owns.
func (n *OrderingNode) closeOwned() {
	if n.signer != nil {
		n.signer.Close()
	}
	if n.ownsStorage && n.storage != nil {
		n.storage.Close()
	}
}

// checkRecoveredFrontier cross-checks the two durable records after
// recovery. A block is only persisted after its decision was fsynced, so
// the replayed chain state can never trail the block store under the
// crash model; if it does, the decision log lost fsynced records (disk
// corruption) and running on would silently fork the node's history.
// Runs before the replica starts, so the chain state is safe to read.
func (n *OrderingNode) checkRecoveredFrontier() error {
	for channel, led := range n.ledgers {
		height := led.Height()
		chain, ok := n.chains[channel]
		if !ok {
			if height > 0 {
				return fmt.Errorf("recovery: channel %q has %d persisted blocks but no decision history (corrupt data dir?)",
					channel, height)
			}
			continue
		}
		if chain.nextNumber < height {
			return fmt.Errorf("recovery: channel %q block store at height %d but decision replay reached %d (corrupt data dir?)",
				channel, height, chain.nextNumber)
		}
	}
	return nil
}

// applyRecoveredMembership replaces the static consensus membership with
// the durably recorded one. A node the recorded group no longer lists
// must not rejoin as a voter under its stale static config — it fails
// construction with an explicit error instead.
func applyRecoveredMembership(ccfg *consensus.Config, m *storage.MembershipRecord) error {
	replicas := make([]consensus.ReplicaID, 0, len(m.Members))
	weights := make(map[consensus.ReplicaID]int, len(m.Members))
	self := false
	for _, raw := range m.Members {
		id := consensus.ReplicaID(raw)
		replicas = append(replicas, id)
		weights[id] = int(m.Weights[raw])
		if id == ccfg.SelfID {
			self = true
		}
	}
	if !self {
		return fmt.Errorf("recovery: durable membership (epoch %d) no longer includes node %d — it was removed from the group",
			m.Epoch, int(ccfg.SelfID))
	}
	ccfg.Replicas = replicas
	ccfg.Weights = weights
	ccfg.F = 0 // re-derive from the recovered group size
	return nil
}

// onMembershipChange persists every applied reconfiguration as the durable
// membership record (runs on the consensus event loop; reconfigurations
// are rare, so the synchronous fsyncs are acceptable there). Saves are
// epoch-monotonic in storage, so replay-time notifications are no-ops.
func (n *OrderingNode) onMembershipChange(v consensus.MembershipView) {
	if n.storage == nil || v.Epoch == 0 {
		return
	}
	rec := &storage.MembershipRecord{
		Epoch:   v.Epoch,
		Members: make([]int32, 0, len(v.Members)),
		Weights: make(map[int32]uint32, len(v.Weights)),
	}
	for _, id := range v.Members {
		rec.Members = append(rec.Members, int32(id))
		rec.Weights[int32(id)] = uint32(v.Weights[id])
	}
	if err := n.storage.SaveMembership(rec); err != nil {
		slog.Error("persisting membership record failed",
			"node", int(n.ID()), "shard", n.cfg.ShardID,
			"epoch", v.Epoch, "err", err)
	}
}

// asyncDurability adapts NodeStorage's concrete token type to the
// consensus AsyncDurability interface (interface satisfaction is by
// signature, so the method must return consensus.DecisionToken itself).
type asyncDurability struct {
	*storage.NodeStorage
}

func (a asyncDurability) AppendDecisionAsync(seq int64, batch [][]byte) consensus.DecisionToken {
	return a.NodeStorage.AppendDecisionAsync(seq, batch)
}

// durableEntries adapts storage log entries to the consensus type.
func durableEntries(in []storage.DecidedEntry) []consensus.DurableEntry {
	out := make([]consensus.DurableEntry, len(in))
	for i, e := range in {
		out[i] = consensus.DurableEntry{Seq: e.Seq, Batch: e.Batch}
	}
	return out
}

// validateEnvelopeOp is the request-validation hook: every batch entry must
// be a parseable envelope (the consensus layer refuses to WRITE for a
// proposal containing garbage) or a tagged reconfiguration operation
// (Section 5.2: membership changes flow through the same total order).
func validateEnvelopeOp(op []byte) error {
	if consensus.IsReconfigOp(op) {
		return nil
	}
	_, err := fabric.ChannelOf(op)
	return err
}

// ID returns the node's replica identity.
func (n *OrderingNode) ID() consensus.ReplicaID { return n.cfg.Consensus.SelfID }

// ShardID returns the consensus group this node belongs to (0 in a
// single-group deployment).
func (n *OrderingNode) ShardID() int { return n.cfg.ShardID }

// Replica exposes the underlying consensus replica (tests inject faults
// through it).
func (n *OrderingNode) Replica() *consensus.Replica { return n.replica }

// Stats returns progress counters. Safe from any goroutine.
func (n *OrderingNode) Stats() NodeStats {
	return NodeStats{
		EnvelopesOrdered: n.statEnvelopes.Load(),
		BlocksCut:        n.statBlocks.Load(),
		BlocksSigned:     n.statSigned.Load(),
		Rollbacks:        n.statRollbacks.Load(),
	}
}

// SetByzantine installs (or, with the zero value, clears) ordering-layer
// byzantine behavior. Safe to call while the node runs; the consensus-layer
// counterpart is Replica().SetBehavior.
func (n *OrderingNode) SetByzantine(b Byzantine) { n.byz.Store(&b) }

// Start launches the consensus replica, the time-to-cut ticker, and — when
// the recovered decision state is ahead of the recovered block store (the
// previous incarnation was jumped forward by a peer checkpoint and crashed
// before back-filling) — a FetchBlocks back-fill that restores the durable
// chain's contiguity.
func (n *OrderingNode) Start() {
	if n.started.Swap(true) {
		return
	}
	// Safe to read the chains directly: the event loop does not exist yet.
	type gap struct {
		channel  string
		from, to uint64
		anchor   cryptoutil.Digest
	}
	var gaps []gap
	if n.storage != nil {
		for channel, chain := range n.chains {
			if h := n.ledger(channel).Height(); h < chain.nextNumber {
				gaps = append(gaps, gap{channel, h, chain.nextNumber, chain.prevHash})
			}
		}
	}
	n.replica.Start()
	for _, g := range gaps {
		n.maybeBackfill(g.channel, g.from, g.to, g.anchor)
	}
	if n.cfg.BlockTimeout > 0 {
		n.wg.Add(1)
		go n.ttcLoop()
	}
}

// Stop shuts the node down and closes storage the node opened itself.
func (n *OrderingNode) Stop() {
	if n.stopped.Swap(true) {
		return
	}
	if n.started.Load() {
		n.backfillMu.Lock()
		n.backfillStopped = true
		n.backfillMu.Unlock()
		close(n.done)
		n.wg.Wait()
		n.replica.Stop()
	}
	if n.signer != nil {
		n.signer.Close()
	}
	if n.retention != nil {
		n.retention.Close() // waits out an in-flight compaction
	}
	if n.scrubber != nil {
		n.scrubber.Close() // waits out an in-flight scrub pass
	}
	if n.ownsStorage && n.storage != nil {
		n.storage.Close()
	}
}

// ---- consensus.Application --------------------------------------------

var _ consensus.Application = (*OrderingNode)(nil)

// Execute receives the decided envelope batch of one consensus instance:
// the node thread of Figure 5. Envelopes are demultiplexed per channel;
// whenever a cutter reports a full block, the header is sealed sequentially
// and handed to the signing pool.
func (n *OrderingNode) Execute(seq int64, ops [][]byte) {
	n.snapshotForRollback(seq)
	for _, op := range ops {
		channel, client, err := fabric.PeekEnvelope(op)
		if err != nil {
			continue // cannot happen for validated batches; defensive
		}
		chain := n.chain(channel)
		if strings.HasPrefix(client, ttcClientPrefix) {
			n.handleTTC(chain, channel, op)
			continue
		}
		n.statEnvelopes.Add(1)
		if batch := chain.cutter.Append(op); batch != nil {
			n.sealBlock(channel, chain, batch)
		}
	}
}

func (n *OrderingNode) chain(channel string) *chainState {
	chain, ok := n.chains[channel]
	if !ok {
		chain = &chainState{
			cutter: fabric.NewBlockCutter(fabric.CutterConfig{
				MaxEnvelopes: n.cfg.BlockSize,
				MaxBytes:     n.cfg.MaxBlockBytes,
			}),
		}
		n.chains[channel] = chain
	}
	return chain
}

// handleTTC processes an ordered time-to-cut marker: cut a partial block if
// the marker still refers to the chain's current block number and envelopes
// are pending. Deterministic because every node processes the same marker
// at the same position in the total order.
func (n *OrderingNode) handleTTC(chain *chainState, channel string, op []byte) {
	env, err := fabric.UnmarshalEnvelope(op)
	if err != nil || len(env.Payload) != 8 {
		return
	}
	r := wire.NewReader(env.Payload)
	target := r.Uint64()
	if r.Err() != nil || target != chain.nextNumber {
		return // stale marker: the block was already cut by size
	}
	if batch := chain.cutter.Cut(); batch != nil {
		n.sealBlock(channel, chain, batch)
	}
}

// sealBlock builds the next block header (sequentially - the only ordering
// state is the previous header, exactly as Section 5.1 argues) and submits
// it to the signing/sending pool. Persistence happens in the send drain,
// after the node's signature attached, so the durable ledger keeps the
// signature and fetched history is independently verifiable; during
// decision-log replay the (already durable) block is re-persisted
// directly instead.
func (n *OrderingNode) sealBlock(channel string, chain *chainState, batch [][]byte) {
	block := fabric.NewBlock(chain.nextNumber, chain.prevHash, batch)
	chain.nextNumber++
	chain.prevHash = block.Header.Hash()
	n.statBlocks.Add(1)
	n.metrics.BlocksSealed.Inc()

	// Stage stamp: the decision instant, plus the first envelope's client
	// submission time (the broadcast-received anchor of the latency
	// trace). Only taken when metrics are on; implausible timestamps
	// (tests stuff sequence numbers into the field) are filtered at
	// observation time.
	var trace blockTrace
	if n.metrics.StageDecide != nil {
		trace.decided = time.Now()
		if ts, err := fabric.PeekTimestamp(batch[0]); err == nil {
			observeStamp(n.metrics.StageDecide, ts, trace.decided)
		}
	}

	if n.recovering {
		// Replaying the decision log: frontends saw the block before the
		// crash, so no signing or dissemination; the persist is a replay
		// duplicate unless the crash hit between the decision fsync and
		// the block append (those few tail blocks land unsigned — readers
		// fall back to hash-chain anchoring for them).
		if n.storage != nil {
			n.persistBlock(channel, block)
		}
		return
	}

	// The durability gate: the token of the newest enqueued decision.
	// The decision that sealed this block was enqueued on this same
	// event loop before Execute ran (and the decision log is FIFO), so
	// the token's completion implies this block's decision — and every
	// earlier one — is on disk. The send drain waits on it before the
	// block becomes externally visible; the event loop itself never
	// blocks on the fsync.
	var gate *storage.Token
	if n.storage != nil {
		gate = n.storage.DecisionToken()
	}
	epoch := n.reserveSend(channel, block.Header.Number)
	headerHash := block.Header.Hash()
	signerID := string(n.ID().Addr())
	if n.cfg.DisableSigning {
		n.statSigned.Add(1)
		n.completeSend(channel, epoch, block, gate, trace)
		return
	}
	err := n.signer.Sign(headerHash, func(sig []byte, err error) {
		if err != nil {
			return
		}
		block.Signatures = []fabric.BlockSignature{{SignerID: signerID, Signature: sig}}
		n.statSigned.Add(1)
		n.completeSend(channel, epoch, block, gate, trace)
	})
	if err != nil {
		return // pool closed during shutdown
	}
}

// blockTrace carries one block's stage stamps through the send drain.
// Zero when metrics are disabled.
type blockTrace struct {
	decided time.Time // when the block was sealed on the event loop
}

// observeStamp records now-minus-stamp into h, dropping stamps that are
// clearly not wall-clock times (several tests use the envelope timestamp
// field as a sequence counter): negative spans and spans over an hour are
// discarded rather than poisoning the percentiles.
func observeStamp(h *obs.Histogram, unixNano int64, now time.Time) {
	d := now.Sub(time.Unix(0, unixNano))
	if d < 0 || d > time.Hour {
		return
	}
	h.ObserveDuration(d)
}

// blockSender sequences one channel's persist + dissemination. Signing
// completes out of order on the pool, so completed blocks park in pending
// until every lower number has been handled; one worker at a time drains
// the contiguous run (draining guards it), which keeps both the durable
// appends and the outgoing sends in strict block-number order. epoch
// invalidates in-flight completions when a rollback or state transfer
// rewrites the chain. The persist watermark lives beside the senders in
// OrderingNode.durableHeights: the height up to which a channel's block
// records are known durable — dissemination does NOT wait for it, only the
// decision gate; the watermark exists for crash reasoning (everything above
// it is re-derivable from the decision log or peers) and gates the
// consensus checkpoint save.
type blockSender struct {
	epoch    uint64
	started  bool
	next     uint64
	pending  map[uint64]pendingBlock
	draining bool
}

// pendingBlock is one signed block parked in a sender, with the
// durability token of the decision that sealed it: the drain waits out
// the token before the block is persisted or disseminated, which is the
// write-ahead gate that lets decision logging run asynchronously.
type pendingBlock struct {
	block *fabric.Block
	gate  *storage.Token
	trace blockTrace
}

// reserveSend anchors the channel's send cursor at the first block sealed
// in the current epoch. Runs on the event loop, in seal order.
func (n *OrderingNode) reserveSend(channel string, number uint64) uint64 {
	n.sendMu.Lock()
	defer n.sendMu.Unlock()
	s, ok := n.senders[channel]
	if !ok {
		s = &blockSender{pending: make(map[uint64]pendingBlock)}
		n.senders[channel] = s
	}
	if !s.started {
		s.started = true
		s.next = number
	}
	return s.epoch
}

// completeSend hands a signed block to the sequencer; everything that is
// now contiguous waits out its decision's durability token and is then
// persisted AND disseminated, in block-number order. Runs on
// signing-pool workers (or the event loop with signing disabled). The
// drain is single-flight per channel: a worker that finds another one
// draining just deposits its block, so the durable appends run in order,
// off the event loop, after signing.
//
// The decision token is the ONLY durability gate: the paper's
// write-ahead rule requires the decision to be on disk before anything
// leaves the node — the block record itself is re-derivable (recovery
// re-seals blocks from the decision replay, and peers hold disseminated
// copies), so the drain disseminates as soon as the decision is durable
// and lets the block put complete in a later commit wave,
// fire-and-forget. A per-channel persist watermark (advanced by a waiter
// on each run's last put token; puts are FIFO) records how far the
// durable block prefix actually reaches, so crash re-persist and tests
// can see exactly which tail a kill would need to re-derive. Because
// decisions and blocks share one unified commit log, the wave that made
// the decision durable — the one this drain just waited out — is a
// single fsync, and the block records ride whichever single-fsync wave
// comes next.
func (n *OrderingNode) completeSend(channel string, epoch uint64, block *fabric.Block, gate *storage.Token, trace blockTrace) {
	n.sendMu.Lock()
	s, ok := n.senders[channel]
	if !ok || s.epoch != epoch {
		n.sendMu.Unlock()
		return // the chain was rolled back or replaced since sealing
	}
	s.pending[block.Header.Number] = pendingBlock{block: block, gate: gate, trace: trace}
	if s.draining {
		n.sendMu.Unlock()
		return // the draining worker picks this block up
	}
	s.draining = true
	for {
		var out []pendingBlock
		for {
			pb, ok := s.pending[s.next]
			if !ok {
				break
			}
			delete(s.pending, s.next)
			s.next++
			out = append(out, pb)
		}
		if len(out) == 0 {
			s.draining = false
			n.sendMu.Unlock()
			return
		}
		n.sendMu.Unlock()
		var lastPut fabric.DurableToken
		var lastNum uint64
		for _, pb := range out {
			b := pb.block
			if pb.gate != nil {
				// Write-ahead gate: the decision that sealed this block
				// must be on disk before the block is persisted or shown
				// to anyone. A failed token means the decision log is
				// poisoned (fsync fail-fast): the node must stop acking —
				// disseminating a block whose decision the kernel already
				// dropped would hand out history a restart cannot replay.
				// The drain parks permanently (s.draining stays set), so
				// no later block of this channel leaves the node either.
				if err := pb.gate.Wait(); err != nil {
					slog.Error("decision never became durable; halting dissemination",
						"node", int(n.ID()), "shard", n.cfg.ShardID,
						"channel", channel, "block", b.Header.Number, "err", err)
					return
				}
			}
			// Stage stamp: the decision (and every earlier one) is durable
			// from here on — the decided→fsynced span ends, the
			// fsynced→disseminated span starts.
			var fsyncedAt time.Time
			if n.metrics.StageFsync != nil {
				fsyncedAt = time.Now()
				if !pb.trace.decided.IsZero() {
					n.metrics.StageFsync.ObserveDuration(fsyncedAt.Sub(pb.trace.decided))
				}
			}
			// Re-check the epoch per block: a rollback or state transfer
			// that lands while this worker is out invalidates the rest of
			// the extracted run. (The check narrows, but cannot close, the
			// instant between it and the append — see ROADMAP on
			// tentative-mode durability.)
			n.sendMu.Lock()
			stale := s.epoch != epoch
			n.sendMu.Unlock()
			if stale {
				return // the reset cleared the drain flag for the new epoch
			}
			// Enqueue the block record (fire-and-forget) and disseminate
			// immediately: the decision gate above is the only durability
			// the paper requires before the block leaves the node.
			if n.storage != nil {
				if tok := n.persistBlockAsync(channel, b); tok != nil {
					lastPut = tok
					lastNum = b.Header.Number
				}
			}
			n.disseminate(channel, b)
			if n.metrics.StageDisseminate != nil && !fsyncedAt.IsZero() {
				n.metrics.StageDisseminate.ObserveDuration(time.Since(fsyncedAt))
				n.metrics.DisseminatedLag.Set(time.Now().UnixNano())
			}
		}
		if lastPut != nil {
			// Advance the persist watermark off the drain: puts are FIFO
			// per channel, so the run's last token covers the whole run.
			go n.advanceWatermark(channel, epoch, lastNum, lastPut)
		}
		if n.retention != nil {
			n.retention.MaybeCompact()
		}
		n.sendMu.Lock()
		if s.epoch != epoch {
			// The chain was rewritten while this worker was out: the
			// reset cleared the drain flag on behalf of the new epoch, so
			// this stale worker must not touch it.
			n.sendMu.Unlock()
			return
		}
	}
}

// advanceWatermark waits out a run's last put token and records the
// durable block height it proves. A failed put means the log is poisoned
// — durability of the tail is lost (recovery re-derives it from the
// decision log or peers); report it loudly, once per failure.
func (n *OrderingNode) advanceWatermark(channel string, epoch uint64, lastNum uint64, tok fabric.DurableToken) {
	if err := tok.Wait(); err != nil {
		slog.Error("persisting blocks failed",
			"node", int(n.ID()), "shard", n.cfg.ShardID,
			"channel", channel, "through", lastNum, "err", err)
		return
	}
	n.sendMu.Lock()
	s, ok := n.senders[channel]
	if !ok || s.epoch != epoch {
		n.sendMu.Unlock()
		return // the chain was rewritten; the new epoch re-anchors the mark
	}
	if lastNum+1 > n.durableHeights[channel] {
		n.durableHeights[channel] = lastNum + 1
		n.metrics.Watermark(channel).Set(int64(lastNum + 1))
	}
	n.sendMu.Unlock()
	// The watermark moved: a checkpoint save deferred on it may be
	// admissible now.
	n.storage.NudgeCheckpoint()
}

// noteDurable records a synchronously persisted block prefix (recovery
// replay, back-fill): the append already waited out its fsync, so the
// watermark may advance immediately.
func (n *OrderingNode) noteDurable(channel string, height uint64) {
	n.sendMu.Lock()
	if height > n.durableHeights[channel] {
		n.durableHeights[channel] = height
		n.metrics.Watermark(channel).Set(int64(height))
	}
	n.sendMu.Unlock()
	if n.storage != nil {
		n.storage.NudgeCheckpoint()
	}
}

// PersistWatermark returns the channel's durable block height as proven
// by completed put tokens: every block below it has its record fsynced
// in the unified commit log. Dissemination may run ahead of it — the
// decision gate, not block durability, is what blocks wait for — which
// is exactly what the early-dissemination tests assert. Safe from any
// goroutine.
func (n *OrderingNode) PersistWatermark(channel string) uint64 {
	n.sendMu.Lock()
	defer n.sendMu.Unlock()
	return n.durableHeights[channel]
}

// SavedCheckpointSeq reports the consensus checkpoint sequence durably on
// disk right now (-1 when none, or when the node is in-memory). Because
// async checkpoint saves are gated on the persist watermark, this can
// lag Stats().Regency-era checkpoint decisions — that lag is the gate
// doing its job, and what the chaos invariants observe.
func (n *OrderingNode) SavedCheckpointSeq() (int64, error) {
	if n.storage == nil {
		return -1, nil
	}
	return n.storage.SavedCheckpointSeq()
}

// onCheckpoint runs on the consensus event loop each time the replica takes
// a checkpoint: it records the per-channel block heights the checkpointed
// decisions imply (chains are event-loop confined, so nextNumber is exact
// for the prefix through the checkpoint seq).
func (n *OrderingNode) onCheckpoint(seq int64) {
	heights := make(map[string]uint64, len(n.chains))
	for channel, chain := range n.chains {
		heights[channel] = chain.nextNumber
	}
	n.ckptMarkMu.Lock()
	n.ckptMarks = append(n.ckptMarks, ckptMark{seq: seq, heights: heights})
	n.ckptMarkMu.Unlock()
}

// checkpointCovered is the storage checkpoint gate: a checkpoint at seq may
// be saved only once every block its decisions sealed is durable (the
// persist watermark reached the heights recorded at checkpoint time).
// Called from the storage checkpoint worker; advanceWatermark nudges the
// worker whenever the watermark moves.
func (n *OrderingNode) checkpointCovered(seq int64) bool {
	n.ckptMarkMu.Lock()
	var mark *ckptMark
	for i := len(n.ckptMarks) - 1; i >= 0; i-- {
		if n.ckptMarks[i].seq <= seq {
			mark = &n.ckptMarks[i]
			break
		}
	}
	n.ckptMarkMu.Unlock()
	if mark == nil {
		return true // no mark recorded for it (bridging path); nothing to gate
	}
	for channel, h := range mark.heights {
		if n.PersistWatermark(channel) < h {
			return false
		}
	}
	// Covered: marks at or below seq are spent (a checkpoint subsumes every
	// older one).
	n.ckptMarkMu.Lock()
	cut := 0
	for cut < len(n.ckptMarks) && n.ckptMarks[cut].seq <= seq {
		cut++
	}
	n.ckptMarks = append([]ckptMark(nil), n.ckptMarks[cut:]...)
	n.ckptMarkMu.Unlock()
	return true
}

// resetSender invalidates a channel's in-flight dissemination after its
// chain state was rewritten (rollback or state transfer); the next sealed
// block re-anchors the cursor.
func (n *OrderingNode) resetSender(channel string) {
	n.sendMu.Lock()
	defer n.sendMu.Unlock()
	s, ok := n.senders[channel]
	if !ok {
		return
	}
	s.epoch++
	s.started = false
	s.pending = make(map[uint64]pendingBlock)
	// A stale drain worker may still be out disseminating; it observes the
	// epoch bump and exits without touching the flag again.
	s.draining = false
}

// persistBlock appends a sealed block to the channel's durable ledger,
// signatures included: the drain calls it after the node's signature
// attached (and back-filled blocks carry the serving peers' signatures),
// so replayed and fetched history can be independently verified with f+1
// signature checks, falling back to hash-chain anchoring for blocks
// persisted without signatures (legacy chains, recovery re-seals). A
// block below the ledger height is a replay duplicate (skipped); a block
// above it means state transfer jumped the chain past blocks this node
// never sealed — it is parked until the FetchBlocks back-fill closes the
// gap beneath it, so the durable chain stays contiguous.
func (n *OrderingNode) persistBlock(channel string, block *fabric.Block) {
	n.persistOrPark(channel, block, false)
}

// persistBlockAsync is persistBlock for the send drain: the block's
// record is enqueued on the unified commit log and the returned token
// completes when it is on disk (nil when nothing was enqueued: a replay
// duplicate, a parked gap block, or a rejected append). Same-channel
// calls are ordered by the drain's single-flight discipline; ledgerMu is
// held only for the enqueue, never across the fsync.
func (n *OrderingNode) persistBlockAsync(channel string, block *fabric.Block) fabric.DurableToken {
	return n.persistOrPark(channel, block, true)
}

func (n *OrderingNode) persistOrPark(channel string, block *fabric.Block, async bool) fabric.DurableToken {
	led := n.ledger(channel)
	n.ledgerMu.Lock()
	defer n.ledgerMu.Unlock()
	height := led.Height()
	switch {
	case block.Header.Number < height:
		return nil // replay duplicate
	case block.Header.Number > height:
		parked, ok := n.parked[channel]
		if !ok {
			parked = make(map[uint64]*fabric.Block)
			n.parked[channel] = parked
		}
		parked[block.Header.Number] = block
		// Re-arm the back-fill on every parked block (a no-op while one is
		// already running): if an earlier attempt exhausted its retries,
		// the gap would otherwise persist — and parked blocks accumulate —
		// for the node's lifetime. The lowest parked block pins the gap's
		// upper bound and anchor.
		if low, ok := lowestParked(parked); ok {
			n.maybeBackfill(channel, height, low, parked[low].Header.PrevHash)
		}
		return nil
	}
	var tok fabric.DurableToken
	var err error
	if async {
		// The drain only ever sees blocks this node sealed itself, so
		// the envelope-hash re-verification is skipped.
		tok, err = led.AppendSealedAsync(block)
	} else {
		err = led.Append(block)
	}
	if err != nil {
		slog.Error("persisting block failed",
			"node", int(n.ID()), "shard", n.cfg.ShardID,
			"channel", channel, "block", block.Header.Number, "err", err)
		return nil
	}
	if !async {
		// The synchronous append waited out its fsync: the watermark
		// advances immediately (recovery replay and back-fill go this way).
		n.noteDurable(channel, block.Header.Number+1)
	}
	return tok
}

// ledger returns (creating if needed) the durable ledger for a channel.
func (n *OrderingNode) ledger(channel string) *fabric.Ledger {
	n.ledgerMu.Lock()
	defer n.ledgerMu.Unlock()
	led, ok := n.ledgers[channel]
	if !ok {
		led = fabric.NewPersistentLedger(channel, n.storage)
		n.ledgers[channel] = led
	}
	return led
}

// Ledger returns the node's durable copy of a channel's chain, or nil when
// the node runs without storage or has never sealed a block for the
// channel. Safe from any goroutine.
func (n *OrderingNode) Ledger(channel string) *fabric.Ledger {
	if n.storage == nil {
		return nil
	}
	n.ledgerMu.Lock()
	defer n.ledgerMu.Unlock()
	return n.ledgers[channel]
}

// disseminate sends a signed block to every registered frontend (the
// custom replier of Section 5.1). Runs on signing-pool workers. An
// equivocating byzantine node sends a conflicting, re-signed variant to
// half the frontends instead.
func (n *OrderingNode) disseminate(channel string, block *fabric.Block) {
	payload := marshalBlockMsg(channel, block)
	n.mu.Lock()
	targets := make([]transport.Addr, 0, len(n.frontends))
	for addr := range n.frontends {
		targets = append(targets, addr)
	}
	n.mu.Unlock()
	var forged []byte
	if n.byz.Load().EquivocateDissemination {
		if fb := n.equivocationVariant(channel, block); fb != nil {
			forged = marshalBlockMsg(channel, fb)
			// Deterministic split: sorted target list, odd indices get the
			// conflicting block.
			sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
		}
	}
	for i, addr := range targets {
		if forged != nil && i%2 == 1 {
			n.conn.Send(addr, MsgBlock, forged)
			continue
		}
		n.conn.Send(addr, MsgBlock, payload)
	}
}

// equivocationVariant builds a conflicting block for the same number: same
// chain position, different envelopes, honestly re-signed by this node (an
// equivocator's signature is genuine — that is what makes equivocation
// dangerous). Returns nil when the node cannot sign.
func (n *OrderingNode) equivocationVariant(channel string, block *fabric.Block) *fabric.Block {
	if n.cfg.Key == nil {
		return nil
	}
	envs := [][]byte{[]byte("equivocation:" + channel + ":" + strconv.FormatUint(block.Header.Number, 10))}
	fb := fabric.NewBlock(block.Header.Number, block.Header.PrevHash, envs)
	sig, err := n.cfg.Key.Sign(fb.Header.Hash().Bytes())
	if err != nil {
		return nil
	}
	fb.Signatures = []fabric.BlockSignature{{SignerID: string(n.ID().Addr()), Signature: sig}}
	return fb
}

// forgedChain returns this node's forged history for a channel, grown to at
// least height blocks. The chain is internally hash-linked from a zero
// genesis anchor and every block carries only this node's (genuine)
// signature: it passes per-range hash verification but can never gather an
// f+1 signature quorum — the property FetchRangeVerified must exploit.
func (n *OrderingNode) forgedChain(channel string, height uint64) []*fabric.Block {
	if n.cfg.Key == nil {
		return nil
	}
	n.forgedMu.Lock()
	defer n.forgedMu.Unlock()
	chain := n.forged[channel]
	for uint64(len(chain)) < height {
		num := uint64(len(chain))
		var prev cryptoutil.Digest
		if num > 0 {
			prev = chain[num-1].Header.Hash()
		}
		envs := [][]byte{[]byte("forged:" + channel + ":" + strconv.FormatUint(num, 10))}
		fb := fabric.NewBlock(num, prev, envs)
		sig, err := n.cfg.Key.Sign(fb.Header.Hash().Bytes())
		if err != nil {
			return nil
		}
		fb.Signatures = []fabric.BlockSignature{{SignerID: string(n.ID().Addr()), Signature: sig}}
		chain = append(chain, fb)
	}
	n.forged[channel] = chain
	return chain
}

// Rollback undoes tentative executions beyond seq (WHEAT leader changes).
func (n *OrderingNode) Rollback(seq int64) {
	snaps, ok := n.history[seq+1]
	if !ok {
		// Nothing was executed after seq (or the window was exceeded,
		// which cannot happen within the consensus pipeline depth).
		n.statRollbacks.Add(1)
		return
	}
	for channel, snap := range snaps {
		chain := n.chain(channel)
		chain.nextNumber = snap.nextNumber
		chain.prevHash = snap.prevHash
		chain.cutter.Cut() // drop pending
		for _, env := range snap.pending {
			chain.cutter.Append(env)
		}
		n.resetSender(channel)
	}
	for s := range n.history {
		if s > seq {
			delete(n.history, s)
		}
	}
	n.statRollbacks.Add(1)
}

// snapshotForRollback records every chain's state before executing seq.
func (n *OrderingNode) snapshotForRollback(seq int64) {
	snaps := make(map[string]chainSnapshot, len(n.chains))
	for channel, chain := range n.chains {
		snaps[channel] = chainSnapshot{
			nextNumber: chain.nextNumber,
			prevHash:   chain.prevHash,
			pending:    chain.cutter.PendingSnapshot(),
		}
	}
	n.history[seq] = snaps
	delete(n.history, seq-rollbackWindow)
}

// Snapshot serializes the per-channel chain state (Section 5.2: a few
// dozen bytes per channel plus any uncut envelopes).
func (n *OrderingNode) Snapshot() []byte {
	w := wire.NewWriter(64)
	w.PutUvarint(uint64(len(n.chains)))
	channels := make([]string, 0, len(n.chains))
	for ch := range n.chains {
		channels = append(channels, ch)
	}
	sort.Strings(channels)
	for _, ch := range channels {
		chain := n.chains[ch]
		w.PutString(ch)
		w.PutUint64(chain.nextNumber)
		w.PutRaw(chain.prevHash[:])
		w.PutBytesSlice(chain.cutter.PendingSnapshot())
	}
	return w.Bytes()
}

// Restore replaces the chain state from a snapshot (state transfer).
func (n *OrderingNode) Restore(snapshot []byte, _ int64) {
	r := wire.NewReader(snapshot)
	count := r.Uvarint()
	if count > 1<<16 {
		return
	}
	chains := make(map[string]*chainState, count)
	for i := uint64(0); i < count; i++ {
		channel := r.String()
		chain := &chainState{
			nextNumber: r.Uint64(),
			cutter: fabric.NewBlockCutter(fabric.CutterConfig{
				MaxEnvelopes: n.cfg.BlockSize,
				MaxBytes:     n.cfg.MaxBlockBytes,
			}),
		}
		copy(chain.prevHash[:], r.Raw(cryptoutil.DigestSize))
		for _, env := range r.BytesSlice() {
			chain.cutter.Append(env)
		}
		chains[channel] = chain
	}
	if r.Finish() != nil {
		return
	}
	n.chains = chains
	n.history = make(map[int64]map[string]chainSnapshot)
	// The chains were replaced wholesale: in-flight dissemination for any
	// channel is stale.
	n.sendMu.Lock()
	for _, s := range n.senders {
		s.epoch++
		s.started = false
		s.pending = make(map[uint64]pendingBlock)
		s.draining = false
	}
	n.sendMu.Unlock()
	// A state transfer that jumped a chain past the local ledger height
	// leaves a gap the node never sealed: back-fill it from peers so the
	// durable chain stays contiguous. (During construction-time recovery
	// the scan runs in Start instead, once the event loop can route fetch
	// responses.)
	if n.storage != nil && !n.recovering {
		for channel, chain := range n.chains {
			if h := n.ledger(channel).Height(); h < chain.nextNumber {
				n.maybeBackfill(channel, h, chain.nextNumber, chain.prevHash)
			}
		}
	}
}

// ---- frontend registration and TTC ------------------------------------

// onServiceMessage handles ordering-layer messages arriving on the
// replica's endpoint (runs on the event loop).
func (n *OrderingNode) onServiceMessage(m transport.Message) {
	switch m.Type {
	case MsgRegister:
		n.mu.Lock()
		n.frontends[m.From] = struct{}{}
		n.mu.Unlock()
	case MsgUnregister:
		n.mu.Lock()
		delete(n.frontends, m.From)
		n.mu.Unlock()
	case MsgFetchRequest:
		// Served off the event loop: the range read may hit disk, and the
		// ledger is safe for concurrent readers.
		go n.serveFetch(m.From, m.Payload)
	case MsgFetchResponse:
		n.fetcher.HandleResponse(m.From, m.Payload)
	}
}

// serveFetch answers a FetchBlocks request from the node's durable ledger
// with up to maxFetchBlocks blocks of the requested range. Nodes without
// durable storage (or without the channel) answer with an empty run so the
// requester moves on quickly.
func (n *OrderingNode) serveFetch(from transport.Addr, payload []byte) {
	req, err := unmarshalFetchRequest(payload)
	if err != nil {
		return
	}
	resp := fetchResponse{ReqID: req.ReqID, From: req.From}
	if n.byz.Load().ForgeHistory {
		n.serveForgedFetch(from, req, resp)
		return
	}
	if req.From == fetchHeadProbe {
		// Head probe: answer with the newest durable block.
		if led := n.Ledger(req.Channel); led != nil {
			if h := led.Height(); h > 0 {
				if b, err := led.Block(h - 1); err == nil {
					resp.From = h - 1
					resp.Blocks = [][]byte{b.Marshal()}
				}
			}
		}
		n.conn.Send(from, MsgFetchResponse, resp.marshal())
		return
	}
	if led := n.Ledger(req.Channel); led != nil && req.To > req.From {
		end := req.To
		if h := led.Height(); end > h {
			end = h
		}
		if end > req.From+maxFetchBlocks {
			end = req.From + maxFetchBlocks
		}
		if end > req.From {
			blocks, err := led.Range(req.From, end)
			switch {
			case err == nil:
				resp.Blocks = make([][]byte, 0, len(blocks))
				for _, b := range blocks {
					if req.SigsOnly {
						// Signature-only fetch: strip the envelopes. The
						// header (and thus the signed digest) is untouched,
						// so the requester can merge these signatures into
						// its full copy by header-hash match.
						stripped := &fabric.Block{Header: b.Header, Signatures: b.Signatures}
						resp.Blocks = append(resp.Blocks, stripped.Marshal())
						continue
					}
					resp.Blocks = append(resp.Blocks, b.Marshal())
				}
			default:
				// Retention compacted the range away: tell the requester
				// where this node's history now starts.
				var pe *fabric.PrunedError
				if errors.As(err, &pe) {
					resp.Floor = pe.Floor
				}
			}
		}
	}
	n.conn.Send(from, MsgFetchResponse, resp.marshal())
}

// serveForgedFetch answers a fetch request from the node's forged chain
// (ForgeHistory byzantine behavior). The forged history mirrors the real
// ledger's height so the node looks plausibly caught-up to head probes.
func (n *OrderingNode) serveForgedFetch(from transport.Addr, req fetchRequest, resp fetchResponse) {
	var height uint64
	if led := n.Ledger(req.Channel); led != nil {
		height = led.Height()
	}
	chain := n.forgedChain(req.Channel, height)
	if req.From == fetchHeadProbe {
		if len(chain) > 0 {
			b := chain[len(chain)-1]
			resp.From = b.Header.Number
			resp.Blocks = [][]byte{b.Marshal()}
		}
		n.conn.Send(from, MsgFetchResponse, resp.marshal())
		return
	}
	if req.To > req.From {
		end := req.To
		if end > height {
			end = height
		}
		if end > req.From+maxFetchBlocks {
			end = req.From + maxFetchBlocks
		}
		for num := req.From; num < end; num++ {
			resp.Blocks = append(resp.Blocks, chain[num].Marshal())
		}
	}
	n.conn.Send(from, MsgFetchResponse, resp.marshal())
}

// ---- FetchBlocks back-fill ---------------------------------------------

// maybeBackfill starts (at most one per channel) a background task that
// fetches blocks [from, to) from peers and appends them to the channel's
// durable ledger, verified against the post-jump anchor (to, anchor=
// PrevHash of block to).
func (n *OrderingNode) maybeBackfill(channel string, from, to uint64, anchor cryptoutil.Digest) {
	if n.storage == nil || to <= from {
		return
	}
	n.backfillMu.Lock()
	if n.backfillStopped || n.backfilling[channel] {
		n.backfillMu.Unlock()
		return
	}
	n.backfilling[channel] = true
	// The Add happens under backfillMu, which Stop also takes before its
	// Wait, so a task can never be added after the node began waiting.
	n.wg.Add(1)
	n.backfillMu.Unlock()
	go func() {
		defer n.wg.Done()
		n.runBackfill(channel, from, to, anchor)
		n.backfillMu.Lock()
		delete(n.backfilling, channel)
		n.backfillMu.Unlock()
		// A block may have parked between the final drain and the flag
		// clearing (or the fill may have failed): re-arm until the chain
		// is contiguous, so no gap outlives its retry budget silently.
		n.rearmBackfill(channel)
	}()
}

// rearmBackfill restarts the back-fill if parked blocks still sit above a
// gap in the channel's durable chain.
func (n *OrderingNode) rearmBackfill(channel string) {
	n.ledgerMu.Lock()
	parked := n.parked[channel]
	led := n.ledgers[channel]
	low, found := lowestParked(parked)
	if !found || led == nil {
		n.ledgerMu.Unlock()
		return
	}
	height := led.Height()
	anchor := parked[low].Header.PrevHash
	n.ledgerMu.Unlock()
	if height < low {
		n.maybeBackfill(channel, height, low, anchor)
	}
}

// runBackfill closes one gap, then drains any blocks that parked above it
// while it ran; a second state-transfer jump during the fetch surfaces as
// a fresh gap below the parked blocks and is filled in the next pass.
//
// When f+1 peers answer that the bottom of the gap fell below their
// retention floors, those blocks no longer exist anywhere trustworthy:
// the node takes the snapshot jump instead — it re-fetches from the
// cluster's floor, verifies the suffix into its trusted anchor, and
// rebases its durable chain at the floor (manifest first, so a crash
// mid-jump recovers the rebased chain). Disk usage then tracks the
// retained window, not how long the node was down.
func (n *OrderingNode) runBackfill(channel string, from, to uint64, anchor cryptoutil.Digest) {
	for {
		blocks, start, err := n.fetchGap(channel, from, to, anchor)
		if err != nil {
			slog.Warn("back-fill fetch failed",
				"node", int(n.ID()), "shard", n.cfg.ShardID,
				"channel", channel, "from", from, "to", to-1, "err", err)
			return
		}
		led := n.ledger(channel)
		if start > from {
			// The fetched suffix (or, for an empty suffix, the parked
			// block at `to`) links into the trusted anchor, so its first
			// PrevHash is a trusted stand-in for the pruned prefix.
			rebaseAnchor := anchor
			if len(blocks) > 0 {
				rebaseAnchor = blocks[0].Header.PrevHash
			}
			n.ledgerMu.Lock()
			err := led.Rebase(start, rebaseAnchor)
			n.ledgerMu.Unlock()
			if err != nil {
				slog.Error("rebase over pruned blocks failed",
					"node", int(n.ID()), "shard", n.cfg.ShardID,
					"channel", channel, "from", from, "to", start-1, "err", err)
				return
			}
			slog.Info("blocks pruned cluster-wide; rebased at snapshot floor",
				"node", int(n.ID()), "shard", n.cfg.ShardID,
				"channel", channel, "from", from, "to", start-1, "floor", start)
		}
		// Append in bounded batches so the fsync work does not hold
		// ledgerMu (and thereby the event loop's persistBlock path) for
		// the whole gap at once.
		const appendBatch = 64
		for start := 0; start < len(blocks); start += appendBatch {
			end := start + appendBatch
			if end > len(blocks) {
				end = len(blocks)
			}
			n.ledgerMu.Lock()
			for _, b := range blocks[start:end] {
				if b.Header.Number < led.Height() {
					continue // raced with a replay duplicate
				}
				if err := led.Append(b); err != nil {
					n.ledgerMu.Unlock()
					slog.Error("back-fill append failed",
						"node", int(n.ID()), "shard", n.cfg.ShardID,
						"channel", channel, "block", b.Header.Number, "err", err)
					return
				}
			}
			n.ledgerMu.Unlock()
		}
		if n.retention != nil {
			n.retention.MaybeCompact()
		}
		var again bool
		n.ledgerMu.Lock()
		from, to, anchor, again = n.drainParkedLocked(channel, led)
		height := led.Height()
		n.ledgerMu.Unlock()
		// Back-fill appends are synchronous (each waited out its fsync) and
		// contiguous from the bottom, so the durable prefix reaches the
		// ledger height right now. Without this the watermark stays frozen
		// at the recovery height whenever the gap closes after traffic
		// stops — the drain-token path only advances it on newly sealed
		// blocks.
		n.noteDurable(channel, height)
		if !again {
			return
		}
	}
}

// drainParkedLocked appends every parked block that is now contiguous with
// the ledger and reports the next gap, if any (from, to, anchor of a
// follow-up back-fill). Callers hold ledgerMu.
func (n *OrderingNode) drainParkedLocked(channel string, led *fabric.Ledger) (from, to uint64, anchor cryptoutil.Digest, again bool) {
	parked := n.parked[channel]
	for {
		b, ok := parked[led.Height()]
		if !ok {
			break
		}
		delete(parked, b.Header.Number)
		if err := led.Append(b); err != nil {
			slog.Error("draining parked block failed",
				"node", int(n.ID()), "shard", n.cfg.ShardID,
				"channel", channel, "block", b.Header.Number, "err", err)
			return 0, 0, cryptoutil.Digest{}, false
		}
	}
	lowest, found := lowestParked(parked)
	if !found {
		return 0, 0, cryptoutil.Digest{}, false
	}
	return led.Height(), lowest, parked[lowest].Header.PrevHash, true
}

// lowestParked returns the smallest parked block number.
func lowestParked(parked map[uint64]*fabric.Block) (uint64, bool) {
	lowest, found := uint64(0), false
	for num := range parked {
		if !found || num < lowest {
			lowest = num
			found = true
		}
	}
	return lowest, found
}

// fetchGap fetches blocks [from, to) for a back-fill, following the
// cluster's retention floor upward: each time f+1 peers report the
// bottom of the remaining range pruned, the fetch restarts at the
// reported floor (strictly increasing, so a moving floor — compaction
// racing the fetch — cannot loop it). It returns the fetched blocks and
// the number the fetch actually started at: a start above `from` means
// the blocks below it are gone cluster-wide and the caller must rebase.
// A start equal to `to` (with no blocks) means the whole gap is pruned.
func (n *OrderingNode) fetchGap(channel string, from, to uint64, anchor cryptoutil.Digest) (blocks []*fabric.Block, start uint64, err error) {
	start = from
	for {
		blocks, err = n.fetchGapOnce(channel, start, to, anchor)
		if err == nil {
			return blocks, start, nil
		}
		var pe *fabric.PrunedError
		if !errors.As(err, &pe) || pe.Floor <= start {
			return nil, start, err
		}
		start = pe.Floor
		if start >= to {
			return nil, to, nil
		}
	}
}

// fetchGapOnce fetches one back-fill range, preferring the signature-
// verified path when a key registry is configured: blocks land with the
// f+1 merged signature set the fetch accumulated, so the durable ledger
// keeps the full released proof instead of just the serving peer's own
// signature. The verified result must still link into the locally trusted
// anchor; on any disagreement — or for legacy unsigned history — the
// anchored hash-chain fetch takes over. An authoritative pruned answer
// propagates directly (the caller climbs the floor).
func (n *OrderingNode) fetchGapOnce(channel string, start, to uint64, anchor cryptoutil.Digest) ([]*fabric.Block, error) {
	peers := n.peerAddrs()
	f := n.faults()
	if reg := n.cfg.Consensus.Registry; reg != nil {
		blocks, err := n.fetcher.FetchRangeVerified(n.done, peers, channel, start, to, reg, f)
		if err == nil {
			if fabric.VerifyRange(blocks, start, to, anchor) == nil {
				return blocks, nil
			}
		} else {
			var pe *fabric.PrunedError
			if errors.As(err, &pe) {
				return nil, err
			}
		}
	}
	return n.fetcher.FetchRange(n.done, peers, channel, start, to, anchor, f)
}

// MembershipView returns the consensus group the node currently believes
// in (epoch, members, weights). Safe from any goroutine.
func (n *OrderingNode) MembershipView() consensus.MembershipView {
	return n.replica.MembershipView()
}

// membershipIDs returns the live consensus membership — the static config
// until the replica exists or a reconfiguration changed the group.
func (n *OrderingNode) membershipIDs() []consensus.ReplicaID {
	if n.replica != nil {
		if v := n.replica.MembershipView(); len(v.Members) > 0 {
			return v.Members
		}
	}
	return n.cfg.Consensus.Replicas
}

// faults returns the cluster's fault threshold f, tracking the live
// membership across reconfigurations.
func (n *OrderingNode) faults() int {
	if n.replica != nil {
		if v := n.replica.MembershipView(); len(v.Members) > 0 && v.F > 0 {
			return v.F
		}
	}
	if f := n.cfg.Consensus.F; f > 0 {
		return f
	}
	return consensus.MaxFaults(len(n.cfg.Consensus.Replicas))
}

// peerAddrs returns the other replicas' transport addresses per the live
// membership (reconfigurations change who is worth fetching from).
func (n *OrderingNode) peerAddrs() []transport.Addr {
	members := n.membershipIDs()
	peers := make([]transport.Addr, 0, len(members))
	for _, id := range members {
		if id != n.cfg.Consensus.SelfID {
			peers = append(peers, id.Addr())
		}
	}
	return peers
}

// Drain waits until every channel's dissemination pipeline is empty: no
// signed block parked in a sender and no drain worker out. Part of the
// graceful-leave sequence — a node that drains before stopping hands every
// block it sealed to the frontends, so removing it leaves no delivery gap.
func (n *OrderingNode) Drain(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		n.sendMu.Lock()
		busy := false
		for _, s := range n.senders {
			if len(s.pending) > 0 || s.draining {
				busy = true
				break
			}
		}
		n.sendMu.Unlock()
		if !busy {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("ordering node %d: drain timed out after %v", int(n.ID()), timeout)
		}
		select {
		case <-n.done:
			return nil
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// ttcLoop submits time-to-cut markers for channels whose cutters have aged
// pending envelopes. Markers are ordered through consensus, so cutting
// stays deterministic; every node may submit markers, and stale ones are
// no-ops.
func (n *OrderingNode) ttcLoop() {
	defer n.wg.Done()
	interval := n.cfg.BlockTimeout / 2
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	clientID := ttcClientPrefix + strconv.Itoa(int(n.ID()))

	type chainProbe struct {
		channel string
		number  uint64
	}
	for {
		select {
		case <-n.done:
			return
		case <-ticker.C:
		}
		var due []chainProbe
		now := time.Now()
		n.replica.Inspect(func() {
			for channel, chain := range n.chains {
				oldest, ok := chain.cutter.OldestPending()
				if ok && now.Sub(oldest) >= n.cfg.BlockTimeout {
					due = append(due, chainProbe{channel: channel, number: chain.nextNumber})
				}
			}
		})
		for _, probe := range due {
			w := wire.NewWriter(8)
			w.PutUint64(probe.number)
			env := &fabric.Envelope{
				ChannelID: probe.channel,
				ClientID:  clientID,
				Payload:   w.Bytes(),
			}
			rq := consensus.EncodeRequest(clientID, n.ttcSeq.Add(1), env.Marshal())
			for _, id := range n.membershipIDs() {
				n.conn.Send(id.Addr(), consensus.RequestMessageType, rq)
			}
		}
	}
}

// marshalBlockMsg frames a block for dissemination. The trailing send
// timestamp is the disseminated-stage stamp of the latency trace; it is
// always written (8 fixed bytes) so the frame layout does not depend on
// whether metrics are enabled on either side.
func marshalBlockMsg(channel string, block *fabric.Block) []byte {
	w := wire.NewWriter(256)
	w.PutString(channel)
	w.PutBytes(block.Marshal())
	w.PutInt64(time.Now().UnixNano())
	return w.Bytes()
}

// unmarshalBlockMsg decodes a disseminated block and the sender's send
// timestamp (unix nanos).
func unmarshalBlockMsg(payload []byte) (string, *fabric.Block, int64, error) {
	r := wire.NewReader(payload)
	channel := r.String()
	blockRaw := r.Bytes()
	sentNano := r.Int64()
	if err := r.Finish(); err != nil {
		return "", nil, 0, fmt.Errorf("block message: %w", err)
	}
	block, err := fabric.UnmarshalBlock(blockRaw)
	if err != nil {
		return "", nil, 0, err
	}
	return channel, block, sentNano, nil
}
