// Package core implements the paper's contribution: the BFT-SMaRt ordering
// service for Hyperledger Fabric (Section 5, Figures 4-5).
//
// An OrderingNode is a BFT-SMaRt service replica that receives the totally
// ordered stream of envelopes, demultiplexes it into per-channel block
// cutters, seals block headers sequentially on the node thread, signs them
// on a parallel signing pool, and pushes the signed blocks to every
// registered frontend through a custom replier (instead of replying to the
// submitting client).
//
// A Frontend is the HLF consenter + BFT shim pair: it relays envelopes into
// the ordering cluster via an asynchronous BFT-SMaRt client invocation and
// collects blocks from the nodes, releasing each block once 2f+1 matching
// copies arrived (or f+1 with signature verification enabled - footnote 8
// of the paper).
package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/consensus"
	"repro/internal/cryptoutil"
	"repro/internal/fabric"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Transport message types of the ordering-service layer (>= 64 so they
// never collide with the consensus layer on a shared endpoint).
const (
	// MsgBlock carries a signed block from an ordering node to a frontend.
	MsgBlock uint16 = 64 + iota
	// MsgRegister subscribes a frontend to a node's block dissemination.
	MsgRegister
	// MsgUnregister removes the subscription.
	MsgUnregister
)

// ttcClientPrefix marks time-to-cut marker envelopes; their ClientID is
// "ttc:<node id>". TTC markers flow through consensus like ordinary
// envelopes, which keeps timeout-based block cutting deterministic across
// nodes.
const ttcClientPrefix = "ttc:"

// NodeConfig parameterizes an ordering node.
type NodeConfig struct {
	// Consensus configures the underlying replica (membership, batch
	// size, weights, tentative mode, ...). SelfID names this node.
	Consensus consensus.Config
	// BlockSize is the number of envelopes per block (10 or 100 in the
	// paper's evaluation).
	BlockSize int
	// MaxBlockBytes optionally bounds a block's envelope bytes.
	MaxBlockBytes int
	// BlockTimeout cuts partial blocks via ordered time-to-cut markers;
	// zero disables timeout cutting (the paper's benchmarks drive full
	// blocks).
	BlockTimeout time.Duration
	// SigningWorkers sizes the signing/sending pool (16 in the paper,
	// matching the testbed's hardware threads).
	SigningWorkers int
	// DisableSigning skips ECDSA block signatures entirely (blocks are
	// disseminated unsigned). Used by the Equation (1) ablation to measure
	// the raw ordering rate TP_bftsmart in isolation.
	DisableSigning bool
	// Key signs block headers. Required unless DisableSigning is set.
	Key *cryptoutil.KeyPair
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.BlockSize <= 0 {
		c.BlockSize = 10
	}
	if c.SigningWorkers <= 0 {
		c.SigningWorkers = 16
	}
	return c
}

// chainState is the per-channel application state: exactly the "sequence
// number of the next block and the hash of the previous block" the paper
// calls out as the ordering service's tiny replicated state (Section 5.2),
// plus the channel's block cutter.
type chainState struct {
	nextNumber uint64
	prevHash   cryptoutil.Digest
	cutter     *fabric.BlockCutter
}

// chainSnapshot captures a chain's state for tentative rollback.
type chainSnapshot struct {
	nextNumber uint64
	prevHash   cryptoutil.Digest
	pending    [][]byte
}

// rollbackWindow bounds how many per-sequence snapshots are retained for
// WHEAT's tentative rollback. Tentative overlap never exceeds the pipeline
// depth, so a small window suffices.
const rollbackWindow = 32

// NodeStats exposes ordering-node progress counters.
type NodeStats struct {
	EnvelopesOrdered uint64
	BlocksCut        uint64
	BlocksSigned     uint64
	Rollbacks        uint64
}

// OrderingNode is one member of the ordering cluster. Create with NewNode,
// then Start.
type OrderingNode struct {
	cfg    NodeConfig
	conn   transport.Conn
	signer *cryptoutil.SigningPool

	replica *consensus.Replica

	// chains and history are confined to the replica's event loop (all
	// Application methods run there).
	chains  map[string]*chainState
	history map[int64]map[string]chainSnapshot

	// frontends is written from the event loop (registration messages)
	// and read from signing-pool callbacks.
	mu        sync.Mutex
	frontends map[transport.Addr]struct{}

	ttcSeq atomic.Uint64

	statEnvelopes atomic.Uint64
	statBlocks    atomic.Uint64
	statSigned    atomic.Uint64
	statRollbacks atomic.Uint64

	done    chan struct{}
	wg      sync.WaitGroup
	started atomic.Bool
}

// NewNode creates an ordering node attached to the given transport
// endpoint (which must be joined as the node's consensus address).
func NewNode(cfg NodeConfig, conn transport.Conn) (*OrderingNode, error) {
	cfg = cfg.withDefaults()
	var signer *cryptoutil.SigningPool
	if !cfg.DisableSigning {
		if cfg.Key == nil {
			return nil, errors.New("ordering node: nil signing key")
		}
		var err error
		signer, err = cryptoutil.NewSigningPool(cfg.Key, cfg.SigningWorkers)
		if err != nil {
			return nil, fmt.Errorf("ordering node: %w", err)
		}
	}
	n := &OrderingNode{
		cfg:       cfg,
		conn:      conn,
		signer:    signer,
		chains:    make(map[string]*chainState),
		history:   make(map[int64]map[string]chainSnapshot),
		frontends: make(map[transport.Addr]struct{}),
		done:      make(chan struct{}),
	}
	ccfg := cfg.Consensus
	if ccfg.ValidateRequest == nil {
		ccfg.ValidateRequest = validateEnvelopeOp
	}
	replica, err := consensus.NewReplica(ccfg, n, conn,
		consensus.WithoutClientReplies(),
		consensus.WithExtraMessageHandler(n.onServiceMessage),
	)
	if err != nil {
		signer.Close()
		return nil, fmt.Errorf("ordering node: %w", err)
	}
	n.replica = replica
	return n, nil
}

// validateEnvelopeOp is the request-validation hook: every batch entry must
// be a parseable envelope (the consensus layer refuses to WRITE for a
// proposal containing garbage) or a tagged reconfiguration operation
// (Section 5.2: membership changes flow through the same total order).
func validateEnvelopeOp(op []byte) error {
	if consensus.IsReconfigOp(op) {
		return nil
	}
	_, err := fabric.ChannelOf(op)
	return err
}

// ID returns the node's replica identity.
func (n *OrderingNode) ID() consensus.ReplicaID { return n.cfg.Consensus.SelfID }

// Replica exposes the underlying consensus replica (tests inject faults
// through it).
func (n *OrderingNode) Replica() *consensus.Replica { return n.replica }

// Stats returns progress counters. Safe from any goroutine.
func (n *OrderingNode) Stats() NodeStats {
	return NodeStats{
		EnvelopesOrdered: n.statEnvelopes.Load(),
		BlocksCut:        n.statBlocks.Load(),
		BlocksSigned:     n.statSigned.Load(),
		Rollbacks:        n.statRollbacks.Load(),
	}
}

// Start launches the consensus replica and the time-to-cut ticker.
func (n *OrderingNode) Start() {
	if n.started.Swap(true) {
		return
	}
	n.replica.Start()
	if n.cfg.BlockTimeout > 0 {
		n.wg.Add(1)
		go n.ttcLoop()
	}
}

// Stop shuts the node down.
func (n *OrderingNode) Stop() {
	if !n.started.Load() {
		return
	}
	select {
	case <-n.done:
		return
	default:
	}
	close(n.done)
	n.wg.Wait()
	n.replica.Stop()
	if n.signer != nil {
		n.signer.Close()
	}
}

// ---- consensus.Application --------------------------------------------

var _ consensus.Application = (*OrderingNode)(nil)

// Execute receives the decided envelope batch of one consensus instance:
// the node thread of Figure 5. Envelopes are demultiplexed per channel;
// whenever a cutter reports a full block, the header is sealed sequentially
// and handed to the signing pool.
func (n *OrderingNode) Execute(seq int64, ops [][]byte) {
	n.snapshotForRollback(seq)
	for _, op := range ops {
		channel, client, err := fabric.PeekEnvelope(op)
		if err != nil {
			continue // cannot happen for validated batches; defensive
		}
		chain := n.chain(channel)
		if strings.HasPrefix(client, ttcClientPrefix) {
			n.handleTTC(chain, channel, op)
			continue
		}
		n.statEnvelopes.Add(1)
		if batch := chain.cutter.Append(op); batch != nil {
			n.sealBlock(channel, chain, batch)
		}
	}
}

func (n *OrderingNode) chain(channel string) *chainState {
	chain, ok := n.chains[channel]
	if !ok {
		chain = &chainState{
			cutter: fabric.NewBlockCutter(fabric.CutterConfig{
				MaxEnvelopes: n.cfg.BlockSize,
				MaxBytes:     n.cfg.MaxBlockBytes,
			}),
		}
		n.chains[channel] = chain
	}
	return chain
}

// handleTTC processes an ordered time-to-cut marker: cut a partial block if
// the marker still refers to the chain's current block number and envelopes
// are pending. Deterministic because every node processes the same marker
// at the same position in the total order.
func (n *OrderingNode) handleTTC(chain *chainState, channel string, op []byte) {
	env, err := fabric.UnmarshalEnvelope(op)
	if err != nil || len(env.Payload) != 8 {
		return
	}
	r := wire.NewReader(env.Payload)
	target := r.Uint64()
	if r.Err() != nil || target != chain.nextNumber {
		return // stale marker: the block was already cut by size
	}
	if batch := chain.cutter.Cut(); batch != nil {
		n.sealBlock(channel, chain, batch)
	}
}

// sealBlock builds the next block header (sequentially - the only ordering
// state is the previous header, exactly as Section 5.1 argues) and submits
// it to the signing/sending pool.
func (n *OrderingNode) sealBlock(channel string, chain *chainState, batch [][]byte) {
	block := fabric.NewBlock(chain.nextNumber, chain.prevHash, batch)
	chain.nextNumber++
	chain.prevHash = block.Header.Hash()
	n.statBlocks.Add(1)

	headerHash := block.Header.Hash()
	signerID := string(n.ID().Addr())
	if n.cfg.DisableSigning {
		n.statSigned.Add(1)
		n.disseminate(channel, block)
		return
	}
	err := n.signer.Sign(headerHash, func(sig []byte, err error) {
		if err != nil {
			return
		}
		block.Signatures = []fabric.BlockSignature{{SignerID: signerID, Signature: sig}}
		n.statSigned.Add(1)
		n.disseminate(channel, block)
	})
	if err != nil {
		return // pool closed during shutdown
	}
}

// disseminate sends a signed block to every registered frontend (the
// custom replier of Section 5.1). Runs on signing-pool workers.
func (n *OrderingNode) disseminate(channel string, block *fabric.Block) {
	payload := marshalBlockMsg(channel, block)
	n.mu.Lock()
	targets := make([]transport.Addr, 0, len(n.frontends))
	for addr := range n.frontends {
		targets = append(targets, addr)
	}
	n.mu.Unlock()
	for _, addr := range targets {
		n.conn.Send(addr, MsgBlock, payload)
	}
}

// Rollback undoes tentative executions beyond seq (WHEAT leader changes).
func (n *OrderingNode) Rollback(seq int64) {
	snaps, ok := n.history[seq+1]
	if !ok {
		// Nothing was executed after seq (or the window was exceeded,
		// which cannot happen within the consensus pipeline depth).
		n.statRollbacks.Add(1)
		return
	}
	for channel, snap := range snaps {
		chain := n.chain(channel)
		chain.nextNumber = snap.nextNumber
		chain.prevHash = snap.prevHash
		chain.cutter.Cut() // drop pending
		for _, env := range snap.pending {
			chain.cutter.Append(env)
		}
	}
	for s := range n.history {
		if s > seq {
			delete(n.history, s)
		}
	}
	n.statRollbacks.Add(1)
}

// snapshotForRollback records every chain's state before executing seq.
func (n *OrderingNode) snapshotForRollback(seq int64) {
	snaps := make(map[string]chainSnapshot, len(n.chains))
	for channel, chain := range n.chains {
		snaps[channel] = chainSnapshot{
			nextNumber: chain.nextNumber,
			prevHash:   chain.prevHash,
			pending:    chain.cutter.PendingSnapshot(),
		}
	}
	n.history[seq] = snaps
	delete(n.history, seq-rollbackWindow)
}

// Snapshot serializes the per-channel chain state (Section 5.2: a few
// dozen bytes per channel plus any uncut envelopes).
func (n *OrderingNode) Snapshot() []byte {
	w := wire.NewWriter(64)
	w.PutUvarint(uint64(len(n.chains)))
	channels := make([]string, 0, len(n.chains))
	for ch := range n.chains {
		channels = append(channels, ch)
	}
	sort.Strings(channels)
	for _, ch := range channels {
		chain := n.chains[ch]
		w.PutString(ch)
		w.PutUint64(chain.nextNumber)
		w.PutRaw(chain.prevHash[:])
		w.PutBytesSlice(chain.cutter.PendingSnapshot())
	}
	return w.Bytes()
}

// Restore replaces the chain state from a snapshot (state transfer).
func (n *OrderingNode) Restore(snapshot []byte, _ int64) {
	r := wire.NewReader(snapshot)
	count := r.Uvarint()
	if count > 1<<16 {
		return
	}
	chains := make(map[string]*chainState, count)
	for i := uint64(0); i < count; i++ {
		channel := r.String()
		chain := &chainState{
			nextNumber: r.Uint64(),
			cutter: fabric.NewBlockCutter(fabric.CutterConfig{
				MaxEnvelopes: n.cfg.BlockSize,
				MaxBytes:     n.cfg.MaxBlockBytes,
			}),
		}
		copy(chain.prevHash[:], r.Raw(cryptoutil.DigestSize))
		for _, env := range r.BytesSlice() {
			chain.cutter.Append(env)
		}
		chains[channel] = chain
	}
	if r.Finish() != nil {
		return
	}
	n.chains = chains
	n.history = make(map[int64]map[string]chainSnapshot)
}

// ---- frontend registration and TTC ------------------------------------

// onServiceMessage handles ordering-layer messages arriving on the
// replica's endpoint (runs on the event loop).
func (n *OrderingNode) onServiceMessage(m transport.Message) {
	switch m.Type {
	case MsgRegister:
		n.mu.Lock()
		n.frontends[m.From] = struct{}{}
		n.mu.Unlock()
	case MsgUnregister:
		n.mu.Lock()
		delete(n.frontends, m.From)
		n.mu.Unlock()
	}
}

// ttcLoop submits time-to-cut markers for channels whose cutters have aged
// pending envelopes. Markers are ordered through consensus, so cutting
// stays deterministic; every node may submit markers, and stale ones are
// no-ops.
func (n *OrderingNode) ttcLoop() {
	defer n.wg.Done()
	interval := n.cfg.BlockTimeout / 2
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	clientID := ttcClientPrefix + strconv.Itoa(int(n.ID()))

	type chainProbe struct {
		channel string
		number  uint64
	}
	for {
		select {
		case <-n.done:
			return
		case <-ticker.C:
		}
		var due []chainProbe
		now := time.Now()
		n.replica.Inspect(func() {
			for channel, chain := range n.chains {
				oldest, ok := chain.cutter.OldestPending()
				if ok && now.Sub(oldest) >= n.cfg.BlockTimeout {
					due = append(due, chainProbe{channel: channel, number: chain.nextNumber})
				}
			}
		})
		for _, probe := range due {
			w := wire.NewWriter(8)
			w.PutUint64(probe.number)
			env := &fabric.Envelope{
				ChannelID: probe.channel,
				ClientID:  clientID,
				Payload:   w.Bytes(),
			}
			rq := consensus.EncodeRequest(clientID, n.ttcSeq.Add(1), env.Marshal())
			for _, id := range n.cfg.Consensus.Replicas {
				n.conn.Send(id.Addr(), consensus.RequestMessageType, rq)
			}
		}
	}
}

// marshalBlockMsg frames a block for dissemination.
func marshalBlockMsg(channel string, block *fabric.Block) []byte {
	w := wire.NewWriter(256)
	w.PutString(channel)
	w.PutBytes(block.Marshal())
	return w.Bytes()
}

// unmarshalBlockMsg decodes a disseminated block.
func unmarshalBlockMsg(payload []byte) (string, *fabric.Block, error) {
	r := wire.NewReader(payload)
	channel := r.String()
	blockRaw := r.Bytes()
	if err := r.Finish(); err != nil {
		return "", nil, fmt.Errorf("block message: %w", err)
	}
	block, err := fabric.UnmarshalBlock(blockRaw)
	if err != nil {
		return "", nil, err
	}
	return channel, block, nil
}
