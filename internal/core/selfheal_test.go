package core

import (
	"os"
	"testing"
	"time"

	"repro/internal/fabric"
)

// flipByteAt XORs one bit at off in path — at-rest corruption injected
// underneath the storage stack, the way media rots.
func flipByteAt(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatalf("read: %v", err)
	}
	b[0] ^= 0x01
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatalf("write: %v", err)
	}
}

// TestScrubSelfHealsFromPeers is the end-to-end self-healing path: a
// durable block record on one node is silently corrupted at rest, a
// triggered scrub detects it through the CRC read path, fetches the block
// from peers under the f+1 verified-signature rule, rewrites the damaged
// segment, and the node's durable copy converges back to the canonical
// chain.
func TestScrubSelfHealsFromPeers(t *testing.T) {
	c := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 2, DataDir: t.TempDir()})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch1")

	const envs = 10
	for i := 0; i < envs; i++ {
		if st := fe.Broadcast(mkEnvelope("ch1", i, 64)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast %d: %v", i, st)
		}
	}
	blocks := collectBlocks(t, stream, envs, 10*time.Second)
	if len(blocks) < 3 {
		t.Fatalf("only %d blocks delivered", len(blocks))
	}

	// Wait until the victim has durably persisted the block we will rot.
	victim := c.Nodes[2]
	deadline := time.Now().Add(10 * time.Second)
	for victim.PersistWatermark("ch1") < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("node 2 watermark stuck at %d", victim.PersistWatermark("ch1"))
		}
		time.Sleep(20 * time.Millisecond)
	}

	path, off, length, err := victim.BlockSpan("ch1", 1)
	if err != nil {
		t.Fatalf("block span: %v", err)
	}
	flipByteAt(t, path, off+length-1)
	if _, err := victim.DurableBlock("ch1", 1); err == nil {
		t.Fatal("durable read of the rotted record succeeded; corruption did not land")
	}

	victim.TriggerScrub()
	deadline = time.Now().Add(15 * time.Second)
	for {
		b, err := victim.DurableBlock("ch1", 1)
		if err == nil {
			if b.Header.Hash() != blocks[1].Header.Hash() {
				t.Fatalf("healed block diverges from the delivered chain")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("block never self-healed: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	last := victim.LastScrub()
	if len(last.Corrupt) == 0 || len(last.Repaired) == 0 {
		t.Fatalf("scrub result %+v recorded no detection/repair", last)
	}
}

// TestScrubRepairAnchoredWithoutRegistry covers the registry-less repair
// path multi-process deployments use (cmd/ordernode distributes no
// verification keys, so Consensus.Registry is nil): after a restart the
// ledger's in-memory window is empty, so a block rotted on disk post-boot
// cannot be served from memory — the scrubber must fetch it from a peer
// and authenticate the copy by hash-anchoring into the intact successor
// record instead of f+1 signatures.
func TestScrubRepairAnchoredWithoutRegistry(t *testing.T) {
	c := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 2, DataDir: t.TempDir()})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch1")

	const envs = 10
	for i := 0; i < envs; i++ {
		if st := fe.Broadcast(mkEnvelope("ch1", i, 64)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast %d: %v", i, st)
		}
	}
	blocks := collectBlocks(t, stream, envs, 10*time.Second)
	if len(blocks) < 3 {
		t.Fatalf("only %d blocks delivered", len(blocks))
	}

	const victimID = 2
	waitWatermark := func() {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for c.Nodes[victimID].PersistWatermark("ch1") < 3 {
			if time.Now().After(deadline) {
				t.Fatalf("node %d watermark stuck at %d", victimID,
					c.Nodes[victimID].PersistWatermark("ch1"))
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitWatermark()
	c.KillNode(victimID)
	if err := c.RestartNode(victimID); err != nil {
		t.Fatalf("restart node %d: %v", victimID, err)
	}
	victim := c.Nodes[victimID]
	waitWatermark()
	// Registry-less mode: repair must fall back to hash-chain anchoring.
	victim.cfg.Consensus.Registry = nil

	path, off, length, err := victim.BlockSpan("ch1", 1)
	if err != nil {
		t.Fatalf("block span: %v", err)
	}
	flipByteAt(t, path, off+length-1)
	if _, err := victim.DurableBlock("ch1", 1); err == nil {
		t.Fatal("durable read of the rotted record succeeded; corruption did not land")
	}
	// The restarted ledger pages everything from disk (empty in-memory
	// window), so the repair can only come from a peer, anchored into the
	// successor's PrevHash.
	victim.TriggerScrub()
	deadline := time.Now().Add(15 * time.Second)
	for {
		b, err := victim.DurableBlock("ch1", 1)
		if err == nil {
			if b.Header.Hash() != blocks[1].Header.Hash() {
				t.Fatalf("healed block diverges from the delivered chain")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("block never self-healed without a registry: %v", err)
		}
		victim.TriggerScrub()
		time.Sleep(50 * time.Millisecond)
	}
}

// TestScrubRepairDisabledLeavesCorruption proves the repair path (not the
// detection path) does the healing: with the teeth switch on, the same
// scrub detects the rot but must NOT repair it.
func TestScrubRepairDisabledLeavesCorruption(t *testing.T) {
	SetScrubRepairDisabled(true)
	defer SetScrubRepairDisabled(false)

	c := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 2, DataDir: t.TempDir()})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch1")
	for i := 0; i < 10; i++ {
		if st := fe.Broadcast(mkEnvelope("ch1", i, 64)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast %d: %v", i, st)
		}
	}
	collectBlocks(t, stream, 10, 10*time.Second)

	victim := c.Nodes[1]
	deadline := time.Now().Add(10 * time.Second)
	for victim.PersistWatermark("ch1") < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("node 1 watermark stuck at %d", victim.PersistWatermark("ch1"))
		}
		time.Sleep(20 * time.Millisecond)
	}
	path, off, length, err := victim.BlockSpan("ch1", 1)
	if err != nil {
		t.Fatalf("block span: %v", err)
	}
	flipByteAt(t, path, off+length-1)

	victim.TriggerScrub()
	deadline = time.Now().Add(5 * time.Second)
	for {
		last := victim.LastScrub()
		if len(last.Corrupt) > 0 {
			if len(last.Repaired) != 0 {
				t.Fatalf("scrub repaired %+v with repair disabled", last.Repaired)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scrub never detected the rotted record")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if _, err := victim.DurableBlock("ch1", 1); err == nil {
		t.Fatal("record readable again despite repair being disabled")
	}
}
