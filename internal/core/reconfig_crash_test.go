package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/fabric"
)

// restartWithStatic boots node i from its data directory with an explicit
// static membership — simulating an operator whose config file was never
// updated after a reconfiguration. The durable membership record (when the
// safe path is on) must override it.
func restartWithStatic(c *Cluster, i int, members []consensus.ReplicaID) (*OrderingNode, error) {
	id := c.replicas[i]
	conn, err := c.Network.Join(id.Addr())
	if err != nil {
		return nil, err
	}
	node, err := NewNode(NodeConfig{
		Consensus: consensus.Config{
			SelfID:   id,
			Replicas: members,
			Key:      c.keys[i],
			Registry: c.Registry,
		},
		BlockSize: 2,
		Key:       c.keys[i],
		DataDir:   c.NodeDataDir(i),
	}, conn)
	if err != nil {
		c.Network.Disconnect(id.Addr())
		return nil, err
	}
	c.Nodes[i] = node
	node.Start()
	return node, nil
}

// waitMembers polls a node's membership view until it has want members.
func waitMembers(t *testing.T, n *OrderingNode, want int, within time.Duration) consensus.MembershipView {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		v := n.MembershipView()
		if len(v.Members) == want {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %d sees %d members at epoch %d, want %d",
				int(n.ID()), len(v.Members), v.Epoch, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestReconfigSurvivesCrashBeforeCheckpoint covers the first reconfig crash
// window: a node crashes after applying an ordered add but before any
// checkpoint covers the decision, and is restarted with its OLD static
// membership. The durable path (membership record + decision-log replay)
// must recover it into the new five-member group, not the stale config.
func TestReconfigSurvivesCrashBeforeCheckpoint(t *testing.T) {
	c := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 2, DataDir: t.TempDir()})
	original := append([]consensus.ReplicaID(nil), c.Replicas()...)
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch1")
	submit := func(from, count int) {
		t.Helper()
		for i := from; i < from+count; i++ {
			if st := fe.Broadcast(mkEnvelope("ch1", i, 32)); st != fabric.StatusSuccess {
				t.Fatalf("broadcast %d: %v", i, st)
			}
		}
		collectBlocks(t, stream, count, 15*time.Second)
	}

	submit(0, 4) // blocks 0..1
	ni, err := c.AddNode()
	if err != nil {
		t.Fatalf("add node: %v", err)
	}
	peerEpoch := c.Nodes[0].MembershipView().Epoch
	if peerEpoch == 0 {
		t.Fatal("membership epoch did not advance on the ordered add")
	}

	// Crash a follower right after the apply — with the default checkpoint
	// interval no checkpoint covers the reconfig decision yet — and bring
	// it back with the pre-reconfig static membership.
	c.KillNode(3)
	node, err := restartWithStatic(c, 3, original)
	if err != nil {
		t.Fatalf("restart with stale static config: %v", err)
	}
	v := waitMembers(t, node, 5, 10*time.Second)
	if !containsReplica(v.Members, c.replicas[ni]) {
		t.Fatalf("recovered view %v does not include the added replica %d", v.Members, int(c.replicas[ni]))
	}
	if v.Epoch == 0 {
		t.Fatal("recovered membership epoch is 0; the reconfig apply was not durable")
	}

	// The recovered node participates in the five-node group.
	submit(4, 6) // blocks 2..4
	led := waitLedgerHeight(t, node, "ch1", 5, 15*time.Second)
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("recovered node's chain: %v", err)
	}
}

// TestJoinerCrashMidCatchUpRejoins covers the second reconfig crash window:
// the joining node is killed while still catching up (admitted, but its
// durable chain behind the group) and restarted from its half-transferred
// data directory. It must come back inside the new group — the checkpoint
// it recovers from carries the membership epoch — and finish catching up.
func TestJoinerCrashMidCatchUpRejoins(t *testing.T) {
	c := testCluster(t, ClusterConfig{
		Nodes:              4,
		BlockSize:          2,
		DataDir:            t.TempDir(),
		CheckpointInterval: 4, // several checkpoints while the joiner is down
	})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch1")
	submit := func(from, count int) {
		t.Helper()
		for i := from; i < from+count; i++ {
			if st := fe.Broadcast(mkEnvelope("ch1", i, 32)); st != fabric.StatusSuccess {
				t.Fatalf("broadcast %d: %v", i, st)
			}
		}
		collectBlocks(t, stream, count, 15*time.Second)
	}

	submit(0, 12) // blocks 0..5
	ni, err := c.AddNode()
	if err != nil {
		t.Fatalf("add node: %v", err)
	}
	// Kill the joiner the moment it is admitted: its state transfer and
	// block back-fill are (at best) partially applied on disk.
	c.KillNode(ni)

	submit(12, 8) // blocks 6..9, ordered while the joiner is down

	if err := c.RestartNode(ni); err != nil {
		t.Fatalf("re-join after crash: %v", err)
	}
	v := waitMembers(t, c.Nodes[ni], 5, 10*time.Second)
	if !containsReplica(v.Members, c.replicas[ni]) {
		t.Fatalf("re-joined view %v does not include the node itself", v.Members)
	}

	// Fresh traffic drives state transfer; the re-joined node must reach
	// the full contiguous chain.
	submit(20, 6) // blocks 10..12
	led := waitLedgerHeight(t, c.Nodes[ni], "ch1", 13, 30*time.Second)
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("re-joined node's chain: %v", err)
	}
}

// TestUnsafeMembershipRecoveryLosesMember is the teeth test: with the
// durable-membership path artificially disabled, the same crash that
// TestReconfigSurvivesCrashBeforeCheckpoint recovers from silently loses
// the added member — the node restarts into its stale static group. Turning
// the safe path back on heals the same data directory.
func TestUnsafeMembershipRecoveryLosesMember(t *testing.T) {
	c := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 2, DataDir: t.TempDir()})
	original := append([]consensus.ReplicaID(nil), c.Replicas()...)
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch1")
	for i := 0; i < 4; i++ {
		if st := fe.Broadcast(mkEnvelope("ch1", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast %d: %v", i, st)
		}
	}
	collectBlocks(t, stream, 4, 15*time.Second)

	ni, err := c.AddNode()
	if err != nil {
		t.Fatalf("add node: %v", err)
	}
	added := c.replicas[ni]
	c.KillNode(3)

	// Unsafe mode: recovery ignores the membership record and skips
	// replayed reconfig decisions, as if the apply had never been durable.
	consensus.SetUnsafeMembershipRecovery(true)
	defer consensus.SetUnsafeMembershipRecovery(false)
	node, err := restartWithStatic(c, 3, original)
	if err != nil {
		t.Fatalf("unsafe restart: %v", err)
	}
	v := node.MembershipView()
	if containsReplica(v.Members, added) || len(v.Members) != 4 || v.Epoch != 0 {
		t.Fatalf("unsafe recovery kept the reconfig (members %v, epoch %d); the teeth switch is not biting",
			v.Members, v.Epoch)
	}

	// Same directory, safe path: the durable record restores the group.
	c.KillNode(3)
	consensus.SetUnsafeMembershipRecovery(false)
	node, err = restartWithStatic(c, 3, original)
	if err != nil {
		t.Fatalf("safe restart: %v", err)
	}
	v = waitMembers(t, node, 5, 10*time.Second)
	if !containsReplica(v.Members, added) || v.Epoch == 0 {
		t.Fatalf("safe recovery lost the reconfig (members %v, epoch %d)", v.Members, v.Epoch)
	}
}

// TestRemovedNodeCannotRejoin: a gracefully removed node's durable
// membership record no longer lists it, so a restart — even with a stale
// static config that still includes it — must fail with the removal error
// instead of rejoining the group.
func TestRemovedNodeCannotRejoin(t *testing.T) {
	c := testCluster(t, ClusterConfig{Nodes: 5, BlockSize: 2, DataDir: t.TempDir()})
	original := append([]consensus.ReplicaID(nil), c.Replicas()...)
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch1")
	for i := 0; i < 4; i++ {
		if st := fe.Broadcast(mkEnvelope("ch1", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast %d: %v", i, st)
		}
	}
	collectBlocks(t, stream, 4, 15*time.Second)

	// Order the removal and wait until node 4 itself applied it — its own
	// durable membership record must exclude it before the crash, or the
	// restart below would test a half-applied removal.
	if err := c.Reconfigure(consensus.ReconfigOp{
		Kind: consensus.ReconfigRemove, Replica: c.replicas[4],
	}, 15*time.Second); err != nil {
		t.Fatalf("order removal: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for containsReplica(c.Nodes[4].MembershipView().Members, c.replicas[4]) {
		if time.Now().After(deadline) {
			t.Fatal("node 4 never applied its own removal")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The graceful leave: drain, stop, release the transport identity.
	if err := c.RemoveNode(4); err != nil {
		t.Fatalf("remove node 4: %v", err)
	}
	if err := c.RestartNode(4); err == nil {
		t.Fatal("cluster restarted a removed node")
	}
	_, err := restartWithStatic(c, 4, original)
	if err == nil {
		t.Fatal("a removed node rejoined with its stale static config")
	}
	if !strings.Contains(err.Error(), "no longer includes") {
		t.Fatalf("restart of removed node failed with %v, want the durable-membership removal error", err)
	}
}
