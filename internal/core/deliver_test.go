package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/fabric"
	"repro/internal/transport"
)

// collectStream reads blocks from a seekable stream until want blocks
// arrived, asserting they are consecutive starting at first.
func collectStream(t *testing.T, stream *fabric.BlockStream, first uint64, want int, within time.Duration) []*fabric.Block {
	t.Helper()
	deadline := time.After(within)
	blocks := make([]*fabric.Block, 0, want)
	for len(blocks) < want {
		select {
		case b, ok := <-stream.Blocks():
			if !ok {
				t.Fatalf("stream closed after %d/%d blocks (err %v)", len(blocks), want, stream.Err())
			}
			if got, exp := b.Header.Number, first+uint64(len(blocks)); got != exp {
				t.Fatalf("block %d delivered at position %d (want block %d): gap or duplicate", got, len(blocks), exp)
			}
			blocks = append(blocks, b)
		case <-deadline:
			t.Fatalf("timed out with %d/%d blocks", len(blocks), want)
		}
	}
	return blocks
}

// TestDeliverSeekOldestReplaysThenTails: a frontend that saw the whole
// chain serves Seek(Oldest) from its retained window, then continues with
// live blocks, in order, no gaps or duplicates.
func TestDeliverSeekOldestReplaysThenTails(t *testing.T) {
	c := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 2})
	fe := testFrontend(t, c, "frontend-0", false)
	live := deliverNewest(t, fe, "ch")

	for i := 0; i < 8; i++ {
		if st := fe.Broadcast(mkEnvelope("ch", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %s", st)
		}
	}
	collectBlocks(t, live, 8, 10*time.Second) // blocks 0..3 sealed

	stream, err := fe.Deliver("ch", fabric.DeliverOldest())
	if err != nil {
		t.Fatalf("deliver oldest: %v", err)
	}
	defer stream.Cancel()
	replayed := collectStream(t, stream, 0, 4, 10*time.Second)
	if err := fabric.VerifyChain(replayed); err != nil {
		t.Fatalf("replayed chain: %v", err)
	}

	// New traffic continues on the same stream with no seam.
	for i := 8; i < 12; i++ {
		if st := fe.Broadcast(mkEnvelope("ch", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %s", st)
		}
	}
	collectStream(t, stream, 4, 2, 10*time.Second)
}

// TestDeliverSeekSpecifiedPastHeadBlocksUntilSealed: a seek above the
// current head delivers nothing until that block exists, then starts
// exactly there.
func TestDeliverSeekSpecifiedPastHeadBlocksUntilSealed(t *testing.T) {
	c := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 2})
	fe := testFrontend(t, c, "frontend-0", false)
	live := deliverNewest(t, fe, "ch")

	for i := 0; i < 4; i++ {
		if st := fe.Broadcast(mkEnvelope("ch", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %s", st)
		}
	}
	collectBlocks(t, live, 4, 10*time.Second) // head is block 1

	stream, err := fe.Deliver("ch", fabric.DeliverFrom(3))
	if err != nil {
		t.Fatalf("deliver from 3: %v", err)
	}
	defer stream.Cancel()
	select {
	case b := <-stream.Blocks():
		t.Fatalf("block %d delivered before the seek position was sealed", b.Header.Number)
	case <-time.After(200 * time.Millisecond):
	}
	for i := 4; i < 10; i++ {
		if st := fe.Broadcast(mkEnvelope("ch", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %s", st)
		}
	}
	collectStream(t, stream, 3, 2, 10*time.Second) // 2 and below never appear
}

// TestDeliverStopPositionClosesStream: a stop position delivers through
// the stop block and then closes the stream cleanly.
func TestDeliverStopPositionClosesStream(t *testing.T) {
	c := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 2})
	fe := testFrontend(t, c, "frontend-0", false)
	live := deliverNewest(t, fe, "ch")
	for i := 0; i < 8; i++ {
		if st := fe.Broadcast(mkEnvelope("ch", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %s", st)
		}
	}
	collectBlocks(t, live, 8, 10*time.Second)

	stream, err := fe.Deliver("ch", fabric.DeliverOldest().Through(1))
	if err != nil {
		t.Fatalf("deliver oldest..1: %v", err)
	}
	collectStream(t, stream, 0, 2, 10*time.Second)
	select {
	case b, ok := <-stream.Blocks():
		if ok {
			t.Fatalf("block %d delivered past the stop position", b.Header.Number)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not close after the stop position")
	}
	if err := stream.Err(); err != nil {
		t.Fatalf("stopped stream ended with error: %v", err)
	}
}

// TestDeliverSeekValidation: malformed seeks and unserved channels are
// rejected with the typed errors the wire protocol maps onto statuses.
func TestDeliverSeekValidation(t *testing.T) {
	net := transport.NewInProcNetwork(transport.InProcConfig{})
	defer net.Close()
	newFakeNodes(t, net, 4, nil)
	fe, err := NewFrontend(FrontendConfig{
		ID:       "fe",
		Replicas: ids4(),
		Channels: []string{"served"},
	}, net)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	defer fe.Close()

	if _, err := fe.Deliver("served", fabric.DeliverFrom(5).Through(3)); !errors.Is(err, fabric.ErrBadSeek) {
		t.Fatalf("stop<start accepted: %v", err)
	}
	if _, err := fe.Deliver("other", fabric.DeliverNewest()); !errors.Is(err, fabric.ErrChannelNotFound) {
		t.Fatalf("unserved channel accepted: %v", err)
	}
	if st := fe.Broadcast(mkEnvelope("other", 0, 16)); st != fabric.StatusNotFound {
		t.Fatalf("broadcast to unserved channel acked %s, want NOT_FOUND", st)
	}
	if st := fe.Broadcast(nil); st != fabric.StatusBadRequest {
		t.Fatalf("nil envelope acked %s, want BAD_REQUEST", st)
	}
}

// TestBroadcastBackpressureWindow: with a full inflight window Broadcast
// answers SERVICE_UNAVAILABLE after its timeout instead of buffering, and
// the window frees once the envelopes come back in a released block.
func TestBroadcastBackpressureWindow(t *testing.T) {
	net := transport.NewInProcNetwork(transport.InProcConfig{})
	defer net.Close()
	nodes := newFakeNodes(t, net, 4, nil)
	fe, err := NewFrontend(FrontendConfig{
		ID:               "fe",
		Replicas:         ids4(),
		MaxInflight:      2,
		BroadcastTimeout: 50 * time.Millisecond,
	}, net)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	defer fe.Close()
	stream := deliverNewest(t, fe, "ch")

	envs := make([]*fabric.Envelope, 3)
	for i := range envs {
		envs[i] = mkEnvelope("ch", i, 32)
	}
	if st := fe.Broadcast(envs[0]); st != fabric.StatusSuccess {
		t.Fatalf("broadcast 0: %s", st)
	}
	if st := fe.Broadcast(envs[1]); st != fabric.StatusSuccess {
		t.Fatalf("broadcast 1: %s", st)
	}
	// No node releases anything: the window is full.
	if st := fe.Broadcast(envs[2]); st != fabric.StatusServiceUnavailable {
		t.Fatalf("broadcast with full window acked %s, want SERVICE_UNAVAILABLE", st)
	}
	// A released block carrying the two envelopes frees the window.
	block := fabric.NewBlock(0, cryptoutil.Digest{}, [][]byte{envs[0].Marshal(), envs[1].Marshal()})
	for i := 0; i < 3; i++ {
		nodes.send(t, i, "ch", block, "fe")
	}
	awaitBlock(t, stream, 5*time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := fe.Broadcast(envs[2]); st == fabric.StatusSuccess {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("window never freed after delivery")
		}
	}
}

// fetchServer answers FetchBlocks requests from one fake node's endpoint
// with a canned chain.
func serveFakeFetch(t *testing.T, conn transport.Conn, chain []*fabric.Block) {
	t.Helper()
	go func() {
		for m := range conn.Inbox() {
			if m.Type != MsgFetchRequest {
				continue
			}
			req, err := unmarshalFetchRequest(m.Payload)
			if err != nil {
				continue
			}
			resp := fetchResponse{ReqID: req.ReqID, From: req.From}
			for _, b := range chain {
				n := b.Header.Number
				if n >= req.From && n < req.To {
					resp.Blocks = append(resp.Blocks, b.Marshal())
				}
			}
			conn.Send(m.From, MsgFetchResponse, resp.marshal())
		}
	}()
}

// TestDeliverFetchRejectsForgedHistory: a Byzantine node serving a forged
// (but internally consistent) history cannot poison a historical seek —
// the range must link into the quorum-released anchor, so the frontend
// discards the forgery and takes the honest copy from the next peer.
func TestDeliverFetchRejectsForgedHistory(t *testing.T) {
	net := transport.NewInProcNetwork(transport.InProcConfig{})
	defer net.Close()
	nodes := newFakeNodes(t, net, 4, nil)

	// The real chain 0..4; the frontend will see only block 4 live.
	real := make([]*fabric.Block, 5)
	var prev cryptoutil.Digest
	for i := range real {
		real[i] = fabric.NewBlock(uint64(i), prev, [][]byte{feEnv(i)})
		prev = real[i].Header.Hash()
	}
	// A forged prefix: internally linked, same numbering, different
	// content, so it cannot link into block 4's PrevHash.
	forged := make([]*fabric.Block, 4)
	prev = cryptoutil.Digest{}
	for i := range forged {
		forged[i] = fabric.NewBlock(uint64(i), prev, [][]byte{feEnv(1000 + i)})
		prev = forged[i].Header.Hash()
	}

	serveFakeFetch(t, nodes.conns[0], forged)
	serveFakeFetch(t, nodes.conns[1], real[:4])
	// Nodes 2 and 3 answer (emptily) rather than staying silent, so the
	// frontend's head probes fail fast instead of timing out.
	serveFakeFetch(t, nodes.conns[2], nil)
	serveFakeFetch(t, nodes.conns[3], nil)

	fe, err := NewFrontend(FrontendConfig{ID: "fe", Replicas: ids4()}, net)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	defer fe.Close()

	stream, err := fe.Deliver("ch", fabric.DeliverOldest())
	if err != nil {
		t.Fatalf("deliver: %v", err)
	}
	defer stream.Cancel()
	// Release block 4 through a quorum: this anchors the fetch. Nodes 2
	// and 3 do not serve fetches at all (their inboxes drain nothing), so
	// the frontend must succeed via node 1 after rejecting node 0.
	for i := 0; i < 3; i++ {
		nodes.send(t, i, "ch", real[4], "fe")
	}
	blocks := collectStream(t, stream, 0, 5, 20*time.Second)
	if err := fabric.VerifyChain(blocks); err != nil {
		t.Fatalf("delivered chain: %v", err)
	}
	for i, b := range blocks[:4] {
		if b.Header.Hash() != real[i].Header.Hash() {
			t.Fatalf("block %d is not the honest copy", i)
		}
	}
}

// TestDeliverSeekOldestMidChainFrontendFetches: a frontend attached to a
// durable cluster after N blocks were sealed serves Seek(Oldest) by
// fetching 0..N-1 from the nodes' durable ledgers, then tails live blocks
// seamlessly.
func TestDeliverSeekOldestMidChainFrontendFetches(t *testing.T) {
	c := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 2, DataDir: t.TempDir()})
	fe1 := testFrontend(t, c, "frontend-1", false)
	live1 := deliverNewest(t, fe1, "ch")
	for i := 0; i < 10; i++ {
		if st := fe1.Broadcast(mkEnvelope("ch", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %s", st)
		}
	}
	collectBlocks(t, live1, 10, 10*time.Second) // blocks 0..4
	for i := range c.Nodes {
		waitLedgerHeight(t, c.Nodes[i], "ch", 5, 5*time.Second)
	}

	// A second frontend joins mid-chain: its history is empty, so the
	// seek anchors on the first live block and back-fills 0..4 from the
	// nodes.
	fe2 := testFrontend(t, c, "frontend-2", false)
	stream, err := fe2.Deliver("ch", fabric.DeliverOldest())
	if err != nil {
		t.Fatalf("deliver oldest: %v", err)
	}
	defer stream.Cancel()
	for i := 10; i < 14; i++ {
		if st := fe1.Broadcast(mkEnvelope("ch", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %s", st)
		}
	}
	blocks := collectStream(t, stream, 0, 7, 20*time.Second)
	if err := fabric.VerifyChain(blocks); err != nil {
		t.Fatalf("stitched chain: %v", err)
	}
}

// TestDeliverSeekOldestAcrossFullClusterRestart is the acceptance
// scenario: after a full-cluster stop and restart from --data-dir, a
// fresh frontend's Seek(Oldest) yields blocks 0..N-1 from durable storage
// followed by live blocks, in order, no gaps or duplicates.
func TestDeliverSeekOldestAcrossFullClusterRestart(t *testing.T) {
	dataDir := t.TempDir()
	c := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 2, DataDir: dataDir})
	fe := testFrontend(t, c, "frontend-a", false)
	live := deliverNewest(t, fe, "ch")
	const sealed = 6
	for i := 0; i < sealed*2; i++ {
		if st := fe.Broadcast(mkEnvelope("ch", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %s", st)
		}
	}
	collectBlocks(t, live, sealed*2, 10*time.Second) // blocks 0..5
	for i := range c.Nodes {
		waitLedgerHeight(t, c.Nodes[i], "ch", sealed, 5*time.Second)
	}
	fe.Close()
	c.Stop() // full-cluster stop: only the data directories survive

	c2 := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 2, DataDir: dataDir})
	fe2 := testFrontend(t, c2, "frontend-b", false)
	stream, err := fe2.Deliver("ch", fabric.DeliverOldest())
	if err != nil {
		t.Fatalf("deliver oldest after restart: %v", err)
	}
	defer stream.Cancel()
	// New traffic provides the anchor block and the live tail.
	for i := sealed * 2; i < sealed*2+4; i++ {
		if st := fe2.Broadcast(mkEnvelope("ch", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast after restart: %s", st)
		}
	}
	blocks := collectStream(t, stream, 0, sealed+2, 30*time.Second)
	if err := fabric.VerifyChain(blocks); err != nil {
		t.Fatalf("replayed chain across restart: %v", err)
	}
	if blocks[0].Header.Number != 0 || blocks[sealed-1].Header.Number != sealed-1 {
		t.Fatalf("replay did not cover the durable chain")
	}
}

// TestSoloDeliverSeek: the solo orderer serves the same seek surface from
// its retained history.
func TestSoloDeliverSeek(t *testing.T) {
	key, err := cryptoutil.GenerateKeyPair()
	if err != nil {
		t.Fatalf("keygen: %v", err)
	}
	solo, err := NewSoloOrderer(SoloConfig{BlockSize: 2, Key: key, SigningWorkers: 2})
	if err != nil {
		t.Fatalf("solo: %v", err)
	}
	defer solo.Close()
	live := deliverNewest(t, solo, "ch")
	for i := 0; i < 8; i++ {
		if st := solo.Broadcast(mkEnvelope("ch", i, 16)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %s", st)
		}
	}
	collectBlocks(t, live, 8, 5*time.Second)

	stream, err := solo.Deliver("ch", fabric.DeliverOldest().Through(2))
	if err != nil {
		t.Fatalf("deliver: %v", err)
	}
	blocks := collectStream(t, stream, 0, 3, 5*time.Second)
	if err := fabric.VerifyChain(blocks); err != nil {
		t.Fatalf("replayed solo chain: %v", err)
	}
	if _, ok := <-stream.Blocks(); ok {
		t.Fatal("solo stream did not stop at the stop position")
	}
}

// TestDeliverBoundedReplayNeedsNoLiveTraffic: after a full-cluster restart
// a read-only client's bounded seek (stop position set) must replay the
// durable chain without anyone broadcasting new envelopes — the fetch is
// authenticated by f+1 peers agreeing on the top block instead of a live
// anchor.
func TestDeliverBoundedReplayNeedsNoLiveTraffic(t *testing.T) {
	dataDir := t.TempDir()
	c := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 2, DataDir: dataDir})
	fe := testFrontend(t, c, "frontend-a", false)
	live := deliverNewest(t, fe, "ch")
	for i := 0; i < 8; i++ {
		if st := fe.Broadcast(mkEnvelope("ch", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %s", st)
		}
	}
	collectBlocks(t, live, 8, 10*time.Second) // blocks 0..3
	for i := range c.Nodes {
		waitLedgerHeight(t, c.Nodes[i], "ch", 4, 5*time.Second)
	}
	fe.Close()
	c.Stop()

	c2 := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 2, DataDir: dataDir})
	fe2 := testFrontend(t, c2, "frontend-b", false)
	stream, err := fe2.Deliver("ch", fabric.DeliverOldest().Through(3))
	if err != nil {
		t.Fatalf("deliver: %v", err)
	}
	// No broadcasts at all: the replay must complete from durable storage.
	blocks := collectStream(t, stream, 0, 4, 30*time.Second)
	if err := fabric.VerifyChain(blocks); err != nil {
		t.Fatalf("replayed chain: %v", err)
	}
	select {
	case _, ok := <-stream.Blocks():
		if ok {
			t.Fatal("stream delivered past the stop")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not close after the stop position")
	}
	if err := stream.Err(); err != nil {
		t.Fatalf("bounded replay ended with: %v", err)
	}
}

// TestDeliverUnboundedReplayOnIdleChain: an unbounded Seek(Oldest) issued
// on an idle chain (no live traffic at all) must still replay the durable
// blocks, anchored on a quorum-agreed head block, and then keep tailing.
func TestDeliverUnboundedReplayOnIdleChain(t *testing.T) {
	dataDir := t.TempDir()
	c := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 2, DataDir: dataDir})
	fe := testFrontend(t, c, "frontend-a", false)
	live := deliverNewest(t, fe, "ch")
	for i := 0; i < 8; i++ {
		if st := fe.Broadcast(mkEnvelope("ch", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %s", st)
		}
	}
	collectBlocks(t, live, 8, 10*time.Second) // blocks 0..3
	for i := range c.Nodes {
		waitLedgerHeight(t, c.Nodes[i], "ch", 4, 5*time.Second)
	}
	fe.Close()
	c.Stop()

	c2 := testCluster(t, ClusterConfig{Nodes: 4, BlockSize: 2, DataDir: dataDir})
	fe2 := testFrontend(t, c2, "frontend-b", false)
	stream, err := fe2.Deliver("ch", fabric.DeliverOldest())
	if err != nil {
		t.Fatalf("deliver: %v", err)
	}
	defer stream.Cancel()
	// No broadcasts: the replay must complete from durable storage alone.
	collectStream(t, stream, 0, 4, 30*time.Second)
	// The stream then resumes tailing seamlessly once traffic returns.
	if st := fe2.Broadcast(mkEnvelope("ch", 100, 32)); st != fabric.StatusSuccess {
		t.Fatalf("broadcast: %s", st)
	}
	if st := fe2.Broadcast(mkEnvelope("ch", 101, 32)); st != fabric.StatusSuccess {
		t.Fatalf("broadcast: %s", st)
	}
	collectStream(t, stream, 4, 1, 20*time.Second)
}
