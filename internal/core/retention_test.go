package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/fabric"
)

// waitLedgerFloor polls a durable node's ledger until its retention floor
// rises to at least floor.
func waitLedgerFloor(t *testing.T, n *OrderingNode, channel string, floor uint64, within time.Duration) *fabric.Ledger {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		if led := n.Ledger(channel); led != nil && led.Floor() >= floor {
			return led
		}
		if time.Now().After(deadline) {
			var got uint64
			if led := n.Ledger(channel); led != nil {
				got = led.Floor()
			}
			t.Fatalf("node %d floor stuck at %d, want >= %d", n.ID(), got, floor)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRetentionBoundsDiskAndSeeksAnswerPruned is the cluster-level
// acceptance path: sustained traffic with retention enabled keeps the
// block stores bounded (segments actually deleted, floors rising), a
// fresh frontend's seek below the floor fails with the typed pruned
// error, and Deliver(Oldest) resumes at the cluster's floor.
func TestRetentionBoundsDiskAndSeeksAnswerPruned(t *testing.T) {
	c := testCluster(t, ClusterConfig{
		Nodes:     4,
		BlockSize: 2,
		DataDir:   t.TempDir(),
		// Decisions and blocks share the unified log, so reclamation
		// needs BOTH floors to move: small segments make whole-segment
		// pruning bite, a small batch keeps decision records under the
		// segment size, and aggressive checkpoints keep the decision
		// floor from pinning segments the retention floor has passed.
		WALSegmentBytes:    2048,
		BatchSize:          8,
		CheckpointInterval: 4,
		RetainBlocks:       6,
	})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch")

	const envs = 60 // 30 blocks: far past the 6-block retention window
	for i := 0; i < envs; i++ {
		if st := fe.Broadcast(mkEnvelope("ch", i, 48)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast %d: %s", i, st)
		}
	}
	collectBlocks(t, stream, envs, 20*time.Second)
	for i := range c.Nodes {
		waitLedgerHeight(t, c.Nodes[i], "ch", envs/2, 10*time.Second)
		led := waitLedgerFloor(t, c.Nodes[i], "ch", 1, 10*time.Second)
		if err := led.VerifyChain(); err != nil {
			t.Fatalf("node %d retained chain: %v", i, err)
		}
	}
	// The durable footprint is bounded: far less than an unbounded chain
	// (6 retained + slack vs 30 sealed).
	bytes := c.Nodes[0].storage.BlockStoreBytes()
	if bytes > 16<<10 {
		t.Fatalf("block store holds %d bytes despite retention", bytes)
	}

	// A fresh frontend (empty retained window) must go to the nodes; a
	// seek addressing pruned blocks gets the typed error.
	fe2 := testFrontend(t, c, "frontend-1", false)
	pruned, err := fe2.Deliver("ch", fabric.DeliverFrom(0).Through(0))
	if err != nil {
		t.Fatalf("deliver: %v", err)
	}
	for b := range pruned.Blocks() {
		t.Fatalf("pruned seek delivered block %d", b.Header.Number)
	}
	perr := pruned.Err()
	var pe *fabric.PrunedError
	if !errors.As(perr, &pe) || pe.Floor == 0 {
		t.Fatalf("pruned seek ended with %v", perr)
	}
	if got := fabric.StatusOf(perr); got != fabric.StatusNotFound {
		t.Fatalf("pruned status maps to %v, want NOT_FOUND", got)
	}

	// Oldest means oldest available: the replay resumes at the floor.
	head := c.Nodes[0].Ledger("ch").Height() - 1
	oldest, err := fe2.Deliver("ch", fabric.DeliverOldest().Through(head))
	if err != nil {
		t.Fatalf("deliver oldest: %v", err)
	}
	var got []*fabric.Block
	for b := range oldest.Blocks() {
		got = append(got, b)
	}
	if err := oldest.Err(); err != nil {
		t.Fatalf("oldest replay: %v", err)
	}
	if len(got) == 0 || got[0].Header.Number == 0 {
		t.Fatalf("oldest replay started at %v", got)
	}
	if err := fabric.VerifyChain(got); err != nil {
		t.Fatalf("replayed suffix: %v", err)
	}
	if got[len(got)-1].Header.Number != head {
		t.Fatalf("replay stopped at %d, want %d", got[len(got)-1].Header.Number, head)
	}
}

// TestRestartedNodeRebasesOverClusterWidePrunedGap kills a node, lets the
// survivors order and prune far past the victim's height, and restarts
// it: the back-fill finds the bottom of its gap compacted away on every
// peer, takes the snapshot jump (rebase at the cluster's floor), and
// ends with a contiguous, verifiable chain from the floor — durably, as
// a second restart proves.
func TestRestartedNodeRebasesOverClusterWidePrunedGap(t *testing.T) {
	c := testCluster(t, ClusterConfig{
		Nodes:              4,
		BlockSize:          2,
		DataDir:            t.TempDir(),
		CheckpointInterval: 2, // aggressive checkpoints force a state-transfer jump
		WALSegmentBytes:    1024,
		BatchSize:          8,
		RetainBlocks:       4,
	})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch")

	next := 0
	submit := func(count int) {
		t.Helper()
		for i := 0; i < count; i++ {
			if st := fe.Broadcast(mkEnvelope("ch", next, 32)); st != fabric.StatusSuccess {
				t.Fatalf("broadcast %d: %s", next, st)
			}
			next++
		}
		collectBlocks(t, stream, count, 10*time.Second)
	}

	submit(6) // blocks 0..2
	waitLedgerHeight(t, c.Nodes[3], "ch", 3, 5*time.Second)
	c.KillNode(3)

	// Separate rounds while the victim is down: the survivors checkpoint
	// (pruning the decision log) and retention compacts their block
	// stores well past block 3 — the victim's whole gap bottom is gone.
	for round := 0; round < 12; round++ {
		submit(2) // blocks 3..26
	}
	for i := 0; i < 3; i++ {
		led := waitLedgerFloor(t, c.Nodes[i], "ch", 4, 15*time.Second)
		if led.Floor() <= 3 {
			t.Fatalf("node %d floor %d does not cover the victim's gap", i, led.Floor())
		}
	}

	if err := c.RestartNode(3); err != nil {
		t.Fatalf("restart: %v", err)
	}
	submit(4) // fresh traffic drives the state transfer and the jump

	target := uint64(next / 2)
	led := waitLedgerHeight(t, c.Nodes[3], "ch", target, 30*time.Second)
	deadline := time.Now().Add(30 * time.Second)
	for led.Floor() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("restarted node never rebased (floor 0, height %d)", led.Height())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("rebased chain does not verify: %v", err)
	}
	if _, err := led.Block(0); !errors.Is(err, fabric.ErrPruned) {
		t.Fatalf("genesis read after rebase: %v", err)
	}

	// The jump was durable: a second restart recovers the rebased chain
	// from the manifest.
	c.KillNode(3)
	if err := c.RestartNode(3); err != nil {
		t.Fatalf("second restart: %v", err)
	}
	led = waitLedgerHeight(t, c.Nodes[3], "ch", target, 15*time.Second)
	if led.Floor() == 0 {
		t.Fatalf("rebase floor lost across restart")
	}
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("chain after second restart: %v", err)
	}
}

// TestDurableBlocksCarryNodeSignatures checks the signed-historical-blocks
// path: persisted blocks keep the sealing node's signature (persist runs
// after signing, in the send drain), the signature survives a restart,
// and a verifying frontend's anchorless fetch can therefore assemble f+1
// valid signatures per block by merging peers' copies.
func TestDurableBlocksCarryNodeSignatures(t *testing.T) {
	c := testCluster(t, ClusterConfig{
		Nodes:     4,
		BlockSize: 2,
		DataDir:   t.TempDir(),
	})
	fe := testFrontend(t, c, "frontend-0", false)
	stream := deliverNewest(t, fe, "ch")
	const envs = 12
	for i := 0; i < envs; i++ {
		if st := fe.Broadcast(mkEnvelope("ch", i, 32)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast %d: %s", i, st)
		}
	}
	collectBlocks(t, stream, envs, 10*time.Second)
	led := waitLedgerHeight(t, c.Nodes[0], "ch", envs/2, 10*time.Second)

	checkSigned := func(led *fabric.Ledger, label string) {
		t.Helper()
		blocks, err := led.Range(0, led.Height())
		if err != nil {
			t.Fatalf("%s: reading ledger: %v", label, err)
		}
		for _, b := range blocks {
			if n := b.VerifySignatures(c.Registry); n < 1 {
				t.Fatalf("%s: block %d carries %d valid signatures (%d attached)",
					label, b.Header.Number, n, len(b.Signatures))
			}
		}
	}
	checkSigned(led, "live")

	// The signatures are durable: a restarted node reads them back from
	// its block store.
	c.KillNode(0)
	if err := c.RestartNode(0); err != nil {
		t.Fatalf("restart: %v", err)
	}
	led = waitLedgerHeight(t, c.Nodes[0], "ch", envs/2, 10*time.Second)
	checkSigned(led, "recovered")

	// An anchorless bounded seek from a fresh verifying frontend is
	// served by signature verification: f+1 distinct node signatures per
	// block, merged across peers' durable copies.
	fe2 := testFrontend(t, c, "frontend-verify", true)
	stop := uint64(2)
	replay, err := fe2.Deliver("ch", fabric.DeliverOldest().Through(stop))
	if err != nil {
		t.Fatalf("deliver: %v", err)
	}
	var got []*fabric.Block
	for b := range replay.Blocks() {
		got = append(got, b)
	}
	if err := replay.Err(); err != nil {
		t.Fatalf("verified replay: %v", err)
	}
	if len(got) != int(stop)+1 {
		t.Fatalf("verified replay returned %d blocks", len(got))
	}
	const quorum = 2 // f+1 with n=4, f=1
	for _, b := range got {
		if n := b.VerifySignatures(c.Registry); n < quorum {
			t.Fatalf("fetched block %d carries only %d valid signatures, want f+1=%d",
				b.Header.Number, n, quorum)
		}
	}
}
