// Package kafka implements the crash-fault-tolerant baseline ordering
// service that Hyperledger Fabric v1.0 shipped with (Section 3 of the
// paper): an Apache Kafka-style replicated log plus ordering service nodes
// that consume the log and cut blocks deterministically.
//
// The simulated cluster reproduces the properties the orderer depends on:
// a partition per channel with a single total order, leader-based
// replication with an in-sync-replica (ISR) set, a high watermark exposing
// only fully replicated records, leader fail-over to the longest in-sync
// log, and crash tolerance of up to n-minISR broker failures. It does NOT
// tolerate Byzantine brokers - which is exactly the gap the paper's
// BFT-SMaRt ordering service (internal/core) fills.
package kafka

import (
	"errors"
	"fmt"
	"sync"
)

// Cluster errors.
var (
	ErrNoLeader      = errors.New("kafka: no leader available")
	ErrBrokerDown    = errors.New("kafka: broker is down")
	ErrNotEnoughISR  = errors.New("kafka: not enough in-sync replicas")
	ErrUnknownBroker = errors.New("kafka: unknown broker")
)

// record is one log entry of a partition.
type record struct {
	payload []byte
}

// partition is one topic-partition's replicated log as seen by one broker.
type partition struct {
	log []record
}

// broker is one Kafka node.
type broker struct {
	id         int
	alive      bool
	partitions map[string]*partition
}

func (b *broker) partition(topic string) *partition {
	p, ok := b.partitions[topic]
	if !ok {
		p = &partition{}
		b.partitions[topic] = p
	}
	return p
}

// ClusterConfig parameterizes the simulated Kafka cluster.
type ClusterConfig struct {
	// Brokers is the cluster size (Fabric deployments typically use 3-5).
	Brokers int
	// MinISR is the minimum in-sync replica count required to acknowledge
	// a produce (Kafka's min.insync.replicas with acks=all).
	MinISR int
}

// Cluster is a simulated Kafka cluster: synchronous replication from the
// partition leader to all live brokers, acknowledgement once MinISR
// replicas hold the record, and fail-over to the longest live log.
type Cluster struct {
	cfg ClusterConfig

	mu      sync.Mutex
	brokers []*broker
	leader  int
}

// NewCluster starts a cluster with all brokers alive; broker 0 leads.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Brokers < 1 {
		return nil, fmt.Errorf("kafka: need at least 1 broker, got %d", cfg.Brokers)
	}
	if cfg.MinISR < 1 {
		cfg.MinISR = 1
	}
	if cfg.MinISR > cfg.Brokers {
		return nil, fmt.Errorf("kafka: min ISR %d exceeds broker count %d", cfg.MinISR, cfg.Brokers)
	}
	c := &Cluster{cfg: cfg}
	for i := 0; i < cfg.Brokers; i++ {
		c.brokers = append(c.brokers, &broker{
			id:         i,
			alive:      true,
			partitions: make(map[string]*partition),
		})
	}
	return c, nil
}

// Produce appends payload to the topic's partition through the leader. It
// returns the assigned offset once MinISR replicas hold the record.
func (c *Cluster) Produce(topic string, payload []byte) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	leader, err := c.leaderLocked()
	if err != nil {
		return 0, err
	}
	copied := make([]byte, len(payload))
	copy(copied, payload)
	rec := record{payload: copied}

	// Leader appends, then replicates synchronously to every live broker.
	lp := leader.partition(topic)
	offset := int64(len(lp.log))
	lp.log = append(lp.log, rec)
	acks := 1
	for _, b := range c.brokers {
		if b == leader || !b.alive {
			continue
		}
		bp := b.partition(topic)
		// Followers may have fallen behind while down; they re-sync here
		// (simplified catch-up replication).
		for int64(len(bp.log)) < offset {
			bp.log = append(bp.log, leader.partition(topic).log[len(bp.log)])
		}
		bp.log = append(bp.log, rec)
		acks++
	}
	if acks < c.cfg.MinISR {
		// Roll the append back: the produce is not acknowledged.
		lp.log = lp.log[:offset]
		for _, b := range c.brokers {
			if b == leader || !b.alive {
				continue
			}
			bp := b.partition(topic)
			if int64(len(bp.log)) > offset {
				bp.log = bp.log[:offset]
			}
		}
		return 0, fmt.Errorf("%w: %d < %d", ErrNotEnoughISR, acks, c.cfg.MinISR)
	}
	return offset, nil
}

// leaderLocked returns the current leader, electing the live broker with
// the longest total log when the previous leader is down.
func (c *Cluster) leaderLocked() (*broker, error) {
	if c.leader < len(c.brokers) && c.brokers[c.leader].alive {
		return c.brokers[c.leader], nil
	}
	best := -1
	bestLen := -1
	for _, b := range c.brokers {
		if !b.alive {
			continue
		}
		total := 0
		for _, p := range b.partitions {
			total += len(p.log)
		}
		if total > bestLen {
			best = b.id
			bestLen = total
		}
	}
	if best < 0 {
		return nil, ErrNoLeader
	}
	c.leader = best
	return c.brokers[best], nil
}

// Consume returns records of a topic from offset (inclusive) up to the high
// watermark: the shortest live log, i.e. only fully replicated records.
func (c *Cluster) Consume(topic string, offset int64) ([][]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	hw := c.highWatermarkLocked(topic)
	if offset >= hw {
		return nil, nil
	}
	leader, err := c.leaderLocked()
	if err != nil {
		return nil, err
	}
	log := leader.partition(topic).log
	if hw > int64(len(log)) {
		hw = int64(len(log))
	}
	out := make([][]byte, 0, hw-offset)
	for _, rec := range log[offset:hw] {
		payload := make([]byte, len(rec.payload))
		copy(payload, rec.payload)
		out = append(out, payload)
	}
	return out, nil
}

func (c *Cluster) highWatermarkLocked(topic string) int64 {
	hw := int64(-1)
	for _, b := range c.brokers {
		if !b.alive {
			continue
		}
		l := int64(len(b.partition(topic).log))
		if hw < 0 || l < hw {
			hw = l
		}
	}
	if hw < 0 {
		return 0
	}
	return hw
}

// CrashBroker takes a broker down. Producing keeps working while at least
// MinISR brokers remain alive.
func (c *Cluster) CrashBroker(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.brokers) {
		return ErrUnknownBroker
	}
	c.brokers[id].alive = false
	return nil
}

// RestartBroker brings a broker back; it re-syncs lazily on the next
// produce.
func (c *Cluster) RestartBroker(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.brokers) {
		return ErrUnknownBroker
	}
	b := c.brokers[id]
	if b.alive {
		return nil
	}
	// Catch up from the current leader before rejoining the ISR.
	if c.leader < len(c.brokers) && c.brokers[c.leader].alive && c.brokers[c.leader] != b {
		leader := c.brokers[c.leader]
		for topic, lp := range leader.partitions {
			bp := b.partition(topic)
			for len(bp.log) < len(lp.log) {
				bp.log = append(bp.log, lp.log[len(bp.log)])
			}
		}
	}
	b.alive = true
	return nil
}

// Leader returns the current leader's id.
func (c *Cluster) Leader() (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, err := c.leaderLocked()
	if err != nil {
		return -1, err
	}
	return b.id, nil
}

// AliveBrokers returns how many brokers are up.
func (c *Cluster) AliveBrokers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, b := range c.brokers {
		if b.alive {
			n++
		}
	}
	return n
}
