package kafka

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/fabric"
)

func TestClusterProduceConsume(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Brokers: 3, MinISR: 2})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	for i := 0; i < 5; i++ {
		off, err := c.Produce("topic", []byte{byte(i)})
		if err != nil {
			t.Fatalf("produce %d: %v", i, err)
		}
		if off != int64(i) {
			t.Fatalf("offset = %d, want %d", off, i)
		}
	}
	records, err := c.Consume("topic", 0)
	if err != nil {
		t.Fatalf("consume: %v", err)
	}
	if len(records) != 5 {
		t.Fatalf("consumed %d records", len(records))
	}
	for i, rec := range records {
		if rec[0] != byte(i) {
			t.Fatalf("record %d = %v", i, rec)
		}
	}
	// Partial consume.
	tail, err := c.Consume("topic", 3)
	if err != nil || len(tail) != 2 {
		t.Fatalf("tail consume = %d records, %v", len(tail), err)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Brokers: 0}); err == nil {
		t.Fatal("zero brokers accepted")
	}
	if _, err := NewCluster(ClusterConfig{Brokers: 2, MinISR: 3}); err == nil {
		t.Fatal("minISR > brokers accepted")
	}
}

func TestClusterLeaderFailover(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Brokers: 3, MinISR: 2})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	if _, err := c.Produce("t", []byte("a")); err != nil {
		t.Fatalf("produce: %v", err)
	}
	leader, err := c.Leader()
	if err != nil {
		t.Fatalf("leader: %v", err)
	}
	if err := c.CrashBroker(leader); err != nil {
		t.Fatalf("crash: %v", err)
	}
	// Production continues through the new leader; no records are lost.
	if _, err := c.Produce("t", []byte("b")); err != nil {
		t.Fatalf("produce after crash: %v", err)
	}
	newLeader, err := c.Leader()
	if err != nil {
		t.Fatalf("leader after crash: %v", err)
	}
	if newLeader == leader {
		t.Fatal("crashed broker still leads")
	}
	records, err := c.Consume("t", 0)
	if err != nil {
		t.Fatalf("consume: %v", err)
	}
	if len(records) != 2 || string(records[0]) != "a" || string(records[1]) != "b" {
		t.Fatalf("records after failover: %q", records)
	}
}

func TestClusterMinISREnforced(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Brokers: 3, MinISR: 2})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	c.CrashBroker(1)
	c.CrashBroker(2)
	if _, err := c.Produce("t", []byte("x")); !errors.Is(err, ErrNotEnoughISR) {
		t.Fatalf("produce below ISR = %v, want ErrNotEnoughISR", err)
	}
	if c.AliveBrokers() != 1 {
		t.Fatalf("alive = %d", c.AliveBrokers())
	}
	// Restart a broker: production resumes.
	if err := c.RestartBroker(1); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if _, err := c.Produce("t", []byte("y")); err != nil {
		t.Fatalf("produce after restart: %v", err)
	}
}

func TestClusterAllBrokersDown(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Brokers: 2, MinISR: 1})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	c.CrashBroker(0)
	c.CrashBroker(1)
	if _, err := c.Produce("t", []byte("x")); !errors.Is(err, ErrNoLeader) {
		t.Fatalf("produce with no brokers = %v", err)
	}
	if err := c.CrashBroker(9); !errors.Is(err, ErrUnknownBroker) {
		t.Fatalf("crash unknown = %v", err)
	}
}

func TestRestartedBrokerCatchesUp(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Brokers: 3, MinISR: 2})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	c.CrashBroker(2)
	for i := 0; i < 4; i++ {
		if _, err := c.Produce("t", []byte{byte(i)}); err != nil {
			t.Fatalf("produce: %v", err)
		}
	}
	if err := c.RestartBroker(2); err != nil {
		t.Fatalf("restart: %v", err)
	}
	// The high watermark counts the restarted broker again; all records
	// must remain consumable.
	records, err := c.Consume("t", 0)
	if err != nil || len(records) != 4 {
		t.Fatalf("consume after catch-up = %d, %v", len(records), err)
	}
}

func newTestOSN(t *testing.T, cluster *Cluster, id string, blockSize int, timeout time.Duration) *OSN {
	t.Helper()
	key, err := cryptoutil.GenerateKeyPair()
	if err != nil {
		t.Fatalf("keygen: %v", err)
	}
	osn, err := NewOSN(OSNConfig{
		ID: id, Cluster: cluster, BlockSize: blockSize,
		BlockTimeout: timeout, Key: key, SigningWorkers: 1,
	})
	if err != nil {
		t.Fatalf("NewOSN: %v", err)
	}
	t.Cleanup(osn.Close)
	return osn
}

func mkEnv(channel string, i int) *fabric.Envelope {
	return &fabric.Envelope{
		ChannelID:         channel,
		ClientID:          "client",
		TimestampUnixNano: int64(i),
		Payload:           []byte(fmt.Sprintf("payload-%d", i)),
	}
}

func collect(t *testing.T, stream <-chan *fabric.Block, wantEnvs int) []*fabric.Block {
	t.Helper()
	deadline := time.After(10 * time.Second)
	var blocks []*fabric.Block
	total := 0
	for total < wantEnvs {
		select {
		case b := <-stream:
			blocks = append(blocks, b)
			total += len(b.Envelopes)
		case <-deadline:
			t.Fatalf("timed out with %d/%d envelopes", total, wantEnvs)
		}
	}
	return blocks
}

func TestOSNOrdersIntoBlocks(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{Brokers: 3, MinISR: 2})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	osn := newTestOSN(t, cluster, "osn0", 4, 0)
	stream := osn.Deliver("ch")
	for i := 0; i < 12; i++ {
		if st := osn.Broadcast(mkEnv("ch", i)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %v", st)
		}
	}
	blocks := collect(t, stream, 12)
	if len(blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(blocks))
	}
	if err := fabric.VerifyChain(blocks); err != nil {
		t.Fatalf("chain: %v", err)
	}
}

func TestTwoOSNsBuildIdenticalChains(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{Brokers: 3, MinISR: 2})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	osnA := newTestOSN(t, cluster, "osnA", 3, 0)
	osnB := newTestOSN(t, cluster, "osnB", 3, 0)
	streamA := osnA.Deliver("ch")
	streamB := osnB.Deliver("ch")

	for i := 0; i < 9; i++ {
		if st := osnA.Broadcast(mkEnv("ch", i)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %v", st)
		}
	}
	blocksA := collect(t, streamA, 9)
	blocksB := collect(t, streamB, 9)
	if len(blocksA) != len(blocksB) {
		t.Fatalf("OSNs cut %d vs %d blocks", len(blocksA), len(blocksB))
	}
	for i := range blocksA {
		if blocksA[i].Header.Hash() != blocksB[i].Header.Hash() {
			t.Fatalf("block %d differs between OSNs", i)
		}
	}
}

func TestOSNTimeoutCut(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{Brokers: 3, MinISR: 2})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	osn := newTestOSN(t, cluster, "osn0", 100, 30*time.Millisecond)
	stream := osn.Deliver("ch")
	if st := osn.Broadcast(mkEnv("ch", 0)); st != fabric.StatusSuccess {
		t.Fatalf("broadcast: %v", st)
	}
	blocks := collect(t, stream, 1)
	if len(blocks[0].Envelopes) != 1 {
		t.Fatalf("partial block has %d envelopes", len(blocks[0].Envelopes))
	}
}

func TestOSNSurvivesBrokerCrash(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{Brokers: 3, MinISR: 2})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	osn := newTestOSN(t, cluster, "osn0", 2, 0)
	stream := osn.Deliver("ch")
	for i := 0; i < 4; i++ {
		if st := osn.Broadcast(mkEnv("ch", i)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast: %v", st)
		}
	}
	collect(t, stream, 4)

	leader, err := cluster.Leader()
	if err != nil {
		t.Fatalf("leader: %v", err)
	}
	cluster.CrashBroker(leader)
	for i := 4; i < 8; i++ {
		if st := osn.Broadcast(mkEnv("ch", i)); st != fabric.StatusSuccess {
			t.Fatalf("broadcast after crash: %v", st)
		}
	}
	blocks := collect(t, stream, 4)
	if err := fabric.VerifyChain(blocks); err != nil {
		t.Fatalf("chain continuity after failover: %v", err)
	}
}

func TestTTCCodec(t *testing.T) {
	for _, n := range []uint64{0, 1, 1 << 40, ^uint64(0)} {
		got, ok := decodeTTC(encodeTTC(n))
		if !ok || got != n {
			t.Fatalf("TTC round trip of %d = %d, %v", n, got, ok)
		}
	}
	if _, ok := decodeTTC([]byte("not a marker")); ok {
		t.Fatal("garbage decoded as TTC")
	}
	env := mkEnv("ch", 1)
	if _, ok := decodeTTC(env.Marshal()); ok {
		t.Fatal("envelope decoded as TTC")
	}
}
