package kafka

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/fabric"
)

// OSNConfig parameterizes a Kafka-backed ordering service node.
type OSNConfig struct {
	// ID names the node (its block signatures carry this identity).
	ID string
	// Cluster is the Kafka cluster ordering the envelopes.
	Cluster *Cluster
	// BlockSize bounds envelopes per block.
	BlockSize int
	// MaxBlockBytes optionally bounds block bytes.
	MaxBlockBytes int
	// BlockTimeout cuts partial blocks through ordered time-to-cut
	// markers, exactly like Fabric's Kafka orderer posts TTC messages to
	// the partition.
	BlockTimeout time.Duration
	// PollInterval is the consume-loop polling period (default 2ms).
	PollInterval time.Duration
	// SigningWorkers sizes the signing pool (default 4).
	SigningWorkers int
	// Key signs block headers. Required.
	Key *cryptoutil.KeyPair
}

// ttcMarker prefixes time-to-cut records in the partition.
const ttcMarker = "\x00TTC\x00"

// OSN is a Kafka-based ordering service node: it produces envelopes into a
// channel's partition and consumes the partition to cut blocks. Every OSN
// consuming the same partition builds the identical chain, because cutting
// depends only on the record sequence (including TTC markers).
type OSN struct {
	cfg OSNConfig

	signer *cryptoutil.SigningPool

	mu      sync.Mutex
	chains  map[string]*osnChain
	subs    map[string][]chan *fabric.Block
	sealing sync.WaitGroup
	closed  bool

	statEnvelopes atomic.Uint64
	statBlocks    atomic.Uint64

	done chan struct{}
	wg   sync.WaitGroup
}

type osnChain struct {
	offset     int64 // next partition offset to consume
	nextNumber uint64
	prevHash   cryptoutil.Digest
	cutter     *fabric.BlockCutter
	ttcSent    uint64 // block number the last TTC marker targeted (+1)
}

// NewOSN starts an ordering service node over the cluster.
func NewOSN(cfg OSNConfig) (*OSN, error) {
	if cfg.ID == "" {
		return nil, errors.New("kafka osn: empty id")
	}
	if cfg.Cluster == nil {
		return nil, errors.New("kafka osn: nil cluster")
	}
	if cfg.Key == nil {
		return nil, errors.New("kafka osn: nil key")
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 10
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 2 * time.Millisecond
	}
	if cfg.SigningWorkers <= 0 {
		cfg.SigningWorkers = 4
	}
	signer, err := cryptoutil.NewSigningPool(cfg.Key, cfg.SigningWorkers)
	if err != nil {
		return nil, fmt.Errorf("kafka osn: %w", err)
	}
	o := &OSN{
		cfg:    cfg,
		signer: signer,
		chains: make(map[string]*osnChain),
		subs:   make(map[string][]chan *fabric.Block),
		done:   make(chan struct{}),
	}
	o.wg.Add(1)
	go o.consumeLoop()
	return o, nil
}

var _ fabric.Broadcaster = (*OSN)(nil)

// Broadcast produces one envelope into its channel's partition.
func (o *OSN) Broadcast(env *fabric.Envelope) fabric.BroadcastStatus {
	if env == nil {
		return fabric.StatusBadRequest
	}
	return o.BroadcastRaw(env.Marshal())
}

// BroadcastRaw produces an already-marshalled envelope.
func (o *OSN) BroadcastRaw(raw []byte) fabric.BroadcastStatus {
	channel, err := fabric.ChannelOf(raw)
	if err != nil {
		return fabric.StatusBadRequest
	}
	o.track(channel)
	if _, err := o.cfg.Cluster.Produce(channel, raw); err != nil {
		return fabric.StatusServiceUnavailable
	}
	return fabric.StatusSuccess
}

// track ensures the consume loop follows the channel.
func (o *OSN) track(channel string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.chains[channel]; !ok {
		o.chains[channel] = &osnChain{
			cutter: fabric.NewBlockCutter(fabric.CutterConfig{
				MaxEnvelopes: o.cfg.BlockSize,
				MaxBytes:     o.cfg.MaxBlockBytes,
			}),
		}
	}
}

// Deliver returns the ordered block stream of a channel. The buffer is
// generous; subscribers must keep draining.
func (o *OSN) Deliver(channel string) <-chan *fabric.Block {
	o.track(channel)
	ch := make(chan *fabric.Block, 1024)
	o.mu.Lock()
	o.subs[channel] = append(o.subs[channel], ch)
	o.mu.Unlock()
	return ch
}

// Stats returns (envelopes consumed, blocks cut).
func (o *OSN) Stats() (envelopes, blocks uint64) {
	return o.statEnvelopes.Load(), o.statBlocks.Load()
}

func (o *OSN) consumeLoop() {
	defer o.wg.Done()
	ticker := time.NewTicker(o.cfg.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-o.done:
			return
		case <-ticker.C:
			o.pollOnce()
		}
	}
}

func (o *OSN) pollOnce() {
	o.mu.Lock()
	channels := make([]string, 0, len(o.chains))
	for ch := range o.chains {
		channels = append(channels, ch)
	}
	o.mu.Unlock()

	now := time.Now()
	for _, channel := range channels {
		o.mu.Lock()
		chain := o.chains[channel]
		offset := chain.offset
		o.mu.Unlock()

		records, err := o.cfg.Cluster.Consume(channel, offset)
		if err != nil {
			continue // no leader right now; retry next poll
		}
		for _, rec := range records {
			o.processRecord(channel, chain, rec)
		}
		o.mu.Lock()
		chain.offset = offset + int64(len(records))
		// Timeout cutting via ordered markers: if the oldest pending
		// envelope aged past the timeout and no marker for this block is
		// in flight, post one. All OSNs may post markers; stale ones are
		// skipped deterministically.
		if o.cfg.BlockTimeout > 0 {
			if oldest, ok := chain.cutter.OldestPending(); ok &&
				now.Sub(oldest) >= o.cfg.BlockTimeout &&
				chain.ttcSent <= chain.nextNumber {
				chain.ttcSent = chain.nextNumber + 1
				marker := encodeTTC(chain.nextNumber)
				o.mu.Unlock()
				if _, err := o.cfg.Cluster.Produce(channel, marker); err == nil {
					continue
				}
				o.mu.Lock()
				chain.ttcSent = chain.nextNumber // retry later
			}
		}
		o.mu.Unlock()
	}
}

func (o *OSN) processRecord(channel string, chain *osnChain, rec []byte) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if number, ok := decodeTTC(rec); ok {
		if number == chain.nextNumber {
			if batch := chain.cutter.Cut(); batch != nil {
				o.sealLocked(channel, chain, batch)
			}
		}
		return
	}
	o.statEnvelopes.Add(1)
	if batch := chain.cutter.Append(rec); batch != nil {
		o.sealLocked(channel, chain, batch)
	}
}

func (o *OSN) sealLocked(channel string, chain *osnChain, batch [][]byte) {
	block := fabric.NewBlock(chain.nextNumber, chain.prevHash, batch)
	chain.nextNumber++
	chain.prevHash = block.Header.Hash()
	o.statBlocks.Add(1)

	subs := make([]chan *fabric.Block, len(o.subs[channel]))
	copy(subs, o.subs[channel])
	o.sealing.Add(1)
	err := o.signer.Sign(block.Header.Hash(), func(sig []byte, err error) {
		defer o.sealing.Done()
		if err != nil {
			return
		}
		block.Signatures = []fabric.BlockSignature{{SignerID: o.cfg.ID, Signature: sig}}
		for _, ch := range subs {
			select {
			case ch <- block:
			default: // subscriber too slow
			}
		}
	})
	if err != nil {
		o.sealing.Done()
	}
}

// Close stops the node.
func (o *OSN) Close() {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return
	}
	o.closed = true
	o.mu.Unlock()
	close(o.done)
	o.wg.Wait()
	o.sealing.Wait()
	o.signer.Close()
}

func encodeTTC(blockNumber uint64) []byte {
	buf := make([]byte, len(ttcMarker)+8)
	copy(buf, ttcMarker)
	for i := 0; i < 8; i++ {
		buf[len(ttcMarker)+i] = byte(blockNumber >> (8 * (7 - i)))
	}
	return buf
}

func decodeTTC(rec []byte) (uint64, bool) {
	if len(rec) != len(ttcMarker)+8 || string(rec[:len(ttcMarker)]) != ttcMarker {
		return 0, false
	}
	var n uint64
	for i := 0; i < 8; i++ {
		n = n<<8 | uint64(rec[len(ttcMarker)+i])
	}
	return n, true
}
