package consensus

import (
	"sort"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/wire"
)

// This file implements durability and state transfer (Section 5.2 of the
// paper): replicas checkpoint the application snapshot every
// CheckpointInterval decisions and truncate the decision log; a lagging or
// joining replica fetches the latest checkpoint plus the log suffix from
// its peers and replays it. The ordering service's application state is
// tiny (next block number + previous block hash), which is exactly why the
// paper argues frequent checkpoints are cheap for this workload.

// wrapSnapshot bundles the application snapshot with the replica-level
// request-deduplication table; both are replicated state.
//
// Layout: uvarint count, (client string, uint64 seq)*, app snapshot bytes.
func (r *Replica) wrapSnapshot() []byte {
	clients := make([]string, 0, len(r.executed))
	for c := range r.executed {
		clients = append(clients, c)
	}
	sort.Strings(clients)
	w := wire.NewWriter(64)
	r.marshalMembership(w)
	w.PutUvarint(uint64(len(clients)))
	for _, c := range clients {
		w.PutString(c)
		r.executed[c].marshalInto(w)
	}
	w.PutBytes(r.app.Snapshot())
	return w.Bytes()
}

// unwrapSnapshot restores the dedup table and returns the application
// snapshot portion.
func (r *Replica) unwrapSnapshot(b []byte) ([]byte, bool) {
	rd := wire.NewReader(b)
	if err := r.unmarshalMembership(rd); err != nil {
		return nil, false
	}
	n := rd.Uvarint()
	if rd.Err() != nil || n > maxPendingRequests {
		return nil, false
	}
	executed := make(map[string]*clientDedup, n)
	for i := uint64(0); i < n; i++ {
		client := rd.String()
		executed[client] = readClientDedup(rd)
	}
	appSnap := rd.BytesCopy()
	if err := rd.Finish(); err != nil {
		return nil, false
	}
	r.executed = executed
	return appSnap, true
}

// requestStateTransfer broadcasts a state request when the replica detects
// that it is too far behind to catch up through ordinary votes.
func (r *Replica) requestStateTransfer() {
	if r.fetching {
		return
	}
	r.fetching = true
	r.fetchStarted = time.Now()
	r.stateReplies = make(map[ReplicaID]*stateReplyMsg)
	m := &stateRequestMsg{FromSeq: r.lastDelivered}
	for _, id := range r.membership {
		if id == r.cfg.SelfID {
			continue
		}
		r.sendTo(id, msgStateRequest, m.marshal())
	}
}

func (r *Replica) onStateRequest(from ReplicaID, m *stateRequestMsg) {
	if r.behavior.Load().Mute {
		return
	}
	reply := &stateReplyMsg{CheckpointSeq: -1}
	if m.FromSeq < r.checkpointSeq {
		// The requester predates our checkpoint: ship the snapshot and the
		// full log suffix.
		reply.CheckpointSeq = r.checkpointSeq
		reply.Snapshot = r.checkpointSnap
	}
	start := m.FromSeq + 1
	if reply.CheckpointSeq >= 0 {
		start = reply.CheckpointSeq + 1
	}
	seqs := make([]int64, 0, len(r.decidedLog))
	for seq := range r.decidedLog {
		if seq >= start && seq <= r.lastStable {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	// Only a contiguous prefix is useful to the requester.
	expected := start
	for _, seq := range seqs {
		if seq != expected {
			break
		}
		reply.Entries = append(reply.Entries, logEntryWire{Seq: seq, Batch: r.decidedLog[seq]})
		expected++
	}
	if reply.CheckpointSeq < 0 && len(reply.Entries) == 0 {
		return // nothing helpful to send
	}
	r.sendTo(from, msgStateReply, reply.marshal())
}

func (r *Replica) onStateReply(from ReplicaID, m *stateReplyMsg) {
	if !r.fetching {
		return
	}
	r.stateReplies[from] = m

	// Require f+1 replicas to agree on the exact reply content before
	// applying it: at least one of them is correct.
	counts := make(map[cryptoutil.Digest][]ReplicaID)
	for id, reply := range r.stateReplies {
		d := reply.digest()
		counts[d] = append(counts[d], id)
	}
	for _, ids := range counts {
		if len(ids) < r.qt.f+1 {
			continue
		}
		r.applyState(r.stateReplies[ids[0]])
		return
	}
}

func (r *Replica) applyState(m *stateReplyMsg) {
	r.fetching = false
	r.stateReplies = make(map[ReplicaID]*stateReplyMsg)

	if m.CheckpointSeq > r.lastDelivered {
		appSnap, ok := r.unwrapSnapshot(m.Snapshot)
		if !ok {
			return
		}
		if r.cfg.Tentative && r.lastDelivered > r.lastStable {
			// Drop any tentative suffix before jumping states.
			r.app.Rollback(r.lastStable)
		}
		r.app.Restore(appSnap, m.CheckpointSeq)
		r.lastDelivered = m.CheckpointSeq
		r.lastStable = m.CheckpointSeq
		r.checkpointSeq = m.CheckpointSeq
		r.checkpointSnap = m.Snapshot
		// A checkpoint jump is a durability event: persist it so a crash
		// right after state transfer does not fall back behind the jump.
		r.logCheckpoint(m.CheckpointSeq, m.Snapshot)
		r.statDelivered.Store(m.CheckpointSeq)
		// Protocol state below the snapshot is obsolete.
		for seq := range r.instances {
			if seq <= m.CheckpointSeq {
				delete(r.instances, seq)
			}
		}
		for seq := range r.decidedLog {
			if seq <= m.CheckpointSeq {
				delete(r.decidedLog, seq)
			}
		}
	}

	for _, entry := range m.Entries {
		if entry.Seq != r.lastDelivered+1 {
			continue
		}
		inst := r.instance(entry.Seq)
		if inst.executed {
			r.lastDelivered = entry.Seq
			continue
		}
		inst.batch = entry.Batch
		inst.digest = batchDigest(entry.Seq, entry.Batch)
		inst.haveProposal = true
		inst.decided = true
		inst.decidedDigest = inst.digest
		r.execute(inst)
		r.lastDelivered = entry.Seq
		r.statDelivered.Store(entry.Seq)
	}
	r.advanceStable()
	r.deliverContiguous()
}
