package consensus

import (
	"sort"

	"repro/internal/wire"
)

// clientDedup tracks which request sequence numbers of one client have been
// executed, providing exact at-most-once semantics even when requests
// execute out of sequence order (possible across leader changes, state
// transfers, or a Byzantine leader proposing a client's requests out of
// order). It keeps a contiguous floor plus a sparse set above it; the
// sparse set is compacted into the floor whenever no tentative executions
// are outstanding.
type clientDedup struct {
	floor  uint64 // every seq in [1, floor] has been executed
	sparse map[uint64]bool
	// lowest memoizes the smallest sequence in sparse (0 = unknown,
	// recompute on demand). compact runs once per decided instance per
	// client; without the memo its find-the-lowest scan walks the whole
	// sparse set every time, because a session-gap jump leaves a
	// permanent hole right above the floor. The memo makes compact O(1)
	// amortized on the hot path.
	lowest uint64
}

func newClientDedup() *clientDedup {
	return &clientDedup{sparse: make(map[uint64]bool)}
}

// contains reports whether seq was executed.
func (d *clientDedup) contains(seq uint64) bool {
	return seq <= d.floor || d.sparse[seq]
}

// mark records seq as executed.
func (d *clientDedup) mark(seq uint64) {
	if seq <= d.floor {
		return
	}
	wasEmpty := len(d.sparse) == 0
	d.sparse[seq] = true
	if wasEmpty || (d.lowest != 0 && seq < d.lowest) {
		// An unknown memo (0) over a non-empty set stays unknown: seq may
		// not be the true minimum.
		d.lowest = seq
	}
}

// unmark forgets seq (tentative rollback). Only sequences above the floor
// can be rolled back: compaction is restricted to stable prefixes.
func (d *clientDedup) unmark(seq uint64) {
	delete(d.sparse, seq)
	if seq == d.lowest {
		d.lowest = 0 // unknown; recomputed on the next compact
	}
}

// lowestSparse returns the smallest sequence in the sparse set (which
// must be non-empty), recomputing the memo only when an unmark or a
// floor advance invalidated it.
func (d *clientDedup) lowestSparse() uint64 {
	if d.lowest == 0 {
		for s := range d.sparse {
			if d.lowest == 0 || s < d.lowest {
				d.lowest = s
			}
		}
	}
	return d.lowest
}

// sessionGap is the sequence gap beyond which compaction concludes the
// client started a new session (clients base each session's sequences on
// wall-clock nanos). A gap this large can never fill: the request pool
// holds at most maxPendingRequests outstanding sequences per client.
const sessionGap = maxPendingRequests

// compactHeadroom is how far below a new session's lowest executed
// sequence the floor parks. A same-session request displaced by a leader
// change can execute after later sequences of its session, so jumping the
// floor to lowest-1 could swallow it; the in-flight window is bounded by
// the proposal pipeline (instanceWindow/2 batches), which this headroom
// comfortably exceeds.
const compactHeadroom = 1 << 15

// compact advances the floor over contiguous executed sequences. Callers
// must ensure no tentative execution is outstanding (rollback cannot cross
// the floor). Two gap rules keep the floor moving across client sessions:
// a stuck floor more than sessionGap below the sparse set belongs to a
// previous session and jumps to compactHeadroom below the new session's
// lowest sequence; once the client's progress since then exceeds the
// headroom, nothing in flight can still land in the remaining hole and it
// closes.
func (d *clientDedup) compact() {
	if len(d.sparse) > 0 && !d.sparse[d.floor+1] {
		lowest := d.lowestSparse()
		if lowest > d.floor+sessionGap {
			d.floor = lowest - compactHeadroom
		} else if lowest > d.floor+1 && len(d.sparse) >= compactHeadroom {
			d.floor = lowest - 1
		}
	}
	for d.sparse[d.floor+1] {
		d.floor++
		delete(d.sparse, d.floor)
		if d.floor == d.lowest {
			d.lowest = 0 // consumed; recomputed on demand
		}
	}
}

// marshalInto serializes the dedup state: floor, count, sorted seqs.
func (d *clientDedup) marshalInto(w *wire.Writer) {
	w.PutUint64(d.floor)
	seqs := make([]uint64, 0, len(d.sparse))
	for s := range d.sparse {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	w.PutUvarint(uint64(len(seqs)))
	for _, s := range seqs {
		w.PutUint64(s)
	}
}

// readClientDedup deserializes dedup state.
func readClientDedup(r *wire.Reader) *clientDedup {
	d := newClientDedup()
	d.floor = r.Uint64()
	n := r.Uvarint()
	if n > maxPendingRequests {
		return d
	}
	for i := uint64(0); i < n; i++ {
		d.sparse[r.Uint64()] = true
	}
	return d
}
