package consensus

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/transport"
	"repro/internal/wire"
)

// recordApp is a test application that records every delivered operation,
// supports rollback of tentative suffixes, and snapshots its full history.
type recordApp struct {
	mu     sync.Mutex
	groups []execGroup
}

type execGroup struct {
	seq int64
	ops [][]byte
}

var _ Application = (*recordApp)(nil)

func (a *recordApp) Execute(seq int64, ops [][]byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	copied := make([][]byte, len(ops))
	for i, op := range ops {
		copied[i] = append([]byte(nil), op...)
	}
	a.groups = append(a.groups, execGroup{seq: seq, ops: copied})
}

func (a *recordApp) Rollback(seq int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	keep := a.groups[:0]
	for _, g := range a.groups {
		if g.seq <= seq {
			keep = append(keep, g)
		}
	}
	a.groups = keep
}

func (a *recordApp) Snapshot() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	w := wire.NewWriter(64)
	w.PutUvarint(uint64(len(a.groups)))
	for _, g := range a.groups {
		w.PutInt64(g.seq)
		w.PutBytesSlice(g.ops)
	}
	return w.Bytes()
}

func (a *recordApp) Restore(snapshot []byte, _ int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := wire.NewReader(snapshot)
	n := r.Uvarint()
	groups := make([]execGroup, 0, n)
	for i := uint64(0); i < n; i++ {
		groups = append(groups, execGroup{seq: r.Int64(), ops: r.BytesSlice()})
	}
	if r.Finish() == nil {
		a.groups = groups
	}
}

// ops returns the flattened operation history.
func (a *recordApp) opsFlat() [][]byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out [][]byte
	for _, g := range a.groups {
		out = append(out, g.ops...)
	}
	return out
}

func (a *recordApp) opCount() int {
	return len(a.opsFlat())
}

// testCluster wires n replicas over an in-proc network.
type testCluster struct {
	t        *testing.T
	net      *transport.InProcNetwork
	replicas []*Replica
	apps     []*recordApp
	conns    []transport.Conn
}

type clusterOpts struct {
	n              int
	tentative      bool
	weights        map[ReplicaID]int
	requestTimeout time.Duration
	checkpointIvl  int64
	batchSize      int
	withKeys       bool
	resultFunc     ResultFunc
}

func newTestCluster(t *testing.T, opts clusterOpts) *testCluster {
	t.Helper()
	if opts.requestTimeout == 0 {
		opts.requestTimeout = 500 * time.Millisecond
	}
	if opts.checkpointIvl == 0 {
		opts.checkpointIvl = 1 << 20 // effectively off unless requested
	}
	if opts.batchSize == 0 {
		opts.batchSize = 16
	}
	net := transport.NewInProcNetwork(transport.InProcConfig{})
	tc := &testCluster{t: t, net: net}
	members := ids(opts.n)

	var registry *cryptoutil.Registry
	keys := make(map[ReplicaID]*cryptoutil.KeyPair)
	if opts.withKeys {
		registry = cryptoutil.NewRegistry()
		for _, id := range members {
			kp, err := cryptoutil.GenerateKeyPair()
			if err != nil {
				t.Fatalf("keygen: %v", err)
			}
			keys[id] = kp
			registry.Register(replicaIdentity(id), kp.Public())
		}
	}

	for _, id := range members {
		conn, err := net.Join(id.Addr())
		if err != nil {
			t.Fatalf("join %v: %v", id, err)
		}
		app := &recordApp{}
		cfg := Config{
			SelfID:             id,
			Replicas:           members,
			Weights:            opts.weights,
			Tentative:          opts.tentative,
			RequestTimeout:     opts.requestTimeout,
			BatchTimeout:       2 * time.Millisecond,
			BatchSize:          opts.batchSize,
			CheckpointInterval: opts.checkpointIvl,
			Key:                keys[id],
			Registry:           registry,
		}
		var replicaOpts []Option
		if opts.resultFunc != nil {
			replicaOpts = append(replicaOpts, WithResultFunc(opts.resultFunc))
		}
		rep, err := NewReplica(cfg, app, conn, replicaOpts...)
		if err != nil {
			t.Fatalf("new replica %v: %v", id, err)
		}
		tc.replicas = append(tc.replicas, rep)
		tc.apps = append(tc.apps, app)
		tc.conns = append(tc.conns, conn)
	}
	for _, rep := range tc.replicas {
		rep.Start()
	}
	t.Cleanup(tc.stop)
	return tc
}

func (tc *testCluster) stop() {
	for _, rep := range tc.replicas {
		rep.Stop()
	}
	tc.net.Close()
}

func (tc *testCluster) client(t *testing.T, name string, tentative bool) *Client {
	t.Helper()
	conn, err := tc.net.Join(transport.Addr(name))
	if err != nil {
		t.Fatalf("join client: %v", err)
	}
	c, err := NewClient(conn, ClientConfig{
		Replicas:  ids(len(tc.replicas)),
		Tentative: tentative,
	})
	if err != nil {
		t.Fatalf("new client: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, within time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitAllDelivered waits until every live replica has executed want ops.
func (tc *testCluster) waitAllDelivered(want int, within time.Duration, skip map[int]bool) {
	tc.t.Helper()
	waitFor(tc.t, within, fmt.Sprintf("%d ops delivered everywhere", want), func() bool {
		for i, app := range tc.apps {
			if skip[i] {
				continue
			}
			if app.opCount() < want {
				return false
			}
		}
		return true
	})
}

// assertSameOrder verifies that all live replicas executed identical
// operation sequences (total order), and that the sequence contains exactly
// the given ops when expected is non-nil.
func (tc *testCluster) assertSameOrder(skip map[int]bool) {
	tc.t.Helper()
	var reference [][]byte
	refIdx := -1
	for i, app := range tc.apps {
		if skip[i] {
			continue
		}
		ops := app.opsFlat()
		if refIdx == -1 {
			reference = ops
			refIdx = i
			continue
		}
		if len(ops) != len(reference) {
			tc.t.Fatalf("replica %d executed %d ops, replica %d executed %d",
				i, len(ops), refIdx, len(reference))
		}
		for j := range ops {
			if !bytes.Equal(ops[j], reference[j]) {
				tc.t.Fatalf("divergent op %d: replica %d has %q, replica %d has %q",
					j, i, ops[j], refIdx, reference[j])
			}
		}
	}
}

func TestOrderingBasic(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4})
	client := tc.client(t, "client-1", false)

	const total = 50
	for i := 0; i < total; i++ {
		if err := client.Invoke([]byte(fmt.Sprintf("op-%03d", i))); err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}
	tc.waitAllDelivered(total, 5*time.Second, nil)
	tc.assertSameOrder(nil)

	// Per-client FIFO: ops from one client must appear in submission order.
	ops := tc.apps[0].opsFlat()
	for i := 1; i < len(ops); i++ {
		if string(ops[i-1]) >= string(ops[i]) {
			t.Fatalf("client order violated: %q before %q", ops[i-1], ops[i])
		}
	}
}

func TestOrderingSevenReplicas(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 7})
	client := tc.client(t, "client-1", false)
	const total = 30
	for i := 0; i < total; i++ {
		if err := client.Invoke([]byte(fmt.Sprintf("op-%03d", i))); err != nil {
			t.Fatalf("invoke: %v", err)
		}
	}
	tc.waitAllDelivered(total, 5*time.Second, nil)
	tc.assertSameOrder(nil)
}

func TestOrderingMultipleClients(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4})
	const clients, each = 4, 20
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		client := tc.client(t, fmt.Sprintf("client-%d", c), false)
		wg.Add(1)
		go func(cl *Client, c int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := cl.Invoke([]byte(fmt.Sprintf("c%d-op%d", c, i))); err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
			}
		}(client, c)
	}
	wg.Wait()
	tc.waitAllDelivered(clients*each, 10*time.Second, nil)
	tc.assertSameOrder(nil)
}

func TestSyncCall(t *testing.T) {
	sum := func(seq int64, op []byte) []byte {
		return []byte(fmt.Sprintf("done:%s", op))
	}
	tc := newTestCluster(t, clusterOpts{n: 4, resultFunc: sum})
	client := tc.client(t, "caller", false)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	result, err := client.Call(ctx, []byte("ping"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(result) != "done:ping" {
		t.Fatalf("result = %q", result)
	}
}

func TestDuplicateRequestsExecutedOnce(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4})
	conn, err := tc.net.Join("raw-client")
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	rq := &request{ClientID: "raw-client", Seq: 1, Op: []byte("only-once")}
	payload := rq.marshal()
	// Send the identical request several times to every replica.
	for round := 0; round < 3; round++ {
		for _, id := range ids(4) {
			conn.Send(id.Addr(), msgRequest, payload)
		}
		time.Sleep(20 * time.Millisecond)
	}
	tc.waitAllDelivered(1, 5*time.Second, nil)
	time.Sleep(100 * time.Millisecond) // allow any duplicates to surface
	for i, app := range tc.apps {
		if n := app.opCount(); n != 1 {
			t.Fatalf("replica %d executed %d copies", i, n)
		}
	}
}

func TestCrashFollowerProgress(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4})
	// Crash a follower (replica 3): n-1 = 3 replicas remain, which still
	// meets the quorum of 3 for n=4.
	tc.replicas[3].Stop()
	tc.net.Disconnect(ReplicaID(3).Addr())

	client := tc.client(t, "client-1", false)
	const total = 20
	for i := 0; i < total; i++ {
		if err := client.Invoke([]byte(fmt.Sprintf("op-%d", i))); err != nil {
			t.Fatalf("invoke: %v", err)
		}
	}
	skip := map[int]bool{3: true}
	tc.waitAllDelivered(total, 5*time.Second, skip)
	tc.assertSameOrder(skip)
}

func TestCrashLeaderTriggersLeaderChange(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4, requestTimeout: 300 * time.Millisecond})
	// Replica 0 leads regency 0. Crash it before any request.
	tc.replicas[0].Stop()
	tc.net.Disconnect(ReplicaID(0).Addr())

	client := tc.client(t, "client-1", false)
	const total = 10
	for i := 0; i < total; i++ {
		if err := client.Invoke([]byte(fmt.Sprintf("op-%d", i))); err != nil {
			t.Fatalf("invoke: %v", err)
		}
	}
	skip := map[int]bool{0: true}
	tc.waitAllDelivered(total, 10*time.Second, skip)
	tc.assertSameOrder(skip)
	for i := 1; i < 4; i++ {
		if reg := tc.replicas[i].Stats().Regency; reg < 1 {
			t.Fatalf("replica %d still in regency %d", i, reg)
		}
	}
}

func TestCrashLeaderMidStream(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4, requestTimeout: 300 * time.Millisecond})
	client := tc.client(t, "client-1", false)

	const before, after = 15, 15
	for i := 0; i < before; i++ {
		if err := client.Invoke([]byte(fmt.Sprintf("pre-%02d", i))); err != nil {
			t.Fatalf("invoke: %v", err)
		}
	}
	tc.waitAllDelivered(before, 5*time.Second, nil)

	tc.replicas[0].Stop()
	tc.net.Disconnect(ReplicaID(0).Addr())

	for i := 0; i < after; i++ {
		if err := client.Invoke([]byte(fmt.Sprintf("post-%02d", i))); err != nil {
			t.Fatalf("invoke: %v", err)
		}
	}
	skip := map[int]bool{0: true}
	tc.waitAllDelivered(before+after, 10*time.Second, skip)
	tc.assertSameOrder(skip)
}

func TestByzantineLeaderCorruptPropose(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4, requestTimeout: 300 * time.Millisecond, withKeys: true})
	tc.replicas[0].SetBehavior(Behavior{CorruptPropose: true})

	client := tc.client(t, "client-1", false)
	const total = 10
	for i := 0; i < total; i++ {
		if err := client.Invoke([]byte(fmt.Sprintf("op-%d", i))); err != nil {
			t.Fatalf("invoke: %v", err)
		}
	}
	// Honest replicas refuse the corrupt proposals, time out, change
	// leader, and order the requests under the new regency.
	skip := map[int]bool{0: true}
	tc.waitAllDelivered(total, 10*time.Second, skip)
	tc.assertSameOrder(skip)
}

func TestByzantineLeaderEquivocation(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4, requestTimeout: 300 * time.Millisecond, withKeys: true})
	tc.replicas[0].SetBehavior(Behavior{Equivocate: true})

	client := tc.client(t, "client-1", false)
	const total = 10
	for i := 0; i < total; i++ {
		if err := client.Invoke([]byte(fmt.Sprintf("op-%d", i))); err != nil {
			t.Fatalf("invoke: %v", err)
		}
	}
	skip := map[int]bool{0: true}
	tc.waitAllDelivered(total, 10*time.Second, skip)
	tc.assertSameOrder(skip)
}

func TestMuteLeaderRecovers(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4, requestTimeout: 300 * time.Millisecond})
	tc.replicas[0].SetBehavior(Behavior{Mute: true})

	client := tc.client(t, "client-1", false)
	const total = 8
	for i := 0; i < total; i++ {
		if err := client.Invoke([]byte(fmt.Sprintf("op-%d", i))); err != nil {
			t.Fatalf("invoke: %v", err)
		}
	}
	skip := map[int]bool{0: true}
	tc.waitAllDelivered(total, 10*time.Second, skip)
	tc.assertSameOrder(skip)
}

func TestCheckpointTruncatesLog(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4, checkpointIvl: 4, batchSize: 1})
	client := tc.client(t, "client-1", false)
	const total = 30
	for i := 0; i < total; i++ {
		if err := client.Invoke([]byte(fmt.Sprintf("op-%02d", i))); err != nil {
			t.Fatalf("invoke: %v", err)
		}
	}
	tc.waitAllDelivered(total, 10*time.Second, nil)
	// With batch size 1, 30 ops mean ~30 instances and several checkpoint
	// rounds; the decided log must stay bounded by the interval plus the
	// in-flight window rather than growing with history.
	waitFor(t, 5*time.Second, "log truncation", func() bool {
		for _, rep := range tc.replicas {
			if rep.Stats().LastDelivered < total-1 {
				return false
			}
		}
		return true
	})
	time.Sleep(50 * time.Millisecond)
	for i, rep := range tc.replicas {
		var logLen int
		var cp int64
		if !rep.Inspect(func() {
			logLen = len(rep.decidedLog)
			cp = rep.checkpointSeq
		}) {
			t.Fatalf("replica %d stopped", i)
		}
		if cp < 0 {
			t.Fatalf("replica %d never checkpointed", i)
		}
		if logLen > 16 {
			t.Fatalf("replica %d decided log holds %d entries after checkpoints", i, logLen)
		}
	}
}

func TestLaggingReplicaStateTransfer(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4, checkpointIvl: 4, batchSize: 1})
	// Partition replica 3 away from everyone.
	lagged := ReplicaID(3).Addr()
	others := []transport.Addr{ReplicaID(0).Addr(), ReplicaID(1).Addr(), ReplicaID(2).Addr()}
	tc.net.Partition([]transport.Addr{lagged}, others)

	client := tc.client(t, "client-1", false)
	const total = 40
	for i := 0; i < total; i++ {
		if err := client.Invoke([]byte(fmt.Sprintf("op-%02d", i))); err != nil {
			t.Fatalf("invoke: %v", err)
		}
	}
	skip := map[int]bool{3: true}
	tc.waitAllDelivered(total, 10*time.Second, skip)

	// Heal the partition and send more traffic so replica 3 observes the
	// gap and performs a state transfer.
	tc.net.Heal()
	for i := 0; i < 5; i++ {
		if err := client.Invoke([]byte(fmt.Sprintf("extra-%d", i))); err != nil {
			t.Fatalf("invoke: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	tc.waitAllDelivered(total+5, 15*time.Second, nil)
	tc.assertSameOrder(nil)
}

func TestTentativeOrdering(t *testing.T) {
	weights, err := BinaryWeights(ids(5), 1, 1, []ReplicaID{0, 1})
	if err != nil {
		t.Fatalf("weights: %v", err)
	}
	tc := newTestCluster(t, clusterOpts{n: 5, tentative: true, weights: weights})
	client := tc.client(t, "client-1", true)

	const total = 40
	for i := 0; i < total; i++ {
		if err := client.Invoke([]byte(fmt.Sprintf("op-%02d", i))); err != nil {
			t.Fatalf("invoke: %v", err)
		}
	}
	tc.waitAllDelivered(total, 10*time.Second, nil)
	tc.assertSameOrder(nil)
}

func TestTentativeSyncCallUsesLargerQuorum(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{
		n: 4, tentative: true,
		resultFunc: func(_ int64, op []byte) []byte { return op },
	})
	client := tc.client(t, "caller", true)
	if client.quorum != QuorumSize(4, 1) {
		t.Fatalf("tentative client quorum = %d, want %d", client.quorum, QuorumSize(4, 1))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := client.Call(ctx, []byte("v"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(res) != "v" {
		t.Fatalf("result = %q", res)
	}
}

func TestTentativeCrashLeaderNoLoss(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4, tentative: true, requestTimeout: 300 * time.Millisecond})
	client := tc.client(t, "client-1", true)

	const before, after = 10, 10
	for i := 0; i < before; i++ {
		if err := client.Invoke([]byte(fmt.Sprintf("pre-%02d", i))); err != nil {
			t.Fatalf("invoke: %v", err)
		}
	}
	tc.waitAllDelivered(before, 5*time.Second, nil)
	tc.replicas[0].Stop()
	tc.net.Disconnect(ReplicaID(0).Addr())
	for i := 0; i < after; i++ {
		if err := client.Invoke([]byte(fmt.Sprintf("post-%02d", i))); err != nil {
			t.Fatalf("invoke: %v", err)
		}
	}
	skip := map[int]bool{0: true}
	tc.waitAllDelivered(before+after, 10*time.Second, skip)
	tc.assertSameOrder(skip)
}

func TestClientCloseUnblocksCall(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4})
	// Point the client at nonexistent replicas so the call can never
	// complete.
	conn, err := tc.net.Join("stuck-client")
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	client, err := NewClient(conn, ClientConfig{Replicas: []ReplicaID{77, 78, 79, 80}})
	if err != nil {
		t.Fatalf("new client: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := client.Call(context.Background(), []byte("never"))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	client.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Call returned nil after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Call did not unblock on Close")
	}
}

func TestStatsProgress(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4})
	client := tc.client(t, "client-1", false)
	for i := 0; i < 10; i++ {
		if err := client.Invoke([]byte{byte(i)}); err != nil {
			t.Fatalf("invoke: %v", err)
		}
	}
	tc.waitAllDelivered(10, 5*time.Second, nil)
	s := tc.replicas[0].Stats()
	if s.DeliveredOps < 10 || s.Decided < 1 {
		t.Fatalf("stats not progressing: %+v", s)
	}
}
