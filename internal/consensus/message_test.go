package consensus

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/cryptoutil"
)

func TestRequestRoundTrip(t *testing.T) {
	in := &request{ClientID: "frontend-1", Seq: 42, Op: []byte("envelope")}
	out, err := unmarshalRequest(in.marshal())
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.ClientID != in.ClientID || out.Seq != in.Seq || !bytes.Equal(out.Op, in.Op) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	f := func(client string, seq uint64, op []byte) bool {
		in := &request{ClientID: client, Seq: seq, Op: op}
		out, err := unmarshalRequest(in.marshal())
		if err != nil {
			return false
		}
		return out.ClientID == in.ClientID && out.Seq == in.Seq && bytes.Equal(out.Op, in.Op)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProposeRoundTrip(t *testing.T) {
	in := &proposeMsg{Regency: 3, Seq: 99, Batch: [][]byte{[]byte("a"), []byte("bb")}}
	out, err := unmarshalPropose(in.marshal())
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Regency != in.Regency || out.Seq != in.Seq || len(out.Batch) != 2 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if !bytes.Equal(out.Batch[1], []byte("bb")) {
		t.Fatalf("batch entry mismatch: %q", out.Batch[1])
	}
}

func TestVoteRoundTrip(t *testing.T) {
	in := &voteMsg{Regency: 1, Seq: 7, Digest: cryptoutil.Hash([]byte("batch"))}
	out, err := unmarshalVote(in.marshal())
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if *out != *in {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestStopRoundTrip(t *testing.T) {
	out, err := unmarshalStop((&stopMsg{NextRegency: 5}).marshal())
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.NextRegency != 5 {
		t.Fatalf("NextRegency = %d", out.NextRegency)
	}
}

func TestStopDataRoundTrip(t *testing.T) {
	in := &stopDataMsg{
		Regency:     2,
		LastDecided: 17,
		Certs: []writeCert{
			{Seq: 18, Regency: 1, Digest: cryptoutil.Hash([]byte("x")),
				Batch: [][]byte{[]byte("op1")}},
			{Seq: 19, Regency: 0, Digest: cryptoutil.Hash([]byte("y"))},
		},
		Signature: []byte("sig"),
	}
	out, err := unmarshalStopData(in.marshal())
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Regency != 2 || out.LastDecided != 17 || len(out.Certs) != 2 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if out.Certs[0].Seq != 18 || out.Certs[0].Regency != 1 ||
		out.Certs[0].Digest != in.Certs[0].Digest ||
		len(out.Certs[0].Batch) != 1 {
		t.Fatalf("cert mismatch: %+v", out.Certs[0])
	}
	if !bytes.Equal(out.Signature, []byte("sig")) {
		t.Fatalf("signature mismatch")
	}
	// The signature must cover the body: same body, same signed bytes.
	if !bytes.Equal(in.signedBytes(), out.signedBytes()) {
		t.Fatal("signedBytes not stable across round trip")
	}
}

func TestSyncRoundTrip(t *testing.T) {
	in := &syncMsg{
		Regency: 4,
		Decisions: []syncDecision{
			{Seq: 20, HasCert: true, Batch: [][]byte{[]byte("op")}},
			{Seq: 21, HasCert: false},
		},
	}
	out, err := unmarshalSync(in.marshal())
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Regency != 4 || len(out.Decisions) != 2 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if !out.Decisions[0].HasCert || out.Decisions[1].HasCert {
		t.Fatal("HasCert flags mismatched")
	}
}

func TestStateMessagesRoundTrip(t *testing.T) {
	req, err := unmarshalStateRequest((&stateRequestMsg{FromSeq: -1}).marshal())
	if err != nil {
		t.Fatalf("unmarshal request: %v", err)
	}
	if req.FromSeq != -1 {
		t.Fatalf("FromSeq = %d", req.FromSeq)
	}

	in := &stateReplyMsg{
		CheckpointSeq: 10,
		Snapshot:      []byte("snap"),
		Entries: []logEntryWire{
			{Seq: 11, Batch: [][]byte{[]byte("a")}},
			{Seq: 12, Batch: nil},
		},
	}
	out, err := unmarshalStateReply(in.marshal())
	if err != nil {
		t.Fatalf("unmarshal reply: %v", err)
	}
	if out.CheckpointSeq != 10 || string(out.Snapshot) != "snap" || len(out.Entries) != 2 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if out.digest() != in.digest() {
		t.Fatal("digest not stable across round trip")
	}
}

func TestReplyRoundTrip(t *testing.T) {
	in := &replyMsg{ClientID: "c", ReqSeq: 9, Seq: 3, Tentative: true, Result: []byte("r")}
	out, err := unmarshalReply(in.marshal())
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.ClientID != "c" || out.ReqSeq != 9 || out.Seq != 3 || !out.Tentative ||
		!bytes.Equal(out.Result, []byte("r")) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestBatchDigestProperties(t *testing.T) {
	a := [][]byte{[]byte("x"), []byte("y")}
	if batchDigest(1, a) == batchDigest(2, a) {
		t.Fatal("digest must bind the sequence number")
	}
	if batchDigest(1, a) != batchDigest(1, [][]byte{[]byte("x"), []byte("y")}) {
		t.Fatal("digest must be deterministic")
	}
	if batchDigest(1, [][]byte{[]byte("xy")}) == batchDigest(1, a) {
		t.Fatal("digest must separate entry boundaries")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	garbage := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	if _, err := unmarshalPropose(garbage); err == nil {
		t.Error("propose accepted garbage")
	}
	if _, err := unmarshalVote(garbage[:3]); err == nil {
		t.Error("vote accepted garbage")
	}
	if _, err := unmarshalStopData(garbage); err == nil {
		t.Error("stopdata accepted garbage")
	}
	if _, err := unmarshalSync(garbage); err == nil {
		t.Error("sync accepted garbage")
	}
	if _, err := unmarshalStateReply(garbage); err == nil {
		t.Error("state reply accepted garbage")
	}
	if _, err := unmarshalRequest(garbage); err == nil {
		t.Error("request accepted garbage")
	}
}
