package consensus

import (
	"fmt"
	"os"
)

// This file wires a durable backend under the replica (the WAL + checkpoint
// discipline the paper's replicas rely on to survive crashes, Section 5.2):
// every decided batch is fsynced before it is delivered to the application,
// checkpoints are persisted as they are taken, and on construction the
// replica restores the newest checkpoint and replays the logged suffix, so
// a restart resumes exactly at the durable frontier instead of at zero.

// Durability persists consensus decisions and checkpoints. Implementations
// (storage.NodeStorage) must make AppendDecision block until the record is
// on disk; the replica calls it from the event loop before executing the
// batch, which is what makes the log write-ahead.
type Durability interface {
	// AppendDecision durably logs the decided batch of instance seq.
	AppendDecision(seq int64, batch [][]byte) error
	// SaveCheckpoint durably stores the wrapped snapshot taken at seq and
	// may prune log records at or below seq.
	SaveCheckpoint(seq int64, snapshot []byte) error
}

// DecisionToken tracks an asynchronously enqueued decision record: Wait
// blocks until the record is fsynced and returns the commit error, if
// any; Done reports completion without blocking (the replica polls it to
// surface commit failures from the event loop without ever stalling on
// the fsync).
type DecisionToken interface {
	Wait() error
	Done() bool
}

// AsyncDurability is the optional extension backends implement when they
// can enqueue a decision record and complete it on a later group commit
// (storage.NodeStorage's commit queue over the unified log). A replica whose backend
// implements it logs decisions without blocking the event loop on the
// fsync: the record is enqueued in sequence order, the loop keeps
// executing, and the application gates externally visible effects on the
// token — the write-ahead discipline moves from "fsync before execute"
// to "fsync before anything leaves the node", which is what the paper
// actually requires, at a fraction of the stall.
type AsyncDurability interface {
	Durability
	// AppendDecisionAsync enqueues the decided batch of instance seq for
	// the next group commit and returns its durability token. Appends
	// must commit in call order.
	AppendDecisionAsync(seq int64, batch [][]byte) DecisionToken
	// SaveCheckpointAsync persists the snapshot off the calling
	// goroutine (a checkpoint subsumes older ones, so backends may
	// coalesce). The replica uses it so the checkpoint fsyncs never run
	// on the event loop either.
	SaveCheckpointAsync(seq int64, snapshot []byte)
}

// DurableEntry is one logged decision handed back at recovery.
type DurableEntry struct {
	Seq   int64
	Batch [][]byte
}

// DurableState is the recovered durable state a replica restores from.
type DurableState struct {
	// CheckpointSeq is -1 when no checkpoint exists.
	CheckpointSeq int64
	// Checkpoint is the wrapped snapshot at CheckpointSeq (the layout
	// produced by the replica's own checkpointing).
	Checkpoint []byte
	// Decisions are the logged batches after CheckpointSeq, in order.
	Decisions []DurableEntry
}

// WithDurability attaches a durable backend and the state recovered from
// it. NewReplica restores the checkpoint and replays the decisions through
// the application before returning, and the running replica logs every
// decision (and checkpoint) through d.
func WithDurability(d Durability, state *DurableState) Option {
	return func(r *Replica) {
		r.durable = d
		if ad, ok := d.(AsyncDurability); ok {
			r.durableAsync = ad
		}
		r.recoverState = state
	}
}

// restoreDurable replays the recovered state. Runs during NewReplica, on
// the constructing goroutine, before the event loop exists — so calling
// Application methods here honours the single-goroutine contract.
func (r *Replica) restoreDurable(st *DurableState) error {
	r.restoring = true
	defer func() { r.restoring = false }()
	if st.CheckpointSeq >= 0 {
		appSnap, ok := r.unwrapSnapshot(st.Checkpoint)
		if !ok {
			return fmt.Errorf("consensus: recovered checkpoint at seq %d is malformed", st.CheckpointSeq)
		}
		r.app.Restore(appSnap, st.CheckpointSeq)
		r.lastDelivered = st.CheckpointSeq
		r.lastStable = st.CheckpointSeq
		r.lastProposed = st.CheckpointSeq
		r.checkpointSeq = st.CheckpointSeq
		r.checkpointSnap = st.Checkpoint
		r.durableSeq = st.CheckpointSeq
		r.statDelivered.Store(st.CheckpointSeq)
	}
	for _, e := range st.Decisions {
		if e.Seq <= r.lastDelivered {
			continue // behind the checkpoint: pruning just hadn't caught up
		}
		if e.Seq != r.lastDelivered+1 {
			return fmt.Errorf("consensus: decision log gap at seq %d (delivered %d)",
				e.Seq, r.lastDelivered)
		}
		inst := r.instance(e.Seq)
		inst.batch = e.Batch
		inst.digest = batchDigest(e.Seq, e.Batch)
		inst.haveProposal = true
		inst.decided = true
		inst.decidedDigest = inst.digest
		r.durableSeq = e.Seq // already on disk: execute must not re-log it
		r.execute(inst)
		r.lastDelivered = e.Seq
		if e.Seq > r.lastProposed {
			r.lastProposed = e.Seq
		}
		r.statDelivered.Store(e.Seq)
		r.statDecided.Add(1)
	}
	r.advanceStable()
	return nil
}

// logDecision write-ahead-logs one decided batch if it is the next one the
// durable log expects. Gating on contiguity keeps the on-disk log dense
// (replay depends on it) and makes the hook idempotent across the several
// call sites that may see the same instance.
func (r *Replica) logDecision(seq int64, batch [][]byte) {
	if r.durable == nil || seq != r.durableSeq+1 {
		return
	}
	if r.durableAsync != nil {
		// Enqueue and keep going: records commit in call order, so the
		// on-disk log stays dense, and the application gates visible
		// effects on the token. A commit failure poisons the backend's
		// log (later enqueues fail too) and surfaces on the token at the
		// gate — the event loop itself never stalls on the fsync. The
		// previous token is polled (never waited on) so a poisoned log is
		// also reported here, from the loop, not only at the
		// dissemination gate.
		if prev := r.lastDecisionTok; prev != nil && prev.Done() {
			if err := prev.Wait(); err != nil && !r.durableFailureLogged {
				r.durableFailureLogged = true
				fmt.Fprintf(os.Stderr, "consensus: replica %d: async decision log failed before seq %d: %v\n",
					r.cfg.SelfID, seq, err)
			}
		}
		r.lastDecisionTok = r.durableAsync.AppendDecisionAsync(seq, batch)
		r.durableSeq = seq
		return
	}
	if err := r.durable.AppendDecision(seq, batch); err != nil {
		// Durability is lost but the replica can still make progress in
		// memory; surface the failure loudly rather than killing consensus.
		fmt.Fprintf(os.Stderr, "consensus: replica %d: decision log write failed at seq %d: %v\n",
			r.cfg.SelfID, seq, err)
		return
	}
	r.durableSeq = seq
}

// logCheckpoint persists a checkpoint snapshot and advances the durable
// frontier (a checkpoint subsumes every decision at or below its seq).
func (r *Replica) logCheckpoint(seq int64, snapshot []byte) {
	if r.durable == nil {
		return
	}
	if r.durableAsync != nil && seq <= r.durableSeq {
		// Routine checkpoint: every decision at or below seq is already
		// in the durable log (or enqueued ahead of this save's effects),
		// so the checkpoint is pure optimization — it only shortens
		// recovery's replay — and the loop need not wait for its fsyncs.
		r.durableAsync.SaveCheckpointAsync(seq, snapshot)
		return
	}
	// Bridging checkpoint (seq > durableSeq, e.g. a state-transfer jump
	// over decisions this replica never logged): it must be on disk
	// before any later decision record, or a crash in between would
	// leave a gap in the durable history. Save synchronously.
	if err := r.durable.SaveCheckpoint(seq, snapshot); err != nil {
		fmt.Fprintf(os.Stderr, "consensus: replica %d: checkpoint write failed at seq %d: %v\n",
			r.cfg.SelfID, seq, err)
		return
	}
	if seq > r.durableSeq {
		r.durableSeq = seq
	}
}
