package consensus

import (
	"testing"
	"testing/quick"
)

func ids(n int) []ReplicaID {
	out := make([]ReplicaID, n)
	for i := range out {
		out[i] = ReplicaID(i)
	}
	return out
}

func TestMaxFaults(t *testing.T) {
	cases := []struct{ n, f int }{
		{1, 0}, {3, 0}, {4, 1}, {5, 1}, {6, 1}, {7, 2}, {10, 3}, {13, 4},
	}
	for _, c := range cases {
		if got := MaxFaults(c.n); got != c.f {
			t.Errorf("MaxFaults(%d) = %d, want %d", c.n, got, c.f)
		}
	}
}

func TestQuorumSize(t *testing.T) {
	// The paper's quorum is ceil((n+f+1)/2).
	cases := []struct{ n, f, q int }{
		{4, 1, 3}, {7, 2, 5}, {10, 3, 7}, {5, 1, 4},
	}
	for _, c := range cases {
		if got := QuorumSize(c.n, c.f); got != c.q {
			t.Errorf("QuorumSize(%d,%d) = %d, want %d", c.n, c.f, got, c.q)
		}
	}
}

func TestQuorumIntersectionProperty(t *testing.T) {
	// Any two quorums of size ceil((n+f+1)/2) intersect in at least f+1
	// replicas (so at least one correct replica).
	f := func(nRaw, fRaw uint8) bool {
		fv := int(fRaw%4) + 1
		n := 3*fv + 1 + int(nRaw%3) // n in [3f+1, 3f+3]
		q := QuorumSize(n, fv)
		// Worst-case overlap of two quorums drawn from n replicas.
		overlap := 2*q - n
		return overlap >= fv+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryWeightsPaperConfig(t *testing.T) {
	// WHEAT with n=5, f=1, delta=1: two replicas weigh Vmax=2, three weigh
	// Vmin=1 (footnote 11 of the paper).
	replicas := ids(5)
	weights, err := BinaryWeights(replicas, 1, 1, []ReplicaID{0, 4})
	if err != nil {
		t.Fatalf("BinaryWeights: %v", err)
	}
	if weights[0] != 2 || weights[4] != 2 {
		t.Fatalf("preferred replicas not Vmax: %v", weights)
	}
	if weights[1] != 1 || weights[2] != 1 || weights[3] != 1 {
		t.Fatalf("non-preferred replicas not Vmin: %v", weights)
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	if total != 7 { // n + 2*delta
		t.Fatalf("total weight = %d, want 7", total)
	}
}

func TestBinaryWeightsDeltaZero(t *testing.T) {
	weights, err := BinaryWeights(ids(4), 1, 0, nil)
	if err != nil {
		t.Fatalf("BinaryWeights: %v", err)
	}
	for id, w := range weights {
		if w != 1 {
			t.Fatalf("replica %d weight %d, want 1", id, w)
		}
	}
}

func TestBinaryWeightsValidation(t *testing.T) {
	if _, err := BinaryWeights(ids(5), 1, 2, nil); err == nil {
		t.Fatal("accepted n != 3f+1+delta")
	}
	if _, err := BinaryWeights(ids(9), 2, 2, nil); err != nil {
		t.Fatalf("rejected valid n=9 f=2 delta=2: %v", err)
	}
	if _, err := BinaryWeights(ids(8), 2, 1, nil); err == nil {
		t.Fatal("accepted delta not multiple of f")
	}
}

func TestBinaryWeightsFillsSlotsWithoutPreferred(t *testing.T) {
	weights, err := BinaryWeights(ids(5), 1, 1, nil)
	if err != nil {
		t.Fatalf("BinaryWeights: %v", err)
	}
	vmax := 0
	for _, w := range weights {
		if w == 2 {
			vmax++
		}
	}
	if vmax != 2 {
		t.Fatalf("expected 2 Vmax replicas, got %d (%v)", vmax, weights)
	}
}

func TestWeightedQuorumClassicEquivalence(t *testing.T) {
	// With unit weights the tracker must reduce to ceil((n+f+1)/2).
	for _, n := range []int{4, 7, 10} {
		f := MaxFaults(n)
		qt := newQuorumTracker(ids(n), nil, f)
		if qt.quorumWeight != QuorumSize(n, f) {
			t.Errorf("n=%d: quorumWeight = %d, want %d", n, qt.quorumWeight, QuorumSize(n, f))
		}
	}
}

func TestWeightedQuorumWheat(t *testing.T) {
	// n=5, f=1, delta=1, total V=7, Vmax=2: quorum weight is
	// floor((7+2)/2)+1 = 5.
	weights, err := BinaryWeights(ids(5), 1, 1, []ReplicaID{0, 1})
	if err != nil {
		t.Fatalf("BinaryWeights: %v", err)
	}
	qt := newQuorumTracker(ids(5), weights, 1)
	if qt.quorumWeight != 5 {
		t.Fatalf("quorumWeight = %d, want 5", qt.quorumWeight)
	}
	voters := func(members ...ReplicaID) map[ReplicaID]struct{} {
		s := make(map[ReplicaID]struct{})
		for _, id := range members {
			s[id] = struct{}{}
		}
		return s
	}
	// Both Vmax replicas + one Vmin = 2+2+1 = 5: quorum.
	if !qt.isQuorum(voters(0, 1, 2)) {
		t.Fatal("Vmax+Vmax+Vmin should be a quorum")
	}
	// One Vmax + two Vmin = 4: not a quorum.
	if qt.isQuorum(voters(0, 2, 3)) {
		t.Fatal("Vmax+Vmin+Vmin must not be a quorum")
	}
	// One Vmax + three Vmin = 5: quorum.
	if !qt.isQuorum(voters(0, 2, 3, 4)) {
		t.Fatal("Vmax+3*Vmin should be a quorum")
	}
	// All three Vmin = 3: not a quorum.
	if qt.isQuorum(voters(2, 3, 4)) {
		t.Fatal("3*Vmin must not be a quorum")
	}
}

func TestWeightedQuorumIntersectionProperty(t *testing.T) {
	// For every binary weight assignment, any two weighted quorums
	// intersect with total weight > f*Vmax, which guarantees a common
	// correct replica even if f replicas (worst case: the heaviest ones)
	// are Byzantine.
	f := func(fRaw, deltaMultRaw uint8, seed int64) bool {
		fv := int(fRaw%3) + 1
		delta := fv * int(deltaMultRaw%3) // 0, f, or 2f
		n := 3*fv + 1 + delta
		replicas := ids(n)
		weights, err := BinaryWeights(replicas, fv, delta, nil)
		if err != nil {
			return false
		}
		qt := newQuorumTracker(replicas, weights, fv)
		// Worst-case intersection weight of two quorums: each quorum has
		// weight >= quorumWeight out of total V, so the overlap weight is
		// at least 2*quorumWeight - V.
		overlap := 2*qt.quorumWeight - qt.totalWeight
		return overlap > fv*qt.maxWeight
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	base := Config{SelfID: 0, Replicas: ids(4)}
	if _, err := NewReplica(base.withDefaults(), nil, nil); err == nil {
		t.Fatal("nil app accepted")
	}
	cases := []Config{
		{SelfID: 9, Replicas: ids(4)},                                   // self not a member
		{SelfID: 0, Replicas: []ReplicaID{0, 0, 1, 2}},                  // duplicate
		{SelfID: 0, Replicas: ids(4), F: 2},                             // too many faults
		{SelfID: 0, Replicas: nil},                                      // empty
		{SelfID: 0, Replicas: ids(4), Weights: map[ReplicaID]int{0: 1}}, // incomplete weights
	}
	for i, cfg := range cases {
		if err := cfg.withDefaults().validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	good := Config{SelfID: 0, Replicas: ids(4)}.withDefaults()
	if err := good.validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if good.F != 1 || good.BatchSize != DefaultBatchSize {
		t.Fatalf("defaults not applied: %+v", good)
	}
}

func TestLeaderRotation(t *testing.T) {
	r := &Replica{membership: ids(4)}
	if got := r.leaderOf(0); got != 0 {
		t.Fatalf("leaderOf(0) = %d", got)
	}
	if got := r.leaderOf(5); got != 1 {
		t.Fatalf("leaderOf(5) = %d", got)
	}
	if got := r.leaderOf(-1); got < 0 || int(got) >= 4 {
		t.Fatalf("leaderOf(-1) out of range: %d", got)
	}
}

func TestReplicaAddr(t *testing.T) {
	if ReplicaID(3).Addr() != "replica-3" {
		t.Fatalf("Addr = %q", ReplicaID(3).Addr())
	}
}
