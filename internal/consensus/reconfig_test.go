package consensus

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/transport"
)

func TestReconfigOpCodec(t *testing.T) {
	op := ReconfigOp{Kind: ReconfigAdd, Replica: 4, Weight: 2}
	encoded := EncodeReconfigOp(op)
	if !IsReconfigOp(encoded) {
		t.Fatal("encoded op not recognized")
	}
	decoded, ok := decodeReconfigOp(encoded)
	if !ok || decoded != op {
		t.Fatalf("round trip = %+v, %v", decoded, ok)
	}
	if IsReconfigOp([]byte("ordinary payload")) {
		t.Fatal("ordinary payload recognized as reconfig")
	}
	if IsReconfigOp(nil) {
		t.Fatal("nil recognized as reconfig")
	}
	// Truncated and bad-kind encodings are rejected.
	if IsReconfigOp(encoded[:len(encoded)-2]) {
		t.Fatal("truncated op accepted")
	}
	bad := EncodeReconfigOp(ReconfigOp{Kind: 9, Replica: 1})
	if IsReconfigOp(bad) {
		t.Fatal("unknown kind accepted")
	}
}

func TestReconfigRemoveReplica(t *testing.T) {
	// Start with 5 replicas (f=1); remove replica 4 through consensus; the
	// remaining 4 keep ordering, and all report the shrunken membership.
	tc := newTestCluster(t, clusterOpts{n: 5})
	client := tc.client(t, "admin", false)

	for i := 0; i < 5; i++ {
		if err := client.Invoke([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatalf("invoke: %v", err)
		}
	}
	tc.waitAllDelivered(5, 5*time.Second, nil)

	if err := client.Invoke(EncodeReconfigOp(ReconfigOp{Kind: ReconfigRemove, Replica: 4})); err != nil {
		t.Fatalf("reconfig invoke: %v", err)
	}
	waitFor(t, 5*time.Second, "membership shrink", func() bool {
		for i := 0; i < 4; i++ {
			if tc.replicas[i].Stats().Members != 4 {
				return false
			}
		}
		return true
	})
	// The removed node plays no further part; stop it.
	tc.replicas[4].Stop()
	tc.net.Disconnect(ReplicaID(4).Addr())

	for i := 0; i < 5; i++ {
		if err := client.Invoke([]byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatalf("invoke: %v", err)
		}
	}
	skip := map[int]bool{4: true}
	tc.waitAllDelivered(10, 10*time.Second, skip)
	tc.assertSameOrder(skip)

	membership := tc.replicas[0].Membership()
	if len(membership) != 4 {
		t.Fatalf("membership = %v", membership)
	}
	for _, id := range membership {
		if id == 4 {
			t.Fatal("removed replica still a member")
		}
	}
}

func TestReconfigAddReplica(t *testing.T) {
	// Start a 4-replica group, then add replica 4: a freshly started node
	// that already lists the full membership in its static config. It
	// catches up via state transfer and participates.
	tc := newTestCluster(t, clusterOpts{n: 4, checkpointIvl: 4, batchSize: 2})
	client := tc.client(t, "admin", false)

	for i := 0; i < 8; i++ {
		if err := client.Invoke([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatalf("invoke: %v", err)
		}
	}
	tc.waitAllDelivered(8, 5*time.Second, nil)

	// Order the membership change.
	if err := client.Invoke(EncodeReconfigOp(ReconfigOp{Kind: ReconfigAdd, Replica: 4})); err != nil {
		t.Fatalf("reconfig invoke: %v", err)
	}
	waitFor(t, 5*time.Second, "membership growth", func() bool {
		for i := 0; i < 4; i++ {
			if tc.replicas[i].Stats().Members != 5 {
				return false
			}
		}
		return true
	})

	// Boot the new node with the five-member configuration.
	conn, err := tc.net.Join(ReplicaID(4).Addr())
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	app := &recordApp{}
	rep, err := NewReplica(Config{
		SelfID:             4,
		Replicas:           []ReplicaID{0, 1, 2, 3, 4},
		RequestTimeout:     500 * time.Millisecond,
		BatchTimeout:       2 * time.Millisecond,
		BatchSize:          2,
		CheckpointInterval: 4,
	}, app, conn)
	if err != nil {
		t.Fatalf("new replica: %v", err)
	}
	rep.Start()
	t.Cleanup(rep.Stop)
	tc.replicas = append(tc.replicas, rep)
	tc.apps = append(tc.apps, app)

	// More traffic: the new node must catch up (state transfer) and then
	// execute everything the others execute.
	for i := 0; i < 10; i++ {
		if err := client.Invoke([]byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatalf("invoke: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	waitFor(t, 15*time.Second, "new node catches up", func() bool {
		return tc.apps[4].opCount() >= 10
	})
	// The suffix ordered after the join must match across all replicas.
	ref := tc.apps[0].opsFlat()
	got := tc.apps[4].opsFlat()
	if len(got) == 0 || len(got) > len(ref) {
		t.Fatalf("new node executed %d ops, reference %d", len(got), len(ref))
	}
	offset := len(ref) - len(got)
	for i := range got {
		if string(got[i]) != string(ref[offset+i]) {
			t.Fatalf("new node diverged at op %d: %q vs %q", i, got[i], ref[offset+i])
		}
	}
}

func TestReconfigIgnoresDuplicates(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{n: 4})
	client := tc.client(t, "admin", false)
	// Removing a non-member and re-adding an existing member are no-ops.
	if err := client.Invoke(EncodeReconfigOp(ReconfigOp{Kind: ReconfigRemove, Replica: 99})); err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if err := client.Invoke(EncodeReconfigOp(ReconfigOp{Kind: ReconfigAdd, Replica: 2})); err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if err := client.Invoke([]byte("payload")); err != nil {
		t.Fatalf("invoke: %v", err)
	}
	tc.waitAllDelivered(1, 5*time.Second, nil)
	if got := tc.replicas[0].Stats().Members; got != 4 {
		t.Fatalf("membership changed by no-op reconfigs: %d", got)
	}
}

func TestMembershipSnapshotRoundTrip(t *testing.T) {
	net := transport.NewInProcNetwork(transport.InProcConfig{})
	defer net.Close()
	conn, err := net.Join(ReplicaID(0).Addr())
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	rep, err := NewReplica(Config{
		SelfID:   0,
		Replicas: []ReplicaID{0, 1, 2, 3},
	}, &recordApp{}, conn)
	if err != nil {
		t.Fatalf("new replica: %v", err)
	}
	snap := rep.wrapSnapshot()

	conn2, err := net.Join(ReplicaID(1).Addr())
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	rep2, err := NewReplica(Config{
		SelfID:   1,
		Replicas: []ReplicaID{0, 1, 2, 3},
	}, &recordApp{}, conn2)
	if err != nil {
		t.Fatalf("new replica: %v", err)
	}
	if _, ok := rep2.unwrapSnapshot(snap); !ok {
		t.Fatal("snapshot with membership rejected")
	}
	if len(rep2.membership) != 4 {
		t.Fatalf("membership after restore = %v", rep2.membership)
	}
}
