package consensus

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/transport"
)

// Application is the replicated state machine driven by a replica. The
// ordering service's implementation turns ordered envelopes into signed
// blocks; tests use simple counter/log applications.
//
// All methods are invoked from the replica's event loop, never concurrently.
type Application interface {
	// Execute delivers the totally ordered operations of consensus instance
	// seq. In tentative mode (WHEAT) the call may later be undone by
	// Rollback if a leader change overrides the instance.
	Execute(seq int64, ops [][]byte)
	// Rollback undoes every Execute with sequence greater than seq.
	// Only invoked in tentative mode.
	Rollback(seq int64)
	// Snapshot serializes the application state after the last Execute.
	Snapshot() []byte
	// Restore replaces the application state with a snapshot taken at seq.
	Restore(snapshot []byte, seq int64)
}

// ResultFunc computes the reply payload for one executed operation. Nil
// results in empty replies.
type ResultFunc func(seq int64, op []byte) []byte

// Behavior injects Byzantine faults for testing. The zero value is honest.
type Behavior struct {
	// Mute drops every outgoing protocol message (fail-silent).
	Mute bool
	// CorruptPropose makes the leader propose malformed batch entries.
	CorruptPropose bool
	// Equivocate makes the leader send conflicting proposals to different
	// replicas.
	Equivocate bool
}

// Option customizes a replica.
type Option func(*Replica)

// WithResultFunc installs the reply computation for client requests.
func WithResultFunc(f ResultFunc) Option {
	return func(r *Replica) { r.resultFunc = f }
}

// WithoutClientReplies disables reply messages entirely; the ordering
// service uses its block-dissemination replier instead (Section 5.1).
func WithoutClientReplies() Option {
	return func(r *Replica) { r.disableReplies = true }
}

// WithCheckpointObserver registers a callback invoked on the event loop each
// time the replica takes a checkpoint at seq (before any log truncation the
// durability backend performs for it). The ordering layer uses it to record
// which blocks a checkpoint implies, so that checkpoint persistence can be
// gated on those blocks being durable.
func WithCheckpointObserver(f func(seq int64)) Option {
	return func(r *Replica) { r.ckptObserver = f }
}

// WithMembershipObserver registers a callback invoked on the event loop each
// time the membership epoch advances (an ordered ReconfigOp was applied, or
// a recovered/transferred snapshot installed a newer view). The ordering
// layer uses it to persist the membership record so a node that crashes
// after applying a reconfig recovers into the new group, not its static
// config. The callback receives a private copy it may retain.
func WithMembershipObserver(f func(view MembershipView)) Option {
	return func(r *Replica) { r.membershipObserver = f }
}

// WithExtraMessageHandler installs a handler for transport messages whose
// type the consensus layer does not own (anything >= 64). The ordering node
// uses it to accept frontend registrations on the replica's endpoint. The
// handler runs on the event loop and must not block.
func WithExtraMessageHandler(h func(transport.Message)) Option {
	return func(r *Replica) { r.extraHandler = h }
}

// maxPendingRequests bounds the request pool; beyond it new requests are
// dropped (the client retries). Keeps open-loop overload from exhausting
// memory.
const maxPendingRequests = 100_000

// instanceWindow bounds how far beyond the last delivered instance a
// replica participates; anything farther triggers state transfer instead.
const instanceWindow = 64

// stateGapThreshold is the lag (in instances) beyond which a replica stops
// trying to catch up vote-by-vote and requests a state transfer.
const stateGapThreshold = 16

// tickInterval drives batch timeouts, request timeouts, and sync-phase
// escalation.
const tickInterval = 2 * time.Millisecond

// pendingReq is a client request waiting to be ordered.
type pendingReq struct {
	req      *request
	raw      []byte // marshalled request (batch entry)
	arrived  time.Time
	inFlight bool // included in an open proposal
}

type voteKey struct {
	regency int32
	digest  cryptoutil.Digest
}

// instance is the per-consensus-instance protocol state.
type instance struct {
	seq          int64
	regency      int32 // regency of the registered proposal
	batch        [][]byte
	digest       cryptoutil.Digest
	haveProposal bool
	writes       map[voteKey]map[ReplicaID]struct{}
	accepts      map[voteKey]map[ReplicaID]struct{}
	writeSent    bool
	acceptSent   bool
	// writeCertified is set once a WRITE quorum formed for certDigest; the
	// pair is the evidence carried through leader changes.
	writeCertified bool
	certDigest     cryptoutil.Digest
	certRegency    int32
	decided        bool
	decidedDigest  cryptoutil.Digest
	executed       bool // delivered to the application (possibly tentatively)
	undo           []undoRec
}

// undoRec captures request-bookkeeping changes of a tentative execution so
// that Rollback can restore them.
type undoRec struct {
	key requestKey
	raw []byte
}

func newInstance(seq int64) *instance {
	return &instance{
		seq:     seq,
		writes:  make(map[voteKey]map[ReplicaID]struct{}),
		accepts: make(map[voteKey]map[ReplicaID]struct{}),
	}
}

// bufferedStopData holds a STOPDATA that arrived before this replica
// installed its regency.
type bufferedStopData struct {
	from ReplicaID
	msg  *stopDataMsg
}

// bufferedSync holds a SYNC that arrived before this replica installed its
// regency.
type bufferedSync struct {
	from ReplicaID
	msg  *syncMsg
}

// Stats is a snapshot of replica progress counters.
type Stats struct {
	Regency       int32
	Members       int32
	Epoch         uint64
	LastDelivered int64
	DeliveredOps  uint64
	Decided       int64
	LeaderChanges int64
	DroppedReqs   uint64
}

// Replica is one member of the BFT-SMaRt replication group. Create with
// NewReplica, then Start. All protocol state is owned by the event-loop
// goroutine.
type Replica struct {
	cfg  Config
	app  Application
	conn transport.Conn

	membership []ReplicaID
	qt         *quorumTracker
	// epoch counts ordered membership operations (every ReconfigOp bumps
	// it, including no-ops, so replicas that saw the op as a no-op — e.g. a
	// joiner whose static config already lists itself — stay in step with
	// the rest of the group). Event-loop owned; liveMembership mirrors it.
	epoch uint64
	// restoring is true while restoreDurable replays recovered state; the
	// unsafe-membership teeth switch keys off it.
	restoring bool
	// liveMembership is a lock-free snapshot of (epoch, members, f, weights)
	// readable from any goroutine, even before Start (Inspect would block).
	liveMembership atomic.Pointer[MembershipView]
	// membershipObserver, when set, is told about each membership epoch
	// transition on the event loop (see WithMembershipObserver).
	membershipObserver func(view MembershipView)

	// Normal-case protocol state.
	regency       int32
	instances     map[int64]*instance
	lastProposed  int64
	lastDelivered int64 // contiguous prefix delivered to the app
	lastStable    int64 // contiguous prefix decided AND delivered (confirm point)

	// Request pool.
	pending  map[requestKey]*pendingReq
	queue    []requestKey
	executed map[string]*clientDedup // exact per-client at-most-once

	// Decision log and checkpointing (Section 5.2).
	decidedLog     map[int64][][]byte
	checkpointSeq  int64
	checkpointSnap []byte

	// Durable storage (optional): decisions are fsynced (or, with an
	// AsyncDurability backend, enqueued in order for a later group
	// commit) before execution, and checkpoints persisted as taken.
	// durableSeq is the newest seq covered on disk or in the commit
	// queue (by log record or checkpoint).
	durable      Durability
	durableAsync AsyncDurability
	durableSeq   int64
	recoverState *DurableState
	// lastDecisionTok is the newest enqueued decision's durability token
	// (event-loop confined); logDecision polls it so a poisoned log is
	// reported from the loop, once.
	lastDecisionTok      DecisionToken
	durableFailureLogged bool

	// Synchronization phase (leader change).
	syncInProgress bool
	syncStarted    time.Time
	// peerRegency tracks the highest regency observed per peer; f+1 peers
	// beyond ours prove the group moved on (a restarted replica catches
	// up to the current view this way).
	peerRegency    map[ReplicaID]int32
	stopVotes      map[int32]map[ReplicaID]struct{}
	stopSent       map[int32]bool
	stopData       map[ReplicaID]*stopDataMsg
	futureStopData []bufferedStopData
	futureSync     *bufferedSync

	// State transfer.
	fetching     bool
	fetchStarted time.Time
	stateReplies map[ReplicaID]*stateReplyMsg

	// Reply generation.
	disableReplies bool
	resultFunc     ResultFunc

	// extraHandler receives non-consensus messages (types >= 64).
	extraHandler func(transport.Message)

	// ckptObserver, when set, is told about each checkpoint taken (event
	// loop; see WithCheckpointObserver).
	ckptObserver func(seq int64)

	behavior atomic.Pointer[Behavior]

	// Progress counters (read by Stats from other goroutines).
	statRegency   atomic.Int32
	statLeader    atomic.Int32
	statMembers   atomic.Int32
	statDelivered atomic.Int64
	statOps       atomic.Uint64
	statDecided   atomic.Int64
	statLC        atomic.Int64
	statDropped   atomic.Uint64

	started atomic.Bool
	done    chan struct{}
	wg      sync.WaitGroup

	// inspectCh runs closures on the event loop (race-free introspection
	// for tests and debugging).
	inspectCh chan func()
}

// NewReplica validates the configuration and creates a replica attached to
// the given transport endpoint.
func NewReplica(cfg Config, app Application, conn transport.Conn, opts ...Option) (*Replica, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if app == nil {
		return nil, fmt.Errorf("consensus: nil application")
	}
	if conn == nil {
		return nil, fmt.Errorf("consensus: nil transport connection")
	}
	membership := make([]ReplicaID, len(cfg.Replicas))
	copy(membership, cfg.Replicas)
	sort.Slice(membership, func(i, j int) bool { return membership[i] < membership[j] })

	r := &Replica{
		cfg:           cfg,
		app:           app,
		conn:          conn,
		membership:    membership,
		qt:            newQuorumTracker(membership, cfg.Weights, cfg.F),
		instances:     make(map[int64]*instance),
		lastProposed:  -1,
		lastDelivered: -1,
		lastStable:    -1,
		pending:       make(map[requestKey]*pendingReq),
		executed:      make(map[string]*clientDedup),
		decidedLog:    make(map[int64][][]byte),
		checkpointSeq: -1,
		durableSeq:    -1,
		peerRegency:   make(map[ReplicaID]int32),
		stopVotes:     make(map[int32]map[ReplicaID]struct{}),
		stopSent:      make(map[int32]bool),
		stopData:      make(map[ReplicaID]*stopDataMsg),
		stateReplies:  make(map[ReplicaID]*stateReplyMsg),
		done:          make(chan struct{}),
		inspectCh:     make(chan func()),
	}
	r.behavior.Store(&Behavior{})
	r.statMembers.Store(int32(len(membership)))
	r.publishMembership()
	for _, opt := range opts {
		opt(r)
	}
	if r.recoverState != nil {
		st := r.recoverState
		r.recoverState = nil
		if err := r.restoreDurable(st); err != nil {
			return nil, err
		}
	}
	r.refreshLeaderStat()
	return r, nil
}

// ID returns the replica's identity.
func (r *Replica) ID() ReplicaID { return r.cfg.SelfID }

// SetBehavior installs a (possibly Byzantine) behavior. Safe to call while
// the replica runs.
func (r *Replica) SetBehavior(b Behavior) { r.behavior.Store(&b) }

// refreshLeaderStat publishes the current leader for CurrentLeader. Called
// from the event loop (or before Start) whenever regency or membership
// changes.
func (r *Replica) refreshLeaderStat() {
	r.statLeader.Store(int32(r.leaderOf(r.regency)))
}

// CurrentLeader returns the id of the leader of the replica's current
// regency. Safe to call from any goroutine; the chaos invariants use it to
// observe leader changes without stopping the replica.
func (r *Replica) CurrentLeader() ReplicaID {
	return ReplicaID(r.statLeader.Load())
}

// Stats returns progress counters. Safe to call from any goroutine.
func (r *Replica) Stats() Stats {
	view := r.MembershipView()
	return Stats{
		Regency:       r.statRegency.Load(),
		Members:       r.statMembers.Load(),
		Epoch:         view.Epoch,
		LastDelivered: r.statDelivered.Load(),
		DeliveredOps:  r.statOps.Load(),
		Decided:       r.statDecided.Load(),
		LeaderChanges: r.statLC.Load(),
		DroppedReqs:   r.statDropped.Load(),
	}
}

// Start launches the event loop. It must be called exactly once.
func (r *Replica) Start() {
	if r.started.Swap(true) {
		return
	}
	r.wg.Add(1)
	go r.run()
}

// Stop terminates the event loop and waits for it to exit. The transport
// connection is left open (the caller owns it).
func (r *Replica) Stop() {
	if !r.started.Load() {
		return
	}
	select {
	case <-r.done:
		return // already stopped
	default:
	}
	close(r.done)
	r.wg.Wait()
}

func (r *Replica) run() {
	defer r.wg.Done()
	ticker := time.NewTicker(tickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.done:
			return
		case m, ok := <-r.conn.Inbox():
			if !ok {
				return
			}
			r.dispatch(m)
		case f := <-r.inspectCh:
			f()
		case <-ticker.C:
			r.onTick()
		}
	}
}

// DebugSnapshot renders a replica's protocol state for diagnostics.
func DebugSnapshot(r *Replica) string {
	out := "stopped"
	r.Inspect(func() {
		next := r.lastDelivered + 1
		instInfo := "none"
		if inst, ok := r.instances[next]; ok {
			instInfo = fmt.Sprintf("prop=%v writeSent=%v acceptSent=%v cert=%v decided=%v writes=%d accepts=%d",
				inst.haveProposal, inst.writeSent, inst.acceptSent,
				inst.writeCertified, inst.decided, len(inst.writes), len(inst.accepts))
		}
		out = fmt.Sprintf("regency=%d pending=%d queue=%d lastProposed=%d lastDelivered=%d lastStable=%d sync=%v fetch=%v inst[%d]: %s",
			r.regency, len(r.pending), len(r.queue), r.lastProposed,
			r.lastDelivered, r.lastStable, r.syncInProgress, r.fetching, next, instInfo)
	})
	return out
}

// Inspect runs f on the event-loop goroutine and waits for it to complete,
// giving race-free access to protocol state. It returns false if the
// replica is stopped.
func (r *Replica) Inspect(f func()) bool {
	donech := make(chan struct{})
	select {
	case r.inspectCh <- func() { f(); close(donech) }:
		<-donech
		return true
	case <-r.done:
		return false
	}
}

// dispatch routes one transport message to its protocol handler.
func (r *Replica) dispatch(m transport.Message) {
	if m.Type >= 64 {
		if r.extraHandler != nil {
			r.extraHandler(m)
		}
		return
	}
	from, isReplica := r.senderID(m.From)
	switch m.Type {
	case msgRequest:
		r.onRequest(m.Payload)
	case msgPropose:
		if !isReplica {
			return
		}
		if pm, err := unmarshalPropose(m.Payload); err == nil {
			r.onPropose(from, pm)
		}
	case msgWrite:
		if !isReplica {
			return
		}
		if vm, err := unmarshalVote(m.Payload); err == nil {
			r.onVote(from, vm, true)
		}
	case msgAccept:
		if !isReplica {
			return
		}
		if vm, err := unmarshalVote(m.Payload); err == nil {
			r.onVote(from, vm, false)
		}
	case msgStop:
		if !isReplica {
			return
		}
		if sm, err := unmarshalStop(m.Payload); err == nil {
			r.onStop(from, sm)
		}
	case msgStopData:
		if !isReplica {
			return
		}
		if sd, err := unmarshalStopData(m.Payload); err == nil {
			r.onStopData(from, sd)
		}
	case msgSync:
		if !isReplica {
			return
		}
		if sy, err := unmarshalSync(m.Payload); err == nil {
			r.onSync(from, sy)
		}
	case msgStateRequest:
		if !isReplica {
			return
		}
		if sr, err := unmarshalStateRequest(m.Payload); err == nil {
			r.onStateRequest(from, sr)
		}
	case msgStateReply:
		if !isReplica {
			return
		}
		if sp, err := unmarshalStateReply(m.Payload); err == nil {
			r.onStateReply(from, sp)
		}
	}
}

// senderID resolves a transport address to a member replica id.
func (r *Replica) senderID(addr transport.Addr) (ReplicaID, bool) {
	for _, id := range r.membership {
		if id.Addr() == addr {
			return id, true
		}
	}
	return 0, false
}

func (r *Replica) leaderOf(regency int32) ReplicaID {
	n := int32(len(r.membership))
	idx := regency % n
	if idx < 0 {
		idx += n
	}
	return r.membership[idx]
}

func (r *Replica) isLeader() bool {
	return r.leaderOf(r.regency) == r.cfg.SelfID
}

// broadcast sends a protocol message to every other member and then
// processes it locally (self-delivery without touching the network).
func (r *Replica) broadcast(msgType uint16, payload []byte) {
	if !r.behavior.Load().Mute {
		for _, id := range r.membership {
			if id == r.cfg.SelfID {
				continue
			}
			r.conn.Send(id.Addr(), msgType, payload)
		}
	}
	r.dispatch(transport.Message{
		From:    r.cfg.SelfID.Addr(),
		To:      r.cfg.SelfID.Addr(),
		Type:    msgType,
		Payload: payload,
	})
}

// sendTo sends a protocol message to one member (or processes it locally).
func (r *Replica) sendTo(id ReplicaID, msgType uint16, payload []byte) {
	if id == r.cfg.SelfID {
		r.dispatch(transport.Message{
			From:    r.cfg.SelfID.Addr(),
			To:      r.cfg.SelfID.Addr(),
			Type:    msgType,
			Payload: payload,
		})
		return
	}
	if r.behavior.Load().Mute {
		return
	}
	r.conn.Send(id.Addr(), msgType, payload)
}

// ---- Request handling ------------------------------------------------

func (r *Replica) onRequest(payload []byte) {
	rq, err := unmarshalRequest(payload)
	if err != nil {
		return
	}
	key := rq.key()
	if d, ok := r.executed[rq.ClientID]; ok && d.contains(rq.Seq) {
		return // already executed
	}
	if _, ok := r.pending[key]; ok {
		return // duplicate
	}
	if len(r.pending) >= maxPendingRequests {
		r.statDropped.Add(1)
		return
	}
	raw := make([]byte, len(payload))
	copy(raw, payload)
	r.pending[key] = &pendingReq{req: rq, raw: raw, arrived: time.Now()}
	r.queue = append(r.queue, key)
	r.maybePropose(false)
}

// debugTrace enables stall diagnostics (REPRO_TRACE=1 environment).
var debugTrace = os.Getenv("REPRO_TRACE") == "1"

// maybePropose lets the leader open the next consensus instance when the
// pipeline is free and a batch is available. When force is true a partial
// batch is proposed (batch timeout fired).
func (r *Replica) maybePropose(force bool) {
	if r.syncInProgress || r.fetching || !r.isLeader() {
		return
	}
	if !r.pipelineFree() {
		if debugTrace {
			fmt.Printf("maybePropose[%d]: pipeline busy (proposed=%d delivered=%d)\n",
				r.cfg.SelfID, r.lastProposed, r.lastDelivered)
		}
		return
	}
	batch, keys := r.collectBatch()
	if len(batch) == 0 {
		if debugTrace && len(r.pending) > 0 {
			inflight := 0
			for _, p := range r.pending {
				if p.inFlight {
					inflight++
				}
			}
			fmt.Printf("maybePropose[%d]: empty batch, pending=%d inflight=%d queue=%d\n",
				r.cfg.SelfID, len(r.pending), inflight, len(r.queue))
		}
		return
	}
	if len(batch) < r.cfg.BatchSize && !force {
		// Wait for the batch to fill unless the oldest request has been
		// waiting longer than the batch timeout.
		oldest := r.pending[keys[0]]
		if time.Since(oldest.arrived) < r.cfg.BatchTimeout {
			return
		}
	}
	seq := r.lastProposed + 1
	for _, k := range keys {
		r.pending[k].inFlight = true
	}
	r.lastProposed = seq
	r.propose(seq, batch)
}

// pipelineFree reports whether every instance up to lastProposed has
// progressed far enough to open the next one: decided normally, or
// write-certified in tentative mode (WHEAT overlaps the ACCEPT phase of
// instance i with instance i+1).
func (r *Replica) pipelineFree() bool {
	for s := r.lastDelivered + 1; s <= r.lastProposed; s++ {
		inst, ok := r.instances[s]
		if !ok {
			return false
		}
		if r.cfg.Tentative {
			if !inst.writeCertified {
				return false
			}
			continue
		}
		if !inst.decided {
			return false
		}
	}
	return r.lastProposed-r.lastDelivered < instanceWindow/2
}

// collectBatch gathers up to BatchSize pending, not-in-flight requests in
// arrival order. It also compacts the arrival queue.
func (r *Replica) collectBatch() ([][]byte, []requestKey) {
	var batch [][]byte
	var keys []requestKey
	compacted := r.queue[:0]
	for _, key := range r.queue {
		p, ok := r.pending[key]
		if !ok {
			continue // executed or dropped
		}
		compacted = append(compacted, key)
		if p.inFlight || len(batch) >= r.cfg.BatchSize {
			continue
		}
		batch = append(batch, p.raw)
		keys = append(keys, key)
	}
	r.queue = compacted
	return batch, keys
}

func (r *Replica) propose(seq int64, batch [][]byte) {
	b := r.behavior.Load()
	if b.CorruptPropose {
		garbage := make([][]byte, len(batch))
		for i := range garbage {
			garbage[i] = []byte{0xde, 0xad}
		}
		batch = garbage
	}
	pm := &proposeMsg{Regency: r.regency, Seq: seq, Batch: batch}
	if b.Equivocate {
		// Split the other replicas between two conflicting batches so
		// that neither digest can reach a WRITE quorum (the leader's own
		// vote plus a minority is below ceil((n+f+1)/2)): honest replicas
		// time out and run the synchronization phase.
		alt := &proposeMsg{Regency: r.regency, Seq: seq, Batch: batch[:len(batch)/2]}
		sent := 0
		for _, id := range r.membership {
			if id == r.cfg.SelfID {
				continue
			}
			m := pm
			if sent < len(r.membership)/2 {
				m = alt
			}
			sent++
			r.conn.Send(id.Addr(), msgPropose, m.marshal())
		}
		r.dispatch(transport.Message{
			From: r.cfg.SelfID.Addr(), To: r.cfg.SelfID.Addr(),
			Type: msgPropose, Payload: pm.marshal(),
		})
		return
	}
	r.broadcast(msgPropose, pm.marshal())
}

// ---- Normal-case consensus -------------------------------------------

func (r *Replica) onPropose(from ReplicaID, m *proposeMsg) {
	r.noteRegency(from, m.Regency)
	if r.syncInProgress || m.Regency != r.regency {
		return
	}
	if r.leaderOf(m.Regency) != from {
		return // only the regency's leader may propose
	}
	if m.Seq <= r.lastDelivered {
		return // stale
	}
	if m.Seq > r.lastDelivered+stateGapThreshold {
		r.requestStateTransfer()
		return
	}
	if len(m.Batch) > r.cfg.BatchSize {
		return
	}
	if !r.validateBatch(m.Batch) {
		return // malformed proposal: refuse to WRITE; timeout handles the leader
	}
	inst := r.instance(m.Seq)
	if inst.haveProposal && inst.regency == m.Regency {
		return // first proposal wins within a regency (equivocation defense)
	}
	if inst.decided {
		return
	}
	if inst.haveProposal && inst.regency != m.Regency {
		// The instance restarts under a new regency: vote flags reset so
		// this replica WRITEs for the re-proposed value.
		inst.writeSent = false
		inst.acceptSent = false
	}
	inst.batch = m.Batch
	inst.digest = batchDigest(m.Seq, m.Batch)
	inst.haveProposal = true
	inst.regency = m.Regency

	if !inst.writeSent {
		inst.writeSent = true
		vm := &voteMsg{Regency: r.regency, Seq: m.Seq, Digest: inst.digest}
		r.broadcast(msgWrite, vm.marshal())
	}
	r.checkQuorums(inst)
}

func (r *Replica) validateBatch(batch [][]byte) bool {
	for _, entry := range batch {
		rq, err := unmarshalRequest(entry)
		if err != nil {
			return false
		}
		if r.cfg.ValidateRequest != nil {
			if err := r.cfg.ValidateRequest(rq.Op); err != nil {
				return false
			}
		}
	}
	return true
}

func (r *Replica) instance(seq int64) *instance {
	inst, ok := r.instances[seq]
	if !ok {
		inst = newInstance(seq)
		r.instances[seq] = inst
	}
	return inst
}

func (r *Replica) onVote(from ReplicaID, m *voteMsg, isWrite bool) {
	r.noteRegency(from, m.Regency)
	if m.Regency != r.regency || r.syncInProgress {
		return
	}
	if m.Seq <= r.lastDelivered {
		// The instance is already delivered locally; late votes are noise
		// unless we have fallen behind (handled via propose/state paths).
		return
	}
	if m.Seq > r.lastDelivered+instanceWindow {
		r.requestStateTransfer()
		return
	}
	inst := r.instance(m.Seq)
	key := voteKey{regency: m.Regency, digest: m.Digest}
	votes := inst.writes
	if !isWrite {
		votes = inst.accepts
	}
	set, ok := votes[key]
	if !ok {
		set = make(map[ReplicaID]struct{})
		votes[key] = set
	}
	set[from] = struct{}{}
	r.checkQuorums(inst)
}

// checkQuorums advances an instance through WRITE-quorum (accept vote +
// tentative delivery + leader-change certificate) and ACCEPT-quorum
// (decision).
func (r *Replica) checkQuorums(inst *instance) {
	if inst.decided {
		return
	}
	// WRITE quorum: send ACCEPT for the certified digest.
	for key, set := range inst.writes {
		if key.regency != r.regency || !r.qt.isQuorum(toVoterSet(set)) {
			continue
		}
		if !inst.writeCertified || inst.certRegency < key.regency {
			inst.writeCertified = true
			inst.certDigest = key.digest
			inst.certRegency = key.regency
		}
		if !inst.acceptSent {
			inst.acceptSent = true
			vm := &voteMsg{Regency: r.regency, Seq: inst.seq, Digest: key.digest}
			r.broadcast(msgAccept, vm.marshal())
		}
		if r.cfg.Tentative {
			r.deliverContiguous()
		}
		r.maybePropose(false)
	}
	// ACCEPT quorum: decide.
	for key, set := range inst.accepts {
		if key.regency != r.regency || !r.qt.isQuorum(toVoterSet(set)) {
			continue
		}
		r.decide(inst, key.digest)
		return
	}
}

func toVoterSet(set map[ReplicaID]struct{}) map[ReplicaID]struct{} { return set }

func (r *Replica) decide(inst *instance, digest cryptoutil.Digest) {
	if inst.decided {
		return
	}
	inst.decided = true
	inst.decidedDigest = digest
	r.statDecided.Add(1)

	if !inst.haveProposal || inst.digest != digest {
		// Decided by quorum evidence without (or with a conflicting) local
		// proposal: fetch the decided batches from peers.
		inst.haveProposal = false
		r.requestStateTransfer()
		return
	}
	r.deliverContiguous()
	r.advanceStable()
	if inst.seq > r.lastDelivered+1 {
		// Decided ahead of a gap (e.g. a joining replica that missed the
		// prefix): catch up through state transfer rather than waiting for
		// votes that will never come.
		r.requestStateTransfer()
	}
	r.maybePropose(false)
}

// deliverContiguous executes every instance in the contiguous prefix that
// is ready: decided normally, or write-certified with a registered batch in
// tentative mode.
func (r *Replica) deliverContiguous() {
	for {
		seq := r.lastDelivered + 1
		inst, ok := r.instances[seq]
		if !ok || !inst.haveProposal {
			return
		}
		ready := inst.decided && inst.digest == inst.decidedDigest
		if !ready && r.cfg.Tentative {
			ready = inst.writeCertified && inst.certDigest == inst.digest
		}
		if !ready || inst.executed {
			if inst.executed {
				r.lastDelivered = seq
				continue
			}
			return
		}
		r.execute(inst)
		r.lastDelivered = seq
		r.statDelivered.Store(seq)
		if (seq+1)%r.cfg.CheckpointInterval == 0 {
			// Checkpoint boundaries are absolute (every interval-th
			// instance) so that all replicas produce byte-identical
			// checkpoints, which the f+1 matching rule of state transfer
			// depends on. The snapshot is only taken when the stable
			// prefix has caught up (no tentative suffix).
			r.advanceStable()
			if r.lastStable == seq {
				r.checkpointAt(seq)
			}
		}
	}
}

// execute delivers one instance's batch to the application, with
// deduplication and reply generation.
func (r *Replica) execute(inst *instance) {
	if inst.decided {
		// Write-ahead: the decision must be on disk before its effects
		// (sealed blocks, dissemination) become visible. Tentative
		// executions are logged later, once they turn stable.
		r.logDecision(inst.seq, inst.batch)
	}
	ops := make([][]byte, 0, len(inst.batch))
	var replies []*replyMsg
	for _, raw := range inst.batch {
		rq, err := unmarshalRequest(raw)
		if err != nil {
			continue // validated at propose time; defensive
		}
		dedup, ok := r.executed[rq.ClientID]
		if !ok {
			dedup = newClientDedup()
			r.executed[rq.ClientID] = dedup
		}
		if dedup.contains(rq.Seq) {
			continue // duplicate of an already executed request
		}
		if r.cfg.Tentative {
			inst.undo = append(inst.undo, undoRec{key: rq.key(), raw: raw})
		}
		dedup.mark(rq.Seq)
		key := rq.key()
		delete(r.pending, key)
		if rc, isReconfig := decodeReconfigOp(rq.Op); isReconfig {
			r.applyReconfig(rc)
			continue // membership changes are consumed by the replica layer
		}
		ops = append(ops, rq.Op)
		if !r.disableReplies {
			var result []byte
			if r.resultFunc != nil {
				result = r.resultFunc(inst.seq, rq.Op)
			}
			replies = append(replies, &replyMsg{
				ClientID:  rq.ClientID,
				ReqSeq:    rq.Seq,
				Seq:       inst.seq,
				Tentative: !inst.decided,
				Result:    result,
			})
		}
	}
	inst.executed = true
	r.app.Execute(inst.seq, ops)
	r.statOps.Add(uint64(len(ops)))
	if r.behavior.Load().Mute {
		return
	}
	for _, rm := range replies {
		r.conn.Send(transport.Addr(rm.ClientID), msgReply, rm.marshal())
	}
}

// advanceStable moves the confirm point (contiguous decided + executed
// prefix), records decisions in the log, and checkpoints periodically.
func (r *Replica) advanceStable() {
	for {
		seq := r.lastStable + 1
		inst, ok := r.instances[seq]
		if !ok || !inst.decided || !inst.executed || seq > r.lastDelivered {
			break
		}
		r.logDecision(seq, inst.batch)
		r.decidedLog[seq] = inst.batch
		r.lastStable = seq
	}
	// With no tentative suffix outstanding, the dedup floors may compact
	// (rollback can never cross the stable prefix).
	if r.lastDelivered == r.lastStable {
		for _, d := range r.executed {
			d.compact()
		}
	}
}

// checkpointAt snapshots the application at seq and truncates the decision
// log (Section 5.2: the tiny state makes frequent checkpoints cheap).
func (r *Replica) checkpointAt(seq int64) {
	if seq <= r.checkpointSeq {
		return
	}
	r.checkpointSeq = seq
	r.checkpointSnap = r.wrapSnapshot()
	if r.ckptObserver != nil {
		r.ckptObserver(seq)
	}
	r.logCheckpoint(seq, r.checkpointSnap)
	for s := range r.decidedLog {
		if s <= seq {
			delete(r.decidedLog, s)
		}
	}
	for s := range r.instances {
		if s <= seq {
			delete(r.instances, s)
		}
	}
}

func (r *Replica) onTick() {
	now := time.Now()
	if r.isLeader() {
		r.maybePropose(true)
	}
	if r.fetching && now.Sub(r.fetchStarted) > r.cfg.RequestTimeout {
		// Retry the state transfer.
		r.fetching = false
		r.requestStateTransfer()
	}
	if r.syncInProgress {
		if now.Sub(r.syncStarted) > r.cfg.RequestTimeout {
			r.triggerLeaderChange(r.regency + 1)
		}
		return
	}
	// Drop executed requests from the queue head so the watchdog always
	// inspects the oldest still-pending request, and periodically compact
	// the whole queue (followers never run collectBatch, which is where
	// the leader compacts).
	for len(r.queue) > 0 {
		if _, ok := r.pending[r.queue[0]]; ok {
			break
		}
		r.queue = r.queue[1:]
	}
	if len(r.queue) > 4*len(r.pending)+1024 {
		compacted := make([]requestKey, 0, len(r.pending))
		for _, key := range r.queue {
			if _, ok := r.pending[key]; ok {
				compacted = append(compacted, key)
			}
		}
		r.queue = compacted
	}
	// Request-timeout watchdog: a pending request older than the timeout
	// indicts the current leader. The queue is in arrival order, so the
	// head is the oldest.
	if len(r.queue) > 0 {
		if p, ok := r.pending[r.queue[0]]; ok && now.Sub(p.arrived) > r.cfg.RequestTimeout {
			r.triggerLeaderChange(r.regency + 1)
		}
	}
}
