package consensus

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/transport"
)

// ErrClientClosed is returned by calls issued after the client was closed.
var ErrClientClosed = errors.New("consensus client closed")

// ClientConfig parameterizes a consensus client (proxy).
type ClientConfig struct {
	// Replicas is the replication group the client talks to.
	Replicas []ReplicaID
	// F is the fault threshold; zero derives the maximum from len(Replicas).
	F int
	// Tentative selects WHEAT reply semantics: tentative executions force
	// clients to wait for ceil((n+f+1)/2) matching replies instead of f+1
	// (Section 4 of the paper).
	Tentative bool
}

// Client is the BFT-SMaRt client proxy: it broadcasts requests to every
// replica and, for synchronous calls, collects matching replies. The
// ordering-service frontend issues asynchronous invocations only ("the
// proxy... issues an asynchronous invocation request... ensuring it does
// not block waiting for replies", Section 5.1).
type Client struct {
	cfg     ClientConfig
	conn    transport.Conn
	id      string
	nextSeq atomic.Uint64
	quorum  int

	mu      sync.Mutex
	pending map[uint64]*clientCall
	closed  bool

	done chan struct{}
	wg   sync.WaitGroup
}

type clientCall struct {
	votes map[cryptoutil.Digest]map[string]struct{} // result digest -> replica addrs
	ch    chan []byte                               // capacity 1: completion signal
}

// NewClient attaches a client proxy to a transport endpoint. The endpoint's
// address is the client's identity: replicas address replies to it.
func NewClient(conn transport.Conn, cfg ClientConfig) (*Client, error) {
	if conn == nil {
		return nil, errors.New("consensus client: nil connection")
	}
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("consensus client: empty replica set")
	}
	if cfg.F <= 0 {
		cfg.F = MaxFaults(len(cfg.Replicas))
	}
	quorum := cfg.F + 1
	if cfg.Tentative {
		quorum = QuorumSize(len(cfg.Replicas), cfg.F)
	}
	c := &Client{
		cfg:     cfg,
		conn:    conn,
		id:      string(conn.Addr()),
		quorum:  quorum,
		pending: make(map[uint64]*clientCall),
		done:    make(chan struct{}),
	}
	// Sequence numbers start at a per-session base (wall-clock nanos) so a
	// client that restarts under the same identity never reuses sequences
	// its previous incarnation already had executed — with durable replicas
	// the old dedup state survives crashes, and seqs restarting at 1 would
	// be swallowed as duplicates. The replica-side dedup floor jumps over
	// session-sized gaps (see clientDedup.compact). Caveat: this relies on
	// the client host's clock not stepping backwards across restarts; a
	// client restarted under an earlier clock (VM snapshot restore) must
	// take a new identity.
	c.nextSeq.Store(uint64(time.Now().UnixNano()))
	c.wg.Add(1)
	go c.receiveLoop()
	return c, nil
}

// ID returns the client identity (its transport address).
func (c *Client) ID() string { return c.id }

// Invoke submits an operation for total ordering without waiting for
// replies (the ordering-service mode: blocks come back through the block
// dissemination path instead).
func (c *Client) Invoke(op []byte) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClientClosed
	}
	seq := c.nextSeq.Add(1)
	c.send(seq, op)
	return nil
}

// Call submits an operation and waits until f+1 (or the tentative quorum)
// replicas reply with identical results, returning that result.
func (c *Client) Call(ctx context.Context, op []byte) ([]byte, error) {
	seq := c.nextSeq.Add(1)
	call := &clientCall{
		votes: make(map[cryptoutil.Digest]map[string]struct{}),
		ch:    make(chan []byte, 1),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.pending[seq] = call
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
	}()

	c.send(seq, op)
	select {
	case result := <-call.ch:
		return result, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("consensus call %d: %w", seq, ctx.Err())
	case <-c.done:
		return nil, ErrClientClosed
	}
}

func (c *Client) send(seq uint64, op []byte) {
	rq := &request{ClientID: c.id, Seq: seq, Op: op}
	payload := rq.marshal()
	for _, id := range c.cfg.Replicas {
		c.conn.Send(id.Addr(), msgRequest, payload)
	}
}

func (c *Client) receiveLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case m, ok := <-c.conn.Inbox():
			if !ok {
				return
			}
			if m.Type != msgReply {
				continue
			}
			reply, err := unmarshalReply(m.Payload)
			if err != nil || reply.ClientID != c.id {
				continue
			}
			c.onReply(string(m.From), reply)
		}
	}
}

func (c *Client) onReply(from string, reply *replyMsg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	call, ok := c.pending[reply.ReqSeq]
	if !ok {
		return
	}
	d := cryptoutil.Hash(reply.Result)
	voters, ok := call.votes[d]
	if !ok {
		voters = make(map[string]struct{})
		call.votes[d] = voters
	}
	voters[from] = struct{}{}
	if len(voters) >= c.quorum {
		select {
		case call.ch <- reply.Result:
		default: // already completed
		}
	}
}

// Close shuts the client down. In-flight Call invocations fail with
// ErrClientClosed.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	c.wg.Wait()
}
