package consensus

import (
	"fmt"

	"repro/internal/cryptoutil"
	"repro/internal/wire"
)

// Transport message types used by the consensus layer. The ordering-service
// layer (internal/core) uses types >= 64; the two ranges never collide on a
// shared network.
const (
	msgRequest uint16 = iota + 1
	msgPropose
	msgWrite
	msgAccept
	msgStop
	msgStopData
	msgSync
	msgStateRequest
	msgStateReply
	msgReply
)

// RequestMessageType is the transport type of client requests, exported for
// components that submit requests without a full Client (the ordering
// node's time-to-cut markers).
const RequestMessageType = msgRequest

// EncodeRequest encodes a raw client request: a payload sent with
// RequestMessageType to every replica enters the request pool like any
// client submission.
func EncodeRequest(clientID string, seq uint64, op []byte) []byte {
	rq := &request{ClientID: clientID, Seq: seq, Op: op}
	return rq.marshal()
}

// request is a client operation submitted for total ordering. Clients send
// requests to every replica (Figure 3: "Clients send their requests to all
// replicas").
type request struct {
	ClientID string // also the client's transport address for replies
	Seq      uint64 // per-client sequence number for deduplication
	Op       []byte // opaque operation (an HLF envelope in the ordering service)
}

func (rq *request) key() requestKey {
	return requestKey{client: rq.ClientID, seq: rq.Seq}
}

type requestKey struct {
	client string
	seq    uint64
}

func (rq *request) marshal() []byte {
	w := wire.NewWriter(len(rq.ClientID) + len(rq.Op) + 16)
	w.PutString(rq.ClientID)
	w.PutUint64(rq.Seq)
	w.PutBytes(rq.Op)
	return w.Bytes()
}

func unmarshalRequest(b []byte) (*request, error) {
	r := wire.NewReader(b)
	rq := &request{
		ClientID: r.String(),
		Seq:      r.Uint64(),
		Op:       r.BytesCopy(),
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("request: %w", err)
	}
	return rq, nil
}

// proposeMsg is the leader's batch proposal for one consensus instance.
// Batch entries are marshalled requests.
type proposeMsg struct {
	Regency int32
	Seq     int64
	Batch   [][]byte
}

func (m *proposeMsg) marshal() []byte {
	size := 16
	for _, e := range m.Batch {
		size += len(e) + 4
	}
	w := wire.NewWriter(size)
	w.PutInt32(m.Regency)
	w.PutInt64(m.Seq)
	w.PutBytesSlice(m.Batch)
	return w.Bytes()
}

func unmarshalPropose(b []byte) (*proposeMsg, error) {
	r := wire.NewReader(b)
	m := &proposeMsg{
		Regency: r.Int32(),
		Seq:     r.Int64(),
		Batch:   r.BytesSlice(),
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("propose: %w", err)
	}
	return m, nil
}

// voteMsg carries a WRITE or ACCEPT vote: the digest of the batch the voter
// registered for instance Seq in the given regency.
type voteMsg struct {
	Regency int32
	Seq     int64
	Digest  cryptoutil.Digest
}

func (m *voteMsg) marshal() []byte {
	w := wire.NewWriter(12 + cryptoutil.DigestSize)
	w.PutInt32(m.Regency)
	w.PutInt64(m.Seq)
	w.PutRaw(m.Digest[:])
	return w.Bytes()
}

func unmarshalVote(b []byte) (*voteMsg, error) {
	r := wire.NewReader(b)
	m := &voteMsg{
		Regency: r.Int32(),
		Seq:     r.Int64(),
	}
	copy(m.Digest[:], r.Raw(cryptoutil.DigestSize))
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("vote: %w", err)
	}
	return m, nil
}

// stopMsg asks to advance to NextRegency because the current leader stalled.
type stopMsg struct {
	NextRegency int32
}

func (m *stopMsg) marshal() []byte {
	w := wire.NewWriter(4)
	w.PutInt32(m.NextRegency)
	return w.Bytes()
}

func unmarshalStop(b []byte) (*stopMsg, error) {
	r := wire.NewReader(b)
	m := &stopMsg{NextRegency: r.Int32()}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("stop: %w", err)
	}
	return m, nil
}

// writeCert is leader-change evidence: a value the sender write-certified
// (saw a WRITE quorum for) in an open instance, and the regency in which
// that quorum formed. A decided value always has a write certificate at
// some correct replica in any n-f subset, so carrying certificates for all
// open instances across the leader change preserves decided values.
type writeCert struct {
	Seq     int64
	Regency int32
	Digest  cryptoutil.Digest
	Batch   [][]byte // the registered batch, if known
}

func putWriteCert(w *wire.Writer, c *writeCert) {
	w.PutInt64(c.Seq)
	w.PutInt32(c.Regency)
	w.PutRaw(c.Digest[:])
	w.PutBytesSlice(c.Batch)
}

func readWriteCert(r *wire.Reader) writeCert {
	var c writeCert
	c.Seq = r.Int64()
	c.Regency = r.Int32()
	copy(c.Digest[:], r.Raw(cryptoutil.DigestSize))
	c.Batch = r.BytesSlice()
	return c
}

// stopDataMsg is sent to the new leader after a regency change. It reports
// the sender's progress and the write-certified values for every open
// instance. The message is signed when keys are configured so that a
// Byzantine replica cannot forge other replicas' progress reports.
type stopDataMsg struct {
	Regency     int32
	LastDecided int64
	Certs       []writeCert
	Signature   []byte
}

// signedBytes returns the portion of the encoding covered by the signature.
func (m *stopDataMsg) signedBytes() []byte {
	w := wire.NewWriter(64)
	w.PutInt32(m.Regency)
	w.PutInt64(m.LastDecided)
	w.PutUvarint(uint64(len(m.Certs)))
	for i := range m.Certs {
		putWriteCert(w, &m.Certs[i])
	}
	return w.Bytes()
}

func (m *stopDataMsg) marshal() []byte {
	body := m.signedBytes()
	w := wire.NewWriter(len(body) + len(m.Signature) + 8)
	w.PutBytes(body)
	w.PutBytes(m.Signature)
	return w.Bytes()
}

func unmarshalStopData(b []byte) (*stopDataMsg, error) {
	outer := wire.NewReader(b)
	body := outer.BytesCopy()
	sig := outer.BytesCopy()
	if err := outer.Finish(); err != nil {
		return nil, fmt.Errorf("stopdata: %w", err)
	}
	r := wire.NewReader(body)
	m := &stopDataMsg{
		Regency:     r.Int32(),
		LastDecided: r.Int64(),
		Signature:   sig,
	}
	n := r.Uvarint()
	if n > 1024 {
		return nil, fmt.Errorf("stopdata: %d certs out of range", n)
	}
	m.Certs = make([]writeCert, 0, n)
	for i := uint64(0); i < n; i++ {
		m.Certs = append(m.Certs, readWriteCert(r))
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("stopdata body: %w", err)
	}
	return m, nil
}

// syncDecision is one instance resolution inside a SYNC message: the batch
// to resume the instance with. HasCert distinguishes a carried-over
// write-certified value from a fresh (possibly empty) restart.
type syncDecision struct {
	Seq     int64
	HasCert bool
	Batch   [][]byte
}

// syncMsg is the new leader's resolution of the synchronization phase: the
// consecutive open instances and the value each one resumes with. Replicas
// treat each decision like a PROPOSE in the new regency.
type syncMsg struct {
	Regency   int32
	Decisions []syncDecision
}

func (m *syncMsg) marshal() []byte {
	w := wire.NewWriter(64)
	w.PutInt32(m.Regency)
	w.PutUvarint(uint64(len(m.Decisions)))
	for i := range m.Decisions {
		d := &m.Decisions[i]
		w.PutInt64(d.Seq)
		w.PutBool(d.HasCert)
		w.PutBytesSlice(d.Batch)
	}
	return w.Bytes()
}

func unmarshalSync(b []byte) (*syncMsg, error) {
	r := wire.NewReader(b)
	m := &syncMsg{Regency: r.Int32()}
	n := r.Uvarint()
	if n > 1024 {
		return nil, fmt.Errorf("sync: %d decisions out of range", n)
	}
	m.Decisions = make([]syncDecision, 0, n)
	for i := uint64(0); i < n; i++ {
		m.Decisions = append(m.Decisions, syncDecision{
			Seq:     r.Int64(),
			HasCert: r.Bool(),
			Batch:   r.BytesSlice(),
		})
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("sync: %w", err)
	}
	return m, nil
}

// stateRequestMsg asks peers for a snapshot + decision log covering
// everything after FromSeq (the requester's last delivered instance).
type stateRequestMsg struct {
	FromSeq int64
}

func (m *stateRequestMsg) marshal() []byte {
	w := wire.NewWriter(8)
	w.PutInt64(m.FromSeq)
	return w.Bytes()
}

func unmarshalStateRequest(b []byte) (*stateRequestMsg, error) {
	r := wire.NewReader(b)
	m := &stateRequestMsg{FromSeq: r.Int64()}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("state request: %w", err)
	}
	return m, nil
}

// logEntryWire is one decided instance in a state reply.
type logEntryWire struct {
	Seq   int64
	Batch [][]byte
}

// stateReplyMsg carries a checkpointed snapshot and the decision-log suffix.
// The receiver applies a reply only after f+1 distinct replicas sent replies
// with the same content digest.
type stateReplyMsg struct {
	CheckpointSeq int64
	Snapshot      []byte
	Entries       []logEntryWire
}

func (m *stateReplyMsg) marshal() []byte {
	w := wire.NewWriter(len(m.Snapshot) + 64)
	w.PutInt64(m.CheckpointSeq)
	w.PutBytes(m.Snapshot)
	w.PutUvarint(uint64(len(m.Entries)))
	for _, e := range m.Entries {
		w.PutInt64(e.Seq)
		w.PutBytesSlice(e.Batch)
	}
	return w.Bytes()
}

func unmarshalStateReply(b []byte) (*stateReplyMsg, error) {
	r := wire.NewReader(b)
	m := &stateReplyMsg{
		CheckpointSeq: r.Int64(),
		Snapshot:      r.BytesCopy(),
	}
	n := r.Uvarint()
	if n > 1<<20 {
		return nil, fmt.Errorf("state reply: %d entries out of range", n)
	}
	m.Entries = make([]logEntryWire, 0, n)
	for i := uint64(0); i < n; i++ {
		m.Entries = append(m.Entries, logEntryWire{
			Seq:   r.Int64(),
			Batch: r.BytesSlice(),
		})
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("state reply: %w", err)
	}
	return m, nil
}

// digest returns the content digest used for f+1 matching.
func (m *stateReplyMsg) digest() cryptoutil.Digest {
	return cryptoutil.Hash(m.marshal())
}

// replyMsg completes a client request (used by the default replier; the
// ordering service replaces replies with block dissemination).
type replyMsg struct {
	ClientID  string
	ReqSeq    uint64
	Seq       int64 // consensus instance that decided the request
	Tentative bool  // true when delivered tentatively (WHEAT)
	Result    []byte
}

func (m *replyMsg) marshal() []byte {
	w := wire.NewWriter(len(m.ClientID) + len(m.Result) + 32)
	w.PutString(m.ClientID)
	w.PutUint64(m.ReqSeq)
	w.PutInt64(m.Seq)
	w.PutBool(m.Tentative)
	w.PutBytes(m.Result)
	return w.Bytes()
}

func unmarshalReply(b []byte) (*replyMsg, error) {
	r := wire.NewReader(b)
	m := &replyMsg{
		ClientID:  r.String(),
		ReqSeq:    r.Uint64(),
		Seq:       r.Int64(),
		Tentative: r.Bool(),
		Result:    r.BytesCopy(),
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("reply: %w", err)
	}
	return m, nil
}

// batchDigest hashes a proposed batch; WRITE and ACCEPT votes carry this
// digest rather than the batch itself (Figure 3: votes are hashes).
func batchDigest(seq int64, batch [][]byte) cryptoutil.Digest {
	w := wire.NewWriter(64)
	w.PutInt64(seq)
	w.PutBytesSlice(batch)
	return cryptoutil.Hash(w.Bytes())
}
