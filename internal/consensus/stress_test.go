package consensus

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// randomLatency returns a jittery latency model: every delivery gets an
// independent random delay, which exercises message reordering across links
// (the scenario that motivates exact request deduplication and per-regency
// vote tallies).
type randomLatency struct {
	mu  sync.Mutex
	rng *rand.Rand
	max time.Duration
}

func (r *randomLatency) Delay(_, _ transport.Addr) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return time.Duration(r.rng.Int63n(int64(r.max)))
}

// TestTotalOrderUnderRandomDelays checks the core SMR property: with
// randomized per-message delays and several concurrent clients, every
// replica executes exactly the same operations in exactly the same order,
// with no duplicates and no losses.
func TestTotalOrderUnderRandomDelays(t *testing.T) {
	net := transport.NewInProcNetwork(transport.InProcConfig{
		Latency: &randomLatency{rng: rand.New(rand.NewSource(7)), max: 12 * time.Millisecond},
	})
	t.Cleanup(func() { net.Close() })

	const n = 4
	members := ids(n)
	replicas := make([]*Replica, n)
	apps := make([]*recordApp, n)
	for i, id := range members {
		conn, err := net.Join(id.Addr())
		if err != nil {
			t.Fatalf("join: %v", err)
		}
		apps[i] = &recordApp{}
		rep, err := NewReplica(Config{
			SelfID:             id,
			Replicas:           members,
			BatchSize:          8,
			BatchTimeout:       2 * time.Millisecond,
			RequestTimeout:     5 * time.Second,
			CheckpointInterval: 16,
		}, apps[i], conn)
		if err != nil {
			t.Fatalf("replica: %v", err)
		}
		rep.Start()
		t.Cleanup(rep.Stop)
		replicas[i] = rep
	}

	const clients, each = 3, 40
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		conn, err := net.Join(transport.Addr(fmt.Sprintf("stress-client-%d", c)))
		if err != nil {
			t.Fatalf("join client: %v", err)
		}
		client, err := NewClient(conn, ClientConfig{Replicas: members})
		if err != nil {
			t.Fatalf("client: %v", err)
		}
		t.Cleanup(client.Close)
		wg.Add(1)
		go func(cl *Client, c int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := cl.Invoke([]byte(fmt.Sprintf("c%d-op%03d", c, i))); err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
				if i%10 == 0 {
					time.Sleep(time.Millisecond)
				}
			}
		}(client, c)
	}
	wg.Wait()

	total := clients * each
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, app := range apps {
			if app.opCount() < total {
				done = false
				break
			}
		}
		if done {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Agreement: identical op sequences everywhere.
	ref := apps[0].opsFlat()
	if len(ref) != total {
		t.Fatalf("replica 0 executed %d/%d ops", len(ref), total)
	}
	for i := 1; i < n; i++ {
		got := apps[i].opsFlat()
		if len(got) != len(ref) {
			t.Fatalf("replica %d executed %d ops, want %d", i, len(got), len(ref))
		}
		for j := range ref {
			if string(got[j]) != string(ref[j]) {
				t.Fatalf("replica %d diverged at op %d: %q vs %q", i, j, got[j], ref[j])
			}
		}
	}
	// Exactly-once: no duplicates in the reference sequence.
	seen := make(map[string]bool, total)
	for _, op := range ref {
		if seen[string(op)] {
			t.Fatalf("operation %q executed twice", op)
		}
		seen[string(op)] = true
	}
	// Per-client FIFO.
	lastPerClient := make(map[byte]int)
	for _, op := range ref {
		c := op[1] // "cX-opYYY"
		var idx int
		if _, err := fmt.Sscanf(string(op[3:]), "op%d", &idx); err != nil {
			t.Fatalf("bad op %q", op)
		}
		if prev, ok := lastPerClient[c]; ok && idx <= prev {
			t.Fatalf("client %c order violated: %d after %d", c, idx, prev)
		}
		lastPerClient[c] = idx
	}
}

// TestTotalOrderWithLeaderChangeUnderDelays layers a mid-stream leader
// crash on top of the jittery network.
func TestTotalOrderWithLeaderChangeUnderDelays(t *testing.T) {
	net := transport.NewInProcNetwork(transport.InProcConfig{
		Latency: &randomLatency{rng: rand.New(rand.NewSource(11)), max: 8 * time.Millisecond},
	})
	t.Cleanup(func() { net.Close() })

	const n = 4
	members := ids(n)
	replicas := make([]*Replica, n)
	apps := make([]*recordApp, n)
	for i, id := range members {
		conn, err := net.Join(id.Addr())
		if err != nil {
			t.Fatalf("join: %v", err)
		}
		apps[i] = &recordApp{}
		rep, err := NewReplica(Config{
			SelfID:         id,
			Replicas:       members,
			BatchSize:      8,
			BatchTimeout:   2 * time.Millisecond,
			RequestTimeout: 400 * time.Millisecond,
		}, apps[i], conn)
		if err != nil {
			t.Fatalf("replica: %v", err)
		}
		rep.Start()
		t.Cleanup(rep.Stop)
		replicas[i] = rep
	}
	conn, err := net.Join("lc-client")
	if err != nil {
		t.Fatalf("join client: %v", err)
	}
	client, err := NewClient(conn, ClientConfig{Replicas: members})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	t.Cleanup(client.Close)

	const total = 60
	for i := 0; i < total; i++ {
		if err := client.Invoke([]byte(fmt.Sprintf("op-%03d", i))); err != nil {
			t.Fatalf("invoke: %v", err)
		}
		if i == total/2 {
			replicas[0].Stop()
			net.Disconnect(ReplicaID(0).Addr())
		}
	}

	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for i := 1; i < n; i++ {
			if apps[i].opCount() < total {
				done = false
				break
			}
		}
		if done {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	ref := apps[1].opsFlat()
	if len(ref) != total {
		t.Fatalf("replica 1 executed %d/%d", len(ref), total)
	}
	for i := 2; i < n; i++ {
		got := apps[i].opsFlat()
		if len(got) != total {
			t.Fatalf("replica %d executed %d/%d", i, len(got), total)
		}
		for j := range ref {
			if string(got[j]) != string(ref[j]) {
				t.Fatalf("replica %d diverged at %d", i, j)
			}
		}
	}
}
