// Package consensus implements the BFT-SMaRt replication stack the ordering
// service runs on: the Mod-SMaRt state machine replication protocol over a
// PBFT-like Byzantine consensus (Section 4 of the paper, message pattern in
// Figure 3), plus the WHEAT variant with weighted (vote-assigned) quorums and
// tentative execution for geo-replicated deployments.
//
// The normal-case protocol per consensus instance i:
//
//	leader  --PROPOSE(batch)-->  all
//	all     --WRITE(hash)----->  all     (on valid PROPOSE from the leader)
//	all     --ACCEPT(hash)---->  all     (on a quorum of matching WRITEs)
//	decide batch                          (on a quorum of matching ACCEPTs)
//
// where a quorum is ceil((n+f+1)/2) replicas, generalized to weighted votes
// for WHEAT. If the leader stalls or misbehaves, the synchronization phase
// (STOP / STOPDATA / SYNC) elects the next regency's leader and carries
// write-certified values across so that no decided or tentatively
// write-certified value is lost.
package consensus

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/transport"
)

// ReplicaID identifies a consensus replica (an ordering node).
type ReplicaID int32

// Addr returns the replica's transport address.
func (id ReplicaID) Addr() transport.Addr {
	return transport.Addr("replica-" + strconv.Itoa(int(id)))
}

// Defaults mirroring the paper's setup (batch limit 400, Section 6.2).
const (
	DefaultBatchSize          = 400
	DefaultBatchTimeout       = 5 * time.Millisecond
	DefaultRequestTimeout     = 4 * time.Second
	DefaultCheckpointInterval = 1024
)

// Config parameterizes a replica.
type Config struct {
	// SelfID is this replica's identity. It must appear in Replicas.
	SelfID ReplicaID
	// Replicas is the initial membership. Order does not matter; the
	// membership is kept sorted internally, and the leader of regency r is
	// membership[r mod n].
	Replicas []ReplicaID
	// F is the number of Byzantine faults tolerated. Zero means the maximum
	// for the membership size: floor((n-1)/3).
	F int
	// Weights assigns votes per replica for WHEAT's weighted quorums. Nil
	// or empty means every replica has one vote (classic BFT-SMaRt).
	Weights map[ReplicaID]int
	// BatchSize caps requests per PROPOSE (the paper uses 400).
	BatchSize int
	// BatchTimeout is how long the leader waits for a batch to fill before
	// proposing a partial batch.
	BatchTimeout time.Duration
	// RequestTimeout is how long a pending request may wait before the
	// replica triggers the synchronization phase (leader change).
	RequestTimeout time.Duration
	// Tentative enables WHEAT's tentative execution: deliver after the
	// WRITE quorum and run the ACCEPT phase asynchronously. Requires the
	// application to support Rollback.
	Tentative bool
	// CheckpointInterval is the number of decisions between application
	// snapshots; the decision log is truncated at each checkpoint
	// (Section 5.2: the tiny ordering-service state makes frequent
	// checkpoints cheap).
	CheckpointInterval int64
	// Key signs synchronization-phase messages (STOPDATA). Optional: when
	// nil, leader-change evidence is accepted unsigned (crash-fault level).
	Key *cryptoutil.KeyPair
	// Registry resolves replica public keys for STOPDATA verification.
	Registry *cryptoutil.Registry
	// ValidateRequest, when set, vets each request operation in a PROPOSE
	// before the replica WRITEs for it (the ordering service checks that
	// envelopes are well-formed).
	ValidateRequest func(op []byte) error
}

// withDefaults returns a copy of the config with zero fields filled in.
func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = DefaultBatchTimeout
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = DefaultCheckpointInterval
	}
	if c.F <= 0 {
		c.F = MaxFaults(len(c.Replicas))
	}
	return c
}

func (c Config) validate() error {
	if len(c.Replicas) == 0 {
		return errors.New("consensus: empty membership")
	}
	seen := make(map[ReplicaID]bool, len(c.Replicas))
	self := false
	for _, id := range c.Replicas {
		if seen[id] {
			return fmt.Errorf("consensus: duplicate replica id %d", id)
		}
		seen[id] = true
		if id == c.SelfID {
			self = true
		}
	}
	if !self {
		return fmt.Errorf("consensus: self id %d not in membership", c.SelfID)
	}
	n := len(c.Replicas)
	if n < 3*c.F+1 {
		return fmt.Errorf("consensus: n=%d cannot tolerate f=%d (need n >= 3f+1)", n, c.F)
	}
	if len(c.Weights) > 0 {
		for _, id := range c.Replicas {
			w, ok := c.Weights[id]
			if !ok {
				return fmt.Errorf("consensus: replica %d missing from weights", id)
			}
			if w < 1 {
				return fmt.Errorf("consensus: replica %d has weight %d < 1", id, w)
			}
		}
	}
	return nil
}

// MaxFaults returns the maximum number of Byzantine faults an n-replica
// group tolerates: floor((n-1)/3).
func MaxFaults(n int) int {
	if n < 1 {
		return 0
	}
	return (n - 1) / 3
}

// QuorumSize returns the classic BFT-SMaRt quorum ceil((n+f+1)/2).
func QuorumSize(n, f int) int {
	return (n + f + 2) / 2 // integer ceil((n+f+1)/2)
}

// BinaryWeights computes WHEAT's binary vote assignment for a membership of
// n = 3f+1+delta replicas: 2f replicas receive Vmax = 1 + delta/f votes and
// the remaining f+1+delta receive Vmin = 1 vote. The preferred replicas (the
// "fastest" ones in WHEAT's empirical placement) receive Vmax first; any
// remaining Vmax slots are assigned in ascending id order. delta must be a
// multiple of f so that Vmax is integral.
func BinaryWeights(replicas []ReplicaID, f, delta int, preferred []ReplicaID) (map[ReplicaID]int, error) {
	n := len(replicas)
	if n != 3*f+1+delta {
		return nil, fmt.Errorf("consensus: binary weights need n=3f+1+delta, got n=%d f=%d delta=%d", n, f, delta)
	}
	if delta == 0 {
		weights := make(map[ReplicaID]int, n)
		for _, id := range replicas {
			weights[id] = 1
		}
		return weights, nil
	}
	if f == 0 || delta%f != 0 {
		return nil, fmt.Errorf("consensus: delta=%d must be a positive multiple of f=%d", delta, f)
	}
	vmax := 1 + delta/f
	weights := make(map[ReplicaID]int, n)
	for _, id := range replicas {
		weights[id] = 1
	}
	slots := 2 * f
	for _, id := range preferred {
		if slots == 0 {
			break
		}
		if w, ok := weights[id]; ok && w == 1 {
			weights[id] = vmax
			slots--
		}
	}
	if slots > 0 {
		sorted := make([]ReplicaID, len(replicas))
		copy(sorted, replicas)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, id := range sorted {
			if slots == 0 {
				break
			}
			if weights[id] == 1 {
				weights[id] = vmax
				slots--
			}
		}
	}
	return weights, nil
}

// quorumTracker performs weighted quorum arithmetic for one membership view.
type quorumTracker struct {
	weights      map[ReplicaID]int
	totalWeight  int
	maxWeight    int
	quorumWeight int
	f            int
	n            int
}

// newQuorumTracker derives quorum thresholds from a membership and weight
// assignment. With unit weights the threshold reduces to ceil((n+f+1)/2).
// With weights, a quorum is any subset whose vote sum q satisfies
// 2q - V > f * Vmax, i.e. any two quorums intersect in weight larger than
// f*Vmax and therefore contain at least one correct replica in common.
func newQuorumTracker(replicas []ReplicaID, weights map[ReplicaID]int, f int) *quorumTracker {
	qt := &quorumTracker{
		weights: make(map[ReplicaID]int, len(replicas)),
		f:       f,
		n:       len(replicas),
	}
	for _, id := range replicas {
		w := 1
		if len(weights) > 0 {
			w = weights[id]
		}
		qt.weights[id] = w
		qt.totalWeight += w
		if w > qt.maxWeight {
			qt.maxWeight = w
		}
	}
	qt.quorumWeight = (qt.totalWeight+qt.f*qt.maxWeight)/2 + 1
	return qt
}

// weightOf returns a replica's vote weight (zero for non-members).
func (qt *quorumTracker) weightOf(id ReplicaID) int {
	return qt.weights[id]
}

// isQuorum reports whether the given voters reach quorum weight.
func (qt *quorumTracker) isQuorum(voters map[ReplicaID]struct{}) bool {
	sum := 0
	for id := range voters {
		sum += qt.weights[id]
	}
	return sum >= qt.quorumWeight
}

// certSize is the plain-count threshold used by the synchronization phase
// (STOP and STOPDATA collection): 2f+1 and n-f respectively, as in
// Mod-SMaRt. These are counts, not weights: the synchronization phase of
// WHEAT keeps cardinality quorums.
func (qt *quorumTracker) stopQuorum() int { return 2*qt.f + 1 }

func (qt *quorumTracker) stopDataQuorum() int { return qt.n - qt.f }
