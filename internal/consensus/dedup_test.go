package consensus

import (
	"testing"
	"testing/quick"

	"repro/internal/wire"
)

func TestClientDedupBasics(t *testing.T) {
	d := newClientDedup()
	if d.contains(1) {
		t.Fatal("fresh dedup contains 1")
	}
	d.mark(1)
	d.mark(3)
	if !d.contains(1) || !d.contains(3) || d.contains(2) {
		t.Fatal("marking misbehaves")
	}
	// Compaction advances only over the contiguous prefix.
	d.compact()
	if d.floor != 1 {
		t.Fatalf("floor = %d, want 1", d.floor)
	}
	d.mark(2)
	d.compact()
	if d.floor != 3 {
		t.Fatalf("floor = %d, want 3", d.floor)
	}
	if len(d.sparse) != 0 {
		t.Fatalf("sparse not drained: %v", d.sparse)
	}
	if !d.contains(2) || !d.contains(3) || d.contains(4) {
		t.Fatal("contains wrong after compaction")
	}
}

func TestClientDedupOutOfOrder(t *testing.T) {
	// The scenario that motivated exact tracking: a high sequence executes
	// first (e.g. proposed by a Byzantine leader); lower sequences must
	// still be executable exactly once afterwards.
	d := newClientDedup()
	d.mark(200)
	if d.contains(90) {
		t.Fatal("marking 200 must not absorb 90")
	}
	d.mark(90)
	if !d.contains(90) || !d.contains(200) || d.contains(91) {
		t.Fatal("out-of-order marks wrong")
	}
}

func TestClientDedupUnmark(t *testing.T) {
	d := newClientDedup()
	d.mark(5)
	d.unmark(5)
	if d.contains(5) {
		t.Fatal("unmark did not forget")
	}
	d.mark(5)
	if !d.contains(5) {
		t.Fatal("re-mark after unmark failed")
	}
}

func TestClientDedupSerializationRoundTrip(t *testing.T) {
	d := newClientDedup()
	for _, s := range []uint64{1, 2, 3, 7, 9} {
		d.mark(s)
	}
	d.compact() // floor=3, sparse={7,9}
	w := wire.NewWriter(0)
	d.marshalInto(w)
	got := readClientDedup(wire.NewReader(w.Bytes()))
	if got.floor != 3 {
		t.Fatalf("floor = %d", got.floor)
	}
	for _, s := range []uint64{1, 2, 3, 7, 9} {
		if !got.contains(s) {
			t.Fatalf("round trip lost %d", s)
		}
	}
	if got.contains(4) || got.contains(8) {
		t.Fatal("round trip invented sequences")
	}
}

func TestClientDedupProperty(t *testing.T) {
	// Exactness: after marking an arbitrary multiset of sequences, contains
	// is true exactly for the marked set, regardless of order or
	// interleaved compactions.
	f := func(seqsRaw []uint16, compactEvery uint8) bool {
		d := newClientDedup()
		marked := make(map[uint64]bool)
		step := int(compactEvery%5) + 1
		for i, raw := range seqsRaw {
			seq := uint64(raw%256) + 1
			d.mark(seq)
			marked[seq] = true
			if i%step == 0 {
				d.compact()
			}
		}
		for seq := uint64(1); seq <= 257; seq++ {
			if d.contains(seq) != marked[seq] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDedupSessionJumpKeepsStragglerHeadroom(t *testing.T) {
	d := newClientDedup()
	base := uint64(1_700_000_000_000_000_000) // wall-clock-nanos session base
	// Out-of-order execution across a leader change: base+2 lands first.
	d.mark(base + 2)
	d.compact()
	if d.floor >= base+1 {
		t.Fatalf("floor %d jumped over in-flight seq %d", d.floor, base+1)
	}
	if d.floor <= sessionGap {
		t.Fatalf("floor %d did not jump over the session gap", d.floor)
	}
	// The displaced straggler still executes exactly once.
	if d.contains(base + 1) {
		t.Fatal("straggler swallowed as duplicate")
	}
	d.mark(base + 1)
	if !d.contains(base+1) || !d.contains(base+2) {
		t.Fatal("marked sequences not deduplicated")
	}
	// Once the session's progress exceeds the headroom, the hole below the
	// session base closes and the sparse set compacts into the floor.
	for i := uint64(3); i <= compactHeadroom+2; i++ {
		d.mark(base + i)
	}
	d.compact()
	if len(d.sparse) != 0 {
		t.Fatalf("sparse set not compacted: %d entries left (floor %d)", len(d.sparse), d.floor)
	}
	if !d.contains(base+1) || d.contains(base+compactHeadroom+3) {
		t.Fatal("floor compaction lost dedup state")
	}
}
