package consensus

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"repro/internal/wire"
)

// This file implements group reconfiguration (Section 5.2 of the paper:
// "reconfiguration (of the group of ordering nodes)"). A reconfiguration is
// an ordinary request carrying a tagged operation; because it is totally
// ordered like any envelope, every replica applies the membership change at
// the same point in the decision sequence. A joining node starts with the
// new membership in its static configuration and catches up through the
// standard state-transfer path, which the paper notes is cheap because the
// ordering service's state is tiny.

// reconfigMagic tags reconfiguration operations inside the request stream.
var reconfigMagic = []byte("\x00RECONFIG\x00")

// ReconfigKind selects the membership change.
type ReconfigKind uint8

// Supported membership changes.
const (
	ReconfigAdd ReconfigKind = iota + 1
	ReconfigRemove
)

// ReconfigOp describes one membership change.
type ReconfigOp struct {
	Kind    ReconfigKind
	Replica ReplicaID
	// Weight is the WHEAT vote weight of an added replica (0 means 1).
	Weight int
}

// EncodeReconfigOp serializes a membership change for submission through a
// consensus client (Client.Invoke / Client.Call).
func EncodeReconfigOp(op ReconfigOp) []byte {
	w := wire.NewWriter(len(reconfigMagic) + 16)
	w.PutRaw(reconfigMagic)
	w.PutByte(byte(op.Kind))
	w.PutInt32(int32(op.Replica))
	w.PutUint32(uint32(op.Weight))
	return w.Bytes()
}

// decodeReconfigOp recognizes and decodes a reconfiguration operation.
func decodeReconfigOp(op []byte) (ReconfigOp, bool) {
	if len(op) < len(reconfigMagic) || !bytes.Equal(op[:len(reconfigMagic)], reconfigMagic) {
		return ReconfigOp{}, false
	}
	r := wire.NewReader(op[len(reconfigMagic):])
	out := ReconfigOp{
		Kind:    ReconfigKind(r.Byte()),
		Replica: ReplicaID(r.Int32()),
		Weight:  int(r.Uint32()),
	}
	if r.Finish() != nil {
		return ReconfigOp{}, false
	}
	if out.Kind != ReconfigAdd && out.Kind != ReconfigRemove {
		return ReconfigOp{}, false
	}
	return out, true
}

// IsReconfigOp reports whether op is a tagged membership change; the
// ordering layer's request validator must accept these alongside envelopes.
func IsReconfigOp(op []byte) bool {
	_, ok := decodeReconfigOp(op)
	return ok
}

// unsafeMembershipRecovery, when set, makes recovery behave as if membership
// changes had never been persisted: replayed reconfig decisions are skipped
// and recovered snapshots do not install their membership. It exists only so
// the chaos/teeth tests can prove what the durable membership path buys — a
// node recovered this way after an add forgets the new member.
var unsafeMembershipRecovery atomic.Bool

// SetUnsafeMembershipRecovery toggles the teeth switch. Test-only.
func SetUnsafeMembershipRecovery(v bool) { unsafeMembershipRecovery.Store(v) }

// UnsafeMembershipRecoveryEnabled reports the teeth switch's state; the
// core layer gates its recovered-membership config override on it so the
// unsafe mode is unsafe end to end.
func UnsafeMembershipRecoveryEnabled() bool { return unsafeMembershipRecovery.Load() }

// MembershipView is a consistent snapshot of the group at one membership
// epoch: the epoch counter, the sorted member set, the derived fault
// threshold, and the vote weights. Obtained lock-free via
// Replica.MembershipView; safe to retain (never mutated after publication).
type MembershipView struct {
	Epoch   uint64
	Members []ReplicaID
	F       int
	Weights map[ReplicaID]int
}

// MembershipView returns the replica's current membership view. Safe from
// any goroutine at any time, including before Start and during recovery.
func (r *Replica) MembershipView() MembershipView {
	if v := r.liveMembership.Load(); v != nil {
		return *v
	}
	return MembershipView{}
}

// publishMembership refreshes the lock-free membership view from the
// event-loop-owned state. Called wherever epoch or membership change.
func (r *Replica) publishMembership() {
	v := &MembershipView{
		Epoch:   r.epoch,
		Members: append([]ReplicaID(nil), r.membership...),
		F:       r.cfg.F,
		Weights: make(map[ReplicaID]int, len(r.membership)),
	}
	for _, id := range r.membership {
		v.Weights[id] = r.qt.weightOf(id)
	}
	r.liveMembership.Store(v)
}

// notifyMembership invokes the membership observer with the published view.
func (r *Replica) notifyMembership() {
	if r.membershipObserver != nil {
		r.membershipObserver(r.MembershipView())
	}
}

// applyReconfig executes an ordered membership change. It runs on the event
// loop at delivery time, so every correct replica transitions at the same
// decision boundary. The epoch advances for every ordered op — including
// no-ops — so a replica that saw the op as already applied (a joiner whose
// static config lists itself) counts the same epochs as everyone else.
func (r *Replica) applyReconfig(op ReconfigOp) {
	if r.restoring && unsafeMembershipRecovery.Load() {
		return // teeth switch: pretend the apply was never made durable
	}
	r.epoch++
	changed := false
	switch op.Kind {
	case ReconfigAdd:
		member := false
		for _, id := range r.membership {
			if id == op.Replica {
				member = true
				break
			}
		}
		if !member {
			r.membership = append(r.membership, op.Replica)
			changed = true
		}
	case ReconfigRemove:
		kept := r.membership[:0]
		for _, id := range r.membership {
			if id != op.Replica {
				kept = append(kept, id)
			}
		}
		if len(kept) != len(r.membership) {
			r.membership = kept
			changed = true
		}
	}
	if changed {
		sortReplicas(r.membership)

		// Rebuild quorum arithmetic: the fault threshold follows the
		// paper's n = 3f+1 sizing, and weights reset to the configured
		// assignment for members that have one (added members default to
		// the op's weight).
		n := len(r.membership)
		f := MaxFaults(n)
		weights := make(map[ReplicaID]int, n)
		for _, id := range r.membership {
			w := 1
			if cw, ok := r.cfg.Weights[id]; ok && cw > 0 {
				w = cw
			}
			if op.Kind == ReconfigAdd && id == op.Replica && op.Weight > 0 {
				w = op.Weight
			}
			weights[id] = w
		}
		r.qt = newQuorumTracker(r.membership, weights, f)
		r.cfg.F = f
		r.cfg.Weights = weights
		r.statMembers.Store(int32(n))
		r.refreshLeaderStat()
	}
	r.publishMembership()
	r.notifyMembership()
}

// Membership returns the current group membership. Safe from any
// goroutine; the snapshot reflects the state at some recent decision
// boundary.
func (r *Replica) Membership() []ReplicaID {
	var out []ReplicaID
	r.Inspect(func() {
		out = make([]ReplicaID, len(r.membership))
		copy(out, r.membership)
	})
	return out
}

func sortReplicas(ids []ReplicaID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// marshalMembership serializes the membership epoch + members + weights into
// snapshots so that state transfer across a reconfig boundary is unambiguous:
// the installing replica learns exactly which epoch the checkpoint was taken
// in, alongside the group it must join.
func (r *Replica) marshalMembership(w *wire.Writer) {
	w.PutUvarint(r.epoch)
	w.PutUvarint(uint64(len(r.membership)))
	for _, id := range r.membership {
		w.PutInt32(int32(id))
		w.PutUint32(uint32(r.qt.weightOf(id)))
	}
}

// unmarshalMembership restores epoch + membership + weights from a snapshot.
func (r *Replica) unmarshalMembership(rd *wire.Reader) error {
	epoch := rd.Uvarint()
	n := rd.Uvarint()
	if n == 0 || n > 1<<10 {
		return fmt.Errorf("consensus: membership size %d out of range", n)
	}
	membership := make([]ReplicaID, 0, n)
	weights := make(map[ReplicaID]int, n)
	for i := uint64(0); i < n; i++ {
		id := ReplicaID(rd.Int32())
		weight := int(rd.Uint32())
		if weight < 1 {
			weight = 1
		}
		membership = append(membership, id)
		weights[id] = weight
	}
	if err := rd.Err(); err != nil {
		return err
	}
	if r.restoring && unsafeMembershipRecovery.Load() {
		return nil // teeth switch: consume the bytes, keep the static group
	}
	sortReplicas(membership)
	r.epoch = epoch
	r.membership = membership
	r.cfg.F = MaxFaults(len(membership))
	r.cfg.Weights = weights
	r.qt = newQuorumTracker(membership, weights, r.cfg.F)
	r.statMembers.Store(int32(len(membership)))
	r.refreshLeaderStat()
	r.publishMembership()
	r.notifyMembership()
	return nil
}
