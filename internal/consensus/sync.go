package consensus

import (
	"sort"
	"time"

	"repro/internal/cryptoutil"
)

// This file implements Mod-SMaRt's synchronization phase (Section 4 of the
// paper; protocol details in Sousa & Bessani, EDCC 2012): when the current
// leader stalls or misbehaves, replicas STOP the current regency, the next
// regency's leader collects signed STOPDATA progress reports from n-f
// replicas, and a SYNC message carries every write-certified open value
// into the new regency so that nothing decided (or tentatively delivered
// under WHEAT) is lost.

// triggerLeaderChange votes to move to the given regency. Idempotent per
// target regency.
func (r *Replica) triggerLeaderChange(target int32) {
	if target <= r.regency || r.stopSent[target] {
		return
	}
	r.stopSent[target] = true
	sm := &stopMsg{NextRegency: target}
	r.broadcast(msgStop, sm.marshal())
}

// noteRegency records that a peer sent normal-case traffic for a regency
// beyond ours. A replica that rejoins after a crash (durable restart) may
// find the group several leader changes ahead; once f+1 distinct peers —
// at least one of them correct — demonstrate a higher regency, it adopts
// the highest regency that f+1 peers support and rejoins the current view
// (the PBFT view catch-up rule). No STOPDATA/SYNC round is needed: the
// group already completed it, and ordinary gap detection plus state
// transfer recover whatever was decided meanwhile.
func (r *Replica) noteRegency(from ReplicaID, regency int32) {
	if regency <= r.regency || from == r.cfg.SelfID {
		return
	}
	if r.peerRegency[from] >= regency {
		return
	}
	r.peerRegency[from] = regency

	ahead := make([]int32, 0, len(r.peerRegency))
	for _, reg := range r.peerRegency {
		if reg > r.regency {
			ahead = append(ahead, reg)
		}
	}
	if len(ahead) < r.qt.f+1 {
		return
	}
	sort.Slice(ahead, func(i, j int) bool { return ahead[i] > ahead[j] })
	target := ahead[r.qt.f] // highest regency f+1 peers are at or beyond
	if target <= r.regency {
		return
	}
	r.adoptRegency(target)
}

// adoptRegency jumps straight into an already-installed view: the group
// finished its synchronization phase without us, so there is no STOPDATA
// to send — just follow the view's leader and let requests re-propose.
func (r *Replica) adoptRegency(target int32) {
	r.regency = target
	r.statRegency.Store(target)
	r.statLC.Add(1)
	r.refreshLeaderStat()
	r.syncInProgress = false
	r.stopData = make(map[ReplicaID]*stopDataMsg)
	for reg := range r.stopVotes {
		if reg <= target {
			delete(r.stopVotes, reg)
		}
	}
	for id, reg := range r.peerRegency {
		if reg <= target {
			delete(r.peerRegency, id)
		}
	}
	now := time.Now()
	for _, p := range r.pending {
		p.inFlight = false
		p.arrived = now
	}
}

func (r *Replica) onStop(from ReplicaID, m *stopMsg) {
	if m.NextRegency <= r.regency {
		return
	}
	votes, ok := r.stopVotes[m.NextRegency]
	if !ok {
		votes = make(map[ReplicaID]struct{})
		r.stopVotes[m.NextRegency] = votes
	}
	votes[from] = struct{}{}

	// Amplification: join the change once f+1 distinct replicas ask for it
	// (at least one of them is correct).
	if len(votes) >= r.qt.f+1 && !r.stopSent[m.NextRegency] {
		r.triggerLeaderChange(m.NextRegency)
	}
	// Installation: 2f+1 STOPs install the new regency.
	if len(votes) >= r.qt.stopQuorum() {
		r.installRegency(m.NextRegency)
	}
}

// installRegency moves to a new regency and sends this replica's STOPDATA
// to the new leader.
func (r *Replica) installRegency(target int32) {
	if target <= r.regency {
		return
	}
	r.regency = target
	r.statRegency.Store(target)
	r.statLC.Add(1)
	r.refreshLeaderStat()
	r.syncInProgress = true
	r.syncStarted = time.Now()
	r.stopData = make(map[ReplicaID]*stopDataMsg)
	// Regencies below the installed one can never gather again.
	for reg := range r.stopVotes {
		if reg <= target {
			delete(r.stopVotes, reg)
		}
	}
	// In-flight proposals die with the old regency; the new leader re-runs
	// them from certificates (or fresh batches). Requests return to the
	// pool via the inFlight reset, and their timeout clocks restart so the
	// new leader gets a full RequestTimeout to make progress before being
	// indicted in turn.
	now := time.Now()
	for _, p := range r.pending {
		p.inFlight = false
		p.arrived = now
	}

	sd := &stopDataMsg{
		Regency:     target,
		LastDecided: r.lastStable,
		Certs:       r.openCerts(),
	}
	if r.cfg.Key != nil {
		if sig, err := r.cfg.Key.Sign(cryptoutil.Hash(sd.signedBytes()).Bytes()); err == nil {
			sd.Signature = sig
		}
	}
	r.sendTo(r.leaderOf(target), msgStopData, sd.marshal())

	// Replay any STOPDATA/SYNC that arrived before we installed the
	// regency.
	buffered := r.futureStopData
	r.futureStopData = nil
	for _, b := range buffered {
		r.onStopData(b.from, b.msg)
	}
	if fs := r.futureSync; fs != nil {
		r.futureSync = nil
		r.onSync(fs.from, fs.msg)
	}
}

// openCerts returns write certificates for every open (undecided-or-
// unstable) instance beyond the stable prefix.
func (r *Replica) openCerts() []writeCert {
	var certs []writeCert
	for seq, inst := range r.instances {
		if seq <= r.lastStable || !inst.writeCertified {
			continue
		}
		cert := writeCert{
			Seq:     seq,
			Regency: inst.certRegency,
			Digest:  inst.certDigest,
		}
		if inst.haveProposal && inst.digest == inst.certDigest {
			cert.Batch = inst.batch
		}
		certs = append(certs, cert)
	}
	sort.Slice(certs, func(i, j int) bool { return certs[i].Seq < certs[j].Seq })
	return certs
}

func (r *Replica) onStopData(from ReplicaID, m *stopDataMsg) {
	if m.Regency > r.regency {
		// The sender installed the regency before us (it saw 2f+1 STOPs
		// first). Buffer and replay after our own installation.
		r.futureStopData = append(r.futureStopData, bufferedStopData{from: from, msg: m})
		return
	}
	if m.Regency != r.regency || !r.syncInProgress {
		return
	}
	if r.leaderOf(m.Regency) != r.cfg.SelfID {
		return // only the new leader collects STOPDATA
	}
	if !r.verifyStopData(from, m) {
		return
	}
	r.stopData[from] = m
	if len(r.stopData) < r.qt.stopDataQuorum() {
		return
	}
	r.computeSync()
}

// verifyStopData checks the sender's signature when a registry is
// configured. Without keys the report is accepted as-is (crash-fault
// deployments).
func (r *Replica) verifyStopData(from ReplicaID, m *stopDataMsg) bool {
	if r.cfg.Registry == nil {
		return true
	}
	digest := cryptoutil.Hash(m.signedBytes())
	return r.cfg.Registry.Verify(replicaIdentity(from), digest.Bytes(), m.Signature)
}

// replicaIdentity names a replica in the identity registry.
func replicaIdentity(id ReplicaID) string { return string(id.Addr()) }

// computeSync resolves the open instances from the collected STOPDATA and
// broadcasts the SYNC message that resumes normal operation.
//
// Decisions cover every instance above the LOWEST stable prefix any
// reporter claims: replicas that fell behind re-run the instances they
// missed from the write certificates of their peers (any decided instance
// has a certificate inside the n-f collected STOPDATAs, because the accept
// quorum that decided it intersects every n-f subset in a correct
// replica). Replicas that already decided an instance simply skip its
// decision, so nothing decided is ever overridden.
func (r *Replica) computeSync() {
	lowest, highest := r.lastStable, r.lastStable
	for _, sd := range r.stopData {
		if sd.LastDecided > highest {
			highest = sd.LastDecided
		}
		if sd.LastDecided < lowest {
			lowest = sd.LastDecided
		}
	}
	// Gather the best certificate per open instance: highest cert regency
	// wins (it supersedes older write quorums, as in PBFT view changes).
	best := make(map[int64]*writeCert)
	maxSeq := highest
	consider := func(c *writeCert) {
		if c.Seq <= lowest {
			return
		}
		cur, ok := best[c.Seq]
		if !ok || c.Regency > cur.Regency || (c.Regency == cur.Regency && len(c.Batch) > len(cur.Batch)) {
			best[c.Seq] = c
		}
		if c.Seq > maxSeq {
			maxSeq = c.Seq
		}
	}
	for _, sd := range r.stopData {
		for i := range sd.Certs {
			consider(&sd.Certs[i])
		}
	}
	// Local certificates participate too (the leader is one of the n-f).
	local := r.openCerts()
	for i := range local {
		consider(&local[i])
	}
	// The leader's own decided log also provides batches for instances some
	// reporters missed.
	for seq := lowest + 1; seq <= r.lastStable; seq++ {
		if batch, ok := r.decidedLog[seq]; ok {
			if _, have := best[seq]; !have || len(best[seq].Batch) == 0 {
				best[seq] = &writeCert{Seq: seq, Regency: r.regency, Batch: batch}
			}
		}
	}

	decisions := make([]syncDecision, 0, maxSeq-lowest)
	for seq := lowest + 1; seq <= maxSeq; seq++ {
		d := syncDecision{Seq: seq}
		if cert, ok := best[seq]; ok && len(cert.Batch) > 0 {
			d.HasCert = true
			d.Batch = cert.Batch
		} else if seq <= highest {
			// A decided instance whose batch no reporter supplied: do not
			// emit a conflicting no-op; the lagging replicas fall back to
			// state transfer for this prefix.
			continue
		}
		// Instances without a certified batch beyond the decided prefix
		// restart as no-ops to keep the sequence contiguous.
		decisions = append(decisions, d)
	}
	sy := &syncMsg{Regency: r.regency, Decisions: decisions}
	r.broadcast(msgSync, sy.marshal())
}

func (r *Replica) onSync(from ReplicaID, m *syncMsg) {
	if m.Regency > r.regency {
		// We have not installed the new regency yet; keep the most recent
		// future SYNC and replay it after installation.
		r.futureSync = &bufferedSync{from: from, msg: m}
		return
	}
	if m.Regency != r.regency {
		return
	}
	if r.leaderOf(m.Regency) != from {
		return
	}
	if !r.syncInProgress {
		return
	}
	r.syncInProgress = false

	// Adopt each resolved instance as if freshly proposed in this regency,
	// then WRITE for it. Instances we already decided keep their decision.
	for i := range m.Decisions {
		d := &m.Decisions[i]
		if d.Seq <= r.lastStable {
			continue
		}
		inst := r.instance(d.Seq)
		if inst.decided {
			continue
		}
		newDigest := batchDigest(d.Seq, d.Batch)
		if r.cfg.Tentative && inst.executed && inst.digest != newDigest {
			// A tentative delivery is being overridden: roll the
			// application back to just before this instance.
			r.rollbackTo(d.Seq - 1)
		}
		if len(d.Batch) > r.cfg.BatchSize || !r.validateBatch(d.Batch) {
			continue // malformed sync value; escalation will follow
		}
		inst.batch = d.Batch
		inst.digest = newDigest
		inst.haveProposal = true
		inst.regency = m.Regency
		inst.writeSent = true
		inst.acceptSent = false
		vm := &voteMsg{Regency: r.regency, Seq: d.Seq, Digest: inst.digest}
		r.broadcast(msgWrite, vm.marshal())
	}

	// The new leader resumes proposing after the resolved range.
	if r.isLeader() {
		r.lastProposed = r.lastStable
		for i := range m.Decisions {
			if m.Decisions[i].Seq > r.lastProposed {
				r.lastProposed = m.Decisions[i].Seq
			}
		}
		r.maybePropose(false)
	}
}

// rollbackTo undoes tentative executions beyond seq: the application state
// rewinds and the request bookkeeping of the rolled-back instances is
// restored so that their requests can be re-proposed and re-executed.
func (r *Replica) rollbackTo(seq int64) {
	if seq >= r.lastDelivered {
		return
	}
	for s := r.lastDelivered; s > seq; s-- {
		inst, ok := r.instances[s]
		if !ok || !inst.executed {
			continue
		}
		for i := len(inst.undo) - 1; i >= 0; i-- {
			u := inst.undo[i]
			if d, ok := r.executed[u.key.client]; ok {
				d.unmark(u.key.seq)
			}
			if _, exists := r.pending[u.key]; !exists {
				rq, err := unmarshalRequest(u.raw)
				if err != nil {
					continue
				}
				r.pending[u.key] = &pendingReq{req: rq, raw: u.raw, arrived: time.Now()}
				r.queue = append(r.queue, u.key)
			}
		}
		inst.undo = nil
		inst.executed = false
	}
	r.app.Rollback(seq)
	r.lastDelivered = seq
	r.statDelivered.Store(seq)
}
