// Package wire implements the deterministic binary encoding used by every
// serialized structure in the system: consensus messages, Fabric envelopes,
// blocks, and snapshots. Encodings are length-prefixed and carry no type
// information; each structure documents its own layout. Determinism matters
// because digests (block hashes, batch hashes) are computed over encodings.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Encoding errors.
var (
	ErrTruncated = errors.New("wire: truncated input")
	ErrTooLarge  = errors.New("wire: length prefix too large")
)

// maxLen bounds any single length prefix to protect decoders against
// corrupt or hostile input.
const maxLen = 64 << 20

// Writer accumulates a binary encoding. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with the given capacity pre-allocated.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// writerPool recycles encode buffers for hot paths (WAL record encoding,
// transport framing) where the encoding's lifetime is clearly bounded.
var writerPool = sync.Pool{New: func() any { return new(Writer) }}

// pooledBufCap bounds the buffers the pool retains; the occasional huge
// encoding (a jumbo batch) should not pin megabytes per pool slot.
const pooledBufCap = 1 << 20

// GetWriter returns a pooled writer with at least the given capacity.
// Pair it with PutWriter once the encoding — including every slice
// obtained from Bytes — is no longer referenced; paths whose encodings
// escape into long-lived structures should use NewWriter instead.
func GetWriter(capacity int) *Writer {
	w := writerPool.Get().(*Writer)
	if cap(w.buf) < capacity {
		w.buf = make([]byte, 0, capacity)
	} else {
		w.buf = w.buf[:0]
	}
	return w
}

// PutWriter recycles a writer obtained from GetWriter. The caller must
// not touch w (or any Bytes result aliasing it) afterwards.
func PutWriter(w *Writer) {
	if cap(w.buf) > pooledBufCap {
		w.buf = nil
	} else {
		w.buf = w.buf[:0]
	}
	writerPool.Put(w)
}

// Bytes returns the accumulated encoding. The slice aliases the writer's
// internal buffer; the caller must not keep writing afterwards.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// PutByte appends a single byte.
func (w *Writer) PutByte(v byte) { w.buf = append(w.buf, v) }

// PutBool appends a boolean as one byte.
func (w *Writer) PutBool(v bool) {
	if v {
		w.PutByte(1)
		return
	}
	w.PutByte(0)
}

// PutUint16 appends a big-endian uint16.
func (w *Writer) PutUint16(v uint16) {
	w.buf = binary.BigEndian.AppendUint16(w.buf, v)
}

// PutUint32 appends a big-endian uint32.
func (w *Writer) PutUint32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// PutUint64 appends a big-endian uint64.
func (w *Writer) PutUint64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// PutInt64 appends a big-endian int64 (two's complement).
func (w *Writer) PutInt64(v int64) { w.PutUint64(uint64(v)) }

// PutInt32 appends a big-endian int32.
func (w *Writer) PutInt32(v int32) { w.PutUint32(uint32(v)) }

// PutBytes appends a uvarint length prefix followed by the raw bytes.
func (w *Writer) PutBytes(b []byte) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// PutString appends a string with a uvarint length prefix.
func (w *Writer) PutString(s string) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// PutRaw appends bytes without a length prefix (for fixed-size fields).
func (w *Writer) PutRaw(b []byte) { w.buf = append(w.buf, b...) }

// PutUvarint appends an unsigned varint.
func (w *Writer) PutUvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// BytesSlice appends a uvarint count followed by each element
// length-prefixed.
func (w *Writer) PutBytesSlice(items [][]byte) {
	w.PutUvarint(uint64(len(items)))
	for _, item := range items {
		w.PutBytes(item)
	}
}

// Reader decodes a binary encoding produced by Writer. It uses a sticky
// error: after the first failure every accessor returns zero values, and
// Err reports the failure. This keeps decode sequences linear.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps buf for decoding. The reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Finish returns an error if decoding failed or if unconsumed bytes remain.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("wire: %d trailing bytes", r.Remaining())
	}
	return nil
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Byte reads a single byte.
func (r *Reader) Byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Uint16 reads a big-endian uint16.
func (r *Reader) Uint16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// Uint32 reads a big-endian uint32.
func (r *Reader) Uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Uint64 reads a big-endian uint64.
func (r *Reader) Uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Int64 reads a big-endian int64.
func (r *Reader) Int64() int64 { return int64(r.Uint64()) }

// Int32 reads a big-endian int32.
func (r *Reader) Int32() int32 { return int32(r.Uint32()) }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.off += n
	return v
}

// Bytes reads a uvarint length prefix and returns that many bytes. The
// returned slice aliases the reader's buffer.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > maxLen || n > math.MaxInt32 {
		r.fail(ErrTooLarge)
		return nil
	}
	return r.take(int(n))
}

// BytesCopy reads a length-prefixed byte field into a fresh slice.
func (r *Reader) BytesCopy() []byte {
	b := r.Bytes()
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	b := r.Bytes()
	return string(b)
}

// Raw reads n bytes without a length prefix.
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// BytesSlice reads a counted sequence of length-prefixed byte fields. Each
// element is copied out of the reader's buffer.
func (r *Reader) BytesSlice() [][]byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > maxLen {
		r.fail(ErrTooLarge)
		return nil
	}
	items := make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		items = append(items, r.BytesCopy())
		if r.err != nil {
			return nil
		}
	}
	return items
}
