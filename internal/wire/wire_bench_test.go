package wire

import "testing"

// Microbenchmarks for the encode/decode hot path (every WAL record,
// consensus message, and block frame goes through these). Alloc counts
// are the point: the pooled-writer path must stay allocation-free in
// steady state.

// benchBatch is a decision-record-shaped payload: a seq plus a batch of
// envelopes.
func benchBatch() [][]byte {
	batch := make([][]byte, 10)
	for i := range batch {
		batch[i] = make([]byte, 64)
	}
	return batch
}

func encodeDecisionRecord(w *Writer, seq int64, batch [][]byte) {
	w.PutInt64(seq)
	w.PutBytesSlice(batch)
}

// BenchmarkWriterEncodeFresh allocates a new writer per record — the
// pre-pooling behavior, kept as the baseline.
func BenchmarkWriterEncodeFresh(b *testing.B) {
	batch := benchBatch()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := NewWriter(64)
		encodeDecisionRecord(w, int64(i), batch)
		if w.Len() == 0 {
			b.Fatal("empty encoding")
		}
	}
}

// BenchmarkWriterEncodePooled uses the Get/PutWriter pool, the path the
// decision log and block store run in production.
func BenchmarkWriterEncodePooled(b *testing.B) {
	batch := benchBatch()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := GetWriter(1024)
		encodeDecisionRecord(w, int64(i), batch)
		if w.Len() == 0 {
			b.Fatal("empty encoding")
		}
		PutWriter(w)
	}
}

// BenchmarkReaderDecode decodes the same record shape back out,
// including the per-element copies of BytesSlice.
func BenchmarkReaderDecode(b *testing.B) {
	w := NewWriter(1024)
	encodeDecisionRecord(w, 42, benchBatch())
	raw := w.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(raw)))
	for i := 0; i < b.N; i++ {
		r := NewReader(raw)
		seq := r.Int64()
		batch := r.BytesSlice()
		if err := r.Finish(); err != nil || seq != 42 || len(batch) != 10 {
			b.Fatalf("decode: seq=%d len=%d err=%v", seq, len(batch), r.Err())
		}
	}
}
