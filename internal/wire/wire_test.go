package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	w := NewWriter(64)
	w.PutByte(0xAB)
	w.PutBool(true)
	w.PutBool(false)
	w.PutUint16(0xBEEF)
	w.PutUint32(0xDEADBEEF)
	w.PutUint64(1<<63 + 12345)
	w.PutInt64(-42)
	w.PutInt32(-7)
	w.PutUvarint(300)

	r := NewReader(w.Bytes())
	if got := r.Byte(); got != 0xAB {
		t.Fatalf("Byte = %x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round trip failed")
	}
	if got := r.Uint16(); got != 0xBEEF {
		t.Fatalf("Uint16 = %x", got)
	}
	if got := r.Uint32(); got != 0xDEADBEEF {
		t.Fatalf("Uint32 = %x", got)
	}
	if got := r.Uint64(); got != 1<<63+12345 {
		t.Fatalf("Uint64 = %d", got)
	}
	if got := r.Int64(); got != -42 {
		t.Fatalf("Int64 = %d", got)
	}
	if got := r.Int32(); got != -7 {
		t.Fatalf("Int32 = %d", got)
	}
	if got := r.Uvarint(); got != 300 {
		t.Fatalf("Uvarint = %d", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestRoundTripBytesAndStrings(t *testing.T) {
	w := NewWriter(0)
	w.PutBytes([]byte("payload"))
	w.PutString("channel-1")
	w.PutBytes(nil)
	w.PutRaw([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	if got := r.Bytes(); string(got) != "payload" {
		t.Fatalf("Bytes = %q", got)
	}
	if got := r.String(); got != "channel-1" {
		t.Fatalf("String = %q", got)
	}
	if got := r.Bytes(); len(got) != 0 {
		t.Fatalf("empty Bytes = %q", got)
	}
	if got := r.Raw(3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Raw = %v", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestRoundTripBytesSlice(t *testing.T) {
	items := [][]byte{[]byte("a"), nil, []byte("ccc")}
	w := NewWriter(0)
	w.PutBytesSlice(items)
	r := NewReader(w.Bytes())
	got := r.BytesSlice()
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if len(got) != len(items) {
		t.Fatalf("len = %d, want %d", len(got), len(items))
	}
	for i := range items {
		if !bytes.Equal(got[i], items[i]) {
			t.Fatalf("item %d = %q, want %q", i, got[i], items[i])
		}
	}
}

func TestTruncatedInput(t *testing.T) {
	w := NewWriter(0)
	w.PutUint64(1)
	full := w.Bytes()

	r := NewReader(full[:4])
	r.Uint64()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("Err = %v, want ErrTruncated", r.Err())
	}
	// Sticky error: subsequent reads keep failing without panicking.
	_ = r.Bytes()
	_ = r.String()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("sticky Err = %v", r.Err())
	}
}

func TestOversizedLengthPrefix(t *testing.T) {
	w := NewWriter(0)
	w.PutUvarint(1 << 40) // absurd length prefix
	r := NewReader(w.Bytes())
	if got := r.Bytes(); got != nil {
		t.Fatalf("oversized Bytes returned %d bytes", len(got))
	}
	if !errors.Is(r.Err(), ErrTooLarge) {
		t.Fatalf("Err = %v, want ErrTooLarge", r.Err())
	}
}

func TestFinishTrailingBytes(t *testing.T) {
	w := NewWriter(0)
	w.PutUint32(7)
	w.PutByte(9)
	r := NewReader(w.Bytes())
	r.Uint32()
	if err := r.Finish(); err == nil {
		t.Fatal("Finish accepted trailing bytes")
	}
}

func TestBytesCopyDoesNotAlias(t *testing.T) {
	w := NewWriter(0)
	w.PutBytes([]byte("alias"))
	buf := w.Bytes()
	r := NewReader(buf)
	got := r.BytesCopy()
	buf[len(buf)-1] ^= 0xFF
	if string(got) != "alias" {
		t.Fatal("BytesCopy aliased the input buffer")
	}
}

func TestPropertyBytesSliceRoundTrip(t *testing.T) {
	f := func(items [][]byte) bool {
		w := NewWriter(0)
		w.PutBytesSlice(items)
		r := NewReader(w.Bytes())
		got := r.BytesSlice()
		if r.Finish() != nil {
			return false
		}
		if len(got) != len(items) {
			return false
		}
		for i := range items {
			if !bytes.Equal(got[i], items[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyScalarRoundTrip(t *testing.T) {
	f := func(a uint64, b int64, c uint32, d uint16, e byte, s string, p []byte) bool {
		w := NewWriter(0)
		w.PutUint64(a)
		w.PutInt64(b)
		w.PutUint32(c)
		w.PutUint16(d)
		w.PutByte(e)
		w.PutString(s)
		w.PutBytes(p)
		r := NewReader(w.Bytes())
		ok := r.Uint64() == a && r.Int64() == b && r.Uint32() == c &&
			r.Uint16() == d && r.Byte() == e && r.String() == s &&
			bytes.Equal(r.Bytes(), p)
		return ok && r.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriterLen(t *testing.T) {
	w := NewWriter(0)
	if w.Len() != 0 {
		t.Fatal("fresh writer not empty")
	}
	w.PutUint64(1)
	if w.Len() != 8 {
		t.Fatalf("Len = %d, want 8", w.Len())
	}
}
