// Package storage is the durable backbone of the ordering service: one
// unified, segmented append-only commit log per node — decision, block,
// and channel-meta records multiplexed into the same files, committed in
// group waves of exactly one fsync each — plus an atomic checkpointer for
// consensus snapshots. The paper's replicas (Section 5.2) survive crashes
// because decisions hit disk before their effects become externally
// visible; this package supplies exactly that discipline, and recovery is
// a single typed walk that rebuilds the decision replay stream and the
// per-channel block index together.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/storage/vfs"
)

// WAL errors.
var (
	ErrClosed  = errors.New("storage: wal closed")
	ErrCorrupt = errors.New("storage: wal corrupt")
	ErrTooBig  = errors.New("storage: record exceeds segment size")
	// ErrLogPoisoned reports a log permanently failed by a commit-wave
	// fsync error. After a failed fsync the kernel has dropped the dirty
	// pages — a retry would report success without the data ever reaching
	// the disk — so the only safe reaction is to stop acking: every
	// append after the poisoning fails with an error wrapping this one.
	ErrLogPoisoned = errors.New("storage: commit log poisoned by a failed fsync")
)

// RecordCorruptError is the typed per-record corruption report: a framed
// record whose CRC (or framing) no longer checks out, located precisely
// enough for a repair path to act on it. Channel and Num are filled in by
// the block store when the record is a block record (the repairable
// kind); they are zero for decision and channel-meta records. It unwraps
// to ErrCorrupt, so existing errors.Is checks keep working.
type RecordCorruptError struct {
	// Segment is the path of the segment file holding the record.
	Segment string
	// Offset is the byte offset of the record's frame inside the segment.
	Offset int64
	// Index is the record's log index (0 when unknown — e.g. a scan that
	// failed before indices were assigned).
	Index uint64
	// Channel and Num identify the durable block the record carried, when
	// the caller knows it is a block record.
	Channel string
	Num     uint64
	// Err is the underlying cause (crc mismatch, torn frame, read error).
	Err error
}

func (e *RecordCorruptError) Error() string {
	msg := fmt.Sprintf("storage: corrupt record %d in %s at offset %d", e.Index, e.Segment, e.Offset)
	if e.Channel != "" {
		msg += fmt.Sprintf(" (block %s/%d)", e.Channel, e.Num)
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *RecordCorruptError) Unwrap() error { return ErrCorrupt }

// disableFsyncFailFast artificially restores the unsafe pre-fsyncgate
// behavior: a failed wave fsync completes its group's tokens as if the
// records were durable, and the log is not poisoned. It exists solely so
// the crash-window teeth test can demonstrate the acked-then-lost write
// the fail-fast semantics prevent. Never set outside tests.
var disableFsyncFailFast atomic.Bool

// SetFsyncFailFastDisabled toggles the teeth-test switch (see
// disableFsyncFailFast). Test instrumentation only.
func SetFsyncFailFastDisabled(v bool) { disableFsyncFailFast.Store(v) }

// recordHeaderSize is the fixed per-record framing overhead: a uint32
// payload length followed by a uint32 CRC32 (IEEE) of the payload.
const recordHeaderSize = 8

// maxRecordSize bounds a single record to protect replay against corrupt
// length prefixes.
const maxRecordSize = 64 << 20

// segSuffix names WAL segment files; the stem is the zero-padded index of
// the segment's first record, so lexical order is replay order.
const segSuffix = ".seg"

// WALConfig parameterizes a write-ahead log.
type WALConfig struct {
	// Dir holds the segment files. Created if missing.
	Dir string
	// SegmentBytes is the rotation threshold: once the active segment
	// reaches it, the next append opens a new segment. Default 4 MiB.
	SegmentBytes int64
	// NoSync skips the fsync on every group commit. Only for tests and
	// benchmarks that measure the non-durable append path.
	NoSync bool
	// Queue, when set, routes this log's group commits through a
	// CommitQueue scheduler instead of a dedicated writer goroutine.
	// Exactly one log may attach to a queue — record kinds multiplex
	// into the one log rather than fanning out across logs, which is
	// what caps a commit wave at a single fsync. The queue must outlive
	// the WAL (close the WAL first, then the queue).
	Queue *CommitQueue
	// FS is the filesystem seam (nil = the real OS filesystem). Fault
	// injection threads a faultfs through here.
	FS vfs.FS
	// Metrics, when set, receives fsync/bytes/segment instrumentation.
	Metrics *obs.StorageMetrics
}

func (c WALConfig) withDefaults() WALConfig {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 4 << 20
	}
	c.FS = vfs.OrOS(c.FS)
	return c
}

// segment describes one on-disk segment file.
type segment struct {
	path  string
	first uint64 // index of the segment's first record
	last  uint64 // index of the segment's last record (first-1 when empty)
	size  int64  // committed bytes (maintained for the active segment too)
	// offsets[i] is the byte offset of record first+i inside the file:
	// the index that turns a record read into a single seek-and-read
	// instead of a decode-from-zero prefix scan. Rebuilt for free during
	// the open-time validation walk; appended to on every commit.
	offsets []int64
}

// appendReq is one enqueued append awaiting group commit. A nil rec is a
// flush barrier: it writes nothing and completes once every request ahead
// of it has committed (Close uses one to drain a queue-attached log).
type appendReq struct {
	rec      []byte
	tok      *Token
	onCommit func(idx uint64, err error)
}

// WAL is a segmented append-only log. Records are opaque byte strings,
// identified by a dense index assigned at append time (first record of an
// empty log is index 1). Appends from any number of goroutines are
// coalesced by a single writer into one fsync per group (group commit), so
// concurrent load amortizes the dominant durability cost.
type WAL struct {
	cfg WALConfig

	// mu guards the segment table and the active file. The writer
	// goroutine holds it for the duration of each group commit; Replay and
	// PruneTo hold it to read or drop sealed segments.
	mu       sync.Mutex
	segments []segment // sorted by first index; last entry is active
	active   vfs.File
	size     int64  // bytes in the active segment
	next     uint64 // index the next append receives

	appendCh chan *appendReq
	closeCh  chan struct{}
	closed   bool
	// failErr poisons the log after a failed commit: the file may hold a
	// torn frame past which nothing can be appended safely (recovery
	// would truncate records acknowledged after it), so every later
	// append fails with the original error.
	failErr error
	// appendWg counts Appends that passed the closed check but have not
	// yet handed their request to the writer; Close waits for it before
	// signalling the writer, so every accepted request is served.
	appendWg sync.WaitGroup
	wg       sync.WaitGroup

	// commitBuf is the reusable frame-assembly buffer of the (single)
	// committing goroutine; reusing it keeps the hot append path free of
	// per-group allocations.
	commitBuf []byte

	// syncs counts every fsync issued against the log's segment files
	// (commit waves, rotations, close). The one-fsync-per-wave contract of
	// the unified commit log is asserted against it in tests.
	syncs atomic.Uint64

	// metrics is never nil (normalized to a nop bundle at open).
	metrics *obs.StorageMetrics
}

// fsync makes a segment file's committed records durable and counts the
// flush. Segments are preallocated, so the wave path only needs a data
// flush (fdatasync on Linux): the inode's size never changes on append,
// which keeps the journal out of the hot path.
func (w *WAL) fsync(f vfs.File) error {
	w.syncs.Add(1)
	w.metrics.FsyncTotal.Inc()
	if h := w.metrics.FsyncSeconds; h != nil {
		start := time.Now()
		err := f.Datasync()
		h.ObserveDuration(time.Since(start))
		return err
	}
	return f.Datasync()
}

// SyncCount returns how many fsyncs the log has issued so far.
func (w *WAL) SyncCount() uint64 { return w.syncs.Load() }

// OpenWAL opens (or creates) the log in cfg.Dir, scans every segment,
// truncates a torn tail in the newest segment, and starts the group-commit
// writer. A torn or partially written record anywhere but the tail of the
// newest segment is reported as ErrCorrupt: crashes only ever tear the end
// of the log, so mid-log damage means real corruption.
func OpenWAL(cfg WALConfig) (*WAL, error) {
	cfg = cfg.withDefaults()
	if err := cfg.FS.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	w := &WAL{
		cfg:      cfg,
		next:     1,
		appendCh: make(chan *appendReq, 256),
		closeCh:  make(chan struct{}),
		metrics:  cfg.Metrics.OrNop(),
	}
	if err := w.scan(); err != nil {
		return nil, err
	}
	if err := w.openActive(); err != nil {
		return nil, err
	}
	w.metrics.Segments.Set(int64(len(w.segments)))
	if cfg.Queue == nil {
		w.wg.Add(1)
		go w.writer()
	}
	return w, nil
}

// scan builds the segment table, validating every record and truncating the
// torn tail of the newest segment.
func (w *WAL) scan() error {
	entries, err := w.cfg.FS.ReadDir(w.cfg.Dir)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil {
			continue // foreign file; ignore
		}
		segs = append(segs, segment{path: filepath.Join(w.cfg.Dir, name), first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })

	// Validate every segment first: the log's tail — the region where a
	// crash may legitimately have torn frames or left preallocated space
	// — is everything after the last segment that holds a record, which
	// is only known once all segments are walked (a crash during rotation
	// can leave BOTH a preallocated tail on the sealed segment and an
	// all-zero successor).
	counts := make([]uint64, len(segs))
	valids := make([]int64, len(segs))
	offsetTables := make([][]int64, len(segs))
	verrs := make([]error, len(segs))
	lastData := -1
	for i := range segs {
		counts[i], valids[i], offsetTables[i], verrs[i] = validateSegment(w.cfg.FS, segs[i].path)
		if counts[i] > 0 {
			lastData = i
		}
	}
	for i := range segs {
		seg := &segs[i]
		if err := verrs[i]; err != nil {
			if i < lastData {
				// Mid-log damage is real corruption, not a crash artifact;
				// the typed error locates it for the repair/degrade paths.
				return &RecordCorruptError{
					Segment: seg.path,
					Offset:  valids[i],
					Index:   seg.first + counts[i],
					Err:     err,
				}
			}
			// Torn or preallocated tail: drop everything from the first
			// bad frame on.
			if terr := w.cfg.FS.Truncate(seg.path, valids[i]); terr != nil {
				return fmt.Errorf("storage: truncating torn tail: %w", terr)
			}
		}
		seg.last = seg.first + counts[i] - 1 // first-1 when empty
		seg.size = valids[i]
		seg.offsets = offsetTables[i]
		if i > 0 && seg.first != segs[i-1].last+1 {
			return fmt.Errorf("%w: segment %s does not follow index %d",
				ErrCorrupt, seg.path, segs[i-1].last)
		}
	}
	w.segments = segs
	if len(segs) > 0 {
		w.next = segs[len(segs)-1].last + 1
	}
	return nil
}

// validateSegment walks a segment file and returns the number of valid
// records, the byte offset of the first invalid frame (== file size when
// the whole file is valid), and the byte offset of every valid record. A
// non-nil error means the file has a torn or corrupt tail starting at
// validLen.
func validateSegment(fs vfs.FS, path string) (count uint64, validLen int64, offsets []int64, err error) {
	f, err := fs.Open(path)
	if err != nil {
		return 0, 0, nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, 0, nil, err
	}
	size := info.Size()
	var hdr [recordHeaderSize]byte
	for validLen < size {
		if size-validLen < recordHeaderSize {
			return count, validLen, offsets, fmt.Errorf("torn header at %d", validLen)
		}
		if _, err := f.ReadAt(hdr[:], validLen); err != nil {
			return count, validLen, offsets, err
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		sum := binary.BigEndian.Uint32(hdr[4:])
		if n == 0 {
			// Records are never empty (every kind carries at least a tag
			// byte), and a preallocated-but-unwritten tail reads as zero
			// headers: treat it as the torn tail.
			return count, validLen, offsets, fmt.Errorf("preallocated or torn tail at %d", validLen)
		}
		if n > maxRecordSize || int64(n) > size-validLen-recordHeaderSize {
			return count, validLen, offsets, fmt.Errorf("torn record at %d", validLen)
		}
		payload := make([]byte, n)
		if _, err := f.ReadAt(payload, validLen+recordHeaderSize); err != nil {
			return count, validLen, offsets, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return count, validLen, offsets, fmt.Errorf("crc mismatch at %d", validLen)
		}
		offsets = append(offsets, validLen)
		validLen += recordHeaderSize + int64(n)
		count++
	}
	return count, validLen, offsets, nil
}

// openActive opens the newest segment for appending, creating the first
// segment of an empty log. The active segment is preallocated to the full
// segment size: appends then overwrite reserved space instead of growing
// the inode, which is what lets the commit wave flush with fdatasync. The
// committed size is the scanned one (the CRC walk's frontier), never the
// file size — past it lies preallocated space.
func (w *WAL) openActive() error {
	if len(w.segments) == 0 {
		w.segments = append(w.segments, segment{
			path:  w.segmentPath(w.next),
			first: w.next,
			last:  w.next - 1,
		})
	}
	seg := &w.segments[len(w.segments)-1]
	f, err := w.cfg.FS.OpenFile(seg.path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := f.Preallocate(w.cfg.SegmentBytes); err != nil {
		f.Close()
		return fmt.Errorf("storage: preallocating segment: %w", err)
	}
	w.active = f
	w.size = seg.size
	return w.syncDir()
}

func (w *WAL) segmentPath(first uint64) string {
	return filepath.Join(w.cfg.Dir, fmt.Sprintf("%020d%s", first, segSuffix))
}

// syncDir fsyncs the log directory so segment creations and deletions
// survive a crash.
func (w *WAL) syncDir() error {
	if w.cfg.NoSync {
		return nil
	}
	return w.cfg.FS.SyncDir(w.cfg.Dir)
}

// Append durably writes one record and returns its index. It blocks until
// the record (and every record batched into the same group commit) is
// fsynced. Safe for concurrent use; concurrency is what makes group commit
// pay off.
func (w *WAL) Append(rec []byte) (uint64, error) {
	tok, err := w.AppendAsync(rec)
	if err != nil {
		return 0, err
	}
	if err := tok.Wait(); err != nil {
		return 0, err
	}
	return tok.idx, nil
}

// AppendAsync enqueues one record for the next group commit and returns
// immediately with a durability token; the record's index is assigned at
// write time (Token.Index after a successful Wait). Records commit in
// enqueue order. This is the storage half of asynchronous decision
// logging: the caller keeps running and gates externally visible effects
// on the token instead of blocking the hot path on the fsync.
func (w *WAL) AppendAsync(rec []byte) (*Token, error) {
	return w.appendAsync(rec, nil)
}

// appendAsync is AppendAsync plus an optional commit callback, invoked on
// the committing goroutine (in log order) before the token completes.
// Callbacks must be cheap: they run inside the commit wave.
func (w *WAL) appendAsync(rec []byte, onCommit func(idx uint64, err error)) (*Token, error) {
	return w.appendAsyncOpt(rec, onCommit, false)
}

// appendAsyncOpt is the full enqueue: a lazy append triggers no wave of
// its own and rides the next eagerly triggered wave (or the queue's lazy
// flush timer). For records nothing gates on — block puts under the
// decision-gated dissemination rule — laziness makes durability free in
// steady state: they share the fsync some decision already pays for.
func (w *WAL) appendAsyncOpt(rec []byte, onCommit func(idx uint64, err error), lazy bool) (*Token, error) {
	if int64(len(rec))+recordHeaderSize > w.cfg.SegmentBytes {
		return nil, ErrTooBig
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, ErrClosed
	}
	if w.failErr != nil {
		err := w.failErr
		w.mu.Unlock()
		return nil, err
	}
	w.appendWg.Add(1)
	w.mu.Unlock()
	req := &appendReq{rec: rec, tok: newToken(), onCommit: onCommit}
	if w.cfg.Queue != nil {
		w.cfg.Queue.enqueue(w, req, lazy)
	} else {
		w.appendCh <- req
	}
	w.appendWg.Done()
	return req.tok, nil
}

// writer is the standalone group-commit loop (no commit queue): it blocks
// for one request, greedily drains whatever else queued up, writes the
// whole group, fsyncs once, and only then completes every request in the
// group.
func (w *WAL) writer() {
	defer w.wg.Done()
	for {
		var group []*appendReq
		select {
		case req := <-w.appendCh:
			group = append(group, req)
		case <-w.closeCh:
			// Close waited for in-flight Appends before signalling, so
			// whatever remains queued is the final group: commit it and
			// exit.
			for {
				select {
				case req := <-w.appendCh:
					group = append(group, req)
					continue
				default:
				}
				break
			}
			if len(group) > 0 {
				completeGroup(group, w.commit(group))
			}
			return
		}
	drain:
		for len(group) < 1024 {
			select {
			case req := <-w.appendCh:
				group = append(group, req)
			default:
				break drain
			}
		}
		completeGroup(group, w.commit(group))
	}
}

// commit writes and fsyncs one group (the standalone writer's path; the
// commit queue drives writeGroup and the fsync itself).
func (w *WAL) commit(group []*appendReq) error {
	f, err := w.writeGroup(group)
	if err != nil || f == nil {
		return err
	}
	if err := w.fsync(f); err != nil {
		if disableFsyncFailFast.Load() {
			// Teeth switch: ack the wave as if it were durable. The dirty
			// pages are gone — a crash now loses every record in it.
			return nil
		}
		w.poison(err)
		return w.Poisoned()
	}
	return nil
}

// poison marks the log permanently failed (fsyncgate fail-fast): after a
// failed fsync the kernel has dropped the dirty pages, so a retry would
// falsely succeed, and the file may hold a torn frame past which nothing
// can be appended safely (recovery would truncate records acknowledged
// after it). Every later append — and the failed wave's own tokens —
// fail with a typed error wrapping both ErrLogPoisoned and the original
// cause.
func (w *WAL) poison(err error) {
	w.mu.Lock()
	if w.failErr == nil {
		w.failErr = fmt.Errorf("%w: %v", ErrLogPoisoned, err)
		w.metrics.LogPoisoned.Inc()
	}
	w.mu.Unlock()
}

// Poisoned returns the poisoning error when the log has failed fail-fast
// (nil while healthy). The consensus durability poller and the node's
// dissemination gate observe it through the append tokens; this probe is
// for health surfaces that want to ask directly.
func (w *WAL) Poisoned() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failErr
}

// writeGroup writes one group's frames into the active segment (rotating
// as needed) and assigns record indices, without fsyncing. It returns the
// file that must be fsynced before the group may be completed (nil when
// nothing needs syncing: an all-barrier group, or NoSync). Only one
// goroutine — the standalone writer or the commit queue's scheduler —
// calls it. A write failure poisons the log.
func (w *WAL) writeGroup(group []*appendReq) (vfs.File, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failErr != nil {
		return nil, w.failErr
	}
	dirty, err := w.writeGroupLocked(group)
	if err != nil {
		w.failErr = err
		return nil, err
	}
	if !dirty || w.cfg.NoSync {
		return nil, nil
	}
	return w.active, nil
}

func (w *WAL) writeGroupLocked(group []*appendReq) (dirty bool, err error) {
	buf := w.commitBuf[:0]
	defer func() { w.commitBuf = buf[:0] }()
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		// Positioned write at the committed frontier: the file offset is
		// meaningless in a preallocated segment (i_size sits at the
		// segment size, not the frontier).
		if _, err := w.active.WriteAt(buf, w.size); err != nil {
			return err
		}
		w.metrics.BytesWritten.Add(uint64(len(buf)))
		w.size += int64(len(buf))
		w.segments[len(w.segments)-1].size = w.size
		buf = buf[:0]
		dirty = true
		return nil
	}
	for _, req := range group {
		if req.rec == nil {
			continue // flush barrier: completes with the group, writes nothing
		}
		framed := int64(len(req.rec)) + recordHeaderSize
		if w.size+int64(len(buf))+framed > w.cfg.SegmentBytes && w.size+int64(len(buf)) > 0 {
			if err := flush(); err != nil {
				return dirty, err
			}
			if err := w.rotateLocked(); err != nil {
				return dirty, err
			}
		}
		req.tok.idx = w.next
		w.next++
		seg := &w.segments[len(w.segments)-1]
		seg.last = req.tok.idx
		seg.offsets = append(seg.offsets, w.size+int64(len(buf)))
		var hdr [recordHeaderSize]byte
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(req.rec)))
		binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(req.rec))
		buf = append(buf, hdr[:]...)
		buf = append(buf, req.rec...)
	}
	if err := flush(); err != nil {
		return dirty, err
	}
	return dirty, nil
}

// rotateLocked seals the active segment and opens the next one. The
// sealed segment is trimmed to its committed size before the next one is
// created, so only the newest segment ever carries a preallocated tail —
// the invariant the open-time scan relies on (mid-log validation errors
// mean real corruption, not leftover preallocation).
func (w *WAL) rotateLocked() error {
	if !w.cfg.NoSync {
		if err := w.fsync(w.active); err != nil {
			return err
		}
	}
	if err := w.active.Truncate(w.size); err != nil {
		return err
	}
	if !w.cfg.NoSync {
		// Full fsync (not fdatasync): the truncate is a metadata change,
		// and the scan invariant — only the newest segment may carry a
		// preallocated tail — must not depend on journal ordering
		// relative to the next segment's creation.
		w.syncs.Add(1)
		w.metrics.FsyncTotal.Inc()
		if err := w.active.Sync(); err != nil {
			return err
		}
	}
	if err := w.active.Close(); err != nil {
		return err
	}
	w.segments = append(w.segments, segment{
		path:  w.segmentPath(w.next),
		first: w.next,
		last:  w.next - 1,
	})
	f, err := w.cfg.FS.OpenFile(w.segments[len(w.segments)-1].path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := f.Preallocate(w.cfg.SegmentBytes); err != nil {
		f.Close()
		return err
	}
	w.active = f
	w.size = 0
	w.metrics.SegmentRotations.Inc()
	w.metrics.Segments.Set(int64(len(w.segments)))
	return w.syncDir()
}

// Replay streams every record in index order to fn. It must not run
// concurrently with Append (callers replay once, right after OpenWAL,
// before going live). A non-nil error from fn aborts the walk.
func (w *WAL) Replay(fn func(idx uint64, rec []byte) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, seg := range w.segments {
		if seg.last < seg.first {
			continue // empty segment
		}
		if err := replaySegment(w.cfg.FS, seg, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(fs vfs.FS, seg segment, fn func(idx uint64, rec []byte) error) error {
	raw, err := fs.ReadFile(seg.path)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	// Walk only the committed bytes: the active segment's file runs on
	// into preallocated space past the frontier.
	if int64(len(raw)) > seg.size {
		raw = raw[:seg.size]
	}
	idx := seg.first
	off := 0
	for off < len(raw) {
		if len(raw)-off < recordHeaderSize {
			return &RecordCorruptError{Segment: seg.path, Offset: int64(off), Index: idx,
				Err: errors.New("torn header")}
		}
		n := int(binary.BigEndian.Uint32(raw[off : off+4]))
		sum := binary.BigEndian.Uint32(raw[off+4 : off+8])
		if n > maxRecordSize || n > len(raw)-off-recordHeaderSize {
			return &RecordCorruptError{Segment: seg.path, Offset: int64(off), Index: idx,
				Err: errors.New("torn record")}
		}
		payload := raw[off+recordHeaderSize : off+recordHeaderSize+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return &RecordCorruptError{Segment: seg.path, Offset: int64(off), Index: idx,
				Err: errors.New("crc mismatch")}
		}
		off += recordHeaderSize + n
		if err := fn(idx, payload); err != nil {
			return err
		}
		idx++
	}
	return nil
}

// ReadRange streams every record with index in [from, to] (inclusive) to
// fn, in index order. The log lock is held only to snapshot the segment
// table; the file reads run without it, which is safe because committed
// record bytes are never rewritten and the scan stops at the snapshot's
// last committed index of each segment, before any frame a concurrent
// group commit may be appending. The caller must ensure the segments it
// reads are not pruned concurrently: the decision log prunes but is only
// ever replayed at open, and the block store — whose log prunes under
// retention — only calls ReadRange during open-time recovery; its
// concurrent read path is ReadRecords, which translates a deleted
// segment into ErrRecordGone. Indices below the pruning floor are
// silently absent. A non-nil error from fn aborts the walk.
func (w *WAL) ReadRange(from, to uint64, fn func(idx uint64, rec []byte) error) error {
	if from == 0 {
		from = 1
	}
	w.mu.Lock()
	segs := append([]segment(nil), w.segments...)
	w.mu.Unlock()
	for _, seg := range segs {
		if seg.last < seg.first || seg.last < from || seg.first > to {
			continue
		}
		// Stop at the segment's committed frontier: bytes past it may
		// belong to a frame still being written.
		stop := to
		if seg.last < stop {
			stop = seg.last
		}
		err := replaySegment(w.cfg.FS, seg, func(idx uint64, rec []byte) error {
			if idx < from {
				return nil
			}
			if err := fn(idx, rec); err != nil {
				return err
			}
			if idx == stop {
				return errStopReplay
			}
			return nil
		})
		if errors.Is(err, errStopReplay) {
			if stop == to {
				return nil // the range is covered
			}
			continue
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// errStopReplay aborts a range walk early once the range is covered.
var errStopReplay = errors.New("storage: stop replay")

// ErrRecordGone reports a record that vanished under a reader: its index
// fell below the pruning floor (or its segment file was deleted)
// between the caller's index lookup and the read. Callers that prune
// concurrently (the block store under retention) translate it by
// re-checking their floor.
var ErrRecordGone = errors.New("storage: record pruned during read")

// ReadRecords streams the records with the given indices (which must be
// sorted ascending and committed) to fn, in order. Each record is a
// single positioned read through the per-segment offset index — no
// prefix decoding — so serving a window of blocks costs O(window) reads
// regardless of where in its segment the window starts. Records whose
// index fell below the pruning floor (a concurrent compaction) surface
// as ErrRecordGone. A non-nil error from fn aborts the walk.
func (w *WAL) ReadRecords(idxs []uint64, fn func(idx uint64, rec []byte) error) error {
	if len(idxs) == 0 {
		return nil
	}
	w.mu.Lock()
	segs := append([]segment(nil), w.segments...)
	w.mu.Unlock()

	pos := 0
	for _, seg := range segs {
		if pos >= len(idxs) {
			break
		}
		if seg.last < seg.first || seg.last < idxs[pos] {
			continue
		}
		f, err := w.cfg.FS.Open(seg.path)
		if err != nil {
			if os.IsNotExist(err) {
				return fmt.Errorf("%w: segment %s", ErrRecordGone, seg.path)
			}
			return fmt.Errorf("storage: %w", err)
		}
		for pos < len(idxs) && idxs[pos] >= seg.first && idxs[pos] <= seg.last {
			idx := idxs[pos]
			rec, err := readRecordAt(f, seg.offsets[idx-seg.first])
			if err != nil {
				f.Close()
				return &RecordCorruptError{Segment: seg.path,
					Offset: seg.offsets[idx-seg.first], Index: idx, Err: err}
			}
			if err := fn(idx, rec); err != nil {
				f.Close()
				return err
			}
			pos++
		}
		f.Close()
	}
	if pos < len(idxs) {
		return fmt.Errorf("%w: record %d", ErrRecordGone, idxs[pos])
	}
	return nil
}

// readRecordAt reads and CRC-checks one framed record at a known offset.
func readRecordAt(f vfs.File, off int64) ([]byte, error) {
	var hdr [recordHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	sum := binary.BigEndian.Uint32(hdr[4:])
	if n > maxRecordSize {
		return nil, fmt.Errorf("oversized record (%d bytes)", n)
	}
	payload := make([]byte, n)
	if _, err := f.ReadAt(payload, off+recordHeaderSize); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("crc mismatch at offset %d", off)
	}
	return payload, nil
}

// SegmentSpan is one segment's record-index span and committed size, as
// reported to retention (the manifest's per-segment liveness summary is
// keyed by these spans).
type SegmentSpan struct {
	// First and Last bound the record indices stored in the segment
	// (Last < First for an empty segment).
	First, Last uint64
	// Size is the segment's committed bytes.
	Size int64
}

// SegmentSpans returns the index span of every retained segment, oldest
// first (the last entry is the active segment).
func (w *WAL) SegmentSpans() []SegmentSpan {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]SegmentSpan, 0, len(w.segments))
	for _, seg := range w.segments {
		out = append(out, SegmentSpan{First: seg.first, Last: seg.last, Size: seg.size})
	}
	return out
}

// RecordSpan locates a record's framed bytes on disk: the segment file
// holding it, the byte offset of its frame, and the frame's length
// (header + payload). ErrRecordGone when the record was pruned. Fault
// injectors use it to corrupt a specific record at rest; the scrubber's
// corruption reports carry the same coordinates.
func (w *WAL) RecordSpan(idx uint64) (path string, off, length int64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, seg := range w.segments {
		if idx < seg.first || idx > seg.last {
			continue
		}
		i := idx - seg.first
		end := seg.size
		if int(i)+1 < len(seg.offsets) {
			end = seg.offsets[i+1]
		}
		return seg.path, seg.offsets[i], end - seg.offsets[i], nil
	}
	return "", 0, 0, fmt.Errorf("%w: record %d", ErrRecordGone, idx)
}

// RecordSizeBytes sums the framed on-disk size of the given records
// (sorted ascending), read off the per-segment offset tables — no disk
// access. Records already pruned contribute zero (their bytes are gone).
// Retention uses it to attribute the log's size to channels.
func (w *WAL) RecordSizeBytes(idxs []uint64) int64 {
	if len(idxs) == 0 {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var total int64
	pos := 0
	for _, seg := range w.segments {
		if pos >= len(idxs) {
			break
		}
		for pos < len(idxs) && idxs[pos] < seg.first {
			pos++ // pruned below the oldest retained segment
		}
		for pos < len(idxs) && idxs[pos] >= seg.first && idxs[pos] <= seg.last {
			i := idxs[pos] - seg.first
			end := seg.size
			if int(i)+1 < len(seg.offsets) {
				end = seg.offsets[i+1]
			}
			total += end - seg.offsets[i]
			pos++
		}
	}
	return total
}

// SizeBytes returns the committed on-disk size of the log (the sum of
// all segment sizes). Retention policies use it as the bytes trigger.
func (w *WAL) SizeBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var total int64
	for _, seg := range w.segments {
		total += seg.size
	}
	return total
}

// FirstIndex returns the index of the oldest retained record (0 when the
// log is empty).
func (w *WAL) FirstIndex() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, seg := range w.segments {
		if seg.last >= seg.first {
			return seg.first
		}
	}
	return 0
}

// LastIndex returns the index of the newest record (0 when the log is
// empty).
func (w *WAL) LastIndex() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.next - 1
}

// PruneTo deletes sealed segments every record of which has index below
// keepFrom. The active segment is never deleted, so pruning keeps whole-
// segment granularity: some records below keepFrom may survive until their
// segment rotates out.
func (w *WAL) PruneTo(keepFrom uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	kept := make([]segment, 0, len(w.segments))
	removed := false
	var rmErr error
	for i, seg := range w.segments {
		if rmErr == nil && i < len(w.segments)-1 && seg.last < keepFrom {
			if err := w.cfg.FS.Remove(seg.path); err != nil && !os.IsNotExist(err) {
				rmErr = err // removal failed: the file is still there, keep it
			} else {
				removed = true
				continue
			}
		}
		kept = append(kept, seg)
	}
	w.segments = kept
	if rmErr != nil {
		return fmt.Errorf("storage: %w", rmErr)
	}
	if removed {
		w.metrics.PruneTotal.Inc()
		w.metrics.Segments.Set(int64(len(w.segments)))
		return w.syncDir()
	}
	return nil
}

// RewriteRecord atomically replaces the payload of committed record idx —
// the repair primitive under the scrubber: a record whose on-disk frame
// rotted is rewritten from a known-good copy (for blocks, one re-fetched
// from f+1-verified peers). The whole segment is rewritten to a temp file
// and renamed into place, so a crash mid-repair leaves either the old
// (corrupt) or the new (repaired) segment, never a torn one. The new
// payload may differ in length from the old frame (a repaired block often
// carries a merged signature set); subsequent records shift and the
// offset index is adjusted. Safe against concurrent appends and reads:
// the rewrite holds the log lock, and readers re-open segment files per
// read.
func (w *WAL) RewriteRecord(idx uint64, rec []byte) error {
	if int64(len(rec))+recordHeaderSize > w.cfg.SegmentBytes {
		return ErrTooBig
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	si := -1
	for i := range w.segments {
		if idx >= w.segments[i].first && idx <= w.segments[i].last {
			si = i
			break
		}
	}
	if si < 0 {
		return fmt.Errorf("%w: record %d", ErrRecordGone, idx)
	}
	seg := &w.segments[si]
	off := seg.offsets[idx-seg.first]
	oldEnd := seg.size
	if int(idx-seg.first)+1 < len(seg.offsets) {
		oldEnd = seg.offsets[idx-seg.first+1]
	}

	raw, err := w.cfg.FS.ReadFile(seg.path)
	if err != nil {
		return fmt.Errorf("storage: rewriting record %d: %w", idx, err)
	}
	if int64(len(raw)) > seg.size {
		raw = raw[:seg.size] // drop the preallocated tail of the active segment
	}
	if int64(len(raw)) < oldEnd {
		return fmt.Errorf("storage: rewriting record %d: segment %s shorter than its index", idx, seg.path)
	}
	fixed := make([]byte, 0, int64(len(raw))+int64(len(rec))+recordHeaderSize-(oldEnd-off))
	fixed = append(fixed, raw[:off]...)
	var hdr [recordHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(rec)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(rec))
	fixed = append(fixed, hdr[:]...)
	fixed = append(fixed, rec...)
	fixed = append(fixed, raw[oldEnd:]...)

	tmp := seg.path + ".repair"
	f, err := w.cfg.FS.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: rewriting record %d: %w", idx, err)
	}
	if _, err := f.Write(fixed); err != nil {
		f.Close()
		return fmt.Errorf("storage: rewriting record %d: %w", idx, err)
	}
	if !w.cfg.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("storage: rewriting record %d: %w", idx, err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: rewriting record %d: %w", idx, err)
	}

	active := si == len(w.segments)-1
	if active {
		// The open append handle points at the inode the rename is about
		// to unlink; swap it for a handle on the repaired file afterwards.
		if err := w.active.Close(); err != nil {
			return fmt.Errorf("storage: rewriting record %d: %w", idx, err)
		}
	}
	if err := w.cfg.FS.Rename(tmp, seg.path); err != nil {
		return fmt.Errorf("storage: rewriting record %d: %w", idx, err)
	}
	if err := w.syncDir(); err != nil {
		return fmt.Errorf("storage: rewriting record %d: %w", idx, err)
	}

	delta := (int64(len(rec)) + recordHeaderSize) - (oldEnd - off)
	for i := int(idx-seg.first) + 1; i < len(seg.offsets); i++ {
		seg.offsets[i] += delta
	}
	seg.size += delta
	if active {
		w.size = seg.size
		nf, err := w.cfg.FS.OpenFile(seg.path, os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			w.failErr = fmt.Errorf("%w: reopening active segment after repair: %v", ErrLogPoisoned, err)
			return fmt.Errorf("storage: rewriting record %d: %w", idx, err)
		}
		if err := nf.Preallocate(w.cfg.SegmentBytes); err != nil {
			nf.Close()
			w.failErr = fmt.Errorf("%w: preallocating active segment after repair: %v", ErrLogPoisoned, err)
			return fmt.Errorf("storage: rewriting record %d: %w", idx, err)
		}
		w.active = nf
	}
	return nil
}

// Close stops the writer, fsyncs, and closes the active segment. Appends
// in flight complete or fail with ErrClosed. A queue-attached log drains
// itself through the commit queue (which must still be open) with a flush
// barrier before closing its file.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	w.appendWg.Wait()
	if w.cfg.Queue != nil {
		barrier := &appendReq{tok: newToken()}
		w.cfg.Queue.enqueue(w, barrier, false)
		barrier.tok.Wait() // every request ahead of it has committed
	} else {
		close(w.closeCh)
		w.wg.Wait()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.cfg.NoSync {
		if err := w.fsync(w.active); err != nil {
			w.active.Close()
			return err
		}
	}
	// Trim the preallocated tail so a cleanly closed segment is exact-
	// size on disk (reopen re-preallocates the active one).
	if err := w.active.Truncate(w.size); err != nil {
		w.active.Close()
		return err
	}
	return w.active.Close()
}
