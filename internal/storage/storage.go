package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/fabric"
	"repro/internal/storage/retention"
	"repro/internal/wire"
)

// DecidedEntry is one consensus decision recovered from the decision log.
type DecidedEntry struct {
	Seq   int64
	Batch [][]byte
}

// RecoveredState is everything a restarting node gets back from disk: the
// newest consensus checkpoint, the decided batches logged after it, and
// the persisted chains' frontiers. Chains carry no blocks — recovery is
// O(manifest + log tail), and ledgers restored from a ChainInfo page
// blocks back from the store on demand.
type RecoveredState struct {
	// CheckpointSeq is the sequence of the newest checkpoint, -1 when no
	// checkpoint was ever written.
	CheckpointSeq int64
	// Checkpoint is the wrapped consensus snapshot at CheckpointSeq.
	Checkpoint []byte
	// Decisions are the logged batches with Seq > CheckpointSeq, in
	// sequence order.
	Decisions []DecidedEntry
	// Chains are the persisted chains' frontiers (floor, anchor, height,
	// last hash), keyed by channel.
	Chains map[string]ChainInfo
}

// NodeStorage is one ordering node's durable state, rooted at a data
// directory:
//
//	<dir>/wal/     decision log (segmented WAL, group commit)
//	<dir>/blocks/  sealed blocks (segmented WAL, group commit)
//	<dir>/checkpoint  newest consensus snapshot (atomic replace)
//
// The decision log is the write-ahead half: a batch is fsynced before its
// effects become externally visible, so on restart the node replays
// checkpoint + log and arrives at exactly the state it had durably
// reached. Decisions may be enqueued asynchronously (AppendDecisionAsync):
// the caller keeps running and gates visible effects on the returned
// durability token instead of blocking on the fsync. Both logs commit
// through one shared CommitQueue, so a decision and the block it seals
// ride the same fsync wave instead of paying two serialized flushes.
// Checkpoints prune the decision log behind them (whole segments at a
// time).
type NodeStorage struct {
	dir    string
	wal    *WAL
	blocks *BlockStore
	ckpt   *Checkpointer
	queue  *CommitQueue

	recovered *RecoveredState

	// mu guards the seq<->wal-index correspondence of the decision log.
	mu      sync.Mutex
	lastSeq int64  // newest decision seq committed to disk (-1 when none)
	lastIdx uint64 // its WAL index
	enqSeq  int64  // newest decision seq enqueued (>= lastSeq)
	lastTok *Token // durability token of the newest enqueued decision

	// Checkpoint worker: SaveCheckpointAsync hands the newest snapshot
	// to this goroutine so the checkpoint's two fsyncs (tmp file + dir)
	// never run on the consensus event loop. Only the newest pending
	// snapshot matters, so the slot holds at most one. ckptSaveMu
	// serializes the actual saves (the worker and direct SaveCheckpoint
	// calls), and ckptSavedSeq keeps them monotonic — a stale coalesced
	// save must never replace a newer checkpoint on disk.
	ckptMu       sync.Mutex
	ckptPending  *ckptReq
	ckptNotify   chan struct{}
	ckptDone     chan struct{}
	ckptWg       sync.WaitGroup
	ckptSaveMu   sync.Mutex
	ckptSavedSeq int64
}

// ckptReq is one pending asynchronous checkpoint save.
type ckptReq struct {
	seq  int64
	snap []byte
}

// Options tunes a NodeStorage.
type Options struct {
	// SegmentBytes overrides the WAL segment size of both the decision log
	// and the block store (default 4 MiB). Smaller segments mean
	// finer-grained pruning behind checkpoints at the cost of more files.
	SegmentBytes int64
	// BlockSegmentBytes overrides the block store's segment size
	// independently (zero inherits SegmentBytes). Retention deletes whole
	// block segments, so this is the compaction granularity — and block
	// records are a single block each, far smaller than the decision
	// log's batch records, so the block store tolerates much smaller
	// segments.
	BlockSegmentBytes int64
	// NoSync disables fsync everywhere. Only for benchmarks isolating the
	// write path.
	NoSync bool
	// CommitMaxDelay is the shared commit queue's coalescing window: how
	// long a wave waits after its first pending append before fsyncing,
	// trading commit latency for larger groups. Zero (the default)
	// commits greedily.
	CommitMaxDelay time.Duration
	// CommitMaxBatch caps how many records of one log merge into a
	// single fsync wave (default 1024).
	CommitMaxBatch int
	// SyncHook, when set, runs at the start of every commit wave, before
	// any record of the wave is written. Test instrumentation: stalling
	// it keeps enqueued records non-durable, which is how the
	// write-ahead gating and crash-window tests open the window between
	// enqueue and fsync.
	SyncHook func()
}

// Open opens (or initializes) a node's durable state under dir and
// recovers whatever a previous incarnation left behind.
func Open(dir string, opts Options) (*NodeStorage, error) {
	ckpt, err := NewCheckpointer(dir)
	if err != nil {
		return nil, err
	}
	// Both logs live on the same device; one shared queue coalesces their
	// group commits into joint fsync waves.
	queue := NewCommitQueue(CommitQueueConfig{
		MaxDelay: opts.CommitMaxDelay,
		MaxBatch: opts.CommitMaxBatch,
		SyncHook: opts.SyncHook,
	})
	wal, err := OpenWAL(WALConfig{
		Dir:          filepath.Join(dir, "wal"),
		SegmentBytes: opts.SegmentBytes,
		NoSync:       opts.NoSync,
		Queue:        queue,
	})
	if err != nil {
		queue.Close()
		return nil, err
	}
	blockSegment := opts.BlockSegmentBytes
	if blockSegment <= 0 {
		blockSegment = opts.SegmentBytes
	}
	blocks, err := OpenBlockStore(WALConfig{
		Dir:          filepath.Join(dir, "blocks"),
		SegmentBytes: blockSegment,
		NoSync:       opts.NoSync,
		Queue:        queue,
	})
	if err != nil {
		wal.Close()
		queue.Close()
		return nil, err
	}
	s := &NodeStorage{
		dir:        dir,
		wal:        wal,
		blocks:     blocks,
		ckpt:       ckpt,
		queue:        queue,
		lastSeq:      -1,
		enqSeq:       -1,
		ckptNotify:   make(chan struct{}, 1),
		ckptDone:     make(chan struct{}),
		ckptSavedSeq: -1,
	}
	if err := s.recover(); err != nil {
		s.Close()
		return nil, err
	}
	s.ckptWg.Add(1)
	go s.ckptWorker()
	return s, nil
}

// recover loads the checkpoint and replays the decision log.
func (s *NodeStorage) recover() error {
	st := &RecoveredState{CheckpointSeq: -1}
	seq, snap, found, err := s.ckpt.Load()
	if err != nil {
		return err
	}
	if found {
		st.CheckpointSeq = seq
		st.Checkpoint = snap
		s.lastSeq = seq // pruning floor; log entries replayed below override
		s.ckptSavedSeq = seq
	}
	err = s.wal.Replay(func(idx uint64, rec []byte) error {
		entry, err := decodeDecision(rec)
		if err != nil {
			return err
		}
		s.lastSeq = entry.Seq
		s.lastIdx = idx
		if entry.Seq <= st.CheckpointSeq {
			return nil // already covered by the checkpoint; awaiting prune
		}
		if n := len(st.Decisions); n > 0 && entry.Seq != st.Decisions[n-1].Seq+1 {
			return fmt.Errorf("%w: decision log gap at seq %d", ErrCorrupt, entry.Seq)
		}
		st.Decisions = append(st.Decisions, entry)
		return nil
	})
	if err != nil {
		return err
	}
	if len(st.Decisions) > 0 && st.CheckpointSeq >= 0 &&
		st.Decisions[0].Seq != st.CheckpointSeq+1 {
		return fmt.Errorf("%w: decision log starts at seq %d after checkpoint %d",
			ErrCorrupt, st.Decisions[0].Seq, st.CheckpointSeq)
	}
	st.Chains = s.blocks.Chains()
	s.recovered = st
	s.enqSeq = s.lastSeq
	return nil
}

// Recovered returns the state replayed at Open and releases the storage's
// reference to it.
func (s *NodeStorage) Recovered() *RecoveredState {
	st := s.recovered
	s.recovered = nil
	if st == nil {
		st = &RecoveredState{CheckpointSeq: -1, Chains: map[string]ChainInfo{}}
	}
	return st
}

// AppendDecision durably logs one decided batch, blocking until the
// record is fsynced. Sequences must arrive in order without gaps.
func (s *NodeStorage) AppendDecision(seq int64, batch [][]byte) error {
	return s.AppendDecisionAsync(seq, batch).Wait()
}

// AppendDecisionAsync enqueues one decided batch on the shared commit
// queue and returns its durability token without waiting for the fsync.
// The consensus event loop calls this and keeps executing; the node's
// send drain gates block persist and dissemination on the token, which
// preserves the write-ahead discipline (nothing leaves the node before
// its decision is on disk) without serializing the loop on the flush.
// Sequences must arrive in order without gaps; a duplicate returns the
// newest enqueued decision's token (the log is FIFO, so its completion
// implies the duplicate's record is durable too).
func (s *NodeStorage) AppendDecisionAsync(seq int64, batch [][]byte) *Token {
	s.mu.Lock()
	if s.enqSeq >= 0 && seq <= s.enqSeq {
		tok := s.lastTok
		s.mu.Unlock()
		if tok == nil {
			return doneToken(nil) // recovered replay duplicate: already on disk
		}
		return tok
	}
	s.mu.Unlock()

	size := 16
	for _, op := range batch {
		size += len(op) + 8
	}
	w := wire.GetWriter(size)
	w.PutInt64(seq)
	w.PutBytesSlice(batch)
	tok, err := s.wal.appendAsync(w.Bytes(), func(idx uint64, err error) {
		// Runs on the committing goroutine, after the record's bytes were
		// copied into the commit buffer: the encode buffer is free again,
		// and on success the seq<->index correspondence advances (the
		// pair SaveCheckpoint's prune arithmetic relies on).
		wire.PutWriter(w)
		if err != nil {
			return
		}
		s.mu.Lock()
		s.lastSeq = seq
		s.lastIdx = idx
		s.mu.Unlock()
	})
	if err != nil {
		wire.PutWriter(w)
		return doneToken(err)
	}
	s.mu.Lock()
	s.enqSeq = seq
	s.lastTok = tok
	s.mu.Unlock()
	return tok
}

// DecisionToken returns the durability token of the newest enqueued
// decision (an already-completed token when nothing is outstanding). The
// decision log is FIFO, so waiting on it implies every earlier decision
// is on disk; the node's send drain uses exactly that to gate block
// dissemination.
func (s *NodeStorage) DecisionToken() *Token {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lastTok == nil {
		return doneToken(nil)
	}
	return s.lastTok
}

// SaveCheckpoint atomically persists the consensus snapshot at seq, then
// prunes decision-log segments wholly behind it. Saves are serialized
// and monotonic: a save at or below the newest on-disk checkpoint is a
// no-op (a checkpoint subsumes every older one).
func (s *NodeStorage) SaveCheckpoint(seq int64, snapshot []byte) error {
	s.ckptSaveMu.Lock()
	defer s.ckptSaveMu.Unlock()
	if seq <= s.ckptSavedSeq {
		return nil
	}
	if err := s.ckpt.Save(seq, snapshot); err != nil {
		return err
	}
	s.ckptSavedSeq = seq
	s.mu.Lock()
	lastSeq, lastIdx := s.lastSeq, s.lastIdx
	s.mu.Unlock()
	if lastIdx == 0 || seq > lastSeq {
		return nil // nothing logged yet, or checkpoint ahead of the log
	}
	// Decisions are logged contiguously, so index arithmetic maps seq to
	// its WAL index: keep records strictly after seq.
	keepFrom := lastIdx - uint64(lastSeq-seq) + 1
	return s.wal.PruneTo(keepFrom)
}

// SaveCheckpointAsync hands the snapshot to the checkpoint worker and
// returns immediately: the save's fsyncs run off the caller's goroutine
// (the consensus event loop). Only the newest pending snapshot is kept —
// a checkpoint subsumes every older one — so a slow disk coalesces
// checkpoints instead of queueing them. A crash before the worker gets
// there just recovers from the previous checkpoint with a longer
// decision-log replay; Close flushes the pending save.
func (s *NodeStorage) SaveCheckpointAsync(seq int64, snapshot []byte) {
	s.ckptMu.Lock()
	s.ckptPending = &ckptReq{seq: seq, snap: snapshot}
	s.ckptMu.Unlock()
	select {
	case s.ckptNotify <- struct{}{}:
	default:
	}
}

func (s *NodeStorage) ckptWorker() {
	defer s.ckptWg.Done()
	for {
		select {
		case <-s.ckptNotify:
		case <-s.ckptDone:
			s.flushCheckpoint()
			return
		}
		s.flushCheckpoint()
	}
}

// flushCheckpoint saves the pending snapshot, if any.
func (s *NodeStorage) flushCheckpoint() {
	s.ckptMu.Lock()
	req := s.ckptPending
	s.ckptPending = nil
	s.ckptMu.Unlock()
	if req == nil {
		return
	}
	if err := s.SaveCheckpoint(req.seq, req.snap); err != nil {
		fmt.Fprintf(os.Stderr, "storage: async checkpoint at seq %d failed: %v\n", req.seq, err)
	}
}

// PutBlock durably appends a sealed block for a channel (fabric.BlockBackend).
func (s *NodeStorage) PutBlock(channel string, b *fabric.Block) error {
	return s.blocks.Put(channel, b)
}

// PutBlockAsync enqueues a sealed block on the shared commit queue and
// returns its durability token (fabric.AsyncBlockBackend): a persistent
// ledger's AppendAsync rides one fsync wave per contiguous run instead
// of one per block.
func (s *NodeStorage) PutBlockAsync(channel string, b *fabric.Block) (fabric.DurableToken, error) {
	tok, err := s.blocks.PutAsync(channel, b)
	if err != nil {
		return nil, err
	}
	return tok, nil
}

// BlockHeight returns the number of blocks persisted for a channel.
func (s *NodeStorage) BlockHeight(channel string) uint64 {
	return s.blocks.Height(channel)
}

// ReadBlocks reads up to max persisted blocks of a channel back from disk,
// starting at block number start (fabric.BlockReader). Ledgers backed by a
// NodeStorage therefore keep only a bounded tail in memory and page older
// blocks in on demand. A start below the retention floor answers
// fabric.ErrPruned.
func (s *NodeStorage) ReadBlocks(channel string, start uint64, max int) ([]*fabric.Block, error) {
	return s.blocks.ReadBlocks(channel, start, max)
}

// BlockFloor returns a channel's retention floor: the first block number
// the store still serves.
func (s *NodeStorage) BlockFloor(channel string) uint64 {
	return s.blocks.Floor(channel)
}

// RetentionState reports the block store's retained windows and on-disk
// size (retention.Store).
func (s *NodeStorage) RetentionState() retention.State {
	return s.blocks.RetentionState()
}

// CompactTo snapshots and prunes the block store to the given per-channel
// floors (retention.Store). The decision log is unaffected — consensus
// checkpoints already prune it.
func (s *NodeStorage) CompactTo(floors map[string]uint64) (map[string]uint64, error) {
	return s.blocks.CompactTo(floors)
}

// RebaseBlocks jumps a channel's durable chain over a cluster-wide pruned
// gap (fabric.BlockRebaser).
func (s *NodeStorage) RebaseBlocks(channel string, floor uint64, anchor cryptoutil.Digest) error {
	return s.blocks.RebaseBlocks(channel, floor, anchor)
}

// BlockStoreBytes returns the block store's on-disk size.
func (s *NodeStorage) BlockStoreBytes() int64 { return s.blocks.SizeBytes() }

// Dir returns the storage root.
func (s *NodeStorage) Dir() string { return s.dir }

// Close flushes the pending checkpoint, flushes and closes both logs,
// then stops the shared commit queue (each log drains itself through the
// queue first, so order matters).
func (s *NodeStorage) Close() error {
	var first error
	if s.ckptDone != nil {
		select {
		case <-s.ckptDone:
			// already closed
		default:
			close(s.ckptDone)
		}
		s.ckptWg.Wait()
	}
	if s.wal != nil {
		if err := s.wal.Close(); err != nil {
			first = err
		}
	}
	if s.blocks != nil {
		if err := s.blocks.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.queue != nil {
		if err := s.queue.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func decodeDecision(rec []byte) (DecidedEntry, error) {
	r := wire.NewReader(rec)
	entry := DecidedEntry{
		Seq:   r.Int64(),
		Batch: r.BytesSlice(),
	}
	if err := r.Finish(); err != nil {
		return DecidedEntry{}, fmt.Errorf("storage: decision record: %w", err)
	}
	return entry, nil
}
