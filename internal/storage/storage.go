package storage

import (
	"fmt"
	"path/filepath"
	"sync"

	"repro/internal/cryptoutil"
	"repro/internal/fabric"
	"repro/internal/storage/retention"
	"repro/internal/wire"
)

// DecidedEntry is one consensus decision recovered from the decision log.
type DecidedEntry struct {
	Seq   int64
	Batch [][]byte
}

// RecoveredState is everything a restarting node gets back from disk: the
// newest consensus checkpoint, the decided batches logged after it, and
// the persisted chains' frontiers. Chains carry no blocks — recovery is
// O(manifest + log tail), and ledgers restored from a ChainInfo page
// blocks back from the store on demand.
type RecoveredState struct {
	// CheckpointSeq is the sequence of the newest checkpoint, -1 when no
	// checkpoint was ever written.
	CheckpointSeq int64
	// Checkpoint is the wrapped consensus snapshot at CheckpointSeq.
	Checkpoint []byte
	// Decisions are the logged batches with Seq > CheckpointSeq, in
	// sequence order.
	Decisions []DecidedEntry
	// Chains are the persisted chains' frontiers (floor, anchor, height,
	// last hash), keyed by channel.
	Chains map[string]ChainInfo
}

// NodeStorage is one ordering node's durable state, rooted at a data
// directory:
//
//	<dir>/wal/     decision log (segmented WAL, group commit)
//	<dir>/blocks/  sealed blocks (segmented WAL, group commit)
//	<dir>/checkpoint  newest consensus snapshot (atomic replace)
//
// The decision log is the write-ahead half: a batch is fsynced before the
// node executes it, so on restart the node replays checkpoint + log and
// arrives at exactly the state it had durably reached. Checkpoints prune
// the log behind them (whole segments at a time).
type NodeStorage struct {
	dir    string
	wal    *WAL
	blocks *BlockStore
	ckpt   *Checkpointer

	recovered *RecoveredState

	// mu guards the seq<->wal-index correspondence of the decision log.
	mu      sync.Mutex
	lastSeq int64  // newest decision seq on disk (-1 when none)
	lastIdx uint64 // its WAL index
}

// Options tunes a NodeStorage.
type Options struct {
	// SegmentBytes overrides the WAL segment size of both the decision log
	// and the block store (default 4 MiB). Smaller segments mean
	// finer-grained pruning behind checkpoints at the cost of more files.
	SegmentBytes int64
	// BlockSegmentBytes overrides the block store's segment size
	// independently (zero inherits SegmentBytes). Retention deletes whole
	// block segments, so this is the compaction granularity — and block
	// records are a single block each, far smaller than the decision
	// log's batch records, so the block store tolerates much smaller
	// segments.
	BlockSegmentBytes int64
	// NoSync disables fsync everywhere. Only for benchmarks isolating the
	// write path.
	NoSync bool
}

// Open opens (or initializes) a node's durable state under dir and
// recovers whatever a previous incarnation left behind.
func Open(dir string, opts Options) (*NodeStorage, error) {
	ckpt, err := NewCheckpointer(dir)
	if err != nil {
		return nil, err
	}
	wal, err := OpenWAL(WALConfig{
		Dir:          filepath.Join(dir, "wal"),
		SegmentBytes: opts.SegmentBytes,
		NoSync:       opts.NoSync,
	})
	if err != nil {
		return nil, err
	}
	blockSegment := opts.BlockSegmentBytes
	if blockSegment <= 0 {
		blockSegment = opts.SegmentBytes
	}
	blocks, err := OpenBlockStore(WALConfig{
		Dir:          filepath.Join(dir, "blocks"),
		SegmentBytes: blockSegment,
		NoSync:       opts.NoSync,
	})
	if err != nil {
		wal.Close()
		return nil, err
	}
	s := &NodeStorage{
		dir:     dir,
		wal:     wal,
		blocks:  blocks,
		ckpt:    ckpt,
		lastSeq: -1,
	}
	if err := s.recover(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// recover loads the checkpoint and replays the decision log.
func (s *NodeStorage) recover() error {
	st := &RecoveredState{CheckpointSeq: -1}
	seq, snap, found, err := s.ckpt.Load()
	if err != nil {
		return err
	}
	if found {
		st.CheckpointSeq = seq
		st.Checkpoint = snap
		s.lastSeq = seq // pruning floor; log entries replayed below override
	}
	err = s.wal.Replay(func(idx uint64, rec []byte) error {
		entry, err := decodeDecision(rec)
		if err != nil {
			return err
		}
		s.lastSeq = entry.Seq
		s.lastIdx = idx
		if entry.Seq <= st.CheckpointSeq {
			return nil // already covered by the checkpoint; awaiting prune
		}
		if n := len(st.Decisions); n > 0 && entry.Seq != st.Decisions[n-1].Seq+1 {
			return fmt.Errorf("%w: decision log gap at seq %d", ErrCorrupt, entry.Seq)
		}
		st.Decisions = append(st.Decisions, entry)
		return nil
	})
	if err != nil {
		return err
	}
	if len(st.Decisions) > 0 && st.CheckpointSeq >= 0 &&
		st.Decisions[0].Seq != st.CheckpointSeq+1 {
		return fmt.Errorf("%w: decision log starts at seq %d after checkpoint %d",
			ErrCorrupt, st.Decisions[0].Seq, st.CheckpointSeq)
	}
	st.Chains = s.blocks.Chains()
	s.recovered = st
	return nil
}

// Recovered returns the state replayed at Open and releases the storage's
// reference to it.
func (s *NodeStorage) Recovered() *RecoveredState {
	st := s.recovered
	s.recovered = nil
	if st == nil {
		st = &RecoveredState{CheckpointSeq: -1, Chains: map[string]ChainInfo{}}
	}
	return st
}

// AppendDecision durably logs one decided batch. It blocks until the
// record is fsynced; concurrent appends to the decision log coalesce into
// one group commit. (Block Puts go to a separate log with its own group
// commit, so a decision and its sealed block currently pay two fsyncs —
// see ROADMAP "storage pipelining".) Sequences must arrive in order
// without gaps.
func (s *NodeStorage) AppendDecision(seq int64, batch [][]byte) error {
	s.mu.Lock()
	if s.lastSeq >= 0 && seq <= s.lastSeq {
		s.mu.Unlock()
		return nil // replay duplicate
	}
	s.mu.Unlock()

	w := wire.NewWriter(64)
	w.PutInt64(seq)
	w.PutBytesSlice(batch)
	idx, err := s.wal.Append(w.Bytes())
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.lastSeq = seq
	s.lastIdx = idx
	s.mu.Unlock()
	return nil
}

// SaveCheckpoint atomically persists the consensus snapshot at seq, then
// prunes decision-log segments wholly behind it.
func (s *NodeStorage) SaveCheckpoint(seq int64, snapshot []byte) error {
	if err := s.ckpt.Save(seq, snapshot); err != nil {
		return err
	}
	s.mu.Lock()
	lastSeq, lastIdx := s.lastSeq, s.lastIdx
	s.mu.Unlock()
	if lastIdx == 0 || seq > lastSeq {
		return nil // nothing logged yet, or checkpoint ahead of the log
	}
	// Decisions are logged contiguously, so index arithmetic maps seq to
	// its WAL index: keep records strictly after seq.
	keepFrom := lastIdx - uint64(lastSeq-seq) + 1
	return s.wal.PruneTo(keepFrom)
}

// PutBlock durably appends a sealed block for a channel (fabric.BlockBackend).
func (s *NodeStorage) PutBlock(channel string, b *fabric.Block) error {
	return s.blocks.Put(channel, b)
}

// BlockHeight returns the number of blocks persisted for a channel.
func (s *NodeStorage) BlockHeight(channel string) uint64 {
	return s.blocks.Height(channel)
}

// ReadBlocks reads up to max persisted blocks of a channel back from disk,
// starting at block number start (fabric.BlockReader). Ledgers backed by a
// NodeStorage therefore keep only a bounded tail in memory and page older
// blocks in on demand. A start below the retention floor answers
// fabric.ErrPruned.
func (s *NodeStorage) ReadBlocks(channel string, start uint64, max int) ([]*fabric.Block, error) {
	return s.blocks.ReadBlocks(channel, start, max)
}

// BlockFloor returns a channel's retention floor: the first block number
// the store still serves.
func (s *NodeStorage) BlockFloor(channel string) uint64 {
	return s.blocks.Floor(channel)
}

// RetentionState reports the block store's retained windows and on-disk
// size (retention.Store).
func (s *NodeStorage) RetentionState() retention.State {
	return s.blocks.RetentionState()
}

// CompactTo snapshots and prunes the block store to the given per-channel
// floors (retention.Store). The decision log is unaffected — consensus
// checkpoints already prune it.
func (s *NodeStorage) CompactTo(floors map[string]uint64) (map[string]uint64, error) {
	return s.blocks.CompactTo(floors)
}

// RebaseBlocks jumps a channel's durable chain over a cluster-wide pruned
// gap (fabric.BlockRebaser).
func (s *NodeStorage) RebaseBlocks(channel string, floor uint64, anchor cryptoutil.Digest) error {
	return s.blocks.RebaseBlocks(channel, floor, anchor)
}

// BlockStoreBytes returns the block store's on-disk size.
func (s *NodeStorage) BlockStoreBytes() int64 { return s.blocks.SizeBytes() }

// Dir returns the storage root.
func (s *NodeStorage) Dir() string { return s.dir }

// Close flushes and closes both logs.
func (s *NodeStorage) Close() error {
	var first error
	if s.wal != nil {
		if err := s.wal.Close(); err != nil {
			first = err
		}
	}
	if s.blocks != nil {
		if err := s.blocks.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func decodeDecision(rec []byte) (DecidedEntry, error) {
	r := wire.NewReader(rec)
	entry := DecidedEntry{
		Seq:   r.Int64(),
		Batch: r.BytesSlice(),
	}
	if err := r.Finish(); err != nil {
		return DecidedEntry{}, fmt.Errorf("storage: decision record: %w", err)
	}
	return entry, nil
}
