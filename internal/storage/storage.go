package storage

import (
	"fmt"
	"log/slog"
	"math"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/storage/retention"
	"repro/internal/storage/vfs"
	"repro/internal/wire"
)

// Record kinds of the unified commit log. Every record starts with one of
// these tags; the recovery walk dispatches on it, and the one-byte peek is
// all it costs to skip records another subsystem owns.
const (
	// recDecision is a consensus decision: int64 seq + batch.
	recDecision byte = 0x01
	// recBlock is a sealed block: channel name + block bytes.
	recBlock byte = 0x02
	// recChannelMeta is per-channel metadata (sub-tagged); today that is
	// the rebase marker written when a chain jumps over a cluster-wide
	// pruned gap.
	recChannelMeta byte = 0x03
)

// metaRebase is the channel-meta sub-kind for rebase markers.
const metaRebase byte = 0x01

// DecidedEntry is one consensus decision recovered from the decision log.
type DecidedEntry struct {
	Seq   int64
	Batch [][]byte
}

// RecoveredState is everything a restarting node gets back from disk: the
// newest consensus checkpoint, the decided batches logged after it, and
// the persisted chains' frontiers. Chains carry no blocks — recovery is
// O(manifest + log tail), and ledgers restored from a ChainInfo page
// blocks back from the store on demand.
type RecoveredState struct {
	// CheckpointSeq is the sequence of the newest checkpoint, -1 when no
	// checkpoint was ever written.
	CheckpointSeq int64
	// Checkpoint is the wrapped consensus snapshot at CheckpointSeq.
	Checkpoint []byte
	// Decisions are the logged batches with Seq > CheckpointSeq, in
	// sequence order.
	Decisions []DecidedEntry
	// Chains are the persisted chains' frontiers (floor, anchor, height,
	// last hash), keyed by channel.
	Chains map[string]ChainInfo
	// Membership is the durable group view recorded by the last applied
	// reconfiguration, nil when the node never applied one. A recovering
	// node must prefer it over its static configuration.
	Membership *MembershipRecord
}

// seqIdx is one committed decision's (consensus seq, log index) pair. The
// slice of live pairs replaces the old dense-index arithmetic: with block
// and channel-meta records interleaved in the same log, decision indices
// are no longer contiguous, so checkpoint pruning looks the floor up
// instead of computing it.
type seqIdx struct {
	seq int64
	idx uint64
}

// NodeStorage is one ordering node's durable state, rooted at a data
// directory:
//
//	<dir>/log/        the unified commit log: decision, block, and
//	                  channel-meta records multiplexed into one segmented
//	                  WAL (plus the retention MANIFEST)
//	<dir>/checkpoint  newest consensus snapshot (atomic replace)
//
// Decision records are the write-ahead half: a batch is fsynced before
// its effects become externally visible, so on restart the node replays
// checkpoint + log and arrives at exactly the state it had durably
// reached. Decisions may be enqueued asynchronously (AppendDecisionAsync):
// the caller keeps running and gates visible effects on the returned
// durability token instead of blocking on the fsync. Because every record
// kind shares one physical log, a commit wave — the decisions decided in
// it and the blocks they sealed — costs exactly one fsync; recovery is a
// single typed walk that rebuilds the decision replay stream and the
// per-channel block index together. Segment reclamation follows the
// two-condition rule: a segment is deleted only when it is both behind
// the consensus checkpoint (no live decision) and below every channel's
// retention floor (no live block).
type NodeStorage struct {
	dir    string
	fs     vfs.FS
	wal    *WAL
	blocks *BlockStore
	ckpt   *Checkpointer
	queue  *CommitQueue

	recovered *RecoveredState

	// mu guards the decision bookkeeping of the shared log.
	mu      sync.Mutex
	lastSeq int64    // newest decision seq committed to disk (-1 when none)
	lastIdx uint64   // its log index
	enqSeq  int64    // newest decision seq enqueued (>= lastSeq)
	lastTok *Token   // durability token of the newest enqueued decision
	decPos  []seqIdx // committed decisions above the newest checkpoint, in order

	// Checkpoint worker: SaveCheckpointAsync hands the newest snapshot
	// to this goroutine so the checkpoint's two fsyncs (tmp file + dir)
	// never run on the consensus event loop. Only the newest pending
	// snapshot matters, so the slot holds at most one. ckptSaveMu
	// serializes the actual saves (the worker and direct SaveCheckpoint
	// calls), and ckptSavedSeq keeps them monotonic — a stale coalesced
	// save must never replace a newer checkpoint on disk.
	ckptMu       sync.Mutex
	ckptPending  *ckptReq
	ckptGate     func(seq int64) bool
	ckptNotify   chan struct{}
	ckptDone     chan struct{}
	ckptWg       sync.WaitGroup
	ckptSaveMu   sync.Mutex
	ckptSavedSeq int64

	// Membership record bookkeeping: memberEpoch is the newest epoch on
	// disk (nil before any save this incarnation — recovery seeds it).
	memberMu    sync.Mutex
	memberEpoch *uint64

	// metrics is never nil (normalized to a nop bundle at Open).
	metrics *obs.StorageMetrics
}

// ckptReq is one pending asynchronous checkpoint save.
type ckptReq struct {
	seq  int64
	snap []byte
}

// Options tunes a NodeStorage.
type Options struct {
	// SegmentBytes overrides the unified commit log's segment size
	// (default 4 MiB). Segments are both the checkpoint-pruning and the
	// retention-compaction granularity now that decisions and blocks
	// share one log, so smaller segments reclaim disk sooner at the cost
	// of more files.
	SegmentBytes int64
	// NoSync disables fsync everywhere. Only for benchmarks isolating the
	// write path.
	NoSync bool
	// CommitMaxDelay is the commit queue's coalescing window: how long a
	// wave waits after its first pending append before fsyncing, trading
	// commit latency for larger groups. Zero (the default) commits
	// greedily.
	CommitMaxDelay time.Duration
	// CommitMaxBatch caps how many records merge into a single fsync
	// wave (default 1024).
	CommitMaxBatch int
	// SyncHook, when set, runs at the start of every commit wave, before
	// any record of the wave is written. Test instrumentation: stalling
	// it keeps enqueued records non-durable, which is how the
	// write-ahead gating and crash-window tests open the window between
	// enqueue and fsync.
	SyncHook func()
	// Metrics, when set, instruments the commit log: waves, fsyncs, bytes,
	// segments, checkpoint, and retention events.
	Metrics *obs.StorageMetrics
	// FS is the filesystem seam every durable artifact goes through (nil =
	// the real OS filesystem). Fault-injection tests swap in a faultfs.FS
	// here; production never sets it.
	FS vfs.FS
}

// Open opens (or initializes) a node's durable state under dir and
// recovers whatever a previous incarnation left behind.
func Open(dir string, opts Options) (*NodeStorage, error) {
	fsys := vfs.OrOS(opts.FS)
	ckpt, err := NewCheckpointer(dir, fsys)
	if err != nil {
		return nil, err
	}
	queue := NewCommitQueue(CommitQueueConfig{
		MaxDelay: opts.CommitMaxDelay,
		MaxBatch: opts.CommitMaxBatch,
		SyncHook: opts.SyncHook,
		Metrics:  opts.Metrics,
	})
	wal, err := OpenWAL(WALConfig{
		Dir:          filepath.Join(dir, "log"),
		SegmentBytes: opts.SegmentBytes,
		NoSync:       opts.NoSync,
		Queue:        queue,
		Metrics:      opts.Metrics,
		FS:           fsys,
	})
	if err != nil {
		queue.Close()
		return nil, err
	}
	s := &NodeStorage{
		dir:          dir,
		fs:           fsys,
		wal:          wal,
		ckpt:         ckpt,
		queue:        queue,
		lastSeq:      -1,
		enqSeq:       -1,
		ckptNotify:   make(chan struct{}, 1),
		ckptDone:     make(chan struct{}),
		ckptSavedSeq: -1,
		metrics:      opts.Metrics.OrNop(),
	}
	s.blocks = newBlockStore(filepath.Join(dir, "log"), wal, false)
	s.blocks.decisionFloor = s.decisionFloor
	if err := s.recover(); err != nil {
		s.Close()
		return nil, err
	}
	s.ckptWg.Add(1)
	go s.ckptWorker()
	return s, nil
}

// recover loads the checkpoint and runs the single typed walk over the
// unified log: decision records rebuild the replay stream (and the
// seq↔index pairs checkpoint pruning needs), block and channel-meta
// records are forwarded to the block index. It finishes by re-applying
// any segment deletions a crash interrupted, under the two-condition
// rule.
func (s *NodeStorage) recover() error {
	st := &RecoveredState{CheckpointSeq: -1}
	seq, snap, found, err := s.ckpt.Load()
	if err != nil {
		return err
	}
	if found {
		st.CheckpointSeq = seq
		st.Checkpoint = snap
		s.lastSeq = seq // pruning floor; log entries replayed below override
		s.ckptSavedSeq = seq
	}
	if _, err := s.blocks.seedFromManifest(); err != nil {
		return err
	}
	err = s.wal.Replay(func(idx uint64, rec []byte) error {
		if len(rec) == 0 {
			return fmt.Errorf("%w: empty record %d", ErrCorrupt, idx)
		}
		if rec[0] != recDecision {
			return s.blocks.applyRecord(idx, rec)
		}
		entry, err := decodeDecision(rec)
		if err != nil {
			return err
		}
		s.lastSeq = entry.Seq
		s.lastIdx = idx
		if entry.Seq <= st.CheckpointSeq {
			return nil // already covered by the checkpoint; awaiting prune
		}
		if n := len(st.Decisions); n > 0 && entry.Seq != st.Decisions[n-1].Seq+1 {
			return fmt.Errorf("%w: decision log gap at seq %d", ErrCorrupt, entry.Seq)
		}
		st.Decisions = append(st.Decisions, entry)
		s.decPos = append(s.decPos, seqIdx{seq: entry.Seq, idx: idx})
		return nil
	})
	if err != nil {
		return err
	}
	if len(st.Decisions) > 0 && st.CheckpointSeq >= 0 &&
		st.Decisions[0].Seq != st.CheckpointSeq+1 {
		return fmt.Errorf("%w: decision log starts at seq %d after checkpoint %d",
			ErrCorrupt, st.Decisions[0].Seq, st.CheckpointSeq)
	}
	if err := s.blocks.finishRecovery(); err != nil {
		return err
	}
	member, err := loadMembership(s.fs, s.dir)
	if err != nil {
		return err
	}
	if member != nil {
		st.Membership = member
		epoch := member.Epoch
		s.memberEpoch = &epoch
	}
	st.Chains = s.blocks.Chains()
	s.recovered = st
	s.enqSeq = s.lastSeq
	// Re-apply deletions a crash may have interrupted: with both floors
	// known again, prune everything dead under the two-condition rule.
	return s.blocks.prune()
}

// Recovered returns the state replayed at Open and releases the storage's
// reference to it.
func (s *NodeStorage) Recovered() *RecoveredState {
	st := s.recovered
	s.recovered = nil
	if st == nil {
		st = &RecoveredState{CheckpointSeq: -1, Chains: map[string]ChainInfo{}}
	}
	return st
}

// decisionFloor returns the decision-liveness floor of the shared log:
// the index of the oldest committed decision the newest checkpoint has
// not subsumed, or MaxUint64 when every committed decision is behind a
// checkpoint (no decision constrains reclamation).
func (s *NodeStorage) decisionFloor() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.decPos) == 0 {
		return math.MaxUint64
	}
	return s.decPos[0].idx
}

// AppendDecision durably logs one decided batch, blocking until the
// record is fsynced. Sequences must arrive in order without gaps.
func (s *NodeStorage) AppendDecision(seq int64, batch [][]byte) error {
	return s.AppendDecisionAsync(seq, batch).Wait()
}

// AppendDecisionAsync enqueues one decided batch on the commit queue and
// returns its durability token without waiting for the fsync. The
// consensus event loop calls this and keeps executing; the node's send
// drain gates dissemination on the token, which preserves the
// write-ahead discipline (nothing leaves the node before its decision is
// on disk) without serializing the loop on the flush. Sequences must
// arrive in order without gaps; a duplicate returns the newest enqueued
// decision's token (the log is FIFO, so its completion implies the
// duplicate's record is durable too).
func (s *NodeStorage) AppendDecisionAsync(seq int64, batch [][]byte) *Token {
	s.mu.Lock()
	if s.enqSeq >= 0 && seq <= s.enqSeq {
		tok := s.lastTok
		s.mu.Unlock()
		if tok == nil {
			return doneToken(nil) // recovered replay duplicate: already on disk
		}
		return tok
	}
	s.mu.Unlock()

	size := 17
	for _, op := range batch {
		size += len(op) + 8
	}
	w := wire.GetWriter(size)
	w.PutByte(recDecision)
	w.PutInt64(seq)
	w.PutBytesSlice(batch)
	tok, err := s.wal.appendAsync(w.Bytes(), func(idx uint64, err error) {
		// Runs on the committing goroutine, after the record's bytes were
		// copied into the commit buffer: the encode buffer is free again,
		// and on success the seq<->index pair joins the live-decision
		// list checkpoint pruning reads.
		wire.PutWriter(w)
		if err != nil {
			return
		}
		s.mu.Lock()
		s.lastSeq = seq
		s.lastIdx = idx
		s.decPos = append(s.decPos, seqIdx{seq: seq, idx: idx})
		s.mu.Unlock()
	})
	if err != nil {
		wire.PutWriter(w)
		return doneToken(err)
	}
	s.mu.Lock()
	s.enqSeq = seq
	s.lastTok = tok
	s.mu.Unlock()
	return tok
}

// DecisionToken returns the durability token of the newest enqueued
// decision (an already-completed token when nothing is outstanding). The
// decision records are FIFO in the log, so waiting on it implies every
// earlier decision is on disk; the node's send drain uses exactly that
// to gate block dissemination.
func (s *NodeStorage) DecisionToken() *Token {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lastTok == nil {
		return doneToken(nil)
	}
	return s.lastTok
}

// SaveCheckpoint atomically persists the consensus snapshot at seq, then
// prunes shared-log segments dead under the two-condition rule (behind
// this checkpoint AND below every channel's retention floor). Saves are
// serialized and monotonic: a save at or below the newest on-disk
// checkpoint is a no-op (a checkpoint subsumes every older one).
func (s *NodeStorage) SaveCheckpoint(seq int64, snapshot []byte) error {
	s.ckptSaveMu.Lock()
	defer s.ckptSaveMu.Unlock()
	if seq <= s.ckptSavedSeq {
		return nil
	}
	if err := s.ckpt.Save(seq, snapshot); err != nil {
		return err
	}
	s.ckptSavedSeq = seq
	s.metrics.CheckpointSaved.Inc()
	// Decisions at or below seq are subsumed: drop them from the
	// live-decision list, then prune whatever segments both floors agree
	// are dead.
	s.mu.Lock()
	cut := sort.Search(len(s.decPos), func(i int) bool { return s.decPos[i].seq > seq })
	s.decPos = append([]seqIdx(nil), s.decPos[cut:]...)
	s.mu.Unlock()
	return s.blocks.prune()
}

// SaveCheckpointAsync hands the snapshot to the checkpoint worker and
// returns immediately: the save's fsyncs run off the caller's goroutine
// (the consensus event loop). Only the newest pending snapshot is kept —
// a checkpoint subsumes every older one — so a slow disk coalesces
// checkpoints instead of queueing them. A crash before the worker gets
// there just recovers from the previous checkpoint with a longer
// decision-log replay; Close flushes the pending save.
func (s *NodeStorage) SaveCheckpointAsync(seq int64, snapshot []byte) {
	s.ckptMu.Lock()
	s.ckptPending = &ckptReq{seq: seq, snap: snapshot}
	s.ckptMu.Unlock()
	select {
	case s.ckptNotify <- struct{}{}:
	default:
	}
}

// SetCheckpointGate installs a predicate consulted before an asynchronous
// checkpoint save is written: the save is deferred while the gate returns
// false for its seq. Recovery skips every decision at or below the on-disk
// checkpoint seq, so a checkpoint that lands before the blocks it implies
// are durable would turn a crash into a permanent ledger gap — the ordering
// layer gates saves on its persist watermark and calls NudgeCheckpoint when
// the watermark advances. The gate must not block; it may be called from the
// checkpoint worker at any time. Direct (synchronous) SaveCheckpoint calls
// bypass the gate: the bridging path already waits for durability itself.
func (s *NodeStorage) SetCheckpointGate(gate func(seq int64) bool) {
	s.ckptMu.Lock()
	s.ckptGate = gate
	s.ckptMu.Unlock()
}

// NudgeCheckpoint re-examines a deferred checkpoint save. Non-blocking;
// called whenever the condition the gate watches may have changed.
func (s *NodeStorage) NudgeCheckpoint() {
	select {
	case s.ckptNotify <- struct{}{}:
	default:
	}
}

// SavedCheckpointSeq reads the sequence of the checkpoint that is durably
// on disk right now, -1 when none was ever saved. Saves replace the stable
// file by atomic rename, so this is safe to call while the checkpoint
// worker runs; it is an observability probe for tests and tooling, not a
// hot-path accessor.
func (s *NodeStorage) SavedCheckpointSeq() (int64, error) {
	seq, _, found, err := s.ckpt.Load()
	if err != nil {
		return -1, err
	}
	if !found {
		return -1, nil
	}
	return seq, nil
}

func (s *NodeStorage) ckptWorker() {
	defer s.ckptWg.Done()
	for {
		select {
		case <-s.ckptNotify:
		case <-s.ckptDone:
			s.flushCheckpoint()
			return
		}
		s.flushCheckpoint()
	}
}

// flushCheckpoint saves the pending snapshot, if any, unless the
// checkpoint gate defers it.
func (s *NodeStorage) flushCheckpoint() {
	s.ckptMu.Lock()
	req := s.ckptPending
	s.ckptPending = nil
	gate := s.ckptGate
	s.ckptMu.Unlock()
	if req == nil {
		return
	}
	if gate != nil && !gate(req.seq) {
		// The blocks this checkpoint implies are not all durable yet.
		// Re-queue the snapshot (unless a newer one already took the slot)
		// and wait for a NudgeCheckpoint; a crash meanwhile just replays
		// from the previous checkpoint.
		s.metrics.CheckpointDeferred.Inc()
		s.ckptMu.Lock()
		if s.ckptPending == nil {
			s.ckptPending = req
		}
		s.ckptMu.Unlock()
		return
	}
	if err := s.SaveCheckpoint(req.seq, req.snap); err != nil {
		slog.Error("storage: async checkpoint save failed", "dir", s.dir, "seq", req.seq, "err", err)
	}
}

// PutBlock durably appends a sealed block for a channel (fabric.BlockBackend).
func (s *NodeStorage) PutBlock(channel string, b *fabric.Block) error {
	return s.blocks.Put(channel, b)
}

// PutBlockAsync enqueues a sealed block on the commit queue and returns
// its durability token (fabric.AsyncBlockBackend). The enqueue is lazy:
// under the decision-gated dissemination rule nothing waits for a block
// record, so it triggers no commit wave of its own and piggybacks on the
// wave the next decision triggers — in steady state, block persistence
// costs zero additional fsyncs. The queue's lazy flush timer bounds the
// wait when traffic stops.
func (s *NodeStorage) PutBlockAsync(channel string, b *fabric.Block) (fabric.DurableToken, error) {
	tok, err := s.blocks.PutAsyncLazy(channel, b)
	if err != nil {
		return nil, err
	}
	return tok, nil
}

// BlockHeight returns the number of blocks persisted for a channel.
func (s *NodeStorage) BlockHeight(channel string) uint64 {
	return s.blocks.Height(channel)
}

// ReadBlocks reads up to max persisted blocks of a channel back from disk,
// starting at block number start (fabric.BlockReader). Ledgers backed by a
// NodeStorage therefore keep only a bounded tail in memory and page older
// blocks in on demand. A start below the retention floor answers
// fabric.ErrPruned.
func (s *NodeStorage) ReadBlocks(channel string, start uint64, max int) ([]*fabric.Block, error) {
	return s.blocks.ReadBlocks(channel, start, max)
}

// BlockSpan locates a block's durable record on disk (segment file, byte
// offset, framed length). Fault injectors corrupt at rest through it.
func (s *NodeStorage) BlockSpan(channel string, num uint64) (path string, off, length int64, err error) {
	return s.blocks.BlockSpan(channel, num)
}

// RepairBlock overwrites a corrupt durable block record with a verified
// replacement fetched from peers (see BlockStore.RepairBlock).
func (s *NodeStorage) RepairBlock(channel string, b *fabric.Block) error {
	return s.blocks.RepairBlock(channel, b)
}

// BlockFloor returns a channel's retention floor: the first block number
// the store still serves.
func (s *NodeStorage) BlockFloor(channel string) uint64 {
	return s.blocks.Floor(channel)
}

// RetentionState reports the block store's retained windows and on-disk
// size (retention.Store).
func (s *NodeStorage) RetentionState() retention.State {
	return s.blocks.RetentionState()
}

// CompactTo snapshots and prunes the block store to the given per-channel
// floors (retention.Store). Reclamation is two-condition: a shared-log
// segment is deleted only when it is below every channel's new floor and
// behind the consensus checkpoint.
func (s *NodeStorage) CompactTo(floors map[string]uint64) (map[string]uint64, error) {
	return s.blocks.CompactTo(floors)
}

// RebaseBlocks jumps a channel's durable chain over a cluster-wide pruned
// gap (fabric.BlockRebaser).
func (s *NodeStorage) RebaseBlocks(channel string, floor uint64, anchor cryptoutil.Digest) error {
	return s.blocks.RebaseBlocks(channel, floor, anchor)
}

// BlockStoreBytes returns the unified log's on-disk size (blocks dominate
// it; the retention bytes trigger reads this).
func (s *NodeStorage) BlockStoreBytes() int64 { return s.blocks.SizeBytes() }

// Dir returns the storage root.
func (s *NodeStorage) Dir() string { return s.dir }

// Poisoned reports the shared log's permanent failure state: nil while
// healthy, the wrapped ErrLogPoisoned after a wave fsync failed. Once
// poisoned the log never recovers (fsyncgate semantics — the kernel
// dropped the dirty pages, so a retried fsync lying "ok" would lose
// acked data); callers observing it must stop acking and shut down.
func (s *NodeStorage) Poisoned() error { return s.wal.Poisoned() }

// Close flushes the pending checkpoint, flushes and closes the unified
// log, then stops the commit queue (the log drains itself through the
// queue first, so order matters).
func (s *NodeStorage) Close() error {
	var first error
	if s.ckptDone != nil {
		select {
		case <-s.ckptDone:
			// already closed
		default:
			close(s.ckptDone)
		}
		s.ckptWg.Wait()
	}
	if s.wal != nil {
		if err := s.wal.Close(); err != nil {
			first = err
		}
	}
	if s.queue != nil {
		if err := s.queue.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// decodeDecision decodes a typed decision record.
func decodeDecision(rec []byte) (DecidedEntry, error) {
	r := wire.NewReader(rec)
	if kind := r.Byte(); kind != recDecision {
		return DecidedEntry{}, fmt.Errorf("storage: decision record: unexpected kind 0x%02x", kind)
	}
	entry := DecidedEntry{
		Seq:   r.Int64(),
		Batch: r.BytesSlice(),
	}
	if err := r.Finish(); err != nil {
		return DecidedEntry{}, fmt.Errorf("storage: decision record: %w", err)
	}
	return entry, nil
}
