package storage

import (
	"fmt"
	"sync"
	"testing"
)

// Microbenchmarks for the durable hot path. Run with -benchmem (the
// benchmarks also force ReportAllocs) so the per-append allocation count
// is tracked: the commit buffer and encode-buffer pooling only stay won
// if these numbers don't regress.

// runWALAppendBench drives b.N appends through `appenders` concurrent
// goroutines, so the writer coalesces groups of roughly that size.
func runWALAppendBench(b *testing.B, appenders, recordSize int, noSync bool) {
	b.Helper()
	wal, err := OpenWAL(WALConfig{Dir: b.TempDir(), NoSync: noSync})
	if err != nil {
		b.Fatalf("OpenWAL: %v", err)
	}
	rec := make([]byte, recordSize)
	b.ReportAllocs()
	b.SetBytes(int64(recordSize))
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / appenders
	extra := b.N % appenders
	for g := 0; g < appenders; g++ {
		n := per
		if g < extra {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if _, err := wal.Append(rec); err != nil {
					b.Errorf("append: %v", err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	b.StopTimer()
	if err := wal.Close(); err != nil {
		b.Fatalf("close: %v", err)
	}
}

// BenchmarkWALAppendNoSync isolates the write path (frame assembly, index
// bookkeeping, buffered write) from the fsync, across group sizes.
func BenchmarkWALAppendNoSync(b *testing.B) {
	for _, g := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("appenders=%d", g), func(b *testing.B) {
			runWALAppendBench(b, g, 512, true)
		})
	}
}

// BenchmarkWALAppendFsync measures the full durable append across group
// sizes: larger groups amortize each fsync over more records.
func BenchmarkWALAppendFsync(b *testing.B) {
	for _, g := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("appenders=%d", g), func(b *testing.B) {
			runWALAppendBench(b, g, 512, false)
		})
	}
}

// BenchmarkSharedQueueAppend drives two logs through one shared commit
// queue (the NodeStorage arrangement: decision WAL + block WAL on one
// device) with appenders split across both, measuring the joint fsync
// wave the scheduler is for.
func BenchmarkSharedQueueAppend(b *testing.B) {
	for _, g := range []int{2, 8, 64} {
		b.Run(fmt.Sprintf("appenders=%d", g), func(b *testing.B) {
			queue := NewCommitQueue(CommitQueueConfig{})
			open := func(dir string) *WAL {
				w, err := OpenWAL(WALConfig{Dir: dir, Queue: queue})
				if err != nil {
					b.Fatalf("OpenWAL: %v", err)
				}
				return w
			}
			logs := []*WAL{open(b.TempDir()), open(b.TempDir())}
			rec := make([]byte, 512)
			b.ReportAllocs()
			b.SetBytes(512)
			b.ResetTimer()
			var wg sync.WaitGroup
			for g2 := 0; g2 < g; g2++ {
				n := b.N / g
				if g2 < b.N%g {
					n++
				}
				wal := logs[g2%len(logs)]
				wg.Add(1)
				go func(wal *WAL, n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if _, err := wal.Append(rec); err != nil {
							b.Errorf("append: %v", err)
							return
						}
					}
				}(wal, n)
			}
			wg.Wait()
			b.StopTimer()
			for _, wal := range logs {
				if err := wal.Close(); err != nil {
					b.Fatalf("close: %v", err)
				}
			}
			queue.Close()
		})
	}
}

// BenchmarkWALAppendAsync measures the enqueue path the consensus loop
// pays under asynchronous decision logging: the token handoff must stay
// cheap because it runs on the event loop.
func BenchmarkWALAppendAsync(b *testing.B) {
	wal, err := OpenWAL(WALConfig{Dir: b.TempDir()})
	if err != nil {
		b.Fatalf("OpenWAL: %v", err)
	}
	rec := make([]byte, 512)
	b.ReportAllocs()
	b.ResetTimer()
	var last *Token
	for i := 0; i < b.N; i++ {
		tok, err := wal.AppendAsync(rec)
		if err != nil {
			b.Fatalf("append async: %v", err)
		}
		last = tok
	}
	if err := last.Wait(); err != nil {
		b.Fatalf("final token: %v", err)
	}
	b.StopTimer()
	if err := wal.Close(); err != nil {
		b.Fatalf("close: %v", err)
	}
}
