package storage

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cryptoutil"
	"repro/internal/fabric"
)

// Microbenchmarks for the durable hot path. Run with -benchmem (the
// benchmarks also force ReportAllocs) so the per-append allocation count
// is tracked: the commit buffer and encode-buffer pooling only stay won
// if these numbers don't regress.

// runWALAppendBench drives b.N appends through `appenders` concurrent
// goroutines, so the writer coalesces groups of roughly that size.
func runWALAppendBench(b *testing.B, appenders, recordSize int, noSync bool) {
	b.Helper()
	wal, err := OpenWAL(WALConfig{Dir: b.TempDir(), NoSync: noSync})
	if err != nil {
		b.Fatalf("OpenWAL: %v", err)
	}
	rec := make([]byte, recordSize)
	b.ReportAllocs()
	b.SetBytes(int64(recordSize))
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / appenders
	extra := b.N % appenders
	for g := 0; g < appenders; g++ {
		n := per
		if g < extra {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if _, err := wal.Append(rec); err != nil {
					b.Errorf("append: %v", err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	b.StopTimer()
	if err := wal.Close(); err != nil {
		b.Fatalf("close: %v", err)
	}
}

// BenchmarkWALAppendNoSync isolates the write path (frame assembly, index
// bookkeeping, buffered write) from the fsync, across group sizes.
func BenchmarkWALAppendNoSync(b *testing.B) {
	for _, g := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("appenders=%d", g), func(b *testing.B) {
			runWALAppendBench(b, g, 512, true)
		})
	}
}

// BenchmarkWALAppendFsync measures the full durable append across group
// sizes: larger groups amortize each fsync over more records.
func BenchmarkWALAppendFsync(b *testing.B) {
	for _, g := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("appenders=%d", g), func(b *testing.B) {
			runWALAppendBench(b, g, 512, false)
		})
	}
}

// BenchmarkUnifiedLogAppend drives mixed record kinds through the ONE
// log + commit queue a NodeStorage runs on (decision and block records
// multiplexed into shared segments), with appenders split across both
// kinds, measuring the single-fsync wave the unified log is for.
func BenchmarkUnifiedLogAppend(b *testing.B) {
	for _, g := range []int{2, 8, 64} {
		b.Run(fmt.Sprintf("appenders=%d", g), func(b *testing.B) {
			queue := NewCommitQueue(CommitQueueConfig{})
			wal, err := OpenWAL(WALConfig{Dir: b.TempDir(), Queue: queue})
			if err != nil {
				b.Fatalf("OpenWAL: %v", err)
			}
			decRec := append([]byte{recDecision}, make([]byte, 511)...)
			blkRec := append([]byte{recBlock}, make([]byte, 511)...)
			b.ReportAllocs()
			b.SetBytes(512)
			b.ResetTimer()
			var wg sync.WaitGroup
			for g2 := 0; g2 < g; g2++ {
				n := b.N / g
				if g2 < b.N%g {
					n++
				}
				rec := decRec
				if g2%2 == 1 {
					rec = blkRec
				}
				wg.Add(1)
				go func(rec []byte, n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if _, err := wal.Append(rec); err != nil {
							b.Errorf("append: %v", err)
							return
						}
					}
				}(rec, n)
			}
			wg.Wait()
			b.StopTimer()
			if err := wal.Close(); err != nil {
				b.Fatalf("close: %v", err)
			}
			queue.Close()
		})
	}
}

// BenchmarkBlockPutAsync measures the block-record enqueue path of the
// unified log end to end (encode into a pooled buffer, height/index
// bookkeeping, queue handoff) — the per-put allocations this path used
// to pay for Block.Marshal are what MarshalInto removed; ReportAllocs
// keeps that won.
func BenchmarkBlockPutAsync(b *testing.B) {
	store, err := OpenBlockStore(WALConfig{Dir: b.TempDir(), SegmentBytes: 64 << 20})
	if err != nil {
		b.Fatalf("OpenBlockStore: %v", err)
	}
	store.Chains()
	// A realistic small block: 10 envelopes of 64 bytes.
	envs := make([][]byte, 10)
	for i := range envs {
		envs[i] = make([]byte, 64)
	}
	blocks := make([]*fabric.Block, b.N)
	var prev cryptoutil.Digest
	for i := range blocks {
		blocks[i] = fabric.NewBlock(uint64(i), prev, envs)
		prev = blocks[i].Header.Hash()
	}
	b.ReportAllocs()
	b.ResetTimer()
	var last *Token
	for i := 0; i < b.N; i++ {
		tok, err := store.PutAsync("bench", blocks[i])
		if err != nil {
			b.Fatalf("put async: %v", err)
		}
		last = tok
	}
	if last != nil {
		if err := last.Wait(); err != nil {
			b.Fatalf("final token: %v", err)
		}
	}
	b.StopTimer()
	if err := store.Close(); err != nil {
		b.Fatalf("close: %v", err)
	}
}

// BenchmarkWALAppendAsync measures the enqueue path the consensus loop
// pays under asynchronous decision logging: the token handoff must stay
// cheap because it runs on the event loop.
func BenchmarkWALAppendAsync(b *testing.B) {
	wal, err := OpenWAL(WALConfig{Dir: b.TempDir()})
	if err != nil {
		b.Fatalf("OpenWAL: %v", err)
	}
	rec := make([]byte, 512)
	b.ReportAllocs()
	b.ResetTimer()
	var last *Token
	for i := 0; i < b.N; i++ {
		tok, err := wal.AppendAsync(rec)
		if err != nil {
			b.Fatalf("append async: %v", err)
		}
		last = tok
	}
	if err := last.Wait(); err != nil {
		b.Fatalf("final token: %v", err)
	}
	b.StopTimer()
	if err := wal.Close(); err != nil {
		b.Fatalf("close: %v", err)
	}
}
