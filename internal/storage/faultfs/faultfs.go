// Package faultfs is a fault-injecting vfs.FS for disk-fault testing: it
// wraps a real filesystem and, when armed, injects the disk's failure
// modes under the storage stack — seeded bit-rot in written bytes,
// torn/short writes, one-shot and sticky fsync errors, ENOSPC, and
// per-operation latency. It also models the fsyncgate semantics that make
// fsync fail-fast necessary: in crashable mode, writes land in an
// in-memory "page cache" overlay and only reach the disk on a successful
// sync — an injected sync failure DISCARDS the dirty pages (as the kernel
// does after a failed fsync), so a caller that retries or ignores the
// error and acks the write has genuinely lost data across a crash.
//
// A freshly constructed FS is a pure passthrough until a fault is armed,
// so a test harness can thread one under every node and arm faults
// mid-run. All arming methods and injected faults are safe for
// concurrent use.
package faultfs

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"syscall"
	"time"

	"repro/internal/storage/vfs"
)

// Injected fault errors. ErrInjectedSync deliberately does NOT wrap
// syscall.EIO: tests assert the exact injected cause.
var (
	ErrInjectedSync = errors.New("faultfs: injected fsync failure")
	ErrInjectedTorn = errors.New("faultfs: injected torn write")
)

// Stats counts injected faults (and total writes, for rate context).
type Stats struct {
	Writes       uint64
	BitRot       uint64
	TornWrites   uint64
	SyncFailures uint64
	ENOSPC       uint64
}

// FS is the fault-injecting filesystem. Zero faults armed = passthrough.
type FS struct {
	under vfs.FS

	mu  sync.Mutex
	rng *rand.Rand

	match func(string) bool // nil matches every file

	bitRotEvery  int   // flip one byte in every Nth matching write (0 = off)
	writeN       int   // matching writes seen (drives bitRotEvery)
	tornNext     int   // next N matching writes are torn short
	syncFailNext int   // next N syncs on matching files fail
	syncSticky   bool  // every sync on matching files fails
	spaceLeft    int64 // bytes writable before ENOSPC (-1 = unlimited)
	opDelay      time.Duration
	crashable    bool // buffer writes until a successful sync

	files map[*file]struct{} // open files, for DropDirty
	stats Stats
}

// New wraps under (nil = the real OS filesystem) with a fault layer
// seeded for deterministic injection.
func New(under vfs.FS, seed int64) *FS {
	return &FS{
		under:     vfs.OrOS(under),
		rng:       rand.New(rand.NewSource(seed)),
		spaceLeft: -1,
		files:     make(map[*file]struct{}),
	}
}

// SetPathFilter restricts fault injection to files whose path matches
// (nil = every file). Filesystem-level operations on non-matching files
// pass through untouched.
func (fs *FS) SetPathFilter(match func(path string) bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.match = match
}

// FailSyncs arms the next n syncs (Sync or Datasync) on matching files to
// fail with ErrInjectedSync.
func (fs *FS) FailSyncs(n int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.syncFailNext = n
}

// FailSyncsSticky makes every subsequent sync on matching files fail —
// the dead-disk mode.
func (fs *FS) FailSyncsSticky(on bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.syncSticky = on
}

// SetBitRotEvery flips one seeded byte in every nth matching write
// (0 disables).
func (fs *FS) SetBitRotEvery(n int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.bitRotEvery = n
}

// SetTornWrites makes the next n matching writes land only a prefix
// (roughly half) of the buffer, failing with ErrInjectedTorn.
func (fs *FS) SetTornWrites(n int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.tornNext = n
}

// SetENOSPCAfter allows budget more written bytes before every matching
// write fails with ENOSPC (-1 removes the budget).
func (fs *FS) SetENOSPCAfter(budget int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.spaceLeft = budget
}

// SetOpDelay injects d of latency into every matching file operation.
func (fs *FS) SetOpDelay(d time.Duration) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.opDelay = d
}

// SetCrashable switches matching files to page-cache semantics: writes
// are buffered in memory and only reach the underlying file on a
// successful sync; an injected sync failure discards the buffered pages.
// DropDirty simulates the crash that makes the loss observable.
func (fs *FS) SetCrashable(on bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashable = on
}

// DropDirty discards every open file's unsynced buffered writes — the
// crash, from the page cache's point of view.
func (fs *FS) DropDirty() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for f := range fs.files {
		f.mu.Lock()
		f.dirty = nil
		f.mu.Unlock()
	}
}

// Stats returns a snapshot of the injected-fault counters.
func (fs *FS) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

func (fs *FS) matches(path string) bool {
	return fs.match == nil || fs.match(path)
}

func (fs *FS) delay(path string) {
	fs.mu.Lock()
	d := fs.opDelay
	on := fs.matches(path)
	fs.mu.Unlock()
	if on && d > 0 {
		time.Sleep(d)
	}
}

// prepWrite applies the write-side faults to buf and returns the possibly
// mutated buffer, how many bytes to actually hand to the file, and the
// error to report after the short write (nil for a full clean write).
func (fs *FS) prepWrite(path string, buf []byte) ([]byte, int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !fs.matches(path) {
		return buf, len(buf), nil
	}
	fs.stats.Writes++
	if fs.spaceLeft >= 0 {
		if fs.spaceLeft < int64(len(buf)) {
			fs.stats.ENOSPC++
			n := int(fs.spaceLeft)
			fs.spaceLeft = 0
			return buf, n, fmt.Errorf("faultfs: %w", syscall.ENOSPC)
		}
		fs.spaceLeft -= int64(len(buf))
	}
	if fs.tornNext > 0 && len(buf) > 1 {
		fs.tornNext--
		fs.stats.TornWrites++
		return buf, len(buf) / 2, ErrInjectedTorn
	}
	if fs.bitRotEvery > 0 && len(buf) > 0 {
		fs.writeN++
		if fs.writeN%fs.bitRotEvery == 0 {
			rotted := make([]byte, len(buf))
			copy(rotted, buf)
			rotted[fs.rng.Intn(len(rotted))] ^= 1 << uint(fs.rng.Intn(8))
			fs.stats.BitRot++
			return rotted, len(rotted), nil
		}
	}
	return buf, len(buf), nil
}

// syncFault reports whether this sync should fail (consuming a one-shot
// arming), discarding crashable dirty state when it does.
func (fs *FS) syncFault(f *file) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !fs.matches(f.name) {
		return nil
	}
	if fs.syncSticky || fs.syncFailNext > 0 {
		if fs.syncFailNext > 0 {
			fs.syncFailNext--
		}
		fs.stats.SyncFailures++
		// The kernel drops the dirty pages after a failed fsync; a later
		// retry reports success without the data ever reaching the disk.
		f.mu.Lock()
		f.dirty = nil
		f.mu.Unlock()
		return ErrInjectedSync
	}
	return nil
}

func (fs *FS) isCrashable(path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashable && fs.matches(path)
}

// --- vfs.FS implementation ---

func (fs *FS) OpenFile(name string, flag int, perm os.FileMode) (vfs.File, error) {
	fs.delay(name)
	u, err := fs.under.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	f := &file{fs: fs, under: u, name: name}
	fs.mu.Lock()
	fs.files[f] = struct{}{}
	fs.mu.Unlock()
	return f, nil
}

func (fs *FS) Open(name string) (vfs.File, error) {
	fs.delay(name)
	u, err := fs.under.Open(name)
	if err != nil {
		return nil, err
	}
	f := &file{fs: fs, under: u, name: name}
	fs.mu.Lock()
	fs.files[f] = struct{}{}
	fs.mu.Unlock()
	return f, nil
}

func (fs *FS) ReadFile(name string) ([]byte, error) {
	fs.delay(name)
	return fs.under.ReadFile(name)
}

func (fs *FS) ReadDir(name string) ([]os.DirEntry, error)   { return fs.under.ReadDir(name) }
func (fs *FS) MkdirAll(path string, perm os.FileMode) error { return fs.under.MkdirAll(path, perm) }

func (fs *FS) Remove(name string) error {
	fs.delay(name)
	return fs.under.Remove(name)
}

func (fs *FS) Rename(oldpath, newpath string) error {
	fs.delay(newpath)
	return fs.under.Rename(oldpath, newpath)
}

func (fs *FS) Truncate(name string, size int64) error {
	fs.delay(name)
	return fs.under.Truncate(name, size)
}

func (fs *FS) SyncDir(dir string) error {
	fs.delay(dir)
	fs.mu.Lock()
	fail := fs.matches(dir) && (fs.syncSticky || fs.syncFailNext > 0)
	if fail && fs.syncFailNext > 0 {
		fs.syncFailNext--
	}
	if fail {
		fs.stats.SyncFailures++
	}
	fs.mu.Unlock()
	if fail {
		return ErrInjectedSync
	}
	return fs.under.SyncDir(dir)
}

// --- file ---

// dirtyRange is one buffered (unsynced) write in crashable mode.
type dirtyRange struct {
	off int64
	buf []byte
}

type file struct {
	fs    *FS
	under vfs.File
	name  string

	mu    sync.Mutex
	wpos  int64        // sequential-Write position (crashable mode)
	dirty []dirtyRange // buffered writes awaiting a successful sync
}

func (f *file) WriteAt(p []byte, off int64) (int, error) {
	f.fs.delay(f.name)
	buf, n, ferr := f.fs.prepWrite(f.name, p)
	if f.fs.isCrashable(f.name) {
		f.mu.Lock()
		cp := make([]byte, n)
		copy(cp, buf[:n])
		f.dirty = append(f.dirty, dirtyRange{off: off, buf: cp})
		f.mu.Unlock()
		if ferr != nil {
			return n, ferr
		}
		return len(p), nil
	}
	wn, err := f.under.WriteAt(buf[:n], off)
	if err != nil {
		return wn, err
	}
	if ferr != nil {
		return wn, ferr
	}
	return len(p), nil
}

func (f *file) Write(p []byte) (int, error) {
	if f.fs.isCrashable(f.name) {
		f.mu.Lock()
		off := f.wpos
		f.mu.Unlock()
		n, err := f.WriteAt(p, off)
		f.mu.Lock()
		f.wpos = off + int64(n)
		f.mu.Unlock()
		return n, err
	}
	f.fs.delay(f.name)
	buf, n, ferr := f.fs.prepWrite(f.name, p)
	wn, err := f.under.Write(buf[:n])
	if err != nil {
		return wn, err
	}
	if ferr != nil {
		return wn, ferr
	}
	return len(p), nil
}

func (f *file) ReadAt(p []byte, off int64) (int, error) {
	f.fs.delay(f.name)
	n, err := f.under.ReadAt(p, off)
	// Crashable dirty ranges are visible to readers before the sync, as
	// the page cache's would be.
	f.mu.Lock()
	for _, d := range f.dirty {
		lo := max64(off, d.off)
		hi := min64(off+int64(len(p)), d.off+int64(len(d.buf)))
		if lo < hi {
			copy(p[lo-off:hi-off], d.buf[lo-d.off:hi-d.off])
			if hi-off > int64(n) {
				n = int(hi - off)
				err = nil
			}
		}
	}
	f.mu.Unlock()
	return n, err
}

func (f *file) Read(p []byte) (int, error) { return f.under.Read(p) }

func (f *file) sync(full bool) error {
	f.fs.delay(f.name)
	if err := f.fs.syncFault(f); err != nil {
		return err
	}
	// Flush the page cache to the real file before syncing it.
	f.mu.Lock()
	dirty := f.dirty
	f.dirty = nil
	f.mu.Unlock()
	for _, d := range dirty {
		if _, err := f.under.WriteAt(d.buf, d.off); err != nil {
			return err
		}
	}
	if full {
		return f.under.Sync()
	}
	return f.under.Datasync()
}

func (f *file) Sync() error     { return f.sync(true) }
func (f *file) Datasync() error { return f.sync(false) }

func (f *file) Truncate(size int64) error {
	f.fs.delay(f.name)
	return f.under.Truncate(size)
}

func (f *file) Stat() (os.FileInfo, error)    { return f.under.Stat() }
func (f *file) Preallocate(size int64) error  { return f.under.Preallocate(size) }
func (f *file) Name() string                  { return f.name }

func (f *file) Close() error {
	// Unsynced dirty pages die with the close — closing does not flush
	// the faultfs page cache, exactly like a crash before the fsync.
	f.fs.mu.Lock()
	delete(f.fs.files, f)
	f.fs.mu.Unlock()
	return f.under.Close()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
