package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func writeNew(t *testing.T, fs *FS, path string, data []byte) error {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Sync()
}

func TestPassthroughUntilArmed(t *testing.T) {
	fs := New(nil, 1)
	path := filepath.Join(t.TempDir(), "clean")
	if err := writeNew(t, fs, path, []byte("hello")); err != nil {
		t.Fatalf("clean write: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if st := fs.Stats(); st.BitRot+st.TornWrites+st.SyncFailures+st.ENOSPC != 0 {
		t.Fatalf("unarmed fs injected faults: %+v", st)
	}
}

func TestBitRotFlipsOneByte(t *testing.T) {
	fs := New(nil, 7)
	fs.SetBitRotEvery(1)
	path := filepath.Join(t.TempDir(), "rot")
	data := make([]byte, 256)
	if err := writeNew(t, fs, path, data); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	diff := 0
	for i := range got {
		if got[i] != data[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("bit-rot changed %d bytes, want exactly 1", diff)
	}
	if st := fs.Stats(); st.BitRot != 1 {
		t.Fatalf("stats %+v, want 1 bit-rot", st)
	}
}

func TestTornWriteLandsPrefix(t *testing.T) {
	fs := New(nil, 1)
	fs.SetTornWrites(1)
	path := filepath.Join(t.TempDir(), "torn")
	err := writeNew(t, fs, path, make([]byte, 100))
	if !errors.Is(err, ErrInjectedTorn) {
		t.Fatalf("torn write error = %v, want ErrInjectedTorn", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if info.Size() != 50 {
		t.Fatalf("torn write landed %d bytes, want the 50-byte prefix", info.Size())
	}
	// One-shot: the next write is whole.
	if err := writeNew(t, fs, path, make([]byte, 100)); err != nil {
		t.Fatalf("write after torn: %v", err)
	}
}

func TestENOSPCBudget(t *testing.T) {
	fs := New(nil, 1)
	fs.SetENOSPCAfter(10)
	path := filepath.Join(t.TempDir(), "full")
	if err := writeNew(t, fs, path, make([]byte, 8)); err != nil {
		t.Fatalf("write within budget: %v", err)
	}
	err := writeNew(t, fs, filepath.Join(filepath.Dir(path), "overflow"), make([]byte, 8))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write past budget = %v, want ENOSPC", err)
	}
	fs.SetENOSPCAfter(-1)
	if err := writeNew(t, fs, path, make([]byte, 64)); err != nil {
		t.Fatalf("write after budget removed: %v", err)
	}
}

func TestSyncFailuresOneShotAndSticky(t *testing.T) {
	fs := New(nil, 1)
	path := filepath.Join(t.TempDir(), "sync")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()

	fs.FailSyncs(1)
	if err := f.Sync(); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("armed sync = %v, want ErrInjectedSync", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after one-shot consumed: %v", err)
	}

	fs.FailSyncsSticky(true)
	for i := 0; i < 3; i++ {
		if err := f.Sync(); !errors.Is(err, ErrInjectedSync) {
			t.Fatalf("sticky sync %d = %v, want ErrInjectedSync", i, err)
		}
	}
	fs.FailSyncsSticky(false)
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after sticky cleared: %v", err)
	}
	if st := fs.Stats(); st.SyncFailures != 4 {
		t.Fatalf("stats %+v, want 4 sync failures", st)
	}
}

func TestPathFilterScopesFaults(t *testing.T) {
	fs := New(nil, 1)
	fs.SetPathFilter(func(p string) bool { return filepath.Ext(p) == ".seg" })
	fs.FailSyncsSticky(true)
	dir := t.TempDir()
	if err := writeNew(t, fs, filepath.Join(dir, "meta.json"), []byte("x")); err != nil {
		t.Fatalf("non-matching file caught the fault: %v", err)
	}
	err := writeNew(t, fs, filepath.Join(dir, "001.seg"), []byte("x"))
	if !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("matching file escaped the fault: %v", err)
	}
}

// TestCrashableFsyncGateSemantics is the fsyncgate model: buffered writes
// are visible to readers (the page cache), a successful sync makes them
// durable, but a FAILED sync discards them — so a later successful sync
// cannot resurrect them, and a crash (DropDirty) reveals the loss.
func TestCrashableFsyncGateSemantics(t *testing.T) {
	fs := New(nil, 1)
	fs.SetCrashable(true)
	path := filepath.Join(t.TempDir(), "cache")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()

	if _, err := f.Write([]byte("first")); err != nil {
		t.Fatalf("buffered write: %v", err)
	}
	// Visible through the handle (page cache), not yet on disk.
	buf := make([]byte, 5)
	if n, _ := f.ReadAt(buf, 0); n != 5 || string(buf) != "first" {
		t.Fatalf("buffered read %q (%d bytes), want \"first\"", buf[:n], n)
	}
	if raw, _ := os.ReadFile(path); len(raw) != 0 {
		t.Fatalf("unsynced write reached the disk: %q", raw)
	}

	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if raw, _ := os.ReadFile(path); string(raw) != "first" {
		t.Fatalf("synced write not on disk: %q", raw)
	}

	// A failed sync DISCARDS the dirty pages: the write is gone even
	// though a later sync succeeds.
	if _, err := f.Write([]byte("gone!")); err != nil {
		t.Fatalf("second write: %v", err)
	}
	fs.FailSyncs(1)
	if err := f.Sync(); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("failed sync = %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("retried sync: %v", err)
	}
	if raw, _ := os.ReadFile(path); string(raw) != "first" {
		t.Fatalf("disk holds %q after failed-then-retried sync, want only \"first\" (retry must not resurrect dropped pages)", raw)
	}

	// And a crash drops whatever was dirty at the time.
	if _, err := f.Write([]byte("dirty")); err != nil {
		t.Fatalf("third write: %v", err)
	}
	fs.DropDirty()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after crash: %v", err)
	}
	if raw, _ := os.ReadFile(path); string(raw) != "first" {
		t.Fatalf("disk holds %q after crash, want only \"first\"", raw)
	}
}
