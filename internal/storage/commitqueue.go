package storage

import (
	"fmt"
	"os"
	"sync"
	"time"
)

// This file is the shared group-commit fsync scheduler. A node's durable
// state is two append-only logs on the same device — the decision WAL and
// the block-store WAL — and with a writer per log each pays its own fsync:
// a decided batch and the block it seals cost two device flushes back to
// back. The CommitQueue replaces the per-log writers with one scheduler
// that drains pending appends from every registered log, writes each log's
// group, and then fsyncs all dirty logs in one parallel wave, so the two
// flushes overlap instead of serializing and every append queued behind
// them rides the same wave. Appenders are completed through per-record
// durability Tokens, which is what lets callers enqueue (AppendAsync) and
// gate later effects on durability instead of blocking for the fsync.

// Token tracks one enqueued record's durability: it completes when the
// group commit that carried the record has fsynced (or failed). Tokens are
// how the write-ahead discipline survives asynchronous logging — the
// consensus loop enqueues a decision and moves on, and everything
// externally visible (block persist, dissemination) waits on the token.
type Token struct {
	done chan struct{}
	err  error
	idx  uint64
}

func newToken() *Token { return &Token{done: make(chan struct{})} }

// doneToken returns an already-completed token (for records that were
// already durable, e.g. replay duplicates).
func doneToken(err error) *Token {
	t := newToken()
	t.err = err
	close(t.done)
	return t
}

// Wait blocks until the record is durable and returns the commit error,
// if any.
func (t *Token) Wait() error {
	<-t.done
	return t.err
}

// Done reports whether the record's group commit has completed, without
// blocking.
func (t *Token) Done() bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

// Index returns the record's log index. Valid only after Wait returned
// nil (indices are assigned at write time, not enqueue time).
func (t *Token) Index() uint64 { return t.idx }

// CommitQueueConfig tunes the shared scheduler.
type CommitQueueConfig struct {
	// MaxDelay is the coalescing window: after waking for the first
	// pending append, the scheduler waits this long before starting the
	// wave, letting more appends (from either log) pile in. Zero commits
	// greedily — under concurrent load the natural arrival rate already
	// batches well, so the delay only helps thin workloads trade latency
	// for fewer fsyncs.
	MaxDelay time.Duration
	// MaxBatch caps how many records of one log merge into a single
	// wave (default 1024); the surplus carries into the next wave.
	MaxBatch int
	// SyncHook, when set, runs at the start of every commit wave, before
	// any record of the wave is written. Test instrumentation: stalling
	// it holds every enqueued record in the not-yet-durable state, which
	// is how the write-ahead gating and crash-window tests open the
	// window between enqueue and fsync.
	SyncHook func()
}

func (c CommitQueueConfig) withDefaults() CommitQueueConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	return c
}

// CommitQueue coalesces appends from any number of WALs into shared fsync
// waves. Create with NewCommitQueue, hand it to the WALs via
// WALConfig.Queue, and Close it only after every participating WAL is
// closed.
type CommitQueue struct {
	cfg CommitQueueConfig

	mu      sync.Mutex
	pending map[*WAL][]*appendReq
	order   []*WAL // logs with pending work, oldest first
	closed  bool

	notify chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup
}

// NewCommitQueue starts a shared group-commit scheduler.
func NewCommitQueue(cfg CommitQueueConfig) *CommitQueue {
	q := &CommitQueue{
		cfg:     cfg.withDefaults(),
		pending: make(map[*WAL][]*appendReq),
		notify:  make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	q.wg.Add(1)
	go q.run()
	return q
}

// enqueue adds one append (or a nil-record flush barrier) to a log's
// pending group. FIFO per log is the ordering contract the decision log's
// dense indices and the block store's recovery both rely on.
func (q *CommitQueue) enqueue(w *WAL, req *appendReq) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		completeGroup([]*appendReq{req}, ErrClosed)
		return
	}
	if len(q.pending[w]) == 0 {
		q.order = append(q.order, w)
	}
	q.pending[w] = append(q.pending[w], req)
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

func (q *CommitQueue) run() {
	defer q.wg.Done()
	for {
		select {
		case <-q.notify:
		case <-q.done:
			// Close happens only after every participating WAL closed
			// (each flushes itself with a barrier), so whatever remains
			// is the final wave.
			q.wave()
			return
		}
		if q.cfg.MaxDelay > 0 {
			timer := time.NewTimer(q.cfg.MaxDelay)
			select {
			case <-timer.C:
			case <-q.done:
				timer.Stop()
			}
		}
		q.wave()
	}
}

// wave is one shared group commit: take every log's pending group, write
// them all, fsync the dirty logs in parallel, then complete the tokens.
func (q *CommitQueue) wave() {
	q.mu.Lock()
	if len(q.order) == 0 {
		q.mu.Unlock()
		return
	}
	logs := q.order
	groups := make([][]*appendReq, len(logs))
	q.order = nil
	leftovers := false
	for i, w := range logs {
		reqs := q.pending[w]
		if len(reqs) > q.cfg.MaxBatch {
			groups[i] = reqs[:q.cfg.MaxBatch]
			q.pending[w] = reqs[q.cfg.MaxBatch:]
			q.order = append(q.order, w)
			leftovers = true
		} else {
			groups[i] = reqs
			delete(q.pending, w)
		}
	}
	q.mu.Unlock()
	if leftovers {
		select {
		case q.notify <- struct{}{}:
		default:
		}
	}

	if hook := q.cfg.SyncHook; hook != nil {
		hook()
	}

	// Write phase: frames land in each log's active segment (page cache
	// only). Indices are assigned here, in enqueue order.
	type flush struct {
		file *os.File
		err  error
	}
	flushes := make([]flush, len(logs))
	for i, w := range logs {
		flushes[i].file, flushes[i].err = w.writeGroup(groups[i])
	}

	// Sync phase: one fsync per dirty log, issued concurrently so flushes
	// of co-located logs overlap in the device instead of queueing behind
	// each other. The last dirty log syncs on this goroutine — a
	// single-log wave (the common idle-channel case) spawns nothing.
	var dirty []int
	for i := range flushes {
		if flushes[i].err == nil && flushes[i].file != nil {
			dirty = append(dirty, i)
		}
	}
	var syncers sync.WaitGroup
	syncOne := func(i int) {
		if err := flushes[i].file.Sync(); err != nil {
			flushes[i].err = err
			logs[i].poison(err)
		}
	}
	for _, i := range dirty[:max(len(dirty)-1, 0)] {
		syncers.Add(1)
		go func(i int) {
			defer syncers.Done()
			syncOne(i)
		}(i)
	}
	if len(dirty) > 0 {
		syncOne(dirty[len(dirty)-1])
	}
	syncers.Wait()

	for i := range logs {
		if err := flushes[i].err; err != nil {
			fmt.Fprintf(os.Stderr, "storage: commit wave failed for %s: %v\n", logs[i].cfg.Dir, err)
		}
		completeGroup(groups[i], flushes[i].err)
	}
}

// Close stops the scheduler after a final drain wave. Call it only after
// every WAL registered on the queue has been closed.
func (q *CommitQueue) Close() error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	q.mu.Unlock()
	close(q.done)
	q.wg.Wait()
	return nil
}

// completeGroup finishes every request of one committed group: record the
// error, run per-record commit callbacks (in log order), and release the
// waiters.
func completeGroup(group []*appendReq, err error) {
	for _, req := range group {
		req.tok.err = err
		if req.onCommit != nil {
			req.onCommit(req.tok.idx, err)
		}
		close(req.tok.done)
	}
}
