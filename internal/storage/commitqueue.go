package storage

import (
	"log/slog"
	"sync"
	"time"

	"repro/internal/obs"
)

// This file is the group-commit scheduler of the unified commit log. A
// node's durable state is ONE append-only log — decision, block, and
// channel-meta records multiplexed into the same segment files — so a
// commit wave is: drain everything pending, write the group into the
// active segment, and issue exactly one fsync. (Earlier revisions kept
// the decision log and the block store in separate physical WALs and the
// queue fsynced each dirty log per wave; merging the logs halves the
// dominant durability cost — a decided batch and the block it seals now
// share a single device flush.) Appenders are completed through
// per-record durability Tokens, which is what lets callers enqueue
// (AppendAsync) and gate later effects on durability instead of blocking
// for the fsync.

// Token tracks one enqueued record's durability: it completes when the
// group commit that carried the record has fsynced (or failed). Tokens are
// how the write-ahead discipline survives asynchronous logging — the
// consensus loop enqueues a decision and moves on, and everything
// externally visible (dissemination, client acks) waits on the token.
type Token struct {
	done chan struct{}
	err  error
	idx  uint64
}

func newToken() *Token { return &Token{done: make(chan struct{})} }

// doneToken returns an already-completed token (for records that were
// already durable, e.g. replay duplicates).
func doneToken(err error) *Token {
	t := newToken()
	t.err = err
	close(t.done)
	return t
}

// Wait blocks until the record is durable and returns the commit error,
// if any.
func (t *Token) Wait() error {
	<-t.done
	return t.err
}

// Done reports whether the record's group commit has completed, without
// blocking.
func (t *Token) Done() bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

// Index returns the record's log index. Valid only after Wait returned
// nil (indices are assigned at write time, not enqueue time).
func (t *Token) Index() uint64 { return t.idx }

// CommitQueueConfig tunes the scheduler.
type CommitQueueConfig struct {
	// MaxDelay is the coalescing window: after waking for the first
	// pending append, the scheduler waits this long before starting the
	// wave, letting more appends (decisions and blocks alike) pile in.
	// Zero commits greedily — under concurrent load the natural arrival
	// rate already batches well, so the delay only helps thin workloads
	// trade latency for fewer fsyncs.
	MaxDelay time.Duration
	// MaxBatch caps how many records merge into a single wave (default
	// 1024); the surplus carries into the next wave.
	MaxBatch int
	// LazyDelay bounds how long a lazily enqueued record (a block put —
	// nothing gates on its durability, the decision gate is the only one
	// the protocol requires) may sit before a wave is forced for it
	// (default 5ms). Lazy records normally ride the next wave an eager
	// record triggers, for free; the timer only matters when traffic
	// stops.
	LazyDelay time.Duration
	// SyncHook, when set, runs at the start of every commit wave, before
	// any record of the wave is written. Test instrumentation: stalling
	// it holds every enqueued record in the not-yet-durable state, which
	// is how the write-ahead gating and crash-window tests open the
	// window between enqueue and fsync.
	SyncHook func()
	// Metrics, when set, receives wave-level instrumentation (wave count,
	// wave size, failures).
	Metrics *obs.StorageMetrics
}

func (c CommitQueueConfig) withDefaults() CommitQueueConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.LazyDelay <= 0 {
		c.LazyDelay = 5 * time.Millisecond
	}
	c.Metrics = c.Metrics.OrNop()
	return c
}

// CommitQueue coalesces appends to one WAL into group-commit waves of a
// single fsync each. Create with NewCommitQueue, hand it to the WAL via
// WALConfig.Queue, and Close it only after the WAL is closed. Exactly one
// log may attach: multiplexing record kinds into one physical log (rather
// than fanning out to parallel logs) is what caps the wave at one flush.
type CommitQueue struct {
	cfg CommitQueueConfig

	mu      sync.Mutex
	log     *WAL // the attached log; set on first enqueue
	pending []*appendReq
	closed  bool
	// lazyArmed tracks the flush timer for lazily enqueued records: armed
	// on the first lazy enqueue after a wave, cleared when a wave takes
	// the group. A spurious fire (wave already ran) is a harmless empty
	// notify.
	lazyArmed bool

	notify chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup
}

// NewCommitQueue starts a group-commit scheduler.
func NewCommitQueue(cfg CommitQueueConfig) *CommitQueue {
	q := &CommitQueue{
		cfg:    cfg.withDefaults(),
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	q.wg.Add(1)
	go q.run()
	return q
}

// enqueue adds one append (or a nil-record flush barrier) to the pending
// group. FIFO is the ordering contract recovery relies on: decision
// records stay dense in sequence order and block records replay in
// append order. A lazy enqueue does not trigger a wave of its own: the
// record rides whatever wave the next eager enqueue (in steady state,
// the next decision) triggers, so block persistence costs zero extra
// fsyncs while traffic flows; the lazy timer forces a wave only when it
// stops.
func (q *CommitQueue) enqueue(w *WAL, req *appendReq, lazy bool) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		completeGroup([]*appendReq{req}, ErrClosed)
		return
	}
	if q.log == nil {
		q.log = w
	} else if q.log != w {
		q.mu.Unlock()
		panic("storage: commit queue serves exactly one log; multiplex records instead")
	}
	q.pending = append(q.pending, req)
	arm := lazy && !q.lazyArmed
	if arm {
		q.lazyArmed = true
	}
	q.mu.Unlock()
	if lazy {
		if arm {
			time.AfterFunc(q.cfg.LazyDelay, func() {
				select {
				case q.notify <- struct{}{}:
				default:
				}
			})
		}
		return
	}
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

func (q *CommitQueue) run() {
	defer q.wg.Done()
	for {
		select {
		case <-q.notify:
		case <-q.done:
			// Close happens only after the attached WAL closed (it
			// flushes itself with a barrier), so whatever remains is the
			// final wave.
			q.wave()
			return
		}
		if q.cfg.MaxDelay > 0 {
			timer := time.NewTimer(q.cfg.MaxDelay)
			select {
			case <-timer.C:
			case <-q.done:
				timer.Stop()
			}
		}
		q.wave()
	}
}

// wave is one group commit: take the pending group, write it into the
// log's active segment, fsync once, then complete the tokens.
func (q *CommitQueue) wave() {
	q.mu.Lock()
	if len(q.pending) == 0 {
		q.mu.Unlock()
		return
	}
	q.mu.Unlock()

	// The hook runs before the group is taken: everything enqueued while
	// a test stalls it therefore lands in this one wave, which is what
	// lets the single-fsync and write-ahead tests shape waves
	// deterministically.
	if hook := q.cfg.SyncHook; hook != nil {
		hook()
	}

	q.mu.Lock()
	log := q.log
	group := q.pending
	q.lazyArmed = false // the group is being taken; new lazy arrivals re-arm
	leftovers := false
	if len(group) > q.cfg.MaxBatch {
		group = group[:q.cfg.MaxBatch]
		q.pending = q.pending[q.cfg.MaxBatch:]
		leftovers = true
	} else {
		q.pending = nil
	}
	q.mu.Unlock()
	if leftovers {
		select {
		case q.notify <- struct{}{}:
		default:
		}
	}

	// Write phase: every frame of the wave lands in the one active
	// segment (page cache only), indices assigned in enqueue order. Sync
	// phase: the single fsync the whole wave pays.
	q.cfg.Metrics.WaveTotal.Inc()
	q.cfg.Metrics.WaveSize.Observe(float64(len(group)))
	file, err := log.writeGroup(group)
	if err == nil && file != nil {
		if err = log.fsync(file); err != nil {
			if disableFsyncFailFast.Load() {
				// Teeth switch: ack the wave as if it were durable despite
				// the failed fsync. The dirty pages are gone — a crash now
				// loses every record the wave acknowledged.
				err = nil
			} else {
				log.poison(err)
				err = log.Poisoned()
			}
		}
	}
	if err != nil {
		q.cfg.Metrics.WaveFailures.Inc()
		slog.Error("storage: commit wave failed", "dir", log.cfg.Dir, "records", len(group), "err", err)
	}
	completeGroup(group, err)
}

// Close stops the scheduler after a final drain wave. Call it only after
// the WAL attached to the queue has been closed.
func (q *CommitQueue) Close() error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	q.mu.Unlock()
	close(q.done)
	q.wg.Wait()
	return nil
}

// completeGroup finishes every request of one committed group: record the
// error, run per-record commit callbacks (in log order), and release the
// waiters.
func completeGroup(group []*appendReq, err error) {
	for _, req := range group {
		req.tok.err = err
		if req.onCommit != nil {
			req.onCommit(req.tok.idx, err)
		}
		close(req.tok.done)
	}
}
