package storage

import (
	"fmt"
	"sync"

	"repro/internal/fabric"
	"repro/internal/wire"
)

// BlockStore persists sealed blocks, per channel, in an append-only WAL of
// its own (one record per block, wire-encoded with the channel name). It
// is the durable mirror of a fabric.Ledger: Recovered() rebuilds the full
// chain after a restart, Put is idempotent for already-stored block
// numbers so that WAL-driven re-execution of the tail never duplicates
// blocks, and ReadBlocks serves random-access reads (historical Deliver
// seeks, FetchBlocks back-fill) through an in-memory block-number ->
// WAL-index map maintained across restarts.
type BlockStore struct {
	wal *WAL

	mu        sync.Mutex
	heights   map[string]uint64   // next expected block number per channel
	index     map[string][]uint64 // block number -> WAL record index
	recovered map[string][]*fabric.Block
}

// OpenBlockStore opens the store in cfg.Dir and replays every persisted
// block. The recovered chains stay available via Recovered until the
// caller takes them.
func OpenBlockStore(cfg WALConfig) (*BlockStore, error) {
	wal, err := OpenWAL(cfg)
	if err != nil {
		return nil, err
	}
	s := &BlockStore{
		wal:       wal,
		heights:   make(map[string]uint64),
		index:     make(map[string][]uint64),
		recovered: make(map[string][]*fabric.Block),
	}
	err = wal.Replay(func(idx uint64, rec []byte) error {
		channel, block, err := decodeBlockRecord(rec)
		if err != nil {
			return err
		}
		if block.Header.Number != s.heights[channel] {
			return fmt.Errorf("%w: channel %q block %d, want %d",
				ErrCorrupt, channel, block.Header.Number, s.heights[channel])
		}
		s.recovered[channel] = append(s.recovered[channel], block)
		s.index[channel] = append(s.index[channel], idx)
		s.heights[channel] = block.Header.Number + 1
		return nil
	})
	if err != nil {
		wal.Close()
		return nil, err
	}
	return s, nil
}

// Recovered returns the chains replayed at open, keyed by channel, and
// releases the store's reference to them. Blocks persisted after open are
// not included.
func (s *BlockStore) Recovered() map[string][]*fabric.Block {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.recovered
	s.recovered = nil
	return out
}

// Height returns the next expected block number for a channel (== the
// number of blocks stored).
func (s *BlockStore) Height(channel string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.heights[channel]
}

// Put durably appends a sealed block. A block below the stored height is a
// replay duplicate and is silently skipped; a block above it is a gap and
// is rejected (the caller lost blocks and must back-fill them before
// persisting more). Calls for the same channel must not race each other
// (record order in the log is recovery order); calls for different
// channels may run concurrently and share one group commit.
func (s *BlockStore) Put(channel string, b *fabric.Block) error {
	s.mu.Lock()
	height := s.heights[channel]
	if b.Header.Number < height {
		s.mu.Unlock()
		return nil
	}
	if b.Header.Number > height {
		s.mu.Unlock()
		return fmt.Errorf("storage: channel %q block %d leaves a gap (height %d)",
			channel, b.Header.Number, height)
	}
	s.heights[channel] = b.Header.Number + 1
	s.mu.Unlock()

	raw := b.Marshal()
	w := wire.NewWriter(16 + len(channel) + len(raw))
	w.PutString(channel)
	w.PutBytes(raw)
	idx, err := s.wal.Append(w.Bytes())
	if err != nil {
		// Roll the height back so a retry is possible.
		s.mu.Lock()
		if s.heights[channel] == b.Header.Number+1 {
			s.heights[channel] = b.Header.Number
		}
		s.mu.Unlock()
		return err
	}
	s.mu.Lock()
	s.index[channel] = append(s.index[channel], idx)
	s.mu.Unlock()
	return nil
}

// ReadBlocks reads up to max blocks of one channel back from disk,
// starting at block number start, in order (fabric.BlockReader). It
// returns fewer blocks when the chain ends (or the newest appends have not
// finished committing); a start at or past the committed height returns
// nil.
func (s *BlockStore) ReadBlocks(channel string, start uint64, max int) ([]*fabric.Block, error) {
	if max <= 0 {
		return nil, nil
	}
	s.mu.Lock()
	idxs := s.index[channel]
	if start >= uint64(len(idxs)) {
		s.mu.Unlock()
		return nil, nil
	}
	end := start + uint64(max)
	if end > uint64(len(idxs)) {
		end = uint64(len(idxs))
	}
	want := append([]uint64(nil), idxs[start:end]...)
	s.mu.Unlock()

	out := make([]*fabric.Block, 0, len(want))
	pos := 0
	err := s.wal.ReadRange(want[0], want[len(want)-1], func(idx uint64, rec []byte) error {
		if pos >= len(want) || idx != want[pos] {
			return nil // a record of another channel interleaved in the range
		}
		gotChannel, block, err := decodeBlockRecord(rec)
		if err != nil {
			return err
		}
		if gotChannel != channel || block.Header.Number != start+uint64(pos) {
			return fmt.Errorf("%w: index points at channel %q block %d, want %q block %d",
				ErrCorrupt, gotChannel, block.Header.Number, channel, start+uint64(pos))
		}
		out = append(out, block)
		pos++
		return nil
	})
	if err != nil {
		return nil, err
	}
	if pos != len(want) {
		return nil, fmt.Errorf("%w: channel %q blocks %d..%d missing from log",
			ErrCorrupt, channel, start+uint64(pos), end-1)
	}
	return out, nil
}

// Close flushes and closes the underlying log.
func (s *BlockStore) Close() error { return s.wal.Close() }

func decodeBlockRecord(rec []byte) (string, *fabric.Block, error) {
	r := wire.NewReader(rec)
	channel := r.String()
	raw := r.Bytes()
	if err := r.Finish(); err != nil {
		return "", nil, fmt.Errorf("storage: block record: %w", err)
	}
	block, err := fabric.UnmarshalBlock(raw)
	if err != nil {
		return "", nil, fmt.Errorf("storage: %w", err)
	}
	return channel, block, nil
}
