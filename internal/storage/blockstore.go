package storage

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/cryptoutil"
	"repro/internal/fabric"
	"repro/internal/storage/retention"
	"repro/internal/wire"
)

// BlockStore persists sealed blocks, per channel, as typed block records
// in the unified commit log it shares with the decision log (one record
// per block, wire-encoded with the channel name and whatever node
// signatures the block carries). It is the durable mirror of a
// fabric.Ledger, bounded by retention: a snapshot manifest records, per
// channel, the first retained block, its previous-hash anchor, and the
// block-number → log-record index of the retained window; compaction
// rewrites the manifest and drops whole shared-log segments — but only
// segments that are dead under the two-condition rule (no live block
// record AND wholly behind the consensus checkpoint's decision floor),
// because decisions and blocks now interleave in the same segment files.
// Recovery is a single typed walk driven by the owner (NodeStorage, or
// OpenBlockStore standalone): the manifest seeds the read index without
// decoding the retained window, block records above the manifest frontier
// rebuild the index tail, channel-meta records replay rebases, and
// decision records are someone else's (skipped here after a one-byte
// peek). Reads go through the log's per-segment byte-offset index: a
// single positioned read per block, not a decode-from-zero prefix scan.
type BlockStore struct {
	dir     string
	wal     *WAL
	ownsWAL bool

	// decisionFloor reports the decision-liveness floor of the shared
	// log (every record below it holds no decision the newest consensus
	// checkpoint has not subsumed). NodeStorage wires it; a standalone
	// store (no decisions in its log) leaves it nil, which means "no
	// decision constraint".
	decisionFloor func() uint64

	mu   sync.Mutex
	cond *sync.Cond // signaled when an in-flight Put finishes indexing

	heights map[string]uint64            // next expected block number per channel
	floors  map[string]uint64            // first retained block number per channel
	anchors map[string]cryptoutil.Digest // PrevHash of the block at the floor
	// index[ch][i] is the shared-log record index of block floors[ch]+i.
	index map[string][]uint64
	// chanBytes[ch] is the framed on-disk size of the channel's retained
	// block records: incremented per committed put, recomputed from the
	// offset tables at recovery and after compaction. The weighted
	// retention bytes budget reads it.
	chanBytes map[string]int64

	// Recovery-walk state, cleared by finishRecovery.
	manifestFrontier uint64
	seeded           map[string]int // manifest-indexed blocks per channel
	lastReplayed     map[string]*fabric.Block

	recovered map[string]ChainInfo
}

// ChainInfo is one channel's recovered chain frontier: enough to restore
// a fabric.Ledger without loading a single block into memory.
type ChainInfo struct {
	// Floor is the first retained block number (0 when never compacted).
	Floor uint64
	// Anchor is the PrevHash of block Floor (zero when Floor is 0).
	Anchor cryptoutil.Digest
	// Height is the next block number to append.
	Height uint64
	// LastHash is the header hash of block Height-1 (zero when the
	// retained window is empty).
	LastHash cryptoutil.Digest
}

// newBlockStore builds the index layer over an already-open shared log.
// The caller drives recovery: seedFromManifest, then a typed walk feeding
// applyRecord, then finishRecovery.
func newBlockStore(dir string, wal *WAL, ownsWAL bool) *BlockStore {
	s := &BlockStore{
		dir:     dir,
		wal:     wal,
		ownsWAL: ownsWAL,
		heights:   make(map[string]uint64),
		floors:    make(map[string]uint64),
		anchors:   make(map[string]cryptoutil.Digest),
		index:     make(map[string][]uint64),
		chanBytes: make(map[string]int64),
		seeded:    make(map[string]int),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// OpenBlockStore opens a standalone store that owns its log in cfg.Dir
// (benchmarks and block-only deployments; an ordering node's store is
// opened by NodeStorage over the node's unified log instead). Recovery is
// the same typed walk NodeStorage runs: manifest seed, record walk,
// seam verification, then re-application of any segment deletions a
// crash interrupted.
func OpenBlockStore(cfg WALConfig) (*BlockStore, error) {
	wal, err := OpenWAL(cfg)
	if err != nil {
		return nil, err
	}
	s := newBlockStore(cfg.Dir, wal, true)
	if _, err := s.seedFromManifest(); err != nil {
		wal.Close()
		return nil, err
	}
	err = wal.Replay(func(idx uint64, rec []byte) error {
		return s.applyRecord(idx, rec)
	})
	if err == nil {
		err = s.finishRecovery()
	}
	if err == nil {
		err = s.prune()
	}
	if err != nil {
		wal.Close()
		return nil, err
	}
	return s, nil
}

// seedFromManifest loads the retention manifest (when one exists) and
// seeds floors, anchors, heights, and the read index from it, without
// decoding a single block. It returns the manifest frontier: the walk
// skips block records at or below it. Segment deletions a crash
// interrupted are re-applied here from the manifest's own liveness
// summary — the prefix of segments the snapshot already declared dead
// under the two-condition rule goes before the walk even starts; the
// post-walk prune then reclaims anything that became dead since.
func (s *BlockStore) seedFromManifest() (frontier uint64, err error) {
	manifest, found, err := retention.LoadManifest(s.wal.cfg.FS, s.dir)
	if err != nil {
		return 0, err
	}
	if !found {
		return 0, nil
	}
	if last := s.wal.LastIndex(); manifest.Frontier > last {
		return 0, fmt.Errorf("%w: manifest frontier %d past log end %d",
			ErrCorrupt, manifest.Frontier, last)
	}
	for channel, ch := range manifest.Channels {
		s.floors[channel] = ch.Floor
		s.anchors[channel] = ch.Anchor
		s.heights[channel] = ch.Floor + uint64(len(ch.Index))
		s.index[channel] = append([]uint64(nil), ch.Index...)
		s.seeded[channel] = len(ch.Index)
	}
	s.manifestFrontier = manifest.Frontier
	keep := uint64(0)
	for _, seg := range manifest.Segments {
		if !seg.Dead(manifest.DecisionFloor) {
			break // liveness pins this segment (and prefix pruning stops)
		}
		keep = seg.Last + 1
	}
	if keep > 0 {
		if err := s.wal.PruneTo(keep); err != nil {
			return 0, err
		}
	}
	return manifest.Frontier, nil
}

// applyRecord is the block store's half of the typed recovery walk: block
// records above the manifest frontier rebuild the index tail (skipping a
// channel's pruned prefix by block number), channel-meta records replay
// rebases, and decision records are skipped after the one-byte kind peek
// (the owner's walk consumes those). Records of a channel's pruned
// prefix that survive inside kept segments (whole-segment pruning) are
// skipped by block number.
func (s *BlockStore) applyRecord(idx uint64, rec []byte) error {
	if len(rec) == 0 {
		return fmt.Errorf("%w: empty record %d", ErrCorrupt, idx)
	}
	switch rec[0] {
	case recDecision:
		return nil // the decision log's walk handles these
	case recBlock:
		if idx <= s.manifestFrontier {
			return nil // manifest-covered (or pruned): no decode needed
		}
		channel, block, err := decodeBlockRecord(rec)
		if err != nil {
			return err
		}
		num := block.Header.Number
		if num < s.floors[channel] {
			return nil // below the retention floor: pruned, awaiting deletion
		}
		if num != s.heights[channel] {
			return fmt.Errorf("%w: channel %q block %d, want %d",
				ErrCorrupt, channel, num, s.heights[channel])
		}
		if prev := s.lastReplayed[channel]; prev != nil {
			if block.Header.PrevHash != prev.Header.Hash() {
				return fmt.Errorf("%w: channel %q block %d breaks the hash chain",
					ErrCorrupt, channel, num)
			}
		}
		s.index[channel] = append(s.index[channel], idx)
		s.heights[channel] = num + 1
		if s.lastReplayed == nil {
			s.lastReplayed = make(map[string]*fabric.Block)
		}
		s.lastReplayed[channel] = block
		return nil
	case recChannelMeta:
		if idx <= s.manifestFrontier {
			return nil // a newer manifest already reflects this rebase
		}
		channel, floor, anchor, err := decodeRebaseRecord(rec)
		if err != nil {
			return err
		}
		if floor < s.heights[channel] {
			return nil // stale marker from before a newer manifest
		}
		s.floors[channel] = floor
		s.heights[channel] = floor
		s.anchors[channel] = anchor
		s.index[channel] = nil
		s.seeded[channel] = 0
		delete(s.lastReplayed, channel)
		return nil
	default:
		return fmt.Errorf("%w: record %d has unknown kind 0x%02x", ErrCorrupt, idx, rec[0])
	}
}

// finishRecovery verifies the seams the seeded index skipped (floor
// anchor, manifest-to-replay linkage) with two positioned reads per
// channel, computes the chain frontiers, and clears the walk state.
func (s *BlockStore) finishRecovery() error {
	s.recovered = make(map[string]ChainInfo, len(s.heights))
	for channel, height := range s.heights {
		info := ChainInfo{
			Floor:  s.floors[channel],
			Anchor: s.anchors[channel],
			Height: height,
		}
		n := s.seeded[channel]
		last := s.lastReplayed[channel]
		if n > 0 {
			first, err := s.readOne(channel, s.index[channel][0])
			if err != nil {
				return err
			}
			if first.Header.Number != info.Floor {
				return fmt.Errorf("%w: channel %q first retained block is %d, manifest says %d",
					ErrCorrupt, channel, first.Header.Number, info.Floor)
			}
			if info.Floor > 0 && first.Header.PrevHash != info.Anchor {
				return fmt.Errorf("%w: channel %q block %d does not link into the manifest anchor",
					ErrCorrupt, channel, info.Floor)
			}
			tip, err := s.readOne(channel, s.index[channel][n-1])
			if err != nil {
				return err
			}
			if tip.Header.Number != info.Floor+uint64(n-1) {
				return fmt.Errorf("%w: channel %q manifest index is inconsistent at block %d",
					ErrCorrupt, channel, tip.Header.Number)
			}
			if replayedFirst := firstReplayed(s.index[channel], n); replayedFirst != nil {
				// Seam: the first replayed block must link into the
				// newest manifest-indexed block.
				b, err := s.readOne(channel, *replayedFirst)
				if err != nil {
					return err
				}
				if b.Header.PrevHash != tip.Header.Hash() {
					return fmt.Errorf("%w: channel %q block %d breaks the hash chain at the manifest seam",
						ErrCorrupt, channel, b.Header.Number)
				}
			}
		} else if last != nil && info.Floor > 0 {
			// A rebase left no retained window; the first appended block
			// carried the anchor check at append time, re-verify here.
			firstIdx := s.index[channel][0]
			first, err := s.readOne(channel, firstIdx)
			if err != nil {
				return err
			}
			if first.Header.PrevHash != info.Anchor {
				return fmt.Errorf("%w: channel %q block %d does not link into the rebase anchor",
					ErrCorrupt, channel, first.Header.Number)
			}
		}
		if last != nil {
			info.LastHash = last.Header.Hash()
		} else if n > 0 {
			tip, err := s.readOne(channel, s.index[channel][n-1])
			if err != nil {
				return err
			}
			info.LastHash = tip.Header.Hash()
		}
		s.recovered[channel] = info
	}
	for channel, idxs := range s.index {
		s.chanBytes[channel] = s.wal.RecordSizeBytes(idxs)
	}
	s.lastReplayed = nil
	s.seeded = make(map[string]int)
	return nil
}

// firstReplayed returns the first index entry past the seeded prefix.
func firstReplayed(idxs []uint64, seeded int) *uint64 {
	if seeded >= len(idxs) {
		return nil
	}
	return &idxs[seeded]
}

// readOne reads and decodes a single block record by log index.
func (s *BlockStore) readOne(channel string, idx uint64) (*fabric.Block, error) {
	var out *fabric.Block
	err := s.wal.ReadRecords([]uint64{idx}, func(_ uint64, rec []byte) error {
		ch, block, err := decodeBlockRecord(rec)
		if err != nil {
			return err
		}
		if ch != channel {
			return fmt.Errorf("%w: record %d holds channel %q, want %q",
				ErrCorrupt, idx, ch, channel)
		}
		out = block
		return nil
	})
	if err != nil {
		return nil, s.annotateCorrupt(err, channel)
	}
	return out, nil
}

// annotateCorrupt stamps the block coordinates (channel, block number)
// onto a *RecordCorruptError the WAL raised from a raw index, so the
// self-healing layer knows which block to re-fetch. Must not hold s.mu.
func (s *BlockStore) annotateCorrupt(err error, channel string) error {
	var rce *RecordCorruptError
	if !errors.As(err, &rce) || rce.Channel != "" {
		return err
	}
	rce.Channel = channel
	s.mu.Lock()
	idxs := s.index[channel]
	floor := s.floors[channel]
	for i, idx := range idxs {
		if idx == rce.Index {
			rce.Num = floor + uint64(i)
			break
		}
	}
	s.mu.Unlock()
	return err
}

// Chains returns the chain frontiers recovered at open, keyed by channel,
// and releases the store's reference to them. Blocks persisted after
// open are not included.
func (s *BlockStore) Chains() map[string]ChainInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.recovered
	s.recovered = nil
	return out
}

// Height returns the next expected block number for a channel.
func (s *BlockStore) Height(channel string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.heights[channel]
}

// Floor returns the channel's retention floor: the first block number
// still served; everything below it was compacted away.
func (s *BlockStore) Floor(channel string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.floors[channel]
}

// Put durably appends a sealed block (with whatever signatures it
// carries), blocking until its group commit fsynced. A block below the
// stored height is a replay duplicate and is silently skipped; a block
// above it is a gap and is rejected (the caller lost blocks and must
// back-fill them before persisting more). Calls for the same channel
// must not race each other (record order in the log is recovery order);
// calls for different channels may run concurrently and share one group
// commit.
func (s *BlockStore) Put(channel string, b *fabric.Block) error {
	tok, err := s.putAsync(channel, b, false)
	if err != nil {
		return err
	}
	return tok.Wait()
}

// PutAsync enqueues a sealed block for the next group commit and returns
// its durability token without waiting for the fsync. Height and gap
// rules match Put (a replay duplicate returns an already-completed
// token). Puts for one channel commit in call order, so a contiguous run
// of blocks persists in one fsync wave — wait on the run's last token.
// Because the block record rides the same unified log as the decision
// records, the whole wave — decisions and blocks alike — costs a single
// fsync.
func (s *BlockStore) PutAsync(channel string, b *fabric.Block) (*Token, error) {
	return s.putAsync(channel, b, false)
}

// PutAsyncLazy is PutAsync for callers that gate nothing on the block's
// durability (the ordering node's send drain, which disseminates on the
// decision gate alone): the record triggers no commit wave of its own
// and piggybacks on the next decision's wave, so in steady state block
// persistence adds zero fsyncs.
func (s *BlockStore) PutAsyncLazy(channel string, b *fabric.Block) (*Token, error) {
	return s.putAsync(channel, b, true)
}

func (s *BlockStore) putAsync(channel string, b *fabric.Block, lazy bool) (*Token, error) {
	s.mu.Lock()
	height := s.heights[channel]
	if b.Header.Number < height {
		s.mu.Unlock()
		return doneToken(nil), nil
	}
	if b.Header.Number > height {
		s.mu.Unlock()
		return nil, fmt.Errorf("storage: channel %q block %d leaves a gap (height %d)",
			channel, b.Header.Number, height)
	}
	s.heights[channel] = b.Header.Number + 1
	s.mu.Unlock()

	w := wire.GetWriter(16 + len(channel) + b.MarshaledSize())
	w.PutByte(recBlock)
	w.PutString(channel)
	b.MarshalInto(w)
	framed := int64(len(w.Bytes())) + recordHeaderSize
	tok, err := s.wal.appendAsyncOpt(w.Bytes(), func(idx uint64, err error) {
		// Commit callback (runs in log order): the frame was copied into
		// the commit buffer, so the encode buffer recycles; on success
		// the read index gains the record, re-quiescing the channel for
		// a waiting compaction.
		wire.PutWriter(w)
		s.mu.Lock()
		if err != nil {
			// Roll the height back so a retry is possible. (With several
			// puts in flight the log is poisoned and later callbacks fail
			// too; only the newest height can roll back, which is all a
			// retry could use anyway.)
			if s.heights[channel] == b.Header.Number+1 {
				s.heights[channel] = b.Header.Number
			}
		} else {
			s.index[channel] = append(s.index[channel], idx)
			s.chanBytes[channel] += framed
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}, lazy)
	if err != nil {
		wire.PutWriter(w)
		s.mu.Lock()
		if s.heights[channel] == b.Header.Number+1 {
			s.heights[channel] = b.Header.Number
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		return nil, err
	}
	return tok, nil
}

// ReadBlocks reads up to max blocks of one channel back from disk,
// starting at block number start, in order (fabric.BlockReader). Each
// block is one positioned read through the offset index. It returns
// fewer blocks when the chain ends (or the newest appends have not
// finished committing); a start at or past the committed height returns
// nil; a start below the retention floor returns fabric.ErrPruned.
func (s *BlockStore) ReadBlocks(channel string, start uint64, max int) ([]*fabric.Block, error) {
	if max <= 0 {
		return nil, nil
	}
	s.mu.Lock()
	floor := s.floors[channel]
	if start < floor {
		s.mu.Unlock()
		return nil, &fabric.PrunedError{Channel: channel, Floor: floor}
	}
	idxs := s.index[channel]
	if start-floor >= uint64(len(idxs)) {
		s.mu.Unlock()
		return nil, nil
	}
	end := start - floor + uint64(max)
	if end > uint64(len(idxs)) {
		end = uint64(len(idxs))
	}
	want := append([]uint64(nil), idxs[start-floor:end]...)
	s.mu.Unlock()

	out := make([]*fabric.Block, 0, len(want))
	err := s.wal.ReadRecords(want, func(_ uint64, rec []byte) error {
		gotChannel, block, err := decodeBlockRecord(rec)
		if err != nil {
			return err
		}
		if gotChannel != channel || block.Header.Number != start+uint64(len(out)) {
			return fmt.Errorf("%w: index points at channel %q block %d, want %q block %d",
				ErrCorrupt, gotChannel, block.Header.Number, channel, start+uint64(len(out)))
		}
		out = append(out, block)
		return nil
	})
	if errors.Is(err, ErrRecordGone) {
		// A compaction pruned under the read: report the new floor.
		s.mu.Lock()
		floor = s.floors[channel]
		s.mu.Unlock()
		if start < floor {
			return nil, &fabric.PrunedError{Channel: channel, Floor: floor}
		}
		return nil, err
	}
	if err != nil {
		return nil, s.annotateCorrupt(err, channel)
	}
	return out, nil
}

// BlockSpan locates a block's record on disk: segment file, byte offset,
// and framed length. Fault injectors use it to rot a specific block at
// rest; it answers ErrRecordGone below the floor or past the height.
func (s *BlockStore) BlockSpan(channel string, num uint64) (path string, off, length int64, err error) {
	s.mu.Lock()
	floor := s.floors[channel]
	idxs := s.index[channel]
	if num < floor || num-floor >= uint64(len(idxs)) {
		s.mu.Unlock()
		return "", 0, 0, fmt.Errorf("%w: channel %q block %d", ErrRecordGone, channel, num)
	}
	idx := idxs[num-floor]
	s.mu.Unlock()
	return s.wal.RecordSpan(idx)
}

// RepairBlock overwrites a corrupt durable block record with a verified
// replacement fetched from peers: the replacement is re-framed and the
// whole holding segment rewritten in place (crash-safe tmp+rename). The
// replacement must carry the same channel/number coordinates; its
// signature set may differ from the lost original — any f+1-verified
// copy of the block is as good as the one that rotted.
func (s *BlockStore) RepairBlock(channel string, b *fabric.Block) error {
	s.mu.Lock()
	floor := s.floors[channel]
	idxs := s.index[channel]
	num := b.Header.Number
	if num < floor || num-floor >= uint64(len(idxs)) {
		s.mu.Unlock()
		return fmt.Errorf("%w: channel %q block %d", ErrRecordGone, channel, num)
	}
	idx := idxs[num-floor]
	s.mu.Unlock()

	w := wire.GetWriter(16 + len(channel) + b.MarshaledSize())
	defer wire.PutWriter(w)
	w.PutByte(recBlock)
	w.PutString(channel)
	b.MarshalInto(w)

	_, _, oldLen, err := s.wal.RecordSpan(idx)
	if err != nil {
		return err
	}
	if err := s.wal.RewriteRecord(idx, w.Bytes()); err != nil {
		return err
	}
	// Keep the per-channel byte attribution exact: the replacement frame
	// may differ in size from the rotten original.
	delta := int64(len(w.Bytes())) + recordHeaderSize - oldLen
	s.mu.Lock()
	s.chanBytes[channel] += delta
	s.mu.Unlock()
	return nil
}

// ---- retention ---------------------------------------------------------

// RetentionState reports the retained windows — each with its on-disk
// byte attribution, feeding the weighted bytes budget — and the log's
// total size (retention.Store).
func (s *BlockStore) RetentionState() retention.State {
	s.mu.Lock()
	st := retention.State{Channels: make(map[string]retention.ChannelState, len(s.heights))}
	for channel, height := range s.heights {
		st.Channels[channel] = retention.ChannelState{
			Floor:  s.floors[channel],
			Height: height,
			Bytes:  s.chanBytes[channel],
		}
	}
	s.mu.Unlock()
	st.Bytes = s.wal.SizeBytes()
	return st
}

// CompactTo snapshots and prunes: for each listed channel the retention
// floor rises to the target (clamped so at least one block stays
// retained and floors never regress), the manifest is atomically
// replaced, and shared-log segments dead under the two-condition rule —
// no live block record AND wholly behind the decision floor — are
// deleted. The manifest lands before any deletion, so a crash anywhere
// in between recovers a contiguous chain from the new floors. Returns
// the floors actually applied (retention.Store).
func (s *BlockStore) CompactTo(floors map[string]uint64) (map[string]uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Wait out in-flight Puts so the manifest's frontier covers every
	// record below it (a Put between its log append and its index update
	// would otherwise vanish from recovery).
	for !s.quiescentLocked() {
		s.cond.Wait()
	}

	applied := make(map[string]uint64)
	for channel, target := range floors {
		height, ok := s.heights[channel]
		if !ok || height == 0 {
			continue
		}
		if target > height-1 {
			target = height - 1
		}
		if target <= s.floors[channel] {
			continue
		}
		applied[channel] = target
	}
	if len(applied) == 0 {
		return nil, nil
	}

	// Resolve the new anchors (PrevHash of each new floor block) before
	// touching any state.
	anchors := make(map[string]cryptoutil.Digest, len(applied))
	for channel, target := range applied {
		b, err := s.readOne(channel, s.index[channel][target-s.floors[channel]])
		if err != nil {
			return nil, err
		}
		if b.Header.Number != target {
			return nil, fmt.Errorf("%w: channel %q index points at block %d, want %d",
				ErrCorrupt, channel, b.Header.Number, target)
		}
		anchors[channel] = b.Header.PrevHash
	}
	for channel, target := range applied {
		drop := target - s.floors[channel]
		s.index[channel] = append([]uint64(nil), s.index[channel][drop:]...)
		s.floors[channel] = target
		s.anchors[channel] = anchors[channel]
		// Exact recount off the offset tables: cheaper than tracking
		// per-block sizes and compaction is off the hot path anyway.
		s.chanBytes[channel] = s.wal.RecordSizeBytes(s.index[channel])
	}
	if err := s.saveManifestLocked(); err != nil {
		return nil, err
	}
	if err := s.pruneLocked(); err != nil {
		return nil, err
	}
	return applied, nil
}

// RebaseBlocks jumps a channel forward over a gap that no peer can serve
// anymore (everyone pruned it): the channel's floor, height, and anchor
// move to the target, its stale history becomes prunable, and the jump
// is made crash-safe twice over — a channel-meta rebase record is
// fsynced into the shared log first (the typed recovery walk replays it
// even if the manifest write below never lands), then the manifest is
// rewritten (fabric.BlockRebaser).
func (s *BlockStore) RebaseBlocks(channel string, floor uint64, anchor cryptoutil.Digest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.quiescentLocked() {
		s.cond.Wait()
	}
	if floor < s.heights[channel] {
		return fmt.Errorf("storage: rebase of %q to %d behind height %d",
			channel, floor, s.heights[channel])
	}
	// Durable rebase marker. Waiting on the token under s.mu is safe:
	// quiescence guarantees no block-put commit callback (which needs
	// s.mu) is pending in the queue ahead of the marker.
	w := wire.GetWriter(64 + len(channel))
	w.PutByte(recChannelMeta)
	w.PutByte(metaRebase)
	w.PutString(channel)
	w.PutUint64(floor)
	w.PutRaw(anchor[:])
	tok, err := s.wal.appendAsync(w.Bytes(), func(uint64, error) { wire.PutWriter(w) })
	if err != nil {
		wire.PutWriter(w)
		return err
	}
	if err := tok.Wait(); err != nil {
		return err
	}
	s.floors[channel] = floor
	s.heights[channel] = floor
	s.anchors[channel] = anchor
	s.index[channel] = nil
	s.chanBytes[channel] = 0
	if err := s.saveManifestLocked(); err != nil {
		return err
	}
	return s.pruneLocked()
}

// quiescentLocked reports whether every height is reflected in the index
// (no Put between its log append and its index update).
func (s *BlockStore) quiescentLocked() bool {
	for channel, height := range s.heights {
		if height-s.floors[channel] != uint64(len(s.index[channel])) {
			return false
		}
	}
	return true
}

// keepIdxLocked returns the block-liveness floor of the shared log: the
// smallest record index any channel still retains (everything below it
// belongs to pruned block prefixes). MaxUint64 when no blocks are
// retained at all.
func (s *BlockStore) keepIdxLocked() uint64 {
	keep := uint64(math.MaxUint64)
	for _, idxs := range s.index {
		if len(idxs) > 0 && idxs[0] < keep {
			keep = idxs[0]
		}
	}
	return keep
}

// keepIdx is keepIdxLocked for callers outside the store (NodeStorage's
// checkpoint-side pruning).
func (s *BlockStore) keepIdx() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.keepIdxLocked()
}

// decisionFloorOrMax returns the decision-liveness floor, or MaxUint64
// for a standalone store whose log carries no decisions.
func (s *BlockStore) decisionFloorOrMax() uint64 {
	if s.decisionFloor == nil {
		return math.MaxUint64
	}
	return s.decisionFloor()
}

// prune deletes shared-log segments dead under the two-condition rule: a
// segment goes only when every block record in it is below its channel's
// retention floor AND every decision record in it is behind the
// consensus checkpoint — i.e. whole segments below
// min(block floor, decision floor).
func (s *BlockStore) prune() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pruneLocked()
}

func (s *BlockStore) pruneLocked() error {
	return s.wal.PruneTo(min(s.keepIdxLocked(), s.decisionFloorOrMax()))
}

// saveManifestLocked snapshots the full per-channel state — plus the
// decision floor and the per-segment liveness summary the two-condition
// reclamation rule reads — into the manifest file (tmp + rename + dir
// fsync).
func (s *BlockStore) saveManifestLocked() error {
	m := &retention.Manifest{
		KeepIdx:       s.keepIdxLocked(),
		DecisionFloor: s.decisionFloorOrMax(),
		Channels:      make(map[string]retention.ChannelManifest, len(s.heights)),
	}
	if m.KeepIdx == math.MaxUint64 {
		// No retained blocks: record the end-of-log so the floor stays a
		// meaningful index.
		m.KeepIdx = s.wal.LastIndex() + 1
	}
	var live []uint64
	for channel := range s.heights {
		cm := retention.ChannelManifest{
			Floor:  s.floors[channel],
			Anchor: s.anchors[channel],
			Index:  append([]uint64(nil), s.index[channel]...),
		}
		if n := len(cm.Index); n > 0 && cm.Index[n-1] > m.Frontier {
			m.Frontier = cm.Index[n-1]
		}
		live = append(live, cm.Index...)
		m.Channels[channel] = cm
	}
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	for _, span := range s.wal.SegmentSpans() {
		if span.Last < span.First {
			continue // empty active segment
		}
		lo := sort.Search(len(live), func(i int) bool { return live[i] >= span.First })
		hi := sort.Search(len(live), func(i int) bool { return live[i] > span.Last })
		m.Segments = append(m.Segments, retention.SegmentLiveness{
			First:      span.First,
			Last:       span.Last,
			LiveBlocks: uint64(hi - lo),
		})
	}
	return retention.SaveManifest(s.wal.cfg.FS, s.dir, m)
}

// SizeBytes returns the shared log's on-disk size.
func (s *BlockStore) SizeBytes() int64 { return s.wal.SizeBytes() }

// Close flushes and closes the underlying log when the store owns it (a
// store sharing NodeStorage's unified log leaves the log to its owner).
func (s *BlockStore) Close() error {
	if !s.ownsWAL {
		return nil
	}
	return s.wal.Close()
}

// decodeBlockRecord decodes a typed block record (kind tag, channel,
// trailing block bytes).
func decodeBlockRecord(rec []byte) (string, *fabric.Block, error) {
	r := wire.NewReader(rec)
	if kind := r.Byte(); kind != recBlock {
		return "", nil, fmt.Errorf("storage: block record: unexpected kind 0x%02x", kind)
	}
	channel := r.String()
	raw := r.Raw(r.Remaining())
	if err := r.Finish(); err != nil {
		return "", nil, fmt.Errorf("storage: block record: %w", err)
	}
	block, err := fabric.UnmarshalBlock(raw)
	if err != nil {
		return "", nil, fmt.Errorf("storage: %w", err)
	}
	return channel, block, nil
}

// decodeRebaseRecord decodes a channel-meta rebase marker.
func decodeRebaseRecord(rec []byte) (channel string, floor uint64, anchor cryptoutil.Digest, err error) {
	r := wire.NewReader(rec)
	if kind := r.Byte(); kind != recChannelMeta {
		return "", 0, anchor, fmt.Errorf("storage: channel-meta record: unexpected kind 0x%02x", kind)
	}
	if sub := r.Byte(); sub != metaRebase {
		return "", 0, anchor, fmt.Errorf("storage: channel-meta record: unknown sub-kind 0x%02x", sub)
	}
	channel = r.String()
	floor = r.Uint64()
	copy(anchor[:], r.Raw(cryptoutil.DigestSize))
	if err := r.Finish(); err != nil {
		return "", 0, anchor, fmt.Errorf("storage: channel-meta record: %w", err)
	}
	return channel, floor, anchor, nil
}
