package storage

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/cryptoutil"
	"repro/internal/fabric"
	"repro/internal/storage/retention"
	"repro/internal/wire"
)

// BlockStore persists sealed blocks, per channel, in an append-only WAL of
// its own (one record per block, wire-encoded with the channel name, with
// whatever node signatures the block carries). It is the durable mirror
// of a fabric.Ledger, bounded by retention: a snapshot manifest records,
// per channel, the first retained block, its previous-hash anchor, and
// the block-number → WAL-record index of the retained window; compaction
// rewrites the manifest and drops whole WAL segments below the retention
// floor. Recovery loads the manifest first, seeds its read index from it
// without decoding the retained window, and replays only records above
// the manifest frontier — so a restarted node serves ReadBlocks from the
// floor upward and answers below-floor reads with a typed
// fabric.ErrPruned. Reads go through the WAL's per-segment byte-offset
// index: a single positioned read per block, not a decode-from-zero
// prefix scan.
type BlockStore struct {
	dir string
	wal *WAL

	mu   sync.Mutex
	cond *sync.Cond // signaled when an in-flight Put finishes indexing

	heights map[string]uint64            // next expected block number per channel
	floors  map[string]uint64            // first retained block number per channel
	anchors map[string]cryptoutil.Digest // PrevHash of the block at the floor
	// index[ch][i] is the WAL record index of block floors[ch]+i.
	index map[string][]uint64

	recovered map[string]ChainInfo
}

// ChainInfo is one channel's recovered chain frontier: enough to restore
// a fabric.Ledger without loading a single block into memory.
type ChainInfo struct {
	// Floor is the first retained block number (0 when never compacted).
	Floor uint64
	// Anchor is the PrevHash of block Floor (zero when Floor is 0).
	Anchor cryptoutil.Digest
	// Height is the next block number to append.
	Height uint64
	// LastHash is the header hash of block Height-1 (zero when the
	// retained window is empty).
	LastHash cryptoutil.Digest
}

// OpenBlockStore opens the store in cfg.Dir: it loads the retention
// manifest (when one exists), re-applies any segment deletions a crash
// interrupted, seeds the block index from the manifest, and replays only
// the records above the manifest frontier. The recovered chain frontiers
// stay available via Chains until the caller takes them.
func OpenBlockStore(cfg WALConfig) (*BlockStore, error) {
	wal, err := OpenWAL(cfg)
	if err != nil {
		return nil, err
	}
	s := &BlockStore{
		dir:     cfg.Dir,
		wal:     wal,
		heights: make(map[string]uint64),
		floors:  make(map[string]uint64),
		anchors: make(map[string]cryptoutil.Digest),
		index:   make(map[string][]uint64),
	}
	s.cond = sync.NewCond(&s.mu)
	if err := s.recover(); err != nil {
		wal.Close()
		return nil, err
	}
	return s, nil
}

// recover seeds the store from the manifest and replays the log tail.
func (s *BlockStore) recover() error {
	manifest, found, err := retention.LoadManifest(s.dir)
	if err != nil {
		return err
	}
	frontier := uint64(0)
	seeded := make(map[string]int) // manifest-indexed blocks per channel
	if found {
		if last := s.wal.LastIndex(); manifest.Frontier > last {
			return fmt.Errorf("%w: manifest frontier %d past log end %d",
				ErrCorrupt, manifest.Frontier, last)
		}
		for channel, ch := range manifest.Channels {
			s.floors[channel] = ch.Floor
			s.anchors[channel] = ch.Anchor
			s.heights[channel] = ch.Floor + uint64(len(ch.Index))
			s.index[channel] = append([]uint64(nil), ch.Index...)
			seeded[channel] = len(ch.Index)
		}
		frontier = manifest.Frontier
		// Re-apply deletions a crash may have interrupted: everything
		// below KeepIdx is covered by the manifest floors.
		if err := s.wal.PruneTo(manifest.KeepIdx); err != nil {
			return err
		}
	}

	// Replay the tail above the frontier. Records of a channel's pruned
	// prefix that survive inside kept segments (whole-segment pruning, or
	// a rebase over stale history) are skipped by block number.
	last := make(map[string]*fabric.Block)
	err = s.wal.ReadRange(frontier+1, s.wal.LastIndex(), func(idx uint64, rec []byte) error {
		channel, block, err := decodeBlockRecord(rec)
		if err != nil {
			return err
		}
		num := block.Header.Number
		if num < s.floors[channel] {
			return nil // below the retention floor: pruned, awaiting deletion
		}
		if num != s.heights[channel] {
			return fmt.Errorf("%w: channel %q block %d, want %d",
				ErrCorrupt, channel, num, s.heights[channel])
		}
		if prev := last[channel]; prev != nil {
			if block.Header.PrevHash != prev.Header.Hash() {
				return fmt.Errorf("%w: channel %q block %d breaks the hash chain",
					ErrCorrupt, channel, num)
			}
		}
		s.index[channel] = append(s.index[channel], idx)
		s.heights[channel] = num + 1
		last[channel] = block
		return nil
	})
	if err != nil {
		return err
	}

	// Finalize per channel: verify the seams the seeded index skipped
	// (floor anchor, manifest-to-replay linkage) with two positioned
	// reads, and compute the chain frontier.
	s.recovered = make(map[string]ChainInfo, len(s.heights))
	for channel, height := range s.heights {
		info := ChainInfo{
			Floor:  s.floors[channel],
			Anchor: s.anchors[channel],
			Height: height,
		}
		n := seeded[channel]
		if n > 0 {
			first, err := s.readOne(channel, s.index[channel][0])
			if err != nil {
				return err
			}
			if first.Header.Number != info.Floor {
				return fmt.Errorf("%w: channel %q first retained block is %d, manifest says %d",
					ErrCorrupt, channel, first.Header.Number, info.Floor)
			}
			if info.Floor > 0 && first.Header.PrevHash != info.Anchor {
				return fmt.Errorf("%w: channel %q block %d does not link into the manifest anchor",
					ErrCorrupt, channel, info.Floor)
			}
			tip, err := s.readOne(channel, s.index[channel][n-1])
			if err != nil {
				return err
			}
			if tip.Header.Number != info.Floor+uint64(n-1) {
				return fmt.Errorf("%w: channel %q manifest index is inconsistent at block %d",
					ErrCorrupt, channel, tip.Header.Number)
			}
			if replayedFirst := firstReplayed(s.index[channel], n); replayedFirst != nil {
				// Seam: the first replayed block must link into the
				// newest manifest-indexed block.
				b, err := s.readOne(channel, *replayedFirst)
				if err != nil {
					return err
				}
				if b.Header.PrevHash != tip.Header.Hash() {
					return fmt.Errorf("%w: channel %q block %d breaks the hash chain at the manifest seam",
						ErrCorrupt, channel, b.Header.Number)
				}
			}
		} else if b := last[channel]; b != nil && info.Floor > 0 {
			// A rebase left no retained window; the first appended block
			// carried the anchor check at append time, re-verify here.
			firstIdx := s.index[channel][0]
			first, err := s.readOne(channel, firstIdx)
			if err != nil {
				return err
			}
			if first.Header.PrevHash != info.Anchor {
				return fmt.Errorf("%w: channel %q block %d does not link into the rebase anchor",
					ErrCorrupt, channel, first.Header.Number)
			}
		}
		if b := last[channel]; b != nil {
			info.LastHash = b.Header.Hash()
		} else if n > 0 {
			tip, err := s.readOne(channel, s.index[channel][n-1])
			if err != nil {
				return err
			}
			info.LastHash = tip.Header.Hash()
		}
		s.recovered[channel] = info
	}
	return nil
}

// firstReplayed returns the first index entry past the seeded prefix.
func firstReplayed(idxs []uint64, seeded int) *uint64 {
	if seeded >= len(idxs) {
		return nil
	}
	return &idxs[seeded]
}

// readOne reads and decodes a single block record by WAL index.
func (s *BlockStore) readOne(channel string, idx uint64) (*fabric.Block, error) {
	var out *fabric.Block
	err := s.wal.ReadRecords([]uint64{idx}, func(_ uint64, rec []byte) error {
		ch, block, err := decodeBlockRecord(rec)
		if err != nil {
			return err
		}
		if ch != channel {
			return fmt.Errorf("%w: record %d holds channel %q, want %q",
				ErrCorrupt, idx, ch, channel)
		}
		out = block
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Chains returns the chain frontiers recovered at open, keyed by channel,
// and releases the store's reference to them. Blocks persisted after
// open are not included.
func (s *BlockStore) Chains() map[string]ChainInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.recovered
	s.recovered = nil
	return out
}

// Height returns the next expected block number for a channel.
func (s *BlockStore) Height(channel string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.heights[channel]
}

// Floor returns the channel's retention floor: the first block number
// still served; everything below it was compacted away.
func (s *BlockStore) Floor(channel string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.floors[channel]
}

// Put durably appends a sealed block (with whatever signatures it
// carries), blocking until its group commit fsynced. A block below the
// stored height is a replay duplicate and is silently skipped; a block
// above it is a gap and is rejected (the caller lost blocks and must
// back-fill them before persisting more). Calls for the same channel
// must not race each other (record order in the log is recovery order);
// calls for different channels may run concurrently and share one group
// commit.
func (s *BlockStore) Put(channel string, b *fabric.Block) error {
	tok, err := s.PutAsync(channel, b)
	if err != nil {
		return err
	}
	return tok.Wait()
}

// PutAsync enqueues a sealed block for the next group commit and returns
// its durability token without waiting for the fsync. Height and gap
// rules match Put (a replay duplicate returns an already-completed
// token). Puts for one channel commit in call order, so a contiguous run
// of blocks persists in one fsync wave — wait on the run's last token.
// This is the block half of the shared commit queue's payoff: the send
// drain enqueues the whole run and the records ride a wave together with
// whatever decisions are in flight.
func (s *BlockStore) PutAsync(channel string, b *fabric.Block) (*Token, error) {
	s.mu.Lock()
	height := s.heights[channel]
	if b.Header.Number < height {
		s.mu.Unlock()
		return doneToken(nil), nil
	}
	if b.Header.Number > height {
		s.mu.Unlock()
		return nil, fmt.Errorf("storage: channel %q block %d leaves a gap (height %d)",
			channel, b.Header.Number, height)
	}
	s.heights[channel] = b.Header.Number + 1
	s.mu.Unlock()

	raw := b.Marshal()
	w := wire.GetWriter(16 + len(channel) + len(raw))
	w.PutString(channel)
	w.PutBytes(raw)
	tok, err := s.wal.appendAsync(w.Bytes(), func(idx uint64, err error) {
		// Commit callback (runs in log order): the frame was copied into
		// the commit buffer, so the encode buffer recycles; on success
		// the read index gains the record, re-quiescing the channel for
		// a waiting compaction.
		wire.PutWriter(w)
		s.mu.Lock()
		if err != nil {
			// Roll the height back so a retry is possible. (With several
			// puts in flight the log is poisoned and later callbacks fail
			// too; only the newest height can roll back, which is all a
			// retry could use anyway.)
			if s.heights[channel] == b.Header.Number+1 {
				s.heights[channel] = b.Header.Number
			}
		} else {
			s.index[channel] = append(s.index[channel], idx)
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	if err != nil {
		wire.PutWriter(w)
		s.mu.Lock()
		if s.heights[channel] == b.Header.Number+1 {
			s.heights[channel] = b.Header.Number
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		return nil, err
	}
	return tok, nil
}

// ReadBlocks reads up to max blocks of one channel back from disk,
// starting at block number start, in order (fabric.BlockReader). Each
// block is one positioned read through the offset index. It returns
// fewer blocks when the chain ends (or the newest appends have not
// finished committing); a start at or past the committed height returns
// nil; a start below the retention floor returns fabric.ErrPruned.
func (s *BlockStore) ReadBlocks(channel string, start uint64, max int) ([]*fabric.Block, error) {
	if max <= 0 {
		return nil, nil
	}
	s.mu.Lock()
	floor := s.floors[channel]
	if start < floor {
		s.mu.Unlock()
		return nil, &fabric.PrunedError{Channel: channel, Floor: floor}
	}
	idxs := s.index[channel]
	if start-floor >= uint64(len(idxs)) {
		s.mu.Unlock()
		return nil, nil
	}
	end := start - floor + uint64(max)
	if end > uint64(len(idxs)) {
		end = uint64(len(idxs))
	}
	want := append([]uint64(nil), idxs[start-floor:end]...)
	s.mu.Unlock()

	out := make([]*fabric.Block, 0, len(want))
	err := s.wal.ReadRecords(want, func(_ uint64, rec []byte) error {
		gotChannel, block, err := decodeBlockRecord(rec)
		if err != nil {
			return err
		}
		if gotChannel != channel || block.Header.Number != start+uint64(len(out)) {
			return fmt.Errorf("%w: index points at channel %q block %d, want %q block %d",
				ErrCorrupt, gotChannel, block.Header.Number, channel, start+uint64(len(out)))
		}
		out = append(out, block)
		return nil
	})
	if errors.Is(err, ErrRecordGone) {
		// A compaction pruned under the read: report the new floor.
		s.mu.Lock()
		floor = s.floors[channel]
		s.mu.Unlock()
		if start < floor {
			return nil, &fabric.PrunedError{Channel: channel, Floor: floor}
		}
		return nil, err
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ---- retention ---------------------------------------------------------

// RetentionState reports the retained windows and on-disk size
// (retention.Store).
func (s *BlockStore) RetentionState() retention.State {
	s.mu.Lock()
	st := retention.State{Channels: make(map[string]retention.ChannelState, len(s.heights))}
	for channel, height := range s.heights {
		st.Channels[channel] = retention.ChannelState{
			Floor:  s.floors[channel],
			Height: height,
		}
	}
	s.mu.Unlock()
	st.Bytes = s.wal.SizeBytes()
	return st
}

// CompactTo snapshots and prunes: for each listed channel the retention
// floor rises to the target (clamped so at least one block stays
// retained and floors never regress), the manifest is atomically
// replaced, and WAL segments wholly below every channel's floor are
// deleted. The manifest lands before any deletion, so a crash anywhere
// in between recovers a contiguous chain from the new floors. Returns
// the floors actually applied (retention.Store).
func (s *BlockStore) CompactTo(floors map[string]uint64) (map[string]uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Wait out in-flight Puts so the manifest's frontier covers every
	// record below it (a Put between its WAL append and its index update
	// would otherwise vanish from recovery).
	for !s.quiescentLocked() {
		s.cond.Wait()
	}

	applied := make(map[string]uint64)
	for channel, target := range floors {
		height, ok := s.heights[channel]
		if !ok || height == 0 {
			continue
		}
		if target > height-1 {
			target = height - 1
		}
		if target <= s.floors[channel] {
			continue
		}
		applied[channel] = target
	}
	if len(applied) == 0 {
		return nil, nil
	}

	// Resolve the new anchors (PrevHash of each new floor block) before
	// touching any state.
	anchors := make(map[string]cryptoutil.Digest, len(applied))
	for channel, target := range applied {
		b, err := s.readOne(channel, s.index[channel][target-s.floors[channel]])
		if err != nil {
			return nil, err
		}
		if b.Header.Number != target {
			return nil, fmt.Errorf("%w: channel %q index points at block %d, want %d",
				ErrCorrupt, channel, b.Header.Number, target)
		}
		anchors[channel] = b.Header.PrevHash
	}
	for channel, target := range applied {
		drop := target - s.floors[channel]
		s.index[channel] = append([]uint64(nil), s.index[channel][drop:]...)
		s.floors[channel] = target
		s.anchors[channel] = anchors[channel]
	}
	if err := s.saveManifestLocked(); err != nil {
		return nil, err
	}
	if err := s.wal.PruneTo(s.keepIdxLocked()); err != nil {
		return nil, err
	}
	return applied, nil
}

// RebaseBlocks jumps a channel forward over a gap that no peer can serve
// anymore (everyone pruned it): the channel's floor, height, and anchor
// move to the target, its stale history becomes prunable, and the
// manifest is rewritten so a crash right after still recovers the
// rebased chain (fabric.BlockRebaser).
func (s *BlockStore) RebaseBlocks(channel string, floor uint64, anchor cryptoutil.Digest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.quiescentLocked() {
		s.cond.Wait()
	}
	if floor < s.heights[channel] {
		return fmt.Errorf("storage: rebase of %q to %d behind height %d",
			channel, floor, s.heights[channel])
	}
	s.floors[channel] = floor
	s.heights[channel] = floor
	s.anchors[channel] = anchor
	s.index[channel] = nil
	if err := s.saveManifestLocked(); err != nil {
		return err
	}
	return s.wal.PruneTo(s.keepIdxLocked())
}

// quiescentLocked reports whether every height is reflected in the index
// (no Put between its WAL append and its index update).
func (s *BlockStore) quiescentLocked() bool {
	for channel, height := range s.heights {
		if height-s.floors[channel] != uint64(len(s.index[channel])) {
			return false
		}
	}
	return true
}

// keepIdxLocked returns the WAL pruning floor: the smallest record index
// any channel still retains (everything below it belongs to pruned
// prefixes).
func (s *BlockStore) keepIdxLocked() uint64 {
	keep := s.wal.LastIndex() + 1
	for _, idxs := range s.index {
		if len(idxs) > 0 && idxs[0] < keep {
			keep = idxs[0]
		}
	}
	return keep
}

// saveManifestLocked snapshots the full per-channel state into the
// manifest file (tmp + rename + dir fsync).
func (s *BlockStore) saveManifestLocked() error {
	m := &retention.Manifest{
		KeepIdx:  s.keepIdxLocked(),
		Channels: make(map[string]retention.ChannelManifest, len(s.heights)),
	}
	for channel := range s.heights {
		cm := retention.ChannelManifest{
			Floor:  s.floors[channel],
			Anchor: s.anchors[channel],
			Index:  append([]uint64(nil), s.index[channel]...),
		}
		if n := len(cm.Index); n > 0 && cm.Index[n-1] > m.Frontier {
			m.Frontier = cm.Index[n-1]
		}
		m.Channels[channel] = cm
	}
	return retention.SaveManifest(s.dir, m)
}

// SizeBytes returns the store's on-disk size.
func (s *BlockStore) SizeBytes() int64 { return s.wal.SizeBytes() }

// Close flushes and closes the underlying log.
func (s *BlockStore) Close() error { return s.wal.Close() }

func decodeBlockRecord(rec []byte) (string, *fabric.Block, error) {
	r := wire.NewReader(rec)
	channel := r.String()
	raw := r.Bytes()
	if err := r.Finish(); err != nil {
		return "", nil, fmt.Errorf("storage: block record: %w", err)
	}
	block, err := fabric.UnmarshalBlock(raw)
	if err != nil {
		return "", nil, fmt.Errorf("storage: %w", err)
	}
	return channel, block, nil
}
