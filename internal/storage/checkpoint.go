package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"

	"repro/internal/storage/vfs"
	"repro/internal/wire"
)

// checkpointMagic guards against reading a foreign file as a checkpoint.
const checkpointMagic = 0x43504b31 // "CPK1"

// checkpointFile is the stable name; writes go to checkpointFile+".tmp"
// first and are renamed into place, so a crash never leaves a half-written
// checkpoint under the stable name. One previous generation survives under
// checkpointFile+".prev": a stable copy whose bytes rot on disk is not the
// end of recovery — the predecessor still covers a (shorter) prefix and
// the log replay bridges the rest.
const checkpointFile = "checkpoint"

// prevSuffix aliases the shared previous-generation suffix.
const prevSuffix = vfs.PrevSuffix

// ErrCheckpointCorrupt reports a checkpoint file that fails its CRC.
var ErrCheckpointCorrupt = errors.New("storage: checkpoint corrupt")

// Checkpointer atomically persists consensus snapshots. Layout of the
// file: uint32 magic, int64 seq, uint32 snapshot length, snapshot bytes,
// uint32 CRC32 (IEEE) over everything before it.
type Checkpointer struct {
	dir string
	fs  vfs.FS
}

// NewCheckpointer prepares a checkpointer rooted at dir (created if
// missing). fs is the filesystem seam (nil = the real OS filesystem).
func NewCheckpointer(dir string, fs vfs.FS) (*Checkpointer, error) {
	fs = vfs.OrOS(fs)
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return &Checkpointer{dir: dir, fs: fs}, nil
}

// Save durably replaces the checkpoint with (seq, snapshot): write to a
// temp file, fsync, demote the current stable copy to the .prev
// generation, rename the temp over the stable name, fsync the directory.
// The demotion means a crash (or later bit-rot in the new copy) always
// leaves one good older checkpoint to fall back to.
func (c *Checkpointer) Save(seq int64, snapshot []byte) error {
	// Pooled encode buffer: checkpoints run on a background worker but
	// repeat for the node's lifetime, so the encode should not allocate
	// per save any more than the WAL record paths do.
	w := wire.GetWriter(20 + len(snapshot))
	defer wire.PutWriter(w)
	w.PutUint32(checkpointMagic)
	w.PutUint64(uint64(seq))
	w.PutUint32(uint32(len(snapshot)))
	w.PutRaw(snapshot)
	w.PutUint32(crc32.ChecksumIEEE(w.Bytes()))
	buf := w.Bytes()

	final := filepath.Join(c.dir, checkpointFile)
	return vfs.SaveAtomicWithPrev(c.fs, c.dir, final, buf)
}

// Load returns the latest checkpoint. found is false when none was ever
// saved. A stale temp file from an interrupted Save is ignored (the rename
// never happened, so the previous stable checkpoint — if any — still
// governs). A stable copy that fails its CRC falls back to the retained
// .prev generation: an older checkpoint only lengthens the log replay, it
// never loses state.
func (c *Checkpointer) Load() (seq int64, snapshot []byte, found bool, err error) {
	stable := filepath.Join(c.dir, checkpointFile)
	seq, snapshot, found, err = c.loadOne(stable)
	if err == nil {
		return seq, snapshot, found, nil
	}
	pseq, psnap, pfound, perr := c.loadOne(stable + prevSuffix)
	if perr == nil && pfound {
		slog.Warn("storage: checkpoint corrupt; falling back to previous generation",
			"file", stable, "err", err, "prev_seq", pseq)
		return pseq, psnap, true, nil
	}
	return 0, nil, false, err
}

func (c *Checkpointer) loadOne(path string) (seq int64, snapshot []byte, found bool, err error) {
	raw, err := c.fs.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil, false, nil
	}
	if err != nil {
		return 0, nil, false, fmt.Errorf("storage: %w", err)
	}
	if len(raw) < 20 {
		return 0, nil, false, ErrCheckpointCorrupt
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return 0, nil, false, ErrCheckpointCorrupt
	}
	if binary.BigEndian.Uint32(body[:4]) != checkpointMagic {
		return 0, nil, false, ErrCheckpointCorrupt
	}
	seq = int64(binary.BigEndian.Uint64(body[4:12]))
	n := binary.BigEndian.Uint32(body[12:16])
	if int(n) != len(body)-16 {
		return 0, nil, false, ErrCheckpointCorrupt
	}
	snapshot = make([]byte, n)
	copy(snapshot, body[16:])
	return seq, snapshot, true, nil
}

