package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/wire"
)

// checkpointMagic guards against reading a foreign file as a checkpoint.
const checkpointMagic = 0x43504b31 // "CPK1"

// checkpointFile is the stable name; writes go to checkpointFile+".tmp"
// first and are renamed into place, so a crash never leaves a half-written
// checkpoint under the stable name.
const checkpointFile = "checkpoint"

// ErrCheckpointCorrupt reports a checkpoint file that fails its CRC.
var ErrCheckpointCorrupt = errors.New("storage: checkpoint corrupt")

// Checkpointer atomically persists consensus snapshots. Layout of the
// file: uint32 magic, int64 seq, uint32 snapshot length, snapshot bytes,
// uint32 CRC32 (IEEE) over everything before it.
type Checkpointer struct {
	dir string
}

// NewCheckpointer prepares a checkpointer rooted at dir (created if
// missing).
func NewCheckpointer(dir string) (*Checkpointer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return &Checkpointer{dir: dir}, nil
}

// Save durably replaces the checkpoint with (seq, snapshot): write to a
// temp file, fsync, rename over the stable name, fsync the directory.
func (c *Checkpointer) Save(seq int64, snapshot []byte) error {
	// Pooled encode buffer: checkpoints run on a background worker but
	// repeat for the node's lifetime, so the encode should not allocate
	// per save any more than the WAL record paths do.
	w := wire.GetWriter(20 + len(snapshot))
	defer wire.PutWriter(w)
	w.PutUint32(checkpointMagic)
	w.PutUint64(uint64(seq))
	w.PutUint32(uint32(len(snapshot)))
	w.PutRaw(snapshot)
	w.PutUint32(crc32.ChecksumIEEE(w.Bytes()))
	buf := w.Bytes()

	tmp := filepath.Join(c.dir, checkpointFile+".tmp")
	final := filepath.Join(c.dir, checkpointFile)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("storage: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	d, err := os.Open(c.dir)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// Load returns the latest checkpoint. found is false when none was ever
// saved. A stale temp file from an interrupted Save is ignored (the rename
// never happened, so the previous stable checkpoint — if any — still
// governs).
func (c *Checkpointer) Load() (seq int64, snapshot []byte, found bool, err error) {
	raw, err := os.ReadFile(filepath.Join(c.dir, checkpointFile))
	if os.IsNotExist(err) {
		return 0, nil, false, nil
	}
	if err != nil {
		return 0, nil, false, fmt.Errorf("storage: %w", err)
	}
	if len(raw) < 20 {
		return 0, nil, false, ErrCheckpointCorrupt
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return 0, nil, false, ErrCheckpointCorrupt
	}
	if binary.BigEndian.Uint32(body[:4]) != checkpointMagic {
		return 0, nil, false, ErrCheckpointCorrupt
	}
	seq = int64(binary.BigEndian.Uint64(body[4:12]))
	n := binary.BigEndian.Uint32(body[12:16])
	if int(n) != len(body)-16 {
		return 0, nil, false, ErrCheckpointCorrupt
	}
	snapshot = make([]byte, n)
	copy(snapshot, body[16:])
	return seq, snapshot, true, nil
}
