package storage

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/storage/faultfs"
)

// flipByte XORs one bit of the byte at off in path — at-rest corruption
// injected underneath every storage abstraction.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatalf("read byte: %v", err)
	}
	b[0] ^= 0x01
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatalf("write byte: %v", err)
	}
}

// TestFlipAByteBlockRecordTyped flips one payload byte of a durable block
// record at rest: the CRC-checked read path must answer a typed
// *RecordCorruptError carrying the block coordinates a repair needs, and
// the error must keep unwrapping to ErrCorrupt.
func TestFlipAByteBlockRecordTyped(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	s.Recovered()
	chain := makeChain(t, 5)
	for _, b := range chain {
		if err := s.PutBlock("ch", b); err != nil {
			t.Fatalf("put: %v", err)
		}
	}

	path, off, length, err := s.BlockSpan("ch", 2)
	if err != nil {
		t.Fatalf("block span: %v", err)
	}
	flipByte(t, path, off+length-1)

	_, err = s.ReadBlocks("ch", 2, 1)
	if err == nil {
		t.Fatal("read of a rotted block record succeeded")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt read error %v does not unwrap to ErrCorrupt", err)
	}
	var rce *RecordCorruptError
	if !errors.As(err, &rce) {
		t.Fatalf("corrupt read error %v is not a *RecordCorruptError", err)
	}
	if rce.Channel != "ch" || rce.Num != 2 {
		t.Fatalf("corrupt record located at %s/%d, want ch/2", rce.Channel, rce.Num)
	}
	if rce.Segment == "" || rce.Offset != off {
		t.Fatalf("corrupt record frame at %s:%d, want %s:%d", rce.Segment, rce.Offset, path, off)
	}

	// The neighbors are untouched: corruption detection is per record.
	if _, err := s.ReadBlocks("ch", 3, 1); err != nil {
		t.Fatalf("reading the record after the rotted one: %v", err)
	}
}

// TestScrubOnceRepairsFlippedBlock rots a durable block record, then runs
// one scrub pass with a repair callback (here fed from a pristine copy,
// standing in for the f+1-verified peer fetch): the pass must find
// exactly the rotted record, repair it in place, verify the repair by
// re-reading, and the rewritten segment must survive a restart.
func TestScrubOnceRepairsFlippedBlock(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	s.Recovered()
	chain := makeChain(t, 5)
	for _, b := range chain {
		if err := s.PutBlock("ch", b); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	path, off, length, err := s.BlockSpan("ch", 2)
	if err != nil {
		t.Fatalf("block span: %v", err)
	}
	flipByte(t, path, off+length-1)

	res := s.ScrubOnce(func(channel string, num uint64) error {
		return s.RepairBlock(channel, chain[num])
	})
	if res.Checked != 5 {
		t.Fatalf("scrub checked %d records, want 5", res.Checked)
	}
	if len(res.Corrupt) != 1 || res.Corrupt[0].Channel != "ch" || res.Corrupt[0].Num != 2 {
		t.Fatalf("scrub found %+v, want exactly ch/2", res.Corrupt)
	}
	if len(res.Repaired) != 1 || res.Repaired[0].Num != 2 {
		t.Fatalf("scrub repaired %+v, want exactly ch/2", res.Repaired)
	}

	// A clean follow-up pass: the heal really landed.
	if res := s.ScrubOnce(nil); len(res.Corrupt) != 0 {
		t.Fatalf("second scrub still finds corruption: %+v", res.Corrupt)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// The rewritten segment must recover: the repair is durable, not a
	// cache artifact.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	s2.Recovered()
	got, err := s2.ReadBlocks("ch", 0, 5)
	if err != nil {
		t.Fatalf("reading repaired chain after restart: %v", err)
	}
	if len(got) != 5 || got[2].Header.Hash() != chain[2].Header.Hash() {
		t.Fatalf("repaired chain diverges after restart")
	}
}

// TestFlipAByteCheckpointFallsBackToPrev rots the stable checkpoint after
// a second save demoted the first generation to .prev: Load must answer
// the previous generation (an older checkpoint only lengthens replay)
// instead of failing the boot.
func TestFlipAByteCheckpointFallsBackToPrev(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCheckpointer(dir, nil)
	if err != nil {
		t.Fatalf("new checkpointer: %v", err)
	}
	if err := c.Save(7, []byte("gen-one")); err != nil {
		t.Fatalf("save 1: %v", err)
	}
	if err := c.Save(9, []byte("gen-two")); err != nil {
		t.Fatalf("save 2: %v", err)
	}
	stable := filepath.Join(dir, "checkpoint")
	info, err := os.Stat(stable)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	flipByte(t, stable, info.Size()-1)

	seq, snapshot, found, err := c.Load()
	if err != nil {
		t.Fatalf("load with rotted stable copy: %v", err)
	}
	if !found || seq != 7 || string(snapshot) != "gen-one" {
		t.Fatalf("load = seq %d %q found=%v, want the .prev generation (7, gen-one)", seq, snapshot, found)
	}
}

// TestFlipAByteMembershipFailsFast rots the durable membership record:
// recovery must refuse to boot with a typed *MembershipCorruptError — a
// node recovered into a stale or corrupt group view is a safety
// violation, so there is deliberately no fallback generation.
func TestFlipAByteMembershipFailsFast(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	s.Recovered()
	if err := s.SaveMembership(&MembershipRecord{
		Epoch:   3,
		Members: []int32{0, 1, 2},
		Weights: map[int32]uint32{0: 1, 1: 1, 2: 1},
	}); err != nil {
		t.Fatalf("save membership: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	path := filepath.Join(dir, "membership")
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	flipByte(t, path, info.Size()/2)

	_, err = Open(dir, Options{})
	if err == nil {
		t.Fatal("open booted on a rotted membership record")
	}
	if !errors.Is(err, ErrMembershipCorrupt) {
		t.Fatalf("boot error %v does not unwrap to ErrMembershipCorrupt", err)
	}
	var mce *MembershipCorruptError
	if !errors.As(err, &mce) || mce.Path != path {
		t.Fatalf("boot error %v is not a typed report naming %s", err, path)
	}
}

// TestFsyncFailurePoisonsLog is the fsyncgate fail-fast contract: one
// failed wave fsync permanently poisons the commit log — the failing
// wave's tokens error, every later append errors with ErrLogPoisoned,
// and the health probe reports it. No retry may ever succeed, because
// the kernel dropped the dirty pages the moment the fsync failed.
func TestFsyncFailurePoisonsLog(t *testing.T) {
	ffs := faultfs.New(nil, 1)
	ffs.SetPathFilter(func(p string) bool { return strings.HasSuffix(p, ".seg") })
	s, err := Open(t.TempDir(), Options{FS: ffs})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	s.Recovered()
	if err := s.AppendDecision(0, [][]byte{[]byte("op")}); err != nil {
		t.Fatalf("healthy append: %v", err)
	}

	ffs.FailSyncs(1)
	tok := s.AppendDecisionAsync(1, [][]byte{[]byte("doomed")})
	if err := tok.Wait(); !errors.Is(err, ErrLogPoisoned) {
		t.Fatalf("token after failed fsync = %v, want ErrLogPoisoned (the wave must not be acked)", err)
	}
	if err := s.Poisoned(); !errors.Is(err, ErrLogPoisoned) {
		t.Fatalf("Poisoned() = %v, want ErrLogPoisoned", err)
	}
	// The injected failure was one-shot: syncs work again. The log must
	// stay poisoned anyway — that is the fail-fast point.
	if err := s.AppendDecision(2, [][]byte{[]byte("late")}); !errors.Is(err, ErrLogPoisoned) {
		t.Fatalf("append after poisoning = %v, want ErrLogPoisoned", err)
	}
	if err := s.PutBlock("ch", makeChain(t, 1)[0]); !errors.Is(err, ErrLogPoisoned) {
		t.Fatalf("block put after poisoning = %v, want ErrLogPoisoned", err)
	}
}

// TestFsyncCrashWindowFailFast drives the exact crash window fsyncgate
// made famous, on a page-cache-faithful filesystem (writes are buffered
// and a failed fsync DISCARDS them): with fail-fast on, the wave whose
// fsync failed errors its tokens — nothing is acked — so the record
// missing after the crash was never promised to anyone.
func TestFsyncCrashWindowFailFast(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil, 2)
	ffs.SetPathFilter(func(p string) bool { return strings.HasSuffix(p, ".seg") })
	s, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	s.Recovered()
	if err := s.AppendDecision(0, [][]byte{[]byte("durable")}); err != nil {
		t.Fatalf("healthy append: %v", err)
	}

	ffs.SetCrashable(true)
	ffs.FailSyncs(1)
	tok := s.AppendDecisionAsync(1, [][]byte{[]byte("in-the-window")})
	if err := tok.Wait(); err == nil {
		t.Fatal("write in the crash window was acked despite the failed fsync")
	}

	// Crash: dirty pages die, the process goes away.
	ffs.DropDirty()
	crashDir := t.TempDir()
	copyTree(t, dir, crashDir)
	crashed, err := Open(crashDir, Options{})
	if err != nil {
		t.Fatalf("open crash snapshot: %v", err)
	}
	defer crashed.Close()
	rec := crashed.Recovered()
	if len(rec.Decisions) != 1 || rec.Decisions[0].Seq != 0 {
		t.Fatalf("crash snapshot recovered %+v, want only the durable decision 0", rec.Decisions)
	}
	// Decision 1 is gone — but its token errored, so no ack was given:
	// fail-fast turned silent loss into an honest failure.
}

// TestFsyncCrashWindowTeethLosesAckedWrite proves the fail-fast check has
// teeth: with it artificially disabled (the pre-fsyncgate behavior — the
// failed fsync is swallowed and the wave acked), the same crash silently
// loses a write the caller was told is durable.
func TestFsyncCrashWindowTeethLosesAckedWrite(t *testing.T) {
	SetFsyncFailFastDisabled(true)
	defer SetFsyncFailFastDisabled(false)

	dir := t.TempDir()
	ffs := faultfs.New(nil, 3)
	ffs.SetPathFilter(func(p string) bool { return strings.HasSuffix(p, ".seg") })
	s, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	s.Recovered()
	if err := s.AppendDecision(0, [][]byte{[]byte("durable")}); err != nil {
		t.Fatalf("healthy append: %v", err)
	}

	ffs.SetCrashable(true)
	ffs.FailSyncs(1)
	tok := s.AppendDecisionAsync(1, [][]byte{[]byte("acked-then-lost")})
	if err := tok.Wait(); err != nil {
		t.Fatalf("with fail-fast disabled the wave must be acked, got %v", err)
	}

	// Crash. The acked decision was only ever in the dropped dirty pages.
	ffs.DropDirty()
	crashDir := t.TempDir()
	copyTree(t, dir, crashDir)
	crashed, err := Open(crashDir, Options{})
	if err != nil {
		t.Fatalf("open crash snapshot: %v", err)
	}
	defer crashed.Close()
	rec := crashed.Recovered()
	for _, d := range rec.Decisions {
		if d.Seq == 1 {
			t.Fatal("decision 1 survived the crash; the teeth scenario did not bite")
		}
	}
	// The acked write is gone: exactly the silent loss fail-fast prevents.
}
