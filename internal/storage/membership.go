package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/storage/vfs"
	"repro/internal/wire"
)

// membershipMagic guards against reading a foreign file as a membership
// record.
const membershipMagic = 0x4d425231 // "MBR1"

// membershipFile is the stable name; like the checkpoint, writes go to a
// temp file and are renamed into place so a crash never leaves a torn
// record under the stable name.
const membershipFile = "membership"

// ErrMembershipCorrupt reports a membership record that fails its CRC.
var ErrMembershipCorrupt = errors.New("storage: membership record corrupt")

// MembershipCorruptError is the typed fail-fast report of a rotten
// membership record, naming the file so the operator can act on it. There
// is deliberately NO previous-generation fallback here: recovering into a
// stale group view is a safety violation (the node could rejoin a
// membership consensus already moved past), so a corrupt record stops the
// boot — the runbook answer is -recover-from-peers. Unwraps to
// ErrMembershipCorrupt.
type MembershipCorruptError struct {
	// Path is the corrupt record's file.
	Path string
	// Err is the underlying cause.
	Err error
}

func (e *MembershipCorruptError) Error() string {
	return fmt.Sprintf("storage: membership record %s is corrupt (refusing to guess the group; wipe and re-join via -recover-from-peers): %v", e.Path, e.Err)
}

func (e *MembershipCorruptError) Unwrap() error { return ErrMembershipCorrupt }

// MembershipRecord is the durable group view a node recovers into: the
// membership epoch (count of ordered reconfig operations applied) and the
// member ids with their vote weights. A node that crashes after applying a
// reconfig restarts from this record, not from its static configuration, so
// the group it rejoins is the one consensus last agreed on.
type MembershipRecord struct {
	Epoch   uint64
	Members []int32
	Weights map[int32]uint32
}

// marshal encodes the record body (without magic/CRC framing).
func (m *MembershipRecord) marshal(w *wire.Writer) {
	w.PutUvarint(m.Epoch)
	w.PutUvarint(uint64(len(m.Members)))
	for _, id := range m.Members {
		w.PutInt32(id)
		w.PutUint32(m.Weights[id])
	}
}

// unmarshalMembershipRecord decodes a record body.
func unmarshalMembershipRecord(r *wire.Reader) (*MembershipRecord, error) {
	rec := &MembershipRecord{Epoch: r.Uvarint()}
	n := r.Uvarint()
	if n > 1<<10 {
		return nil, fmt.Errorf("%w: membership size %d out of range", ErrMembershipCorrupt, n)
	}
	rec.Members = make([]int32, 0, n)
	rec.Weights = make(map[int32]uint32, n)
	for i := uint64(0); i < n; i++ {
		id := r.Int32()
		rec.Members = append(rec.Members, id)
		rec.Weights[id] = r.Uint32()
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMembershipCorrupt, err)
	}
	return rec, nil
}

// SaveMembership durably replaces the membership record. Saves are
// monotonic in epoch: a record at or below the newest on-disk epoch is a
// no-op, so a stale observer callback can never roll the group view back.
// Reconfigurations are rare, so the two fsyncs (file + directory) are paid
// synchronously.
func (s *NodeStorage) SaveMembership(rec *MembershipRecord) error {
	s.memberMu.Lock()
	defer s.memberMu.Unlock()
	if s.memberEpoch != nil && rec.Epoch <= *s.memberEpoch {
		return nil
	}

	w := wire.GetWriter(24 + 8*len(rec.Members))
	defer wire.PutWriter(w)
	w.PutUint32(membershipMagic)
	rec.marshal(w)
	w.PutUint32(crc32.ChecksumIEEE(w.Bytes()))
	buf := w.Bytes()

	tmp := filepath.Join(s.dir, membershipFile+".tmp")
	final := filepath.Join(s.dir, membershipFile)
	f, err := s.fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("storage: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	epoch := rec.Epoch
	s.memberEpoch = &epoch
	return nil
}

// loadMembership reads the stable membership record; nil when none was
// ever saved (the node has never applied a reconfiguration). A record
// that fails its CRC is a typed *MembershipCorruptError naming the file —
// fail fast, never guess the group view.
func loadMembership(fs vfs.FS, dir string) (*MembershipRecord, error) {
	path := filepath.Join(dir, membershipFile)
	raw, err := fs.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	if len(raw) < 8 {
		return nil, &MembershipCorruptError{Path: path, Err: errors.New("truncated record")}
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return nil, &MembershipCorruptError{Path: path, Err: errors.New("crc mismatch")}
	}
	if binary.BigEndian.Uint32(body[:4]) != membershipMagic {
		return nil, &MembershipCorruptError{Path: path, Err: errors.New("bad magic")}
	}
	rec, err := unmarshalMembershipRecord(wire.NewReader(body[4:]))
	if err != nil {
		return nil, &MembershipCorruptError{Path: path, Err: err}
	}
	return rec, nil
}
