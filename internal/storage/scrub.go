package storage

import (
	"errors"
	"log/slog"
	"sync"
	"time"
)

// ScrubFinding is one corrupt block record a scrub pass found: the block
// coordinates the repair path needs plus the underlying typed error.
type ScrubFinding struct {
	Channel string
	Num     uint64
	Err     error
}

// ScrubResult summarizes one scrub pass.
type ScrubResult struct {
	// Checked counts the block records whose CRC (and decode) the pass
	// verified.
	Checked int
	// Corrupt lists the records that failed verification.
	Corrupt []ScrubFinding
	// Repaired lists the corrupt records a repair callback fixed (verified
	// by re-reading them after the repair).
	Repaired []ScrubFinding
}

// ScrubOnce runs one synchronous scrub pass over every retained block
// record: each record is read back through the CRC-checking read path, so
// silent media corruption (bit-rot) surfaces here instead of at the next
// unlucky reader. For every corrupt record the repair callback (nil = no
// repair, detect only) gets the block coordinates; the ordering layer
// wires it to an f+1-verified peer fetch followed by RepairBlock. A
// repair only counts once re-reading the record comes back clean.
//
// The pass snapshots each channel's window up front and tolerates the
// floor rising underneath it (compaction during a pass just shrinks the
// work); it holds no lock while reading, so scrubbing never stalls the
// commit path.
func (s *NodeStorage) ScrubOnce(repair func(channel string, num uint64) error) ScrubResult {
	var res ScrubResult
	s.blocks.mu.Lock()
	windows := make(map[string][2]uint64, len(s.blocks.heights))
	for channel, height := range s.blocks.heights {
		windows[channel] = [2]uint64{s.blocks.floors[channel], height}
	}
	s.blocks.mu.Unlock()

	for channel, win := range windows {
		for num := win[0]; num < win[1]; num++ {
			s.blocks.mu.Lock()
			floor := s.blocks.floors[channel]
			n := uint64(len(s.blocks.index[channel]))
			s.blocks.mu.Unlock()
			if num < floor {
				continue // compacted away mid-pass
			}
			if num-floor >= n {
				break // not yet indexed (in-flight put); next pass gets it
			}
			res.Checked++
			_, err := s.blocks.readOne(channel, s.blockIdx(channel, num))
			if err == nil {
				continue
			}
			if errors.Is(err, ErrRecordGone) {
				continue // pruned under the read
			}
			finding := ScrubFinding{Channel: channel, Num: num, Err: err}
			res.Corrupt = append(res.Corrupt, finding)
			s.metrics.ScrubCorrupt.Inc()
			slog.Warn("storage: scrub found corrupt block record",
				"channel", channel, "block", num, "err", err)
			if repair == nil {
				continue
			}
			if rerr := repair(channel, num); rerr != nil {
				slog.Error("storage: block repair failed",
					"channel", channel, "block", num, "err", rerr)
				continue
			}
			if _, verr := s.blocks.readOne(channel, s.blockIdx(channel, num)); verr != nil {
				slog.Error("storage: repaired block still unreadable",
					"channel", channel, "block", num, "err", verr)
				continue
			}
			res.Repaired = append(res.Repaired, finding)
			s.metrics.RepairedBlocks.Inc()
			slog.Info("storage: repaired corrupt block record from peers",
				"channel", channel, "block", num)
		}
	}
	s.metrics.ScrubPasses.Inc()
	return res
}

// blockIdx resolves a block number to its current log index (0 when the
// block is outside the retained window — readOne then answers
// ErrRecordGone, which the scrub pass skips).
func (s *NodeStorage) blockIdx(channel string, num uint64) uint64 {
	s.blocks.mu.Lock()
	defer s.blocks.mu.Unlock()
	floor := s.blocks.floors[channel]
	idxs := s.blocks.index[channel]
	if num < floor || num-floor >= uint64(len(idxs)) {
		return 0
	}
	return idxs[num-floor]
}

// Scrubber periodically scrubs a NodeStorage in the background. Interval
// passes are the steady-state defense against bit-rot; Trigger() forces
// an immediate pass (the ordering node triggers one when a foreground
// read trips over a corrupt record, so healing is not stuck behind the
// timer).
type Scrubber struct {
	s        *NodeStorage
	interval time.Duration
	repair   func(channel string, num uint64) error

	trigger chan struct{}
	done    chan struct{}
	once    sync.Once
	wg      sync.WaitGroup

	mu   sync.Mutex
	last ScrubResult
}

// StartScrubber launches a background scrubber over this storage.
// interval <= 0 disables the timer (passes then run only via Trigger).
// repair may be nil (detect-only).
func (s *NodeStorage) StartScrubber(interval time.Duration, repair func(channel string, num uint64) error) *Scrubber {
	sc := &Scrubber{
		s:        s,
		interval: interval,
		repair:   repair,
		trigger:  make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	sc.wg.Add(1)
	go sc.run()
	return sc
}

func (sc *Scrubber) run() {
	defer sc.wg.Done()
	var tick <-chan time.Time
	if sc.interval > 0 {
		t := time.NewTicker(sc.interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-sc.done:
			return
		case <-tick:
		case <-sc.trigger:
		}
		res := sc.s.ScrubOnce(sc.repair)
		sc.mu.Lock()
		sc.last = res
		sc.mu.Unlock()
	}
}

// Trigger requests an immediate scrub pass (coalesced if one is already
// queued). Non-blocking.
func (sc *Scrubber) Trigger() {
	select {
	case sc.trigger <- struct{}{}:
	default:
	}
}

// Last returns the most recent completed pass's result.
func (sc *Scrubber) Last() ScrubResult {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.last
}

// Close stops the scrubber and waits for an in-flight pass to finish.
func (sc *Scrubber) Close() {
	sc.once.Do(func() { close(sc.done) })
	sc.wg.Wait()
}
