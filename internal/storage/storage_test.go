package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cryptoutil"
	"repro/internal/fabric"
)

// ---- Checkpointer ------------------------------------------------------

func TestCheckpointerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, found, err := c.Load(); err != nil || found {
		t.Fatalf("empty load: found=%v err=%v", found, err)
	}
	if err := c.Save(41, []byte("snap-a")); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(97, []byte("snap-b")); err != nil {
		t.Fatal(err)
	}
	seq, snap, found, err := c.Load()
	if err != nil || !found {
		t.Fatalf("load: found=%v err=%v", found, err)
	}
	if seq != 97 || string(snap) != "snap-b" {
		t.Fatalf("load = (%d, %q)", seq, snap)
	}
}

func TestCheckpointerIgnoresStaleTemp(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Save(7, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	// A crash mid-Save leaves garbage in the temp file; the stable
	// checkpoint must still load.
	if err := os.WriteFile(filepath.Join(dir, checkpointFile+".tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	seq, snap, found, err := c.Load()
	if err != nil || !found || seq != 7 || string(snap) != "durable" {
		t.Fatalf("load = (%d, %q, %v, %v)", seq, snap, found, err)
	}
}

func TestCheckpointerDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Save(3, []byte("snapshot-bytes")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, checkpointFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[10] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Load(); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("corrupt load: %v", err)
	}
}

// ---- BlockStore --------------------------------------------------------

func makeChain(t *testing.T, n int) []*fabric.Block {
	t.Helper()
	blocks := make([]*fabric.Block, 0, n)
	var prev cryptoutil.Digest
	for i := 0; i < n; i++ {
		env := &fabric.Envelope{ChannelID: "ch", ClientID: "c", Payload: []byte{byte(i)}}
		b := fabric.NewBlock(uint64(i), prev, [][]byte{env.Marshal()})
		prev = b.Header.Hash()
		blocks = append(blocks, b)
	}
	if err := fabric.VerifyChain(blocks); err != nil {
		t.Fatalf("test chain invalid: %v", err)
	}
	return blocks
}

func TestBlockStoreRecoverAndIdempotence(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenBlockStore(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	chain := makeChain(t, 5)
	for _, b := range chain {
		if err := s.Put("ch", b); err != nil {
			t.Fatal(err)
		}
	}
	// Replay duplicates are silently absorbed.
	if err := s.Put("ch", chain[2]); err != nil {
		t.Fatalf("duplicate put: %v", err)
	}
	// Gaps are refused.
	gap := makeChain(t, 8)[7]
	if err := s.Put("ch", gap); err == nil {
		t.Fatal("gap put succeeded")
	}
	if h := s.Height("ch"); h != 5 {
		t.Fatalf("height = %d", h)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenBlockStore(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	info := s2.Chains()["ch"]
	if info.Height != 5 || info.Floor != 0 {
		t.Fatalf("recovered frontier = %+v", info)
	}
	if info.LastHash != chain[4].Header.Hash() {
		t.Fatal("recovered last hash differs")
	}
	rec, err := s2.ReadBlocks("ch", 0, 5)
	if err != nil {
		t.Fatalf("reading recovered chain: %v", err)
	}
	if len(rec) != 5 {
		t.Fatalf("recovered %d blocks", len(rec))
	}
	if err := fabric.VerifyChain(rec); err != nil {
		t.Fatalf("recovered chain: %v", err)
	}
	for i, b := range rec {
		if !bytes.Equal(b.Marshal(), chain[i].Marshal()) {
			t.Fatalf("block %d differs after recovery", i)
		}
	}
}

// ---- NodeStorage -------------------------------------------------------

func TestNodeStorageRecoverSequence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seq := int64(0); seq < 10; seq++ {
		if err := s.AppendDecision(seq, [][]byte{{byte(seq)}, {0xee}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SaveCheckpoint(5, []byte("wrapped-snapshot")); err != nil {
		t.Fatal(err)
	}
	chain := makeChain(t, 3)
	for _, b := range chain {
		if err := s.PutBlock("ch", b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovered()
	if rec.CheckpointSeq != 5 || string(rec.Checkpoint) != "wrapped-snapshot" {
		t.Fatalf("checkpoint = (%d, %q)", rec.CheckpointSeq, rec.Checkpoint)
	}
	if len(rec.Decisions) != 4 {
		t.Fatalf("decisions after checkpoint: %d, want 4 (seqs 6..9)", len(rec.Decisions))
	}
	for i, e := range rec.Decisions {
		if e.Seq != int64(6+i) {
			t.Fatalf("decision %d has seq %d", i, e.Seq)
		}
		if len(e.Batch) != 2 || e.Batch[0][0] != byte(e.Seq) {
			t.Fatalf("decision %d batch corrupted: %v", i, e.Batch)
		}
	}
	if info := rec.Chains["ch"]; info.Height != 3 || info.Floor != 0 {
		t.Fatalf("chain frontier recovered: %+v", info)
	}
}

// TestNodeStorageReplayIdempotent re-appends recovered decisions and blocks
// (exactly what a recovering node's re-execution does) and checks nothing
// duplicates: a second recovery sees the identical state.
func TestNodeStorageReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	chain := makeChain(t, 4)
	for seq := int64(0); seq < 6; seq++ {
		if err := s.AppendDecision(seq, [][]byte{{byte(seq)}}); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range chain {
		if err := s.PutBlock("ch", b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := s2.Recovered()
	// Recovery-style replay: push everything we just recovered back in
	// (a recovering node re-executes the logged decisions, which re-seals
	// and re-persists the tail blocks).
	for _, e := range rec.Decisions {
		if err := s2.AppendDecision(e.Seq, e.Batch); err != nil {
			t.Fatal(err)
		}
	}
	replayed, err := s2.ReadBlocks("ch", 0, len(chain))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range replayed {
		if err := s2.PutBlock("ch", b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	rec3 := s3.Recovered()
	if len(rec3.Decisions) != len(rec.Decisions) {
		t.Fatalf("decisions grew under replay: %d -> %d", len(rec.Decisions), len(rec3.Decisions))
	}
	if rec3.Chains["ch"].Height != rec.Chains["ch"].Height {
		t.Fatalf("blocks grew under replay: %d -> %d", rec.Chains["ch"].Height, rec3.Chains["ch"].Height)
	}
}

// TestTornBlockWALRecoversToDurablePrefix hard-closes the block WAL
// mid-write (truncating the tail, as a crash during the last write would)
// and checks that reopening yields a ledger that verifies at the height of
// the last fully durable block.
func TestTornBlockWALRecoversToDurablePrefix(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	chain := makeChain(t, 6)
	for _, b := range chain {
		if err := s.PutBlock("ch", b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	segs, _ := filepath.Glob(filepath.Join(dir, "blocks", "*"+segSuffix))
	if len(segs) == 0 {
		t.Fatal("no block segments on disk")
	}
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer s2.Close()
	rec := s2.Recovered()
	chainInfo := rec.Chains["ch"]
	if chainInfo.Height != 5 {
		t.Fatalf("recovered height %d after torn tail, want 5", chainInfo.Height)
	}
	led := fabric.RestoreLedger("ch", s2, fabric.ChainState{
		Floor:    chainInfo.Floor,
		Anchor:   chainInfo.Anchor,
		Height:   chainInfo.Height,
		LastHash: chainInfo.LastHash,
	})
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("recovered chain does not verify: %v", err)
	}
	if led.Height() != 5 {
		t.Fatalf("height = %d, want 5 (last durable block)", led.Height())
	}
	// The torn block can be re-appended and the chain continues cleanly.
	if err := led.Append(chain[5]); err != nil {
		t.Fatalf("re-appending torn block: %v", err)
	}
	if got := s2.BlockHeight("ch"); got != 6 {
		t.Fatalf("store height after re-append = %d, want 6", got)
	}
}

func TestNodeStorageCheckpointPrunesSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	batch := [][]byte{make([]byte, 100)}
	for seq := int64(0); seq < 50; seq++ {
		if err := s.AppendDecision(seq, batch); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := filepath.Glob(filepath.Join(dir, "wal", "*"+segSuffix))
	if err := s.SaveCheckpoint(45, []byte("snap")); err != nil {
		t.Fatal(err)
	}
	after, _ := filepath.Glob(filepath.Join(dir, "wal", "*"+segSuffix))
	if len(after) >= len(before) {
		t.Fatalf("checkpoint pruned nothing: %d -> %d segments", len(before), len(after))
	}
}

func TestBlockStoreRandomAccessReads(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so the reads span several files.
	s, err := OpenBlockStore(WALConfig{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	chainA := makeChain(t, 20)
	chainB := makeChain(t, 10)
	// Interleave two channels so wal indices of one channel are not
	// contiguous.
	for i := 0; i < 20; i++ {
		if err := s.Put("alpha", chainA[i]); err != nil {
			t.Fatalf("put alpha %d: %v", i, err)
		}
		if i < 10 {
			if err := s.Put("beta", chainB[i]); err != nil {
				t.Fatalf("put beta %d: %v", i, err)
			}
		}
	}
	check := func(s *BlockStore, label string) {
		t.Helper()
		got, err := s.ReadBlocks("alpha", 5, 7)
		if err != nil {
			t.Fatalf("%s: ReadBlocks: %v", label, err)
		}
		if len(got) != 7 || got[0].Header.Number != 5 || got[6].Header.Number != 11 {
			t.Fatalf("%s: ReadBlocks(alpha,5,7) = %d blocks starting at %d", label, len(got), got[0].Header.Number)
		}
		for i, b := range got {
			if b.Header.Hash() != chainA[5+i].Header.Hash() {
				t.Fatalf("%s: block %d content differs", label, 5+i)
			}
		}
		// Reads past the head clamp; reads at the head return nil.
		if got, err := s.ReadBlocks("beta", 8, 10); err != nil || len(got) != 2 {
			t.Fatalf("%s: clamped read = %d blocks, err %v", label, len(got), err)
		}
		if got, err := s.ReadBlocks("beta", 10, 5); err != nil || got != nil {
			t.Fatalf("%s: read at head = %v, err %v", label, got, err)
		}
		if got, err := s.ReadBlocks("nope", 0, 5); err != nil || got != nil {
			t.Fatalf("%s: unknown channel = %v, err %v", label, got, err)
		}
	}
	check(s, "live")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The number->index map is rebuilt at open: reads work after restart.
	s2, err := OpenBlockStore(WALConfig{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.Chains() // release the recovered frontiers; reads must hit disk
	check(s2, "reopened")
}

func TestNodeStorageLedgerPagesBlocksFromDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// A persistent ledger over a read-capable backend keeps only a bounded
	// tail in memory; Range and VerifyChain page the rest back in.
	led := fabric.NewPersistentLedger("ch", s)
	// Go well past retain plus its trim slack so blocks genuinely page out.
	chain := makeChain(t, fabric.DefaultLedgerRetain*2)
	for _, b := range chain {
		if err := led.Append(b); err != nil {
			t.Fatalf("append %d: %v", b.Header.Number, err)
		}
	}
	if got := led.Height(); got != uint64(len(chain)) {
		t.Fatalf("height = %d, want %d", got, len(chain))
	}
	b0, err := led.Block(0)
	if err != nil {
		t.Fatalf("Block(0): %v", err)
	}
	if b0.Header.Hash() != chain[0].Header.Hash() {
		t.Fatal("paged-in genesis differs")
	}
	mixed, err := led.Range(uint64(len(chain))-60, uint64(len(chain)))
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	if len(mixed) != 60 {
		t.Fatalf("Range = %d blocks, want 60", len(mixed))
	}
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("VerifyChain across the paged boundary: %v", err)
	}
}
