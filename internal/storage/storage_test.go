package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/fabric"
	"repro/internal/wire"
)

// ---- Checkpointer ------------------------------------------------------

func TestCheckpointerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCheckpointer(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, found, err := c.Load(); err != nil || found {
		t.Fatalf("empty load: found=%v err=%v", found, err)
	}
	if err := c.Save(41, []byte("snap-a")); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(97, []byte("snap-b")); err != nil {
		t.Fatal(err)
	}
	seq, snap, found, err := c.Load()
	if err != nil || !found {
		t.Fatalf("load: found=%v err=%v", found, err)
	}
	if seq != 97 || string(snap) != "snap-b" {
		t.Fatalf("load = (%d, %q)", seq, snap)
	}
}

func TestCheckpointerIgnoresStaleTemp(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCheckpointer(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Save(7, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	// A crash mid-Save leaves garbage in the temp file; the stable
	// checkpoint must still load.
	if err := os.WriteFile(filepath.Join(dir, checkpointFile+".tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	seq, snap, found, err := c.Load()
	if err != nil || !found || seq != 7 || string(snap) != "durable" {
		t.Fatalf("load = (%d, %q, %v, %v)", seq, snap, found, err)
	}
}

func TestCheckpointerDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCheckpointer(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Save(3, []byte("snapshot-bytes")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, checkpointFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[10] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Load(); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("corrupt load: %v", err)
	}
}

// ---- BlockStore --------------------------------------------------------

func makeChain(t *testing.T, n int) []*fabric.Block {
	t.Helper()
	blocks := make([]*fabric.Block, 0, n)
	var prev cryptoutil.Digest
	for i := 0; i < n; i++ {
		env := &fabric.Envelope{ChannelID: "ch", ClientID: "c", Payload: []byte{byte(i)}}
		b := fabric.NewBlock(uint64(i), prev, [][]byte{env.Marshal()})
		prev = b.Header.Hash()
		blocks = append(blocks, b)
	}
	if err := fabric.VerifyChain(blocks); err != nil {
		t.Fatalf("test chain invalid: %v", err)
	}
	return blocks
}

func TestBlockStoreRecoverAndIdempotence(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenBlockStore(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	chain := makeChain(t, 5)
	for _, b := range chain {
		if err := s.Put("ch", b); err != nil {
			t.Fatal(err)
		}
	}
	// Replay duplicates are silently absorbed.
	if err := s.Put("ch", chain[2]); err != nil {
		t.Fatalf("duplicate put: %v", err)
	}
	// Gaps are refused.
	gap := makeChain(t, 8)[7]
	if err := s.Put("ch", gap); err == nil {
		t.Fatal("gap put succeeded")
	}
	if h := s.Height("ch"); h != 5 {
		t.Fatalf("height = %d", h)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenBlockStore(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	info := s2.Chains()["ch"]
	if info.Height != 5 || info.Floor != 0 {
		t.Fatalf("recovered frontier = %+v", info)
	}
	if info.LastHash != chain[4].Header.Hash() {
		t.Fatal("recovered last hash differs")
	}
	rec, err := s2.ReadBlocks("ch", 0, 5)
	if err != nil {
		t.Fatalf("reading recovered chain: %v", err)
	}
	if len(rec) != 5 {
		t.Fatalf("recovered %d blocks", len(rec))
	}
	if err := fabric.VerifyChain(rec); err != nil {
		t.Fatalf("recovered chain: %v", err)
	}
	for i, b := range rec {
		if !bytes.Equal(b.Marshal(), chain[i].Marshal()) {
			t.Fatalf("block %d differs after recovery", i)
		}
	}
}

// ---- NodeStorage -------------------------------------------------------

func TestNodeStorageRecoverSequence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seq := int64(0); seq < 10; seq++ {
		if err := s.AppendDecision(seq, [][]byte{{byte(seq)}, {0xee}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SaveCheckpoint(5, []byte("wrapped-snapshot")); err != nil {
		t.Fatal(err)
	}
	chain := makeChain(t, 3)
	for _, b := range chain {
		if err := s.PutBlock("ch", b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovered()
	if rec.CheckpointSeq != 5 || string(rec.Checkpoint) != "wrapped-snapshot" {
		t.Fatalf("checkpoint = (%d, %q)", rec.CheckpointSeq, rec.Checkpoint)
	}
	if len(rec.Decisions) != 4 {
		t.Fatalf("decisions after checkpoint: %d, want 4 (seqs 6..9)", len(rec.Decisions))
	}
	for i, e := range rec.Decisions {
		if e.Seq != int64(6+i) {
			t.Fatalf("decision %d has seq %d", i, e.Seq)
		}
		if len(e.Batch) != 2 || e.Batch[0][0] != byte(e.Seq) {
			t.Fatalf("decision %d batch corrupted: %v", i, e.Batch)
		}
	}
	if info := rec.Chains["ch"]; info.Height != 3 || info.Floor != 0 {
		t.Fatalf("chain frontier recovered: %+v", info)
	}
}

// TestCheckpointGateDefersAsyncSave installs a checkpoint gate, verifies an
// asynchronous save stays deferred while the gate is closed, and that a
// NudgeCheckpoint after opening the gate lands it.
func TestCheckpointGateDefersAsyncSave(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var allow atomic.Bool
	s.SetCheckpointGate(func(seq int64) bool { return allow.Load() })
	for seq := int64(0); seq < 4; seq++ {
		if err := s.AppendDecision(seq, [][]byte{{byte(seq)}}); err != nil {
			t.Fatal(err)
		}
	}
	s.SaveCheckpointAsync(3, []byte("gated-snap"))
	time.Sleep(100 * time.Millisecond)
	if _, _, found, err := s.ckpt.Load(); err != nil || found {
		t.Fatalf("checkpoint saved through a closed gate (found=%v err=%v)", found, err)
	}
	allow.Store(true)
	s.NudgeCheckpoint()
	deadline := time.Now().Add(2 * time.Second)
	for {
		seq, snap, found, err := s.ckpt.Load()
		if err != nil {
			t.Fatal(err)
		}
		if found {
			if seq != 3 || string(snap) != "gated-snap" {
				t.Fatalf("checkpoint = (%d, %q)", seq, snap)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpoint never saved after the gate opened")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointGateClosedAtCloseDropsSave checks the fail-safe direction: a
// save still deferred when the storage closes is simply dropped — recovery
// replays from the previous checkpoint (here: none) with zero data loss.
func TestCheckpointGateClosedAtCloseDropsSave(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.SetCheckpointGate(func(seq int64) bool { return false })
	for seq := int64(0); seq < 4; seq++ {
		if err := s.AppendDecision(seq, [][]byte{{byte(seq)}}); err != nil {
			t.Fatal(err)
		}
	}
	s.SaveCheckpointAsync(3, []byte("never-lands"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovered()
	if rec.CheckpointSeq != -1 {
		t.Fatalf("deferred checkpoint landed anyway: seq %d", rec.CheckpointSeq)
	}
	if len(rec.Decisions) != 4 {
		t.Fatalf("decisions lost with the checkpoint deferred: %d, want 4", len(rec.Decisions))
	}
}

// TestNodeStorageReplayIdempotent re-appends recovered decisions and blocks
// (exactly what a recovering node's re-execution does) and checks nothing
// duplicates: a second recovery sees the identical state.
func TestNodeStorageReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	chain := makeChain(t, 4)
	for seq := int64(0); seq < 6; seq++ {
		if err := s.AppendDecision(seq, [][]byte{{byte(seq)}}); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range chain {
		if err := s.PutBlock("ch", b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := s2.Recovered()
	// Recovery-style replay: push everything we just recovered back in
	// (a recovering node re-executes the logged decisions, which re-seals
	// and re-persists the tail blocks).
	for _, e := range rec.Decisions {
		if err := s2.AppendDecision(e.Seq, e.Batch); err != nil {
			t.Fatal(err)
		}
	}
	replayed, err := s2.ReadBlocks("ch", 0, len(chain))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range replayed {
		if err := s2.PutBlock("ch", b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	rec3 := s3.Recovered()
	if len(rec3.Decisions) != len(rec.Decisions) {
		t.Fatalf("decisions grew under replay: %d -> %d", len(rec.Decisions), len(rec3.Decisions))
	}
	if rec3.Chains["ch"].Height != rec.Chains["ch"].Height {
		t.Fatalf("blocks grew under replay: %d -> %d", rec.Chains["ch"].Height, rec3.Chains["ch"].Height)
	}
}

// TestTornBlockWALRecoversToDurablePrefix hard-closes the block WAL
// mid-write (truncating the tail, as a crash during the last write would)
// and checks that reopening yields a ledger that verifies at the height of
// the last fully durable block.
func TestTornBlockWALRecoversToDurablePrefix(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	chain := makeChain(t, 6)
	for _, b := range chain {
		if err := s.PutBlock("ch", b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	segs, _ := filepath.Glob(filepath.Join(dir, "log", "*"+segSuffix))
	if len(segs) == 0 {
		t.Fatal("no log segments on disk")
	}
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer s2.Close()
	rec := s2.Recovered()
	chainInfo := rec.Chains["ch"]
	if chainInfo.Height != 5 {
		t.Fatalf("recovered height %d after torn tail, want 5", chainInfo.Height)
	}
	led := fabric.RestoreLedger("ch", s2, fabric.ChainState{
		Floor:    chainInfo.Floor,
		Anchor:   chainInfo.Anchor,
		Height:   chainInfo.Height,
		LastHash: chainInfo.LastHash,
	})
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("recovered chain does not verify: %v", err)
	}
	if led.Height() != 5 {
		t.Fatalf("height = %d, want 5 (last durable block)", led.Height())
	}
	// The torn block can be re-appended and the chain continues cleanly.
	if err := led.Append(chain[5]); err != nil {
		t.Fatalf("re-appending torn block: %v", err)
	}
	if got := s2.BlockHeight("ch"); got != 6 {
		t.Fatalf("store height after re-append = %d, want 6", got)
	}
}

func TestNodeStorageCheckpointPrunesSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	batch := [][]byte{make([]byte, 100)}
	for seq := int64(0); seq < 50; seq++ {
		if err := s.AppendDecision(seq, batch); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := filepath.Glob(filepath.Join(dir, "log", "*"+segSuffix))
	if err := s.SaveCheckpoint(45, []byte("snap")); err != nil {
		t.Fatal(err)
	}
	after, _ := filepath.Glob(filepath.Join(dir, "log", "*"+segSuffix))
	if len(after) >= len(before) {
		t.Fatalf("checkpoint pruned nothing: %d -> %d segments", len(before), len(after))
	}
}

func TestBlockStoreRandomAccessReads(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so the reads span several files.
	s, err := OpenBlockStore(WALConfig{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	chainA := makeChain(t, 20)
	chainB := makeChain(t, 10)
	// Interleave two channels so wal indices of one channel are not
	// contiguous.
	for i := 0; i < 20; i++ {
		if err := s.Put("alpha", chainA[i]); err != nil {
			t.Fatalf("put alpha %d: %v", i, err)
		}
		if i < 10 {
			if err := s.Put("beta", chainB[i]); err != nil {
				t.Fatalf("put beta %d: %v", i, err)
			}
		}
	}
	check := func(s *BlockStore, label string) {
		t.Helper()
		got, err := s.ReadBlocks("alpha", 5, 7)
		if err != nil {
			t.Fatalf("%s: ReadBlocks: %v", label, err)
		}
		if len(got) != 7 || got[0].Header.Number != 5 || got[6].Header.Number != 11 {
			t.Fatalf("%s: ReadBlocks(alpha,5,7) = %d blocks starting at %d", label, len(got), got[0].Header.Number)
		}
		for i, b := range got {
			if b.Header.Hash() != chainA[5+i].Header.Hash() {
				t.Fatalf("%s: block %d content differs", label, 5+i)
			}
		}
		// Reads past the head clamp; reads at the head return nil.
		if got, err := s.ReadBlocks("beta", 8, 10); err != nil || len(got) != 2 {
			t.Fatalf("%s: clamped read = %d blocks, err %v", label, len(got), err)
		}
		if got, err := s.ReadBlocks("beta", 10, 5); err != nil || got != nil {
			t.Fatalf("%s: read at head = %v, err %v", label, got, err)
		}
		if got, err := s.ReadBlocks("nope", 0, 5); err != nil || got != nil {
			t.Fatalf("%s: unknown channel = %v, err %v", label, got, err)
		}
	}
	check(s, "live")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The number->index map is rebuilt at open: reads work after restart.
	s2, err := OpenBlockStore(WALConfig{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.Chains() // release the recovered frontiers; reads must hit disk
	check(s2, "reopened")
}

func TestNodeStorageLedgerPagesBlocksFromDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// A persistent ledger over a read-capable backend keeps only a bounded
	// tail in memory; Range and VerifyChain page the rest back in.
	led := fabric.NewPersistentLedger("ch", s)
	// Go well past retain plus its trim slack so blocks genuinely page out.
	chain := makeChain(t, fabric.DefaultLedgerRetain*2)
	for _, b := range chain {
		if err := led.Append(b); err != nil {
			t.Fatalf("append %d: %v", b.Header.Number, err)
		}
	}
	if got := led.Height(); got != uint64(len(chain)) {
		t.Fatalf("height = %d, want %d", got, len(chain))
	}
	b0, err := led.Block(0)
	if err != nil {
		t.Fatalf("Block(0): %v", err)
	}
	if b0.Header.Hash() != chain[0].Header.Hash() {
		t.Fatal("paged-in genesis differs")
	}
	mixed, err := led.Range(uint64(len(chain))-60, uint64(len(chain)))
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	if len(mixed) != 60 {
		t.Fatalf("Range = %d blocks, want 60", len(mixed))
	}
	if err := led.VerifyChain(); err != nil {
		t.Fatalf("VerifyChain across the paged boundary: %v", err)
	}
}

// ---- unified commit log -------------------------------------------------

// TestCommitWaveSingleFsyncForDecisionAndBlock is the acceptance check of
// the unified commit log: a decision record and the block record it
// sealed, enqueued while the wave is stalled at Options.SyncHook, commit
// together in ONE wave with exactly ONE fsync (counted at the WAL's
// fsync choke point). Two physical logs would have paid two.
func TestCommitWaveSingleFsyncForDecisionAndBlock(t *testing.T) {
	release := make(chan struct{})
	var waves atomic.Uint64
	s, err := Open(t.TempDir(), Options{SyncHook: func() {
		waves.Add(1)
		<-release
	}})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	s.Recovered()

	// Both kinds pending in the same stalled wave: the decision and the
	// block it would have sealed.
	decTok := s.AppendDecisionAsync(0, [][]byte{[]byte("op")})
	blkTok, err := s.PutBlockAsync("ch", makeChain(t, 1)[0])
	if err != nil {
		t.Fatalf("put async: %v", err)
	}
	time.Sleep(20 * time.Millisecond) // let both enqueues land behind the hook
	syncsBefore := s.wal.SyncCount()
	wavesBefore := waves.Load()

	close(release)
	if err := decTok.Wait(); err != nil {
		t.Fatalf("decision token: %v", err)
	}
	if err := blkTok.Wait(); err != nil {
		t.Fatalf("block token: %v", err)
	}

	if got := s.wal.SyncCount() - syncsBefore; got != 1 {
		t.Fatalf("decision+block wave issued %d fsyncs, want exactly 1", got)
	}
	if got := waves.Load(); got != wavesBefore {
		// Both tokens completed in the wave that was stalled: no second
		// wave ran for the block record.
		t.Fatalf("expected one joint wave, saw %d extra", got-wavesBefore)
	}
	// And the records really multiplexed into one log, in enqueue order.
	if decTok.Index() != 1 || blkTok.(*Token).Index() != 2 {
		t.Fatalf("record indices = (%d, %d), want (1, 2)", decTok.Index(), blkTok.(*Token).Index())
	}
}

// interleaveDecisionsAndBlocks drives n decision+block pairs through a
// NodeStorage (decision seq i seals block i), the unified log's natural
// record pattern.
func interleaveDecisionsAndBlocks(t *testing.T, s *NodeStorage, chain []*fabric.Block) {
	t.Helper()
	for i, b := range chain {
		if err := s.AppendDecision(int64(i), [][]byte{{byte(i)}}); err != nil {
			t.Fatalf("decision %d: %v", i, err)
		}
		if err := s.PutBlock("ch", b); err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
	}
}

// logSegments lists the unified log's segment files.
func logSegments(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "log", "*"+segSuffix))
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

// TestTwoConditionReclamationCheckpointFirst is one of the two crash
// windows of the shared-segment reclamation rule: the consensus
// checkpoint advances (decision records become dead) while the retention
// floor stays put (block records still live). No segment may be deleted
// yet — and a kill in that window must recover every unpruned block and
// replay the live decisions with no gap. Compaction afterwards, with
// both conditions finally true, completes the reclamation.
func TestTwoConditionReclamationCheckpointFirst(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	chain := makeChain(t, 30)
	interleaveDecisionsAndBlocks(t, s, chain)
	before := len(logSegments(t, dir))
	if before < 4 {
		t.Fatalf("want several shared segments, got %d", before)
	}

	// Condition 1 only: checkpoint at seq 15 kills decisions 0..15, but
	// every block is still above the (zero) retention floor, so the
	// segments must survive.
	if err := s.SaveCheckpoint(15, []byte("snap")); err != nil {
		t.Fatal(err)
	}
	if got := len(logSegments(t, dir)); got != before {
		t.Fatalf("checkpoint alone deleted segments (%d -> %d) despite live blocks", before, got)
	}

	// Kill in the window (dir snapshot, not a graceful close).
	crashDir := t.TempDir()
	copyTree(t, dir, crashDir)
	crashed, err := Open(crashDir, Options{SegmentBytes: 1024})
	if err != nil {
		t.Fatalf("reopen crash snapshot: %v", err)
	}
	rec := crashed.Recovered()
	if rec.CheckpointSeq != 15 {
		t.Fatalf("recovered checkpoint %d, want 15", rec.CheckpointSeq)
	}
	if len(rec.Decisions) != 14 || rec.Decisions[0].Seq != 16 || rec.Decisions[13].Seq != 29 {
		t.Fatalf("recovered %d decisions (%v..), want gapless 16..29", len(rec.Decisions), rec.Decisions[0].Seq)
	}
	for i, e := range rec.Decisions {
		if e.Seq != int64(16+i) {
			t.Fatalf("decision gap: entry %d has seq %d", i, e.Seq)
		}
	}
	got, err := crashed.ReadBlocks("ch", 0, 30)
	if err != nil || len(got) != 30 {
		t.Fatalf("unpruned blocks after crash: %d, err %v", len(got), err)
	}
	if err := fabric.VerifyChain(got); err != nil {
		t.Fatalf("recovered chain: %v", err)
	}
	crashed.Close()

	// Condition 2 lands: compaction raises the floor past the old
	// segments, and with both conditions true they are reclaimed.
	if _, err := s.CompactTo(map[string]uint64{"ch": 25}); err != nil {
		t.Fatal(err)
	}
	if got := len(logSegments(t, dir)); got >= before {
		t.Fatalf("compaction after checkpoint reclaimed nothing: %d -> %d segments", before, got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTwoConditionReclamationRetentionFirst is the reverse crash window:
// the retention floor advances (blocks become dead) while the consensus
// checkpoint lags (decision records still live). The compaction's
// manifest lands but no segment may be deleted — and a kill in that
// window must replay ALL decisions gapless and serve the full retained
// window. A later checkpoint completes the reclamation.
func TestTwoConditionReclamationRetentionFirst(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	chain := makeChain(t, 30)
	interleaveDecisionsAndBlocks(t, s, chain)
	before := len(logSegments(t, dir))
	if before < 4 {
		t.Fatalf("want several shared segments, got %d", before)
	}

	// Condition 2 only: the floor rises to 20, but decision 0 is still
	// live (no checkpoint), pinning every segment.
	applied, err := s.CompactTo(map[string]uint64{"ch": 20})
	if err != nil || applied["ch"] != 20 {
		t.Fatalf("CompactTo: applied %v, err %v", applied, err)
	}
	if got := len(logSegments(t, dir)); got != before {
		t.Fatalf("compaction deleted segments (%d -> %d) despite live decisions", before, got)
	}

	// Kill in the window.
	crashDir := t.TempDir()
	copyTree(t, dir, crashDir)
	crashed, err := Open(crashDir, Options{SegmentBytes: 1024})
	if err != nil {
		t.Fatalf("reopen crash snapshot: %v", err)
	}
	rec := crashed.Recovered()
	if len(rec.Decisions) != 30 {
		t.Fatalf("recovered %d decisions, want all 30 (no checkpoint yet)", len(rec.Decisions))
	}
	for i, e := range rec.Decisions {
		if e.Seq != int64(i) {
			t.Fatalf("decision gap: entry %d has seq %d", i, e.Seq)
		}
	}
	if info := rec.Chains["ch"]; info.Floor != 20 || info.Height != 30 {
		t.Fatalf("recovered frontier = %+v, want floor 20 height 30", info)
	}
	got, err := crashed.ReadBlocks("ch", 20, 30)
	if err != nil || len(got) != 10 || got[0].Header.Number != 20 {
		t.Fatalf("retained window after crash: %d blocks, err %v", len(got), err)
	}
	if err := fabric.VerifyChain(got); err != nil {
		t.Fatalf("retained chain: %v", err)
	}
	if _, err := crashed.ReadBlocks("ch", 0, 5); !errors.Is(err, fabric.ErrPruned) {
		t.Fatalf("below-floor read after crash: %v", err)
	}
	crashed.Close()

	// Condition 1 lands: the checkpoint kills the decisions, and the
	// dead segments go.
	if err := s.SaveCheckpoint(29, []byte("snap")); err != nil {
		t.Fatal(err)
	}
	if got := len(logSegments(t, dir)); got >= before {
		t.Fatalf("checkpoint after compaction reclaimed nothing: %d -> %d segments", before, got)
	}
	// The survivors still serve the whole retained window.
	got2, err := s.ReadBlocks("ch", 20, 30)
	if err != nil || len(got2) != 10 {
		t.Fatalf("retained window after reclamation: %d blocks, err %v", len(got2), err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRebaseMarkerReplaysWithoutManifest covers the channel-meta record's
// crash window: the rebase marker is fsynced into the unified log but
// the node dies before the manifest rewrite. The typed recovery walk
// must replay the marker and come back with the rebased chain.
func TestRebaseMarkerReplaysWithoutManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Recovered()
	chain := makeChain(t, 5)
	interleaveDecisionsAndBlocks(t, s, chain)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash window by appending the marker directly to the
	// raw log: exactly the bytes RebaseBlocks fsyncs before it touches
	// the manifest (which here never gets written).
	anchor := cryptoutil.Hash([]byte("pruned-predecessor"))
	wal, err := OpenWAL(WALConfig{Dir: filepath.Join(dir, "log")})
	if err != nil {
		t.Fatal(err)
	}
	w := wire.NewWriter(64)
	w.PutByte(recChannelMeta)
	w.PutByte(metaRebase)
	w.PutString("ch")
	w.PutUint64(20)
	w.PutRaw(anchor[:])
	if _, err := wal.Append(w.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after marker-only rebase: %v", err)
	}
	defer s2.Close()
	rec := s2.Recovered()
	info := rec.Chains["ch"]
	if info.Floor != 20 || info.Height != 20 || info.Anchor != anchor {
		t.Fatalf("recovered frontier = %+v, want rebased floor/height 20", info)
	}
	// Decisions replay unaffected by the block-side rebase.
	if len(rec.Decisions) != 5 {
		t.Fatalf("recovered %d decisions, want 5", len(rec.Decisions))
	}
	b20 := fabric.NewBlock(20, anchor, [][]byte{chain[0].Envelopes[0]})
	if err := s2.PutBlock("ch", b20); err != nil {
		t.Fatalf("put after recovered rebase: %v", err)
	}
	if _, err := s2.ReadBlocks("ch", 0, 5); !errors.Is(err, fabric.ErrPruned) {
		t.Fatalf("stale read after recovered rebase: %v", err)
	}
}
