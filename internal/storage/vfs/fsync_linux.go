//go:build linux

package vfs

import (
	"os"
	"syscall"
)

// datasync flushes a segment file's data without forcing a metadata
// journal commit. Segments are preallocated to their full size at
// creation, so an append never changes the inode's size — fdatasync is
// then sufficient for durability (the write-ahead guarantee covers
// record bytes; sizes are recovered by the CRC walk, not the inode) and
// markedly cheaper than fsync on journaling filesystems.
func datasync(f *os.File) error {
	return syscall.Fdatasync(int(f.Fd()))
}

// preallocate reserves size bytes for a fresh segment (extents allocated,
// i_size set), so subsequent appends overwrite preallocated space instead
// of extending the file. Filesystems without fallocate support degrade
// gracefully: appends extend the file as before and fdatasync includes
// the size updates.
func preallocate(f *os.File, size int64) error {
	err := syscall.Fallocate(int(f.Fd()), 0, 0, size)
	if err == syscall.EOPNOTSUPP || err == syscall.ENOSYS {
		return nil
	}
	return err
}
