//go:build !linux

package vfs

import "os"

// datasync falls back to a full fsync on platforms without fdatasync.
func datasync(f *os.File) error {
	return f.Sync()
}

// preallocate is a no-op on platforms without fallocate: appends extend
// the file as they always did.
func preallocate(_ *os.File, _ int64) error {
	return nil
}
