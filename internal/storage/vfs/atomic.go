package vfs

import (
	"fmt"
	"log/slog"
	"os"
)

// PrevSuffix names the retained previous generation of atomically
// replaced single-file artifacts (checkpoint, retention manifest): loads
// that find the stable copy rotten fall back to it.
const PrevSuffix = ".prev"

// SaveAtomicWithPrev is the shared tmp+fsync+demote+rename+dir-fsync
// sequence of the single-file durable artifacts: buf replaces final
// atomically, and the displaced stable copy survives one generation as
// final+PrevSuffix. A crash anywhere in the sequence leaves at least one
// good copy under one of the two names.
func SaveAtomicWithPrev(fs FS, dir, final string, buf []byte) error {
	fs = OrOS(fs)
	tmp := final + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("storage: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	// Demote the current stable copy. A missing stable copy (first save)
	// is fine; any other demotion error is only logged — keeping the NEW
	// state is always preferable to failing the save over the backup
	// bookkeeping.
	if err := fs.Rename(final, final+PrevSuffix); err != nil && !os.IsNotExist(err) {
		slog.Warn("storage: demoting previous artifact generation failed",
			"file", final, "err", err)
	}
	if err := fs.Rename(tmp, final); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}
