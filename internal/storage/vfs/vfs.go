// Package vfs is the filesystem seam under the storage layer: a small
// interface pair (FS, File) covering exactly the operations the WAL,
// checkpointer, retention manifest, and membership record perform, with a
// passthrough OS implementation as the default. The seam exists so a
// fault-injecting filesystem (internal/storage/faultfs) can sit under the
// whole durability stack — bit-rot, torn writes, fsync errors, ENOSPC —
// without the production path paying more than one interface indirection
// per syscall.
package vfs

import (
	"io"
	"os"
)

// File is an open file under the seam. It mirrors the *os.File methods
// the storage layer uses, plus the two durability primitives that were
// previously package-private helpers (Datasync, Preallocate) so their
// platform-specific implementations live with the seam.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Closer
	// Sync is a full fsync (data + metadata).
	Sync() error
	// Datasync flushes file data without forcing a metadata journal
	// commit (fdatasync on Linux; falls back to Sync elsewhere).
	Datasync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
	// Preallocate reserves size bytes (extents allocated, i_size set) so
	// appends overwrite reserved space instead of growing the inode.
	// Filesystems without fallocate support are a graceful no-op.
	Preallocate(size int64) error
	Name() string
}

// FS is the filesystem operations surface of the storage layer.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]os.DirEntry, error)
	MkdirAll(path string, perm os.FileMode) error
	Remove(name string) error
	Rename(oldpath, newpath string) error
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory so entry creations, deletions, and
	// renames survive a crash.
	SyncDir(dir string) error
}

// OS is the passthrough implementation over the real filesystem.
type OS struct{}

type osFile struct{ *os.File }

func (f osFile) Datasync() error              { return datasync(f.File) }
func (f osFile) Preallocate(size int64) error { return preallocate(f.File, size) }

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (OS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (OS) ReadFile(name string) ([]byte, error)          { return os.ReadFile(name) }
func (OS) ReadDir(name string) ([]os.DirEntry, error)    { return os.ReadDir(name) }
func (OS) MkdirAll(path string, perm os.FileMode) error  { return os.MkdirAll(path, perm) }
func (OS) Remove(name string) error                      { return os.Remove(name) }
func (OS) Rename(oldpath, newpath string) error          { return os.Rename(oldpath, newpath) }
func (OS) Truncate(name string, size int64) error        { return os.Truncate(name, size) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// OrOS normalizes a possibly-nil FS to the passthrough default, so
// callers thread an optional seam without nil checks at every call site.
func OrOS(fs FS) FS {
	if fs == nil {
		return OS{}
	}
	return fs
}
