// Package retention bounds the on-disk size of the ordering service's
// block store. The commit log is append-only, so without intervention a
// node's ledger grows with chain length forever — a non-starter for
// sustained traffic. Retention follows the discipline Fabric applies to
// the orderer ledger (Sousa, Bessani & Vukolić, DSN 2018; Barger et al.,
// 2021): once downstream peers have caught up, history below a retention
// floor is prunable, and a snapshot manifest — not the chain prefix — is
// what recovery trusts. Because blocks share one physical log with
// consensus decisions, reclamation is two-condition: a segment is
// deletable only when it holds no live block (below every channel's
// floor) AND no live decision (behind the consensus checkpoint); the
// manifest records the decision floor and a per-segment liveness summary
// so that rule is explicit on disk.
//
// The package owns three pieces:
//
//   - Manifest: the atomic snapshot written before any segment is
//     deleted. Per channel it records the first retained block, that
//     block's previous-hash anchor (so recovery re-verifies linkage
//     without the pruned prefix), and the block-number → WAL-record index
//     of every retained block, letting recovery seed its read index
//     without decoding the whole retained window.
//   - Policy: when to compact (retained-block count or retained bytes)
//     and how far (the per-channel floors).
//   - Manager: a single-flight driver that runs compaction off the hot
//     path and reports applied floors so in-memory ledgers can advance.
//
// Crash windows are covered by ordering: the manifest is written (tmp +
// rename + dir fsync) before any deletion, deletions proceed oldest
// first, and recovery loads the manifest first and re-applies any
// deletions a crash interrupted. A node killed between the manifest
// write and the last deletion therefore recovers a contiguous chain from
// the manifest's floor either way.
package retention

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/cryptoutil"
	"repro/internal/storage/vfs"
	"repro/internal/wire"
)

// manifestMagic guards against reading a foreign file as a manifest.
// "RMF2": the unified-commit-log format, which added the decision floor
// and the per-segment liveness summary (a segment of the shared log is
// reclaimable only when it is both behind the consensus checkpoint and
// below every channel's retention floor).
const manifestMagic = 0x524d4632 // "RMF2"

// ManifestFile is the stable manifest name inside a block-store
// directory.
const ManifestFile = "MANIFEST"

// ErrManifestCorrupt reports a manifest that fails its CRC or decodes
// inconsistently.
var ErrManifestCorrupt = errors.New("retention: manifest corrupt")

// ChannelManifest is one channel's snapshot state.
type ChannelManifest struct {
	// Floor is the first retained block number; everything below it is
	// (or is about to be) pruned.
	Floor uint64
	// Anchor is the PrevHash of block Floor: the hash of the newest
	// pruned header. Recovery checks the first retained block links into
	// it, so pruning never silently admits a forked prefix. Zero when
	// Floor is 0.
	Anchor cryptoutil.Digest
	// Index maps retained block numbers to WAL record indices:
	// Index[i] is the WAL index of block Floor+i at snapshot time.
	// Strictly increasing; delta-encoded on disk.
	Index []uint64
}

// SegmentLiveness summarizes one shared-log segment's live content at
// snapshot time: the two-condition reclamation rule reads directly off
// it — a segment is deletable only when LiveBlocks is zero (every block
// record in it sits below its channel's retention floor) AND its whole
// index span lies below the decision floor (every decision record in it
// is behind the consensus checkpoint).
type SegmentLiveness struct {
	// First and Last bound the record indices the segment holds.
	First, Last uint64
	// LiveBlocks counts the segment's block records at or above their
	// channel's retention floor (i.e. pointed at by some channel index).
	LiveBlocks uint64
}

// Dead reports whether the segment was reclaimable at snapshot time
// under the two-condition rule, given the manifest's decision floor.
func (s SegmentLiveness) Dead(decisionFloor uint64) bool {
	return s.LiveBlocks == 0 && s.Last < decisionFloor
}

// Manifest is the snapshot the block store trusts at open: everything
// below KeepIdx holds no live block, everything covered by the
// per-channel indexes needs no block decoding at recovery, and records
// above Frontier are replayed normally. Since the block store shares one
// physical commit log with the decision log, the manifest also records
// the decision-side liveness floor and a per-segment summary, so the
// reclamation decision (and its re-application after a crash) is the
// explicit two-condition rule rather than block-side bookkeeping alone.
type Manifest struct {
	// KeepIdx is the block-liveness floor of the shared commit log: every
	// record with index < KeepIdx belongs to some channel's pruned block
	// prefix (decision records have their own floor below). Survivors
	// inside a kept segment are simply skipped at recovery.
	KeepIdx uint64
	// DecisionFloor is the decision-liveness floor at snapshot time: every
	// record below it holds no decision the newest consensus checkpoint
	// has not subsumed. Segments are deleted only below
	// min(KeepIdx, DecisionFloor).
	DecisionFloor uint64
	// Frontier is the highest log index covered by the channel indexes
	// (0 when no blocks are retained). Recovery decodes no block record
	// at or below it.
	Frontier uint64
	// Segments is the per-segment liveness summary at snapshot time,
	// oldest first.
	Segments []SegmentLiveness
	// Channels is the per-channel snapshot state.
	Channels map[string]ChannelManifest
}

// Marshal encodes the manifest (magic, body, CRC32).
func (m *Manifest) Marshal() []byte {
	w := wire.NewWriter(64 + 24*len(m.Segments) + 48*len(m.Channels))
	w.PutUint32(manifestMagic)
	w.PutUint64(m.KeepIdx)
	w.PutUint64(m.DecisionFloor)
	w.PutUint64(m.Frontier)
	w.PutUvarint(uint64(len(m.Segments)))
	for _, seg := range m.Segments {
		w.PutUint64(seg.First)
		w.PutUint64(seg.Last)
		w.PutUvarint(seg.LiveBlocks)
	}
	names := make([]string, 0, len(m.Channels))
	for name := range m.Channels {
		names = append(names, name)
	}
	sort.Strings(names)
	w.PutUvarint(uint64(len(names)))
	for _, name := range names {
		ch := m.Channels[name]
		w.PutString(name)
		w.PutUint64(ch.Floor)
		w.PutRaw(ch.Anchor[:])
		w.PutUvarint(uint64(len(ch.Index)))
		prev := uint64(0)
		for i, idx := range ch.Index {
			if i == 0 {
				w.PutUvarint(idx)
			} else {
				w.PutUvarint(idx - prev) // strictly increasing: delta fits
			}
			prev = idx
		}
	}
	body := w.Bytes()
	return binary.BigEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
}

// UnmarshalManifest decodes a manifest written by Marshal.
func UnmarshalManifest(raw []byte) (*Manifest, error) {
	if len(raw) < 8 {
		return nil, ErrManifestCorrupt
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return nil, ErrManifestCorrupt
	}
	r := wire.NewReader(body)
	if r.Uint32() != manifestMagic {
		return nil, ErrManifestCorrupt
	}
	m := &Manifest{
		KeepIdx:       r.Uint64(),
		DecisionFloor: r.Uint64(),
		Frontier:      r.Uint64(),
		Channels:      make(map[string]ChannelManifest),
	}
	nseg := r.Uvarint()
	if r.Err() != nil || nseg > 1<<20 {
		return nil, ErrManifestCorrupt
	}
	m.Segments = make([]SegmentLiveness, 0, nseg)
	for i := uint64(0); i < nseg; i++ {
		m.Segments = append(m.Segments, SegmentLiveness{
			First:      r.Uint64(),
			Last:       r.Uint64(),
			LiveBlocks: r.Uvarint(),
		})
	}
	count := r.Uvarint()
	if count > 1<<20 {
		return nil, ErrManifestCorrupt
	}
	for i := uint64(0); i < count; i++ {
		name := r.String()
		ch := ChannelManifest{Floor: r.Uint64()}
		copy(ch.Anchor[:], r.Raw(cryptoutil.DigestSize))
		n := r.Uvarint()
		if r.Err() != nil || n > 1<<32 {
			return nil, ErrManifestCorrupt
		}
		ch.Index = make([]uint64, 0, n)
		idx := uint64(0)
		for j := uint64(0); j < n; j++ {
			d := r.Uvarint()
			if j == 0 {
				idx = d
			} else {
				idx += d
			}
			ch.Index = append(ch.Index, idx)
		}
		m.Channels[name] = ch
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrManifestCorrupt, err)
	}
	return m, nil
}

// SaveManifest atomically replaces the manifest under dir: write to a
// temp file, fsync, demote the stable copy to its .prev generation,
// rename over the stable name, fsync the directory. Either the old or
// the new manifest governs after a crash, never a half-written one, and
// one previous generation survives as a bit-rot fallback. fsys is the
// filesystem seam (nil = the real OS filesystem).
func SaveManifest(fsys vfs.FS, dir string, m *Manifest) error {
	final := filepath.Join(dir, ManifestFile)
	if err := vfs.SaveAtomicWithPrev(fsys, dir, final, m.Marshal()); err != nil {
		return fmt.Errorf("retention: %w", err)
	}
	return nil
}

// LoadManifest reads the manifest under dir. found is false when none
// was ever written (a store that never compacted). A stale temp file
// from an interrupted save is ignored. A stable manifest that fails its
// CRC falls back to the retained .prev generation: an older manifest only
// makes recovery's log walk start earlier (it seeds lower floors), the
// walk itself rebuilds the true frontier.
func LoadManifest(fsys vfs.FS, dir string) (m *Manifest, found bool, err error) {
	fsys = vfs.OrOS(fsys)
	stable := filepath.Join(dir, ManifestFile)
	m, found, err = loadManifestFile(fsys, stable)
	if err == nil {
		return m, found, nil
	}
	pm, pfound, perr := loadManifestFile(fsys, stable+vfs.PrevSuffix)
	if perr == nil && pfound {
		slog.Warn("retention: manifest corrupt; falling back to previous generation",
			"file", stable, "err", err)
		return pm, true, nil
	}
	return nil, false, err
}

func loadManifestFile(fsys vfs.FS, path string) (m *Manifest, found bool, err error) {
	raw, err := fsys.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("retention: %w", err)
	}
	m, err = UnmarshalManifest(raw)
	if err != nil {
		return nil, false, err
	}
	return m, true, nil
}

// ---- policy ------------------------------------------------------------

// ChannelState is one channel's retained window as the store reports it.
type ChannelState struct {
	// Floor is the first retained block number.
	Floor uint64
	// Height is the next block number to append (Height-Floor blocks are
	// retained).
	Height uint64
	// Bytes is the on-disk size of the channel's retained block records
	// (framed record bytes in the shared log). Zero when the store does
	// not account per channel; the bytes budget then falls back to
	// uniform halving.
	Bytes int64
}

// State is the store-wide input to a retention decision.
type State struct {
	// Channels is the per-channel retained window.
	Channels map[string]ChannelState
	// Bytes is the block store's current on-disk size.
	Bytes int64
}

// Policy decides when the block store compacts and how far. The zero
// policy never compacts.
type Policy struct {
	// RetainBlocks bounds the retained blocks per channel: a channel
	// whose window exceeds it (plus slack) is compacted back down to it.
	// Zero disables the count trigger.
	RetainBlocks uint64
	// RetainBytes bounds the block store's total on-disk size: when
	// exceeded, each channel is trimmed back to its weighted share of
	// the budget (whole WAL segments are reclaimed only once the floors
	// cross segment boundaries, so the bound is met up to one segment of
	// slack). Zero disables the bytes trigger.
	RetainBytes int64
	// Weights biases the bytes budget across channels: channel c's share
	// of RetainBytes is Weights[c] / Σ weights over live channels, so a
	// heavy channel can be granted a larger retained window than a light
	// one instead of everyone halving uniformly. Unlisted (or
	// non-positive) entries weigh 1; nil means every channel weighs 1
	// (equal shares).
	Weights map[string]float64
	// CheckSlack delays the count trigger until a channel's window
	// exceeds RetainBlocks by this many blocks, so compaction (a
	// manifest fsync) amortizes instead of running per block. Zero
	// derives RetainBlocks/4, minimum 1.
	CheckSlack uint64
}

// Weight returns channel's bytes-budget weight (1 when unlisted).
func (p Policy) Weight(channel string) float64 {
	if w, ok := p.Weights[channel]; ok && w > 0 {
		return w
	}
	return 1
}

// Enabled reports whether the policy ever compacts.
func (p Policy) Enabled() bool { return p.RetainBlocks > 0 || p.RetainBytes > 0 }

func (p Policy) slack() uint64 {
	if p.CheckSlack > 0 {
		return p.CheckSlack
	}
	s := p.RetainBlocks / 4
	if s < 1 {
		s = 1
	}
	return s
}

// Due reports whether the state warrants a compaction.
func (p Policy) Due(st State) bool {
	if p.RetainBytes > 0 && st.Bytes > p.RetainBytes {
		return true
	}
	if p.RetainBlocks > 0 {
		for _, ch := range st.Channels {
			if ch.Height-ch.Floor > p.RetainBlocks+p.slack() {
				return true
			}
		}
	}
	return false
}

// Plan computes the per-channel target floors for one compaction, or nil
// when nothing is due. Floors never regress and always leave at least
// one block retained (the chain head anchors fetches and head probes).
func (p Policy) Plan(st State) map[string]uint64 {
	if !p.Due(st) {
		return nil
	}
	return p.plan(st)
}

// ForcePlan computes target floors without the Due gate or its slack:
// the explicit admin trigger prunes everything the policy allows, even
// when the periodic trigger would still be coasting on slack.
func (p Policy) ForcePlan(st State) map[string]uint64 {
	if !p.Enabled() {
		return nil
	}
	return p.plan(st)
}

func (p Policy) plan(st State) map[string]uint64 {
	floors := make(map[string]uint64)
	overBytes := p.RetainBytes > 0 && st.Bytes > p.RetainBytes
	var sumW float64
	if overBytes {
		for name, ch := range st.Channels {
			if ch.Height > 0 {
				sumW += p.Weight(name)
			}
		}
	}
	for name, ch := range st.Channels {
		if ch.Height == 0 {
			continue
		}
		floor := ch.Floor
		if p.RetainBlocks > 0 && ch.Height-ch.Floor > p.RetainBlocks {
			floor = ch.Height - p.RetainBlocks
		}
		if overBytes {
			if target := p.bytesFloor(name, ch, sumW); target > floor {
				floor = target
			}
		}
		if floor > ch.Height-1 {
			floor = ch.Height - 1
		}
		if floor > ch.Floor {
			floors[name] = floor
		}
	}
	if len(floors) == 0 {
		return nil
	}
	return floors
}

// bytesFloor resolves the bytes trigger for one channel: trim the channel
// down to its weighted share of the RetainBytes budget, estimating blocks
// to drop from the channel's average retained record size. A store that
// does not account bytes per channel (Bytes == 0) falls back to dropping
// the older half of the window.
func (p Policy) bytesFloor(name string, ch ChannelState, sumW float64) uint64 {
	retained := ch.Height - ch.Floor
	if retained == 0 {
		return ch.Floor
	}
	if ch.Bytes <= 0 {
		return ch.Floor + retained/2
	}
	budget := int64(float64(p.RetainBytes) * p.Weight(name) / sumW)
	if ch.Bytes <= budget {
		return ch.Floor // within its share: this channel keeps its window
	}
	avg := float64(ch.Bytes) / float64(retained)
	drop := uint64(math.Ceil(float64(ch.Bytes-budget) / avg))
	if drop > retained {
		drop = retained
	}
	return ch.Floor + drop
}

// ---- manager -----------------------------------------------------------

// Store is the compaction surface the manager drives (implemented by
// storage.BlockStore / storage.NodeStorage).
type Store interface {
	// RetentionState reports the current retained windows and on-disk
	// size.
	RetentionState() State
	// CompactTo snapshots and prunes so that each listed channel retains
	// blocks from its target floor upward. It returns the floors
	// actually applied.
	CompactTo(floors map[string]uint64) (map[string]uint64, error)
}

// Manager runs policy-driven compaction off the hot path: MaybeCompact
// is cheap enough to call per block, starts at most one compaction at a
// time, and reports applied floors through the onApplied callback (the
// ordering node advances its in-memory ledger floors there).
type Manager struct {
	store     Store
	policy    Policy
	onApplied func(floors map[string]uint64)

	mu      sync.Mutex
	running bool
	closed  bool
	wg      sync.WaitGroup
}

// NewManager creates a manager; onApplied may be nil.
func NewManager(store Store, policy Policy, onApplied func(map[string]uint64)) *Manager {
	return &Manager{store: store, policy: policy, onApplied: onApplied}
}

// Policy returns the manager's policy.
func (m *Manager) Policy() Policy { return m.policy }

// MaybeCompact starts a background compaction when the policy says one
// is due and none is already running.
func (m *Manager) MaybeCompact() {
	if !m.policy.Enabled() || !m.policy.Due(m.store.RetentionState()) {
		return
	}
	m.mu.Lock()
	if m.running || m.closed {
		m.mu.Unlock()
		return
	}
	m.running = true
	m.wg.Add(1)
	m.mu.Unlock()
	go func() {
		defer m.wg.Done()
		err := m.compactOnce()
		m.mu.Lock()
		m.running = false
		m.mu.Unlock()
		if err != nil {
			fmt.Fprintf(os.Stderr, "retention: compaction failed: %v\n", err)
		}
	}()
}

// Compact runs one compaction synchronously (the explicit admin
// trigger): unlike the policy-driven background pass, it skips the
// trigger slack and prunes everything the policy allows right now. A
// no-op when retention is disabled or nothing is prunable.
func (m *Manager) Compact() error {
	m.mu.Lock()
	if m.running || m.closed {
		m.mu.Unlock()
		return nil // a background pass is already doing the work
	}
	m.running = true
	m.mu.Unlock()
	err := m.compact(m.policy.ForcePlan(m.store.RetentionState()))
	m.mu.Lock()
	m.running = false
	m.mu.Unlock()
	return err
}

func (m *Manager) compactOnce() error {
	return m.compact(m.policy.Plan(m.store.RetentionState()))
}

func (m *Manager) compact(floors map[string]uint64) error {
	if len(floors) == 0 {
		return nil
	}
	applied, err := m.store.CompactTo(floors)
	if err != nil {
		return err
	}
	if m.onApplied != nil && len(applied) > 0 {
		m.onApplied(applied)
	}
	return nil
}

// Close waits for an in-flight compaction and prevents new ones. Call
// before closing the underlying store.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.wg.Wait()
}
