package retention

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/cryptoutil"
)

func sampleManifest() *Manifest {
	return &Manifest{
		KeepIdx:       17,
		DecisionFloor: 31,
		Frontier:      42,
		Segments: []SegmentLiveness{
			{First: 1, Last: 16, LiveBlocks: 0},
			{First: 17, Last: 30, LiveBlocks: 6},
			{First: 31, Last: 42, LiveBlocks: 2},
		},
		Channels: map[string]ChannelManifest{
			"alpha": {
				Floor:  9,
				Anchor: cryptoutil.Hash([]byte("anchor-alpha")),
				Index:  []uint64{17, 19, 22, 23, 42},
			},
			"beta": {
				Floor: 0,
				Index: []uint64{18, 20, 21},
			},
			"rebased": {
				Floor:  100,
				Anchor: cryptoutil.Hash([]byte("anchor-rebased")),
			},
		},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := sampleManifest()
	got, err := UnmarshalManifest(m.Marshal())
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.KeepIdx != m.KeepIdx || got.Frontier != m.Frontier || got.DecisionFloor != m.DecisionFloor {
		t.Fatalf("round trip = %+v", got)
	}
	if !reflect.DeepEqual(got.Segments, m.Segments) {
		t.Fatalf("segments = %+v, want %+v", got.Segments, m.Segments)
	}
	for name, want := range m.Channels {
		gotCh := got.Channels[name]
		if gotCh.Floor != want.Floor || gotCh.Anchor != want.Anchor {
			t.Fatalf("channel %q = %+v, want %+v", name, gotCh, want)
		}
		if len(want.Index) == 0 && len(gotCh.Index) == 0 {
			continue
		}
		if !reflect.DeepEqual(gotCh.Index, want.Index) {
			t.Fatalf("channel %q index = %v, want %v", name, gotCh.Index, want.Index)
		}
	}
}

func TestManifestSaveLoadAndCorruption(t *testing.T) {
	dir := t.TempDir()
	if _, found, err := LoadManifest(nil, dir); err != nil || found {
		t.Fatalf("empty load: found=%v err=%v", found, err)
	}
	m := sampleManifest()
	if err := SaveManifest(nil, dir, m); err != nil {
		t.Fatalf("save: %v", err)
	}
	// A stale temp file from an interrupted save is ignored.
	if err := os.WriteFile(filepath.Join(dir, ManifestFile+".tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, found, err := LoadManifest(nil, dir)
	if err != nil || !found || got.KeepIdx != m.KeepIdx {
		t.Fatalf("load: %+v found=%v err=%v", got, found, err)
	}
	// A flipped byte fails the CRC — with no previous generation to fall
	// back to, the typed corruption error surfaces.
	path := filepath.Join(dir, ManifestFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0xff
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadManifest(nil, dir); !errors.Is(err, ErrManifestCorrupt) {
		t.Fatalf("corrupt load: %v", err)
	}

	// A second save demotes the (restored) stable copy to .prev; rotting
	// the new stable copy then falls back to the previous generation
	// instead of failing recovery.
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	m2 := sampleManifest()
	m2.KeepIdx = m.KeepIdx + 7
	if err := SaveManifest(nil, dir, m2); err != nil {
		t.Fatalf("second save: %v", err)
	}
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	prev, found, err := LoadManifest(nil, dir)
	if err != nil || !found {
		t.Fatalf("fallback load: found=%v err=%v", found, err)
	}
	if prev.KeepIdx != m.KeepIdx {
		t.Fatalf("fallback KeepIdx = %d, want the previous generation's %d", prev.KeepIdx, m.KeepIdx)
	}
}

func TestPolicyPlan(t *testing.T) {
	st := State{
		Channels: map[string]ChannelState{
			"big":   {Floor: 10, Height: 110}, // 100 retained
			"small": {Floor: 0, Height: 3},    // 3 retained
			"empty": {Floor: 0, Height: 0},
		},
		Bytes: 1000,
	}

	if (Policy{}).Enabled() {
		t.Fatal("zero policy must be disabled")
	}
	if (Policy{}).Plan(st) != nil {
		t.Fatal("zero policy planned a compaction")
	}

	// Count trigger: only channels over the bound move, down to the bound.
	p := Policy{RetainBlocks: 20}
	if !p.Due(st) {
		t.Fatal("count policy not due at 100 retained")
	}
	floors := p.Plan(st)
	if floors["big"] != 90 {
		t.Fatalf("big floor = %d, want 90", floors["big"])
	}
	if _, ok := floors["small"]; ok {
		t.Fatal("small channel under the bound was planned")
	}

	// Slack delays the trigger near the bound.
	nearly := State{Channels: map[string]ChannelState{"ch": {Floor: 0, Height: 21}}}
	if p.Due(nearly) {
		t.Fatal("due with only 1 block of overshoot despite slack")
	}

	// Bytes trigger: every channel halves its retained window, but at
	// least one block always stays.
	pb := Policy{RetainBytes: 500}
	floors = pb.Plan(st)
	if floors["big"] != 60 {
		t.Fatalf("bytes-trigger big floor = %d, want 60", floors["big"])
	}
	if floors["small"] != 1 {
		t.Fatalf("bytes-trigger small floor = %d, want 1", floors["small"])
	}
	if _, ok := floors["empty"]; ok {
		t.Fatal("empty channel was planned")
	}
	under := State{Channels: st.Channels, Bytes: 100}
	if pb.Due(under) {
		t.Fatal("bytes policy due under the cap")
	}
}

// TestPolicyWeightedBytesBudget exercises the weighted split of the
// RetainBytes budget: each channel is trimmed to its share of the budget
// (Weights[c]/Σw), channels within their share keep their whole window,
// and stores that don't account bytes per channel fall back to halving.
func TestPolicyWeightedBytesBudget(t *testing.T) {
	p := Policy{RetainBytes: 600, Weights: map[string]float64{"heavy": 2}}
	st := State{
		Channels: map[string]ChannelState{
			"heavy": {Floor: 0, Height: 100, Bytes: 900}, // avg 9 B/block
			"light": {Floor: 0, Height: 100, Bytes: 300}, // avg 3 B/block
		},
		Bytes: 1200,
	}
	// Σw = 2 + 1 = 3: heavy's share is 400, light's 200.
	floors := p.Plan(st)
	// heavy drops ceil((900-400)/9) = 56 blocks, light ceil((300-200)/3) = 34.
	if floors["heavy"] != 56 {
		t.Fatalf("heavy floor = %d, want 56", floors["heavy"])
	}
	if floors["light"] != 34 {
		t.Fatalf("light floor = %d, want 34", floors["light"])
	}

	// A channel already within its share keeps its whole window even while
	// the store total is over budget.
	st.Channels["light"] = ChannelState{Floor: 0, Height: 100, Bytes: 150}
	floors = p.Plan(st)
	if _, ok := floors["light"]; ok {
		t.Fatalf("light trimmed despite being within its share: %v", floors)
	}
	if floors["heavy"] == 0 {
		t.Fatal("heavy not trimmed")
	}

	// Unknown and non-positive weights mean 1.
	if (Policy{Weights: map[string]float64{"neg": -3}}).Weight("neg") != 1 {
		t.Fatal("non-positive weight not defaulted")
	}
	if (Policy{}).Weight("unlisted") != 1 {
		t.Fatal("unlisted weight not defaulted")
	}

	// No per-channel accounting (Bytes == 0): uniform halving fallback.
	legacy := State{
		Channels: map[string]ChannelState{"ch": {Floor: 10, Height: 110}},
		Bytes:    1200,
	}
	if floors := p.Plan(legacy); floors["ch"] != 60 {
		t.Fatalf("fallback floor = %d, want 60", floors["ch"])
	}

	// The trim never drops the chain head: a grossly over-budget channel
	// still retains one block.
	tiny := State{
		Channels: map[string]ChannelState{"ch": {Floor: 0, Height: 4, Bytes: 4000}},
		Bytes:    4000,
	}
	if floors := p.Plan(tiny); floors["ch"] != 3 {
		t.Fatalf("head not retained: floor = %d, want 3", floors["ch"])
	}
}

// TestSegmentLivenessDead spells out the two-condition rule the summary
// encodes: a segment is reclaimable only with zero live blocks AND its
// whole span behind the decision floor.
func TestSegmentLivenessDead(t *testing.T) {
	floor := uint64(31)
	cases := []struct {
		seg  SegmentLiveness
		dead bool
	}{
		{SegmentLiveness{First: 1, Last: 16, LiveBlocks: 0}, true},   // both conditions hold
		{SegmentLiveness{First: 17, Last: 30, LiveBlocks: 6}, false}, // live blocks pin it
		{SegmentLiveness{First: 31, Last: 42, LiveBlocks: 0}, false}, // live decisions pin it
		{SegmentLiveness{First: 25, Last: 40, LiveBlocks: 3}, false}, // both pin it
	}
	for _, tc := range cases {
		if got := tc.seg.Dead(floor); got != tc.dead {
			t.Fatalf("segment %+v: Dead(%d) = %v, want %v", tc.seg, floor, got, tc.dead)
		}
	}
}
