package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func collect(t *testing.T, w *WAL) map[uint64][]byte {
	t.Helper()
	out := make(map[uint64][]byte)
	err := w.Replay(func(idx uint64, rec []byte) error {
		cp := make([]byte, len(rec))
		copy(cp, rec)
		out[idx] = cp
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		idx, err := w.Append([]byte(fmt.Sprintf("record-%d", i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if idx != uint64(i+1) {
			t.Fatalf("append %d: index %d", i, idx)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recs := collect(t, w2)
	if len(recs) != 10 {
		t.Fatalf("recovered %d records, want 10", len(recs))
	}
	if string(recs[1]) != "record-0" || string(recs[10]) != "record-9" {
		t.Fatalf("records corrupted: %q, %q", recs[1], recs[10])
	}
	if idx, err := w2.Append([]byte("after-reopen")); err != nil || idx != 11 {
		t.Fatalf("append after reopen: idx=%d err=%v", idx, err)
	}
}

func TestWALTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("rec-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail mid-record, as a crash during a write would.
	segs, _ := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if len(segs) != 1 {
		t.Fatalf("segments: %v", segs)
	}
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], info.Size()-3); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(WALConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer w2.Close()
	recs := collect(t, w2)
	if len(recs) != 4 {
		t.Fatalf("recovered %d records after torn tail, want 4", len(recs))
	}
	// The torn slot is reused by the next append.
	idx, err := w2.Append([]byte("replacement"))
	if err != nil || idx != 5 {
		t.Fatalf("append into torn slot: idx=%d err=%v", idx, err)
	}
}

func TestWALTruncatesCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append([]byte("payload-payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in the last record's payload.
	segs, _ := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(WALConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after corrupt crc: %v", err)
	}
	defer w2.Close()
	if recs := collect(t, w2); len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2", len(recs))
	}
}

func TestWALRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALConfig{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, 100)
	for i := 0; i < 20; i++ {
		if _, err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}

	if err := w.PruneTo(15); err != nil {
		t.Fatal(err)
	}
	after, _ := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if len(after) >= len(segs) {
		t.Fatalf("prune removed nothing: %d -> %d segments", len(segs), len(after))
	}
	first := w.FirstIndex()
	if first == 0 || first > 15 {
		t.Fatalf("first index after prune = %d, want (0, 15]", first)
	}
	if w.LastIndex() != 20 {
		t.Fatalf("last index = %d, want 20", w.LastIndex())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the pruned log must still replay its retained suffix and
	// keep appending at the right index.
	w2, err := OpenWAL(WALConfig{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recs := collect(t, w2)
	for idx := first; idx <= 20; idx++ {
		if _, ok := recs[idx]; !ok {
			t.Fatalf("index %d missing after prune+reopen", idx)
		}
	}
	if idx, err := w2.Append(rec); err != nil || idx != 21 {
		t.Fatalf("append after prune+reopen: idx=%d err=%v", idx, err)
	}
}

func TestWALGroupCommitConcurrency(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	indices := make(chan uint64, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				idx, err := w.Append([]byte(fmt.Sprintf("g%d-i%d", g, i)))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				indices <- idx
			}
		}(g)
	}
	wg.Wait()
	close(indices)
	seen := make(map[uint64]bool)
	for idx := range indices {
		if seen[idx] {
			t.Fatalf("duplicate index %d", idx)
		}
		seen[idx] = true
	}
	if len(seen) != goroutines*perG {
		t.Fatalf("indices: %d, want %d", len(seen), goroutines*perG)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if recs := collect(t, w2); len(recs) != goroutines*perG {
		t.Fatalf("recovered %d records, want %d", len(recs), goroutines*perG)
	}
}

func TestWALRejectsOversizedRecord(t *testing.T) {
	w, err := OpenWAL(WALConfig{Dir: t.TempDir(), SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(make([]byte, 256)); !errors.Is(err, ErrTooBig) {
		t.Fatalf("oversized append: %v", err)
	}
}

func TestWALClosedAppendFails(t *testing.T) {
	w, err := OpenWAL(WALConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestWALReplayIdempotent is the replay-is-idempotent property: replaying
// the same log any number of times, across any number of reopens, yields
// byte-identical records at identical indices.
func TestWALReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALConfig{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("idempotent-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	first := collect(t, w)
	second := collect(t, w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(WALConfig{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	third := collect(t, w2)

	for name, other := range map[string]map[uint64][]byte{"same-handle": second, "reopen": third} {
		if len(other) != len(first) {
			t.Fatalf("%s replay: %d records, want %d", name, len(other), len(first))
		}
		for idx, rec := range first {
			if string(other[idx]) != string(rec) {
				t.Fatalf("%s replay diverges at index %d: %q vs %q", name, idx, other[idx], rec)
			}
		}
	}
}
