package storage

import (
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestQueueMultiplexedCommitAndRecover drives concurrent appends of
// mixed record kinds into ONE WAL through the commit queue (the unified
// commit log's arrangement) and checks the core contracts: every append
// commits, indices stay dense and FIFO, and a reopen replays everything
// back in order.
func TestQueueMultiplexedCommitAndRecover(t *testing.T) {
	queue := NewCommitQueue(CommitQueueConfig{})
	dir := t.TempDir()
	wal, err := OpenWAL(WALConfig{Dir: dir, Queue: queue})
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	const total = 400
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Even goroutines mimic decision appenders, odd ones block
			// appenders: both kinds multiplex into the same log.
			kind := recDecision
			if g%2 == 1 {
				kind = recBlock
			}
			for i := 0; i < total/8; i++ {
				if _, err := wal.Append([]byte{kind, byte(g), byte(i)}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := wal.LastIndex(); got != total {
		t.Fatalf("last index %d, want %d", got, total)
	}
	if err := wal.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := queue.Close(); err != nil {
		t.Fatalf("queue close: %v", err)
	}

	// Reopen standalone (no queue): the log must replay a dense run with
	// both kinds present.
	reopened, err := OpenWAL(WALConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	want := uint64(1)
	kinds := map[byte]int{}
	if err := reopened.Replay(func(idx uint64, rec []byte) error {
		if idx != want {
			t.Fatalf("replayed index %d, want %d", idx, want)
		}
		want++
		kinds[rec[0]]++
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if want != total+1 {
		t.Fatalf("replayed %d records, want %d", want-1, total)
	}
	if kinds[recDecision] != total/2 || kinds[recBlock] != total/2 {
		t.Fatalf("replayed kinds %v, want %d of each", kinds, total/2)
	}
}

// TestAppendAsyncTokenOrderAndIndex checks the token contract: tokens
// complete in enqueue order and carry the record's assigned index.
func TestAppendAsyncTokenOrderAndIndex(t *testing.T) {
	queue := NewCommitQueue(CommitQueueConfig{})
	defer queue.Close()
	wal, err := OpenWAL(WALConfig{Dir: t.TempDir(), Queue: queue})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer wal.Close()

	toks := make([]*Token, 50)
	for i := range toks {
		tok, err := wal.AppendAsync([]byte{byte(i)})
		if err != nil {
			t.Fatalf("append async %d: %v", i, err)
		}
		toks[i] = tok
	}
	for i, tok := range toks {
		if err := tok.Wait(); err != nil {
			t.Fatalf("token %d: %v", i, err)
		}
		if got := tok.Index(); got != uint64(i+1) {
			t.Fatalf("token %d carries index %d, want %d", i, got, i+1)
		}
	}
	// FIFO: the last token's completion implies all earlier ones.
	for i, tok := range toks {
		if !tok.Done() {
			t.Fatalf("token %d not done after later tokens completed", i)
		}
	}
}

// copyTree snapshots a directory tree (the on-disk state a crash at this
// instant would leave behind).
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.OpenFile(target, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		defer out.Close()
		_, err = io.Copy(out, in)
		return err
	})
	if err != nil {
		t.Fatalf("copying %s: %v", src, err)
	}
}

// TestDecisionEnqueuedButUnsyncedIsLostOnCrash is the write-ahead crash
// window at the storage layer: a decision enqueued on the shared commit
// queue whose fsync wave has not run is NOT on disk — a crash in that
// window loses the record (and the block gated on its token was never
// shipped), while after the wave completes the record survives.
func TestDecisionEnqueuedButUnsyncedIsLostOnCrash(t *testing.T) {
	dir := t.TempDir()
	release := make(chan struct{})
	s, err := Open(dir, Options{SyncHook: func() { <-release }})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	s.Recovered()

	tok := s.AppendDecisionAsync(0, [][]byte{[]byte("op-a"), []byte("op-b")})
	// The wave is stalled before anything is written: give the scheduler
	// a moment, then check the token is still pending.
	time.Sleep(20 * time.Millisecond)
	if tok.Done() {
		t.Fatal("token completed while the commit wave was stalled")
	}

	// Crash snapshot: the on-disk state right now has no trace of the
	// enqueued decision.
	crashDir := t.TempDir()
	copyTree(t, dir, crashDir)
	crashed, err := Open(crashDir, Options{})
	if err != nil {
		t.Fatalf("open crash snapshot: %v", err)
	}
	if rec := crashed.Recovered(); len(rec.Decisions) != 0 {
		t.Fatalf("crash snapshot recovered %d decisions, want 0 (enqueued-but-unsynced must be lost)", len(rec.Decisions))
	}
	crashed.Close()

	// Release the wave: the token completes and the record is durable.
	close(release)
	if err := tok.Wait(); err != nil {
		t.Fatalf("token after release: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	reopened, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	rec := reopened.Recovered()
	if len(rec.Decisions) != 1 || rec.Decisions[0].Seq != 0 {
		t.Fatalf("reopen recovered %+v, want the fsynced decision 0", rec.Decisions)
	}
}

// TestDecisionDurableBlockMissingIsReplayed is the other half of the
// crash window: killed after the decision fsync but before the block
// persist, recovery hands the decision back so the node re-seals and
// re-persists the block (exactly once — the storage holds one decision,
// no block).
func TestDecisionDurableBlockMissingIsReplayed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	s.Recovered()
	if err := s.AppendDecision(0, [][]byte{[]byte("op")}); err != nil {
		t.Fatalf("append decision: %v", err)
	}
	// Crash before the block persist: close without ever calling PutBlock.
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	reopened, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	rec := reopened.Recovered()
	if len(rec.Decisions) != 1 || rec.Decisions[0].Seq != 0 {
		t.Fatalf("recovered %+v, want decision 0", rec.Decisions)
	}
	if len(rec.Chains) != 0 {
		t.Fatalf("recovered chains %+v, want none (block persist never ran)", rec.Chains)
	}
}

// TestCommitQueueMaxDelayCoalesces checks the tuning knob: with a
// coalescing window, appends arriving within the window share one wave.
func TestCommitQueueMaxDelayCoalesces(t *testing.T) {
	waves := 0
	var mu sync.Mutex
	queue := NewCommitQueue(CommitQueueConfig{
		MaxDelay: 20 * time.Millisecond,
		SyncHook: func() { mu.Lock(); waves++; mu.Unlock() },
	})
	defer queue.Close()
	wal, err := OpenWAL(WALConfig{Dir: t.TempDir(), Queue: queue})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer wal.Close()

	const n = 16
	toks := make([]*Token, n)
	for i := range toks {
		tok, err := wal.AppendAsync([]byte{byte(i)})
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		toks[i] = tok
	}
	for _, tok := range toks {
		if err := tok.Wait(); err != nil {
			t.Fatalf("token: %v", err)
		}
	}
	mu.Lock()
	got := waves
	mu.Unlock()
	if got > 2 {
		t.Fatalf("%d appends within the coalescing window took %d waves, want <= 2", n, got)
	}
}
