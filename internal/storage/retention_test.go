package storage

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/cryptoutil"
	"repro/internal/fabric"
)

// listSegments returns the block store's segment file names, sorted.
func listSegments(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	return paths
}

// snapshotFiles reads every segment file into memory.
func snapshotFiles(t *testing.T, paths []string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, len(paths))
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[p] = raw
	}
	return out
}

func TestBlockStoreCompactionPrunesSegmentsAndFloorsReads(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenBlockStore(WALConfig{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	chain := makeChain(t, 40)
	for _, b := range chain {
		if err := s.Put("ch", b); err != nil {
			t.Fatal(err)
		}
	}
	before := listSegments(t, dir)
	if len(before) < 4 {
		t.Fatalf("want several segments, got %d", len(before))
	}

	applied, err := s.CompactTo(map[string]uint64{"ch": 30})
	if err != nil {
		t.Fatalf("CompactTo: %v", err)
	}
	if applied["ch"] != 30 {
		t.Fatalf("applied = %v", applied)
	}
	after := listSegments(t, dir)
	if len(after) >= len(before) {
		t.Fatalf("compaction deleted nothing: %d -> %d segments", len(before), len(after))
	}
	if got := s.Floor("ch"); got != 30 {
		t.Fatalf("floor = %d", got)
	}

	// Below-floor reads answer the typed pruned error; the floor upward
	// still serves.
	_, err = s.ReadBlocks("ch", 0, 5)
	var pe *fabric.PrunedError
	if !errors.As(err, &pe) || pe.Floor != 30 {
		t.Fatalf("below-floor read: %v", err)
	}
	got, err := s.ReadBlocks("ch", 30, 40)
	if err != nil || len(got) != 10 || got[0].Header.Number != 30 {
		t.Fatalf("floor read = %d blocks, err %v", len(got), err)
	}
	if err := fabric.VerifyChain(got); err != nil {
		t.Fatalf("retained chain: %v", err)
	}
	// Floors never regress and at least one block stays retained.
	if applied, err := s.CompactTo(map[string]uint64{"ch": 10}); err != nil || applied != nil {
		t.Fatalf("regressing compaction applied %v, err %v", applied, err)
	}
	if applied, err := s.CompactTo(map[string]uint64{"ch": 99}); err != nil || applied["ch"] != 39 {
		t.Fatalf("over-height compaction applied %v, err %v", applied, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery loads the manifest first: the chain serves from the floor.
	s2, err := OpenBlockStore(WALConfig{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	defer s2.Close()
	info := s2.Chains()["ch"]
	if info.Floor != 39 || info.Height != 40 {
		t.Fatalf("recovered frontier = %+v", info)
	}
	if info.Anchor != chain[38].Header.Hash() {
		t.Fatal("recovered anchor is not the pruned predecessor's hash")
	}
	if info.LastHash != chain[39].Header.Hash() {
		t.Fatal("recovered last hash differs")
	}
	if _, err := s2.ReadBlocks("ch", 20, 5); !errors.Is(err, fabric.ErrPruned) {
		t.Fatalf("below-floor read after reopen: %v", err)
	}
}

// TestCompactionCrashWindows simulates the two crash windows the manifest
// ordering covers: a kill after the manifest write but before any segment
// deletion, and a kill after only some deletions. Both must recover a
// contiguous chain from the manifest floor (and finish the interrupted
// deletions).
func TestCompactionCrashWindows(t *testing.T) {
	for _, tc := range []struct {
		name string
		// restore selects which deleted segments reappear before reopen:
		// all of them (crash before any deletion) or all but the oldest
		// (crash between deletions; deletion runs oldest-first, so the
		// surviving set is a suffix).
		restoreAll bool
	}{
		{name: "before-any-deletion", restoreAll: true},
		{name: "between-deletions", restoreAll: false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenBlockStore(WALConfig{Dir: dir, SegmentBytes: 512})
			if err != nil {
				t.Fatal(err)
			}
			chain := makeChain(t, 40)
			for _, b := range chain {
				if err := s.Put("ch", b); err != nil {
					t.Fatal(err)
				}
			}
			before := listSegments(t, dir)
			saved := snapshotFiles(t, before)
			if _, err := s.CompactTo(map[string]uint64{"ch": 30}); err != nil {
				t.Fatal(err)
			}
			after := listSegments(t, dir)
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			kept := make(map[string]bool, len(after))
			for _, p := range after {
				kept[p] = true
			}
			var deleted []string
			for _, p := range before {
				if !kept[p] {
					deleted = append(deleted, p)
				}
			}
			if len(deleted) < 2 {
				t.Fatalf("need >= 2 deleted segments to exercise the windows, got %d", len(deleted))
			}
			restore := deleted
			if !tc.restoreAll {
				restore = deleted[1:] // the oldest deletion completed
			}
			for _, p := range restore {
				if err := os.WriteFile(p, saved[p], 0o644); err != nil {
					t.Fatal(err)
				}
			}

			// Recovery: manifest first, then finish the deletions.
			s2, err := OpenBlockStore(WALConfig{Dir: dir, SegmentBytes: 512})
			if err != nil {
				t.Fatalf("reopen mid-compaction: %v", err)
			}
			defer s2.Close()
			info := s2.Chains()["ch"]
			if info.Floor != 30 || info.Height != 40 {
				t.Fatalf("recovered frontier = %+v", info)
			}
			got, err := s2.ReadBlocks("ch", 30, 40)
			if err != nil || len(got) != 10 {
				t.Fatalf("read from floor = %d blocks, err %v", len(got), err)
			}
			if err := fabric.VerifyChain(got); err != nil {
				t.Fatalf("recovered chain from floor: %v", err)
			}
			if got[0].Header.PrevHash != info.Anchor {
				t.Fatal("first retained block does not carry the manifest anchor")
			}
			if _, err := s2.ReadBlocks("ch", 0, 5); !errors.Is(err, fabric.ErrPruned) {
				t.Fatalf("below-floor read after crash recovery: %v", err)
			}
			// The interrupted deletions were re-applied at open.
			reopened := listSegments(t, dir)
			for _, p := range deleted {
				for _, q := range reopened {
					if p == q {
						t.Fatalf("segment %s survived recovery", p)
					}
				}
			}
		})
	}
}

// TestReadBlocksUsesOffsetIndexNotPrefixScan proves the read path is a
// positioned read: corrupting an EARLIER record in a sealed segment must
// not affect reading a LATER block from the same segment (a
// decode-from-zero prefix scan would trip over the corrupt record).
func TestReadBlocksUsesOffsetIndexNotPrefixScan(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenBlockStore(WALConfig{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	chain := makeChain(t, 30)
	for _, b := range chain {
		if err := s.Put("ch", b); err != nil {
			t.Fatal(err)
		}
	}
	s.wal.mu.Lock()
	if len(s.wal.segments) < 3 {
		s.wal.mu.Unlock()
		t.Fatalf("want several segments, got %d", len(s.wal.segments))
	}
	seg := s.wal.segments[0] // sealed: the writer only appends to the last
	s.wal.mu.Unlock()
	if seg.last <= seg.first {
		t.Fatalf("first segment holds %d records", seg.last-seg.first+1)
	}

	// Flip a payload byte of the segment's FIRST record on disk.
	f, err := os.OpenFile(seg.path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], seg.offsets[0]+recordHeaderSize+2); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], seg.offsets[0]+recordHeaderSize+2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Block numbers are wal index - 1 here (single channel). The last
	// record of the corrupted segment must still read cleanly.
	lastBlock := seg.last - 1
	got, err := s.ReadBlocks("ch", lastBlock, 1)
	if err != nil || len(got) != 1 || got[0].Header.Number != lastBlock {
		t.Fatalf("offset read of block %d: %d blocks, err %v", lastBlock, len(got), err)
	}
	// The corrupted record itself fails its CRC.
	if _, err := s.ReadBlocks("ch", seg.first-1, 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt record read: %v", err)
	}
}

// TestBlockStoreCountsChannelBytes checks the per-channel byte accounting
// feeding the weighted retention budget: the incremental counters on the
// put path agree with the exact WAL record sizes, survive compaction, and
// are recomputed identically at recovery.
func TestBlockStoreCountsChannelBytes(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenBlockStore(WALConfig{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	chainA, chainB := makeChain(t, 20), makeChain(t, 5)
	for _, b := range chainA {
		if err := s.Put("a", b); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range chainB {
		if err := s.Put("b", b); err != nil {
			t.Fatal(err)
		}
	}
	exact := func(channel string) int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.wal.RecordSizeBytes(s.index[channel])
	}
	st := s.RetentionState()
	for _, ch := range []string{"a", "b"} {
		if got, want := st.Channels[ch].Bytes, exact(ch); got != want || got <= 0 {
			t.Fatalf("channel %s bytes = %d, exact %d", ch, got, want)
		}
	}
	if st.Channels["a"].Bytes <= st.Channels["b"].Bytes {
		t.Fatalf("4x-longer channel not heavier: a=%d b=%d", st.Channels["a"].Bytes, st.Channels["b"].Bytes)
	}

	// Compaction shrinks the counter to the surviving records, exactly.
	before := st.Channels["a"].Bytes
	if _, err := s.CompactTo(map[string]uint64{"a": 15}); err != nil {
		t.Fatal(err)
	}
	st = s.RetentionState()
	if got, want := st.Channels["a"].Bytes, exact("a"); got != want || got >= before {
		t.Fatalf("post-compaction bytes = %d, exact %d, before %d", got, want, before)
	}
	wantA, wantB := st.Channels["a"].Bytes, st.Channels["b"].Bytes
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery recomputes the same counters from the offset tables.
	s2, err := OpenBlockStore(WALConfig{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st = s2.RetentionState()
	if st.Channels["a"].Bytes != wantA || st.Channels["b"].Bytes != wantB {
		t.Fatalf("recovered bytes a=%d b=%d, want a=%d b=%d",
			st.Channels["a"].Bytes, st.Channels["b"].Bytes, wantA, wantB)
	}
}

func TestBlockStoreRebaseJumpsOverPrunedGap(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenBlockStore(WALConfig{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	chain := makeChain(t, 5)
	for _, b := range chain {
		if err := s.Put("ch", b); err != nil {
			t.Fatal(err)
		}
	}
	// The cluster pruned blocks 5..19 away while this node was down: jump
	// to floor 20, anchored by the (trusted) PrevHash of block 20.
	anchor := cryptoutil.Hash([]byte("pruned-predecessor"))
	if err := s.RebaseBlocks("ch", 20, anchor); err != nil {
		t.Fatalf("RebaseBlocks: %v", err)
	}
	if h, f := s.Height("ch"), s.Floor("ch"); h != 20 || f != 20 {
		t.Fatalf("after rebase: height %d floor %d", h, f)
	}
	b20 := fabric.NewBlock(20, anchor, [][]byte{chain[0].Envelopes[0]})
	if err := s.Put("ch", b20); err != nil {
		t.Fatalf("put after rebase: %v", err)
	}
	if _, err := s.ReadBlocks("ch", 0, 5); !errors.Is(err, fabric.ErrPruned) {
		t.Fatalf("stale read after rebase: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The rebase manifest governs recovery: the stale records below the
	// floor are skipped, the rebased chain serves.
	s2, err := OpenBlockStore(WALConfig{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatalf("reopen after rebase: %v", err)
	}
	defer s2.Close()
	info := s2.Chains()["ch"]
	if info.Floor != 20 || info.Height != 21 || info.Anchor != anchor {
		t.Fatalf("recovered frontier = %+v", info)
	}
	got, err := s2.ReadBlocks("ch", 20, 5)
	if err != nil || len(got) != 1 || got[0].Header.Hash() != b20.Header.Hash() {
		t.Fatalf("rebased read = %d blocks, err %v", len(got), err)
	}
}
