package transport

import (
	"math/rand"
	"time"
)

// RetryPolicy is the shared jittered-exponential-backoff schedule the
// transport and the fetch/join paths use for anything that may transiently
// fail: peer dials, block fetches, join announcements. One-shot attempts
// turn WAN blips into permanent failures; a policy-driven loop retries with
// growing, jittered pauses until the operation succeeds, the attempt budget
// runs out, or the caller's done channel closes.
type RetryPolicy struct {
	// Initial is the first backoff pause. Zero means 100ms.
	Initial time.Duration
	// Max caps the pause between attempts. Zero means 5s.
	Max time.Duration
	// Multiplier grows the pause each attempt. Zero means 2.
	Multiplier float64
	// Jitter is the random fraction (0..1) added/subtracted around each
	// pause so peers do not retry in lockstep. Zero means 0.2; negative
	// disables jitter.
	Jitter float64
	// MaxAttempts bounds the number of attempts. Zero means unbounded
	// (the caller bounds via MaxElapsed or the done channel).
	MaxAttempts int
	// MaxElapsed bounds the total time from the first attempt. Zero means
	// unbounded.
	MaxElapsed time.Duration
}

// withDefaults fills zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Initial <= 0 {
		p.Initial = 100 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	return p
}

// Delay returns the pause before attempt attempt+1 (attempt counts from 0),
// jittered by rng when non-nil.
func (p RetryPolicy) Delay(attempt int, rng *rand.Rand) time.Duration {
	p = p.withDefaults()
	d := float64(p.Initial)
	for i := 0; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.Max) {
			d = float64(p.Max)
			break
		}
	}
	if p.Jitter > 0 && rng != nil {
		d *= 1 + p.Jitter*(2*rng.Float64()-1)
	}
	if d < 0 {
		d = 0
	}
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	return time.Duration(d)
}

// Run invokes op until it returns nil, the policy's budget is exhausted, or
// done closes. op receives the attempt number (from 0). The return value is
// nil on success, the last op error when the budget ran out, and the last
// op error (or nil if op never ran) when done closed first.
func (p RetryPolicy) Run(done <-chan struct{}, op func(attempt int) error) error {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	start := time.Now()
	var lastErr error
	for attempt := 0; ; attempt++ {
		select {
		case <-done:
			return lastErr
		default:
		}
		if err := op(attempt); err == nil {
			return nil
		} else {
			lastErr = err
		}
		if p.MaxAttempts > 0 && attempt+1 >= p.MaxAttempts {
			return lastErr
		}
		pause := p.Delay(attempt, rng)
		if p.MaxElapsed > 0 && time.Since(start)+pause > p.MaxElapsed {
			return lastErr
		}
		select {
		case <-time.After(pause):
		case <-done:
			return lastErr
		}
	}
}
