package transport

import (
	"errors"
	stdnet "net"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func recvOne(t *testing.T, c Conn, within time.Duration) Message {
	t.Helper()
	select {
	case m, ok := <-c.Inbox():
		if !ok {
			t.Fatal("inbox closed")
		}
		return m
	case <-time.After(within):
		t.Fatal("timed out waiting for message")
	}
	return Message{}
}

func TestInProcBasicDelivery(t *testing.T) {
	net := NewInProcNetwork(InProcConfig{})
	defer net.Close()

	a, err := net.Join("a")
	if err != nil {
		t.Fatalf("join a: %v", err)
	}
	b, err := net.Join("b")
	if err != nil {
		t.Fatalf("join b: %v", err)
	}

	a.Send("b", 7, []byte("hello"))
	m := recvOne(t, b, time.Second)
	if m.From != "a" || m.To != "b" || m.Type != 7 || string(m.Payload) != "hello" {
		t.Fatalf("unexpected message: %+v", m)
	}
}

func TestInProcDuplicateJoin(t *testing.T) {
	net := NewInProcNetwork(InProcConfig{})
	defer net.Close()
	if _, err := net.Join("a"); err != nil {
		t.Fatalf("join: %v", err)
	}
	if _, err := net.Join("a"); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate join: got %v, want ErrDuplicate", err)
	}
}

func TestInProcUnknownDestinationDropped(t *testing.T) {
	net := NewInProcNetwork(InProcConfig{})
	defer net.Close()
	a, err := net.Join("a")
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	a.Send("ghost", 1, nil) // must not panic or block
}

func TestInProcOrderPreservedPerLink(t *testing.T) {
	net := NewInProcNetwork(InProcConfig{})
	defer net.Close()
	a, _ := net.Join("a")
	b, _ := net.Join("b")

	const n = 200
	for i := 0; i < n; i++ {
		a.Send("b", uint16(i), nil)
	}
	for i := 0; i < n; i++ {
		m := recvOne(t, b, time.Second)
		if m.Type != uint16(i) {
			t.Fatalf("message %d arrived out of order (type %d)", i, m.Type)
		}
	}
}

func TestInProcLatency(t *testing.T) {
	const delay = 50 * time.Millisecond
	net := NewInProcNetwork(InProcConfig{Latency: FixedLatency(delay)})
	defer net.Close()
	a, _ := net.Join("a")
	b, _ := net.Join("b")

	start := time.Now()
	a.Send("b", 1, nil)
	recvOne(t, b, time.Second)
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("message arrived after %v, want >= %v", elapsed, delay)
	}
}

func TestInProcEgressBandwidth(t *testing.T) {
	// 1 MB/s egress: a 100 KB payload must take >= ~100 ms to leave.
	net := NewInProcNetwork(InProcConfig{EgressBytesPerSec: 1_000_000})
	defer net.Close()
	a, _ := net.Join("a")
	b, _ := net.Join("b")

	payload := make([]byte, 100_000)
	start := time.Now()
	a.Send("b", 1, payload)
	recvOne(t, b, 5*time.Second)
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Fatalf("bandwidth model too fast: %v", elapsed)
	}
}

func TestInProcEgressSerializesAcrossReceivers(t *testing.T) {
	// Sending the same 50 KB to 4 receivers at 1 MB/s must take >= ~200 ms
	// in total because the sender's NIC is serialized.
	net := NewInProcNetwork(InProcConfig{EgressBytesPerSec: 1_000_000})
	defer net.Close()
	a, _ := net.Join("a")
	receivers := make([]Conn, 4)
	for i := range receivers {
		c, err := net.Join(Addr(string(rune('r' + i))))
		if err != nil {
			t.Fatalf("join receiver: %v", err)
		}
		receivers[i] = c
	}
	payload := make([]byte, 50_000)
	start := time.Now()
	for i := range receivers {
		a.Send(receivers[i].Addr(), 1, payload)
	}
	for _, r := range receivers {
		recvOne(t, r, 5*time.Second)
	}
	if elapsed := time.Since(start); elapsed < 180*time.Millisecond {
		t.Fatalf("egress not serialized across receivers: %v", elapsed)
	}
}

func TestInProcFilterAndHeal(t *testing.T) {
	net := NewInProcNetwork(InProcConfig{})
	defer net.Close()
	a, _ := net.Join("a")
	b, _ := net.Join("b")

	net.SetFilter(func(m Message) bool { return false })
	a.Send("b", 1, nil)
	select {
	case <-b.Inbox():
		t.Fatal("filtered message delivered")
	case <-time.After(50 * time.Millisecond):
	}

	net.Heal()
	a.Send("b", 2, nil)
	m := recvOne(t, b, time.Second)
	if m.Type != 2 {
		t.Fatalf("wrong message after heal: %+v", m)
	}
}

func TestInProcPartition(t *testing.T) {
	net := NewInProcNetwork(InProcConfig{})
	defer net.Close()
	a, _ := net.Join("a")
	b, _ := net.Join("b")
	c, _ := net.Join("c")

	net.Partition([]Addr{"a"}, []Addr{"b"})
	a.Send("b", 1, nil)
	a.Send("c", 2, nil)
	m := recvOne(t, c, time.Second)
	if m.Type != 2 {
		t.Fatalf("cross-partition leak or wrong message: %+v", m)
	}
	select {
	case <-b.Inbox():
		t.Fatal("partitioned message delivered")
	case <-time.After(50 * time.Millisecond):
	}
	_ = a
}

func TestInProcDisconnect(t *testing.T) {
	net := NewInProcNetwork(InProcConfig{})
	defer net.Close()
	a, _ := net.Join("a")
	b, _ := net.Join("b")

	net.Disconnect("b")
	a.Send("b", 1, nil) // dropped silently
	if _, ok := <-b.Inbox(); ok {
		t.Fatal("disconnected inbox still open")
	}

	// The address becomes reusable.
	if _, err := net.Join("b"); err != nil {
		t.Fatalf("rejoin after disconnect: %v", err)
	}
}

func TestInProcCloseIdempotent(t *testing.T) {
	net := NewInProcNetwork(InProcConfig{})
	a, _ := net.Join("a")
	if err := net.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := net.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := net.Join("x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("join after close: got %v, want ErrClosed", err)
	}
	a.Send("a", 1, nil) // must not panic after close
}

func TestInProcConcurrentSenders(t *testing.T) {
	net := NewInProcNetwork(InProcConfig{})
	defer net.Close()
	dst, _ := net.Join("dst")

	const senders, each = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		conn, err := net.Join(Addr(string(rune('A' + i))))
		if err != nil {
			t.Fatalf("join sender %d: %v", i, err)
		}
		wg.Add(1)
		go func(c Conn) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				c.Send("dst", 1, []byte{byte(j)})
			}
		}(conn)
	}
	wg.Wait()
	for i := 0; i < senders*each; i++ {
		recvOne(t, dst, time.Second)
	}
}

func TestMessageSizeProperty(t *testing.T) {
	f := func(payload []byte, from, to string) bool {
		m := Message{From: Addr(from), To: Addr(to), Payload: payload}
		return m.Size() >= len(payload)+wireOverheadBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	server, err := NewTCPTransport(TCPConfig{Addr: "server", Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	defer server.Close()

	client, err := NewTCPTransport(TCPConfig{
		Addr:   "client",
		Listen: "127.0.0.1:0",
		Peers:  map[Addr]string{"server": server.ListenAddr()},
	})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	defer client.Close()

	payload := []byte("over the wire")
	client.Send("server", 42, payload)
	m := recvOne(t, server, 5*time.Second)
	if m.From != "client" || m.Type != 42 || string(m.Payload) != string(payload) {
		t.Fatalf("unexpected frame: %+v", m)
	}
}

func TestTCPBidirectional(t *testing.T) {
	a, err := NewTCPTransport(TCPConfig{Addr: "a", Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("a: %v", err)
	}
	defer a.Close()
	b, err := NewTCPTransport(TCPConfig{
		Addr:   "b",
		Listen: "127.0.0.1:0",
		Peers:  map[Addr]string{"a": a.ListenAddr()},
	})
	if err != nil {
		t.Fatalf("b: %v", err)
	}
	defer b.Close()
	// Late peer registration direction: a needs b's address too.
	a.SetPeers(map[Addr]string{"b": b.ListenAddr()})

	b.Send("a", 1, []byte("ping"))
	if m := recvOne(t, a, 5*time.Second); string(m.Payload) != "ping" {
		t.Fatalf("want ping, got %+v", m)
	}
	a.Send("b", 2, []byte("pong"))
	if m := recvOne(t, b, 5*time.Second); string(m.Payload) != "pong" {
		t.Fatalf("want pong, got %+v", m)
	}
}

func TestTCPUnknownPeerDropped(t *testing.T) {
	a, err := NewTCPTransport(TCPConfig{Addr: "a", Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("a: %v", err)
	}
	defer a.Close()
	a.Send("nowhere", 1, nil) // no panic, no block
}

func TestTCPManyFrames(t *testing.T) {
	server, err := NewTCPTransport(TCPConfig{Addr: "s", Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	defer server.Close()
	client, err := NewTCPTransport(TCPConfig{
		Addr:  "c",
		Peers: map[Addr]string{"s": server.ListenAddr()},
	})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	defer client.Close()

	const n = 100
	for i := 0; i < n; i++ {
		client.Send("s", uint16(i), []byte{byte(i)})
	}
	for i := 0; i < n; i++ {
		m := recvOne(t, server, 5*time.Second)
		if m.Type != uint16(i) {
			t.Fatalf("frame %d out of order: %+v", i, m)
		}
	}
}

func TestFrameCodecProperty(t *testing.T) {
	f := func(msgType uint16, from, to string, payload []byte) bool {
		if len(from) > 1000 || len(to) > 1000 || len(payload) > 1<<16 {
			return true // keep the frames small
		}
		c1, c2 := stdnet.Pipe()
		defer c1.Close()
		defer c2.Close()
		in := Message{From: Addr(from), To: Addr(to), Type: msgType, Payload: payload}
		errCh := make(chan error, 1)
		go func() { errCh <- writeFrame(c1, in) }()
		out, err := readFrame(c2)
		if err != nil || <-errCh != nil {
			return false
		}
		return out.From == in.From && out.To == in.To && out.Type == in.Type &&
			string(out.Payload) == string(in.Payload)
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
