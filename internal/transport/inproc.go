package transport

import (
	"fmt"
	"sync"
	"time"
)

// InProcConfig parameterizes an in-process network.
type InProcConfig struct {
	// Latency supplies the one-way propagation delay per link. Nil means
	// instantaneous delivery.
	Latency LatencyModel
	// EgressBytesPerSec, when > 0, models each sender's NIC: outgoing
	// messages are serialized per sender and each occupies the link for
	// size/rate seconds before propagation starts. 125_000_000 models the
	// paper's Gigabit Ethernet.
	EgressBytesPerSec int64
}

// GigabitEthernet is the egress rate of the paper's LAN testbed in bytes/s.
const GigabitEthernet int64 = 125_000_000

// InProcNetwork is an in-memory network hub. Endpoints Join with a unique
// address; messages flow through per-sender egress serializers (bandwidth
// model), a propagation delay (latency model), and per-receiver unbounded
// mailboxes. Sends never block the sender beyond the bandwidth model, which
// matches the asynchronous-network model of the BFT-SMaRt protocol stack.
type InProcNetwork struct {
	cfg InProcConfig

	mu      sync.RWMutex
	peers   map[Addr]*inprocConn
	filter  func(Message) bool // nil => deliver; false => drop
	drop    func(Message) bool // nil => deliver; true => drop (loss model)
	latency LatencyModel
	closed  bool

	// links serialize delayed deliveries per (from, to) pair so that
	// latency never reorders a link (TCP semantics). Created lazily.
	linkMu sync.Mutex
	links  map[linkKey]*link
	done   chan struct{}
	pumps  sync.WaitGroup
}

type linkKey struct {
	from, to Addr
}

// NewInProcNetwork creates a hub with the given configuration.
func NewInProcNetwork(cfg InProcConfig) *InProcNetwork {
	if cfg.Latency == nil {
		cfg.Latency = ZeroLatency()
	}
	return &InProcNetwork{
		cfg:     cfg,
		latency: cfg.Latency,
		peers:   make(map[Addr]*inprocConn),
		links:   make(map[linkKey]*link),
		done:    make(chan struct{}),
	}
}

// Join attaches a new endpoint to the network.
func (n *InProcNetwork) Join(addr Addr) (Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.peers[addr]; ok {
		return nil, fmt.Errorf("join %q: %w", addr, ErrDuplicate)
	}
	c := newInprocConn(n, addr)
	n.peers[addr] = c
	return c, nil
}

// SetFilter installs a delivery predicate: messages for which filter returns
// false are dropped. Passing nil removes the filter. Used by the fault
// injection tests (drops, partitions, Byzantine link behaviour).
func (n *InProcNetwork) SetFilter(filter func(Message) bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.filter = filter
}

// SetDrop installs a loss predicate evaluated independently of the filter:
// messages for which drop returns true are silently discarded. Keeping it
// separate from SetFilter lets a probabilistic loss model coexist with a
// partition — Heal clears the partition filter without clearing the loss.
// Passing nil removes the predicate.
func (n *InProcNetwork) SetDrop(drop func(Message) bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.drop = drop
}

// SetLatency swaps the propagation-delay model at runtime. Nil restores
// instantaneous delivery. In-flight messages keep the delay they were
// assigned at send time; only subsequent sends observe the new model.
func (n *InProcNetwork) SetLatency(model LatencyModel) {
	if model == nil {
		model = ZeroLatency()
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = model
}

// Partition drops every message crossing between the two groups, in both
// directions. Endpoints not listed in either group communicate freely with
// everyone. Calling Heal removes the partition.
func (n *InProcNetwork) Partition(groupA, groupB []Addr) {
	inA := make(map[Addr]bool, len(groupA))
	for _, a := range groupA {
		inA[a] = true
	}
	inB := make(map[Addr]bool, len(groupB))
	for _, b := range groupB {
		inB[b] = true
	}
	n.SetFilter(func(m Message) bool {
		if inA[m.From] && inB[m.To] {
			return false
		}
		if inB[m.From] && inA[m.To] {
			return false
		}
		return true
	})
}

// Heal removes any partition or filter.
func (n *InProcNetwork) Heal() { n.SetFilter(nil) }

// Disconnect forcefully detaches an endpoint (models a crash: in-flight and
// future messages to it are dropped).
func (n *InProcNetwork) Disconnect(addr Addr) {
	n.mu.Lock()
	c, ok := n.peers[addr]
	if ok {
		delete(n.peers, addr)
	}
	n.mu.Unlock()
	if ok {
		c.shutdown()
	}
}

// Close shuts down the hub and all endpoints.
func (n *InProcNetwork) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	peers := make([]*inprocConn, 0, len(n.peers))
	for _, c := range n.peers {
		peers = append(peers, c)
	}
	n.peers = make(map[Addr]*inprocConn)
	n.mu.Unlock()

	for _, c := range peers {
		c.shutdown()
	}
	close(n.done)
	n.pumps.Wait()
	return nil
}

// route is called by a sender's egress stage to deliver a message after the
// propagation delay.
func (n *InProcNetwork) route(m Message) {
	n.mu.RLock()
	filter := n.filter
	drop := n.drop
	latency := n.latency
	closed := n.closed
	n.mu.RUnlock()
	if closed {
		return
	}
	if filter != nil && !filter(m) {
		return
	}
	if drop != nil && drop(m) {
		return
	}
	delay := latency.Delay(m.From, m.To)
	if delay <= 0 {
		// Zero-delay links deliver inline: the caller is the sender's
		// goroutine (or its egress pump), so per-link order is preserved.
		n.deliver(m)
		return
	}
	n.link(m.From, m.To).enqueue(m, time.Now().Add(delay))
}

// link returns (creating if needed) the FIFO delivery pump for a pair.
func (n *InProcNetwork) link(from, to Addr) *link {
	key := linkKey{from: from, to: to}
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	l, ok := n.links[key]
	if !ok {
		l = newLink(n)
		n.links[key] = l
	}
	return l
}

// link delivers one direction of one endpoint pair in FIFO order, each
// message no earlier than its release time. A later-sent message never
// overtakes an earlier one even when jitter hands it a smaller delay.
type link struct {
	net    *InProcNetwork
	mu     sync.Mutex
	queue  []timedMessage
	notify chan struct{}
}

type timedMessage struct {
	msg     Message
	release time.Time
}

func newLink(n *InProcNetwork) *link {
	l := &link{net: n, notify: make(chan struct{}, 1)}
	n.pumps.Add(1)
	go l.pump()
	return l
}

func (l *link) enqueue(m Message, release time.Time) {
	l.mu.Lock()
	l.queue = append(l.queue, timedMessage{msg: m, release: release})
	l.mu.Unlock()
	select {
	case l.notify <- struct{}{}:
	default:
	}
}

func (l *link) pump() {
	defer l.net.pumps.Done()
	for {
		l.mu.Lock()
		if len(l.queue) == 0 {
			l.mu.Unlock()
			select {
			case <-l.notify:
				continue
			case <-l.net.done:
				return
			}
		}
		tm := l.queue[0]
		l.queue = l.queue[1:]
		l.mu.Unlock()

		if wait := time.Until(tm.release); wait > 0 {
			select {
			case <-time.After(wait):
			case <-l.net.done:
				return
			}
		}
		l.net.deliver(tm.msg)
	}
}

func (n *InProcNetwork) deliver(m Message) {
	n.mu.RLock()
	dst, ok := n.peers[m.To]
	n.mu.RUnlock()
	if ok {
		dst.mailbox.put(m)
	}
}

// inprocConn is one endpoint of an InProcNetwork.
type inprocConn struct {
	net     *InProcNetwork
	addr    Addr
	mailbox *mailbox
	egress  *egress

	closeOnce sync.Once
}

func newInprocConn(n *InProcNetwork, addr Addr) *inprocConn {
	c := &inprocConn{
		net:     n,
		addr:    addr,
		mailbox: newMailbox(),
	}
	if n.cfg.EgressBytesPerSec > 0 {
		c.egress = newEgress(n.cfg.EgressBytesPerSec, n.route)
	}
	return c
}

var _ Conn = (*inprocConn)(nil)

func (c *inprocConn) Addr() Addr { return c.addr }

func (c *inprocConn) Send(to Addr, msgType uint16, payload []byte) {
	m := Message{From: c.addr, To: to, Type: msgType, Payload: payload}
	if c.egress != nil {
		c.egress.enqueue(m)
		return
	}
	c.net.route(m)
}

func (c *inprocConn) Inbox() <-chan Message { return c.mailbox.out }

func (c *inprocConn) Close() error {
	c.net.mu.Lock()
	delete(c.net.peers, c.addr)
	c.net.mu.Unlock()
	c.shutdown()
	return nil
}

func (c *inprocConn) shutdown() {
	c.closeOnce.Do(func() {
		if c.egress != nil {
			c.egress.stop()
		}
		c.mailbox.close()
	})
}

// mailbox is an unbounded FIFO of messages with a channel-based reader side.
// Producers never block: the asynchronous network model requires that a slow
// or stalled receiver cannot back-pressure a broadcasting consensus replica
// into deadlock. A pump goroutine drains the queue into the out channel.
type mailbox struct {
	mu     sync.Mutex
	queue  []Message
	notify chan struct{} // capacity 1: wake-up signal for the pump
	done   chan struct{}
	out    chan Message
	closed bool
	wg     sync.WaitGroup
}

func newMailbox() *mailbox {
	mb := &mailbox{
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
		out:    make(chan Message),
	}
	mb.wg.Add(1)
	go mb.pump()
	return mb
}

func (mb *mailbox) put(m Message) {
	mb.mu.Lock()
	if mb.closed {
		mb.mu.Unlock()
		return
	}
	mb.queue = append(mb.queue, m)
	mb.mu.Unlock()
	select {
	case mb.notify <- struct{}{}:
	default:
	}
}

func (mb *mailbox) pump() {
	defer mb.wg.Done()
	defer close(mb.out)
	for {
		mb.mu.Lock()
		if len(mb.queue) == 0 {
			mb.mu.Unlock()
			select {
			case <-mb.notify:
				continue
			case <-mb.done:
				return
			}
		}
		m := mb.queue[0]
		mb.queue = mb.queue[1:]
		mb.mu.Unlock()

		select {
		case mb.out <- m:
		case <-mb.done:
			return
		}
	}
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	if mb.closed {
		mb.mu.Unlock()
		return
	}
	mb.closed = true
	mb.mu.Unlock()
	close(mb.done)
	mb.wg.Wait()
}

// egress serializes a sender's outgoing messages at a fixed byte rate,
// modelling NIC transmission time. Messages wait FIFO for the virtual link,
// occupy it for size/rate, then enter propagation (handled by route).
type egress struct {
	rate int64 // bytes per second
	emit func(Message)

	mu     sync.Mutex
	queue  []Message
	notify chan struct{}
	done   chan struct{}
	closed bool
	wg     sync.WaitGroup
}

func newEgress(rate int64, emit func(Message)) *egress {
	e := &egress{
		rate:   rate,
		emit:   emit,
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	e.wg.Add(1)
	go e.run()
	return e
}

func (e *egress) enqueue(m Message) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.queue = append(e.queue, m)
	e.mu.Unlock()
	select {
	case e.notify <- struct{}{}:
	default:
	}
}

func (e *egress) run() {
	defer e.wg.Done()
	// debt accumulates sub-millisecond transmission times so that small
	// messages are charged accurately without a timer per message.
	var debt time.Duration
	const sleepGranularity = 200 * time.Microsecond
	for {
		e.mu.Lock()
		if len(e.queue) == 0 {
			e.mu.Unlock()
			select {
			case <-e.notify:
				continue
			case <-e.done:
				return
			}
		}
		m := e.queue[0]
		e.queue = e.queue[1:]
		e.mu.Unlock()

		debt += time.Duration(float64(m.Size()) / float64(e.rate) * float64(time.Second))
		if debt >= sleepGranularity {
			select {
			case <-time.After(debt):
			case <-e.done:
				return
			}
			debt = 0
		}
		e.emit(m)
	}
}

func (e *egress) stop() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	close(e.done)
	e.wg.Wait()
}
