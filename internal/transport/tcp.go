package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// maxFrameBytes bounds incoming frames to protect against corrupt or
// malicious length prefixes. PROPOSE batches top out at a few megabytes
// (400 envelopes x 4 KB in the paper's largest configuration).
const maxFrameBytes = 64 << 20

// TCPConfig parameterizes a TCP endpoint.
type TCPConfig struct {
	// Addr is this endpoint's logical address.
	Addr Addr
	// Listen is the host:port to accept connections on.
	Listen string
	// Peers maps logical addresses to host:port for outgoing connections.
	// Destinations not in the map are dropped (like the in-proc network).
	Peers map[Addr]string
	// DialTimeout bounds each connection attempt. Zero means 3 seconds.
	DialTimeout time.Duration
	// RedialBackoff is the pause between reconnection attempts. Zero means
	// 500 milliseconds.
	RedialBackoff time.Duration
}

// TCPTransport implements Conn over real sockets with length-prefixed binary
// frames. Each remote peer gets a dedicated writer goroutine fed by an
// unbounded queue (sends never block, mirroring the in-proc semantics);
// incoming connections are demultiplexed into one mailbox.
type TCPTransport struct {
	cfg      TCPConfig
	listener net.Listener
	mailbox  *mailbox

	mu       sync.Mutex
	peers    map[Addr]string
	writers  map[Addr]*tcpWriter
	accepted map[net.Conn]struct{}
	closed   bool

	wg sync.WaitGroup
}

var _ Conn = (*TCPTransport)(nil)

// NewTCPTransport starts listening and returns the endpoint. Outgoing
// connections are established lazily on first send.
func NewTCPTransport(cfg TCPConfig) (*TCPTransport, error) {
	if cfg.Addr == "" {
		return nil, errors.New("tcp transport: empty address")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.RedialBackoff <= 0 {
		cfg.RedialBackoff = 500 * time.Millisecond
	}
	peers := make(map[Addr]string, len(cfg.Peers))
	for addr, hostport := range cfg.Peers {
		peers[addr] = hostport
	}
	t := &TCPTransport{
		cfg:      cfg,
		peers:    peers,
		mailbox:  newMailbox(),
		writers:  make(map[Addr]*tcpWriter),
		accepted: make(map[net.Conn]struct{}),
	}
	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("tcp listen %s: %w", cfg.Listen, err)
		}
		t.listener = ln
		t.wg.Add(1)
		go t.acceptLoop()
	}
	return t, nil
}

// ListenAddr returns the bound listen address (useful with ":0").
func (t *TCPTransport) ListenAddr() string {
	if t.listener == nil {
		return ""
	}
	return t.listener.Addr().String()
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.accepted[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCPTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.accepted, conn)
		t.mu.Unlock()
	}()
	for {
		m, err := readFrame(conn)
		if err != nil {
			return
		}
		t.mailbox.put(m)
	}
}

func (t *TCPTransport) Addr() Addr { return t.cfg.Addr }

// SetPeers replaces the outgoing address book (used by deployments that
// learn peer ports after start, e.g. ":0" listeners in tests). Existing
// writer connections are kept; new destinations become reachable.
func (t *TCPTransport) SetPeers(peers map[Addr]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers = make(map[Addr]string, len(peers))
	for addr, hostport := range peers {
		t.peers[addr] = hostport
	}
}

func (t *TCPTransport) Send(to Addr, msgType uint16, payload []byte) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	hostport, ok := t.peers[to]
	if !ok {
		t.mu.Unlock()
		return // unknown destination: drop, as in the in-proc network
	}
	w, ok := t.writers[to]
	if !ok {
		w = newTCPWriter(hostport, t.cfg.DialTimeout, t.cfg.RedialBackoff)
		t.writers[to] = w
	}
	t.mu.Unlock()
	w.enqueue(Message{From: t.cfg.Addr, To: to, Type: msgType, Payload: payload})
}

func (t *TCPTransport) Inbox() <-chan Message { return t.mailbox.out }

func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	writers := make([]*tcpWriter, 0, len(t.writers))
	for _, w := range t.writers {
		writers = append(writers, w)
	}
	conns := make([]net.Conn, 0, len(t.accepted))
	for c := range t.accepted {
		conns = append(conns, c)
	}
	t.mu.Unlock()

	if t.listener != nil {
		t.listener.Close()
	}
	for _, c := range conns {
		c.Close() // unblocks readLoop goroutines
	}
	for _, w := range writers {
		w.stop()
	}
	t.wg.Wait()
	t.mailbox.close()
	return nil
}

// maxQueuedUnreachable bounds the send queue while a peer is unreachable:
// the newest messages are kept (they are the ones worth delivering when the
// peer comes back), older ones become the loss the asynchronous network
// model already allows.
const maxQueuedUnreachable = 4096

// tcpWriter owns the outgoing connection to one peer. Dials retry with
// jittered exponential backoff (RetryPolicy) without dropping the pending
// message, so a transient WAN blip delays delivery instead of losing it;
// only a bounded backlog is retained while the peer stays unreachable
// (asynchronous network semantics: the layer above must tolerate loss).
type tcpWriter struct {
	hostport string
	dialTO   time.Duration
	backoff  time.Duration

	// frameBuf is the writer goroutine's reusable framing buffer: one
	// steady-state allocation per connection instead of one per message.
	// Capped at retainedFrameCap after each write so one jumbo frame
	// does not pin megabytes for the connection's lifetime.
	frameBuf []byte

	mu     sync.Mutex
	queue  []Message
	notify chan struct{}
	done   chan struct{}
	closed bool
	wg     sync.WaitGroup
}

func newTCPWriter(hostport string, dialTO, backoff time.Duration) *tcpWriter {
	w := &tcpWriter{
		hostport: hostport,
		dialTO:   dialTO,
		backoff:  backoff,
		notify:   make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	w.wg.Add(1)
	go w.run()
	return w
}

func (w *tcpWriter) enqueue(m Message) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.queue = append(w.queue, m)
	w.mu.Unlock()
	select {
	case w.notify <- struct{}{}:
	default:
	}
}

func (w *tcpWriter) run() {
	defer w.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	policy := RetryPolicy{Initial: w.backoff, Max: 16 * w.backoff}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	dialAttempt := 0
	for {
		w.mu.Lock()
		if len(w.queue) == 0 {
			w.mu.Unlock()
			select {
			case <-w.notify:
				continue
			case <-w.done:
				return
			}
		}
		// Peek while disconnected: the head message must survive dial
		// failures. It is only popped once a connection exists.
		m := w.queue[0]
		if conn != nil {
			w.queue = w.queue[1:]
		}
		w.mu.Unlock()

		if conn == nil {
			var err error
			conn, err = net.DialTimeout("tcp", w.hostport, w.dialTO)
			if err != nil {
				conn = nil
				// Transient dial failure: keep the backlog (bounded) and
				// retry with jittered exponential backoff instead of
				// dropping the message.
				w.mu.Lock()
				if excess := len(w.queue) - maxQueuedUnreachable; excess > 0 {
					w.queue = append([]Message(nil), w.queue[excess:]...)
				}
				w.mu.Unlock()
				select {
				case <-time.After(policy.Delay(dialAttempt, rng)):
				case <-w.done:
					return
				}
				dialAttempt++
				continue
			}
			dialAttempt = 0
			continue // connected: loop back to pop the head
		}
		w.frameBuf = appendFrame(w.frameBuf[:0], m)
		if _, err := conn.Write(w.frameBuf); err != nil {
			conn.Close()
			conn = nil
		}
		if cap(w.frameBuf) > retainedFrameCap {
			w.frameBuf = nil
		}
	}
}

// retainedFrameCap bounds the framing buffer a writer keeps between
// messages; larger frames are allocated ad hoc and released.
const retainedFrameCap = 1 << 20

func (w *tcpWriter) stop() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	close(w.done)
	w.wg.Wait()
}

// Frame layout: u32 total length, then u16 type, u16 fromLen, u16 toLen,
// from, to, payload.

// appendFrame appends one framed message to buf and returns the extended
// slice, so a writer goroutine can reuse one buffer across messages.
func appendFrame(buf []byte, m Message) []byte {
	total := 2 + 2 + 2 + len(m.From) + len(m.To) + len(m.Payload)
	buf = binary.BigEndian.AppendUint32(buf, uint32(total))
	buf = binary.BigEndian.AppendUint16(buf, m.Type)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.From)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.To)))
	buf = append(buf, m.From...)
	buf = append(buf, m.To...)
	buf = append(buf, m.Payload...)
	return buf
}

// writeFrame frames and writes one message (one allocation per call; the
// tcpWriter hot path uses appendFrame with a reused buffer instead).
func writeFrame(conn net.Conn, m Message) error {
	_, err := conn.Write(appendFrame(nil, m))
	return err
}

func readFrame(conn net.Conn) (Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		return Message{}, err
	}
	total := binary.BigEndian.Uint32(lenBuf[:])
	if total < 6 || total > maxFrameBytes {
		return Message{}, fmt.Errorf("tcp frame length %d out of range", total)
	}
	buf := make([]byte, total)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return Message{}, err
	}
	msgType := binary.BigEndian.Uint16(buf[0:2])
	fromLen := int(binary.BigEndian.Uint16(buf[2:4]))
	toLen := int(binary.BigEndian.Uint16(buf[4:6]))
	if 6+fromLen+toLen > int(total) {
		return Message{}, errors.New("tcp frame header lengths exceed frame")
	}
	off := 6
	from := Addr(buf[off : off+fromLen])
	off += fromLen
	to := Addr(buf[off : off+toLen])
	off += toLen
	payload := buf[off:]
	return Message{From: from, To: to, Type: msgType, Payload: payload}, nil
}
