// Package transport provides the messaging substrate the consensus protocol
// and the ordering service run on. Two implementations share one interface:
//
//   - An in-process network with pluggable per-link latency (LAN or the WAN
//     matrix of internal/wan) and an optional per-sender egress bandwidth
//     model. The bandwidth model serializes outgoing messages on each node's
//     virtual NIC, which is what makes throughput fall as blocks are
//     disseminated to more receivers (Figure 7 of the paper) and what makes
//     large PROPOSE batches the dominant cost for 1–4 KB envelopes.
//   - A TCP transport (length-prefixed frames) for multi-process deployments
//     driven by cmd/ordernode and cmd/frontend.
//
// The in-process network also hosts the fault-injection hooks used by the
// test suite: message drops, partitions, and per-link filters.
package transport

import (
	"errors"
	"time"
)

// Addr identifies an endpoint on a network: an ordering node, a frontend, or
// a client.
type Addr string

// Message is the unit of communication. Type is interpreted by the layer
// above (consensus message kinds, block delivery, ...); the transport treats
// the payload as opaque bytes.
type Message struct {
	From    Addr
	To      Addr
	Type    uint16
	Payload []byte
}

// wireOverheadBytes approximates per-message framing/header cost charged by
// the bandwidth model (Ethernet + IP + TCP headers and our own frame).
const wireOverheadBytes = 80

// Size returns the number of bytes the message occupies on the wire,
// including framing overhead. The bandwidth model charges this amount.
func (m Message) Size() int {
	return len(m.Payload) + len(m.From) + len(m.To) + wireOverheadBytes
}

// Errors shared by transport implementations.
var (
	ErrClosed      = errors.New("transport closed")
	ErrUnknownAddr = errors.New("unknown address")
	ErrDuplicate   = errors.New("address already joined")
)

// Conn is one endpoint's handle on a network.
type Conn interface {
	// Addr returns the endpoint's own address.
	Addr() Addr
	// Send transmits a message. From is filled in by the transport. Send
	// never blocks on the receiver: delivery is asynchronous, and messages
	// to unknown or disconnected destinations are silently dropped (the
	// asynchronous-network assumption BFT protocols are designed for).
	Send(to Addr, msgType uint16, payload []byte)
	// Inbox returns the channel of received messages. It is closed when the
	// connection closes.
	Inbox() <-chan Message
	// Close detaches the endpoint from the network.
	Close() error
}

// LatencyModel yields the one-way propagation delay from one endpoint to
// another. Implementations must be safe for concurrent use.
type LatencyModel interface {
	Delay(from, to Addr) time.Duration
}

// zeroLatency is the default model: instantaneous delivery.
type zeroLatency struct{}

func (zeroLatency) Delay(_, _ Addr) time.Duration { return 0 }

// ZeroLatency returns a model with no propagation delay (an idealized LAN).
func ZeroLatency() LatencyModel { return zeroLatency{} }

// FixedLatency returns a model with a constant one-way delay between any two
// distinct endpoints (loopback stays instantaneous).
func FixedLatency(d time.Duration) LatencyModel { return fixedLatency(d) }

type fixedLatency time.Duration

func (f fixedLatency) Delay(from, to Addr) time.Duration {
	if from == to {
		return 0
	}
	return time.Duration(f)
}
