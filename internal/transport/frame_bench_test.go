package transport

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// Microbenchmarks for TCP frame encode/decode: every consensus message
// and disseminated block crosses this path twice on a real deployment,
// so the framing allocations are hot-path allocations.

func benchMessage(payloadSize int) Message {
	return Message{
		From:    "node-0",
		To:      "node-1",
		Type:    7,
		Payload: make([]byte, payloadSize),
	}
}

// BenchmarkAppendFrameReused frames messages into a reused buffer — the
// tcpWriter hot path after the buffer-reuse change.
func BenchmarkAppendFrameReused(b *testing.B) {
	m := benchMessage(512)
	var buf []byte
	b.ReportAllocs()
	b.SetBytes(int64(len(m.Payload)))
	for i := 0; i < b.N; i++ {
		buf = appendFrame(buf[:0], m)
		if len(buf) == 0 {
			b.Fatal("empty frame")
		}
	}
}

// BenchmarkAppendFrameFresh is the per-message-allocation baseline the
// reuse replaces.
func BenchmarkAppendFrameFresh(b *testing.B) {
	m := benchMessage(512)
	b.ReportAllocs()
	b.SetBytes(int64(len(m.Payload)))
	for i := 0; i < b.N; i++ {
		if buf := appendFrame(nil, m); len(buf) == 0 {
			b.Fatal("empty frame")
		}
	}
}

// replayConn serves one preframed message repeatedly (net.Conn stub for
// decode benchmarks).
type replayConn struct {
	frame []byte
	r     bytes.Reader
}

func (c *replayConn) Read(p []byte) (int, error) {
	if c.r.Len() == 0 {
		c.r.Reset(c.frame)
	}
	return c.r.Read(p)
}
func (c *replayConn) Write(p []byte) (int, error)        { return len(p), nil }
func (c *replayConn) Close() error                       { return nil }
func (c *replayConn) LocalAddr() net.Addr                { return nil }
func (c *replayConn) RemoteAddr() net.Addr               { return nil }
func (c *replayConn) SetDeadline(t time.Time) error      { return nil }
func (c *replayConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *replayConn) SetWriteDeadline(t time.Time) error { return nil }

// BenchmarkReadFrame decodes framed messages back out (the payload copy
// is inherent: it escapes into the mailbox).
func BenchmarkReadFrame(b *testing.B) {
	m := benchMessage(512)
	conn := &replayConn{frame: appendFrame(nil, m)}
	b.ReportAllocs()
	b.SetBytes(int64(len(m.Payload)))
	for i := 0; i < b.N; i++ {
		got, err := readFrame(conn)
		if err != nil || len(got.Payload) != len(m.Payload) {
			b.Fatalf("readFrame: %v", err)
		}
	}
}
