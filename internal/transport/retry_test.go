package transport

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestRetryDelayGrowsToCap(t *testing.T) {
	p := RetryPolicy{Initial: 100 * time.Millisecond, Max: time.Second, Jitter: -1}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second,
		time.Second, // capped from here on
	}
	for attempt, w := range want {
		if got := p.Delay(attempt, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
}

func TestRetryDelayJitterStaysBounded(t *testing.T) {
	p := RetryPolicy{Initial: 100 * time.Millisecond, Max: 5 * time.Second, Jitter: 0.2}
	rng := rand.New(rand.NewSource(7))
	varied := false
	for i := 0; i < 200; i++ {
		d := p.Delay(1, rng) // base 200ms, jittered ±20%
		if d < 160*time.Millisecond || d > 240*time.Millisecond {
			t.Fatalf("jittered delay %v outside [160ms, 240ms]", d)
		}
		if d != 200*time.Millisecond {
			varied = true
		}
	}
	if !varied {
		t.Fatal("200 jittered draws all identical; jitter is not applied")
	}
}

func TestRetryRunSucceedsAfterFailures(t *testing.T) {
	p := RetryPolicy{Initial: time.Millisecond, Jitter: -1}
	calls := 0
	err := p.Run(nil, func(attempt int) error {
		if attempt != calls {
			t.Fatalf("attempt %d on call %d", attempt, calls)
		}
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Run = %v after %d calls, want nil after 3", err, calls)
	}
}

func TestRetryRunStopsAtMaxAttempts(t *testing.T) {
	p := RetryPolicy{Initial: time.Millisecond, Jitter: -1, MaxAttempts: 4}
	boom := errors.New("boom")
	calls := 0
	err := p.Run(nil, func(int) error { calls++; return boom })
	if !errors.Is(err, boom) || calls != 4 {
		t.Fatalf("Run = %v after %d calls, want boom after exactly 4", err, calls)
	}
}

func TestRetryRunStopsAtMaxElapsed(t *testing.T) {
	p := RetryPolicy{Initial: 20 * time.Millisecond, Jitter: -1, MaxElapsed: 50 * time.Millisecond}
	boom := errors.New("boom")
	start := time.Now()
	err := p.Run(nil, func(int) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want boom", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("Run overran its elapsed budget: %v", elapsed)
	}
}

func TestRetryRunUnblocksOnDone(t *testing.T) {
	p := RetryPolicy{Initial: time.Hour, Jitter: -1} // pause would block forever
	boom := errors.New("boom")
	done := make(chan struct{})
	ran := make(chan struct{})
	var once sync.Once
	finished := make(chan error, 1)
	go func() {
		finished <- p.Run(done, func(int) error {
			once.Do(func() { close(ran) })
			return boom
		})
	}()
	<-ran // op failed once; Run is now in its hour-long pause
	close(done)
	select {
	case err := <-finished:
		if !errors.Is(err, boom) {
			t.Fatalf("Run = %v, want the last op error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not unblock when done closed")
	}
}
