package wan

import (
	"testing"
	"time"

	"repro/internal/transport"
)

func TestRTTSymmetry(t *testing.T) {
	regions := Regions()
	for _, a := range regions {
		for _, b := range regions {
			if RTT(a, b) != RTT(b, a) {
				t.Fatalf("RTT(%s,%s) != RTT(%s,%s)", a, b, b, a)
			}
		}
	}
}

func TestRTTAllPairsDefined(t *testing.T) {
	regions := Regions()
	for i, a := range regions {
		for _, b := range regions[i+1:] {
			rtt := RTT(a, b)
			if rtt <= 0 {
				t.Fatalf("RTT(%s,%s) = %v, want > 0", a, b, rtt)
			}
			if rtt >= 150*time.Millisecond && rtt != expectedRTT(a, b) {
				// Hitting the unknown-pair fallback would mean a missing
				// matrix entry.
				t.Fatalf("RTT(%s,%s) fell back to default", a, b)
			}
		}
	}
}

func expectedRTT(a, b Region) time.Duration {
	if ms, ok := rttMillis[[2]Region{a, b}]; ok {
		return time.Duration(ms) * time.Millisecond
	}
	ms := rttMillis[[2]Region{b, a}]
	return time.Duration(ms) * time.Millisecond
}

func TestIntraRegionRTT(t *testing.T) {
	if got := RTT(Oregon, Oregon); got != intraRegionRTT {
		t.Fatalf("intra-region RTT = %v, want %v", got, intraRegionRTT)
	}
}

func TestOneWayIsHalfRTT(t *testing.T) {
	if got, want := OneWay(Oregon, Ireland), RTT(Oregon, Ireland)/2; got != want {
		t.Fatalf("OneWay = %v, want %v", got, want)
	}
}

func TestModelDelay(t *testing.T) {
	m := NewModel(map[transport.Addr]Region{
		"n0": Oregon,
		"n1": Ireland,
	}, 0)
	got := m.Delay("n0", "n1")
	if want := OneWay(Oregon, Ireland); got != want {
		t.Fatalf("Delay = %v, want %v", got, want)
	}
	// Unmapped endpoints never add latency.
	if d := m.Delay("n0", "observer"); d != 0 {
		t.Fatalf("unmapped endpoint delay = %v, want 0", d)
	}
}

func TestModelPlaceAndRegionOf(t *testing.T) {
	m := NewModel(nil, 0)
	if _, ok := m.RegionOf("x"); ok {
		t.Fatal("unplaced endpoint has a region")
	}
	m.Place("x", Sydney)
	r, ok := m.RegionOf("x")
	if !ok || r != Sydney {
		t.Fatalf("RegionOf = %v,%v; want sydney,true", r, ok)
	}
}

func TestModelJitterBounds(t *testing.T) {
	m := NewModel(map[transport.Addr]Region{"a": Oregon, "b": Sydney}, 10)
	base := OneWay(Oregon, Sydney)
	lo := time.Duration(float64(base) * 0.89)
	hi := time.Duration(float64(base) * 1.11)
	for i := 0; i < 200; i++ {
		d := m.Delay("a", "b")
		if d < lo || d > hi {
			t.Fatalf("jittered delay %v outside [%v,%v]", d, lo, hi)
		}
	}
}

func TestModelCopiesPlacement(t *testing.T) {
	placement := map[transport.Addr]Region{"a": Oregon}
	m := NewModel(placement, 0)
	placement["a"] = Sydney // mutate the caller's map
	r, _ := m.RegionOf("a")
	if r != Oregon {
		t.Fatal("model aliased the caller's placement map")
	}
}

func TestPaperPlacementSanity(t *testing.T) {
	// In the paper, Virginia frontends (collocated with a V_max replica)
	// observe lower latency than the Sao Paulo frontend (V_min). The matrix
	// must be consistent with that: Virginia is closer to the replica
	// majority (Oregon/Virginia/Ireland) than Sao Paulo is.
	viaVirginia := RTT(Virginia, Oregon) + RTT(Virginia, Ireland)
	viaSaoPaulo := RTT(SaoPaulo, Oregon) + RTT(SaoPaulo, Ireland)
	if viaVirginia >= viaSaoPaulo {
		t.Fatalf("matrix inconsistent with the paper: virginia %v >= saopaulo %v",
			viaVirginia, viaSaoPaulo)
	}
}
