package wan

import (
	"testing"
	"time"

	"repro/internal/transport"
)

func TestRTTSymmetry(t *testing.T) {
	regions := Regions()
	for _, a := range regions {
		for _, b := range regions {
			if RTT(a, b) != RTT(b, a) {
				t.Fatalf("RTT(%s,%s) != RTT(%s,%s)", a, b, b, a)
			}
		}
	}
}

func TestRTTAllPairsDefined(t *testing.T) {
	regions := Regions()
	for i, a := range regions {
		for _, b := range regions[i+1:] {
			rtt := RTT(a, b)
			if rtt <= 0 {
				t.Fatalf("RTT(%s,%s) = %v, want > 0", a, b, rtt)
			}
			if rtt >= 150*time.Millisecond && rtt != expectedRTT(a, b) {
				// Hitting the unknown-pair fallback would mean a missing
				// matrix entry.
				t.Fatalf("RTT(%s,%s) fell back to default", a, b)
			}
		}
	}
}

func expectedRTT(a, b Region) time.Duration {
	if ms, ok := rttMillis[[2]Region{a, b}]; ok {
		return time.Duration(ms) * time.Millisecond
	}
	ms := rttMillis[[2]Region{b, a}]
	return time.Duration(ms) * time.Millisecond
}

func TestIntraRegionRTT(t *testing.T) {
	if got := RTT(Oregon, Oregon); got != intraRegionRTT {
		t.Fatalf("intra-region RTT = %v, want %v", got, intraRegionRTT)
	}
}

func TestOneWayIsHalfRTT(t *testing.T) {
	if got, want := OneWay(Oregon, Ireland), RTT(Oregon, Ireland)/2; got != want {
		t.Fatalf("OneWay = %v, want %v", got, want)
	}
}

func TestModelDelay(t *testing.T) {
	m := NewModel(map[transport.Addr]Region{
		"n0": Oregon,
		"n1": Ireland,
	}, 0)
	got := m.Delay("n0", "n1")
	if want := OneWay(Oregon, Ireland); got != want {
		t.Fatalf("Delay = %v, want %v", got, want)
	}
	// Unmapped endpoints never add latency.
	if d := m.Delay("n0", "observer"); d != 0 {
		t.Fatalf("unmapped endpoint delay = %v, want 0", d)
	}
}

func TestModelPlaceAndRegionOf(t *testing.T) {
	m := NewModel(nil, 0)
	if _, ok := m.RegionOf("x"); ok {
		t.Fatal("unplaced endpoint has a region")
	}
	m.Place("x", Sydney)
	r, ok := m.RegionOf("x")
	if !ok || r != Sydney {
		t.Fatalf("RegionOf = %v,%v; want sydney,true", r, ok)
	}
}

func TestModelJitterBounds(t *testing.T) {
	m := NewModel(map[transport.Addr]Region{"a": Oregon, "b": Sydney}, 10)
	base := OneWay(Oregon, Sydney)
	lo := time.Duration(float64(base) * 0.89)
	hi := time.Duration(float64(base) * 1.11)
	for i := 0; i < 200; i++ {
		d := m.Delay("a", "b")
		if d < lo || d > hi {
			t.Fatalf("jittered delay %v outside [%v,%v]", d, lo, hi)
		}
	}
}

func TestModelCopiesPlacement(t *testing.T) {
	placement := map[transport.Addr]Region{"a": Oregon}
	m := NewModel(placement, 0)
	placement["a"] = Sydney // mutate the caller's map
	r, _ := m.RegionOf("a")
	if r != Oregon {
		t.Fatal("model aliased the caller's placement map")
	}
}

func TestModelJitterDeterministicUnderSeed(t *testing.T) {
	placement := map[transport.Addr]Region{"a": Oregon, "b": Sydney, "c": Ireland}
	m1 := NewModelSeeded(placement, 10, 7)
	m2 := NewModelSeeded(placement, 10, 7)
	// Interleave links differently on the two models: the i-th message on a
	// given link must still draw the same jitter, because links are FIFO in
	// the transport and each link has its own counter.
	var seq1, seq2 []time.Duration
	for i := 0; i < 50; i++ {
		seq1 = append(seq1, m1.Delay("a", "b"))
		m1.Delay("a", "c") // extra traffic on another link
	}
	for i := 0; i < 50; i++ {
		m2.Delay("c", "a") // different interleaving
		m2.Delay("a", "c")
		seq2 = append(seq2, m2.Delay("a", "b"))
	}
	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("delay %d differs: %v vs %v", i, seq1[i], seq2[i])
		}
	}
	// A different seed must produce a different stream.
	m3 := NewModelSeeded(placement, 10, 8)
	diff := false
	for i := 0; i < 50; i++ {
		if m3.Delay("a", "b") != seq1[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("seed 8 produced the same jitter stream as seed 7")
	}
}

func TestLossDeterministicAndBounded(t *testing.T) {
	const frac = 0.1
	l1 := NewLoss(frac, 3, nil)
	l2 := NewLoss(frac, 3, nil)
	msg := func(i int) transport.Message {
		return transport.Message{From: "a", To: "b"}
	}
	dropped := 0
	const total = 5000
	for i := 0; i < total; i++ {
		d1 := l1.Drop(msg(i))
		if d2 := l2.Drop(msg(i)); d1 != d2 {
			t.Fatalf("loss decision %d differs between same-seed models", i)
		}
		if d1 {
			dropped++
		}
	}
	got := float64(dropped) / total
	if got < frac/2 || got > frac*2 {
		t.Fatalf("drop rate %.3f far from configured %.3f", got, frac)
	}
	// Exempt predicate shields messages.
	le := NewLoss(1.0, 3, func(m transport.Message) bool { return m.Type == 99 })
	if le.Drop(transport.Message{From: "a", To: "b", Type: 99}) {
		t.Fatal("exempt message was dropped")
	}
	if !le.Drop(transport.Message{From: "a", To: "b", Type: 1}) {
		t.Fatal("fraction 1.0 failed to drop a non-exempt message")
	}
}

func TestPaperPlacementSanity(t *testing.T) {
	// In the paper, Virginia frontends (collocated with a V_max replica)
	// observe lower latency than the Sao Paulo frontend (V_min). The matrix
	// must be consistent with that: Virginia is closer to the replica
	// majority (Oregon/Virginia/Ireland) than Sao Paulo is.
	viaVirginia := RTT(Virginia, Oregon) + RTT(Virginia, Ireland)
	viaSaoPaulo := RTT(SaoPaulo, Oregon) + RTT(SaoPaulo, Ireland)
	if viaVirginia >= viaSaoPaulo {
		t.Fatalf("matrix inconsistent with the paper: virginia %v >= saopaulo %v",
			viaVirginia, viaSaoPaulo)
	}
}
