// Package wan models the wide-area network of the paper's geo-distributed
// experiment (Section 6.3): ordering nodes in Oregon, Ireland, Sydney, and
// São Paulo (plus Virginia as WHEAT's additional replica) and frontends in
// Canada, Oregon, Virginia, and São Paulo.
//
// The latency matrix holds approximate Amazon EC2 inter-region round-trip
// times; the transport's LatencyModel consumes one-way delays (RTT/2) with a
// small jitter. Substituting this model for the paper's real EC2 deployment
// preserves the quantity the experiment measures: consensus latency dominated
// by WAN round trips on the protocol's critical path.
package wan

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/transport"
)

// Region names the EC2 regions used in the paper.
type Region string

// The regions of the paper's deployment (Section 6.3).
const (
	Oregon   Region = "oregon"   // us-west-2
	Ireland  Region = "ireland"  // eu-west-1
	Sydney   Region = "sydney"   // ap-southeast-2
	SaoPaulo Region = "saopaulo" // sa-east-1
	Virginia Region = "virginia" // us-east-1
	Canada   Region = "canada"   // ca-central-1
)

// Regions returns all modelled regions.
func Regions() []Region {
	return []Region{Oregon, Ireland, Sydney, SaoPaulo, Virginia, Canada}
}

// rttMillis holds approximate inter-region round-trip times in milliseconds,
// from public EC2 latency measurements contemporary with the paper. The map
// stores each unordered pair once; lookup symmetrizes.
var rttMillis = map[[2]Region]int{
	{Oregon, Ireland}:    130,
	{Oregon, Sydney}:     140,
	{Oregon, SaoPaulo}:   180,
	{Oregon, Virginia}:   70,
	{Oregon, Canada}:     60,
	{Ireland, Sydney}:    280,
	{Ireland, SaoPaulo}:  185,
	{Ireland, Virginia}:  80,
	{Ireland, Canada}:    70,
	{Sydney, SaoPaulo}:   310,
	{Sydney, Virginia}:   200,
	{Sydney, Canada}:     210,
	{SaoPaulo, Virginia}: 120,
	{SaoPaulo, Canada}:   125,
	{Virginia, Canada}:   15,
}

// intraRegionRTT is the round-trip time between two endpoints in the same
// region (same availability zone).
const intraRegionRTT = 1 * time.Millisecond

// RTT returns the modelled round-trip time between two regions.
func RTT(a, b Region) time.Duration {
	if a == b {
		return intraRegionRTT
	}
	if ms, ok := rttMillis[[2]Region{a, b}]; ok {
		return time.Duration(ms) * time.Millisecond
	}
	if ms, ok := rttMillis[[2]Region{b, a}]; ok {
		return time.Duration(ms) * time.Millisecond
	}
	// Unknown pairing: be conservative rather than instantaneous.
	return 150 * time.Millisecond
}

// OneWay returns the modelled one-way delay between two regions.
func OneWay(a, b Region) time.Duration {
	return RTT(a, b) / 2
}

// Model is a transport.LatencyModel that maps endpoint addresses to regions.
// Unmapped addresses are treated as collocated with everything (zero delay),
// which keeps test-only observers out of the latency path.
type Model struct {
	mu        sync.RWMutex
	placement map[transport.Addr]Region
	jitterPct int // +/- percent uniform jitter applied to each delay
	rng       *rand.Rand
}

// NewModel creates a WAN latency model with the given placement. A jitter of
// jitterPct percent (e.g. 5) is applied uniformly at random to each delay;
// zero disables jitter and makes the model deterministic.
func NewModel(placement map[transport.Addr]Region, jitterPct int) *Model {
	copied := make(map[transport.Addr]Region, len(placement))
	for addr, region := range placement {
		copied[addr] = region
	}
	return &Model{
		placement: copied,
		jitterPct: jitterPct,
		rng:       rand.New(rand.NewSource(42)),
	}
}

var _ transport.LatencyModel = (*Model)(nil)

// Place assigns (or reassigns) an endpoint to a region.
func (m *Model) Place(addr transport.Addr, region Region) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.placement[addr] = region
}

// RegionOf returns the region an endpoint is placed in.
func (m *Model) RegionOf(addr transport.Addr) (Region, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	r, ok := m.placement[addr]
	return r, ok
}

// Delay implements transport.LatencyModel.
func (m *Model) Delay(from, to transport.Addr) time.Duration {
	m.mu.RLock()
	ra, okA := m.placement[from]
	rb, okB := m.placement[to]
	m.mu.RUnlock()
	if !okA || !okB {
		return 0
	}
	base := OneWay(ra, rb)
	if m.jitterPct <= 0 {
		return base
	}
	m.mu.Lock()
	f := 1 + (m.rng.Float64()*2-1)*float64(m.jitterPct)/100
	m.mu.Unlock()
	return time.Duration(float64(base) * f)
}
