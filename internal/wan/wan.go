// Package wan models the wide-area network of the paper's geo-distributed
// experiment (Section 6.3): ordering nodes in Oregon, Ireland, Sydney, and
// São Paulo (plus Virginia as WHEAT's additional replica) and frontends in
// Canada, Oregon, Virginia, and São Paulo.
//
// The latency matrix holds approximate Amazon EC2 inter-region round-trip
// times; the transport's LatencyModel consumes one-way delays (RTT/2) with a
// small jitter. Substituting this model for the paper's real EC2 deployment
// preserves the quantity the experiment measures: consensus latency dominated
// by WAN round trips on the protocol's critical path.
//
// Jitter (and the companion Loss model) is deterministic under a seed: the
// i-th message on a given (from, to) link always draws the same value, no
// matter how goroutines interleave across links. Chaos scenarios rely on this
// to be replayable.
package wan

import (
	"sync"
	"time"

	"repro/internal/transport"
)

// Region names the EC2 regions used in the paper.
type Region string

// The regions of the paper's deployment (Section 6.3).
const (
	Oregon   Region = "oregon"   // us-west-2
	Ireland  Region = "ireland"  // eu-west-1
	Sydney   Region = "sydney"   // ap-southeast-2
	SaoPaulo Region = "saopaulo" // sa-east-1
	Virginia Region = "virginia" // us-east-1
	Canada   Region = "canada"   // ca-central-1
)

// Regions returns all modelled regions.
func Regions() []Region {
	return []Region{Oregon, Ireland, Sydney, SaoPaulo, Virginia, Canada}
}

// rttMillis holds approximate inter-region round-trip times in milliseconds,
// from public EC2 latency measurements contemporary with the paper. The map
// stores each unordered pair once; lookup symmetrizes.
var rttMillis = map[[2]Region]int{
	{Oregon, Ireland}:    130,
	{Oregon, Sydney}:     140,
	{Oregon, SaoPaulo}:   180,
	{Oregon, Virginia}:   70,
	{Oregon, Canada}:     60,
	{Ireland, Sydney}:    280,
	{Ireland, SaoPaulo}:  185,
	{Ireland, Virginia}:  80,
	{Ireland, Canada}:    70,
	{Sydney, SaoPaulo}:   310,
	{Sydney, Virginia}:   200,
	{Sydney, Canada}:     210,
	{SaoPaulo, Virginia}: 120,
	{SaoPaulo, Canada}:   125,
	{Virginia, Canada}:   15,
}

// intraRegionRTT is the round-trip time between two endpoints in the same
// region (same availability zone).
const intraRegionRTT = 1 * time.Millisecond

// RTT returns the modelled round-trip time between two regions.
func RTT(a, b Region) time.Duration {
	if a == b {
		return intraRegionRTT
	}
	if ms, ok := rttMillis[[2]Region{a, b}]; ok {
		return time.Duration(ms) * time.Millisecond
	}
	if ms, ok := rttMillis[[2]Region{b, a}]; ok {
		return time.Duration(ms) * time.Millisecond
	}
	// Unknown pairing: be conservative rather than instantaneous.
	return 150 * time.Millisecond
}

// OneWay returns the modelled one-way delay between two regions.
func OneWay(a, b Region) time.Duration {
	return RTT(a, b) / 2
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// well-mixed 64-bit hash used to derive per-message randomness from
// (seed, link, sequence) without any shared generator state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashAddr folds an address into 64 bits (FNV-1a).
func hashAddr(a transport.Addr) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(a); i++ {
		h ^= uint64(a[i])
		h *= 1099511628211
	}
	return h
}

// linkKey identifies one direction of one endpoint pair.
type linkKey struct {
	from, to transport.Addr
}

// linkSeq hands out a per-(from, to) message counter. Per-link counters are
// what make the randomness deterministic under concurrency: links are FIFO in
// the transport, so the i-th send on a link is a stable notion even though
// sends on different links interleave arbitrarily.
type linkSeq struct {
	mu  sync.Mutex
	seq map[linkKey]uint64
}

func newLinkSeq() *linkSeq {
	return &linkSeq{seq: make(map[linkKey]uint64)}
}

func (s *linkSeq) next(from, to transport.Addr) uint64 {
	key := linkKey{from: from, to: to}
	s.mu.Lock()
	n := s.seq[key]
	s.seq[key] = n + 1
	s.mu.Unlock()
	return n
}

// draw returns a uniform value in [0, 1) derived from (seed, link, n).
func draw(seed uint64, from, to transport.Addr, n uint64) float64 {
	x := splitmix64(seed ^ splitmix64(hashAddr(from)) ^ splitmix64(hashAddr(to)<<1) ^ n)
	return float64(x>>11) / float64(1<<53)
}

// Model is a transport.LatencyModel that maps endpoint addresses to regions.
// Unmapped addresses are treated as collocated with everything (zero delay),
// which keeps test-only observers out of the latency path.
type Model struct {
	mu        sync.RWMutex
	placement map[transport.Addr]Region
	jitterPct int // +/- percent uniform jitter applied to each delay
	seed      uint64
	seq       *linkSeq
}

// NewModel creates a WAN latency model with the given placement. A jitter of
// jitterPct percent (e.g. 5) is applied to each delay; zero disables jitter.
// Equivalent to NewModelSeeded with a fixed default seed.
func NewModel(placement map[transport.Addr]Region, jitterPct int) *Model {
	return NewModelSeeded(placement, jitterPct, 42)
}

// NewModelSeeded creates a WAN latency model whose jitter stream is a pure
// function of (seed, link, per-link message index): two models built with the
// same placement and seed assign identical delays to identical traffic, which
// makes WAN chaos scenarios reproducible.
func NewModelSeeded(placement map[transport.Addr]Region, jitterPct int, seed uint64) *Model {
	copied := make(map[transport.Addr]Region, len(placement))
	for addr, region := range placement {
		copied[addr] = region
	}
	return &Model{
		placement: copied,
		jitterPct: jitterPct,
		seed:      seed,
		seq:       newLinkSeq(),
	}
}

var _ transport.LatencyModel = (*Model)(nil)

// Place assigns (or reassigns) an endpoint to a region.
func (m *Model) Place(addr transport.Addr, region Region) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.placement[addr] = region
}

// RegionOf returns the region an endpoint is placed in.
func (m *Model) RegionOf(addr transport.Addr) (Region, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	r, ok := m.placement[addr]
	return r, ok
}

// Delay implements transport.LatencyModel.
func (m *Model) Delay(from, to transport.Addr) time.Duration {
	m.mu.RLock()
	ra, okA := m.placement[from]
	rb, okB := m.placement[to]
	m.mu.RUnlock()
	if !okA || !okB {
		return 0
	}
	base := OneWay(ra, rb)
	if m.jitterPct <= 0 {
		return base
	}
	n := m.seq.next(from, to)
	f := 1 + (draw(m.seed, from, to, n)*2-1)*float64(m.jitterPct)/100
	return time.Duration(float64(base) * f)
}

// Loss models probabilistic message loss on WAN links: each message is
// dropped with probability fraction, decided by the same deterministic
// (seed, link, index) scheme as the Model's jitter. Install its Drop method
// with InProcNetwork.SetDrop; it composes with partitions because the drop
// predicate survives Heal.
type Loss struct {
	fraction float64
	seed     uint64
	seq      *linkSeq
	exempt   func(transport.Message) bool
}

// NewLoss creates a deterministic loss model dropping the given fraction
// (0..1) of messages. The optional exempt predicate shields messages (e.g. a
// control channel) from loss.
func NewLoss(fraction float64, seed uint64, exempt func(transport.Message) bool) *Loss {
	return &Loss{
		fraction: fraction,
		seed:     seed,
		seq:      newLinkSeq(),
		exempt:   exempt,
	}
}

// Drop reports whether the message should be lost. Deterministic per (seed,
// link, per-link message index).
func (l *Loss) Drop(m transport.Message) bool {
	if l.fraction <= 0 {
		return false
	}
	if l.exempt != nil && l.exempt(m) {
		return false
	}
	n := l.seq.next(m.From, m.To)
	return draw(l.seed, m.From, m.To, n) < l.fraction
}
