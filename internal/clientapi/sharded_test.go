package clientapi

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/fabric"
	"repro/internal/sharding"
)

// startShardedServer serves a channel→shard router over the wire protocol:
// two independent orderers behind one client API, channels split by a
// strict shard map.
func startShardedServer(t *testing.T, m sharding.Map) (string, map[sharding.ShardID]*core.SoloOrderer) {
	t.Helper()
	shards := make(map[sharding.ShardID]*core.SoloOrderer)
	backends := make(map[sharding.ShardID]sharding.Backend)
	for _, shard := range m.Shards {
		key, err := cryptoutil.GenerateKeyPair()
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		solo, err := core.NewSoloOrderer(core.SoloConfig{BlockSize: 1, Key: key, SigningWorkers: 2})
		if err != nil {
			t.Fatalf("solo shard %d: %v", shard, err)
		}
		t.Cleanup(solo.Close)
		shards[shard] = solo
		backends[shard] = solo
	}
	router, err := sharding.NewRouter(m, backends)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer(router)
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return ln.Addr().String(), shards
}

// TestWireShardedRouting drives the client protocol against a sharded
// deployment: channels land on their assigned shard only, and a channel
// outside a strict map answers NOT_FOUND over the wire.
func TestWireShardedRouting(t *testing.T) {
	addr, shards := startShardedServer(t, sharding.Map{
		Shards:   []sharding.ShardID{0, 1},
		Channels: map[string]sharding.ShardID{"alpha": 0, "beta": 1},
		Strict:   true,
	})
	cli, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cli.Close()

	// Broadcast to an unassigned channel of a strict map: NOT_FOUND.
	status, _, err := cli.Broadcast(mkEnv("ghost", 0))
	if err != nil {
		t.Fatalf("broadcast ghost: %v", err)
	}
	if status != fabric.StatusNotFound {
		t.Fatalf("unassigned channel acked %s, want NOT_FOUND", status)
	}
	// Deliver on it fails the stream (the router refuses the seek).
	stream, err := cli.Deliver("ghost", fabric.DeliverOldest())
	if err != nil {
		t.Fatalf("deliver ghost: %v", err)
	}
	select {
	case _, ok := <-stream.Blocks():
		if ok {
			t.Fatal("unassigned channel delivered a block")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("unassigned deliver never ended")
	}
	if stream.Err() == nil {
		t.Fatal("unassigned deliver ended without error")
	}

	// Assigned channels order on their own shard and deliver through the
	// same connection.
	for i, ch := range []string{"alpha", "beta", "alpha"} {
		if status, detail, err := cli.Broadcast(mkEnv(ch, i)); err != nil || status != fabric.StatusSuccess {
			t.Fatalf("broadcast %s: %s (%s) %v", ch, status, detail, err)
		}
	}
	replay, err := cli.Deliver("alpha", fabric.DeliverOldest().Through(1))
	if err != nil {
		t.Fatalf("deliver alpha: %v", err)
	}
	var got []*fabric.Block
	deadline := time.After(10 * time.Second)
	for done := false; !done; {
		select {
		case b, ok := <-replay.Blocks():
			if !ok {
				done = true
				break
			}
			got = append(got, b)
		case <-deadline:
			t.Fatalf("alpha replay: %d blocks", len(got))
		}
	}
	if err := replay.Err(); err != nil || len(got) != 2 {
		t.Fatalf("alpha replay: %d blocks, err %v", len(got), err)
	}

	// Shard isolation, observed at the backends: alpha's two envelopes on
	// shard 0, beta's one on shard 1.
	if env0, _ := shards[0].Stats(); env0 != 2 {
		t.Fatalf("shard 0 ordered %d envelopes, want 2", env0)
	}
	if env1, _ := shards[1].Stats(); env1 != 1 {
		t.Fatalf("shard 1 ordered %d envelopes, want 1", env1)
	}
}
