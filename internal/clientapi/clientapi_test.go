package clientapi

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/fabric"
)

// startSoloServer serves a solo orderer over the wire protocol on a
// loopback listener and returns its address.
func startSoloServer(t *testing.T, blockSize int) (string, *core.SoloOrderer) {
	t.Helper()
	key, err := cryptoutil.GenerateKeyPair()
	if err != nil {
		t.Fatalf("keygen: %v", err)
	}
	solo, err := core.NewSoloOrderer(core.SoloConfig{BlockSize: blockSize, Key: key, SigningWorkers: 2})
	if err != nil {
		t.Fatalf("solo: %v", err)
	}
	t.Cleanup(solo.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer(solo)
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return ln.Addr().String(), solo
}

func mkEnv(channel string, i int) *fabric.Envelope {
	return &fabric.Envelope{
		ChannelID:         channel,
		ClientID:          "wire-test",
		TimestampUnixNano: int64(i),
		Payload:           []byte(fmt.Sprintf("payload-%d", i)),
	}
}

// TestWireProtocolBroadcastAndDeliver drives the full loop over real TCP:
// typed acks, a live Deliver stream, and a historical replay with a stop
// position from a second connection.
func TestWireProtocolBroadcastAndDeliver(t *testing.T) {
	addr, _ := startSoloServer(t, 2)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cli.Close()

	stream, err := cli.Deliver("ch", fabric.DeliverNewest())
	if err != nil {
		t.Fatalf("deliver: %v", err)
	}
	for i := 0; i < 6; i++ {
		status, detail, err := cli.Broadcast(mkEnv("ch", i))
		if err != nil {
			t.Fatalf("broadcast %d: %v", i, err)
		}
		if status != fabric.StatusSuccess {
			t.Fatalf("broadcast %d acked %s (%s)", i, status, detail)
		}
	}
	var got []*fabric.Block
	deadline := time.After(10 * time.Second)
	for len(got) < 3 {
		select {
		case b, ok := <-stream.Blocks():
			if !ok {
				t.Fatalf("stream closed early: %v", stream.Err())
			}
			got = append(got, b)
		case <-deadline:
			t.Fatalf("timed out with %d blocks", len(got))
		}
	}
	if err := fabric.VerifyChain(got); err != nil {
		t.Fatalf("delivered chain: %v", err)
	}
	stream.Cancel()

	// A second, late connection replays the sealed chain via a seek and
	// stops at the stop position.
	cli2, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial 2: %v", err)
	}
	defer cli2.Close()
	replay, err := cli2.Deliver("ch", fabric.DeliverOldest().Through(1))
	if err != nil {
		t.Fatalf("deliver oldest: %v", err)
	}
	var replayed []*fabric.Block
	for b := range replay.Blocks() {
		replayed = append(replayed, b)
	}
	if err := replay.Err(); err != nil {
		t.Fatalf("replay ended with: %v", err)
	}
	if len(replayed) != 2 || replayed[0].Header.Number != 0 || replayed[1].Header.Number != 1 {
		t.Fatalf("replayed %d blocks, want exactly 0..1", len(replayed))
	}
}

// TestWireProtocolTypedErrors maps orderer rejections onto wire statuses.
func TestWireProtocolTypedErrors(t *testing.T) {
	addr, _ := startSoloServer(t, 2)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cli.Close()

	// Empty channel: rejected by the orderer with BAD_REQUEST.
	status, _, err := cli.Broadcast(&fabric.Envelope{ClientID: "x", Payload: []byte("y")})
	if err != nil {
		t.Fatalf("broadcast: %v", err)
	}
	if status != fabric.StatusBadRequest {
		t.Fatalf("empty-channel envelope acked %s, want BAD_REQUEST", status)
	}
	// A seek whose stop precedes its start fails the stream immediately.
	stream, err := cli.Deliver("ch", fabric.DeliverFrom(5).Through(2))
	if err != nil {
		t.Fatalf("deliver: %v", err)
	}
	select {
	case _, ok := <-stream.Blocks():
		if ok {
			t.Fatal("bad seek delivered a block")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("bad seek stream never ended")
	}
	if stream.Err() == nil {
		t.Fatal("bad seek ended without error")
	}
}

// TestWireProtocolCancel cancels a live tail and checks the stream closes
// cleanly while the connection stays usable.
func TestWireProtocolCancel(t *testing.T) {
	addr, _ := startSoloServer(t, 2)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cli.Close()
	stream, err := cli.Deliver("ch", fabric.DeliverNewest())
	if err != nil {
		t.Fatalf("deliver: %v", err)
	}
	stream.Cancel()
	select {
	case _, ok := <-stream.Blocks():
		if ok {
			t.Fatal("canceled stream delivered a block")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled stream never closed")
	}
	if err := stream.Err(); err != nil {
		t.Fatalf("canceled stream ended with: %v", err)
	}
	// The connection still serves broadcasts.
	if status, _, err := cli.Broadcast(mkEnv("ch", 0)); err != nil || status != fabric.StatusSuccess {
		t.Fatalf("broadcast after cancel: %s, %v", status, err)
	}
}
