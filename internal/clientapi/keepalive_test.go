package clientapi

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fabric"
)

// stubOrderer serves scripted Deliver outcomes and records cancellations.
type stubOrderer struct {
	mu       sync.Mutex
	deliver  func() (*fabric.BlockStream, error)
	canceled chan struct{}
}

func (s *stubOrderer) Broadcast(*fabric.Envelope) fabric.BroadcastStatus {
	return fabric.StatusSuccess
}

func (s *stubOrderer) Deliver(string, fabric.SeekInfo) (*fabric.BlockStream, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deliver()
}

// startServer serves orderer on a loopback listener.
func startServer(t *testing.T, orderer fabric.Orderer, opts ServerOptions) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerWithOptions(orderer, opts)
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return ln.Addr().String()
}

// TestPrunedSeekSurfacesNotFound checks the retention error surface on
// the wire: a Deliver whose stream fails with the typed pruned error
// ends with NOT_FOUND at the client.
func TestPrunedSeekSurfacesNotFound(t *testing.T) {
	stub := &stubOrderer{
		deliver: func() (*fabric.BlockStream, error) {
			stream := fabric.NewBlockStream()
			stream.Close(&fabric.PrunedError{Channel: "ch", Floor: 7})
			return stream, nil
		},
	}
	addr := startServer(t, stub, ServerOptions{})
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	stream, err := client.Deliver("ch", fabric.DeliverFrom(0))
	if err != nil {
		t.Fatal(err)
	}
	for range stream.Blocks() {
		t.Fatal("pruned stream delivered a block")
	}
	serr := stream.Err()
	if serr == nil || !strings.Contains(serr.Error(), "NOT_FOUND") {
		t.Fatalf("pruned stream ended with %v, want NOT_FOUND", serr)
	}
	if !strings.Contains(serr.Error(), "below 7") {
		t.Fatalf("pruned detail lost: %v", serr)
	}
}

// TestKeepaliveDropsDeadClient opens a Deliver stream from a raw TCP
// connection that never answers pings: the server must ping after the
// idle period, then drop the connection and cancel the stream, releasing
// the dead client's resources.
func TestKeepaliveDropsDeadClient(t *testing.T) {
	canceled := make(chan struct{})
	stub := &stubOrderer{
		deliver: func() (*fabric.BlockStream, error) {
			stream := fabric.NewBlockStream()
			go func() {
				<-stream.Canceled()
				stream.Close(nil)
				close(canceled)
			}()
			return stream, nil
		},
	}
	addr := startServer(t, stub, ServerOptions{
		IdleTimeout: 50 * time.Millisecond,
		PingTimeout: 50 * time.Millisecond,
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, encodeDeliver(1, "ch", fabric.DeliverNewest())); err != nil {
		t.Fatal(err)
	}

	// The server pings, gets silence, and hangs up: the raw read sees the
	// ping frame and then EOF.
	sawPing := false
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		payload, err := readFrame(conn)
		if err != nil {
			break // connection dropped by the server
		}
		f, err := decodeFrame(payload)
		if err != nil {
			t.Fatalf("decoding server frame: %v", err)
		}
		if f.kind == msgPing {
			sawPing = true // stay silent: this client is "dead"
		}
	}
	if !sawPing {
		t.Fatal("server dropped the connection without pinging first")
	}
	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("dead client's Deliver stream was never canceled")
	}
}

// TestKeepaliveHealthyClientSurvivesIdle keeps a real Client silent far
// longer than the idle timeout: the automatic pong answers keep the
// connection alive, so a later Broadcast still succeeds.
func TestKeepaliveHealthyClientSurvivesIdle(t *testing.T) {
	stub := &stubOrderer{}
	addr := startServer(t, stub, ServerOptions{
		IdleTimeout: 30 * time.Millisecond,
		PingTimeout: 30 * time.Millisecond,
	})
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	time.Sleep(300 * time.Millisecond) // many idle periods
	status, _, err := client.Broadcast(&fabric.Envelope{ChannelID: "ch", ClientID: "c"})
	if err != nil {
		t.Fatalf("broadcast after idling: %v", err)
	}
	if status != fabric.StatusSuccess {
		t.Fatalf("broadcast after idling acked %v", status)
	}
}
