// Package clientapi is the external client protocol of the ordering
// service: a length-framed TCP codec exposing the AtomicBroadcast surface
// (Broadcast with typed status acks, Deliver positioned by a SeekInfo) to
// processes outside the cluster, the way Fabric's orderer exposes
// ab.AtomicBroadcast over gRPC. cmd/frontend serves it; any process can
// speak it with the Client in this package or a ~page of code in another
// language.
//
// Framing: every message is a big-endian uint32 payload length followed
// by the payload; the payload is one type byte followed by the message
// body in the deterministic internal/wire encoding.
//
// Client -> server:
//
//	broadcast:  u64 request id, bytes envelope
//	deliver:    u64 stream id, string channel, seek info (see fabric.SeekInfo)
//	cancel:     u64 stream id
//
// Server -> client:
//
//	ack:        u64 request id, u16 status, string detail
//	block:      u64 stream id, bytes block
//	stream end: u64 stream id, u16 status, string detail
//
// Either direction (keepalive):
//
//	ping:       u64 nonce
//	pong:       u64 nonce (echoed)
//
// Broadcast requests are acknowledged in submission order with the typed
// BroadcastStatus. Deliver streams carry blocks in order, then exactly one
// stream-end frame (StatusSuccess after a stop position or cancel,
// otherwise the status describing the failure). A Deliver positioned
// below the orderer's retention floor ends with StatusNotFound (the
// blocks were pruned). The server pings after an idle period and drops
// connections that stay silent through the grace period, so dead clients
// release their Deliver streams and backpressure window promptly; every
// client must answer pings with pongs (the Client here does).
package clientapi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/fabric"
	"repro/internal/wire"
)

// Message type bytes.
const (
	msgBroadcast byte = 1 + iota
	msgDeliver
	msgCancel
	msgAck
	msgBlock
	msgStreamEnd
	// msgPing / msgPong are the keepalive frames: either side may ping
	// (the server does, after an idle period) and the peer answers with
	// a pong echoing the nonce. A connection that stays silent through
	// the ping grace period is dead and is dropped, releasing its
	// Deliver streams and backpressure window promptly.
	msgPing
	msgPong
)

// maxFrameBytes bounds one frame to protect both sides against corrupt or
// hostile length prefixes.
const maxFrameBytes = 64 << 20

// Codec errors.
var (
	ErrFrameTooLarge = errors.New("clientapi: frame exceeds maximum size")
	ErrBadFrame      = errors.New("clientapi: malformed frame")
)

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameBytes {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// ---- frame bodies ------------------------------------------------------

func encodeBroadcast(id uint64, envelope []byte) []byte {
	w := wire.NewWriter(16 + len(envelope))
	w.PutByte(msgBroadcast)
	w.PutUint64(id)
	w.PutBytes(envelope)
	return w.Bytes()
}

func encodeDeliver(streamID uint64, channel string, seek fabric.SeekInfo) []byte {
	w := wire.NewWriter(32 + len(channel))
	w.PutByte(msgDeliver)
	w.PutUint64(streamID)
	w.PutString(channel)
	seek.MarshalInto(w)
	return w.Bytes()
}

func encodeCancel(streamID uint64) []byte {
	w := wire.NewWriter(16)
	w.PutByte(msgCancel)
	w.PutUint64(streamID)
	return w.Bytes()
}

func encodeAck(id uint64, status fabric.BroadcastStatus, detail string) []byte {
	w := wire.NewWriter(16 + len(detail))
	w.PutByte(msgAck)
	w.PutUint64(id)
	w.PutUint16(uint16(status))
	w.PutString(detail)
	return w.Bytes()
}

func encodeBlock(streamID uint64, block *fabric.Block) []byte {
	raw := block.Marshal()
	w := wire.NewWriter(16 + len(raw))
	w.PutByte(msgBlock)
	w.PutUint64(streamID)
	w.PutBytes(raw)
	return w.Bytes()
}

func encodeStreamEnd(streamID uint64, status fabric.BroadcastStatus, detail string) []byte {
	w := wire.NewWriter(16 + len(detail))
	w.PutByte(msgStreamEnd)
	w.PutUint64(streamID)
	w.PutUint16(uint16(status))
	w.PutString(detail)
	return w.Bytes()
}

func encodePing(nonce uint64) []byte {
	w := wire.NewWriter(16)
	w.PutByte(msgPing)
	w.PutUint64(nonce)
	return w.Bytes()
}

func encodePong(nonce uint64) []byte {
	w := wire.NewWriter(16)
	w.PutByte(msgPong)
	w.PutUint64(nonce)
	return w.Bytes()
}

// frame is one decoded protocol message (union of all bodies).
type frame struct {
	kind     byte
	id       uint64 // request id or stream id
	channel  string
	seek     fabric.SeekInfo
	envelope []byte
	block    *fabric.Block
	status   fabric.BroadcastStatus
	detail   string
}

func decodeFrame(payload []byte) (frame, error) {
	if len(payload) == 0 {
		return frame{}, ErrBadFrame
	}
	r := wire.NewReader(payload[1:])
	f := frame{kind: payload[0]}
	switch f.kind {
	case msgBroadcast:
		f.id = r.Uint64()
		f.envelope = r.BytesCopy()
	case msgDeliver:
		f.id = r.Uint64()
		f.channel = r.String()
		f.seek = fabric.ReadSeekInfo(r)
	case msgCancel, msgPing, msgPong:
		f.id = r.Uint64()
	case msgAck, msgStreamEnd:
		f.id = r.Uint64()
		f.status = fabric.BroadcastStatus(r.Uint16())
		f.detail = r.String()
	case msgBlock:
		f.id = r.Uint64()
		raw := r.Bytes()
		if r.Err() == nil {
			b, err := fabric.UnmarshalBlock(raw)
			if err != nil {
				return frame{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
			}
			f.block = b
		}
	default:
		return frame{}, fmt.Errorf("%w: unknown type %d", ErrBadFrame, f.kind)
	}
	if err := r.Finish(); err != nil {
		return frame{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return f, nil
}
