package clientapi

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/fabric"
)

// ErrClientClosed terminates calls after the connection dropped.
var ErrClientClosed = errors.New("clientapi: connection closed")

// Client speaks the wire protocol from an external process: synchronous
// Broadcast calls with typed acks and any number of concurrent Deliver
// streams over one TCP connection.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex

	mu       sync.Mutex
	nextID   uint64
	acks     map[uint64]chan ackResult
	streams  map[uint64]*clientStream
	closed   bool
	closeErr error

	wg sync.WaitGroup
}

type ackResult struct {
	status fabric.BroadcastStatus
	detail string
}

// ClientStream is a Deliver stream on the client side.
type clientStream struct {
	id     uint64
	c      chan *fabric.Block
	drop   chan struct{} // closed on local cancel: discard in-flight blocks
	client *Client

	mu       sync.Mutex
	err      error
	closed   bool
	dropping bool
}

// Dial connects to a cmd/frontend client-API listener.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("clientapi: %w", err)
	}
	c := &Client{
		conn:    conn,
		acks:    make(map[uint64]chan ackResult),
		streams: make(map[uint64]*clientStream),
	}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

func (c *Client) id() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	return c.nextID
}

func (c *Client) write(frame []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return writeFrame(c.conn, frame)
}

// Broadcast submits one envelope and waits for its typed acknowledgement.
// The detail string elaborates on non-success statuses.
func (c *Client) Broadcast(env *fabric.Envelope) (fabric.BroadcastStatus, string, error) {
	if env == nil {
		return fabric.StatusBadRequest, "nil envelope", nil
	}
	id := c.id()
	ch := make(chan ackResult, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, "", ErrClientClosed
	}
	c.acks[id] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.acks, id)
		c.mu.Unlock()
	}()
	if err := c.write(encodeBroadcast(id, env.Marshal())); err != nil {
		return 0, "", fmt.Errorf("clientapi: %w", err)
	}
	ack, ok := <-ch
	if !ok {
		return 0, "", ErrClientClosed
	}
	return ack.status, ack.detail, nil
}

// Deliver opens a block stream positioned by seek. Blocks arrive on
// Blocks(); the channel closes after the stop position, a Cancel, or a
// failure (see Err).
func (c *Client) Deliver(channel string, seek fabric.SeekInfo) (*DeliverStream, error) {
	id := c.id()
	cs := &clientStream{
		id:     id,
		c:      make(chan *fabric.Block, streamBufferClient),
		drop:   make(chan struct{}),
		client: c,
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.streams[id] = cs
	c.mu.Unlock()
	if err := c.write(encodeDeliver(id, channel, seek)); err != nil {
		c.mu.Lock()
		delete(c.streams, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("clientapi: %w", err)
	}
	return &DeliverStream{cs: cs}, nil
}

// streamBufferClient bounds blocks buffered client-side per stream; a full
// buffer pushes back on the whole connection (the read loop stalls), which
// in turn stalls the server's writes — end-to-end flow control.
const streamBufferClient = 64

// DeliverStream is the consumer handle of a client-side Deliver.
type DeliverStream struct {
	cs *clientStream
}

// Blocks returns the ordered block channel.
func (s *DeliverStream) Blocks() <-chan *fabric.Block { return s.cs.c }

// Err reports why the stream ended: nil after a clean stop or cancel,
// otherwise the server's terminal status. Valid after Blocks() closed.
func (s *DeliverStream) Err() error {
	s.cs.mu.Lock()
	defer s.cs.mu.Unlock()
	return s.cs.err
}

// Cancel asks the server to stop the stream. Blocks still in flight are
// discarded (a consumer that cancels and stops draining cannot wedge the
// connection's read loop); the stream closes when the terminal frame
// arrives.
func (s *DeliverStream) Cancel() {
	s.cs.mu.Lock()
	if !s.cs.dropping {
		s.cs.dropping = true
		close(s.cs.drop)
	}
	s.cs.mu.Unlock()
	s.cs.client.write(encodeCancel(s.cs.id))
}

// finish closes the stream with its terminal state.
func (cs *clientStream) finish(err error) {
	cs.mu.Lock()
	if cs.closed {
		cs.mu.Unlock()
		return
	}
	cs.closed = true
	cs.err = err
	cs.mu.Unlock()
	close(cs.c)
}

func (c *Client) readLoop() {
	defer c.wg.Done()
	var readErr error
	for {
		payload, err := readFrame(c.conn)
		if err != nil {
			readErr = err
			break
		}
		f, err := decodeFrame(payload)
		if err != nil {
			readErr = err
			break
		}
		switch f.kind {
		case msgAck:
			c.mu.Lock()
			ch := c.acks[f.id]
			c.mu.Unlock()
			if ch != nil {
				select {
				case ch <- ackResult{status: f.status, detail: f.detail}:
				default:
				}
			}
		case msgBlock:
			c.mu.Lock()
			cs := c.streams[f.id]
			c.mu.Unlock()
			if cs != nil && f.block != nil {
				select {
				case cs.c <- f.block: // bounded buffer: stalls the read loop when full
				case <-cs.drop: // canceled mid-send: discard
				}
			}
		case msgStreamEnd:
			c.mu.Lock()
			cs := c.streams[f.id]
			delete(c.streams, f.id)
			c.mu.Unlock()
			if cs != nil {
				var err error
				if f.status != fabric.StatusSuccess {
					err = fmt.Errorf("clientapi: stream ended with %s: %s", f.status, f.detail)
				}
				cs.finish(err)
			}
		case msgPing:
			// Server keepalive probe: answer so an idle but healthy
			// connection (e.g. tailing a quiet channel) is not dropped.
			c.write(encodePong(f.id))
		case msgPong:
			// Nothing to do: receiving any frame already proves the
			// server alive.
		}
	}
	c.teardown(readErr)
}

// teardown fails every pending call after the connection dropped.
func (c *Client) teardown(err error) {
	c.mu.Lock()
	c.closed = true
	c.closeErr = err
	acks := c.acks
	c.acks = make(map[uint64]chan ackResult)
	streams := c.streams
	c.streams = make(map[uint64]*clientStream)
	c.mu.Unlock()
	for _, ch := range acks {
		close(ch)
	}
	for _, cs := range streams {
		cs.finish(ErrClientClosed)
	}
}

// Close drops the connection; pending Broadcasts fail and open streams end
// with ErrClientClosed.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.wg.Wait()
		return
	}
	c.mu.Unlock()
	c.conn.Close()
	c.wg.Wait()
}
