package clientapi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fabric"
	"repro/internal/obs"
)

// Server exposes an orderer's AtomicBroadcast surface over the
// length-framed TCP protocol. One server handles any number of client
// connections; each connection multiplexes broadcast acks and any number
// of concurrent Deliver streams. On the Deliver side a client that stops
// draining its socket only stalls its own connection (the kernel send
// buffer fills and that connection's stream pumps block). On the
// Broadcast side the backpressure window belongs to the underlying
// frontend and is shared by every connection it serves — deployments
// should set the frontend's BroadcastTimeout (cmd/frontend does) so a
// full window degrades into SERVICE_UNAVAILABLE acks rather than
// blocking all connections' read loops for as long as the cluster
// stalls.
type Server struct {
	orderer fabric.Orderer
	opts    ServerOptions

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// Keepalive defaults.
const (
	// DefaultIdleTimeout is how long a connection may stay silent before
	// the server pings it.
	DefaultIdleTimeout = 45 * time.Second
	// DefaultPingTimeout is how long the server waits for any frame after
	// pinging before declaring the connection dead.
	DefaultPingTimeout = 10 * time.Second
)

// ServerOptions tunes a Server.
type ServerOptions struct {
	// IdleTimeout is the silence period after which the server pings a
	// connection; a connection that stays silent for PingTimeout after
	// the ping is dropped, releasing its Deliver streams and window.
	// Zero selects DefaultIdleTimeout; negative disables keepalive.
	IdleTimeout time.Duration
	// PingTimeout is the post-ping grace period. Zero selects
	// DefaultPingTimeout.
	PingTimeout time.Duration
	// Metrics, when set, counts connections, broadcasts, and open Deliver
	// streams. Nil disables.
	Metrics *obs.ClientAPIMetrics
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.IdleTimeout == 0 {
		o.IdleTimeout = DefaultIdleTimeout
	}
	if o.PingTimeout <= 0 {
		o.PingTimeout = DefaultPingTimeout
	}
	o.Metrics = o.Metrics.OrNop()
	return o
}

// NewServer wraps an orderer (a core.Frontend or core.SoloOrderer) with
// default keepalive options.
func NewServer(orderer fabric.Orderer) *Server {
	return NewServerWithOptions(orderer, ServerOptions{})
}

// NewServerWithOptions wraps an orderer with explicit options.
func NewServerWithOptions(orderer fabric.Orderer, opts ServerOptions) *Server {
	return &Server{
		orderer: orderer,
		opts:    opts.withDefaults(),
		conns:   make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections until the listener closes (or Close is
// called). It blocks; run it on its own goroutine for a concurrent
// server.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("clientapi: server closed")
	}
	s.listener = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close stops accepting, drops every connection, and waits for handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// serverConn is one client connection's state.
type serverConn struct {
	srv  *Server
	conn net.Conn

	writeMu sync.Mutex // serializes frames from acks and stream pumps

	mu      sync.Mutex
	streams map[uint64]*fabric.BlockStream
	wg      sync.WaitGroup

	pingNonce atomic.Uint64
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	s.opts.Metrics.ConnectionsTotal.Inc()
	s.opts.Metrics.Connections.Add(1)
	defer s.opts.Metrics.Connections.Add(-1)
	sc := &serverConn{srv: s, conn: conn, streams: make(map[uint64]*fabric.BlockStream)}
	sc.readLoop()
	// Tear down: cancel every stream the client left open, wait for their
	// pumps, then drop the connection.
	sc.mu.Lock()
	for _, stream := range sc.streams {
		stream.Cancel()
	}
	sc.mu.Unlock()
	sc.wg.Wait()
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// readLoop dispatches frames; with keepalive enabled it reads under an
// idle deadline, pings the client once the deadline passes, and drops
// the connection when even the ping goes unanswered — the teardown in
// handle then cancels the dead client's Deliver streams.
func (sc *serverConn) readLoop() {
	idle := sc.srv.opts.IdleTimeout
	fr := frameReader{conn: sc.conn}
	pinged := false
	for {
		if idle > 0 {
			wait := idle
			if pinged {
				wait = sc.srv.opts.PingTimeout
			}
			sc.conn.SetReadDeadline(time.Now().Add(wait))
		}
		before := fr.received
		payload, err := fr.next()
		if err != nil {
			if idle > 0 && isTimeout(err) {
				if fr.received > before {
					// Bytes arrived (a large frame trickling in): that is
					// liveness; keep reading without burning the ping.
					pinged = false
					continue
				}
				if !pinged {
					pinged = true
					if sc.write(encodePing(sc.pingNonce.Add(1))) == nil {
						continue
					}
				}
			}
			return // dead, gone, or mid-frame garbage
		}
		pinged = false // any complete frame proves liveness
		f, err := decodeFrame(payload)
		if err != nil {
			return // protocol violation: drop the connection
		}
		switch f.kind {
		case msgBroadcast:
			sc.onBroadcast(f)
		case msgDeliver:
			sc.onDeliver(f)
		case msgCancel:
			sc.mu.Lock()
			stream := sc.streams[f.id]
			sc.mu.Unlock()
			if stream != nil {
				stream.Cancel()
			}
		case msgPing:
			sc.write(encodePong(f.id))
		case msgPong:
			// Liveness already noted above; the nonce carries no state.
		default:
			return // clients must not send server-side frames
		}
	}
}

// isTimeout reports whether err is a read-deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// frameReader reads length-prefixed frames while tolerating read-deadline
// expiries: partially read bytes are kept across calls, so a ping-probe
// timeout in the middle of a slowly arriving frame never corrupts the
// stream.
type frameReader struct {
	conn     net.Conn
	buf      []byte // accumulated bytes of the current frame (incl. header)
	need     int    // full frame size once the header is in (0 = unknown)
	received int64  // total bytes read: progress == liveness for keepalive
}

// next returns the next complete frame payload. On a deadline expiry it
// returns the timeout error and can be called again to resume.
func (fr *frameReader) next() ([]byte, error) {
	for {
		if len(fr.buf) >= 4 && fr.need == 0 {
			n := binary.BigEndian.Uint32(fr.buf[:4])
			if n > maxFrameBytes {
				return nil, ErrFrameTooLarge
			}
			fr.need = int(n) + 4
		}
		if fr.need > 0 && len(fr.buf) >= fr.need {
			payload := fr.buf[4:fr.need]
			fr.buf = append([]byte(nil), fr.buf[fr.need:]...)
			fr.need = 0
			return payload, nil
		}
		want := 4
		if fr.need > 0 {
			want = fr.need
		}
		if cap(fr.buf) < want {
			grown := make([]byte, len(fr.buf), want)
			copy(grown, fr.buf)
			fr.buf = grown
		}
		chunk := fr.buf[len(fr.buf):want]
		n, err := io.ReadAtLeast(fr.conn, chunk, 1)
		fr.buf = fr.buf[:len(fr.buf)+n]
		fr.received += int64(n)
		if err != nil {
			return nil, err
		}
	}
}

func (sc *serverConn) write(frame []byte) error {
	sc.writeMu.Lock()
	defer sc.writeMu.Unlock()
	return writeFrame(sc.conn, frame)
}

// onBroadcast unmarshals and submits the envelope, then acks with the
// orderer's typed status. The submit runs on the read loop, so a full
// backpressure window slows this client's own frame intake — exactly the
// per-client flow control the window exists for.
func (sc *serverConn) onBroadcast(f frame) {
	env, err := fabric.UnmarshalEnvelope(f.envelope)
	var status fabric.BroadcastStatus
	detail := ""
	if err != nil {
		status = fabric.StatusBadRequest
		detail = err.Error()
	} else {
		sc.srv.opts.Metrics.Broadcasts.Inc()
		status = sc.srv.orderer.Broadcast(env)
		if status != fabric.StatusSuccess {
			detail = status.Err().Error()
		}
	}
	sc.write(encodeAck(f.id, status, detail))
}

// onDeliver opens the stream and pumps its blocks to the client until it
// ends; the terminal frame carries the stream's outcome.
func (sc *serverConn) onDeliver(f frame) {
	stream, err := sc.srv.orderer.Deliver(f.channel, f.seek)
	if err != nil {
		sc.write(encodeStreamEnd(f.id, fabric.StatusOf(err), err.Error()))
		return
	}
	sc.mu.Lock()
	if _, dup := sc.streams[f.id]; dup {
		sc.mu.Unlock()
		stream.Cancel()
		sc.write(encodeStreamEnd(f.id, fabric.StatusBadRequest, "stream id already in use"))
		return
	}
	sc.streams[f.id] = stream
	sc.wg.Add(1)
	sc.mu.Unlock()
	sc.srv.opts.Metrics.DeliverStreams.Add(1)

	go func() {
		defer sc.wg.Done()
		// On a write failure the stream is canceled but still drained to
		// the close: Err is only valid (and race-free) once Blocks()
		// closed, which the producer does after observing the cancel.
		writeFailed := false
		for b := range stream.Blocks() {
			if writeFailed {
				continue
			}
			if err := sc.write(encodeBlock(f.id, b)); err != nil {
				stream.Cancel()
				writeFailed = true
			}
		}
		status, detail := fabric.StatusSuccess, ""
		if err := stream.Err(); err != nil {
			status = fabric.StatusOf(err)
			detail = err.Error()
		}
		sc.write(encodeStreamEnd(f.id, status, detail))
		sc.mu.Lock()
		delete(sc.streams, f.id)
		sc.mu.Unlock()
		sc.srv.opts.Metrics.DeliverStreams.Add(-1)
	}()
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("clientapi: %w", err)
	}
	return s.Serve(ln)
}
