package clientapi

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/fabric"
)

// Server exposes an orderer's AtomicBroadcast surface over the
// length-framed TCP protocol. One server handles any number of client
// connections; each connection multiplexes broadcast acks and any number
// of concurrent Deliver streams. On the Deliver side a client that stops
// draining its socket only stalls its own connection (the kernel send
// buffer fills and that connection's stream pumps block). On the
// Broadcast side the backpressure window belongs to the underlying
// frontend and is shared by every connection it serves — deployments
// should set the frontend's BroadcastTimeout (cmd/frontend does) so a
// full window degrades into SERVICE_UNAVAILABLE acks rather than
// blocking all connections' read loops for as long as the cluster
// stalls.
type Server struct {
	orderer fabric.Orderer

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer wraps an orderer (a core.Frontend or core.SoloOrderer).
func NewServer(orderer fabric.Orderer) *Server {
	return &Server{orderer: orderer, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections until the listener closes (or Close is
// called). It blocks; run it on its own goroutine for a concurrent
// server.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("clientapi: server closed")
	}
	s.listener = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close stops accepting, drops every connection, and waits for handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// serverConn is one client connection's state.
type serverConn struct {
	srv  *Server
	conn net.Conn

	writeMu sync.Mutex // serializes frames from acks and stream pumps

	mu      sync.Mutex
	streams map[uint64]*fabric.BlockStream
	wg      sync.WaitGroup
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	sc := &serverConn{srv: s, conn: conn, streams: make(map[uint64]*fabric.BlockStream)}
	sc.readLoop()
	// Tear down: cancel every stream the client left open, wait for their
	// pumps, then drop the connection.
	sc.mu.Lock()
	for _, stream := range sc.streams {
		stream.Cancel()
	}
	sc.mu.Unlock()
	sc.wg.Wait()
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (sc *serverConn) readLoop() {
	for {
		payload, err := readFrame(sc.conn)
		if err != nil {
			return
		}
		f, err := decodeFrame(payload)
		if err != nil {
			return // protocol violation: drop the connection
		}
		switch f.kind {
		case msgBroadcast:
			sc.onBroadcast(f)
		case msgDeliver:
			sc.onDeliver(f)
		case msgCancel:
			sc.mu.Lock()
			stream := sc.streams[f.id]
			sc.mu.Unlock()
			if stream != nil {
				stream.Cancel()
			}
		default:
			return // clients must not send server-side frames
		}
	}
}

func (sc *serverConn) write(frame []byte) error {
	sc.writeMu.Lock()
	defer sc.writeMu.Unlock()
	return writeFrame(sc.conn, frame)
}

// onBroadcast unmarshals and submits the envelope, then acks with the
// orderer's typed status. The submit runs on the read loop, so a full
// backpressure window slows this client's own frame intake — exactly the
// per-client flow control the window exists for.
func (sc *serverConn) onBroadcast(f frame) {
	env, err := fabric.UnmarshalEnvelope(f.envelope)
	var status fabric.BroadcastStatus
	detail := ""
	if err != nil {
		status = fabric.StatusBadRequest
		detail = err.Error()
	} else {
		status = sc.srv.orderer.Broadcast(env)
		if status != fabric.StatusSuccess {
			detail = status.Err().Error()
		}
	}
	sc.write(encodeAck(f.id, status, detail))
}

// onDeliver opens the stream and pumps its blocks to the client until it
// ends; the terminal frame carries the stream's outcome.
func (sc *serverConn) onDeliver(f frame) {
	stream, err := sc.srv.orderer.Deliver(f.channel, f.seek)
	if err != nil {
		sc.write(encodeStreamEnd(f.id, fabric.StatusOf(err), err.Error()))
		return
	}
	sc.mu.Lock()
	if _, dup := sc.streams[f.id]; dup {
		sc.mu.Unlock()
		stream.Cancel()
		sc.write(encodeStreamEnd(f.id, fabric.StatusBadRequest, "stream id already in use"))
		return
	}
	sc.streams[f.id] = stream
	sc.wg.Add(1)
	sc.mu.Unlock()

	go func() {
		defer sc.wg.Done()
		// On a write failure the stream is canceled but still drained to
		// the close: Err is only valid (and race-free) once Blocks()
		// closed, which the producer does after observing the cancel.
		writeFailed := false
		for b := range stream.Blocks() {
			if writeFailed {
				continue
			}
			if err := sc.write(encodeBlock(f.id, b)); err != nil {
				stream.Cancel()
				writeFailed = true
			}
		}
		status, detail := fabric.StatusSuccess, ""
		if err := stream.Err(); err != nil {
			status = fabric.StatusOf(err)
			detail = err.Error()
		}
		sc.write(encodeStreamEnd(f.id, status, detail))
		sc.mu.Lock()
		delete(sc.streams, f.id)
		sc.mu.Unlock()
	}()
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("clientapi: %w", err)
	}
	return s.Serve(ln)
}
