package bench

import (
	"fmt"

	"repro/internal/cryptoutil"
	"repro/internal/fabric"
	"repro/internal/storage"
	"repro/internal/storage/retention"
)

// RetentionBenchConfig parameterizes the disk-amplification measurement:
// a sustained block-append workload against a block store with a
// retention policy, tracking how large the store gets on disk.
type RetentionBenchConfig struct {
	// Dir holds the block store (a fresh temp directory per run).
	Dir string
	// Blocks is how many blocks the workload appends.
	Blocks int
	// EnvelopesPerBlock and EnvelopeBytes shape each block.
	EnvelopesPerBlock int
	EnvelopeBytes     int
	// SegmentBytes is the commit-log segment size (the compaction
	// granularity).
	SegmentBytes int64
	// Policy is the retention policy under test.
	Policy retention.Policy
}

func (c RetentionBenchConfig) withDefaults() RetentionBenchConfig {
	if c.Blocks <= 0 {
		c.Blocks = 1000
	}
	if c.EnvelopesPerBlock <= 0 {
		c.EnvelopesPerBlock = 5
	}
	if c.EnvelopeBytes <= 0 {
		c.EnvelopeBytes = 64
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 8 << 10
	}
	return c
}

// RetentionBenchRow is one measured retention run: the before/after
// compaction sizes feed BENCH_durability.json so disk amplification is
// tracked across PRs.
type RetentionBenchRow struct {
	// BlocksAppended is the workload length.
	BlocksAppended int
	// PeakBytes is the largest on-disk size observed across the run —
	// the number the retention cap is supposed to bound.
	PeakBytes int64
	// BytesBeforeCompaction and BytesAfterCompaction bracket the last
	// compaction that actually reclaimed disk: the before sample is
	// taken immediately before CompactTo, the after sample immediately
	// after, so the pair shows what one compaction reclaims. (A
	// compaction may advance floors without freeing a whole segment —
	// such no-reclaim runs are counted in Compactions but do not
	// overwrite the pair.)
	BytesBeforeCompaction int64
	BytesAfterCompaction  int64
	// AppendedBytes approximates the total bytes the workload wrote
	// (what an unbounded store would hold).
	AppendedBytes int64
	// Floor is the final retention floor.
	Floor uint64
	// Compactions is how many policy-driven compactions ran.
	Compactions int
}

// RunRetentionBench appends a hash-chained block workload, compacting
// whenever the policy says one is due (synchronously, so the measured
// sizes are deterministic), and reports the disk-size trajectory.
func RunRetentionBench(cfg RetentionBenchConfig) (RetentionBenchRow, error) {
	cfg = cfg.withDefaults()
	store, err := storage.OpenBlockStore(storage.WALConfig{
		Dir:          cfg.Dir,
		SegmentBytes: cfg.SegmentBytes,
	})
	if err != nil {
		return RetentionBenchRow{}, err
	}
	defer store.Close()

	row := RetentionBenchRow{BlocksAppended: cfg.Blocks}
	payload := make([]byte, cfg.EnvelopeBytes)
	var prev cryptoutil.Digest
	for i := 0; i < cfg.Blocks; i++ {
		envs := make([][]byte, cfg.EnvelopesPerBlock)
		for j := range envs {
			env := &fabric.Envelope{ChannelID: "bench", ClientID: "r", Payload: payload}
			envs[j] = env.Marshal()
		}
		b := fabric.NewBlock(uint64(i), prev, envs)
		prev = b.Header.Hash()
		if err := store.Put("bench", b); err != nil {
			return row, fmt.Errorf("bench: put block %d: %w", i, err)
		}
		row.AppendedBytes += int64(len(b.Marshal())) + 24 // record framing + channel
		if st := store.RetentionState(); cfg.Policy.Due(st) {
			// Sample the on-disk size before the compaction runs —
			// sampling afterwards (or outside the compaction entirely)
			// reports before == after and turns the disk-growth gate
			// vacuous.
			before := store.SizeBytes()
			if before > row.PeakBytes {
				row.PeakBytes = before
			}
			if _, err := store.CompactTo(cfg.Policy.Plan(st)); err != nil {
				return row, fmt.Errorf("bench: compacting at block %d: %w", i, err)
			}
			row.Compactions++
			// Whole segments are the pruning granularity, so a compaction
			// may advance floors without freeing bytes; only a reclaiming
			// run updates the tracked pair.
			if after := store.SizeBytes(); after < before {
				row.BytesBeforeCompaction = before
				row.BytesAfterCompaction = after
			}
		}
		if size := store.SizeBytes(); size > row.PeakBytes {
			row.PeakBytes = size
		}
	}
	// Final explicit compaction (the admin trigger): everything above the
	// policy floor is retained, everything below is dropped. Sampled the
	// same way.
	if floors := cfg.Policy.Plan(store.RetentionState()); len(floors) > 0 {
		before := store.SizeBytes()
		applied, err := store.CompactTo(floors)
		if err != nil {
			return row, fmt.Errorf("bench: final compaction: %w", err)
		}
		if len(applied) > 0 {
			row.Compactions++
		}
		if after := store.SizeBytes(); after < before {
			row.BytesBeforeCompaction = before
			row.BytesAfterCompaction = after
		}
	}
	if size := store.SizeBytes(); size > row.PeakBytes {
		row.PeakBytes = size
	}
	row.Floor = store.Floor("bench")
	return row, nil
}
