// Package bench is the measurement harness that regenerates every figure of
// the paper's evaluation (Section 6): the signature-generation microbench
// (Figure 6), the LAN throughput sweeps over cluster size, block size,
// envelope size, and receiver count (Figure 7a-f), the geo-distributed
// latency comparison of BFT-SMaRt vs WHEAT (Figures 8-9), and the
// Equation (1) throughput-bound check.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// LatencyRecorder accumulates latency samples and reports percentiles.
// Safe for concurrent use.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

// NewLatencyRecorder creates an empty recorder.
func NewLatencyRecorder() *LatencyRecorder {
	return &LatencyRecorder{}
}

// Record adds one sample.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples = append(r.samples, d)
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Reset discards all samples.
func (r *LatencyRecorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples = r.samples[:0]
}

// Percentile returns the p-th percentile (0 < p <= 100) by the
// nearest-rank method, or zero without samples.
func (r *LatencyRecorder) Percentile(p float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(r.samples))
	copy(sorted, r.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(p/100*float64(len(sorted))+0.999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Median returns the 50th percentile.
func (r *LatencyRecorder) Median() time.Duration { return r.Percentile(50) }

// Table renders aligned rows for terminal output: header cells, then rows.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row (cells are stringified with %v).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for pad := len(cell); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
