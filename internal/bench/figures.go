package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/wan"
)

// ---- Figure 6: signature generation ------------------------------------

// Fig6Row is one point of the Figure 6 sweep.
type Fig6Row struct {
	Workers    int
	SigsPerSec float64
}

// RunFigure6 measures ECDSA block-signature throughput against the number
// of signing workers, reproducing Figure 6: blocks of envsPerBlock empty
// envelopes are assembled and their (constant-size) headers signed by a
// worker pool. The paper's host had 16 hardware threads; on fewer cores
// the curve plateaus at the hardware parallelism.
func RunFigure6(workers []int, envsPerBlock int, duration time.Duration) ([]Fig6Row, error) {
	key, err := cryptoutil.GenerateKeyPair()
	if err != nil {
		return nil, err
	}
	envelopes := make([][]byte, envsPerBlock)
	for i := range envelopes {
		env := &fabric.Envelope{ChannelID: "bench", ClientID: "sig"}
		envelopes[i] = env.Marshal()
	}

	rows := make([]Fig6Row, 0, len(workers))
	for _, w := range workers {
		pool, err := cryptoutil.NewSigningPool(key, w)
		if err != nil {
			return nil, err
		}
		var prev cryptoutil.Digest
		var number uint64
		done := func([]byte, error) {}
		deadline := time.Now().Add(duration)
		start := time.Now()
		for time.Now().Before(deadline) {
			// Assemble the next block exactly as the ordering node would:
			// the header binds number, previous hash, and data hash; the
			// signature covers only the constant-size header.
			block := fabric.NewBlock(number, prev, envelopes)
			number++
			prev = block.Header.Hash()
			if err := pool.Sign(block.Header.Hash(), done); err != nil {
				break
			}
		}
		pool.Close() // waits for in-flight signatures
		elapsed := time.Since(start)
		rows = append(rows, Fig6Row{
			Workers:    w,
			SigsPerSec: float64(pool.Signed()) / elapsed.Seconds(),
		})
	}
	return rows, nil
}

// ---- Figure 7: LAN throughput -------------------------------------------

// Fig7Cell parameterizes one throughput measurement.
type Fig7Cell struct {
	// Nodes is the ordering cluster size (4, 7, 10).
	Nodes int
	// BlockSize is envelopes per block (10, 100).
	BlockSize int
	// EnvSize is the envelope payload size (40, 200, 1024, 4096).
	EnvSize int
	// Receivers is the number of registered block-receiving frontends
	// (1..32 in the paper).
	Receivers int
	// Clients is the number of load-generator clients (the paper used
	// 16-32 emulated frontends across 2 machines). Zero defaults to 16.
	Clients int
	// Window is the total outstanding envelopes across all clients
	// (closed loop). Zero defaults to 4x the consensus batch size.
	Window int
	// Warmup and Measure set the measurement schedule.
	Warmup, Measure time.Duration
	// EgressBytesPerSec models each endpoint's NIC (default 1 Gbit/s, the
	// paper's LAN).
	EgressBytesPerSec int64
	// SigningWorkers per node (default 16, as in the paper).
	SigningWorkers int
	// DisableSigning measures the raw ordering rate (Equation 1's
	// TP_bftsmart term).
	DisableSigning bool
	// DataDir, when non-empty, runs every node with durable storage
	// rooted there, so the measured throughput includes the WAL fsync
	// cost a production deployment pays.
	DataDir string
	// CommitMaxDelay is each node's fsync coalescing window (see
	// core.ClusterConfig); zero commits greedily.
	CommitMaxDelay time.Duration
	// Metrics, when set, instruments the whole run — nodes, storage, and
	// frontends share this registry, so the per-stage latency histograms
	// (decide/fsync/disseminate/deliver/total) can be read back after the
	// run. Nil runs uninstrumented (the throughput-measurement default).
	Metrics *obs.Registry `json:"-"`
}

func (c Fig7Cell) withDefaults() Fig7Cell {
	if c.Clients <= 0 {
		c.Clients = 16
	}
	if c.Window <= 0 {
		c.Window = 4 * consensus.DefaultBatchSize
	}
	if c.Warmup <= 0 {
		c.Warmup = time.Second
	}
	if c.Measure <= 0 {
		c.Measure = 3 * time.Second
	}
	if c.EgressBytesPerSec == 0 {
		c.EgressBytesPerSec = transport.GigabitEthernet
	}
	if c.SigningWorkers <= 0 {
		c.SigningWorkers = 16
	}
	return c
}

// Fig7Row is one measured cell of Figure 7.
type Fig7Row struct {
	Nodes       int
	BlockSize   int
	EnvSize     int
	Receivers   int
	TxPerSec    float64
	BlockPerSec float64
}

// RunFigure7Cell drives one cluster configuration to saturation with
// closed-loop clients and measures envelope throughput at node 0 (the
// leader), exactly as Section 6.2 does.
func RunFigure7Cell(cell Fig7Cell) (Fig7Row, error) {
	cell = cell.withDefaults()
	network := transport.NewInProcNetwork(transport.InProcConfig{
		EgressBytesPerSec: cell.EgressBytesPerSec,
	})
	defer network.Close()

	cluster, err := core.NewCluster(core.ClusterConfig{
		Nodes:              cell.Nodes,
		BlockSize:          cell.BlockSize,
		SigningWorkers:     cell.SigningWorkers,
		DisableSigning:     cell.DisableSigning,
		BatchTimeout:       2 * time.Millisecond,
		RequestTimeout:     5 * time.Minute, // saturation must not trigger leader changes
		CheckpointInterval: 64,
		Network:            network,
		DataDir:            cell.DataDir,
		CommitMaxDelay:     cell.CommitMaxDelay,
		Metrics:            cell.Metrics,
	})
	if err != nil {
		return Fig7Row{}, err
	}
	defer cluster.Stop()

	// Receivers: registered block-consuming frontends.
	receivers := make([]*core.Frontend, 0, cell.Receivers)
	for i := 0; i < cell.Receivers; i++ {
		fe, err := cluster.NewFrontend(clientName("recv", i), false)
		if err != nil {
			return Fig7Row{}, err
		}
		defer fe.Close()
		receivers = append(receivers, fe)
	}

	// Load generators: closed-loop consensus clients (submit-only
	// frontends; they do not receive blocks).
	leader := cluster.Nodes[0]
	var sent atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < cell.Clients; i++ {
		conn, err := network.Join(transport.Addr(clientName("load", i)))
		if err != nil {
			close(stop)
			wg.Wait()
			return Fig7Row{}, err
		}
		client, err := consensus.NewClient(conn, consensus.ClientConfig{
			Replicas: cluster.Replicas(),
		})
		if err != nil {
			close(stop)
			wg.Wait()
			return Fig7Row{}, err
		}
		gen := NewEnvelopeGen("bench", clientName("load", i), cell.EnvSize, int64(i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer client.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				inflight := int64(sent.Load()) - int64(leader.Stats().EnvelopesOrdered)
				if inflight >= int64(cell.Window) {
					time.Sleep(200 * time.Microsecond)
					continue
				}
				raw, _ := gen.Next()
				if err := client.Invoke(raw); err != nil {
					return
				}
				sent.Add(1)
			}
		}()
	}

	time.Sleep(cell.Warmup)
	startOrdered := leader.Stats()
	start := time.Now()
	time.Sleep(cell.Measure)
	endOrdered := leader.Stats()
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	return Fig7Row{
		Nodes:       cell.Nodes,
		BlockSize:   cell.BlockSize,
		EnvSize:     cell.EnvSize,
		Receivers:   cell.Receivers,
		TxPerSec:    float64(endOrdered.EnvelopesOrdered-startOrdered.EnvelopesOrdered) / elapsed.Seconds(),
		BlockPerSec: float64(endOrdered.BlocksCut-startOrdered.BlocksCut) / elapsed.Seconds(),
	}, nil
}

// RunFigure7Panel sweeps envelope sizes x receiver counts for one panel
// (one cluster size + block size combination) of Figure 7.
func RunFigure7Panel(nodes, blockSize int, envSizes, receivers []int, base Fig7Cell) ([]Fig7Row, error) {
	rows := make([]Fig7Row, 0, len(envSizes)*len(receivers))
	for _, size := range envSizes {
		for _, recv := range receivers {
			cell := base
			cell.Nodes = nodes
			cell.BlockSize = blockSize
			cell.EnvSize = size
			cell.Receivers = recv
			row, err := RunFigure7Cell(cell)
			if err != nil {
				return nil, fmt.Errorf("cell n=%d bs=%d es=%d r=%d: %w",
					nodes, blockSize, size, recv, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ---- Figures 8-9: geo-distributed latency -------------------------------

// GeoProtocol selects the replication protocol of a geo run.
type GeoProtocol string

// The two protocols compared by Figures 8-9.
const (
	ProtocolBFTSmart GeoProtocol = "BFT-SMaRt"
	ProtocolWheat    GeoProtocol = "WHEAT"
)

// GeoCell parameterizes one geo-distributed latency run.
type GeoCell struct {
	// Protocol selects BFT-SMaRt (4 replicas) or WHEAT (5 replicas with
	// binary weights), per Section 6.3.
	Protocol GeoProtocol
	// BlockSize is 10 (Figure 8) or 100 (Figure 9).
	BlockSize int
	// EnvSize is the envelope payload size.
	EnvSize int
	// WindowPerFrontend is the closed-loop window per frontend; the paper
	// sizes load to keep node throughput above 1000 tx/s.
	WindowPerFrontend int
	// Warmup and Measure set the measurement schedule.
	Warmup, Measure time.Duration
	// JitterPct adds uniform jitter to WAN delays (default 5).
	JitterPct int
}

func (c GeoCell) withDefaults() GeoCell {
	if c.Protocol == "" {
		c.Protocol = ProtocolBFTSmart
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 10
	}
	if c.WindowPerFrontend <= 0 {
		c.WindowPerFrontend = 128
	}
	if c.Warmup <= 0 {
		c.Warmup = 2 * time.Second
	}
	if c.Measure <= 0 {
		c.Measure = 6 * time.Second
	}
	if c.JitterPct == 0 {
		c.JitterPct = 5
	}
	return c
}

// GeoRow is one frontend's latency measurement.
type GeoRow struct {
	Frontend  wan.Region
	Protocol  GeoProtocol
	BlockSize int
	EnvSize   int
	MedianMs  float64
	P90Ms     float64
	TxPerSec  float64
	Samples   int
}

// geoFrontendRegions are the frontend placements of Section 6.3: Canada
// (clients only), Oregon (collocated with the V_max leader), Virginia
// (V_max), and Sao Paulo (V_min).
var geoFrontendRegions = []wan.Region{wan.Canada, wan.Oregon, wan.Virginia, wan.SaoPaulo}

// nodeRegions returns the replica placement for a protocol: Oregon,
// Ireland, Sydney, Sao Paulo for BFT-SMaRt; Virginia joins as WHEAT's
// additional (fifth) replica.
func nodeRegions(p GeoProtocol) []wan.Region {
	regions := []wan.Region{wan.Oregon, wan.Ireland, wan.Sydney, wan.SaoPaulo}
	if p == ProtocolWheat {
		regions = append(regions, wan.Virginia)
	}
	return regions
}

// RunGeoCell runs one (protocol, block size, envelope size) configuration
// and returns the latency distribution observed at each of the four
// frontends.
func RunGeoCell(cell GeoCell) ([]GeoRow, error) {
	cell = cell.withDefaults()
	regions := nodeRegions(cell.Protocol)
	nodes := len(regions)

	placement := make(map[transport.Addr]wan.Region, nodes+len(geoFrontendRegions))
	replicas := make([]consensus.ReplicaID, nodes)
	for i, region := range regions {
		id := consensus.ReplicaID(i)
		replicas[i] = id
		placement[id.Addr()] = region
	}
	for i, region := range geoFrontendRegions {
		feID := geoFrontendID(i, region)
		placement[transport.Addr(feID)] = region
		placement[transport.Addr(feID+"-client")] = region
	}
	model := wan.NewModel(placement, cell.JitterPct)
	network := transport.NewInProcNetwork(transport.InProcConfig{
		Latency:           model,
		EgressBytesPerSec: transport.GigabitEthernet,
	})
	defer network.Close()

	clusterCfg := core.ClusterConfig{
		Nodes:              nodes,
		F:                  1,
		BlockSize:          cell.BlockSize,
		SigningWorkers:     16,
		BatchTimeout:       5 * time.Millisecond,
		RequestTimeout:     5 * time.Minute,
		CheckpointInterval: 256,
		Network:            network,
	}
	if cell.Protocol == ProtocolWheat {
		// Binary weight distribution (footnote 11): V_max = 2 for the
		// leader (Oregon, replica 0) and the spare (Virginia, replica 4),
		// V_min = 1 elsewhere; tentative execution enabled.
		weights, err := consensus.BinaryWeights(replicas, 1, 1,
			[]consensus.ReplicaID{0, consensus.ReplicaID(nodes - 1)})
		if err != nil {
			return nil, err
		}
		clusterCfg.Weights = weights
		clusterCfg.Tentative = true
	}
	cluster, err := core.NewCluster(clusterCfg)
	if err != nil {
		return nil, err
	}
	defer cluster.Stop()

	type feRun struct {
		region    wan.Region
		fe        *core.Frontend
		recorder  *LatencyRecorder
		delivered atomic.Uint64
		inflight  atomic.Int64
		times     sync.Map // seq -> time.Time
		name      string
	}
	runs := make([]*feRun, 0, len(geoFrontendRegions))
	for i, region := range geoFrontendRegions {
		name := geoFrontendID(i, region)
		fe, err := cluster.NewFrontend(name, false)
		if err != nil {
			return nil, err
		}
		defer fe.Close()
		run := &feRun{region: region, fe: fe, recorder: NewLatencyRecorder(), name: name}
		fe.OnBlock(func(b *fabric.Block) {
			now := time.Now()
			for _, raw := range b.Envelopes {
				client, seq, ok := EnvelopeSeq(raw)
				if !ok || client != run.name {
					continue
				}
				if v, loaded := run.times.LoadAndDelete(seq); loaded {
					start, isTime := v.(time.Time)
					if isTime {
						run.recorder.Record(now.Sub(start))
					}
					run.inflight.Add(-1)
					run.delivered.Add(1)
				}
			}
		})
		runs = append(runs, run)
	}

	// Closed-loop submitters: each frontend keeps WindowPerFrontend
	// envelopes outstanding ("enough client threads to keep node
	// throughput always above 1000 transactions/second").
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, run := range runs {
		gen := NewEnvelopeGen("geo", run.name, cell.EnvSize, int64(i))
		wg.Add(1)
		go func(run *feRun) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if run.inflight.Load() >= int64(cell.WindowPerFrontend) {
					time.Sleep(time.Millisecond)
					continue
				}
				raw, seq := gen.Next()
				run.times.Store(seq, time.Now())
				run.inflight.Add(1)
				if run.fe.BroadcastRaw(raw) != fabric.StatusSuccess {
					return
				}
			}
		}(run)
	}

	time.Sleep(cell.Warmup)
	for _, run := range runs {
		run.recorder.Reset()
		run.delivered.Store(0)
	}
	start := time.Now()
	time.Sleep(cell.Measure)
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	rows := make([]GeoRow, 0, len(runs))
	for _, run := range runs {
		rows = append(rows, GeoRow{
			Frontend:  run.region,
			Protocol:  cell.Protocol,
			BlockSize: cell.BlockSize,
			EnvSize:   cell.EnvSize,
			MedianMs:  float64(run.recorder.Median().Microseconds()) / 1000,
			P90Ms:     float64(run.recorder.Percentile(90).Microseconds()) / 1000,
			TxPerSec:  float64(run.delivered.Load()) / elapsed.Seconds(),
			Samples:   run.recorder.Count(),
		})
	}
	return rows, nil
}

func geoFrontendID(i int, region wan.Region) string {
	return fmt.Sprintf("frontend-%d-%s", i, region)
}

// ---- Equation (1): throughput bound -------------------------------------

// Eq1Result reports the Equation (1) check for one configuration:
// TP_os <= min(TP_sign x bs, TP_bftsmart).
type Eq1Result struct {
	Cell          Fig7Cell
	MeasuredTPS   float64 // full ordering service
	SignBoundTPS  float64 // TP_sign x block size
	OrderBoundTPS float64 // ordering rate with signing disabled
	Satisfied     bool
}

// RunEquation1 measures the two bounds of Equation (1) and the actual
// ordering-service throughput for one cell, then checks the inequality
// (with 15% measurement slack).
func RunEquation1(cell Fig7Cell) (Eq1Result, error) {
	cell = cell.withDefaults()
	// TP_sign: block-signature rate at the configured worker count.
	sigRows, err := RunFigure6([]int{cell.SigningWorkers}, cell.BlockSize, cell.Measure)
	if err != nil {
		return Eq1Result{}, err
	}
	signBound := sigRows[0].SigsPerSec * float64(cell.BlockSize)

	// TP_bftsmart: ordering rate with signature generation ablated.
	unsigned := cell
	unsigned.DisableSigning = true
	rawRow, err := RunFigure7Cell(unsigned)
	if err != nil {
		return Eq1Result{}, err
	}

	// TP_os: the full service.
	fullRow, err := RunFigure7Cell(cell)
	if err != nil {
		return Eq1Result{}, err
	}

	bound := signBound
	if rawRow.TxPerSec < bound {
		bound = rawRow.TxPerSec
	}
	return Eq1Result{
		Cell:          cell,
		MeasuredTPS:   fullRow.TxPerSec,
		SignBoundTPS:  signBound,
		OrderBoundTPS: rawRow.TxPerSec,
		Satisfied:     fullRow.TxPerSec <= bound*1.15,
	}, nil
}
