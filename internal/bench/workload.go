package bench

import (
	"math/rand"
	"strconv"
	"time"

	"repro/internal/fabric"
	"repro/internal/wire"
)

// Envelope sizes of the paper's evaluation (Section 6.2): a SHA-256 hash
// (40 bytes), three ECDSA endorsement signatures (200 bytes), and 1 KB /
// 4 KB transaction messages ("the values related with [1 and 4 kbytes] are
// more representative of the size of a transaction").
var PaperEnvelopeSizes = []int{40, 200, 1024, 4096}

// EnvelopeGen builds benchmark envelopes of a fixed payload size for one
// submitting client. Envelope payloads carry a generator-unique marker and
// sequence number so the latency harness can recognize its own envelopes
// in released blocks.
type EnvelopeGen struct {
	channel string
	client  string
	size    int
	rng     *rand.Rand
	next    uint64
}

// NewEnvelopeGen creates a generator for the given channel/client/payload
// size.
func NewEnvelopeGen(channel, client string, size int, seed int64) *EnvelopeGen {
	if size < 16 {
		size = 16 // room for the sequence marker
	}
	return &EnvelopeGen{
		channel: channel,
		client:  client,
		size:    size,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Sent returns how many envelopes the generator has produced.
func (g *EnvelopeGen) Sent() uint64 { return g.next }

// Next returns the marshalled envelope and its sequence number.
func (g *EnvelopeGen) Next() ([]byte, uint64) {
	seq := g.next
	g.next++
	payload := make([]byte, g.size)
	g.rng.Read(payload)
	w := wire.NewWriter(16)
	w.PutUint64(seq)
	copy(payload, w.Bytes())
	// A real submission timestamp (not the sequence number: that lives in
	// the payload marker) anchors the observability layer's end-to-end
	// stage histogram; EnvelopeSeq reads the payload, so nothing else
	// depends on this field.
	env := &fabric.Envelope{
		ChannelID:         g.channel,
		ClientID:          g.client,
		TimestampUnixNano: time.Now().UnixNano(),
		Payload:           payload,
	}
	return env.Marshal(), seq
}

// EnvelopeSeq extracts the generator sequence number from a benchmark
// envelope produced by EnvelopeGen.
func EnvelopeSeq(raw []byte) (client string, seq uint64, ok bool) {
	env, err := fabric.UnmarshalEnvelope(raw)
	if err != nil || len(env.Payload) < 8 {
		return "", 0, false
	}
	r := wire.NewReader(env.Payload[:8])
	return env.ClientID, r.Uint64(), r.Err() == nil
}

// clientName labels load-generator clients.
func clientName(prefix string, i int) string {
	return prefix + "-" + strconv.Itoa(i)
}
